// T4 — partial quantification (§4): the growth-bound trade-off.
//
// Quantifies all primary inputs out of a one-step pre-image formula of
// the arbiter family while sweeping the per-variable growth bound.
// A tight bound aborts blow-up-prone variables (they become *residual*
// decision variables for a SAT engine); a loose bound eliminates
// everything at the cost of a larger circuit.
//
// Expected shape: %eliminated grows monotonically with the bound; the
// result size grows with it; even a moderate bound eliminates most
// variables — the point of §4 is that the expensive ones are few.

#include <cstdio>
#include <iostream>
#include <unordered_map>

#include "circuits/families.hpp"
#include "quant/quantifier.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using namespace cbq;

/// One-step pre-image formula Bad(δ(s,i)) over (s, i) in a fresh manager.
aig::Lit preImageFormula(const mc::Network& net, aig::Aig& mgr) {
  std::vector<aig::Lit> roots(net.next.begin(), net.next.end());
  roots.push_back(net.bad);
  const auto moved = mgr.transferFrom(net.aig, roots);
  std::vector<aig::VarSub> subst;
  for (std::size_t i = 0; i < net.stateVars.size(); ++i)
    subst.emplace_back(net.stateVars[i], moved[i]);
  return mgr.compose(moved.back(), subst);
}

}  // namespace

int main() {
  std::printf("T4: partial quantification — growth-bound sweep\n");
  std::printf("(arbiter(n) one-step pre-image; quantifying all n request "
              "inputs)\n\n");

  util::Table table({"instance", "inputs", "growth-bound", "eliminated",
                     "residual", "result-cone", "time[ms]"});

  for (const int width : {4, 6, 8}) {
    const auto net = circuits::makeArbiter(width, true);
    for (const double bound : {0.5, 1.0, 2.0, 4.0, 1e9}) {
      aig::Aig mgr;
      const aig::Lit f = preImageFormula(net, mgr);
      quant::QuantOptions opts;
      opts.growthLimit = bound;
      opts.growthSlack = 0;
      opts.abortRetries = 0;
      quant::Quantifier q(mgr, opts);
      util::Timer timer;
      const auto r = q.quantifyAll(f, net.inputVars);
      const double ms = timer.milliseconds();
      const std::size_t eliminated =
          net.inputVars.size() - r.residual.size();
      table.addRow({net.name, std::to_string(net.numInputs()),
                    bound > 1e8 ? "inf" : util::Table::num(bound, 1),
                    std::to_string(eliminated) + "/" +
                        std::to_string(net.numInputs()),
                    std::to_string(r.residual.size()),
                    std::to_string(mgr.coneSize(r.f)),
                    util::Table::num(ms, 1)});
    }
  }
  table.print(std::cout);
  return 0;
}

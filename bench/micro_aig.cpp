// Micro-benchmarks of the AIG substrate: construction throughput,
// cofactoring, composition, simulation, cross-manager transfer and the
// sweeper's signature-resimulation kernel in its serial/SIMD/threaded
// shapes.

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "aig/aig.hpp"
#include "circuits/suite.hpp"
#include "sweep/signatures.hpp"
#include "util/random.hpp"
#include "util/thread_pool.hpp"
#include "util/var_table.hpp"

namespace {

using cbq::aig::Aig;
using cbq::aig::Lit;
using cbq::aig::VarId;

Lit buildRandomCone(Aig& g, cbq::util::Random& rng, int vars, int ops) {
  std::vector<Lit> pool;
  for (int v = 0; v < vars; ++v) pool.push_back(g.pi(static_cast<VarId>(v)));
  for (int i = 0; i < ops; ++i) {
    const Lit a = pool[rng.below(pool.size())] ^ rng.flip();
    const Lit b = pool[rng.below(pool.size())] ^ rng.flip();
    pool.push_back(rng.flip() ? g.mkAnd(a, b) : g.mkXor(a, b));
  }
  return pool.back();
}

void BM_MkAndStrash(benchmark::State& state) {
  for (auto _ : state) {
    Aig g;
    cbq::util::Random rng(7);
    benchmark::DoNotOptimize(
        buildRandomCone(g, rng, 16, static_cast<int>(state.range(0))));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MkAndStrash)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_Cofactor(benchmark::State& state) {
  Aig g;
  cbq::util::Random rng(11);
  const Lit f = buildRandomCone(g, rng, 16, static_cast<int>(state.range(0)));
  VarId v = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(g.cofactor(f, v, true));
    v = (v + 1) % 16;
  }
}
BENCHMARK(BM_Cofactor)->Arg(1000)->Arg(10000);

void BM_Compose(benchmark::State& state) {
  Aig g;
  cbq::util::Random rng(13);
  const Lit f = buildRandomCone(g, rng, 16, static_cast<int>(state.range(0)));
  const Lit sub = buildRandomCone(g, rng, 16, 64);
  const std::vector<cbq::aig::VarSub> map{{3, sub}, {7, !sub}};
  for (auto _ : state) benchmark::DoNotOptimize(g.compose(f, map));
}
BENCHMARK(BM_Compose)->Arg(1000)->Arg(10000);

void BM_Simulate64(benchmark::State& state) {
  Aig g;
  cbq::util::Random rng(17);
  const Lit f = buildRandomCone(g, rng, 16, static_cast<int>(state.range(0)));
  cbq::util::VarTable<std::uint64_t> words;
  for (VarId v = 0; v < 16; ++v) words.set(v, rng.next64());
  const Lit roots[] = {f};
  for (auto _ : state) benchmark::DoNotOptimize(g.simulate(roots, words));
  state.SetItemsProcessed(state.iterations() * state.range(0) * 64);
}
BENCHMARK(BM_Simulate64)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_TransferCompact(benchmark::State& state) {
  Aig g;
  cbq::util::Random rng(19);
  const Lit f = buildRandomCone(g, rng, 16, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    Aig fresh;
    benchmark::DoNotOptimize(fresh.transferFrom(g, {{f}}));
  }
}
BENCHMARK(BM_TransferCompact)->Arg(1000)->Arg(10000);

// --- signature resimulation: the parallel sweeping hot loop ------------
//
// Three shapes of the same 16-word recomputation over one random cone:
//   SigResimReference — the pre-parallel column-major serial loop
//   SigResimSimd      — node-major contiguous word rows, serial
//   SigResimThreaded  — node-major + stratum-parallel thread pool
// Items processed = nodes * words * 64 simulated bits.

constexpr int kSigWords = 16;

/// The cone under test is the giant family's full root cone (~16 ANDs per
/// width unit): functionally diverse mixing logic that neither the
/// construction rewrite rules nor sharing can collapse, so the size axis
/// is honest — buildRandomCone's final node only reaches a tiny fraction
/// of a large random pool.
struct SigBench {
  cbq::mc::Network net;
  std::vector<cbq::aig::NodeId> order;
  std::vector<VarId> support;
  std::unique_ptr<cbq::util::ThreadPool> pool;
  std::unique_ptr<cbq::sweep::Signatures> sigs;

  explicit SigBench(int ops, int threads)
      : net(cbq::circuits::makeInstance("giant", ops / 16 > 0 ? ops / 16 : 1,
                                        true)
                .net) {
    cbq::util::Random rng(29);
    std::vector<Lit> roots = net.next;
    roots.push_back(net.bad);
    order = net.aig.coneAnds(roots);
    support = net.aig.supportVars(roots);
    if (threads > 1) pool = std::make_unique<cbq::util::ThreadPool>(threads);
    sigs = std::make_unique<cbq::sweep::Signatures>(
        net.aig, order, support, rng, kSigWords, kSigWords, pool.get());
  }
};

void BM_SigResimReference(benchmark::State& state) {
  SigBench b(static_cast<int>(state.range(0)), 1);
  for (auto _ : state) b.sigs->resimulateAllReference();
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(b.order.size()) *
                          kSigWords * 64);
}
BENCHMARK(BM_SigResimReference)->Arg(10000)->Arg(100000)->Arg(1000000);

void BM_SigResimSimd(benchmark::State& state) {
  SigBench b(static_cast<int>(state.range(0)), 1);
  for (auto _ : state) b.sigs->resimulateAll();
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(b.order.size()) *
                          kSigWords * 64);
}
BENCHMARK(BM_SigResimSimd)->Arg(10000)->Arg(100000)->Arg(1000000);

void BM_SigResimThreaded(benchmark::State& state) {
  SigBench b(static_cast<int>(state.range(0)),
             static_cast<int>(state.range(1)));
  for (auto _ : state) b.sigs->resimulateAll();
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(b.order.size()) *
                          kSigWords * 64);
}
BENCHMARK(BM_SigResimThreaded)
    ->Args({10000, 2})
    ->Args({10000, 8})
    ->Args({100000, 2})
    ->Args({100000, 8})
    ->Args({1000000, 2})
    ->Args({1000000, 8});

void BM_ConeTraversal(benchmark::State& state) {
  Aig g;
  cbq::util::Random rng(23);
  const Lit f = buildRandomCone(g, rng, 16, static_cast<int>(state.range(0)));
  const Lit roots[] = {f};
  for (auto _ : state) benchmark::DoNotOptimize(g.coneAnds(roots));
}
BENCHMARK(BM_ConeTraversal)->Arg(10000)->Arg(100000);

}  // namespace

BENCHMARK_MAIN();

// Micro-benchmarks of the AIG substrate: construction throughput,
// cofactoring, composition, simulation and cross-manager transfer.

#include <benchmark/benchmark.h>

#include <vector>

#include "aig/aig.hpp"
#include "util/random.hpp"
#include "util/var_table.hpp"

namespace {

using cbq::aig::Aig;
using cbq::aig::Lit;
using cbq::aig::VarId;

Lit buildRandomCone(Aig& g, cbq::util::Random& rng, int vars, int ops) {
  std::vector<Lit> pool;
  for (int v = 0; v < vars; ++v) pool.push_back(g.pi(static_cast<VarId>(v)));
  for (int i = 0; i < ops; ++i) {
    const Lit a = pool[rng.below(pool.size())] ^ rng.flip();
    const Lit b = pool[rng.below(pool.size())] ^ rng.flip();
    pool.push_back(rng.flip() ? g.mkAnd(a, b) : g.mkXor(a, b));
  }
  return pool.back();
}

void BM_MkAndStrash(benchmark::State& state) {
  for (auto _ : state) {
    Aig g;
    cbq::util::Random rng(7);
    benchmark::DoNotOptimize(
        buildRandomCone(g, rng, 16, static_cast<int>(state.range(0))));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MkAndStrash)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_Cofactor(benchmark::State& state) {
  Aig g;
  cbq::util::Random rng(11);
  const Lit f = buildRandomCone(g, rng, 16, static_cast<int>(state.range(0)));
  VarId v = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(g.cofactor(f, v, true));
    v = (v + 1) % 16;
  }
}
BENCHMARK(BM_Cofactor)->Arg(1000)->Arg(10000);

void BM_Compose(benchmark::State& state) {
  Aig g;
  cbq::util::Random rng(13);
  const Lit f = buildRandomCone(g, rng, 16, static_cast<int>(state.range(0)));
  const Lit sub = buildRandomCone(g, rng, 16, 64);
  const std::vector<cbq::aig::VarSub> map{{3, sub}, {7, !sub}};
  for (auto _ : state) benchmark::DoNotOptimize(g.compose(f, map));
}
BENCHMARK(BM_Compose)->Arg(1000)->Arg(10000);

void BM_Simulate64(benchmark::State& state) {
  Aig g;
  cbq::util::Random rng(17);
  const Lit f = buildRandomCone(g, rng, 16, static_cast<int>(state.range(0)));
  cbq::util::VarTable<std::uint64_t> words;
  for (VarId v = 0; v < 16; ++v) words.set(v, rng.next64());
  const Lit roots[] = {f};
  for (auto _ : state) benchmark::DoNotOptimize(g.simulate(roots, words));
  state.SetItemsProcessed(state.iterations() * state.range(0) * 64);
}
BENCHMARK(BM_Simulate64)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_TransferCompact(benchmark::State& state) {
  Aig g;
  cbq::util::Random rng(19);
  const Lit f = buildRandomCone(g, rng, 16, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    Aig fresh;
    benchmark::DoNotOptimize(fresh.transferFrom(g, {{f}}));
  }
}
BENCHMARK(BM_TransferCompact)->Arg(1000)->Arg(10000);

void BM_ConeTraversal(benchmark::State& state) {
  Aig g;
  cbq::util::Random rng(23);
  const Lit f = buildRandomCone(g, rng, 16, static_cast<int>(state.range(0)));
  const Lit roots[] = {f};
  for (auto _ : state) benchmark::DoNotOptimize(g.coneAnds(roots));
}
BENCHMARK(BM_ConeTraversal)->Arg(10000)->Arg(100000);

}  // namespace

BENCHMARK_MAIN();

#pragma once
// Shared workload generators for the table/figure harnesses.

#include <unordered_set>
#include <vector>

#include "aig/aig.hpp"
#include "util/random.hpp"

namespace cbq::bench {

/// Disjunction of `clauses` random conjunctions over `vars` variables;
/// each conjunction includes variable 0 with probability `p`. Small p
/// means the cofactors w.r.t. variable 0 are nearly identical — the
/// "high merge probability" regime of §2.1.
inline aig::Lit similarityFormula(aig::Aig& g, util::Random& rng, int vars,
                                  int clauses, double p) {
  std::vector<aig::Lit> terms;
  terms.reserve(static_cast<std::size_t>(clauses));
  for (int c = 0; c < clauses; ++c) {
    std::vector<aig::Lit> lits;
    const int size = 2 + static_cast<int>(rng.below(3));
    for (int k = 0; k < size; ++k) {
      const auto v = static_cast<aig::VarId>(1 + rng.below(
                                                     static_cast<std::uint64_t>(
                                                         vars - 1)));
      lits.push_back(g.pi(v) ^ rng.flip());
    }
    if (rng.unit() < p) lits.push_back(g.pi(0) ^ rng.flip());
    terms.push_back(g.mkAndAll(lits));
  }
  return g.mkOrAll(terms);
}

/// Jaccard similarity of the two cones' AND-node sets — a structural
/// proxy for how much of the cofactors is literally shared.
inline double structuralSimilarity(const aig::Aig& g, aig::Lit a,
                                   aig::Lit b) {
  const aig::Lit ra[] = {a};
  const aig::Lit rb[] = {b};
  const auto ca = g.coneAnds(ra);
  const auto cb = g.coneAnds(rb);
  std::unordered_set<aig::NodeId> sa(ca.begin(), ca.end());
  std::size_t common = 0;
  for (const aig::NodeId n : cb)
    if (sa.contains(n)) ++common;
  const std::size_t unionSize = ca.size() + cb.size() - common;
  return unionSize == 0 ? 1.0
                        : static_cast<double>(common) /
                              static_cast<double>(unionSize);
}

}  // namespace cbq::bench

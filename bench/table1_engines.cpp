// T1 — engine comparison on the standard suite.
//
// Reconstructs the paper's headline evaluation (§5: "efficacy of the
// methodology on hard-to-verify circuits and properties"): the
// circuit-quantification engine against the BDD baselines, BMC,
// k-induction, all-SAT pre-image and the §4 hybrid, on every suite
// instance. Reports verdict, iterations/depth and wall-clock time.
//
// Expected shape: every engine agrees with the ground truth; the
// unbounded engines prove SAFE where BMC cannot; cbq-reach tracks
// bdd-bwd in iteration count (same fixpoint, different representation).

#include <cstdio>
#include <iostream>

#include "circuits/suite.hpp"
#include "mc/engines.hpp"
#include "util/table.hpp"

int main() {
  using namespace cbq;
  std::printf("T1: engine comparison on the standard suite\n");
  std::printf("(verdict / iterations-or-depth / time[ms]; X = wrong, "
              "? = unknown)\n\n");

  auto engines = mc::makeAllEngines();
  std::vector<std::string> header{"instance", "truth"};
  for (const auto& e : engines) header.push_back(e->name());
  util::Table table(header);

  int disagreements = 0;
  int bogusTraces = 0;
  for (auto& inst : circuits::standardSuite()) {
    std::vector<std::string> row{inst.net.name,
                                 mc::toString(inst.expected)};
    for (auto& engine : engines) {
      const auto res = engine->check(inst.net);
      std::string cell;
      if (res.verdict == mc::Verdict::Unknown) {
        cell = "?";
      } else {
        cell = res.verdict == mc::Verdict::Safe ? "S" : "U";
        if (res.verdict != inst.expected) {
          cell += "  X";
          ++disagreements;
        }
      }
      if (res.cex && !mc::replayHitsBad(inst.net, *res.cex)) {
        cell += " BOGUS";
        ++bogusTraces;
      }
      cell += "/" + std::to_string(res.steps) + "/" +
              util::Table::num(res.seconds * 1e3, 1);
      row.push_back(cell);
    }
    table.addRow(std::move(row));
  }
  table.print(std::cout);
  std::printf("\nwrong verdicts: %d, bogus counterexamples: %d\n",
              disagreements, bogusTraces);
  return (disagreements || bogusTraces) ? 1 : 0;
}

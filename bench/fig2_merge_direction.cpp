// F2 — forward vs backward merge processing (§2.1).
//
// The paper: "Backward processing is generally better in case of high
// merge probability (similar cofactors), as few checks on the output
// region can quickly find equivalence and merge points, and stop
// recursion. Forward processing is more similar to BDD sweeping."
//
// We control cofactor similarity directly: f is a disjunction of m
// random sub-functions, of which a fraction p contains the quantified
// variable x. Small p ⇒ the two cofactors are nearly identical ⇒ high
// merge probability. For each p the two processing directions sweep the
// cofactor pair; we report SAT checks issued, checks skipped because
// merging detached the region (backward's early-stop), and time.
//
// Expected shape: at small p backward issues fewer checks (root-level
// merges prune everything below); as p grows the two directions converge
// and forward's input-up learning wins slightly.

#include <cstdio>
#include <iostream>

#include "helpers_bench.hpp"
#include "sweep/sweeper.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main() {
  using namespace cbq;
  std::printf("F2: forward vs backward merge processing vs cofactor "
              "similarity\n\n");

  util::Table table({"p(x in clause)", "cofactor-similarity", "fwd-checks",
                     "bwd-checks", "bwd-skipped", "fwd[ms]", "bwd[ms]",
                     "merged-size-fwd", "merged-size-bwd"});

  util::Random rng(2025);
  for (const double p : {0.05, 0.1, 0.2, 0.4, 0.6, 0.8}) {
    // Averages over a few samples per similarity point.
    double fwdChecks = 0;
    double bwdChecks = 0;
    double bwdSkipped = 0;
    double fwdMs = 0;
    double bwdMs = 0;
    double fwdSize = 0;
    double bwdSize = 0;
    double similarity = 0;
    const int samples = 3;
    for (int sample = 0; sample < samples; ++sample) {
      aig::Aig g;
      const aig::Lit f =
          bench::similarityFormula(g, rng, /*vars=*/8, /*clauses=*/24, p);
      const aig::Lit f0 = g.cofactor(f, 0, false);
      const aig::Lit f1 = g.cofactor(f, 0, true);
      similarity += bench::structuralSimilarity(g, f0, f1);

      for (const bool backward : {false, true}) {
        sweep::SweepOptions opts;
        opts.backward = backward;
        util::Timer timer;
        const aig::Lit roots[] = {f0, f1};
        const auto r = sweep::sweep(g, roots, opts);
        const double ms = timer.milliseconds();
        if (backward) {
          bwdChecks += static_cast<double>(r.stats.satChecks);
          bwdSkipped += static_cast<double>(r.stats.skippedUnreferenced);
          bwdMs += ms;
          bwdSize += static_cast<double>(r.stats.nodesAfter);
        } else {
          fwdChecks += static_cast<double>(r.stats.satChecks);
          fwdMs += ms;
          fwdSize += static_cast<double>(r.stats.nodesAfter);
        }
      }
    }
    const double inv = 1.0 / samples;
    table.addRow({util::Table::num(p, 2),
                  util::Table::num(similarity * inv, 2),
                  util::Table::num(fwdChecks * inv, 1),
                  util::Table::num(bwdChecks * inv, 1),
                  util::Table::num(bwdSkipped * inv, 1),
                  util::Table::num(fwdMs * inv, 2),
                  util::Table::num(bwdMs * inv, 2),
                  util::Table::num(fwdSize * inv, 0),
                  util::Table::num(bwdSize * inv, 0)});
  }
  table.print(std::cout);
  return 0;
}

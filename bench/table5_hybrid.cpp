// T5 — combining circuit quantification with SAT-based methods (§4).
//
// Two halves:
//  (a) all-SAT pre-image (Ganai-style circuit cofactoring) with and
//      without circuit quantification as a preprocessing step: the hybrid
//      engine should need far fewer enumeration steps because most input
//      variables were already eliminated;
//  (b) input quantification as preprocessing for BMC: decision variables
//      in the bad cone drop, time should not grow.
//
// Expected shape: hybrid enumerations << pure all-SAT enumerations on the
// input-heavy families; inputs-in-bad goes to zero on arbiter-like
// properties; verdicts identical everywhere.

#include <cstdio>
#include <iostream>

#include "circuits/suite.hpp"
#include "mc/engines.hpp"
#include "util/table.hpp"

int main() {
  using namespace cbq;
  std::printf("T5a: all-SAT pre-image enumeration — pure vs hybrid (§4)\n\n");
  {
    util::Table table({"instance", "verdict", "allsat-enums",
                       "hybrid-enums", "hybrid-residual-vars",
                       "allsat[ms]", "hybrid[ms]"});
    for (const char* family : {"arbiter", "ring", "queue", "peterson"}) {
      for (const int width : {4, 6}) {
        if ((std::string(family) == "peterson") && width != 4) continue;
        auto inst = circuits::makeInstance(family, width, true);
        mc::AllSatPreimageReach pure;
        mc::HybridReach hybrid;
        const auto a = pure.check(inst.net);
        const auto h = hybrid.check(inst.net);
        table.addRow(
            {inst.net.name, mc::toString(a.verdict),
             std::to_string(a.stats.count("allsat.enumerations")),
             std::to_string(h.stats.count("allsat.enumerations")),
             std::to_string(h.stats.count("hybrid.residual_vars")),
             util::Table::num(a.seconds * 1e3, 1),
             util::Table::num(h.seconds * 1e3, 1)});
      }
    }
    table.print(std::cout);
  }

  std::printf("\nT5b: input quantification as BMC preprocessing (§4)\n\n");
  {
    util::Table table({"instance", "inputs-in-bad", "after-quant",
                       "bmc-before[ms]", "bmc-after[ms]", "verdict-stable"});
    for (auto& inst : circuits::standardSuite()) {
      const auto pre = mc::preprocessQuantifyInputs(inst.net);
      mc::BmcOptions opts;
      opts.maxDepth = 40;
      mc::Bmc bmc(opts);
      const auto before = bmc.check(inst.net);
      const auto after = bmc.check(pre.net);
      table.addRow({inst.net.name, std::to_string(pre.inputsBefore),
                    std::to_string(pre.inputsAfter),
                    util::Table::num(before.seconds * 1e3, 1),
                    util::Table::num(after.seconds * 1e3, 1),
                    before.verdict == after.verdict ? "yes" : "NO"});
    }
    table.print(std::cout);
  }
  return 0;
}

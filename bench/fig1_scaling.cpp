// F1 — scaling series: non-canonical AIG state sets vs canonical BDDs.
//
// The paper's motivating claim (§1): BDD canonicity causes memory
// explosion that circuit-based representations avoid (at the price of
// SAT work per operation). This figure sweeps the width of three
// families and plots, per width, the peak state-set representation size
// and the runtime of the paper's engine vs the backward BDD baseline.
//
// Expected shape: on counter-like datapaths the BDD stays tiny (they are
// BDD-friendly); on the gray pair (XOR-rich relational invariant) the
// BDD representation grows much faster than the swept AIG cone, and the
// crossover where cbq-reach wins appears as the width grows.

#include <cstdio>
#include <iostream>

#include "circuits/suite.hpp"
#include "mc/engines.hpp"
#include "util/table.hpp"

int main() {
  using namespace cbq;
  std::printf("F1: width scaling — AIG state sets (cbq-reach) vs BDDs "
              "(bdd-bwd)\n");
  std::printf("(safe variants; size = peak state-set representation: AND "
              "nodes vs BDD nodes)\n\n");

  struct Series {
    const char* family;
    std::vector<int> widths;
  };
  const Series series[] = {
      {"counter", {3, 5, 7, 9, 11}},
      {"evencount", {4, 5, 6, 7, 8}},
      {"gray", {3, 4, 5, 6, 7}},
      {"ring", {4, 8, 12, 16, 20}},
      {"mult", {4, 8, 10, 12, 14}},
  };

  for (const auto& s : series) {
    util::Table table({"width", "cbq-size", "bdd-size", "cbq[ms]",
                       "bdd[ms]", "cbq-iters", "bdd-iters"});
    for (const int w : s.widths) {
      auto inst = circuits::makeInstance(s.family, w, true);
      mc::CircuitQuantReachOptions aigOpts;
      aigOpts.limits.timeLimitSeconds = 20.0;
      mc::CircuitQuantReach aigEngine(aigOpts);
      mc::BddReachOptions bddOpts;
      bddOpts.limits.timeLimitSeconds = 20.0;
      bddOpts.nodeLimit = 1'000'000;
      mc::BddBackwardReach bddEngine(bddOpts);
      const auto a = aigEngine.check(inst.net);
      const auto b = bddEngine.check(inst.net);
      table.addRow({std::to_string(w),
                    util::Table::num(a.stats.gauge("reach.max_reached_cone"),
                                     0),
                    util::Table::num(b.stats.gauge("bdd.max_frontier_size"),
                                     0),
                    util::Table::num(a.seconds * 1e3, 1),
                    util::Table::num(b.seconds * 1e3, 1),
                    std::to_string(a.steps), std::to_string(b.steps)});
    }
    std::printf("family: %s\n", s.family);
    table.print(std::cout);
    std::printf("\n");
  }
  return 0;
}

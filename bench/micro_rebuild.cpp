// Micro-benchmarks isolating the cone-rebuild memo layer: compose,
// cofactor, node-map rebuild and cross-manager transfer throughput.
// These are the paths a reachability iteration hammers thousands of
// times (pre-image substitution, Shannon cofactors, merge commits,
// compaction), so future changes to the ScratchMemo / strash layer can
// be regression-tested here directly without driving a full engine.

#include <benchmark/benchmark.h>

#include <vector>

#include "aig/aig.hpp"
#include "aig/scratch.hpp"
#include "util/random.hpp"

namespace {

using cbq::aig::Aig;
using cbq::aig::Lit;
using cbq::aig::VarId;
using cbq::aig::VarSub;

constexpr int kVars = 24;

Lit buildRandomCone(Aig& g, cbq::util::Random& rng, int vars, int ops) {
  std::vector<Lit> pool;
  for (int v = 0; v < vars; ++v) pool.push_back(g.pi(static_cast<VarId>(v)));
  for (int i = 0; i < ops; ++i) {
    const Lit a = pool[rng.below(pool.size())] ^ rng.flip();
    const Lit b = pool[rng.below(pool.size())] ^ rng.flip();
    pool.push_back(rng.flip() ? g.mkAnd(a, b) : g.mkXor(a, b));
  }
  return pool.back();
}

/// compose() with a wide substitution map — the pre-image shape where
/// every state variable maps to a next-state cone at once.
void BM_ComposeWide(benchmark::State& state) {
  Aig g;
  cbq::util::Random rng(29);
  const Lit f = buildRandomCone(g, rng, kVars, static_cast<int>(state.range(0)));
  std::vector<VarSub> map;
  for (VarId v = 0; v < kVars / 2; ++v)
    map.emplace_back(v, buildRandomCone(g, rng, kVars, 24) ^ (v % 2 != 0));
  for (auto _ : state) benchmark::DoNotOptimize(g.compose(f, map));
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ComposeWide)->Arg(1000)->Arg(10000);

/// Alternating positive/negative cofactors — the Shannon-expansion inner
/// loop of quantifyVar.
void BM_CofactorPair(benchmark::State& state) {
  Aig g;
  cbq::util::Random rng(31);
  const Lit f = buildRandomCone(g, rng, kVars, static_cast<int>(state.range(0)));
  VarId v = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(g.cofactor(f, v, false));
    benchmark::DoNotOptimize(g.cofactor(f, v, true));
    v = (v + 1) % kVars;
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * 2);
}
BENCHMARK(BM_CofactorPair)->Arg(1000)->Arg(10000);

/// rebuildWithNodeMap with an empty map: pure memo-walk + re-hash, the
/// rewrite() fast path.
void BM_RebuildIdentity(benchmark::State& state) {
  Aig g;
  cbq::util::Random rng(37);
  const Lit f = buildRandomCone(g, rng, kVars, static_cast<int>(state.range(0)));
  const Lit roots[] = {f};
  const cbq::aig::NodeMap empty;
  for (auto _ : state)
    benchmark::DoNotOptimize(g.rebuildWithNodeMap(roots, empty));
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RebuildIdentity)->Arg(1000)->Arg(10000);

/// rebuildWithNodeMap with a sprinkling of constant merges — the sweeping
/// engine's commit step.
void BM_RebuildWithMerges(benchmark::State& state) {
  Aig g;
  cbq::util::Random rng(41);
  const Lit f = buildRandomCone(g, rng, kVars, static_cast<int>(state.range(0)));
  const Lit roots[] = {f};
  const auto order = g.coneAnds(roots);
  cbq::aig::NodeMap map;
  for (std::size_t i = 0; i < order.size(); i += 16)
    map.set(order[i], rng.flip() ? cbq::aig::kTrue : cbq::aig::kFalse);
  for (auto _ : state)
    benchmark::DoNotOptimize(g.rebuildWithNodeMap(roots, map));
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RebuildWithMerges)->Arg(1000)->Arg(10000);

/// Cross-manager transfer into a fresh manager — the compaction step of
/// per-iteration-compaction reachability.
void BM_TransferFresh(benchmark::State& state) {
  Aig g;
  cbq::util::Random rng(43);
  const Lit f = buildRandomCone(g, rng, kVars, static_cast<int>(state.range(0)));
  const Lit roots[] = {f};
  for (auto _ : state) {
    Aig fresh;
    benchmark::DoNotOptimize(fresh.transferFrom(g, roots));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TransferFresh)->Arg(1000)->Arg(10000);

}  // namespace

BENCHMARK_MAIN();

// T2 — ablation of the merge phase (§2.1).
//
// Runs the paper's engine with the merge-phase layers switched on one at
// a time:
//   strash      — cofactors share only via structural hashing,
//   +bdd-sweep  — size-bounded BDD sweeping merges equivalent nodes,
//   +sat-sweep  — incremental SAT checks finish the remaining points.
// The optimization phase is off throughout, isolating §2.1.
//
// Expected shape: the peak state-set cone shrinks monotonically as layers
// are added; the SAT layer matters most where cofactors are similar but
// structurally different (gray, lfsr); verdicts never change.

#include <cstdio>
#include <iostream>

#include "circuits/suite.hpp"
#include "mc/engines.hpp"
#include "util/table.hpp"

namespace {

struct Config {
  const char* name;
  bool merge;
  bool bdd;
  bool sat;
};

}  // namespace

int main() {
  using namespace cbq;
  std::printf("T2: merge-phase ablation (optimization phase disabled)\n");
  std::printf("(peak reached-set cone in AND nodes / time[ms])\n\n");

  const Config configs[] = {
      {"strash", false, false, false},
      {"bdd-only", true, true, false},
      {"sat-only", true, false, true},
      {"bdd+sat", true, true, true},
  };

  util::Table table({"instance", "iters", "strash", "bdd-only", "sat-only",
                     "bdd+sat", "sat-checks", "verdict-stable"});

  for (auto& inst : circuits::standardSuite()) {
    if (inst.expected != mc::Verdict::Safe) continue;  // fixpoint workloads
    std::vector<std::string> cells;
    int iters = 0;
    mc::Verdict first = mc::Verdict::Unknown;
    bool stable = true;
    std::int64_t satChecks = 0;
    for (const auto& cfg : configs) {
      mc::CircuitQuantReachOptions opts;
      opts.quant.mergePhase = cfg.merge;
      opts.quant.optPhase = false;
      opts.quant.sweepOpts.useBdd = cfg.bdd;
      opts.quant.sweepOpts.useSat = cfg.sat;
      opts.limits.timeLimitSeconds = 20.0;
      mc::CircuitQuantReach engine(opts);
      const auto res = engine.check(inst.net);
      iters = res.steps;
      if (first == mc::Verdict::Unknown) first = res.verdict;
      stable = stable && (res.verdict == first);
      // Report the SAT-only column's check count (in bdd+sat the BDD
      // layer absorbs most points first, hiding the SAT layer's work).
      if (cfg.sat && !cfg.bdd)
        satChecks = res.stats.count("merge.sat_checks");
      cells.push_back(
          util::Table::num(res.stats.gauge("reach.max_reached_cone"), 0) +
          " / " + util::Table::num(res.seconds * 1e3, 1));
    }
    table.addRow({inst.net.name, std::to_string(iters), cells[0], cells[1],
                  cells[2], cells[3], std::to_string(satChecks),
                  stable ? "yes" : "NO"});
  }
  table.print(std::cout);
  return 0;
}

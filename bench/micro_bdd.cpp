// Micro-benchmarks of the BDD substrate: conversion from AIG,
// quantification, composition and the relational product.

#include <benchmark/benchmark.h>

#include "bdd/bdd.hpp"
#include "circuits/families.hpp"
#include "util/random.hpp"

namespace {

using cbq::bdd::BddManager;
using cbq::bdd::BddRef;

void BM_AigToBdd(benchmark::State& state) {
  const auto net =
      cbq::circuits::makeGrayPair(static_cast<int>(state.range(0)), true);
  for (auto _ : state) {
    BddManager m;
    benchmark::DoNotOptimize(cbq::bdd::aigToBdd(net.aig, net.bad, m));
  }
}
BENCHMARK(BM_AigToBdd)->Arg(4)->Arg(8)->Arg(12);

void BM_ExistsInputs(benchmark::State& state) {
  const auto net =
      cbq::circuits::makeArbiter(static_cast<int>(state.range(0)), true);
  for (auto _ : state) {
    BddManager m;
    const BddRef bad = cbq::bdd::aigToBdd(net.aig, net.bad, m);
    benchmark::DoNotOptimize(m.exists(bad, net.inputVars));
  }
}
BENCHMARK(BM_ExistsInputs)->Arg(4)->Arg(6)->Arg(8);

void BM_VectorCompose(benchmark::State& state) {
  const auto net =
      cbq::circuits::makeCounter(static_cast<int>(state.range(0)), true);
  BddManager m;
  std::unordered_map<cbq::aig::VarId, BddRef> subst;
  for (std::size_t i = 0; i < net.numLatches(); ++i)
    subst.emplace(net.stateVars[i],
                  cbq::bdd::aigToBdd(net.aig, net.next[i], m));
  const BddRef bad = cbq::bdd::aigToBdd(net.aig, net.bad, m);
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.compose(bad, subst));
  }
}
BENCHMARK(BM_VectorCompose)->Arg(8)->Arg(16)->Arg(24);

void BM_AndExistsRelationalProduct(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto net = cbq::circuits::makeLfsr(n, true);
  BddManager m;
  // Build a transition-relation conjunct pile and one frontier.
  BddRef tr = cbq::bdd::kTrueBdd;
  for (std::size_t i = 0; i < net.numLatches(); ++i) {
    const BddRef ns = m.var(1000 + static_cast<cbq::aig::VarId>(i));
    const BddRef delta = cbq::bdd::aigToBdd(net.aig, net.next[i], m);
    tr = m.bddAnd(tr, m.bddNot(m.bddXor(ns, delta)));
  }
  BddRef frontier = cbq::bdd::kTrueBdd;
  for (std::size_t i = 0; i < net.numLatches(); ++i) {
    BddRef v = m.var(net.stateVars[i]);
    if (!net.init[i]) v = m.bddNot(v);
    frontier = m.bddAnd(frontier, v);
  }
  std::vector<cbq::aig::VarId> quantify(net.stateVars);
  quantify.insert(quantify.end(), net.inputVars.begin(),
                  net.inputVars.end());
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.andExists(tr, frontier, quantify));
    m.clearCaches();
  }
}
BENCHMARK(BM_AndExistsRelationalProduct)->Arg(6)->Arg(10)->Arg(14);

}  // namespace

BENCHMARK_MAIN();

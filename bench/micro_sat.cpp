// Micro-benchmarks of the CDCL solver: random 3-SAT near the phase
// transition, pigeonhole proofs, and the assumption-batch pattern the
// sweeping engine relies on (one clause DB, many factorized checks).

#include <benchmark/benchmark.h>

#include "sat/solver.hpp"
#include "util/random.hpp"

namespace {

using cbq::sat::Lit;
using cbq::sat::Solver;
using cbq::sat::Var;

void addRandom3Sat(Solver& s, cbq::util::Random& rng, int vars,
                   int clauses) {
  for (int v = 0; v < vars; ++v) s.newVar();
  for (int c = 0; c < clauses; ++c) {
    const Lit cl[3] = {
        Lit(static_cast<Var>(rng.below(vars)), rng.flip()),
        Lit(static_cast<Var>(rng.below(vars)), rng.flip()),
        Lit(static_cast<Var>(rng.below(vars)), rng.flip()),
    };
    s.addClause(cl);
  }
}

void BM_Random3SatPhaseTransition(benchmark::State& state) {
  const int vars = static_cast<int>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    Solver s;
    cbq::util::Random rng(seed++);
    addRandom3Sat(s, rng, vars, static_cast<int>(vars * 4.26));
    benchmark::DoNotOptimize(s.solve());
  }
}
BENCHMARK(BM_Random3SatPhaseTransition)->Arg(50)->Arg(100)->Arg(150);

void BM_PigeonholeUnsat(benchmark::State& state) {
  const int holes = static_cast<int>(state.range(0));
  const int pigeons = holes + 1;
  for (auto _ : state) {
    Solver s;
    std::vector<std::vector<Var>> p(pigeons, std::vector<Var>(holes));
    for (auto& row : p)
      for (auto& v : row) v = s.newVar();
    for (int i = 0; i < pigeons; ++i) {
      std::vector<Lit> clause;
      for (int h = 0; h < holes; ++h) clause.emplace_back(p[i][h], false);
      s.addClause(clause);
    }
    for (int h = 0; h < holes; ++h)
      for (int i = 0; i < pigeons; ++i)
        for (int j = i + 1; j < pigeons; ++j)
          s.addClause({Lit(p[i][h], true), Lit(p[j][h], true)});
    benchmark::DoNotOptimize(s.solve());
  }
}
BENCHMARK(BM_PigeonholeUnsat)->Arg(5)->Arg(6)->Arg(7);

void BM_AssumptionBatchSharedDb(benchmark::State& state) {
  // The §2.1 pattern: load the clause DB once, fire many small
  // equivalence-style queries through assumptions only.
  Solver s;
  cbq::util::Random rng(99);
  const int vars = 200;
  addRandom3Sat(s, rng, vars, 700);  // satisfiable region
  for (auto _ : state) {
    const Lit assumptions[2] = {
        Lit(static_cast<Var>(rng.below(vars)), rng.flip()),
        Lit(static_cast<Var>(rng.below(vars)), rng.flip()),
    };
    benchmark::DoNotOptimize(s.solve(assumptions));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AssumptionBatchSharedDb);

void BM_BudgetedSolve(benchmark::State& state) {
  // Resource-limited checks as used for sweeping compare points.
  Solver s;
  cbq::util::Random rng(7);
  addRandom3Sat(s, rng, 300, 1280);
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.solveLimited({}, state.range(0)));
  }
}
BENCHMARK(BM_BudgetedSolve)->Arg(10)->Arg(100)->Arg(1000);

}  // namespace

BENCHMARK_MAIN();

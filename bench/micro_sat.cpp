// Micro-benchmarks of the CDCL solvers: random 3-SAT near the phase
// transition, pigeonhole proofs, the assumption-batch pattern the
// sweeping engine relies on (one clause DB, many factorized checks), and
// the CNF-vs-circuit backend duel on sweep-style cone queries — the same
// check, once through the Tseitin encode + clause solver and once through
// the circuit-native CDCL that propagates on the AIG directly.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <random>
#include <vector>

#include "aig/aig.hpp"
#include "cnf/cnf_backend.hpp"
#include "sat/backend.hpp"
#include "sat/circuit_solver.hpp"
#include "sat/solver.hpp"
#include "util/random.hpp"

namespace {

using cbq::sat::Lit;
using cbq::sat::Solver;
using cbq::sat::Var;

void addRandom3Sat(Solver& s, cbq::util::Random& rng, int vars,
                   int clauses) {
  for (int v = 0; v < vars; ++v) s.newVar();
  for (int c = 0; c < clauses; ++c) {
    const Lit cl[3] = {
        Lit(static_cast<Var>(rng.below(vars)), rng.flip()),
        Lit(static_cast<Var>(rng.below(vars)), rng.flip()),
        Lit(static_cast<Var>(rng.below(vars)), rng.flip()),
    };
    s.addClause(cl);
  }
}

void BM_Random3SatPhaseTransition(benchmark::State& state) {
  const int vars = static_cast<int>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    Solver s;
    cbq::util::Random rng(seed++);
    addRandom3Sat(s, rng, vars, static_cast<int>(vars * 4.26));
    benchmark::DoNotOptimize(s.solve());
  }
}
BENCHMARK(BM_Random3SatPhaseTransition)->Arg(50)->Arg(100)->Arg(150);

void BM_PigeonholeUnsat(benchmark::State& state) {
  const int holes = static_cast<int>(state.range(0));
  const int pigeons = holes + 1;
  for (auto _ : state) {
    Solver s;
    std::vector<std::vector<Var>> p(pigeons, std::vector<Var>(holes));
    for (auto& row : p)
      for (auto& v : row) v = s.newVar();
    for (int i = 0; i < pigeons; ++i) {
      std::vector<Lit> clause;
      for (int h = 0; h < holes; ++h) clause.emplace_back(p[i][h], false);
      s.addClause(clause);
    }
    for (int h = 0; h < holes; ++h)
      for (int i = 0; i < pigeons; ++i)
        for (int j = i + 1; j < pigeons; ++j)
          s.addClause({Lit(p[i][h], true), Lit(p[j][h], true)});
    benchmark::DoNotOptimize(s.solve());
  }
}
BENCHMARK(BM_PigeonholeUnsat)->Arg(5)->Arg(6)->Arg(7);

void BM_AssumptionBatchSharedDb(benchmark::State& state) {
  // The §2.1 pattern: load the clause DB once, fire many small
  // equivalence-style queries through assumptions only.
  Solver s;
  cbq::util::Random rng(99);
  const int vars = 200;
  addRandom3Sat(s, rng, vars, 700);  // satisfiable region
  for (auto _ : state) {
    const Lit assumptions[2] = {
        Lit(static_cast<Var>(rng.below(vars)), rng.flip()),
        Lit(static_cast<Var>(rng.below(vars)), rng.flip()),
    };
    benchmark::DoNotOptimize(s.solve(assumptions));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AssumptionBatchSharedDb);

void BM_BudgetedSolve(benchmark::State& state) {
  // Resource-limited checks as used for sweeping compare points.
  Solver s;
  cbq::util::Random rng(7);
  addRandom3Sat(s, rng, 300, 1280);
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.solveLimited({}, state.range(0)));
  }
}
BENCHMARK(BM_BudgetedSolve)->Arg(10)->Arg(100)->Arg(1000);

// ----- CNF vs circuit backend on sweep-style cone queries -------------

constexpr int kConeVars = 24;

/// Grows a random AND cone of ~`ands` nodes over kConeVars inputs and
/// returns two structurally different but equivalent roots: a balanced
/// and a shuffled left-fold conjunction of the same internal literals —
/// exactly the shape of a sweeping compare point.
struct ConePair {
  cbq::aig::Aig g;
  cbq::aig::Lit balanced = cbq::aig::kFalse;
  cbq::aig::Lit folded = cbq::aig::kFalse;
};

void buildCone(ConePair& cone, std::size_t ands, std::uint64_t seed) {
  cbq::util::Random rng(seed);
  auto& g = cone.g;
  std::vector<cbq::aig::Lit> pool;
  for (int v = 0; v < kConeVars; ++v) pool.push_back(g.pi(v));
  while (g.numAnds() < ands) {
    const cbq::aig::Lit a =
        pool[rng.below(pool.size())] ^ rng.flip();
    const cbq::aig::Lit b =
        pool[rng.below(pool.size())] ^ rng.flip();
    pool.push_back(g.mkAnd(a, b));
  }
  // The compare-point pair: same conjuncts, different association.
  std::vector<cbq::aig::Lit> conj;
  for (int i = 0; i < 16; ++i)
    conj.push_back(pool[pool.size() - 1 - rng.below(pool.size() / 2)]);
  cone.balanced = g.mkAndAll(conj);
  std::shuffle(conj.begin(), conj.end(),
               std::mt19937_64(seed ^ 0x9e3779b97f4a7c15ull));
  cone.folded = cbq::aig::kTrue;
  for (const cbq::aig::Lit l : conj) cone.folded = g.mkAnd(cone.folded, l);
}

/// One equivalence proof per iteration on a fresh backend: the CNF side
/// pays encode + solve, the circuit side solves on the graph as-is.
void runEquivProof(benchmark::State& state, cbq::sat::BackendKind kind) {
  ConePair cone;
  buildCone(cone, static_cast<std::size_t>(state.range(0)), 42);
  for (auto _ : state) {
    const auto backend = cbq::cnf::makeSatBackend(kind, cone.g);
    const cbq::aig::Lit roots[] = {cone.balanced, cone.folded};
    backend->focusOn(roots);
    benchmark::DoNotOptimize(
        cbq::sat::checkEquiv(*backend, cone.balanced, cone.folded));
  }
  state.SetItemsProcessed(state.iterations());
}

/// One satisfiability query per iteration on a fresh backend.
void runSatQuery(benchmark::State& state, cbq::sat::BackendKind kind) {
  ConePair cone;
  buildCone(cone, static_cast<std::size_t>(state.range(0)), 7);
  for (auto _ : state) {
    const auto backend = cbq::cnf::makeSatBackend(kind, cone.g);
    const cbq::aig::Lit roots[] = {cone.balanced};
    backend->focusOn(roots);
    benchmark::DoNotOptimize(
        cbq::sat::checkSat(*backend, cone.balanced));
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_ConeEquivCnf(benchmark::State& state) {
  runEquivProof(state, cbq::sat::BackendKind::Cnf);
}
void BM_ConeEquivCircuit(benchmark::State& state) {
  runEquivProof(state, cbq::sat::BackendKind::Circuit);
}
void BM_ConeSatCnf(benchmark::State& state) {
  runSatQuery(state, cbq::sat::BackendKind::Cnf);
}
void BM_ConeSatCircuit(benchmark::State& state) {
  runSatQuery(state, cbq::sat::BackendKind::Circuit);
}
BENCHMARK(BM_ConeEquivCnf)->Arg(1000)->Arg(10000)->Arg(100000);
BENCHMARK(BM_ConeEquivCircuit)->Arg(1000)->Arg(10000)->Arg(100000);
BENCHMARK(BM_ConeSatCnf)->Arg(1000)->Arg(10000)->Arg(100000);
BENCHMARK(BM_ConeSatCircuit)->Arg(1000)->Arg(10000)->Arg(100000);

}  // namespace

BENCHMARK_MAIN();

// T3 — ablation of the optimization phase (§2.2).
//
// With the merge phase fixed on, toggles the synthesis-based
// optimizations of the cofactor disjunction:
//   none     — just F0 ∨ F1 after merging,
//   input-dc — each cofactor simplified under the other's onset as an
//              input don't-care set (constants + merges mod complement),
//   +odc     — plus the observability-DC check fRef ∨ F0' ≡ fRef ∨ F0.
//
// Expected shape: input-DC gives the bulk of the reduction (the paper
// "dedicates most of its effort" to cofactor-vs-cofactor optimization);
// ODC adds a tail on the control-dominated families; verdicts stable.

#include <cstdio>
#include <iostream>

#include "circuits/suite.hpp"
#include "mc/engines.hpp"
#include "util/table.hpp"

namespace {

struct Config {
  const char* name;
  bool opt;
  bool odc;
};

}  // namespace

int main() {
  using namespace cbq;
  std::printf("T3: optimization-phase ablation (merge phase enabled)\n");
  std::printf("(peak reached-set cone in AND nodes / time[ms])\n\n");

  const Config configs[] = {
      {"none", false, false},
      {"input-dc", true, false},
      {"+odc", true, true},
  };

  util::Table table({"instance", "iters", "none", "input-dc", "+odc",
                     "dc-repl", "odc-repl", "verdict-stable"});

  for (auto& inst : circuits::standardSuite()) {
    if (inst.expected != mc::Verdict::Safe) continue;
    std::vector<std::string> cells;
    int iters = 0;
    mc::Verdict first = mc::Verdict::Unknown;
    bool stable = true;
    std::int64_t dcRepl = 0;
    std::int64_t odcRepl = 0;
    for (const auto& cfg : configs) {
      mc::CircuitQuantReachOptions opts;
      opts.quant.mergePhase = true;
      opts.quant.optPhase = cfg.opt;
      opts.quant.dcOpts.useOdc = cfg.odc;
      opts.limits.timeLimitSeconds = 20.0;
      mc::CircuitQuantReach engine(opts);
      const auto res = engine.check(inst.net);
      iters = res.steps;
      if (first == mc::Verdict::Unknown) first = res.verdict;
      stable = stable && (res.verdict == first);
      if (cfg.opt) {
        dcRepl = res.stats.count("opt.const_repl") +
                 res.stats.count("opt.merge_repl");
      }
      if (cfg.odc) odcRepl = res.stats.count("opt.odc_repl");
      cells.push_back(
          util::Table::num(res.stats.gauge("reach.max_reached_cone"), 0) +
          " / " + util::Table::num(res.seconds * 1e3, 1));
    }
    table.addRow({inst.net.name, std::to_string(iters), cells[0], cells[1],
                  cells[2], std::to_string(dcRepl), std::to_string(odcRepl),
                  stable ? "yes" : "NO"});
  }
  table.print(std::cout);
  return 0;
}

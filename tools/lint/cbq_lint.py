#!/usr/bin/env python3
"""cbq project lint — the repo-specific rules clang-tidy cannot express.

Rules (each suppressible per line with an explained pragma):

  clock              no std::chrono::system_clock and no wall-clock
                     std::time()/time(NULL) reads outside src/util/.
                     Durations must come from util::Timer (steady_clock);
                     the run-header timestamp is the sanctioned exception.
  naked-new          no naked `new` in src/ or apps/ — ownership goes
                     through make_unique/make_shared or containers. The
                     two intentionally leaked singletons carry pragmas.
  std-mutex          no raw std::mutex / condition_variable / lock_guard /
                     unique_lock / scoped_lock outside src/util/sync.hpp.
                     Concurrency goes through the util::Mutex wrappers so
                     clang Thread Safety Analysis sees every lock.
  span-category      every CBQ_OBS_SPAN category used in code appears in
                     the README span-category table.
  fault-site         every CBQ_FAULT_POINT site used in code appears in
                     the README fault-site catalogue.
  test-registration  every tests/test_*.cpp is registered in
                     tests/CMakeLists.txt (an unregistered test silently
                     never runs).
  build-registration every src/**/*.cpp appears in compile_commands.json
                     (a source file dropped from CMake silently never
                     builds). Skipped when no compile_commands.json is
                     found.

Suppression pragma, on the offending line or the line directly above:

    // cbq-lint: allow(<rule>) <non-empty rationale>

A pragma without a rationale is itself a finding — zero bare
suppressions is part of the contract.

Exit status: 0 clean, 1 findings, 2 usage error.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path

PRAGMA_RE = re.compile(r"//\s*cbq-lint:\s*allow\(([a-z-]+)\)\s*(.*\S)?\s*$")

CLOCK_RE = re.compile(
    r"\bsystem_clock\b|\bstd::time\s*\(|[^\w:.>]time\s*\(\s*(?:NULL|nullptr|0)\s*\)"
)
NAKED_NEW_RE = re.compile(r"\bnew\b\s*(?:\(\s*std::nothrow\s*\))?\s*[A-Za-z_(]")
STD_MUTEX_RE = re.compile(
    r"\bstd::(mutex|timed_mutex|recursive_mutex|shared_mutex|"
    r"condition_variable(?:_any)?|lock_guard|unique_lock|scoped_lock)\b"
)
SPAN_RE = re.compile(r'CBQ_OBS_SPAN\(\s*"([^"]+)"')
FAULT_RE = re.compile(r'CBQ_FAULT_POINT\(\s*"([^"]+)"\s*\)')


class Finding:
    def __init__(self, path: Path, line: int, rule: str, message: str):
        self.path, self.line, self.rule, self.message = path, line, rule, message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_line_comment(line: str) -> str:
    """Code part of a line (everything before //, strings left alone —
    good enough for this codebase's // comment style)."""
    idx = line.find("//")
    return line if idx < 0 else line[:idx]


def iter_source_files(root: Path, subdirs: list[str]) -> list[Path]:
    files: list[Path] = []
    for sub in subdirs:
        base = root / sub
        if base.is_dir():
            files.extend(sorted(base.rglob("*.cpp")))
            files.extend(sorted(base.rglob("*.hpp")))
    return files


def pragma_map(lines: list[str]) -> dict[int, tuple[str, str]]:
    """1-based line -> (rule, rationale) for lines covered by a pragma:
    the pragma's own line, any directly following comment-only lines (a
    wrapped rationale), and the first code line after them."""
    out: dict[int, tuple[str, str]] = {}
    for i, line in enumerate(lines, start=1):
        m = PRAGMA_RE.search(line)
        if not m:
            continue
        entry = (m.group(1), (m.group(2) or "").strip())
        out[i] = entry
        j = i + 1
        while j <= len(lines) and lines[j - 1].strip().startswith("//"):
            out[j] = entry
            j += 1
        out[j] = entry
    return out


def scan_file(
    path: Path, rel: Path, findings: list[Finding], used_spans: dict[str, tuple[Path, int]],
    used_faults: dict[str, tuple[Path, int]]
) -> None:
    lines = path.read_text(encoding="utf-8").splitlines()
    pragmas = pragma_map(lines)
    in_util = rel.parts[:2] == ("src", "util")
    is_sync = rel.as_posix() == "src/util/sync.hpp"
    in_src_or_apps = rel.parts[0] in ("src", "apps")

    def check(lineno: int, rule: str, message: str) -> None:
        p = pragmas.get(lineno)
        if p and p[0] == rule:
            if not p[1]:
                findings.append(
                    Finding(rel, lineno, rule,
                            "bare suppression: allow() pragma needs a rationale"))
            return
        findings.append(Finding(rel, lineno, rule, message))

    for i, raw in enumerate(lines, start=1):
        code = strip_line_comment(raw)
        if not code.strip():
            continue
        for m in SPAN_RE.finditer(code):
            used_spans.setdefault(m.group(1), (rel, i))
        for m in FAULT_RE.finditer(code):
            used_faults.setdefault(m.group(1), (rel, i))
        if not in_util and CLOCK_RE.search(code):
            check(i, "clock",
                  "wall-clock read outside src/util/ — use util::Timer "
                  "(steady_clock) for durations")
        if in_src_or_apps and NAKED_NEW_RE.search(code):
            check(i, "naked-new",
                  "naked new — use std::make_unique/make_shared or a container")
        if rel.parts[0] == "src" and not is_sync and STD_MUTEX_RE.search(code):
            check(i, "std-mutex",
                  "raw std synchronization primitive — use the annotated "
                  "util::Mutex/MutexLock/UniqueLock/CondVar wrappers "
                  "(util/sync.hpp) so thread-safety analysis sees the lock")


def readme_table_entries(readme: str, header_cell: str) -> set[str]:
    """First-column backticked entries of the markdown table whose header
    row's first cell is `header_cell`."""
    entries: set[str] = set()
    in_table = False
    for line in readme.splitlines():
        stripped = line.strip()
        if not in_table:
            cells = [c.strip() for c in stripped.split("|")]
            if len(cells) > 2 and cells[1] == header_cell:
                in_table = True
            continue
        if not stripped.startswith("|"):
            break
        m = re.match(r"\|\s*`([^`]+)`", stripped)
        if m:
            entries.add(m.group(1))
    return entries


def find_compile_commands(root: Path, explicit: str | None) -> Path | None:
    if explicit:
        p = Path(explicit)
        return p if p.is_file() else None
    for cand in sorted(root.glob("build*/compile_commands.json")):
        return cand
    return None


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--root", default=None,
                    help="repo root (default: two levels above this script)")
    ap.add_argument("--compile-commands", default=None,
                    help="explicit compile_commands.json path")
    args = ap.parse_args()

    root = Path(args.root).resolve() if args.root else \
        Path(__file__).resolve().parents[2]
    readme_path = root / "README.md"
    if not (root / "src").is_dir() or not readme_path.is_file():
        print(f"cbq_lint: {root} does not look like the cbq repo root",
              file=sys.stderr)
        return 2

    findings: list[Finding] = []
    used_spans: dict[str, tuple[Path, int]] = {}
    used_faults: dict[str, tuple[Path, int]] = {}

    for path in iter_source_files(root, ["src", "apps", "bench", "examples"]):
        scan_file(path, path.relative_to(root), findings, used_spans,
                  used_faults)

    readme = readme_path.read_text(encoding="utf-8")
    documented_spans = readme_table_entries(readme, "category")
    documented_sites = readme_table_entries(readme, "site")
    for cat, (rel, line) in sorted(used_spans.items()):
        if cat not in documented_spans:
            findings.append(Finding(
                rel, line, "span-category",
                f"span category '{cat}' is missing from the README "
                "span-category table"))
    for site, (rel, line) in sorted(used_faults.items()):
        if site not in documented_sites:
            findings.append(Finding(
                rel, line, "fault-site",
                f"fault site '{site}' is missing from the README "
                "fault-site catalogue"))

    tests_cmake = root / "tests" / "CMakeLists.txt"
    if tests_cmake.is_file():
        registered = tests_cmake.read_text(encoding="utf-8")
        for test in sorted((root / "tests").glob("test_*.cpp")):
            if test.name not in registered:
                findings.append(Finding(
                    test.relative_to(root), 1, "test-registration",
                    f"{test.name} is not registered in tests/CMakeLists.txt "
                    "— it will never run"))

    cc = find_compile_commands(root, args.compile_commands)
    if cc is not None:
        built = {Path(e["file"]).name for e in json.loads(cc.read_text())}
        for src in sorted((root / "src").rglob("*.cpp")):
            if src.name not in built:
                findings.append(Finding(
                    src.relative_to(root), 1, "build-registration",
                    f"{src.name} is absent from {cc.relative_to(root)} "
                    "— it is not part of the build"))
    else:
        print("cbq_lint: note: no compile_commands.json found, "
              "build-registration rule skipped", file=sys.stderr)

    for f in findings:
        print(f)
    if findings:
        print(f"cbq_lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print("cbq_lint: clean", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())

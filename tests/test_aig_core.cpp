// Structural unit tests for the AIG manager: literal encoding, folding
// rules, structural hashing, two-level rewrites, traversal helpers.

#include <gtest/gtest.h>

#include <sstream>

#include "aig/aig.hpp"
#include "aig/dot.hpp"

namespace cbq {
namespace {

using aig::Aig;
using aig::kFalse;
using aig::kTrue;
using aig::Lit;

TEST(Lit, EncodingRoundTrip) {
  const Lit l(5, true);
  EXPECT_EQ(l.node(), 5u);
  EXPECT_TRUE(l.negated());
  EXPECT_EQ((!l).node(), 5u);
  EXPECT_FALSE((!l).negated());
  EXPECT_EQ(!!l, l);
  EXPECT_EQ(l ^ false, l);
  EXPECT_EQ(l ^ true, !l);
  EXPECT_EQ(l.positive(), Lit(5, false));
}

TEST(Lit, Constants) {
  EXPECT_TRUE(kFalse.isFalse());
  EXPECT_TRUE(kTrue.isTrue());
  EXPECT_TRUE(kFalse.isConstant());
  EXPECT_TRUE(kTrue.isConstant());
  EXPECT_EQ(!kFalse, kTrue);
}

TEST(Aig, FreshManagerHasOnlyConstant) {
  Aig g;
  EXPECT_EQ(g.numNodes(), 1u);
  EXPECT_EQ(g.numPis(), 0u);
  EXPECT_EQ(g.numAnds(), 0u);
  EXPECT_TRUE(g.isConst(0));
}

TEST(Aig, PiIsIdempotentPerVar) {
  Aig g;
  const Lit a = g.pi(7);
  const Lit b = g.pi(7);
  EXPECT_EQ(a, b);
  EXPECT_EQ(g.numPis(), 1u);
  EXPECT_TRUE(g.hasPi(7));
  EXPECT_FALSE(g.hasPi(8));
  EXPECT_EQ(g.piVar(a.node()), 7u);
  EXPECT_EQ(g.piNodeOf(7), a.node());
}

TEST(Aig, OneLevelFoldingRules) {
  Aig g;
  const Lit a = g.pi(0);
  const Lit b = g.pi(1);
  EXPECT_EQ(g.mkAnd(a, a), a);           // idempotence
  EXPECT_EQ(g.mkAnd(a, !a), kFalse);     // contradiction
  EXPECT_EQ(g.mkAnd(a, kTrue), a);       // identity
  EXPECT_EQ(g.mkAnd(kTrue, a), a);
  EXPECT_EQ(g.mkAnd(a, kFalse), kFalse); // annihilator
  EXPECT_EQ(g.mkAnd(kFalse, b), kFalse);
  EXPECT_EQ(g.numAnds(), 0u);            // no node was built
}

TEST(Aig, StructuralHashingCommutative) {
  Aig g;
  const Lit a = g.pi(0);
  const Lit b = g.pi(1);
  EXPECT_EQ(g.mkAnd(a, b), g.mkAnd(b, a));
  EXPECT_EQ(g.mkAnd(!a, b), g.mkAnd(b, !a));
  EXPECT_EQ(g.numAnds(), 2u);
}

TEST(Aig, TwoLevelAbsorption) {
  Aig g;
  const Lit a = g.pi(0);
  const Lit b = g.pi(1);
  const Lit ab = g.mkAnd(a, b);
  EXPECT_EQ(g.mkAnd(ab, a), ab);       // (a&b)&a = a&b
  EXPECT_EQ(g.mkAnd(ab, !a), kFalse);  // (a&b)&!a = 0
  // OR absorption through De Morgan: a | (a&b) = a.
  EXPECT_EQ(g.mkOr(a, ab), a);
}

TEST(Aig, TwoLevelSubstitution) {
  Aig g;
  const Lit a = g.pi(0);
  const Lit b = g.pi(1);
  const Lit ab = g.mkAnd(a, b);
  // a & !(a&b) = a & !b.
  EXPECT_EQ(g.mkAnd(a, !ab), g.mkAnd(a, !b));
}

TEST(Aig, TwoLevelSiblingContradiction) {
  Aig g;
  const Lit a = g.pi(0);
  const Lit b = g.pi(1);
  const Lit c = g.pi(2);
  EXPECT_EQ(g.mkAnd(g.mkAnd(a, b), g.mkAnd(!a, c)), kFalse);
}

TEST(Aig, TwoLevelRulesCanBeDisabled) {
  Aig g;
  g.setTwoLevelRules(false);
  const Lit a = g.pi(0);
  const Lit b = g.pi(1);
  const Lit ab = g.mkAnd(a, b);
  const Lit r = g.mkAnd(a, !ab);  // no substitution rewrite: new node
  EXPECT_TRUE(g.isAnd(r.node()));
  EXPECT_EQ(g.fanin0(r.node()).positive() == a.positive() ||
                g.fanin1(r.node()).positive() == a.positive(),
            true);
}

TEST(Aig, XorXnorMuxShapes) {
  Aig g;
  const Lit a = g.pi(0);
  const Lit b = g.pi(1);
  EXPECT_EQ(g.mkXor(a, a), kFalse);
  EXPECT_EQ(g.mkXor(a, !a), kTrue);
  EXPECT_EQ(g.mkXnor(a, a), kTrue);
  EXPECT_EQ(g.mkXor(a, kFalse), a);
  EXPECT_EQ(g.mkXor(a, kTrue), !a);
  EXPECT_EQ(g.mkMux(kTrue, a, b), a);
  EXPECT_EQ(g.mkMux(kFalse, a, b), b);
  EXPECT_EQ(g.mkMux(a, b, b), b);
}

TEST(Aig, AndAllOrAllEdgeCases) {
  Aig g;
  EXPECT_EQ(g.mkAndAll({}), kTrue);
  EXPECT_EQ(g.mkOrAll({}), kFalse);
  const Lit a = g.pi(0);
  const Lit single[] = {a};
  EXPECT_EQ(g.mkAndAll(single), a);
  EXPECT_EQ(g.mkOrAll(single), a);
}

TEST(Aig, LevelsIncrease) {
  Aig g;
  const Lit a = g.pi(0);
  const Lit b = g.pi(1);
  EXPECT_EQ(g.level(a.node()), 0u);
  const Lit ab = g.mkAnd(a, b);
  EXPECT_EQ(g.level(ab.node()), 1u);
  const Lit deep = g.mkAnd(ab, g.pi(2));
  EXPECT_EQ(g.level(deep.node()), 2u);
}

TEST(Aig, ConeAndsTopologicalOrder) {
  Aig g;
  const Lit a = g.pi(0);
  const Lit b = g.pi(1);
  const Lit ab = g.mkAnd(a, b);
  const Lit abc = g.mkAnd(ab, g.pi(2));
  const Lit roots[] = {abc};
  const auto order = g.coneAnds(roots);
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], ab.node());
  EXPECT_EQ(order[1], abc.node());
}

TEST(Aig, ConeSizeCountsSharedOnce) {
  Aig g;
  const Lit a = g.pi(0);
  const Lit b = g.pi(1);
  const Lit ab = g.mkAnd(a, b);
  const Lit x = g.mkAnd(ab, g.pi(2));
  const Lit y = g.mkAnd(ab, g.pi(3));
  const Lit both[] = {x, y};
  EXPECT_EQ(g.coneSize(both), 3u);  // ab shared
  EXPECT_EQ(g.coneSize(x), 2u);
}

TEST(Aig, SupportVarsSorted) {
  Aig g;
  const Lit f = g.mkAnd(g.pi(9), g.mkOr(g.pi(2), g.pi(5)));
  const auto s = g.supportVars(f);
  EXPECT_EQ(s, (std::vector<aig::VarId>{2, 5, 9}));
}

TEST(Aig, DependsOn) {
  Aig g;
  const Lit f = g.mkAnd(g.pi(0), g.pi(1));
  EXPECT_TRUE(g.dependsOn(f, 0));
  EXPECT_TRUE(g.dependsOn(f, 1));
  EXPECT_FALSE(g.dependsOn(f, 2));
  EXPECT_FALSE(g.dependsOn(kTrue, 0));
}

TEST(AigDot, WritesWellFormedGraph) {
  Aig g;
  const Lit f = g.mkAnd(g.pi(3), !g.mkOr(g.pi(1), g.pi(2)));
  std::ostringstream os;
  const Lit roots[] = {f};
  aig::writeDot(g, roots, os, "test");
  const std::string dot = os.str();
  EXPECT_NE(dot.find("digraph \"test\""), std::string::npos);
  EXPECT_NE(dot.find("x3"), std::string::npos);
  EXPECT_NE(dot.find("style=dashed"), std::string::npos);  // complements
  EXPECT_NE(dot.find("root 0"), std::string::npos);
  EXPECT_EQ(dot.back(), '\n');
}

TEST(AigDot, ConstantRootStillValid) {
  Aig g;
  std::ostringstream os;
  const Lit roots[] = {aig::kTrue};
  aig::writeDot(g, roots, os);
  EXPECT_NE(os.str().find("label=\"0\""), std::string::npos);
}

TEST(Aig, ConstantConesAreEmpty) {
  Aig g;
  EXPECT_EQ(g.coneSize(kTrue), 0u);
  EXPECT_TRUE(g.supportVars(kFalse).empty());
}

}  // namespace
}  // namespace cbq

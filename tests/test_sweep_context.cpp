// Persistent sweep-session tests: context-shared sweeps must agree with
// fresh-context sweeps across successive calls, the pair cache must be
// dropped (or correctly remapped) when the manager identity changes, and
// the flat signature engine's incremental appendWord must be bit-for-bit
// identical to a full resimulation.

#include <gtest/gtest.h>

#include "cnf/aig_cnf.hpp"
#include "helpers.hpp"
#include "sat/solver.hpp"
#include "sweep/signatures.hpp"
#include "sweep/sweep_context.hpp"
#include "sweep/sweeper.hpp"
#include "util/random.hpp"

namespace cbq {
namespace {

using aig::Aig;
using aig::Lit;
using sweep::sweep;
using sweep::SweepContext;
using sweep::SweepOptions;

class SweepContextRandomized : public ::testing::TestWithParam<int> {};

TEST_P(SweepContextRandomized, PersistentAgreesWithFreshAcrossCalls) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  util::Random rng(seed * 101 + 7);
  Aig g;
  SweepContext ctx;

  // Three successive sweeps over growing cones in one manager, all through
  // one persistent context; every result must match a fresh-context sweep
  // of the same roots semantically (truth table referee).
  std::vector<Lit> formulas;
  for (int call = 0; call < 3; ++call) {
    formulas.push_back(test::randomFormula(g, rng, 5, 40));
    const Lit f = formulas.back();
    const auto tt = test::truthTable(g, f, 5);

    SweepOptions withCtx;
    withCtx.context = &ctx;
    withCtx.seed = seed + static_cast<std::uint64_t>(call);
    const Lit roots[] = {f};
    const auto persistent = sweep(g, roots, withCtx);
    EXPECT_EQ(test::truthTable(g, persistent.roots[0], 5), tt)
        << "call " << call;

    SweepOptions freshOpts;
    freshOpts.seed = seed + static_cast<std::uint64_t>(call);
    const auto fresh = sweep(g, roots, freshOpts);
    EXPECT_EQ(test::truthTable(g, fresh.roots[0], 5), tt) << "call " << call;
    // Both pipelines must agree on the function; structure may differ
    // (the persistent context can merge through cached facts).
    EXPECT_EQ(test::truthTable(g, persistent.roots[0], 5),
              test::truthTable(g, fresh.roots[0], 5));
  }
  EXPECT_TRUE(ctx.boundTo(g));
}

TEST_P(SweepContextRandomized, RepeatSweepHitsPairCache) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  util::Random rng(seed * 131 + 3);
  Aig g;
  // Two structurally different builds of equivalent functions so the SAT
  // layer has real work the first time around.
  const Lit a = g.pi(0);
  const Lit b = g.pi(1);
  const Lit c = g.pi(2);
  const Lit noise = test::randomFormula(g, rng, 3, 25);
  const Lit f1 = g.mkOr(g.mkAnd(a, b), g.mkAnd(a, c));
  const Lit f2 = g.mkAnd(a, g.mkOr(b, c));
  const Lit roots[] = {g.mkXor(f1, noise), g.mkXor(f2, noise)};

  SweepContext ctx;
  SweepOptions opts;
  opts.context = &ctx;
  opts.useBdd = false;  // force the SAT layer to do the proving
  const auto first = sweep(g, roots, opts);
  const auto lookupsAfterFirst = ctx.counters().lookups;

  // Same roots again: everything provable was recorded, so the second
  // call must consult the cache and issue no more SAT checks than before.
  const auto second = sweep(g, roots, opts);
  EXPECT_GT(ctx.counters().lookups, lookupsAfterFirst);
  EXPECT_LE(second.stats.satChecks, first.stats.satChecks);
  if (first.stats.satMerges > 0) {
    EXPECT_GT(ctx.counters().hitsProven + ctx.counters().hitsRefuted, 0u);
  }
  EXPECT_EQ(test::truthTable(g, first.roots[0], 3 + 3),
            test::truthTable(g, second.roots[0], 3 + 3));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SweepContextRandomized,
                         ::testing::Range(0, 8));

TEST(SweepContext, RebindDropsCacheOnManagerIdentityChange) {
  Aig g;
  const Lit a = g.pi(0);
  const Lit b = g.pi(1);
  const Lit f1 = g.mkOr(g.mkAnd(a, b), g.mkAnd(a, !b));  // = a
  SweepContext ctx;
  ctx.bind(g);
  ctx.recordProven(f1, a);
  EXPECT_EQ(ctx.lookupPair(f1, a), SweepContext::PairFact::Proven);
  const std::uint64_t uidBefore = g.uid();

  // Compaction idiom: transfer the live cone into a fresh manager and
  // move it over the old one. The object address is unchanged but the
  // identity is new — bind() must detect it and drop the cache.
  Aig fresh;
  const Lit roots[] = {f1};
  fresh.transferFrom(g, roots);
  g = std::move(fresh);
  EXPECT_NE(g.uid(), uidBefore);
  EXPECT_FALSE(ctx.boundTo(g));

  const auto rebinds = ctx.counters().rebinds;
  EXPECT_TRUE(ctx.bind(g));
  EXPECT_EQ(ctx.counters().rebinds, rebinds + 1);
  // The old fact must be gone — its NodeIds mean something else now.
  EXPECT_EQ(ctx.lookupPair(f1, a), SweepContext::PairFact::Unknown);
}

TEST(SweepContext, RebindRemappedCarriesFactsAcrossCompaction) {
  Aig g;
  util::Random rng(99);
  const Lit f = test::randomFormula(g, rng, 4, 30);
  const Lit p = g.pi(0);
  SweepContext ctx;
  ctx.bind(g);
  ctx.recordProven(f, p);          // survives: both cones stay live
  const Lit scratch = g.mkAnd(g.pi(7), g.pi(8));
  ctx.recordRefuted(scratch, p);   // dies: scratch is not transferred

  Aig fresh;
  std::vector<std::pair<aig::NodeId, Lit>> xfer;
  const Lit roots[] = {f, p};
  const auto moved = fresh.transferFrom(g, roots, xfer);
  g = std::move(fresh);
  ctx.rebindRemapped(g, xfer);

  EXPECT_TRUE(ctx.boundTo(g));
  EXPECT_EQ(ctx.lookupPair(moved[0], moved[1]),
            SweepContext::PairFact::Proven);
  EXPECT_GE(ctx.counters().remaps, 1u);
}

TEST(SweepContext, SweepAfterCompactionStaysSound) {
  // End-to-end: sweep, compact (move-assign), sweep again with the same
  // context — the second sweep must rebind and stay semantically correct.
  bool anyRebind = false;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    util::Random rng(seed * 17);
    Aig g;
    SweepContext ctx;
    Lit f = test::randomFormula(g, rng, 5, 50);
    SweepOptions opts;
    opts.context = &ctx;
    {
      const Lit roots[] = {f};
      f = sweep(g, roots, opts).roots[0];
    }
    const auto tt = test::truthTable(g, f, 5);

    Aig fresh;
    const Lit live[] = {f};
    f = fresh.transferFrom(g, live).front();
    g = std::move(fresh);

    const Lit roots2[] = {f};
    const auto swept = sweep(g, roots2, opts);
    EXPECT_EQ(test::truthTable(g, swept.roots[0], 5), tt) << seed;
    // A rebind only happens when both sweeps saw non-empty cones (a
    // sweep of a constant/PI root returns before binding).
    anyRebind = anyRebind || ctx.counters().rebinds >= 1;
  }
  EXPECT_TRUE(anyRebind);
}

TEST(Signatures, IncrementalAppendEqualsFullResimulation) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    util::Random rng(seed * 23 + 5);
    Aig g;
    const Lit f = test::randomFormula(g, rng, 6, 60);
    const Lit roots[] = {f};
    const auto order = g.coneAnds(roots);
    const auto support = g.supportVars(roots);
    if (order.empty()) continue;

    sweep::Signatures sigs(g, order, support, rng, 2, 2 + 6);

    // Append a few counterexample words (arbitrary bit patterns).
    for (int round = 0; round < 4; ++round) {
      std::vector<std::uint64_t> cexBits(support.size());
      for (auto& w : cexBits) w = rng.next64() & 0xff;
      ASSERT_TRUE(sigs.appendWord(cexBits, 8, rng));
    }

    // Snapshot the incrementally built signatures, then recompute every
    // column from the stored PI words — must match bit for bit.
    std::vector<std::vector<std::uint64_t>> before;
    for (const aig::NodeId n : order)
      before.emplace_back(sigs.of(n).begin(), sigs.of(n).end());
    sigs.resimulateAll();
    for (std::size_t i = 0; i < order.size(); ++i) {
      const auto now = sigs.of(order[i]);
      ASSERT_EQ(before[i].size(), now.size());
      for (std::size_t w = 0; w < now.size(); ++w)
        EXPECT_EQ(before[i][w], now[w]) << "node " << order[i] << " word "
                                        << w << " seed " << seed;
    }
  }
}

TEST(Signatures, AppendStopsAtCapacity) {
  Aig g;
  const Lit f = g.mkAnd(g.pi(0), g.pi(1));
  const Lit roots[] = {f};
  const auto order = g.coneAnds(roots);
  const auto support = g.supportVars(roots);
  util::Random rng(5);
  sweep::Signatures sigs(g, order, support, rng, 1, 2);
  EXPECT_EQ(sigs.words(), 1u);
  std::vector<std::uint64_t> cex(support.size(), 1);
  EXPECT_TRUE(sigs.appendWord(cex, 1, rng));
  EXPECT_EQ(sigs.words(), 2u);
  EXPECT_FALSE(sigs.appendWord(cex, 1, rng));  // at capacity: refused
  EXPECT_EQ(sigs.words(), 2u);
}

TEST(SolverFocus, FocusedQueriesStaySoundInSharedDatabase) {
  // Two disjoint cones in one solver; focusing on one must not change
  // the answers for queries inside it, and a later focus on the other
  // cone must still decide that cone's variables (heap rebuild).
  Aig g;
  const Lit x = g.pi(0);
  const Lit y = g.pi(1);
  const Lit coneA = g.mkXor(x, y);
  const Lit u = g.pi(2);
  const Lit v = g.pi(3);
  const Lit coneB = g.mkAnd(u, v);

  sat::Solver solver;
  cnf::AigCnf cnf(g, solver);

  const Lit aRoots[] = {coneA};
  cnf.focusOn(aRoots);
  EXPECT_EQ(cnf::checkSat(cnf, coneA), cnf::Verdict::Holds);
  EXPECT_EQ(cnf::checkEquiv(cnf, coneA, coneA), cnf::Verdict::Holds);
  EXPECT_EQ(cnf::checkConstant(cnf, coneA, false), cnf::Verdict::Fails);

  const Lit bRoots[] = {coneB};
  cnf.focusOn(bRoots);
  EXPECT_EQ(cnf::checkSat(cnf, coneB), cnf::Verdict::Holds);
  EXPECT_TRUE(cnf.modelOf(2));
  EXPECT_TRUE(cnf.modelOf(3));
  EXPECT_EQ(cnf::checkImplies(cnf, coneB, u), cnf::Verdict::Holds);
  EXPECT_EQ(cnf::checkImplies(cnf, u, coneB), cnf::Verdict::Fails);

  // Unfocus: a full-assignment query over both cones still works.
  solver.unfocusDecisions();
  EXPECT_EQ(cnf::checkSat(cnf, g.mkAnd(coneA, coneB)), cnf::Verdict::Holds);
}

}  // namespace
}  // namespace cbq

// Unit tests for the util module: RNG determinism, timers, stats, tables.

#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <thread>

#include "util/random.hpp"
#include "obs/metrics.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace cbq {
namespace {

TEST(Random, SameSeedSameStream) {
  util::Random a(42);
  util::Random b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next64(), b.next64());
}

TEST(Random, DifferentSeedsDiverge) {
  util::Random a(1);
  util::Random b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next64() == b.next64()) ++equal;
  EXPECT_LT(equal, 4);
}

TEST(Random, ReseedRestartsStream) {
  util::Random a(7);
  const auto x = a.next64();
  a.next64();
  a.reseed(7);
  EXPECT_EQ(a.next64(), x);
}

TEST(Random, BelowStaysInRange) {
  util::Random r(3);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(r.below(17), 17u);
}

TEST(Random, RangeInclusive) {
  util::Random r(5);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = r.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all 7 values hit
}

TEST(Random, UnitInHalfOpenInterval) {
  util::Random r(11);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.unit();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Random, ChanceExtremes) {
  util::Random r(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(r.chance(10, 10));
    EXPECT_FALSE(r.chance(0, 10));
  }
}

TEST(Random, FlipIsRoughlyFair) {
  util::Random r(17);
  int heads = 0;
  for (int i = 0; i < 10000; ++i) heads += r.flip() ? 1 : 0;
  EXPECT_GT(heads, 4500);
  EXPECT_LT(heads, 5500);
}

TEST(Timer, MonotonicNonNegative) {
  util::Timer t;
  const double a = t.seconds();
  const double b = t.seconds();
  EXPECT_GE(a, 0.0);
  EXPECT_GE(b, a);
}

TEST(Timer, RestartResets) {
  util::Timer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  const double before = t.seconds();
  t.restart();
  EXPECT_LT(t.seconds(), before);
}

// Deadline semantics moved to portfolio::Budget (see test_portfolio.cpp).

TEST(Metrics, CountersAccumulate) {
  obs::Metrics s;
  EXPECT_EQ(s.count("x"), 0);
  s.add("x");
  s.add("x", 4);
  EXPECT_EQ(s.count("x"), 5);
}

TEST(Metrics, GaugesSetAndHigh) {
  obs::Metrics s;
  s.set("g", 2.0);
  EXPECT_DOUBLE_EQ(s.gauge("g"), 2.0);
  s.high("g", 1.0);
  EXPECT_DOUBLE_EQ(s.gauge("g"), 2.0);  // high keeps max
  s.high("g", 3.5);
  EXPECT_DOUBLE_EQ(s.gauge("g"), 3.5);
}

TEST(Metrics, MergeAddsCountersMaxesGauges) {
  obs::Metrics a;
  obs::Metrics b;
  a.add("c", 2);
  b.add("c", 3);
  a.high("g", 1.0);
  b.high("g", 5.0);
  a.merge(b);
  EXPECT_EQ(a.count("c"), 5);
  EXPECT_DOUBLE_EQ(a.gauge("g"), 5.0);
}

TEST(Metrics, ClearEmpties) {
  obs::Metrics s;
  s.add("c");
  s.set("g", 1.0);
  s.clear();
  EXPECT_EQ(s.count("c"), 0);
  EXPECT_DOUBLE_EQ(s.gauge("g"), 0.0);
}

TEST(Table, AlignsAndPads) {
  util::Table t({"name", "value"});
  t.addRow({"a", "1"});
  t.addRow({"long-name"});  // short row padded
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("long-name"), std::string::npos);
  EXPECT_NE(s.find('+'), std::string::npos);
}

TEST(Table, NumFormatsFixed) {
  EXPECT_EQ(util::Table::num(1.234, 2), "1.23");
  EXPECT_EQ(util::Table::num(2.0, 0), "2");
}

}  // namespace
}  // namespace cbq

// Core-contribution tests: circuit-based quantification must agree with
// the BDD reference ∃x.f = f|x=0 ∨ f|x=1 on randomized formulas, across
// every pipeline configuration; multi-variable scheduling must fully
// eliminate the requested support; partial quantification must abort and
// report residuals as specified in §4.

#include <gtest/gtest.h>

#include "bdd/bdd.hpp"
#include "helpers.hpp"
#include "quant/quantifier.hpp"
#include "util/random.hpp"

namespace cbq {
namespace {

using aig::Aig;
using aig::Lit;
using aig::VarId;
using quant::Quantifier;
using quant::QuantOptions;

/// Reference ∃vars.f computed with BDDs.
std::vector<bool> referenceExists(const Aig& g, Lit f,
                                  std::span<const VarId> vars, int numVars) {
  bdd::BddManager m;
  for (int v = 0; v < numVars; ++v)
    m.registerVar(static_cast<VarId>(v));
  const bdd::BddRef fb = bdd::aigToBdd(g, f, m);
  const bdd::BddRef ex = m.exists(fb, vars);
  std::vector<bool> tt;
  for (std::uint64_t mask = 0; mask < (std::uint64_t{1} << numVars); ++mask) {
    std::unordered_map<VarId, bool> a;
    for (int v = 0; v < numVars; ++v)
      a.emplace(static_cast<VarId>(v), ((mask >> v) & 1) != 0);
    tt.push_back(m.evaluate(ex, a));
  }
  return tt;
}

class QuantRandomized : public ::testing::TestWithParam<int> {};

TEST_P(QuantRandomized, SingleVarMatchesBddReference) {
  util::Random rng(static_cast<std::uint64_t>(GetParam()) * 211 + 1);
  Aig g;
  const Lit f = test::randomFormula(g, rng, 5, 50);
  Quantifier q(g);
  for (VarId v = 0; v < 5; ++v) {
    const Lit r = q.quantifyVarForced(f, v);
    EXPECT_FALSE(g.dependsOn(r, v));
    const VarId vars[] = {v};
    EXPECT_EQ(test::truthTable(g, r, 5), referenceExists(g, f, vars, 5))
        << "var " << v;
  }
}

TEST_P(QuantRandomized, PipelineVariantsAllCorrect) {
  util::Random rng(static_cast<std::uint64_t>(GetParam()) * 223 + 2);
  Aig g;
  const Lit f = test::randomFormula(g, rng, 5, 50);
  const VarId v = 1;
  const VarId vars[] = {v};
  const auto expect = referenceExists(g, f, vars, 5);

  for (const bool merge : {false, true}) {
    for (const bool opt : {false, true}) {
      for (const bool finalSweep : {false, true}) {
        QuantOptions o;
        o.mergePhase = merge;
        o.optPhase = opt;
        o.finalSweep = finalSweep;
        Quantifier q(g, o);
        const Lit r = q.quantifyVarForced(f, v);
        EXPECT_EQ(test::truthTable(g, r, 5), expect)
            << "merge=" << merge << " opt=" << opt << " fs=" << finalSweep;
      }
    }
  }
}

TEST_P(QuantRandomized, MultiVarMatchesBddReference) {
  util::Random rng(static_cast<std::uint64_t>(GetParam()) * 227 + 3);
  Aig g;
  const Lit f = test::randomFormula(g, rng, 6, 60);
  const VarId vars[] = {0, 2, 4};
  Quantifier q(g);
  const auto r = q.quantifyAll(f, vars);
  EXPECT_TRUE(r.residual.empty());  // defaults should manage these sizes
  for (const VarId v : vars) EXPECT_FALSE(g.dependsOn(r.f, v));
  EXPECT_EQ(test::truthTable(g, r.f, 6), referenceExists(g, f, vars, 6));
}

TEST_P(QuantRandomized, QuantifyingFullSupportYieldsConstant) {
  util::Random rng(static_cast<std::uint64_t>(GetParam()) * 229 + 4);
  Aig g;
  const Lit f = test::randomFormula(g, rng, 5, 40);
  const VarId vars[] = {0, 1, 2, 3, 4};
  Quantifier q(g);
  const auto r = q.quantifyAll(f, vars);
  ASSERT_TRUE(r.residual.empty());
  ASSERT_TRUE(r.f.isConstant());
  // ∃all.f = true iff f is satisfiable.
  const auto tt = test::truthTable(g, f, 5);
  const bool satisfiable =
      std::any_of(tt.begin(), tt.end(), [](bool x) { return x; });
  EXPECT_EQ(r.f.isTrue(), satisfiable);
}

INSTANTIATE_TEST_SUITE_P(Seeds, QuantRandomized, ::testing::Range(0, 10));

TEST(Quant, TrivialCases) {
  Aig g;
  Quantifier q(g);
  // Constants and non-support variables.
  EXPECT_EQ(q.quantifyVarForced(aig::kTrue, 0), aig::kTrue);
  EXPECT_EQ(q.quantifyVarForced(aig::kFalse, 0), aig::kFalse);
  const Lit f = g.mkAnd(g.pi(0), g.pi(1));
  EXPECT_EQ(q.quantifyVarForced(f, 9), f);
  // ∃x.x = true; ∃x.!x = true.
  EXPECT_EQ(q.quantifyVarForced(g.pi(0), 0), aig::kTrue);
  EXPECT_EQ(q.quantifyVarForced(!g.pi(0), 0), aig::kTrue);
  // ∃x.(x & y) = y.
  EXPECT_EQ(q.quantifyVarForced(f, 0), g.pi(1));
}

TEST(Quant, EqualCofactorsShortCircuit) {
  Aig g;
  // f = y | (x & !x & ...) — x vanishes: cofactors equal.
  const Lit f = g.mkOr(g.pi(1), g.mkAnd(g.pi(0), aig::kFalse));
  Quantifier q(g);
  EXPECT_EQ(q.quantifyVarForced(f, 0), g.pi(1));
  EXPECT_EQ(q.stats().count("quant.vars_trivial"), 1);
}

TEST(Quant, OppositeCofactorsGiveTautology) {
  Aig g;
  // f = x XOR y: cofactors w.r.t. x are y and !y -> ∃x.f = true.
  const Lit f = g.mkXor(g.pi(0), g.pi(1));
  Quantifier q(g);
  EXPECT_EQ(q.quantifyVarForced(f, 0), aig::kTrue);
}

TEST(Quant, AbortOnTinyGrowthBudget) {
  // A formula where eliminating the variable genuinely duplicates logic:
  // growthLimit 0 with no slack must abort.
  Aig g;
  util::Random rng(77);
  const Lit f = test::randomFormula(g, rng, 6, 80);
  VarId pick = 0;
  for (VarId v = 0; v < 6; ++v)
    if (g.dependsOn(f, v)) pick = v;
  QuantOptions o;
  o.growthLimit = 0.0;
  o.growthSlack = 0;
  o.mergePhase = false;
  o.optPhase = false;
  Quantifier q(g, o);
  const auto r = q.quantifyVar(f, pick);
  EXPECT_FALSE(r.has_value());
  EXPECT_EQ(q.stats().count("quant.vars_aborted"), 1);
}

TEST(Quant, PartialQuantificationReportsResiduals) {
  Aig g;
  util::Random rng(78);
  const Lit f = test::randomFormula(g, rng, 6, 80);
  QuantOptions o;
  o.growthLimit = 0.0;
  o.growthSlack = 0;
  o.mergePhase = false;
  o.optPhase = false;
  o.abortRetries = 0;
  Quantifier q(g, o);
  const auto support = g.supportVars(f);
  const auto r = q.quantifyAll(f, support);
  // Whatever was aborted must still be in the result's support; whatever
  // is absent from `residual` must be gone.
  const auto after = g.supportVars(r.f);
  for (const VarId v : r.residual)
    EXPECT_TRUE(std::binary_search(after.begin(), after.end(), v));
  for (const VarId v : support) {
    const bool res =
        std::binary_search(r.residual.begin(), r.residual.end(), v);
    if (!res) {
      EXPECT_FALSE(std::binary_search(after.begin(), after.end(), v));
    }
  }
}

TEST(Quant, ForcedModeIgnoresGrowthBudget) {
  Aig g;
  util::Random rng(79);
  const Lit f = test::randomFormula(g, rng, 5, 60);
  QuantOptions o;
  o.growthLimit = 0.0;
  o.growthSlack = 0;
  Quantifier q(g, o);
  const Lit r = q.quantifyVarForced(f, 0);
  EXPECT_FALSE(g.dependsOn(r, 0));
}

TEST(Quant, StatsAccumulateAcrossCalls) {
  Aig g;
  util::Random rng(80);
  const Lit f = test::randomFormula(g, rng, 5, 50);
  Quantifier q(g);
  q.quantifyVarForced(f, 0);
  q.quantifyVarForced(f, 1);
  EXPECT_GE(q.stats().count("quant.vars_attempted"), 2);
  EXPECT_GE(q.stats().count("quant.cone_before_total"), 0);
}

// ----- §3 quantification by substitution (in-lining) ------------------------

TEST(QuantSubstitution, LiteralConjunct) {
  Aig g;
  Quantifier q(g);
  // ∃v.(v ∧ R) = R[v := 1].
  const Lit v = g.pi(0);
  const Lit rest = g.mkOr(g.pi(1), g.mkAnd(v, g.pi(2)));
  const Lit f = g.mkAnd(v, rest);
  const auto r = q.quantifyBySubstitution(f, 0);
  ASSERT_TRUE(r.has_value());
  EXPECT_FALSE(g.dependsOn(*r, 0));
  EXPECT_TRUE(test::equivalentExhaustive(
      g, *r, g.mkOr(g.pi(1), g.pi(2)), 3));
  EXPECT_EQ(q.stats().count("quant.vars_substituted"), 1);
}

TEST(QuantSubstitution, NegatedLiteralConjunct) {
  Aig g;
  Quantifier q(g);
  const Lit v = g.pi(0);
  const Lit f = g.mkAnd(!v, g.mkOr(v, g.pi(1)));
  const auto r = q.quantifyBySubstitution(f, 0);
  ASSERT_TRUE(r.has_value());
  EXPECT_TRUE(test::equivalentExhaustive(g, *r, g.pi(1), 2));
}

TEST(QuantSubstitution, DefinitionConjunct) {
  Aig g;
  Quantifier q(g);
  // ∃v.((v ↔ a&b) ∧ (v | c)) = (a&b) | c.
  const Lit v = g.pi(0);
  const Lit def = g.mkAnd(g.pi(1), g.pi(2));
  const Lit f = g.mkAnd(g.mkXnor(v, def), g.mkOr(v, g.pi(3)));
  const auto r = q.quantifyBySubstitution(f, 0);
  ASSERT_TRUE(r.has_value());
  EXPECT_FALSE(g.dependsOn(*r, 0));
  EXPECT_TRUE(test::equivalentExhaustive(g, *r, g.mkOr(def, g.pi(3)), 4));
}

TEST(QuantSubstitution, ComplementedDefinitionForms) {
  Aig g;
  Quantifier q(g);
  const Lit v = g.pi(0);
  const Lit gdef = g.mkXor(g.pi(1), g.pi(2));
  // XNOR(¬v, g) ≡ v ↔ ¬g; the rule must recover def = ¬g.
  const Lit f = g.mkAnd(g.mkXnor(!v, gdef), g.mkAnd(v, g.pi(3)));
  const auto r = q.quantifyBySubstitution(f, 0);
  ASSERT_TRUE(r.has_value());
  const Lit expect = g.mkAnd(!gdef, g.pi(3));
  EXPECT_TRUE(test::equivalentExhaustive(g, *r, expect, 4));
}

TEST(QuantSubstitution, RejectsSelfReferentialDefinition) {
  Aig g;
  Quantifier q(g);
  // v ↔ (v & a) is not a definition (g depends on v): no substitution.
  const Lit v = g.pi(0);
  const Lit f = g.mkAnd(g.mkXnor(v, g.mkAnd(v, g.pi(1))), g.pi(2));
  EXPECT_FALSE(q.quantifyBySubstitution(f, 0).has_value());
}

TEST(QuantSubstitution, NoDefinitionMeansNullopt) {
  Aig g;
  Quantifier q(g);
  const Lit f = g.mkOr(g.pi(0), g.pi(1));  // OR at top: no conjuncts
  EXPECT_FALSE(q.quantifyBySubstitution(f, 0).has_value());
  const Lit f2 = g.mkAnd(g.mkOr(g.pi(0), g.pi(1)), g.pi(2));
  EXPECT_FALSE(q.quantifyBySubstitution(f2, 0).has_value());
}

TEST(QuantSubstitution, AgreesWithGeneralPipelineRandomized) {
  util::Random rng(314);
  for (int round = 0; round < 10; ++round) {
    Aig g;
    const Lit v = g.pi(0);
    const Lit def = test::randomFormula(g, rng, 4, 15);  // uses vars 0..3
    if (g.dependsOn(def, 0)) continue;
    const Lit rest = test::randomFormula(g, rng, 5, 25);
    const Lit f = g.mkAnd(g.mkXnor(v, def), rest);

    QuantOptions noSub;
    noSub.useSubstitution = false;
    Quantifier qGeneral(g, noSub);
    const Lit viaCofactors = qGeneral.quantifyVarForced(f, 0);

    Quantifier qSub(g);
    const auto viaSub = qSub.quantifyBySubstitution(f, 0);
    ASSERT_TRUE(viaSub.has_value()) << "round " << round;
    EXPECT_TRUE(test::equivalentExhaustive(g, viaCofactors, *viaSub, 5))
        << "round " << round;
  }
}

TEST(QuantSubstitution, FastPathUsedByQuantifyVar) {
  Aig g;
  QuantOptions opts;  // substitution on by default
  Quantifier q(g, opts);
  const Lit v = g.pi(0);
  const Lit f = g.mkAnd(g.mkXnor(v, g.pi(1)), g.mkOr(v, g.pi(2)));
  const auto r = q.quantifyVar(f, 0);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(q.stats().count("quant.vars_substituted"), 1);
  EXPECT_TRUE(test::equivalentExhaustive(g, *r, g.mkOr(g.pi(1), g.pi(2)),
                                         3));
}

TEST(Quant, SchedulingPrefersCheaperVariable) {
  // Variable 0 feeds one gate; variable 1 feeds a deep cone. quantifyAll
  // must succeed either way, and defaults should eliminate both.
  Aig g;
  util::Random rng(81);
  Lit deep = g.pi(1);
  for (int i = 0; i < 12; ++i)
    deep = g.mkXor(deep, test::randomFormula(g, rng, 4, 6));
  const Lit f = g.mkOr(g.mkAnd(g.pi(0), g.pi(2)), deep);
  const VarId vars[] = {0, 1};
  Quantifier q(g);
  const auto r = q.quantifyAll(f, vars);
  EXPECT_TRUE(r.residual.empty());
  EXPECT_FALSE(g.dependsOn(r.f, 0));
  EXPECT_FALSE(g.dependsOn(r.f, 1));
}

}  // namespace
}  // namespace cbq

#pragma once
// Shared test utilities: random AIG generation and exhaustive equivalence
// checking against truth tables (the independent referee for everything
// the SAT/BDD/sweeping machinery claims).

#include <unordered_map>
#include <vector>

#include "aig/aig.hpp"
#include "util/random.hpp"

namespace cbq::test {

/// Builds a random AIG over `numVars` PIs (varIds 0..numVars-1) by
/// stacking `numOps` random AND/OR/XOR/MUX operations; returns the root.
inline aig::Lit randomFormula(aig::Aig& g, util::Random& rng, int numVars,
                              int numOps) {
  std::vector<aig::Lit> pool;
  pool.push_back(aig::kTrue);
  for (int v = 0; v < numVars; ++v)
    pool.push_back(g.pi(static_cast<aig::VarId>(v)));

  auto pick = [&]() {
    aig::Lit l = pool[rng.below(pool.size())];
    return rng.flip() ? !l : l;
  };
  for (int i = 0; i < numOps; ++i) {
    aig::Lit r;
    switch (rng.below(4)) {
      case 0:
        r = g.mkAnd(pick(), pick());
        break;
      case 1:
        r = g.mkOr(pick(), pick());
        break;
      case 2:
        r = g.mkXor(pick(), pick());
        break;
      default:
        r = g.mkMux(pick(), pick(), pick());
        break;
    }
    pool.push_back(r);
  }
  return pool.back();
}

/// Truth table of `root` over varIds 0..numVars-1 (numVars <= 20).
inline std::vector<bool> truthTable(const aig::Aig& g, aig::Lit root,
                                    int numVars) {
  std::vector<bool> tt;
  tt.reserve(std::size_t{1} << numVars);
  for (std::uint64_t m = 0; m < (std::uint64_t{1} << numVars); ++m) {
    std::unordered_map<aig::VarId, bool> a;
    for (int v = 0; v < numVars; ++v)
      a.emplace(static_cast<aig::VarId>(v), ((m >> v) & 1) != 0);
    tt.push_back(g.evaluate(root, a));
  }
  return tt;
}

/// Exhaustive functional equality of two literals over the first
/// `numVars` variables.
inline bool equivalentExhaustive(const aig::Aig& g, aig::Lit a, aig::Lit b,
                                 int numVars) {
  return truthTable(g, a, numVars) == truthTable(g, b, numVars);
}

}  // namespace cbq::test

// Thread-count invariance tests: every parallel layer (thread pool,
// signature simulation, sweeper refinement, preprocessing passes, whole
// checks) must produce BIT-IDENTICAL results at any lane count — the
// determinism contract that makes --par-threads safe to flip on. Plus the
// streaming binary AIGER reader round-trip, including an instance larger
// than the reader's 64 KiB chunk by three orders of magnitude.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "circuits/io.hpp"
#include "circuits/suite.hpp"
#include "helpers.hpp"
#include "portfolio/runner.hpp"
#include "prep/pipeline.hpp"
#include "sweep/signatures.hpp"
#include "sweep/sweeper.hpp"
#include "util/random.hpp"
#include "util/thread_pool.hpp"

namespace cbq {
namespace {

using aig::Aig;
using aig::Lit;
using mc::Network;
using mc::Verdict;
using util::ThreadPool;

// ---------------------------------------------------------------- pool --

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(10007);
  pool.parallelFor(hits.size(), 1, [&](std::size_t b, std::size_t e, int) {
    for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, SingleLanePoolRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.threads(), 1);
  int lanes = -1;
  pool.parallelFor(100, 1, [&](std::size_t, std::size_t, int lane) {
    lanes = std::max(lanes, lane);
  });
  EXPECT_EQ(lanes, 0);
}

TEST(ThreadPool, NestedRegionFallsBackToSerial) {
  // The busy-guard keeps the thread budget global: a parallelFor issued
  // from inside a running region executes inline on the calling lane.
  ThreadPool pool(4);
  std::vector<std::atomic<int>> outer(64);
  std::vector<std::atomic<int>> inner(64 * 8);
  pool.parallelFor(outer.size(), 1,
                   [&](std::size_t b, std::size_t e, int) {
                     for (std::size_t i = b; i < e; ++i) {
                       outer[i].fetch_add(1);
                       pool.parallelFor(
                           8, 1, [&](std::size_t ib, std::size_t ie, int) {
                             for (std::size_t j = ib; j < ie; ++j)
                               inner[i * 8 + j].fetch_add(1);
                           });
                     }
                   });
  for (const auto& h : outer) EXPECT_EQ(h.load(), 1);
  for (const auto& h : inner) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, BodyExceptionPropagatesToCaller) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallelFor(1000, 1,
                       [&](std::size_t b, std::size_t, int) {
                         if (b >= 500) throw std::runtime_error("boom");
                       }),
      std::runtime_error);
  // The pool must stay usable after a failed region.
  std::atomic<int> sum{0};
  pool.parallelFor(100, 1, [&](std::size_t b, std::size_t e, int) {
    sum.fetch_add(static_cast<int>(e - b));
  });
  EXPECT_EQ(sum.load(), 100);
}

// ---------------------------------------------------------- signatures --

/// Signature words must be bit-identical serial vs any pool, and
/// resimulateAll must reproduce both the incremental state and the
/// column-major reference recomputation exactly.
TEST(ParallelSignatures, WordsIdenticalAtAnyLaneCount) {
  util::Random build(42);
  Aig g;
  const Lit root = test::randomFormula(g, build, 8, 400);
  const Lit roots[] = {root};
  const auto order = g.coneAnds(roots);
  const auto support = g.supportVars(roots);

  auto collect = [&](ThreadPool* pool) {
    util::Random rng(7);  // same seed -> same PI words everywhere
    sweep::Signatures sigs(g, order, support, rng, 4, 8, pool);
    const std::vector<std::uint64_t> cex(support.size(), 0xf0f0f0f0ull);
    EXPECT_TRUE(sigs.appendWord(cex, static_cast<int>(support.size()), rng));
    std::vector<std::uint64_t> words;
    for (const auto n : order)
      for (const auto w : sigs.of(n)) words.push_back(w);
    sigs.resimulateAll();
    std::vector<std::uint64_t> resim;
    for (const auto n : order)
      for (const auto w : sigs.of(n)) resim.push_back(w);
    EXPECT_EQ(words, resim);  // resimulation == incremental state
    sigs.resimulateAllReference();
    std::vector<std::uint64_t> ref;
    for (const auto n : order)
      for (const auto w : sigs.of(n)) ref.push_back(w);
    EXPECT_EQ(words, ref);  // node-major == column-major reference
    return words;
  };

  const auto serial = collect(nullptr);
  for (const int lanes : {1, 2, 8}) {
    ThreadPool pool(lanes);
    EXPECT_EQ(collect(&pool), serial) << "lanes=" << lanes;
  }
}

// ------------------------------------------------------------- sweeper --

TEST(ParallelSweep, MergesIdenticalAtAnyLaneCount) {
  for (int seed = 0; seed < 6; ++seed) {
    util::Random build(static_cast<std::uint64_t>(seed) * 97 + 11);
    Aig g;
    const Lit a = test::randomFormula(g, build, 6, 120);
    const Lit b = test::randomFormula(g, build, 6, 120);
    const auto ttA = test::truthTable(g, a, 6);
    const auto ttB = test::truthTable(g, b, 6);

    auto runSweep = [&](ThreadPool* pool) {
      sweep::SweepOptions opts;
      opts.pool = pool;
      const Lit roots[] = {a, b};
      return sweep::sweep(g, roots, opts);
    };
    const auto serial = runSweep(nullptr);
    EXPECT_EQ(test::truthTable(g, serial.roots[0], 6), ttA);
    EXPECT_EQ(test::truthTable(g, serial.roots[1], 6), ttB);
    for (const int lanes : {2, 8}) {
      ThreadPool pool(lanes);
      const auto par = runSweep(&pool);
      // Bit-identical outcome: same rebuilt literals, same class
      // structure, same SAT effort — not merely equivalent functions.
      EXPECT_EQ(par.roots, serial.roots) << "lanes=" << lanes;
      EXPECT_EQ(par.stats.satChecks, serial.stats.satChecks);
      EXPECT_EQ(par.stats.satMerges, serial.stats.satMerges);
      EXPECT_EQ(par.stats.bddMerges, serial.stats.bddMerges);
      EXPECT_EQ(par.stats.nodesAfter, serial.stats.nodesAfter);
    }
  }
}

// ---------------------------------------------------------------- prep --

/// Random sequential network, same construction as test_random_models.
Network randomNetwork(util::Random& rng, int latches, int inputs) {
  mc::NetworkBuilder b("random");
  std::vector<Lit> state;
  for (int i = 0; i < latches; ++i) state.push_back(b.addLatch(rng.flip()));
  for (int i = 0; i < inputs; ++i) b.addInput();
  Aig& g = b.aig();
  const int vars = latches + inputs;
  for (int i = 0; i < latches; ++i)
    b.setNext(static_cast<std::size_t>(i),
              test::randomFormula(g, rng, vars, 8));
  const Lit raw = test::randomFormula(g, rng, vars, 6);
  b.setBad(g.mkAnd(raw, state[rng.below(static_cast<std::uint64_t>(
                       latches))] ^ rng.flip()));
  return b.finish();
}

std::string aagOf(const Network& net) {
  std::ostringstream os;
  circuits::writeAag(net, os);
  return os.str();
}

TEST(ParallelPrep, PipelineOutputIdenticalAtAnyLaneCount) {
  std::vector<Network> models;
  for (int seed = 0; seed < 4; ++seed) {
    util::Random rng(static_cast<std::uint64_t>(seed) * 131 + 5);
    models.push_back(randomNetwork(rng, 4, 2));
  }
  models.push_back(circuits::makeInstance("haystack", 4, true).net);
  models.push_back(circuits::makeInstance("giant", 40, true).net);
  models.push_back(circuits::makeInstance("giant", 40, false).net);

  for (const Network& net : models) {
    auto reduce = [&](ThreadPool* pool) {
      prep::PrepOptions opts;
      opts.pool = pool;
      const prep::PreparedProblem pp = prep::Pipeline(opts).run(net);
      return aagOf(pp.problem(net));
    };
    const std::string serial = reduce(nullptr);
    for (const int lanes : {1, 2, 8}) {
      ThreadPool pool(lanes);
      EXPECT_EQ(reduce(&pool), serial)
          << net.name << " lanes=" << lanes;
    }
  }
}

// ---------------------------------------------------------- end to end --

TEST(ParallelCheck, VerdictsIdenticalAtAnyLaneCount) {
  struct Spec {
    const char* family;
    int width;
    bool safe;
  };
  const Spec specs[] = {{"counter", 4, true}, {"counter", 4, false},
                        {"haystack", 4, true}, {"giant", 60, true},
                        {"giant", 60, false}};
  for (const Spec& spec : specs) {
    const auto inst =
        circuits::makeInstance(spec.family, spec.width, spec.safe);
    auto check = [&](int lanes) {
      portfolio::PortfolioOptions opts;
      opts.engines = {"cbq-reach"};
      opts.parThreads = lanes;
      return portfolio::PortfolioRunner(opts).run(inst.net).best.verdict;
    };
    const Verdict serial = check(1);
    EXPECT_EQ(serial, inst.expected) << spec.family << spec.width;
    EXPECT_EQ(check(2), serial) << spec.family << spec.width;
    EXPECT_EQ(check(8), serial) << spec.family << spec.width;
  }
}

// ---------------------------------------------------- streaming reader --

/// Binary write -> chunked read, refereed by evaluating bad and every
/// next-state function on random assignments (input/state variables
/// mapped positionally — the reader renumbers and its construction rules
/// may restructure the AIG, so only behaviour is comparable). Returns the
/// encoded size so callers can assert the stream crossed chunk bounds.
std::size_t binaryRoundTripBytes(const Network& net, std::uint64_t seed,
                                 int runs) {
  std::ostringstream os;
  circuits::writeAigBinary(net, os);
  const std::string bytes = os.str();
  std::istringstream in(bytes);
  const Network back = circuits::readAigBinary(in);
  EXPECT_EQ(back.numLatches(), net.numLatches());
  EXPECT_EQ(back.numInputs(), net.numInputs());
  util::Random rng(seed);
  for (int run = 0; run < runs; ++run) {
    std::unordered_map<aig::VarId, bool> a;
    std::unordered_map<aig::VarId, bool> b;
    for (std::size_t i = 0; i < net.inputVars.size(); ++i) {
      const bool bit = rng.flip();
      a.emplace(net.inputVars[i], bit);
      b.emplace(back.inputVars[i], bit);
    }
    for (std::size_t i = 0; i < net.stateVars.size(); ++i) {
      const bool bit = rng.flip();
      a.emplace(net.stateVars[i], bit);
      b.emplace(back.stateVars[i], bit);
    }
    EXPECT_EQ(net.aig.evaluate(net.bad, a), back.aig.evaluate(back.bad, b));
    for (std::size_t j = 0; j < net.next.size(); ++j)
      EXPECT_EQ(net.aig.evaluate(net.next[j], a),
                back.aig.evaluate(back.next[j], b))
          << "latch " << j;
  }
  return bytes.size();
}

TEST(StreamingReader, RoundTripsTheGeneratedFamilies) {
  std::uint64_t seed = 1000;
  for (const auto& inst : circuits::standardSuite()) {
    const std::size_t bytes = binaryRoundTripBytes(inst.net, ++seed, 4);
    EXPECT_GT(bytes, 0u) << inst.family;
  }
}

TEST(StreamingReader, RoundTripsAnInstanceLargerThanAnyChunk) {
  // A pure AND chain: each step hashes to a fresh node, the deltas stay
  // small, and the binary file comfortably exceeds 64 MiB — thousands of
  // refills of the reader's 64 KiB chunk.
  mc::NetworkBuilder b("huge");
  const Lit latch = b.addLatch(false);
  Aig& g = b.aig();
  constexpr int kInputs = 64;
  std::vector<Lit> pis;
  for (int i = 0; i < kInputs; ++i) pis.push_back(b.addInput());
  Lit acc = pis[0];
  constexpr std::size_t kAnds = 15'000'000;
  for (std::size_t i = 0; i < kAnds; ++i)
    acc = g.mkAnd(acc, pis[(i * 7 + 3) % kInputs] ^ ((i & 1) != 0));
  b.setNext(0, acc);
  b.setBad(g.mkAnd(latch, acc));
  const Network net = b.finish();
  ASSERT_GE(net.aig.numAnds(), kAnds);

  const std::size_t bytes = binaryRoundTripBytes(net, 9001, 2);
  EXPECT_GT(bytes, 64u * 1024u * 1024u);
}

}  // namespace
}  // namespace cbq

// Tseitin encoding and semantic-query tests: the CNF bridge must agree
// with direct AIG evaluation under every forced input assignment, and the
// budgeted verdict helpers must agree with exhaustive checking.

#include <gtest/gtest.h>

#include "cnf/aig_cnf.hpp"
#include "helpers.hpp"
#include "util/random.hpp"

namespace cbq {
namespace {

using cnf::AigCnf;
using cnf::Verdict;

TEST(Cnf, ConstantLiterals) {
  aig::Aig g;
  sat::Solver s;
  AigCnf cnf(g, s);
  const sat::Lit t = cnf.litFor(aig::kTrue);
  const sat::Lit f = cnf.litFor(aig::kFalse);
  ASSERT_EQ(s.solve(), sat::Status::Sat);
  EXPECT_TRUE(s.modelTrue(t));
  EXPECT_FALSE(s.modelTrue(f));
}

TEST(Cnf, SingleAndGate) {
  aig::Aig g;
  const aig::Lit f = g.mkAnd(g.pi(0), g.pi(1));
  sat::Solver s;
  AigCnf cnf(g, s);
  const sat::Lit lf = cnf.litFor(f);
  const sat::Lit assume[] = {lf};
  ASSERT_EQ(s.solve(assume), sat::Status::Sat);
  EXPECT_TRUE(cnf.modelOf(0));
  EXPECT_TRUE(cnf.modelOf(1));
}

TEST(Cnf, EncodedNodeCountMatchesCone) {
  aig::Aig g;
  const aig::Lit f = g.mkXor(g.pi(0), g.pi(1));  // 3 AND nodes
  sat::Solver s;
  AigCnf cnf(g, s);
  cnf.litFor(f);
  EXPECT_EQ(cnf.numEncodedNodes(), g.coneSize(f));
  // Re-encoding is free.
  cnf.litFor(f);
  EXPECT_EQ(cnf.numEncodedNodes(), g.coneSize(f));
}

class CnfRandomized : public ::testing::TestWithParam<int> {};

TEST_P(CnfRandomized, EncodingAgreesWithSimulation) {
  util::Random rng(static_cast<std::uint64_t>(GetParam()) * 31 + 5);
  aig::Aig g;
  const aig::Lit f = test::randomFormula(g, rng, 5, 40);
  sat::Solver s;
  AigCnf cnf(g, s);
  const sat::Lit lf = cnf.litFor(f);

  // Force every input assignment through assumptions; the SAT value of
  // the root must match direct evaluation.
  for (std::uint64_t m = 0; m < 32; ++m) {
    std::vector<sat::Lit> assume;
    std::unordered_map<aig::VarId, bool> a;
    for (aig::VarId v = 0; v < 5; ++v) {
      const bool val = ((m >> v) & 1) != 0;
      a.emplace(v, val);
      if (g.dependsOn(f, v))
        assume.push_back(cnf.litFor(aig::Lit(g.piNodeOf(v), false)) ^ !val);
    }
    const bool expect = g.evaluate(f, a);
    assume.push_back(lf ^ !expect);  // assert root == expected
    EXPECT_EQ(s.solve(assume), sat::Status::Sat) << "minterm " << m;
    assume.back() = lf ^ expect;     // assert root != expected
    EXPECT_EQ(s.solve(assume), sat::Status::Unsat) << "minterm " << m;
  }
}

TEST_P(CnfRandomized, CheckEquivMatchesExhaustive) {
  util::Random rng(static_cast<std::uint64_t>(GetParam()) * 77 + 3);
  aig::Aig g;
  const aig::Lit a = test::randomFormula(g, rng, 4, 25);
  const aig::Lit b = test::randomFormula(g, rng, 4, 25);
  sat::Solver s;
  AigCnf cnf(g, s);
  const bool equal = test::equivalentExhaustive(g, a, b, 4);
  EXPECT_EQ(cnf::checkEquiv(cnf, a, b) == Verdict::Holds, equal);
  // A function is always equivalent to itself and never to its negation
  // (unless constant — randomFormula can produce constants).
  EXPECT_EQ(cnf::checkEquiv(cnf, a, a), Verdict::Holds);
}

TEST_P(CnfRandomized, CheckImpliesMatchesExhaustive) {
  util::Random rng(static_cast<std::uint64_t>(GetParam()) * 131 + 11);
  aig::Aig g;
  const aig::Lit a = test::randomFormula(g, rng, 4, 25);
  const aig::Lit b = test::randomFormula(g, rng, 4, 25);
  sat::Solver s;
  AigCnf cnf(g, s);
  const auto ta = test::truthTable(g, a, 4);
  const auto tb = test::truthTable(g, b, 4);
  bool implies = true;
  for (std::size_t i = 0; i < ta.size(); ++i)
    implies = implies && (!ta[i] || tb[i]);
  EXPECT_EQ(cnf::checkImplies(cnf, a, b) == Verdict::Holds, implies);
  // a -> a|b always holds.
  EXPECT_EQ(cnf::checkImplies(cnf, a, g.mkOr(a, b)), Verdict::Holds);
  // a&b -> a always holds.
  EXPECT_EQ(cnf::checkImplies(cnf, g.mkAnd(a, b), a), Verdict::Holds);
}

TEST_P(CnfRandomized, CheckConstantAndSat) {
  util::Random rng(static_cast<std::uint64_t>(GetParam()) * 173 + 7);
  aig::Aig g;
  const aig::Lit f = test::randomFormula(g, rng, 4, 25);
  sat::Solver s;
  AigCnf cnf(g, s);
  const auto tt = test::truthTable(g, f, 4);
  const bool alwaysTrue =
      std::all_of(tt.begin(), tt.end(), [](bool x) { return x; });
  const bool alwaysFalse =
      std::none_of(tt.begin(), tt.end(), [](bool x) { return x; });
  EXPECT_EQ(cnf::checkConstant(cnf, f, true) == Verdict::Holds, alwaysTrue);
  EXPECT_EQ(cnf::checkConstant(cnf, f, false) == Verdict::Holds, alwaysFalse);
  EXPECT_EQ(cnf::checkSat(cnf, f) == Verdict::Holds, !alwaysFalse);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CnfRandomized, ::testing::Range(0, 12));

TEST(Cnf, BudgetedQueriesReturnUnknown) {
  // Equivalence of two structurally different adder-ish cones with a
  // 0-conflict budget must give Unknown, not a wrong verdict.
  aig::Aig g;
  util::Random rng(5);
  const aig::Lit a = test::randomFormula(g, rng, 8, 120);
  const aig::Lit b = test::randomFormula(g, rng, 8, 120);
  sat::Solver s;
  AigCnf cnf(g, s);
  const Verdict v = cnf::checkEquiv(cnf, a, b, /*budget=*/0);
  EXPECT_TRUE(v == Verdict::Unknown || v == Verdict::Fails ||
              v == Verdict::Holds);
  // With budget 0 the solver can only answer via propagation; for these
  // cones that means Unknown in practice — but never a contradiction
  // with the exhaustive referee:
  if (v != Verdict::Unknown) {
    EXPECT_EQ(v == Verdict::Holds, test::equivalentExhaustive(g, a, b, 8));
  }
}

TEST(Cnf, ModelPatternEmbedsCounterexampleInBitZero) {
  aig::Aig g;
  const aig::Lit f = g.mkAnd(g.pi(0), !g.pi(1));
  sat::Solver s;
  AigCnf cnf(g, s);
  const sat::Lit assume[] = {cnf.litFor(f)};
  ASSERT_EQ(s.solve(assume), sat::Status::Sat);
  util::Random rng(1);
  const aig::VarId vars[] = {0, 1};
  const auto pattern = cnf.modelPattern(
      vars, [](void* ctx) { return static_cast<util::Random*>(ctx)->next64(); },
      &rng);
  EXPECT_EQ(pattern.at(0) & 1, 1u);
  EXPECT_EQ(pattern.at(1) & 1, 0u);
}

}  // namespace
}  // namespace cbq

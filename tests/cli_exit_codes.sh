#!/usr/bin/env bash
# Exit-code contract test for `cbq check`:
#   0 = SAFE, 10 = UNSAFE, 20 = UNKNOWN, 1 = usage/IO error,
#   30 = audit violation (only reachable with --audit).
# Run by ctest as: cli_exit_codes.sh <path-to-cbq-binary>
set -u

CBQ="$1"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT
fails=0

expect() {
  local want="$1"
  shift
  "$@" >/dev/null 2>&1
  local got=$?
  if [ "$got" -ne "$want" ]; then
    echo "FAIL: '$*' exited $got, expected $want"
    fails=$((fails + 1))
  fi
}

"$CBQ" gen counter --width 3 -o "$TMP/safe.aag" || exit 1
"$CBQ" gen counter --width 3 --unsafe -o "$TMP/unsafe.aag" || exit 1
"$CBQ" gen haystack --width 3 --unsafe -o "$TMP/hay.aag" || exit 1
printf 'aag 1 1 0 1 0\nnot a literal\n' > "$TMP/broken.aag"

# 0: property proven.
expect 0 "$CBQ" check "$TMP/safe.aag" --timeout 60
# 10: replay-confirmed counterexample (also via the prep pipeline).
expect 10 "$CBQ" check "$TMP/unsafe.aag" --timeout 60
expect 10 "$CBQ" check "$TMP/hay.aag" --timeout 60 --prep on
expect 10 "$CBQ" check "$TMP/hay.aag" --timeout 60 --prep=off
# 20: no definitive verdict (BMC alone cannot prove a safe instance).
expect 20 "$CBQ" check "$TMP/safe.aag" --engine bmc --timeout 60
# 1: usage and input errors.
expect 1 "$CBQ" check
expect 1 "$CBQ" check "$TMP/no-such-file.aag"
expect 1 "$CBQ" check "$TMP/broken.aag"
expect 1 "$CBQ" check "$TMP/safe.aag" --engine no-such-engine
expect 1 "$CBQ" check "$TMP/safe.aag" --prep bogus-pass
expect 1 "$CBQ" check "$TMP/safe.aag" --schedule bogus

# The whole malformed-input corpus: every file is a clean exit-1 parse
# error — never a crash (which would surface as exit >= 128).
CORPUS="$(dirname "$0")/corpus"
if [ -d "$CORPUS" ]; then
  for f in "$CORPUS"/*.aag "$CORPUS"/*.aig "$CORPUS"/*.bench; do
    [ -e "$f" ] || continue
    expect 1 "$CBQ" check "$f"
  done
fi

# Injected faults must degrade, not abort: exit 20 (UNKNOWN), not a
# crash. A CBQ_FAULTS=OFF build ignores --inject with a warning and
# legitimately proves the instance (exit 0).
inject_out="$("$CBQ" check "$TMP/safe.aag" \
  --inject 'engine.resume:prob=1.0:throw' --timeout 60 2>&1)"
got=$?
case "$inject_out" in
  *"CBQ_FAULTS=OFF"*)
    [ "$got" -eq 0 ] || {
      echo "FAIL: faults-off build exited $got on --inject"
      fails=$((fails + 1))
    }
    ;;
  *)
    [ "$got" -eq 20 ] || {
      echo "FAIL: all-engines-faulted check exited $got, expected 20"
      fails=$((fails + 1))
    }
    ;;
esac

# Auditing a healthy instance must not change the verdict's exit code...
expect 0 "$CBQ" check "$TMP/safe.aag" --audit --timeout 60
expect 10 "$CBQ" check "$TMP/unsafe.aag" --audit --timeout 60
# ...while every seeded corruption class maps to the dedicated exit 30,
# and an unknown class is a usage error.
expect 30 "$CBQ" check "$TMP/safe.aag" --audit --audit-selftest strash
expect 30 "$CBQ" check "$TMP/safe.aag" --audit --audit-selftest epoch
expect 30 "$CBQ" check "$TMP/safe.aag" --audit --audit-selftest latch
expect 1 "$CBQ" check "$TMP/safe.aag" --audit --audit-selftest bogus

# The exit-30 path must name the violated invariant.
msg="$("$CBQ" check "$TMP/safe.aag" --audit --audit-selftest latch 2>&1)"
case "$msg" in
  *"net.latch.dangling-next"*) ;;
  *)
    echo "FAIL: audit selftest output lacks invariant name: $msg"
    fails=$((fails + 1))
    ;;
esac

# Parse errors must name the offending line (satellite: line-numbered
# diagnostics).
msg="$("$CBQ" check "$TMP/broken.aag" 2>&1)"
case "$msg" in
  *"line 2"*) ;;
  *)
    echo "FAIL: parse error lacks line number: $msg"
    fails=$((fails + 1))
    ;;
esac

if [ "$fails" -ne 0 ]; then
  echo "$fails exit-code contract violations"
  exit 1
fi
echo "exit-code contract holds"

// Circuit file I/O tests: AIGER / .bench round trips must preserve
// behaviour (verdicts and step-by-step simulation), and malformed inputs
// must be rejected with ParseError.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include <sstream>

#include "circuits/io.hpp"
#include "circuits/suite.hpp"
#include "mc/engines.hpp"
#include "util/random.hpp"

namespace cbq {
namespace {

using circuits::ParseError;
using circuits::readAag;
using circuits::readBench;
using circuits::writeAag;
using circuits::writeBench;
using mc::Network;

/// Behavioural equivalence by random co-simulation: both networks are
/// driven with the same input sequences; bad must match at every step.
void expectSameBehaviour(const Network& a, const Network& b,
                         std::uint64_t seed) {
  ASSERT_EQ(a.numLatches(), b.numLatches());
  ASSERT_EQ(a.numInputs(), b.numInputs());
  util::Random rng(seed);
  for (int run = 0; run < 8; ++run) {
    mc::Trace trace;
    for (int t = 0; t < 12; ++t) {
      std::unordered_map<aig::VarId, bool> inA;
      for (const aig::VarId v : a.inputVars) inA.emplace(v, rng.flip());
      trace.inputs.push_back(inA);
    }
    // Map trace input order from a's vars to b's vars positionally.
    mc::Trace traceB;
    for (const auto& stepA : trace.inputs) {
      std::unordered_map<aig::VarId, bool> stepB;
      for (std::size_t i = 0; i < a.inputVars.size(); ++i)
        stepB.emplace(b.inputVars[i], stepA.at(a.inputVars[i]));
      traceB.inputs.push_back(stepB);
    }
    for (std::size_t len = 1; len <= trace.inputs.size(); ++len) {
      mc::Trace ta;
      mc::Trace tb;
      ta.inputs.assign(trace.inputs.begin(),
                       trace.inputs.begin() + static_cast<std::ptrdiff_t>(len));
      tb.inputs.assign(traceB.inputs.begin(),
                       traceB.inputs.begin() + static_cast<std::ptrdiff_t>(len));
      ASSERT_EQ(mc::replayHitsBad(a, ta), mc::replayHitsBad(b, tb))
          << "run " << run << " len " << len;
    }
  }
}

class IoRoundTrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(IoRoundTrip, AagPreservesBehaviour) {
  auto suite = circuits::standardSuite();
  ASSERT_LT(GetParam(), suite.size());
  const Network& net = suite[GetParam()].net;
  std::stringstream ss;
  writeAag(net, ss);
  const Network back = readAag(ss, net.name + "-rt");
  expectSameBehaviour(net, back, 1000 + GetParam());
}

TEST_P(IoRoundTrip, BenchPreservesBehaviour) {
  auto suite = circuits::standardSuite();
  ASSERT_LT(GetParam(), suite.size());
  const Network& net = suite[GetParam()].net;
  std::stringstream ss;
  writeBench(net, ss);
  const Network back = readBench(ss, net.name + "-rt");
  expectSameBehaviour(net, back, 2000 + GetParam());
}

INSTANTIATE_TEST_SUITE_P(SuiteInstances, IoRoundTrip,
                         ::testing::Range<std::size_t>(0, 32));

TEST_P(IoRoundTrip, AigBinaryPreservesBehaviour) {
  auto suite = circuits::standardSuite();
  ASSERT_LT(GetParam(), suite.size());
  const Network& net = suite[GetParam()].net;
  std::stringstream ss;
  circuits::writeAigBinary(net, ss);
  const Network back = circuits::readAigBinary(ss, net.name + "-bin");
  expectSameBehaviour(net, back, 3000 + GetParam());
}

TEST(Io, AigBinaryDeltaEncodingRoundTrip) {
  // A wide circuit forces multi-byte varint deltas.
  const auto inst = circuits::makeInstance("gray", 8, true);
  std::stringstream ss;
  circuits::writeAigBinary(inst.net, ss);
  const Network back = circuits::readAigBinary(ss);
  EXPECT_EQ(back.numLatches(), inst.net.numLatches());
  EXPECT_EQ(back.numInputs(), inst.net.numInputs());
  mc::CircuitQuantReach engine;
  EXPECT_EQ(engine.check(back).verdict, mc::Verdict::Safe);
}

TEST(Io, AigBinaryRejectsGarbage) {
  {
    std::stringstream ss("aig 3 1 1 1 2\n");  // M != I+L+A
    EXPECT_THROW(circuits::readAigBinary(ss), ParseError);
  }
  {
    std::stringstream ss("aag 1 1 0 0 0\n");  // wrong magic for binary
    EXPECT_THROW(circuits::readAigBinary(ss), ParseError);
  }
  {
    // Header promises one AND gate but the byte stream ends.
    std::stringstream ss("aig 2 1 0 1 1\n4\n");
    EXPECT_THROW(circuits::readAigBinary(ss), ParseError);
  }
}

TEST(Io, AagRoundTripPreservesVerdict) {
  for (const bool safe : {true, false}) {
    const auto inst = circuits::makeInstance("ring", 4, safe);
    std::stringstream ss;
    writeAag(inst.net, ss);
    const Network back = readAag(ss);
    mc::CircuitQuantReach engine;
    EXPECT_EQ(engine.check(back).verdict, inst.expected);
  }
}

TEST(Io, BenchRoundTripPreservesVerdictWithInitOne) {
  // The token ring has an init-1 latch — exercises the `# init` extension.
  for (const bool safe : {true, false}) {
    const auto inst = circuits::makeInstance("ring", 4, safe);
    std::stringstream ss;
    writeBench(inst.net, ss);
    EXPECT_NE(ss.str().find("# init l0 = 1"), std::string::npos);
    const Network back = readBench(ss);
    mc::Bmc engine;
    const auto expected = inst.expected == mc::Verdict::Unsafe
                              ? mc::Verdict::Unsafe
                              : mc::Verdict::Unknown;  // BMC can't prove safe
    EXPECT_EQ(engine.check(back).verdict, expected);
  }
}

TEST(Io, HandWrittenAag) {
  // A 1-latch toggle: latch next = !latch, output = latch.
  std::stringstream ss("aag 1 0 1 1 0\n2 3\n2\n");
  const Network net = readAag(ss);
  EXPECT_EQ(net.numLatches(), 1u);
  EXPECT_EQ(net.numInputs(), 0u);
  // bad = latch, init 0: safe at step 1, bad at step 2.
  mc::Trace t;
  t.inputs.resize(1);
  EXPECT_FALSE(mc::replayHitsBad(net, t));
  t.inputs.resize(2);
  EXPECT_TRUE(mc::replayHitsBad(net, t));
}

TEST(Io, Aag19BadSectionSymbolsAndComments) {
  // The toggle latch again, phrased AIGER-1.9 style: the property is a
  // `b` (bad) literal instead of an output, followed by a symbol table
  // and a comment section — all of which the reader must accept.
  std::stringstream ss(
      "aag 1 0 1 0 0 1\n"
      "2 3 0\n"
      "2\n"
      "l0 toggle\n"
      "b0 latch_high\n"
      "c\n"
      "hand-written 1.9 example\n");
  const Network net = readAag(ss);
  EXPECT_EQ(net.numLatches(), 1u);
  mc::Trace t;
  t.inputs.resize(1);
  EXPECT_FALSE(mc::replayHitsBad(net, t));
  t.inputs.resize(2);
  EXPECT_TRUE(mc::replayHitsBad(net, t));
}

TEST(Io, Aag19OutputsAndBadsMerge) {
  // One output (latch 0) and one bad literal (latch 1): the checker ORs
  // both into `bad`, so either latch going high is a violation.
  std::stringstream ss(
      "aag 2 0 2 1 0 1\n"
      "2 3\n"  // toggle
      "4 4\n"  // constant latch, init 0
      "4\n"    // output: second latch (never high -> not the bug)
      "2\n"    // bad: toggle latch (high at step 2)
      "c\n");
  const Network net = readAag(ss);
  mc::Trace t;
  t.inputs.resize(2);
  EXPECT_TRUE(mc::replayHitsBad(net, t));
}

TEST(Io, AagNoOutputsNoAndsStillParsesTrailingSections) {
  // With no outputs/bads and no AND gates, the numeric part ends on a
  // getline-consumed latch line; the symbol/comment scan must not
  // swallow (or trip over) the first trailing line.
  {
    std::stringstream ss("aag 1 0 1 0 0\n2 3\nc\nfree text\n");
    const Network net = readAag(ss);
    EXPECT_EQ(net.numLatches(), 1u);
    EXPECT_EQ(net.bad, aig::kFalse);  // no property
  }
  {
    std::stringstream ss("aag 1 0 1 0 0\n2 3\nl0 toggle\n");
    const Network net = readAag(ss);
    EXPECT_EQ(net.numLatches(), 1u);
  }
  {
    // The first trailing line is validated, not skipped.
    std::stringstream ss("aag 1 0 1 0 0\n2 3\nl7 out_of_range\n");
    EXPECT_THROW(readAag(ss), ParseError);
  }
}

TEST(Io, Aag19UnsupportedSectionsAreParseErrors) {
  {
    // One invariant constraint: silently ignoring it would flip verdicts.
    std::stringstream ss("aag 1 0 1 0 0 0 1\n2 3\n2\n");
    EXPECT_THROW(readAag(ss), ParseError);
  }
  {
    // Justice property.
    std::stringstream ss("aag 1 0 1 0 0 0 0 1\n2 3\n2\n");
    EXPECT_THROW(readAag(ss), ParseError);
  }
  {
    // Uninitialized latch (reset value = its own literal).
    std::stringstream ss("aag 1 0 1 1 0\n2 3 2\n2\n");
    EXPECT_THROW(readAag(ss), ParseError);
  }
  {
    // Malformed symbol table entry.
    std::stringstream ss("aag 1 0 1 1 0\n2 3\n2\nx0 what\n");
    EXPECT_THROW(readAag(ss), ParseError);
  }
  {
    // Symbol index out of range.
    std::stringstream ss("aag 1 0 1 1 0\n2 3\n2\nl7 nope\n");
    EXPECT_THROW(readAag(ss), ParseError);
  }
}

TEST(Io, HandWrittenBench) {
  std::stringstream ss(R"(# toy
INPUT(a)
INPUT(b)
OUTPUT(o)
x = AND(a, b)
y = NOT(x)
q = DFF(y)
o = AND(q, a)
)");
  const Network net = readBench(ss);
  EXPECT_EQ(net.numInputs(), 2u);
  EXPECT_EQ(net.numLatches(), 1u);
  EXPECT_FALSE(net.bad.isConstant());
}

TEST(Io, BenchGateZoo) {
  std::stringstream ss(R"(
INPUT(a)
INPUT(b)
OUTPUT(o)
g1 = NAND(a, b)
g2 = NOR(a, b)
g3 = XOR(a, b)
g4 = XNOR(a, b)
g5 = BUF(g3)
g6 = OR(g1, g2, g4)
o = AND(g5, g6)
)");
  const Network net = readBench(ss);
  // o = (a^b) & (nand | nor | xnor) = (a^b) & 1 = a^b.
  std::unordered_map<aig::VarId, bool> a01{{net.inputVars[0], false},
                                           {net.inputVars[1], true}};
  EXPECT_TRUE(net.aig.evaluate(net.bad, a01));
  std::unordered_map<aig::VarId, bool> a11{{net.inputVars[0], true},
                                           {net.inputVars[1], true}};
  EXPECT_FALSE(net.aig.evaluate(net.bad, a11));
}

TEST(Io, BenchOutOfOrderDefinitionsResolve) {
  std::stringstream ss(R"(
INPUT(a)
OUTPUT(o)
o = AND(x, a)
x = NOT(a)
)");
  const Network net = readBench(ss);
  EXPECT_TRUE(net.bad.isConstant());  // a & !a folds to 0
}

TEST(Io, ParseErrors) {
  {
    std::stringstream ss("aig 1 0 0 0 0\n");
    EXPECT_THROW(readAag(ss), ParseError);
  }
  {
    std::stringstream ss("aag 1 1 0 0 0\n3\n");  // odd input literal
    EXPECT_THROW(readAag(ss), ParseError);
  }
  {
    // Literal 0 is the constant; an input claiming it would corrupt
    // every constant literal in the file (here: flip a trivially-SAFE
    // constant-false output into a free variable).
    std::stringstream ss("aag 1 1 0 1 0\n0\n0\n");
    EXPECT_THROW(readAag(ss), ParseError);
  }
  {
    std::stringstream ss("aag 1 0 1 0 0\n0 3\n");  // latch literal 0
    EXPECT_THROW(readAag(ss), ParseError);
  }
  {
    std::stringstream ss("INPUT(a)\nOUTPUT(o)\no = FROB(a)\n");
    EXPECT_THROW(readBench(ss), ParseError);
  }
  {
    std::stringstream ss("OUTPUT(o)\no = AND(o, o)\n");  // cyclic
    EXPECT_THROW(readBench(ss), ParseError);
  }
  {
    std::stringstream ss("INPUT(a)\nOUTPUT(missing)\n");
    EXPECT_THROW(readBench(ss), ParseError);
  }
  EXPECT_THROW(circuits::readCircuitFile("/nonexistent/file.aag"),
               ParseError);
  EXPECT_THROW(circuits::readCircuitFile("/tmp/whatever.xyz"), ParseError);
}

TEST(Io, ParseErrorsReportTheOffendingLine) {
  auto messageOf = [](auto&& parse) -> std::string {
    try {
      parse();
    } catch (const ParseError& e) {
      return e.what();
    }
    return "(no error)";
  };

  {
    // Latch definition on line 3 is malformed.
    std::stringstream ss("aag 3 1 1 1 0\n2\nnot a latch\n2\n");
    const std::string msg = messageOf([&] { readAag(ss); });
    EXPECT_NE(msg.find("line 3"), std::string::npos) << msg;
  }
  {
    // AND definition on line 5 is malformed.
    std::stringstream ss("aag 3 1 1 1 1\n2\n4 4\n2\nbroken\n");
    const std::string msg = messageOf([&] { readAag(ss); });
    EXPECT_NE(msg.find("line 5"), std::string::npos) << msg;
  }
  {
    // Input literal on line 2 is odd.
    std::stringstream ss("aag 1 1 0 0 0\n3\n");
    const std::string msg = messageOf([&] { readAag(ss); });
    EXPECT_NE(msg.find("line 2"), std::string::npos) << msg;
  }
  {
    // File truncated: the missing latch line is reported where it was
    // expected.
    std::stringstream ss("aag 2 1 1 0 0\n2\n");
    const std::string msg = messageOf([&] { readAag(ss); });
    EXPECT_NE(msg.find("line 3"), std::string::npos) << msg;
  }
  {
    // Unknown .bench gate type on line 3.
    std::stringstream ss("INPUT(a)\nOUTPUT(o)\no = FROB(a)\n");
    const std::string msg = messageOf([&] { readBench(ss); });
    EXPECT_NE(msg.find("line 3"), std::string::npos) << msg;
  }
  {
    // Undefined .bench output named on line 2.
    std::stringstream ss("INPUT(a)\nOUTPUT(missing)\n");
    const std::string msg = messageOf([&] { readBench(ss); });
    EXPECT_NE(msg.find("line 2"), std::string::npos) << msg;
  }
  {
    // readCircuitFile prefixes the file path to the line diagnostic.
    const std::string path =
        ::testing::TempDir() + "/cbq_io_lineno_test.aag";
    std::ofstream out(path);
    out << "aag 1 1 0 0 0\nnonsense\n";
    out.close();
    const std::string msg =
        messageOf([&] { circuits::readCircuitFile(path); });
    EXPECT_NE(msg.find(path), std::string::npos) << msg;
    EXPECT_NE(msg.find("line 2"), std::string::npos) << msg;
    std::remove(path.c_str());
  }
}

}  // namespace
}  // namespace cbq

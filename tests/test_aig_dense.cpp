// Tests for the dense arena layer underneath the AIG manager: the
// open-addressed structural-hash table, the epoch-stamped rebuild memo,
// the VarId slot table, and compose() edge cases (empty and aliasing
// substitution maps) that exercise the shared scratch paths.

#include <gtest/gtest.h>

#include <vector>

#include "aig/aig.hpp"
#include "aig/scratch.hpp"
#include "aig/strash.hpp"
#include "helpers.hpp"
#include "util/var_table.hpp"

namespace cbq {
namespace {

using aig::Aig;
using aig::Lit;
using aig::NodeId;
using aig::VarId;

// ----- StrashTable ---------------------------------------------------------

TEST(StrashTable, FindOnEmptyReturnsZero) {
  aig::StrashTable t(16);
  EXPECT_EQ(t.find(Lit(1, false), Lit(2, false)), 0u);
  EXPECT_EQ(t.size(), 0u);
}

TEST(StrashTable, GrowsPastInitialCapacityAndKeepsAllEntries) {
  aig::StrashTable t(16);
  const std::size_t initialCap = t.capacity();
  constexpr std::size_t kEntries = 1000;
  for (std::size_t i = 0; i < kEntries; ++i) {
    const Lit a(static_cast<NodeId>(2 * i + 1), false);
    const Lit b(static_cast<NodeId>(2 * i + 2), true);
    ASSERT_EQ(t.find(a, b), 0u);
    t.insert(a, b, static_cast<NodeId>(i + 1));
  }
  EXPECT_EQ(t.size(), kEntries);
  EXPECT_GT(t.capacity(), initialCap);
  // Every entry survives the rehashes, and near-miss keys stay absent.
  for (std::size_t i = 0; i < kEntries; ++i) {
    const Lit a(static_cast<NodeId>(2 * i + 1), false);
    const Lit b(static_cast<NodeId>(2 * i + 2), true);
    EXPECT_EQ(t.find(a, b), static_cast<NodeId>(i + 1));
    EXPECT_EQ(t.find(a, !b), 0u);
  }
}

TEST(Aig, StrashGrowthPreservesDeduplication) {
  // Force the manager's table past its initial 1024 slots, then check
  // structural hashing still collapses identical pairs.
  Aig g;
  const std::size_t initialCap = g.strashCapacity();
  Lit acc = g.pi(0);
  for (VarId v = 1; v < 2000; ++v) acc = g.mkAnd(acc, g.pi(v));
  EXPECT_GT(g.strashCapacity(), initialCap);

  const std::size_t andsBefore = g.numAnds();
  // Rebuilding the same chain must hit the table on every step.
  Lit acc2 = g.pi(0);
  for (VarId v = 1; v < 2000; ++v) acc2 = g.mkAnd(acc2, g.pi(v));
  EXPECT_EQ(acc2, acc);
  EXPECT_EQ(g.numAnds(), andsBefore);
}

// ----- ScratchMemo ---------------------------------------------------------

TEST(ScratchMemo, ResetForgetsPreviousGeneration) {
  aig::ScratchMemo m;
  m.reset(8);
  m.put(3, Lit(5, true));
  EXPECT_TRUE(m.contains(3));
  EXPECT_EQ(m.at(3), Lit(5, true));
  EXPECT_FALSE(m.contains(4));
  m.reset(8);
  EXPECT_FALSE(m.contains(3));
}

TEST(ScratchMemo, EpochWrapAroundScrubsStaleStamps) {
  aig::ScratchMemo m;
  m.reset(8);
  m.put(2, Lit(9, false));
  // Park the counter at the maximum: the next reset wraps to 0, which
  // must scrub every stamp instead of reusing the value.
  m.forceEpochForTest(0xffffffffu);
  m.put(5, Lit(7, true));  // stamped with the pre-wrap epoch
  EXPECT_TRUE(m.contains(5));
  m.reset(8);
  EXPECT_EQ(m.epoch(), 1u);
  EXPECT_FALSE(m.contains(2));
  EXPECT_FALSE(m.contains(5));
  m.put(5, Lit(1, false));
  EXPECT_EQ(m.at(5), Lit(1, false));
}

TEST(VarTable, EpochWrapAroundScrubsStaleStamps) {
  util::VarTable<int> t;
  t.set(4, 42);
  t.forceEpochForTest(0xffffffffu);
  t.set(6, 7);
  t.clear();  // wraps
  EXPECT_EQ(t.epoch(), 1u);
  EXPECT_FALSE(t.contains(4));
  EXPECT_FALSE(t.contains(6));
  EXPECT_EQ(t.get(6, -1), -1);
  t.set(6, 9);
  EXPECT_EQ(t.at(6), 9);
}

TEST(Aig, MemoReuseAcrossManyRebuildsStaysCorrect) {
  // The manager reuses one memo across every cofactor/compose call; a
  // long alternating sequence would expose stale-entry leaks immediately.
  Aig g;
  util::Random rng(3);
  const Lit f = test::randomFormula(g, rng, 5, 40);
  for (int i = 0; i < 100; ++i) {
    const VarId v = static_cast<VarId>(i % 5);
    const Lit c0 = g.cofactor(f, v, false);
    const Lit c1 = g.cofactor(f, v, true);
    EXPECT_FALSE(g.dependsOn(c0, v));
    EXPECT_FALSE(g.dependsOn(c1, v));
  }
}

// ----- NodeMap -------------------------------------------------------------

TEST(NodeMap, SetContainsClear) {
  aig::NodeMap m;
  EXPECT_TRUE(m.empty());
  EXPECT_FALSE(m.contains(12));
  m.set(12, Lit(3, true));
  m.set(2, Lit(1, false));
  m.set(12, Lit(4, false));  // overwrite does not double-count
  EXPECT_EQ(m.size(), 2u);
  EXPECT_EQ(m.at(12), Lit(4, false));
  m.clear();
  EXPECT_TRUE(m.empty());
  EXPECT_FALSE(m.contains(12));
}

// ----- compose edge cases --------------------------------------------------

TEST(AigDense, ComposeEmptySpanIsIdentity) {
  Aig g;
  const Lit f = g.mkXor(g.pi(0), g.pi(1));
  const std::vector<aig::VarSub> empty;
  EXPECT_EQ(g.compose(f, empty), f);
  EXPECT_EQ(g.compose(f, {}), f);
}

TEST(AigDense, ComposeSwapsVariablesSimultaneously) {
  // {x := y, y := x} must swap, not chain through the first entry.
  Aig g;
  const Lit x = g.pi(0);
  const Lit y = g.pi(1);
  const Lit f = g.mkAnd(x, !y);
  const Lit swapped = g.compose(f, {{0, y}, {1, x}});
  const Lit expect = g.mkAnd(y, !x);
  EXPECT_TRUE(test::equivalentExhaustive(g, swapped, expect, 2));
}

TEST(AigDense, ComposeSelfSubstitutionIsIdentity) {
  Aig g;
  util::Random rng(5);
  const Lit f = test::randomFormula(g, rng, 4, 25);
  const Lit composed =
      g.compose(f, {{0, g.pi(0)}, {1, g.pi(1)}, {2, g.pi(2)}});
  EXPECT_TRUE(test::equivalentExhaustive(g, composed, f, 4));
}

TEST(AigDense, ComposeDuplicateEntryLastWins) {
  Aig g;
  const Lit f = g.pi(3);
  const Lit last = g.compose(f, {{3, aig::kFalse}, {3, aig::kTrue}});
  EXPECT_EQ(last, aig::kTrue);
}

TEST(AigDense, ComposeSubstitutionDependingOnOtherMappedVar) {
  // Substituted literals must be used as-is, never re-run through the
  // map: under {x := y, y := 0}, f = x becomes y, NOT 0 (which a
  // sequential/chaining implementation would produce).
  Aig g;
  const Lit y = g.pi(1);
  const Lit sub = g.compose(g.pi(0), {{0, y}, {1, aig::kFalse}});
  EXPECT_EQ(sub, y);
}

}  // namespace
}  // namespace cbq

// Optimization-phase tests: the don't-care simplifier must preserve the
// disjunction fRef ∨ fTgt exactly (checked against truth tables), shrink
// constructed examples, and honour the ODC escape hatch.

#include <gtest/gtest.h>

#include "helpers.hpp"
#include "synth/dc_simplify.hpp"
#include "util/random.hpp"

namespace cbq {
namespace {

using aig::Aig;
using aig::Lit;
using synth::dcSimplify;
using synth::DcOptions;

std::vector<bool> orTable(const Aig& g, Lit a, Lit b, int n) {
  auto ta = test::truthTable(g, a, n);
  const auto tb = test::truthTable(g, b, n);
  for (std::size_t i = 0; i < ta.size(); ++i)
    ta[i] = ta[i] || tb[i];
  return ta;
}

class DcRandomized : public ::testing::TestWithParam<int> {};

TEST_P(DcRandomized, DisjunctionIsPreserved) {
  util::Random rng(static_cast<std::uint64_t>(GetParam()) * 97 + 1);
  Aig g;
  const Lit fRef = test::randomFormula(g, rng, 5, 40);
  const Lit fTgt = test::randomFormula(g, rng, 5, 40);
  const auto before = orTable(g, fRef, fTgt, 5);

  const auto r = dcSimplify(g, fRef, fTgt, {});
  EXPECT_EQ(orTable(g, fRef, r.target, 5), before);
}

TEST_P(DcRandomized, OdcDisabledStillPreserves) {
  util::Random rng(static_cast<std::uint64_t>(GetParam()) * 101 + 2);
  Aig g;
  const Lit fRef = test::randomFormula(g, rng, 5, 40);
  const Lit fTgt = test::randomFormula(g, rng, 5, 40);
  const auto before = orTable(g, fRef, fTgt, 5);
  DcOptions opts;
  opts.useOdc = false;
  const auto r = dcSimplify(g, fRef, fTgt, opts);
  EXPECT_EQ(orTable(g, fRef, r.target, 5), before);
}

TEST_P(DcRandomized, InputDcReplacementsMatchOutsideDcSet) {
  // Stronger than the disjunction property: wherever fRef = 0 the
  // simplified target must equal the original pointwise.
  util::Random rng(static_cast<std::uint64_t>(GetParam()) * 103 + 3);
  Aig g;
  const Lit fRef = test::randomFormula(g, rng, 5, 30);
  const Lit fTgt = test::randomFormula(g, rng, 5, 30);
  DcOptions opts;
  opts.useOdc = false;  // ODC replacements are allowed to differ pointwise
  const auto r = dcSimplify(g, fRef, fTgt, opts);
  const auto tRef = test::truthTable(g, fRef, 5);
  const auto tOld = test::truthTable(g, fTgt, 5);
  const auto tNew = test::truthTable(g, r.target, 5);
  for (std::size_t i = 0; i < tRef.size(); ++i) {
    if (!tRef[i]) {
      EXPECT_EQ(tNew[i], tOld[i]) << "care minterm " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DcRandomized, ::testing::Range(0, 12));

TEST(DcSimplify, TautologicalReferenceCollapsesTarget) {
  Aig g;
  const Lit fTgt = g.mkAnd(g.pi(0), g.pi(1));
  const auto r = dcSimplify(g, aig::kTrue, fTgt, {});
  EXPECT_TRUE(r.target.isFalse());
}

TEST(DcSimplify, ConstantTargetIsFixpoint) {
  Aig g;
  const Lit fRef = g.pi(0);
  const auto r = dcSimplify(g, fRef, aig::kFalse, {});
  EXPECT_TRUE(r.target.isFalse());
}

TEST(DcSimplify, SubsumedTargetShrinksToConstant) {
  // fTgt implies fRef, so inside the care set (¬fRef) the target is
  // identically 0: the simplifier should find the constant replacement.
  Aig g;
  const Lit a = g.pi(0);
  const Lit b = g.pi(1);
  const Lit fRef = g.mkOr(a, b);
  const Lit fTgt = g.mkAnd(a, b);
  const auto r = dcSimplify(g, fRef, fTgt, {});
  EXPECT_TRUE(r.target.isFalse());
  EXPECT_GT(r.stats.constReplacements + r.stats.odcReplacements, 0u);
}

TEST(DcSimplify, MergeCandidateWithinCareSet) {
  // Inside the care set !a (i.e. a = 0): a^b == b, so the XOR structure
  // of the target can collapse onto the plain variable.
  Aig g;
  const Lit a = g.pi(0);
  const Lit b = g.pi(1);
  const Lit c = g.pi(2);
  const Lit fRef = a;
  const Lit fTgt = g.mkAnd(g.mkXor(a, b), c);
  const auto before = orTable(g, fRef, fTgt, 3);
  const auto r = dcSimplify(g, fRef, fTgt, {});
  EXPECT_EQ(orTable(g, fRef, r.target, 3), before);
  EXPECT_LE(g.coneSize(r.target), g.coneSize(fTgt));
}

TEST(DcSimplify, StatsAccounting) {
  Aig g;
  util::Random rng(21);
  const Lit fRef = test::randomFormula(g, rng, 4, 20);
  const Lit fTgt = test::randomFormula(g, rng, 4, 20);
  const auto r = dcSimplify(g, fRef, fTgt, {});
  EXPECT_GE(r.stats.satChecks,
            r.stats.constReplacements + r.stats.mergeReplacements);
  EXPECT_EQ(r.stats.nodesBefore, g.coneSize(fTgt));
}

TEST(Rewrite, PreservesFunctionAndNeverGrows) {
  Aig g;
  util::Random rng(31);
  const Lit f = test::randomFormula(g, rng, 5, 60);
  const auto tt = test::truthTable(g, f, 5);
  const Lit roots[] = {f};
  const Lit r = synth::rewrite(g, roots).front();
  EXPECT_EQ(test::truthTable(g, r, 5), tt);
  EXPECT_LE(g.coneSize(r), g.coneSize(f));
}

}  // namespace
}  // namespace cbq

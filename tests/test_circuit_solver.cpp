// Differential fuzzing of the circuit-native CDCL against the CNF path:
// on the same random cones, under the same assumptions and focus, both
// backends must return the same verdicts, every Sat model must extend to
// a real satisfying input assignment (checked by dense Aig::evaluate),
// and accumulation of learnt gates / interrupts must never change an
// answer — only defer it.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "audit/audit.hpp"
#include "cnf/cnf_backend.hpp"
#include "helpers.hpp"
#include "sat/backend.hpp"
#include "sat/circuit_solver.hpp"
#include "sweep/sweep_context.hpp"
#include "util/random.hpp"

namespace cbq {
namespace {

using cnf::Verdict;

constexpr int kVars = 6;

std::vector<bool> denseModel(const sat::SatBackend& b, int numVars) {
  std::vector<bool> m(static_cast<std::size_t>(numVars));
  for (int v = 0; v < numVars; ++v)
    m[static_cast<std::size_t>(v)] = b.modelOf(static_cast<aig::VarId>(v));
  return m;
}

TEST(CircuitSolver, ConstantLiterals) {
  aig::Aig g;
  sat::CircuitSolver s(g);
  const aig::Lit assumeTrue[] = {aig::kTrue};
  EXPECT_EQ(s.solveLimited(assumeTrue, -1), sat::Status::Sat);
  const aig::Lit assumeFalse[] = {aig::kFalse};
  EXPECT_EQ(s.solveLimited(assumeFalse, -1), sat::Status::Unsat);
}

TEST(CircuitSolver, SingleGateAndLazySync) {
  aig::Aig g;
  sat::CircuitSolver s(g);  // bound before the nodes exist
  const aig::Lit f = g.mkAnd(g.pi(0), g.pi(1));
  const aig::Lit assume[] = {f};
  ASSERT_EQ(s.solveLimited(assume, -1), sat::Status::Sat);
  EXPECT_TRUE(s.modelOf(0));
  EXPECT_TRUE(s.modelOf(1));

  const aig::Lit contradiction[] = {f, !g.pi(0)};
  EXPECT_EQ(s.solveLimited(contradiction, -1), sat::Status::Unsat);
  EXPECT_FALSE(s.conflictCore().empty());
}

TEST(CircuitSolver, BudgetZeroIsUnknown) {
  aig::Aig g;
  util::Random rng(7);
  const aig::Lit a = test::randomFormula(g, rng, kVars, 40);
  const aig::Lit b = test::randomFormula(g, rng, kVars, 40);
  sat::CircuitSolver s(g);
  if (a != b && a != !b)
    EXPECT_EQ(sat::checkEquiv(s, a, b, 0), Verdict::Unknown);
}

TEST(CircuitSolver, InterruptThenResume) {
  aig::Aig g;
  util::Random rng(11);
  const aig::Lit f = test::randomFormula(g, rng, kVars, 60);
  if (f.isConstant()) GTEST_SKIP() << "degenerate formula";

  sat::CircuitSolver cir(g);
  cir.setInterrupt([] { return true; });
  EXPECT_EQ(sat::checkSat(cir, f), Verdict::Unknown);

  // Clearing the interrupt resumes the same solver (learnt gates and
  // heuristic state intact) to the CNF path's answer.
  cir.setInterrupt({});
  cnf::CnfSolverBackend ref(g);
  EXPECT_EQ(sat::checkSat(cir, f), sat::checkSat(ref, f));
}

class CircuitDiff : public ::testing::TestWithParam<int> {};

TEST_P(CircuitDiff, AgreesWithCnfOnRandomCones) {
  util::Random rng(static_cast<std::uint64_t>(GetParam()) * 977 + 13);
  aig::Aig g;
  const aig::Lit a = test::randomFormula(g, rng, kVars, 35);
  const aig::Lit b = test::randomFormula(g, rng, kVars, 35);

  cnf::CnfSolverBackend ref(g);
  sat::CircuitSolver cir(g);

  // Satisfiability, with model validity on both sides.
  const Verdict satRef = sat::checkSat(ref, a);
  const Verdict satCir = sat::checkSat(cir, a);
  EXPECT_EQ(satRef, satCir);
  if (satCir == Verdict::Holds) {
    EXPECT_TRUE(g.evaluate(a, denseModel(cir, kVars)));
    EXPECT_TRUE(g.evaluate(a, denseModel(ref, kVars)));
  }

  // Equivalence, refereed by the exhaustive truth table.
  const bool equiv = test::equivalentExhaustive(g, a, b, kVars);
  const Verdict eqRef = sat::checkEquiv(ref, a, b);
  const Verdict eqCir = sat::checkEquiv(cir, a, b);
  EXPECT_EQ(eqRef, eqCir);
  EXPECT_EQ(eqCir == Verdict::Holds, equiv);
  if (eqCir == Verdict::Fails) {
    const std::vector<bool> m = denseModel(cir, kVars);
    EXPECT_NE(g.evaluate(a, m), g.evaluate(b, m));
  }

  // Constancy.
  EXPECT_EQ(sat::checkConstant(ref, a, false),
            sat::checkConstant(cir, a, false));
  EXPECT_EQ(sat::checkConstant(ref, a, true),
            sat::checkConstant(cir, a, true));
}

TEST_P(CircuitDiff, AgreesUnderAssumptionsAndFocus) {
  util::Random rng(static_cast<std::uint64_t>(GetParam()) * 409 + 29);
  aig::Aig g;
  const aig::Lit f = test::randomFormula(g, rng, kVars, 40);

  // Random PI assumptions (focus stays inside the cone of f plus the
  // assumed PIs, which are always decidable).
  std::vector<aig::Lit> assume;
  std::vector<int> forced(kVars, -1);  // -1 free, else forced value
  for (int v = 0; v < kVars; ++v) {
    if (!rng.flip()) continue;
    const bool val = rng.flip();
    forced[static_cast<std::size_t>(v)] = val ? 1 : 0;
    assume.push_back(g.pi(static_cast<aig::VarId>(v)) ^ !val);
  }
  assume.push_back(f);

  cnf::CnfSolverBackend ref(g);
  sat::CircuitSolver cir(g);
  const aig::Lit roots[] = {f};
  ref.focusOn(roots);
  cir.focusOn(roots);

  const sat::Status stRef = ref.solve(assume, -1);
  const sat::Status stCir = cir.solve(assume, -1);
  EXPECT_EQ(stRef, stCir);

  // Ground truth: does any minterm consistent with the assumptions
  // satisfy f?
  bool satisfiable = false;
  for (std::uint64_t m = 0; m < (std::uint64_t{1} << kVars); ++m) {
    std::vector<bool> point(kVars);
    bool consistent = true;
    for (int v = 0; v < kVars; ++v) {
      point[static_cast<std::size_t>(v)] = ((m >> v) & 1) != 0;
      if (forced[static_cast<std::size_t>(v)] >= 0 &&
          point[static_cast<std::size_t>(v)] !=
              (forced[static_cast<std::size_t>(v)] == 1))
        consistent = false;
    }
    if (consistent && g.evaluate(f, point)) {
      satisfiable = true;
      break;
    }
  }
  EXPECT_EQ(stCir == sat::Status::Sat, satisfiable);
  if (stCir == sat::Status::Sat)
    EXPECT_TRUE(g.evaluate(f, denseModel(cir, kVars)));
}

TEST_P(CircuitDiff, LearntGatesAccumulateWithoutChangingAnswers) {
  util::Random rng(static_cast<std::uint64_t>(GetParam()) * 131 + 3);
  aig::Aig g;
  std::vector<aig::Lit> pool;
  for (int i = 0; i < 8; ++i)
    pool.push_back(test::randomFormula(g, rng, kVars, 25));

  // ONE persistent solver per backend answers a whole query stream;
  // proven equivalences are learned back as clauses mid-stream, the way
  // the sweeper does. Every verdict is refereed exhaustively.
  cnf::CnfSolverBackend ref(g);
  sat::CircuitSolver cir(g);
  for (std::size_t i = 0; i < pool.size(); ++i) {
    for (std::size_t j = i + 1; j < pool.size(); ++j) {
      const aig::Lit a = pool[i];
      const aig::Lit b = pool[j];
      const Verdict vRef = sat::checkEquiv(ref, a, b);
      const Verdict vCir = sat::checkEquiv(cir, a, b);
      ASSERT_EQ(vRef, vCir) << "pair " << i << "," << j;
      ASSERT_EQ(vCir == Verdict::Holds,
                test::equivalentExhaustive(g, a, b, kVars));
      if (vCir == Verdict::Holds && a != b) {
        const aig::Lit fwd[] = {!a, b};
        const aig::Lit bwd[] = {a, !b};
        ASSERT_TRUE(cir.addClause(fwd));
        ASSERT_TRUE(cir.addClause(bwd));
        ASSERT_TRUE(ref.addClause(fwd));
        ASSERT_TRUE(ref.addClause(bwd));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CircuitDiff, ::testing::Range(0, 12));

class ContextRouted : public ::testing::TestWithParam<int> {};

TEST_P(ContextRouted, RaceAndAutoAgreeWithExhaustive) {
  for (const sat::BackendKind kind :
       {sat::BackendKind::Race, sat::BackendKind::Auto,
        sat::BackendKind::Circuit}) {
    util::Random rng(static_cast<std::uint64_t>(GetParam()) * 53 + 17);
    aig::Aig g;
    std::vector<aig::Lit> pool;
    for (int i = 0; i < 6; ++i)
      pool.push_back(test::randomFormula(g, rng, kVars, 30));

    sweep::SweepContext ctx;
    ctx.setBackend(kind);
    ctx.bind(g);
    std::uint64_t queries = 0;
    for (std::size_t i = 0; i < pool.size(); ++i) {
      for (std::size_t j = i + 1; j < pool.size(); ++j) {
        const Verdict v = ctx.checkEquiv(pool[i], pool[j]);
        ++queries;
        ASSERT_EQ(v == Verdict::Holds,
                  test::equivalentExhaustive(g, pool[i], pool[j], kVars))
            << sat::backendName(kind);
        if (v == Verdict::Fails) {
          std::vector<bool> m(kVars);
          for (int vv = 0; vv < kVars; ++vv)
            m[static_cast<std::size_t>(vv)] =
                ctx.modelOf(static_cast<aig::VarId>(vv));
          ASSERT_NE(g.evaluate(pool[i], m), g.evaluate(pool[j], m));
        }
      }
    }
    const auto& c = ctx.counters();
    EXPECT_EQ(c.disagreements, 0u) << sat::backendName(kind);
    EXPECT_EQ(c.cnfWins + c.circuitWins, queries) << sat::backendName(kind);
    if (kind == sat::BackendKind::Circuit)
      EXPECT_EQ(c.cnfWins, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ContextRouted, ::testing::Range(0, 6));

TEST(ContextRouted, BackendSwitchKeepsPairCache) {
  aig::Aig g;
  util::Random rng(3);
  const aig::Lit a = test::randomFormula(g, rng, kVars, 20);
  const aig::Lit b = test::randomFormula(g, rng, kVars, 20);
  sweep::SweepContext ctx;
  ctx.bind(g);
  ctx.recordProven(a, b);
  ctx.setBackend(sat::BackendKind::Circuit);
  EXPECT_TRUE(ctx.hasCircuit());
  EXPECT_FALSE(ctx.hasCnf());
  EXPECT_TRUE(ctx.boundTo(g));
  EXPECT_EQ(ctx.lookupPair(a, b), sweep::SweepContext::PairFact::Proven);
  // Circuit-only sessions never recycle: nothing is encoded.
  EXPECT_FALSE(ctx.recycleIfBloated(1, 0.0, 0));
}

// ----- arena auditor + corruption injection ---------------------------

/// A solver with a few stored constraint gates and a pending frontier,
/// for the auditor to chew on.
sat::CircuitSolver& solverWithGates(aig::Aig& g,
                                    std::unique_ptr<sat::CircuitSolver>& s) {
  util::Random rng(11);
  const aig::Lit f = test::randomFormula(g, rng, kVars, 30);
  s = std::make_unique<sat::CircuitSolver>(g);
  const aig::Lit clause1[] = {g.pi(0), g.pi(1), !g.pi(2)};
  const aig::Lit clause2[] = {!g.pi(0), g.pi(3)};
  EXPECT_TRUE(s->addClause(clause1));
  EXPECT_TRUE(s->addClause(clause2));
  const aig::Lit assume[] = {f};
  EXPECT_NE(s->solveLimited(assume, -1), sat::Status::Undef);
  return *s;
}

TEST(CircuitAudit, CleanSolverPasses) {
  aig::Aig g;
  std::unique_ptr<sat::CircuitSolver> holder;
  auto& s = solverWithGates(g, holder);
  const auto rep = audit::auditCircuitSolver(s);
  EXPECT_TRUE(rep.ok()) << rep.summary();
}

TEST(CircuitAudit, CorruptedArenaLitIsCaught) {
  aig::Aig g;
  std::unique_ptr<sat::CircuitSolver> holder;
  auto& s = solverWithGates(g, holder);
  // Point the first permanent gate's first input past the synced nodes.
  auto& arena = audit::Access::circuitArena(s);
  const auto gref = audit::Access::circuitPermanents(s).front();
  arena[gref + 2] = aig::Lit(static_cast<aig::NodeId>(1u << 20), false).raw();
  const auto rep = audit::auditCircuitSolver(s);
  EXPECT_TRUE(rep.has("circuit.arena.dangling-lit")) << rep.summary();
}

TEST(CircuitAudit, DroppedWatcherIsCaught) {
  aig::Aig g;
  std::unique_ptr<sat::CircuitSolver> holder;
  auto& s = solverWithGates(g, holder);
  // Silently drop one watcher of a stored gate.
  auto& watches = audit::Access::circuitWatches(s);
  const auto gref = audit::Access::circuitPermanents(s).front();
  bool dropped = false;
  for (auto& list : watches) {
    for (std::size_t i = 0; i < list.size(); ++i) {
      if (list[i].gref == gref) {
        list[i] = list.back();
        list.pop_back();
        dropped = true;
        break;
      }
    }
    if (dropped) break;
  }
  ASSERT_TRUE(dropped);
  const auto rep = audit::auditCircuitSolver(s);
  EXPECT_TRUE(rep.has("circuit.watch.missing")) << rep.summary();
}

TEST(CircuitAudit, SweepContextRoutesToLiveEngines) {
  aig::Aig g;
  util::Random rng(5);
  const aig::Lit a = test::randomFormula(g, rng, kVars, 25);
  const aig::Lit b = test::randomFormula(g, rng, kVars, 25);
  for (const auto kind :
       {sat::BackendKind::Cnf, sat::BackendKind::Circuit,
        sat::BackendKind::Race}) {
    sweep::SweepContext ctx;
    ctx.setBackend(kind);
    ctx.bind(g);
    const aig::Lit roots[] = {a, b};
    ctx.focusOn(roots);
    (void)ctx.checkEquiv(a, b);
    // Must not touch an engine the policy does not keep (a circuit-only
    // session has no CNF side to audit) and must stay clean.
    const auto rep = audit::auditSweepContext(ctx, g);
    EXPECT_TRUE(rep.ok()) << sat::backendName(kind) << ": " << rep.summary();
  }
}

}  // namespace
}  // namespace cbq

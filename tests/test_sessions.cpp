// The resumable-session engine API and the cooperative time-sliced
// portfolio. The key guarantees under test:
//  * a zero-budget resume() returns Unknown without advancing any state,
//    so a scheduler can always poke a session safely;
//  * a session resumed across many budget slices reaches the same
//    verdict (with a replay-verified trace for Unsafe) and the same step
//    count as one uninterrupted check() — for every engine;
//  * a finished session's report is final and idempotent;
//  * the TimeSliceScheduler agrees with the racing runner and with
//    ground truth, on one worker and on several.

#include <gtest/gtest.h>

#include <algorithm>

#include "circuits/suite.hpp"
#include "helpers.hpp"
#include "mc/engines.hpp"
#include "mc/network.hpp"
#include "portfolio/budget.hpp"
#include "portfolio/runner.hpp"
#include "portfolio/time_slice.hpp"
#include "util/random.hpp"

namespace cbq {
namespace {

using aig::Lit;
using aig::VarId;
using mc::Network;
using mc::Verdict;
using portfolio::Budget;

/// Random sequential network (same flavour as test_random_models): small
/// enough that every engine finishes fast, varied enough that both
/// verdicts and non-trivial traces occur.
Network randomNetwork(util::Random& rng, int latches, int inputs) {
  mc::NetworkBuilder b("random");
  std::vector<Lit> state;
  for (int i = 0; i < latches; ++i) state.push_back(b.addLatch(rng.flip()));
  for (int i = 0; i < inputs; ++i) b.addInput();
  aig::Aig& g = b.aig();
  const int vars = latches + inputs;
  for (int i = 0; i < latches; ++i) {
    b.setNext(static_cast<std::size_t>(i),
              test::randomFormula(g, rng, vars, 8));
  }
  const Lit raw = test::randomFormula(g, rng, vars, 6);
  b.setBad(g.mkAnd(raw, state[rng.below(static_cast<std::uint64_t>(
                       latches))] ^ rng.flip()));
  return b.finish();
}

/// Resumes `session` until done, starting from a tiny slice budget and
/// growing it geometrically: the early slices force mid-flight pauses,
/// while the growth bounds the total pause overhead so the run finishes
/// well inside the engines' own time limits even on very slow executions
/// (ThreadSanitizer CI runs at ~15x). Returns the final Progress and the
/// number of slices it took.
std::pair<mc::Progress, int> resumeToCompletion(mc::Session& session,
                                                double sliceSeconds,
                                                int maxSlices = 200000) {
  mc::Progress p;
  int slices = 0;
  double slice = sliceSeconds;
  while (slices < maxSlices) {
    p = session.resume(Budget(slice));
    ++slices;
    if (p.done) break;
    slice = std::min(slice * 1.5, 2.0);
  }
  return {p, slices};
}

// ----- zero-budget resumes ---------------------------------------------------

TEST(Session, ZeroBudgetResumeReturnsUnknownWithoutAdvancing) {
  const auto inst = circuits::makeInstance("counter", 4, true);
  for (const std::string& name : mc::engineNames()) {
    SCOPED_TRACE(name);
    const auto engine = mc::makeEngine(name);
    const auto session = engine->start(inst.net);
    // Budget(1e-9) is already expired when the session polls it.
    for (int k = 0; k < 3; ++k) {
      const mc::Progress p = session->resume(Budget(1e-9));
      EXPECT_EQ(p.result.verdict, Verdict::Unknown);
      EXPECT_FALSE(p.done);
      EXPECT_FALSE(p.advanced);
      EXPECT_EQ(p.bound, 0);
      EXPECT_EQ(p.result.steps, 0);
    }
    // The three empty slices left the session intact: a real resume still
    // reaches the one-shot verdict — so every engine demonstrably
    // produces its verdict after >= 3 budget slices.
    const auto [fin, slices] = resumeToCompletion(*session, 60.0);
    EXPECT_TRUE(fin.done);
    EXPECT_EQ(fin.result.verdict, engine->check(inst.net).verdict);
  }
}

// ----- sliced == one-shot, for every engine ----------------------------------

TEST(Session, ResumeInSlicesMatchesOneShotOnRandomModels) {
  util::Random rng(20260728);
  const auto engines = mc::engineNames();
  int multiSlice = 0;
  for (int round = 0; round < 12; ++round) {
    const int latches = 3 + static_cast<int>(rng.below(3));  // 3..5
    const int inputs = 1 + static_cast<int>(rng.below(2));   // 1..2
    const Network net = randomNetwork(rng, latches, inputs);
    for (const std::string& name : engines) {
      SCOPED_TRACE(name + " round " + std::to_string(round));
      const auto engine = mc::makeEngine(name);
      const auto oneShot = engine->check(net);

      const auto session = engine->start(net);
      const auto [sliced, slices] = resumeToCompletion(*session, 0.0005);
      if (slices > 1) ++multiSlice;

      ASSERT_TRUE(sliced.done);
      EXPECT_EQ(sliced.result.verdict, oneShot.verdict);
      EXPECT_EQ(sliced.result.steps, oneShot.steps);
      if (sliced.result.verdict == Verdict::Unsafe &&
          sliced.result.cex.has_value()) {
        EXPECT_TRUE(mc::replayHitsBad(net, *sliced.result.cex));
      }
    }
  }
  // The suite as a whole must actually have exercised mid-flight pauses
  // (individual tiny models may finish inside their first slice).
  EXPECT_GT(multiSlice, 0);
}

TEST(Session, ResumeInSlicesMatchesOneShotOnGeneratedFamilies) {
  // Heavier than the random models: many fixpoint iterations, real
  // sweeping work, so sub-millisecond slices force many mid-iteration
  // pauses (interrupted SAT solves, retried pre-images).
  const struct {
    const char* family;
    int width;
    bool safe;
  } kCases[] = {{"mult", 6, true}, {"mult", 4, false}, {"queue", 3, true}};
  for (const auto& c : kCases) {
    const auto inst = circuits::makeInstance(c.family, c.width, c.safe);
    for (const std::string& name : {std::string("cbq-reach"),
                                    std::string("bdd-bwd"),
                                    std::string("k-induction")}) {
      SCOPED_TRACE(std::string(c.family) + std::to_string(c.width) +
                   (c.safe ? "_safe " : "_unsafe ") + name);
      const auto engine = mc::makeEngine(name);
      const auto oneShot = engine->check(inst.net);

      const auto session = engine->start(inst.net);
      const auto [sliced, slices] = resumeToCompletion(*session, 0.001);
      ASSERT_TRUE(sliced.done);
      EXPECT_EQ(sliced.result.verdict, oneShot.verdict);
      EXPECT_EQ(sliced.result.steps, oneShot.steps);
      if (sliced.result.verdict == Verdict::Unsafe &&
          sliced.result.cex.has_value())
        EXPECT_TRUE(mc::replayHitsBad(inst.net, *sliced.result.cex));
    }
  }
}

TEST(Session, SlicedRunPausesManyTimesOnRealWork) {
  // mult6_safe takes ~100ms of fixpoint+sweeping for cbq-reach; 1ms
  // slices therefore guarantee a deep pause/resume trail, and the bound
  // telemetry must be monotone across it.
  const auto inst = circuits::makeInstance("mult", 6, true);
  const auto engine = mc::makeEngine("cbq-reach");
  const auto session = engine->start(inst.net);
  int slices = 0;
  int lastBound = 0;
  mc::Progress p;
  for (;;) {
    p = session->resume(Budget(0.001));
    ++slices;
    EXPECT_GE(p.bound, lastBound);
    lastBound = p.bound;
    if (p.done) break;
    ASSERT_LT(slices, 200000);
  }
  EXPECT_EQ(p.result.verdict, Verdict::Safe);
  EXPECT_GE(slices, 3);
  EXPECT_GT(p.effort, 0u);
}

// ----- finished sessions are final -------------------------------------------

TEST(Session, DoneReportIsIdempotent) {
  const auto inst = circuits::makeInstance("counter", 4, false);
  const auto engine = mc::makeEngine("bmc");
  const auto session = engine->start(inst.net);
  const auto [fin, slices] = resumeToCompletion(*session, 60.0);
  ASSERT_TRUE(fin.done);
  ASSERT_EQ(fin.result.verdict, Verdict::Unsafe);
  const mc::Progress again = session->resume();
  EXPECT_TRUE(again.done);
  EXPECT_EQ(again.result.verdict, fin.result.verdict);
  EXPECT_EQ(again.result.steps, fin.result.steps);
  EXPECT_EQ(again.result.seconds, fin.result.seconds);
  ASSERT_TRUE(again.result.cex.has_value());
  EXPECT_TRUE(mc::replayHitsBad(inst.net, *again.result.cex));
}

TEST(Session, OwnTimeLimitReportsDoneNotPauseForever) {
  // An engine whose own option limit fired must report done so a
  // scheduler stops granting it slices.
  mc::CircuitQuantReachOptions opts;
  opts.limits.timeLimitSeconds = 0.02;
  const mc::CircuitQuantReach engine(opts);
  const auto inst = circuits::makeInstance("mult", 8, true);  // too hard
  const auto session = engine.start(inst.net);
  mc::Progress p;
  for (int k = 0; k < 1000; ++k) {
    p = session->resume(Budget(0.01));
    if (p.done) break;
  }
  EXPECT_TRUE(p.done);
  EXPECT_EQ(p.result.verdict, Verdict::Unknown);
}

// ----- the time-sliced portfolio ---------------------------------------------

TEST(TimeSlice, AgreesWithGroundTruthSingleWorker) {
  const struct {
    const char* family;
    int width;
    bool safe;
  } kCases[] = {{"counter", 4, true},
                {"counter", 4, false},
                {"mult", 4, true},
                {"mult", 4, false}};
  for (const auto& c : kCases) {
    const auto inst = circuits::makeInstance(c.family, c.width, c.safe);
    SCOPED_TRACE(inst.net.name);
    portfolio::PortfolioOptions opts;
    opts.timeLimitSeconds = 120.0;
    opts.sliceWorkers = 1;
    const portfolio::TimeSliceScheduler scheduler(opts);
    const auto res = scheduler.run(inst.net);
    EXPECT_EQ(res.best.verdict, inst.expected);
    ASSERT_NE(res.winner(), nullptr);
    if (res.best.verdict == Verdict::Unsafe && res.best.cex.has_value())
      EXPECT_TRUE(mc::replayHitsBad(inst.net, *res.best.cex));
    // Exactly one winner, and every granted slice is accounted for.
    int winners = 0;
    for (const auto& run : res.runs) winners += run.winner ? 1 : 0;
    EXPECT_EQ(winners, 1);
  }
}

TEST(TimeSlice, AgreesWithRacingRunnerOnRandomModels) {
  util::Random rng(987654321);
  for (int round = 0; round < 10; ++round) {
    const Network net = randomNetwork(rng, 4, 2);
    portfolio::PortfolioOptions opts;
    opts.engines = {"cbq-reach", "bdd-bwd", "bmc", "k-induction"};
    opts.timeLimitSeconds = 60.0;

    opts.schedule = portfolio::ScheduleMode::Race;
    const auto race = portfolio::PortfolioRunner(opts).run(net);

    opts.schedule = portfolio::ScheduleMode::Slice;
    opts.sliceWorkers = 1;
    const auto slice = portfolio::PortfolioRunner(opts).run(net);

    SCOPED_TRACE("round " + std::to_string(round));
    // Both definitive: they must agree. (These models are tiny, so both
    // schedulers always produce a definitive verdict within the budget.)
    ASSERT_NE(race.best.verdict, Verdict::Unknown);
    ASSERT_NE(slice.best.verdict, Verdict::Unknown);
    EXPECT_EQ(slice.best.verdict, race.best.verdict);
    EXPECT_EQ(slice.best.stats.count("portfolio.verdict_conflicts"), 0);
  }
}

TEST(TimeSlice, MultiWorkerAgrees) {
  const auto safeInst = circuits::makeInstance("mult", 6, true);
  const auto unsafeInst = circuits::makeInstance("mult", 6, false);
  for (const auto* inst : {&safeInst, &unsafeInst}) {
    portfolio::PortfolioOptions opts;
    opts.timeLimitSeconds = 120.0;
    opts.schedule = portfolio::ScheduleMode::Slice;
    opts.sliceWorkers = 3;
    const auto res = portfolio::PortfolioRunner(opts).run(inst->net);
    EXPECT_EQ(res.best.verdict, inst->expected);
  }
}

TEST(TimeSlice, SingleEngineSessionStillWins) {
  const auto inst = circuits::makeInstance("counter", 5, false);
  portfolio::PortfolioOptions opts;
  opts.engines = {"bmc"};
  opts.timeLimitSeconds = 120.0;
  const portfolio::TimeSliceScheduler scheduler(opts);
  const auto res = scheduler.run(inst.net);
  EXPECT_EQ(res.best.verdict, Verdict::Unsafe);
  ASSERT_TRUE(res.best.cex.has_value());
  EXPECT_TRUE(mc::replayHitsBad(inst.net, *res.best.cex));
  EXPECT_EQ(res.runs.size(), 1u);
  EXPECT_TRUE(res.runs[0].winner);
}

TEST(TimeSlice, ExpiredBudgetReportsUnknown) {
  const auto inst = circuits::makeInstance("mult", 8, true);
  portfolio::PortfolioOptions opts;
  opts.timeLimitSeconds = 1e-9;  // expired before the first slice
  const portfolio::TimeSliceScheduler scheduler(opts);
  const auto res = scheduler.run(inst.net);
  EXPECT_EQ(res.best.verdict, Verdict::Unknown);
  EXPECT_EQ(res.winner(), nullptr);
}

TEST(TimeSlice, RejectsUnknownEngine) {
  portfolio::PortfolioOptions opts;
  opts.engines = {"no-such-engine"};
  EXPECT_THROW(portfolio::TimeSliceScheduler{opts},
               std::invalid_argument);
}

// ----- dense assignment satellites -------------------------------------------

TEST(DenseAssignment, MatchesHashedInitAssignment) {
  util::Random rng(42);
  for (int round = 0; round < 20; ++round) {
    const Network net = randomNetwork(rng, 5, 2);
    const auto sparse = net.initAssignment();
    const auto dense = net.initAssignmentDense();
    ASSERT_EQ(dense.size(), net.varBound());
    for (const auto& [v, value] : sparse) EXPECT_EQ(dense[v], value);
    // Both representations evaluate identically on every cone.
    for (const Lit root : net.next)
      EXPECT_EQ(net.aig.evaluate(root, sparse),
                net.aig.evaluate(root, dense));
    EXPECT_EQ(net.aig.evaluate(net.bad, sparse),
              net.aig.evaluate(net.bad, dense));
  }
}

TEST(DenseAssignment, BuilderSetNextOfStillTargetsTheRightLatch) {
  mc::NetworkBuilder b("setNextOf");
  const Lit l0 = b.addLatch(false);
  const Lit in = b.addInput();
  const Lit l1 = b.addLatch(true);
  b.setNextOf(l1, l0);
  b.setNextOf(l0, in);
  b.setBad(l1);
  const Network net = b.finish();
  EXPECT_EQ(net.next[0], in);
  EXPECT_EQ(net.next[1], l0);
  EXPECT_EQ(net.init[1], true);
}

}  // namespace
}  // namespace cbq

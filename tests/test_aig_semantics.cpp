// Semantic (truth-table) property tests for the AIG manager: every
// construction rule and functional operation is checked exhaustively
// against an independent reference on randomized formulas.

#include <gtest/gtest.h>

#include "aig/aig.hpp"
#include "helpers.hpp"
#include "util/random.hpp"
#include "util/var_table.hpp"

namespace cbq {
namespace {

using aig::Aig;
using aig::Lit;
using aig::VarId;

TEST(AigSemantics, GateOperatorsMatchTruthTables) {
  Aig g;
  const Lit a = g.pi(0);
  const Lit b = g.pi(1);
  const Lit c = g.pi(2);
  struct Case {
    Lit built;
    std::vector<bool> expect;  // indexed by minterm cba
  };
  const Case cases[] = {
      {g.mkAnd(a, b), {0, 0, 0, 1, 0, 0, 0, 1}},
      {g.mkOr(a, b), {0, 1, 1, 1, 0, 1, 1, 1}},
      {g.mkXor(a, b), {0, 1, 1, 0, 0, 1, 1, 0}},
      {g.mkXnor(a, b), {1, 0, 0, 1, 1, 0, 0, 1}},
      {g.mkImplies(a, b), {1, 0, 1, 1, 1, 0, 1, 1}},
      {g.mkMux(a, b, c), {0, 0, 0, 1, 1, 0, 1, 1}},  // a ? b : c
  };
  for (const auto& cs : cases) {
    EXPECT_EQ(test::truthTable(g, cs.built, 3), cs.expect);
  }
}

// Parameterized sweep: random formulas, random seeds.
class AigRandomized : public ::testing::TestWithParam<int> {};

TEST_P(AigRandomized, CofactorMatchesShannonReference) {
  util::Random rng(static_cast<std::uint64_t>(GetParam()));
  Aig g;
  const Lit f = test::randomFormula(g, rng, 5, 40);
  for (VarId v = 0; v < 5; ++v) {
    for (const bool value : {false, true}) {
      const Lit cof = g.cofactor(f, v, value);
      EXPECT_FALSE(g.dependsOn(cof, v));
      // Check against direct evaluation with v pinned.
      for (std::uint64_t m = 0; m < 32; ++m) {
        std::unordered_map<VarId, bool> assign;
        for (VarId x = 0; x < 5; ++x)
          assign.emplace(x, ((m >> x) & 1) != 0);
        auto pinned = assign;
        pinned[v] = value;
        EXPECT_EQ(g.evaluate(cof, assign), g.evaluate(f, pinned));
      }
    }
  }
}

TEST_P(AigRandomized, ShannonExpansionReconstructs) {
  util::Random rng(static_cast<std::uint64_t>(GetParam()) + 1000);
  Aig g;
  const Lit f = test::randomFormula(g, rng, 5, 40);
  const VarId v = 2;
  const Lit f0 = g.cofactor(f, v, false);
  const Lit f1 = g.cofactor(f, v, true);
  const Lit rebuilt = g.mkMux(g.pi(v), f1, f0);
  EXPECT_TRUE(test::equivalentExhaustive(g, f, rebuilt, 5));
}

TEST_P(AigRandomized, ComposeMatchesSubstitution) {
  util::Random rng(static_cast<std::uint64_t>(GetParam()) + 2000);
  Aig g;
  const Lit f = test::randomFormula(g, rng, 4, 30);
  const Lit gsub = test::randomFormula(g, rng, 4, 20);
  // Substitute var 1 := gsub.
  const Lit composed = g.compose(f, {{1, gsub}});
  for (std::uint64_t m = 0; m < 16; ++m) {
    std::unordered_map<VarId, bool> assign;
    for (VarId x = 0; x < 4; ++x) assign.emplace(x, ((m >> x) & 1) != 0);
    auto inner = assign;
    inner[1] = g.evaluate(gsub, assign);
    EXPECT_EQ(g.evaluate(composed, assign), g.evaluate(f, inner));
  }
}

TEST_P(AigRandomized, SimulateAgreesWithEvaluate) {
  util::Random rng(static_cast<std::uint64_t>(GetParam()) + 3000);
  Aig g;
  const Lit f = test::randomFormula(g, rng, 6, 50);
  // 64 random patterns at once vs one-by-one evaluation.
  util::VarTable<std::uint64_t> words;
  for (VarId v = 0; v < 6; ++v) words.set(v, rng.next64());
  const Lit roots[] = {f};
  const std::uint64_t result = g.simulate(roots, words).front();
  for (int bit = 0; bit < 64; bit += 7) {
    std::unordered_map<VarId, bool> assign;
    for (VarId v = 0; v < 6; ++v)
      assign.emplace(v, ((words.at(v) >> bit) & 1) != 0);
    EXPECT_EQ(((result >> bit) & 1) != 0, g.evaluate(f, assign));
  }
}

TEST_P(AigRandomized, TransferPreservesFunction) {
  util::Random rng(static_cast<std::uint64_t>(GetParam()) + 4000);
  Aig src;
  const Lit f = test::randomFormula(src, rng, 5, 40);
  Aig dst;
  const Lit moved = dst.transferFrom(src, {{f}}).front();
  EXPECT_EQ(test::truthTable(src, f, 5), test::truthTable(dst, moved, 5));
  // Transfer also compacts: the destination only holds the live cone.
  EXPECT_LE(dst.coneSize(moved), src.coneSize(f));
}

TEST_P(AigRandomized, TransferIsIdempotentOnSameManager) {
  util::Random rng(static_cast<std::uint64_t>(GetParam()) + 5000);
  Aig g;
  const Lit f = test::randomFormula(g, rng, 4, 20);
  EXPECT_EQ(g.transferFrom(g, {{f}}).front(), f);
}

TEST_P(AigRandomized, RebuildWithNodeMapAppliesReplacement) {
  util::Random rng(static_cast<std::uint64_t>(GetParam()) + 6000);
  Aig g;
  const Lit a = g.pi(0);
  const Lit b = g.pi(1);
  const Lit inner = g.mkXor(a, b);
  const Lit outer = g.mkAnd(inner, g.pi(2));
  // Replace the XOR node with plain OR (a function change on purpose).
  const Lit replacement = g.mkOr(a, b);
  aig::NodeMap map;
  map.set(inner.node(), replacement ^ inner.negated());
  const Lit roots[] = {outer};
  const Lit rebuilt = g.rebuildWithNodeMap(roots, map).front();
  const Lit expect = g.mkAnd(g.mkOr(a, b), g.pi(2));
  EXPECT_TRUE(test::equivalentExhaustive(g, rebuilt, expect, 3));
}

TEST_P(AigRandomized, TwoLevelRulesPreserveSemantics) {
  // The same random construction with and without two-level rules must
  // produce functionally identical roots.
  util::Random rngA(static_cast<std::uint64_t>(GetParam()) + 7000);
  util::Random rngB(static_cast<std::uint64_t>(GetParam()) + 7000);
  Aig on;
  Aig off;
  off.setTwoLevelRules(false);
  const Lit fOn = test::randomFormula(on, rngA, 5, 60);
  const Lit fOff = test::randomFormula(off, rngB, 5, 60);
  EXPECT_EQ(test::truthTable(on, fOn, 5), test::truthTable(off, fOff, 5));
  EXPECT_LE(on.coneSize(fOn), off.coneSize(fOff) + 2);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AigRandomized, ::testing::Range(0, 12));

TEST(AigSemantics, CofactorOfAbsentVarIsIdentity) {
  Aig g;
  const Lit f = g.mkAnd(g.pi(0), g.pi(1));
  EXPECT_EQ(g.cofactor(f, 5, true), f);
  EXPECT_EQ(g.cofactor(f, 5, false), f);
}

TEST(AigSemantics, ComposeEmptyMapIsIdentity) {
  Aig g;
  const Lit f = g.mkXor(g.pi(0), g.pi(1));
  EXPECT_EQ(g.compose(f, {}), f);
}

TEST(AigSemantics, MultiRootTransferSharesStructure) {
  Aig src;
  const Lit a = src.pi(0);
  const Lit b = src.pi(1);
  const Lit shared = src.mkAnd(a, b);
  const Lit x = src.mkOr(shared, src.pi(2));
  const Lit y = src.mkXor(shared, src.pi(3));
  Aig dst;
  const auto moved = dst.transferFrom(src, {{x, y}});
  const Lit both[] = {moved[0], moved[1]};
  const Lit srcBoth[] = {x, y};
  EXPECT_EQ(dst.coneSize(both), src.coneSize(srcBoth));
}

}  // namespace
}  // namespace cbq

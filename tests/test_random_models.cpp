// Randomized soundness sweep: every engine is compared against an
// explicit-state BFS referee on randomly generated sequential networks.
// This is the strongest oracle in the suite — the referee enumerates the
// entire (tiny) state space, so any wrong verdict from any engine is a
// soundness bug, full stop.

#include <gtest/gtest.h>

#include <queue>

#include "circuits/suite.hpp"
#include "helpers.hpp"
#include "mc/engines.hpp"
#include "mc/network.hpp"
#include "util/random.hpp"

namespace cbq {
namespace {

using aig::Lit;
using aig::VarId;
using mc::Network;
using mc::Verdict;

/// Random sequential network: `latches` state bits, `inputs` free bits,
/// random next-state cones and a random bad cone.
Network randomNetwork(util::Random& rng, int latches, int inputs) {
  mc::NetworkBuilder b("random");
  std::vector<Lit> state;
  for (int i = 0; i < latches; ++i) state.push_back(b.addLatch(rng.flip()));
  for (int i = 0; i < inputs; ++i) b.addInput();
  aig::Aig& g = b.aig();

  const int vars = latches + inputs;
  for (int i = 0; i < latches; ++i) {
    b.setNext(static_cast<std::size_t>(i),
              test::randomFormula(g, rng, vars, 8));
  }
  // Bias the bad cone so both verdicts occur with decent frequency: a
  // random function conjoined with one state literal.
  const Lit raw = test::randomFormula(g, rng, vars, 6);
  b.setBad(g.mkAnd(raw, state[rng.below(static_cast<std::uint64_t>(
                       latches))] ^ rng.flip()));
  return b.finish();
}

/// Explicit-state BFS over all 2^latches states and 2^inputs input
/// vectors. Returns Unsafe iff some reachable state has an input making
/// bad true, and the minimal depth at which that happens.
std::pair<Verdict, int> explicitStateCheck(const Network& net) {
  const int latches = static_cast<int>(net.numLatches());
  const int inputs = static_cast<int>(net.numInputs());

  auto encode = [&](const std::unordered_map<VarId, bool>& a) {
    std::uint32_t s = 0;
    for (int i = 0; i < latches; ++i)
      if (a.at(net.stateVars[static_cast<std::size_t>(i)])) s |= 1u << i;
    return s;
  };
  auto assignmentFor = [&](std::uint32_t s, std::uint32_t in) {
    std::unordered_map<VarId, bool> a;
    for (int i = 0; i < latches; ++i)
      a.emplace(net.stateVars[static_cast<std::size_t>(i)],
                ((s >> i) & 1) != 0);
    for (int i = 0; i < inputs; ++i)
      a.emplace(net.inputVars[static_cast<std::size_t>(i)],
                ((in >> i) & 1) != 0);
    return a;
  };

  const std::uint32_t initState = encode(net.initAssignment());
  std::vector<int> depth(std::size_t{1} << latches, -1);
  std::queue<std::uint32_t> queue;
  depth[initState] = 0;
  queue.push(initState);
  while (!queue.empty()) {
    const std::uint32_t s = queue.front();
    queue.pop();
    for (std::uint32_t in = 0; in < (1u << inputs); ++in) {
      const auto a = assignmentFor(s, in);
      if (net.aig.evaluate(net.bad, a)) return {Verdict::Unsafe, depth[s]};
      std::uint32_t t = 0;
      for (int i = 0; i < latches; ++i)
        if (net.aig.evaluate(net.next[static_cast<std::size_t>(i)], a))
          t |= 1u << i;
      if (depth[t] < 0) {
        depth[t] = depth[s] + 1;
        queue.push(t);
      }
    }
  }
  return {Verdict::Safe, 0};
}

class RandomModels : public ::testing::TestWithParam<int> {};

TEST_P(RandomModels, AllEnginesMatchExplicitStateReferee) {
  util::Random rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 3);
  const int latches = 2 + static_cast<int>(rng.below(3));  // 2..4
  const int inputs = 1 + static_cast<int>(rng.below(2));   // 1..2
  const Network net = randomNetwork(rng, latches, inputs);
  const auto [truth, cexDepth] = explicitStateCheck(net);

  for (auto& engine : mc::makeAllEngines()) {
    const auto res = engine->check(net);
    if (res.verdict == Verdict::Unknown) {
      // Bounded engines may give up on Safe instances only; the random
      // state graphs here are tiny, so a bug within depth 128 can never
      // be missed.
      EXPECT_EQ(truth, Verdict::Safe)
          << engine->name() << " unknown on an unsafe model";
      continue;
    }
    EXPECT_EQ(res.verdict, truth) << engine->name();
    if (res.verdict == Verdict::Unsafe && res.cex.has_value()) {
      EXPECT_TRUE(mc::replayHitsBad(net, *res.cex)) << engine->name();
      EXPECT_GE(static_cast<int>(res.cex->length()), cexDepth + 1)
          << engine->name() << " beat the minimal counterexample depth";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomModels, ::testing::Range(0, 25));

TEST(RandomModels, RefereeAgreesWithKnownFamilies) {
  // Sanity-check the referee itself against instances whose verdicts and
  // depths are known by construction.
  {
    const auto inst = circuits::makeInstance("counter", 3, false);
    const auto [v, d] = explicitStateCheck(inst.net);
    EXPECT_EQ(v, Verdict::Unsafe);
    EXPECT_EQ(d, 7);
  }
  {
    const auto inst = circuits::makeInstance("counter", 3, true);
    EXPECT_EQ(explicitStateCheck(inst.net).first, Verdict::Safe);
  }
  {
    const auto inst = circuits::makeInstance("peterson", 0, false);
    const auto [v, d] = explicitStateCheck(inst.net);
    EXPECT_EQ(v, Verdict::Unsafe);
    EXPECT_EQ(d, 4);
  }
}

}  // namespace
}  // namespace cbq

// Coverage-rounding tests: file-on-disk I/O dispatch, sweep option
// plumbing, BDD manager bookkeeping, solver reuse under sustained load.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "bdd/bdd.hpp"
#include "circuits/io.hpp"
#include "circuits/suite.hpp"
#include "helpers.hpp"
#include "mc/engines.hpp"
#include "quant/quantifier.hpp"
#include "sat/solver.hpp"
#include "sweep/sweeper.hpp"
#include "util/random.hpp"

namespace cbq {
namespace {

TEST(FileDispatch, ReadsAllThreeFormatsFromDisk) {
  const auto inst = circuits::makeInstance("ring", 4, false);
  const std::string base = ::testing::TempDir() + "/cbq_io_test";
  {
    std::ofstream out(base + ".aag");
    circuits::writeAag(inst.net, out);
  }
  {
    std::ofstream out(base + ".aig", std::ios::binary);
    circuits::writeAigBinary(inst.net, out);
  }
  {
    std::ofstream out(base + ".bench");
    circuits::writeBench(inst.net, out);
  }
  for (const char* ext : {".aag", ".aig", ".bench"}) {
    const auto net = circuits::readCircuitFile(base + ext);
    EXPECT_EQ(net.numLatches(), 4u) << ext;
    mc::Bmc bmc;
    EXPECT_EQ(bmc.check(net).verdict, mc::Verdict::Unsafe) << ext;
    std::remove((base + ext).c_str());
  }
}

TEST(SweepOptions, RoundLimitIsHonoured) {
  aig::Aig g;
  util::Random rng(5);
  const auto f = test::randomFormula(g, rng, 5, 60);
  sweep::SweepOptions opts;
  opts.maxRounds = 1;
  const aig::Lit roots[] = {f};
  const auto r = sweep::sweep(g, roots, opts);
  EXPECT_LE(r.stats.rounds, 1u);
  EXPECT_EQ(test::truthTable(g, r.roots[0], 5),
            test::truthTable(g, f, 5));
}

TEST(SweepOptions, LearningOffStillSound) {
  aig::Aig g;
  util::Random rng(6);
  const auto f = test::randomFormula(g, rng, 5, 60);
  sweep::SweepOptions opts;
  opts.learnEquivalences = false;
  const aig::Lit roots[] = {f};
  const auto r = sweep::sweep(g, roots, opts);
  EXPECT_EQ(test::truthTable(g, r.roots[0], 5),
            test::truthTable(g, f, 5));
}

TEST(SweepOptions, MoreSimulationWordsReduceFalseCandidates) {
  // With 8 words (512 patterns) the all-ones detector over 10 vars is
  // still all-zero in simulation sometimes, but refutations never cause
  // wrong merges regardless of word count.
  for (const int words : {1, 4, 8}) {
    aig::Aig g;
    std::vector<aig::Lit> xs;
    for (aig::VarId v = 0; v < 10; ++v) xs.push_back(g.pi(v));
    const aig::Lit f = g.mkAndAll(xs);
    sweep::SweepOptions opts;
    opts.numWords = words;
    const aig::Lit roots[] = {f};
    const auto r = sweep::sweep(g, roots, opts);
    EXPECT_FALSE(r.roots[0].isConstant()) << words;
  }
}

TEST(Bdd, VariableRegistrationFixesOrder) {
  bdd::BddManager m;
  m.registerVar(7);
  m.registerVar(3);
  EXPECT_EQ(m.numLevels(), 2u);
  EXPECT_EQ(m.varAtLevel(0), 7u);
  EXPECT_EQ(m.varAtLevel(1), 3u);
  // Later var() calls reuse the registered levels.
  m.var(3);
  EXPECT_EQ(m.numLevels(), 2u);
}

TEST(Bdd, ClearCachesKeepsFunctions) {
  bdd::BddManager m;
  const auto a = m.var(0);
  const auto b = m.var(1);
  const auto f = m.bddXor(a, b);
  m.clearCaches();
  EXPECT_EQ(m.bddXor(a, b), f);  // unique table survives; same node
}

TEST(Sat, SustainedIncrementalLoad) {
  // Hundreds of interleaved clause additions and assumption solves on
  // one solver — the lifetime pattern of a sweeping session.
  sat::Solver s;
  util::Random rng(17);
  std::vector<sat::Var> vars;
  for (int i = 0; i < 60; ++i) vars.push_back(s.newVar());
  int satCount = 0;
  for (int round = 0; round < 300; ++round) {
    if (round % 3 == 0) {
      const sat::Lit cl[3] = {
          sat::Lit(vars[rng.below(60)], rng.flip()),
          sat::Lit(vars[rng.below(60)], rng.flip()),
          sat::Lit(vars[rng.below(60)], rng.flip())};
      if (!s.addClause(cl)) break;  // became unsat at level 0
    }
    const sat::Lit assume[2] = {
        sat::Lit(vars[rng.below(60)], rng.flip()),
        sat::Lit(vars[rng.below(60)], rng.flip())};
    const auto st = s.solve(assume);
    ASSERT_NE(st, sat::Status::Undef);
    if (st == sat::Status::Sat) {
      ++satCount;
      EXPECT_EQ(s.modelValue(assume[0]), sat::LBool::True);
      EXPECT_EQ(s.modelValue(assume[1]), sat::LBool::True);
    }
  }
  EXPECT_GT(satCount, 0);
}

TEST(QuantExtra, VarsOutsideSupportAreFreeToQuantify) {
  aig::Aig g;
  quant::Quantifier q(g);
  const aig::Lit f = g.mkAnd(g.pi(0), g.pi(1));
  const aig::VarId vars[] = {5, 6, 7};
  const auto r = q.quantifyAll(f, vars);
  EXPECT_EQ(r.f, f);
  EXPECT_TRUE(r.residual.empty());
}

TEST(QuantExtra, MaxConeGaugeTracksPeak) {
  aig::Aig g;
  util::Random rng(23);
  const auto f = test::randomFormula(g, rng, 6, 60);
  quant::Quantifier q(g);
  q.quantifyVarForced(f, 0);
  EXPECT_GT(q.stats().gauge("quant.max_cone"), 0.0);
}

TEST(Stats, StreamOperatorPrintsEverything) {
  obs::Metrics s;
  s.add("alpha", 3);
  s.set("beta", 1.5);
  std::ostringstream os;
  os << s;
  EXPECT_NE(os.str().find("alpha = 3"), std::string::npos);
  EXPECT_NE(os.str().find("beta = 1.5"), std::string::npos);
}

TEST(Suite, InstancesAreFreshlyGeneratedEachCall) {
  // standardSuite must not share AIG managers across calls (engines
  // mutate nothing, but tests rely on value semantics).
  auto a = circuits::standardSuite();
  auto b = circuits::standardSuite();
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a.size(), 36u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].net.name, b[i].net.name);
    EXPECT_EQ(a[i].expected, b[i].expected);
  }
}

}  // namespace
}  // namespace cbq

// Network model and benchmark-family tests: builder invariants, family
// structure, and hand-written trace replays that pin down the intended
// temporal semantics of each generator.

#include <gtest/gtest.h>

#include "circuits/families.hpp"
#include "circuits/suite.hpp"
#include "mc/network.hpp"
#include "mc/result.hpp"

namespace cbq {
namespace {

using circuits::makeCounter;
using circuits::makeGrayPair;
using circuits::makeQueue;
using circuits::makeTokenRing;
using mc::Network;
using mc::Trace;

TEST(NetworkBuilder, BasicShape) {
  mc::NetworkBuilder b("t");
  const aig::Lit l0 = b.addLatch(true);
  const aig::Lit in = b.addInput();
  b.setNext(0, b.aig().mkAnd(l0, in));
  b.setBad(l0);
  const Network net = b.finish();
  EXPECT_EQ(net.numLatches(), 1u);
  EXPECT_EQ(net.numInputs(), 1u);
  EXPECT_TRUE(net.wellFormed());
  EXPECT_TRUE(net.initAssignment().at(net.stateVars[0]));
}

TEST(NetworkBuilder, SetNextOfResolvesLatch) {
  mc::NetworkBuilder b("t");
  const aig::Lit l0 = b.addLatch(false);
  const aig::Lit l1 = b.addLatch(false);
  b.setNextOf(l1, l0);
  b.setNextOf(l0, !l1);
  b.setBad(b.aig().mkAnd(l0, l1));
  const Network net = b.finish();
  EXPECT_EQ(net.next[1], l0);
  EXPECT_EQ(net.next[0], !l1);
}

TEST(Families, StructuralInventory) {
  struct Expect {
    std::string family;
    int width;
    std::size_t latches;
    std::size_t inputs;
  };
  const Expect cases[] = {
      {"counter", 4, 4, 1}, {"evencount", 4, 4, 1},
      {"gray", 3, 6, 1},    {"ring", 5, 5, 1},
      {"arbiter", 3, 3, 3}, {"traffic", 0, 4, 1}, {"lfsr", 5, 5, 1},
      {"queue", 3, 3, 2},   {"peterson", 0, 5, 3},
  };
  for (const auto& c : cases) {
    for (const bool safe : {true, false}) {
      const auto inst = circuits::makeInstance(c.family, c.width, safe);
      EXPECT_TRUE(inst.net.wellFormed()) << c.family;
      EXPECT_EQ(inst.net.numInputs(), c.inputs) << c.family;
      if (c.family == "queue" && !safe) {
        EXPECT_EQ(inst.net.numLatches(), c.latches + 1);  // full-flag latch
      } else {
        EXPECT_EQ(inst.net.numLatches(), c.latches) << c.family;
      }
      EXPECT_FALSE(inst.net.bad.isConstant()) << c.family;
    }
  }
}

TEST(Families, UnknownFamilyThrows) {
  EXPECT_THROW(circuits::makeInstance("nonsense", 3, true),
               std::invalid_argument);
}

TEST(Families, SuiteCoversEveryFamilyBothVerdicts) {
  const auto suite = circuits::standardSuite();
  std::set<std::pair<std::string, bool>> seen;
  for (const auto& inst : suite)
    seen.emplace(inst.family, inst.expected == mc::Verdict::Safe);
  for (const auto& f : circuits::familyNames()) {
    EXPECT_TRUE(seen.contains({f, true})) << f;
    EXPECT_TRUE(seen.contains({f, false})) << f;
  }
}

/// Builds a trace that drives a single input to fixed values.
Trace constantInputTrace(const Network& net, aig::VarId input, bool value,
                         int steps) {
  Trace t;
  for (int i = 0; i < steps; ++i) {
    std::unordered_map<aig::VarId, bool> in;
    for (const aig::VarId v : net.inputVars) in.emplace(v, false);
    in.insert_or_assign(input, value);
    t.inputs.push_back(in);
  }
  return t;
}

TEST(FamilySemantics, BuggyCounterOverflowsAtExpectedDepth) {
  const Network net = makeCounter(3, /*safe=*/false);
  // Count 0..7: bad (==7) observed at the 8th step's evaluation, i.e.
  // after 7 increments.
  const auto en = net.inputVars[0];
  EXPECT_FALSE(mc::replayHitsBad(net, constantInputTrace(net, en, true, 7)));
  EXPECT_TRUE(mc::replayHitsBad(net, constantInputTrace(net, en, true, 8)));
}

TEST(FamilySemantics, SafeCounterNeverOverflows) {
  const Network net = makeCounter(3, /*safe=*/true);
  const auto en = net.inputVars[0];
  for (int len = 1; len <= 20; ++len)
    EXPECT_FALSE(mc::replayHitsBad(net, constantInputTrace(net, en, true, len)))
        << len;
}

TEST(FamilySemantics, CounterHoldsWithoutEnable) {
  const Network net = makeCounter(3, /*safe=*/false);
  const auto en = net.inputVars[0];
  EXPECT_FALSE(
      mc::replayHitsBad(net, constantInputTrace(net, en, false, 50)));
}

TEST(FamilySemantics, BuggyGrayDivergesUnderEnable) {
  const Network net = makeGrayPair(3, /*safe=*/false);
  const auto en = net.inputVars[0];
  bool hit = false;
  for (int len = 1; len <= 8 && !hit; ++len)
    hit = mc::replayHitsBad(net, constantInputTrace(net, en, true, len));
  EXPECT_TRUE(hit);
}

TEST(FamilySemantics, SafeGrayTracksForever) {
  const Network net = makeGrayPair(3, /*safe=*/true);
  const auto en = net.inputVars[0];
  EXPECT_FALSE(mc::replayHitsBad(net, constantInputTrace(net, en, true, 40)));
}

TEST(FamilySemantics, BuggyRingDoublesToken) {
  const Network net = makeTokenRing(4, /*safe=*/false);
  const auto inject = net.inputVars[0];
  EXPECT_TRUE(mc::replayHitsBad(net, constantInputTrace(net, inject, true, 2)));
  EXPECT_FALSE(
      mc::replayHitsBad(net, constantInputTrace(net, inject, false, 30)));
}

TEST(FamilySemantics, BuggyQueueOverflowsOnSustainedPush) {
  const Network net = makeQueue(3, /*safe=*/false);
  const auto inc = net.inputVars[0];
  bool hit = false;
  for (int len = 1; len <= 12 && !hit; ++len)
    hit = mc::replayHitsBad(net, constantInputTrace(net, inc, true, len));
  EXPECT_TRUE(hit);
}

TEST(FamilySemantics, SafeQueueSaturates) {
  const Network net = makeQueue(3, /*safe=*/true);
  const auto inc = net.inputVars[0];
  EXPECT_FALSE(mc::replayHitsBad(net, constantInputTrace(net, inc, true, 30)));
}

TEST(Replay, EmptyTraceNeverHits) {
  const Network net = makeCounter(3, false);
  EXPECT_FALSE(mc::replayHitsBad(net, Trace{}));
}

TEST(Replay, MissingInputsDefaultToFalse) {
  const Network net = makeCounter(3, false);
  Trace t;
  t.inputs.resize(5);  // empty maps: enable = 0 -> no counting
  EXPECT_FALSE(mc::replayHitsBad(net, t));
}

TEST(WidthSweep, ProducesRequestedWidths) {
  const auto sweep = circuits::widthSweep("counter", {2, 3, 4}, true);
  ASSERT_EQ(sweep.size(), 3u);
  EXPECT_EQ(sweep[0].net.numLatches(), 2u);
  EXPECT_EQ(sweep[2].net.numLatches(), 4u);
}

}  // namespace
}  // namespace cbq

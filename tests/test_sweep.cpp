// Merge-phase (sweeping) tests: semantics preservation on random cones,
// detection of planted equivalences, the BDD and SAT layers individually,
// and forward vs backward processing.

#include <gtest/gtest.h>

#include "helpers.hpp"
#include "sweep/sweeper.hpp"
#include "util/random.hpp"

namespace cbq {
namespace {

using aig::Aig;
using aig::Lit;
using sweep::sweep;
using sweep::SweepOptions;

class SweepRandomized : public ::testing::TestWithParam<int> {};

TEST_P(SweepRandomized, PreservesSemantics) {
  util::Random rng(static_cast<std::uint64_t>(GetParam()) * 53 + 1);
  Aig g;
  const Lit a = test::randomFormula(g, rng, 5, 60);
  const Lit b = test::randomFormula(g, rng, 5, 60);
  const auto ttA = test::truthTable(g, a, 5);
  const auto ttB = test::truthTable(g, b, 5);

  const Lit roots[] = {a, b};
  const auto result = sweep(g, roots, {});
  EXPECT_EQ(test::truthTable(g, result.roots[0], 5), ttA);
  EXPECT_EQ(test::truthTable(g, result.roots[1], 5), ttB);
  EXPECT_LE(result.stats.nodesAfter, result.stats.nodesBefore);
}

TEST_P(SweepRandomized, BackwardModePreservesSemantics) {
  util::Random rng(static_cast<std::uint64_t>(GetParam()) * 59 + 2);
  Aig g;
  const Lit a = test::randomFormula(g, rng, 5, 60);
  const auto tt = test::truthTable(g, a, 5);
  SweepOptions opts;
  opts.backward = true;
  const Lit roots[] = {a};
  const auto result = sweep(g, roots, opts);
  EXPECT_EQ(test::truthTable(g, result.roots[0], 5), tt);
}

TEST_P(SweepRandomized, SatOnlyAndBddOnlyLayersAreSound) {
  util::Random rng(static_cast<std::uint64_t>(GetParam()) * 61 + 3);
  Aig g;
  const Lit a = test::randomFormula(g, rng, 5, 50);
  const auto tt = test::truthTable(g, a, 5);
  {
    SweepOptions opts;
    opts.useBdd = false;
    const Lit roots[] = {a};
    EXPECT_EQ(test::truthTable(g, sweep(g, roots, opts).roots[0], 5), tt);
  }
  {
    SweepOptions opts;
    opts.useSat = false;
    const Lit roots[] = {a};
    EXPECT_EQ(test::truthTable(g, sweep(g, roots, opts).roots[0], 5), tt);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SweepRandomized, ::testing::Range(0, 10));

/// Builds the same function twice with different structures so structural
/// hashing alone cannot merge them.
std::pair<Lit, Lit> plantEquivalentPair(Aig& g) {
  const Lit a = g.pi(0);
  const Lit b = g.pi(1);
  const Lit c = g.pi(2);
  // f1 = (a&b) | (a&c); f2 = a & (b|c) — same function, different shape.
  const Lit f1 = g.mkOr(g.mkAnd(a, b), g.mkAnd(a, c));
  const Lit f2 = g.mkAnd(a, g.mkOr(b, c));
  return {f1, f2};
}

TEST(Sweep, MergesPlantedEquivalence) {
  Aig g;
  auto [f1, f2] = plantEquivalentPair(g);
  // Wrap both in a common observer so the merged cone is measurable.
  const Lit roots[] = {f1, f2};
  const auto result = sweep(g, roots, {});
  EXPECT_EQ(result.roots[0], result.roots[1]);
  EXPECT_GT(result.stats.bddMerges + result.stats.satMerges, 0u);
}

TEST(Sweep, MergesComplementedEquivalence) {
  Aig g;
  const Lit a = g.pi(0);
  const Lit b = g.pi(1);
  // f1 = !(a&b), f2 = !a | !b — equal; also check f3 = a&b merges as the
  // complement of the same class.
  const Lit f1 = !g.mkAnd(a, b);
  const Lit f2 = g.mkOr(!a, !b);
  const Lit roots[] = {f1, f2};
  const auto r = sweep(g, roots, {});
  EXPECT_EQ(r.roots[0], r.roots[1]);
}

TEST(Sweep, DetectsConstantNodes) {
  Aig g;
  const Lit a = g.pi(0);
  const Lit b = g.pi(1);
  // (a|b) & (!a|b) & (a|!b) & (!a|!b) = 0, hidden behind enough structure
  // that two-level rules do not see it.
  const Lit f = g.mkAnd(g.mkAnd(g.mkOr(a, b), g.mkOr(!a, b)),
                        g.mkAnd(g.mkOr(a, !b), g.mkOr(!a, !b)));
  if (f.isConstant()) GTEST_SKIP() << "construction rules already folded it";
  const Lit roots[] = {f};
  const auto r = sweep(g, roots, {});
  EXPECT_TRUE(r.roots[0].isFalse());
  EXPECT_GT(r.stats.constMerges, 0u);
}

TEST(Sweep, SatOnlyFindsPlantedEquivalence) {
  Aig g;
  auto [f1, f2] = plantEquivalentPair(g);
  SweepOptions opts;
  opts.useBdd = false;
  const Lit roots[] = {f1, f2};
  const auto r = sweep(g, roots, opts);
  EXPECT_EQ(r.roots[0], r.roots[1]);
  EXPECT_GT(r.stats.satMerges, 0u);
  EXPECT_GT(r.stats.satChecks, 0u);
}

TEST(Sweep, BddOnlyFindsPlantedEquivalence) {
  Aig g;
  auto [f1, f2] = plantEquivalentPair(g);
  SweepOptions opts;
  opts.useSat = false;
  const Lit roots[] = {f1, f2};
  const auto r = sweep(g, roots, opts);
  EXPECT_EQ(r.roots[0], r.roots[1]);
  EXPECT_GT(r.stats.bddMerges, 0u);
}

TEST(Sweep, RefutationsRefineSignatures) {
  // An all-ones detector over 10 variables is false on all but one of
  // 1024 minterms: a single 64-bit random word almost surely simulates to
  // all-zero, so the sweeper proposes a constant merge, gets refuted by
  // SAT, and must keep the node. A few seeds guarantee at least one
  // false-candidate round deterministically.
  bool sawRefutation = false;
  for (std::uint64_t seed = 1; seed <= 8 && !sawRefutation; ++seed) {
    Aig g;
    std::vector<Lit> xs;
    for (aig::VarId v = 0; v < 10; ++v) xs.push_back(g.pi(v));
    const Lit allOnes = g.mkAndAll(xs);
    SweepOptions opts;
    opts.useBdd = false;
    opts.numWords = 1;
    opts.seed = seed;
    const Lit roots[] = {allOnes};
    const auto r = sweep(g, roots, opts);
    EXPECT_FALSE(r.roots[0].isConstant());  // never merged wrongly
    sawRefutation = r.stats.satRefuted >= 1;
  }
  EXPECT_TRUE(sawRefutation);
}

TEST(Sweep, FullArenaRefusesAppendsButStaysSound) {
  // Same false-candidate setup as above, but the arena is capped at the
  // initial word so every refutation's counterexample append is refused:
  // the run must count arenaFull and still never merge wrongly.
  bool sawFullArena = false;
  for (std::uint64_t seed = 1; seed <= 8 && !sawFullArena; ++seed) {
    Aig g;
    std::vector<Lit> xs;
    for (aig::VarId v = 0; v < 10; ++v) xs.push_back(g.pi(v));
    const Lit allOnes = g.mkAndAll(xs);
    SweepOptions opts;
    opts.useBdd = false;
    opts.numWords = 1;
    opts.maxWords = 1;  // no room for counterexample columns
    opts.seed = seed;
    const Lit roots[] = {allOnes};
    const auto r = sweep(g, roots, opts);
    EXPECT_FALSE(r.roots[0].isConstant());
    if (r.stats.satRefuted >= 1) {
      EXPECT_GE(r.stats.arenaFull, 1u);
      sawFullArena = r.stats.arenaFull >= 1;
    }
  }
  EXPECT_TRUE(sawFullArena);
}

TEST(Sweep, ConstantAndPiRootsSurvive) {
  Aig g;
  const Lit roots[] = {aig::kTrue, g.pi(3), aig::kFalse};
  const auto r = sweep(g, roots, {});
  EXPECT_EQ(r.roots[0], aig::kTrue);
  EXPECT_EQ(r.roots[1], g.pi(3));
  EXPECT_EQ(r.roots[2], aig::kFalse);
}

TEST(Sweep, CofactorPairScenarioSharesAggressively) {
  // The quantification workload: two cofactors of the same function are
  // usually near-identical. Backward processing should merge the roots.
  Aig g;
  util::Random rng(404);
  const Lit f = test::randomFormula(g, rng, 6, 80);
  // Pick a variable f barely depends on: cofactors w.r.t. it are similar.
  const Lit f0 = g.cofactor(f, 5, false);
  const Lit f1 = g.cofactor(f, 5, true);
  if (f0 == f1) GTEST_SKIP() << "strash already merged the cofactors";
  SweepOptions opts;
  opts.backward = true;
  const Lit roots[] = {f0, f1};
  const auto r = sweep(g, roots, opts);
  const auto t0 = test::truthTable(g, r.roots[0], 6);
  const auto t1 = test::truthTable(g, r.roots[1], 6);
  EXPECT_EQ(t0, test::truthTable(g, f0, 6));
  EXPECT_EQ(t1, test::truthTable(g, f1, 6));
}

TEST(Sweep, StatsAreConsistent) {
  Aig g;
  util::Random rng(7);
  const Lit f = test::randomFormula(g, rng, 5, 60);
  const Lit roots[] = {f};
  const auto r = sweep(g, roots, {});
  EXPECT_GE(r.stats.satChecks, r.stats.satMerges + r.stats.satRefuted);
  EXPECT_GE(r.stats.rounds, 1u);
}

}  // namespace
}  // namespace cbq

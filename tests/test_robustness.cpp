// Robustness layer: the malformed-input corpus (every file must die with
// a clean ParseError, never a crash or an unbounded allocation), the
// deterministic fault injector, the portfolio's engine-crash containment
// barriers, and graceful degradation at budget-exhaustion edges.
//
// Fault-armed tests restore the injector in TearDown: the injector is
// process-global, so a leaked armed site would poison every later test.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "circuits/io.hpp"
#include "circuits/suite.hpp"
#include "mc/engines.hpp"
#include "portfolio/budget.hpp"
#include "portfolio/runner.hpp"
#include "portfolio/scheduler.hpp"
#include "util/fault.hpp"

namespace cbq {
namespace {

namespace fs = std::filesystem;
using circuits::ParseError;
using mc::Verdict;
using portfolio::Budget;
using util::FaultInjector;
using util::FaultMode;
using util::FaultSpec;
using util::InjectedFault;

// ----- malformed-input corpus ------------------------------------------------

#ifndef CBQ_CORPUS_DIR
#define CBQ_CORPUS_DIR "tests/corpus"
#endif

TEST(Corpus, EveryFileFailsWithParseError) {
  const fs::path dir(CBQ_CORPUS_DIR);
  ASSERT_TRUE(fs::is_directory(dir)) << dir;
  std::size_t checked = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    const std::string ext = entry.path().extension().string();
    if (ext != ".aag" && ext != ".aig" && ext != ".bench") continue;
    ++checked;
    const std::string path = entry.path().string();
    try {
      circuits::readCircuitFile(path);
      FAIL() << path << ": expected ParseError, parsed successfully";
    } catch (const ParseError& e) {
      // The contract: a diagnostic that names the file, so a batch log
      // points straight at the offender.
      EXPECT_NE(std::string(e.what()).find(entry.path().filename().string()),
                std::string::npos)
          << path << ": " << e.what();
    } catch (const std::exception& e) {
      FAIL() << path << ": wrong exception type: " << e.what();
    }
  }
  // Refuses to pass vacuously if the corpus dir moves or empties out.
  EXPECT_GE(checked, 15u);
}

TEST(Corpus, TextErrorsCarryLineNumbers) {
  // Line-oriented failures must say which line; spot-check a few.
  for (const char* name :
       {"truncated_header.aag", "missing_latch.aag", "bad_and_line.aag",
        "cyclic_ands.aag", "bad_latch_reset.aag"}) {
    const std::string path = (fs::path(CBQ_CORPUS_DIR) / name).string();
    try {
      circuits::readCircuitFile(path);
      FAIL() << path << ": expected ParseError";
    } catch (const ParseError& e) {
      EXPECT_NE(std::string(e.what()).find("line "), std::string::npos)
          << path << ": " << e.what();
    }
  }
}

// ----- reader hardening against hostile headers ------------------------------

TEST(ReaderHardening, OversizedAagCountsRejectedBeforeAllocation) {
  // 10-digit counts must be refused up front: the old reader would have
  // tried a multi-gigabyte std::vector before noticing the file is 30
  // bytes long.
  std::istringstream in("aag 999999999 999999998 0 0 1\n");
  EXPECT_THROW(circuits::readAag(in, "t"), ParseError);
}

TEST(ReaderHardening, AagHeaderMustCoverDeclaredObjects) {
  // M is the max variable index; I+L+A distinct variables cannot fit
  // under a smaller M.
  std::istringstream in("aag 2 2 1 1 1\n");
  EXPECT_THROW(circuits::readAag(in, "t"), ParseError);
}

TEST(ReaderHardening, OversizedBinaryCountsRejected) {
  std::istringstream in("aig 300000000 100000000 100000000 0 100000000\n");
  EXPECT_THROW(circuits::readAigBinary(in, "t"), ParseError);
}

TEST(ReaderHardening, BinaryHeaderOverflowCannotPassConsistencyCheck) {
  // i + l + a summed in 32 bits could wrap to m; the check is 64-bit.
  std::istringstream in("aig 0 4294967295 1 0 0\n");
  EXPECT_THROW(circuits::readAigBinary(in, "t"), ParseError);
}

TEST(ReaderHardening, TruncatedBinaryAndSection) {
  // Header promises one AND; the byte stream ends mid-varint.
  std::istringstream in("aig 3 1 1 1 1\n2\n6\n\x80");
  EXPECT_THROW(circuits::readAigBinary(in, "t"), ParseError);
}

TEST(ReaderHardening, NonMonotoneDeltaRejected)
{
  // delta0 = 7 > lhs = 6: decoding would underflow the literal.
  std::istringstream in(std::string("aig 3 1 1 1 1\n2\n6\n\x07\x00", 19));
  EXPECT_THROW(circuits::readAigBinary(in, "t"), ParseError);
}

// ----- the fault injector ----------------------------------------------------

/// Disarms on both ends: a previous test's leak must not fail this one,
/// and this one must not leak into the next.
class FaultTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultInjector::instance().disarm(); }
  void TearDown() override { FaultInjector::instance().disarm(); }
};

TEST_F(FaultTest, DisarmedSitesCostNothingAndNeverFire) {
  EXPECT_FALSE(FaultInjector::armedFast());
  CBQ_FAULT_POINT("bdd.alloc");  // must be a no-op, not a throw
  EXPECT_FALSE(CBQ_FAULT_FAIL("sat.solve"));
}

TEST_F(FaultTest, SpecParserAcceptsTheGrammar) {
  auto& inj = FaultInjector::instance();
  std::string err;
  EXPECT_TRUE(inj.arm("bdd.alloc", &err)) << err;
  EXPECT_TRUE(inj.arm("sat.solve:3:fail", &err)) << err;
  EXPECT_TRUE(inj.arm("engine.resume:prob=0.5:nonstd", &err)) << err;
  EXPECT_TRUE(inj.arm("prep.pass:stall:stall=50", &err)) << err;
  EXPECT_TRUE(inj.arm("aig.grow:nth=7:oom", &err)) << err;
  EXPECT_EQ(inj.stats().size(), 5u);
}

TEST_F(FaultTest, SpecParserRejectsGarbage) {
  auto& inj = FaultInjector::instance();
  std::string err;
  EXPECT_FALSE(inj.arm("", &err));
  EXPECT_FALSE(inj.arm("site:prob=1.5", &err));
  EXPECT_FALSE(inj.arm("site:prob=0", &err));
  EXPECT_FALSE(inj.arm("site:0", &err));
  EXPECT_FALSE(inj.arm("site:frobnicate", &err));
  EXPECT_NE(err.find("frobnicate"), std::string::npos);
  EXPECT_FALSE(FaultInjector::armedFast());  // nothing got armed
}

TEST_F(FaultTest, NthTriggerFiresExactlyOnce) {
  auto& inj = FaultInjector::instance();
  FaultSpec spec;
  spec.site = "bdd.alloc";
  spec.nth = 3;
  inj.armSpec(spec);
  EXPECT_NO_THROW(inj.hit("bdd.alloc"));
  EXPECT_NO_THROW(inj.hit("bdd.alloc"));
  EXPECT_THROW(inj.hit("bdd.alloc"), InjectedFault);
  EXPECT_NO_THROW(inj.hit("bdd.alloc"));  // one-shot, not every-3rd
  EXPECT_EQ(inj.fireCount(), 1u);
  const auto stats = inj.stats();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].hits, 4u);
  EXPECT_EQ(stats[0].fires, 1u);
}

TEST_F(FaultTest, ProbabilisticFiringIsSeedDeterministic) {
  auto& inj = FaultInjector::instance();
  auto runSchedule = [&] {
    inj.disarm();
    inj.seed(1234);
    FaultSpec spec;
    spec.site = "sat.solve";
    spec.mode = FaultMode::Fail;
    spec.prob = 0.5;
    inj.armSpec(spec);
    std::string pattern;
    for (int k = 0; k < 64; ++k)
      pattern += inj.shouldFail("sat.solve") ? '1' : '0';
    return pattern;
  };
  const std::string a = runSchedule();
  const std::string b = runSchedule();
  EXPECT_EQ(a, b);
  EXPECT_NE(a.find('1'), std::string::npos);  // p=0.5 over 64 draws
  EXPECT_NE(a.find('0'), std::string::npos);
}

TEST_F(FaultTest, ModesThrowTheRightThing) {
  auto& inj = FaultInjector::instance();
  FaultSpec oom;
  oom.site = "aig.grow";
  oom.mode = FaultMode::Oom;
  inj.armSpec(oom);
  EXPECT_THROW(inj.hit("aig.grow"), std::bad_alloc);

  FaultSpec nonstd;
  nonstd.site = "engine.resume";
  nonstd.mode = FaultMode::NonStd;
  inj.armSpec(nonstd);
  EXPECT_THROW(inj.hit("engine.resume"), int);
}

TEST_F(FaultTest, FailModeOnlyAnswersShouldFail) {
  auto& inj = FaultInjector::instance();
  FaultSpec spec;
  spec.site = "sat.solve";
  spec.mode = FaultMode::Fail;
  inj.armSpec(spec);
  EXPECT_NO_THROW(inj.hit("sat.solve"));      // fail-mode never throws
  EXPECT_TRUE(inj.shouldFail("sat.solve"));   // first hit fires
  EXPECT_FALSE(inj.shouldFail("sat.solve"));  // one-shot
}

// ----- engine containment (race + slice) -------------------------------------

/// Arms `spec` against a small safe instance and runs the portfolio.
portfolio::PortfolioResult runFaulted(const std::string& spec,
                                      portfolio::ScheduleMode mode) {
  auto& inj = FaultInjector::instance();
  inj.seed(7);
  std::string err;
  EXPECT_TRUE(inj.arm(spec, &err)) << err;
  portfolio::PortfolioOptions opts;
  opts.timeLimitSeconds = 30.0;
  opts.schedule = mode;
  opts.prep.enabled = false;
  const portfolio::PortfolioRunner runner(opts);
  return runner.run(circuits::makeInstance("counter", 3, true).net);
}

class ContainmentTest : public FaultTest {};

TEST_F(ContainmentTest, OneCrashIsQuarantinedSurvivorsDecideRace) {
  // One-shot throw: exactly one engine's resume blows up; the rest of
  // the portfolio must still produce the real verdict.
  const auto res =
      runFaulted("engine.resume:1:throw", portfolio::ScheduleMode::Race);
  EXPECT_EQ(res.best.verdict, Verdict::Safe);
  EXPECT_EQ(res.engineFailures, 1);
  EXPECT_FALSE(res.allEnginesFailed);
  int failedRuns = 0;
  for (const auto& run : res.runs)
    if (run.failed) {
      ++failedRuns;
      EXPECT_EQ(run.verdict, Verdict::Unknown);
      EXPECT_NE(run.error.find("injected fault"), std::string::npos)
          << run.error;
    }
  EXPECT_EQ(failedRuns, 1);
}

TEST_F(ContainmentTest, OneCrashIsQuarantinedSurvivorsDecideSlice) {
  const auto res =
      runFaulted("engine.resume:1:throw", portfolio::ScheduleMode::Slice);
  EXPECT_EQ(res.best.verdict, Verdict::Safe);
  EXPECT_EQ(res.engineFailures, 1);
  EXPECT_FALSE(res.allEnginesFailed);
}

TEST_F(ContainmentTest, AllCrashesDegradeToUnknownNotAbort) {
  const auto res = runFaulted("engine.resume:prob=1.0:throw",
                              portfolio::ScheduleMode::Race);
  EXPECT_EQ(res.best.verdict, Verdict::Unknown);
  EXPECT_TRUE(res.allEnginesFailed);
  EXPECT_EQ(res.engineFailures, static_cast<int>(res.runs.size()));
  EXPECT_GT(res.best.stats.count("portfolio.all_engines_failed"), 0);
}

TEST_F(ContainmentTest, ForeignExceptionsAreContainedToo) {
  // `throw 42` is not a std::exception; only the catch (...) barrier
  // stands between it and std::terminate on a worker thread.
  const auto res = runFaulted("engine.resume:prob=1.0:nonstd",
                              portfolio::ScheduleMode::Race);
  EXPECT_EQ(res.best.verdict, Verdict::Unknown);
  EXPECT_TRUE(res.allEnginesFailed);
  for (const auto& run : res.runs)
    EXPECT_EQ(run.error, "non-standard exception");
}

TEST_F(ContainmentTest, FakeOomIsContained) {
  const auto res = runFaulted("bdd.alloc:1:oom", portfolio::ScheduleMode::Race);
  // Whichever BDD engine hit the fake bad_alloc is quarantined; someone
  // else settles the instance.
  EXPECT_EQ(res.best.verdict, Verdict::Safe);
  EXPECT_GE(res.engineFailures, 1);
}

// ----- batch worker isolation ------------------------------------------------

class BatchIsolationTest : public FaultTest {};

TEST_F(BatchIsolationTest, OneBadFileNeverLosesTheOthersResults) {
  // [good, corrupt, good]: the corrupt one lands as an error IN ORDER,
  // both neighbours still get verdicts.
  const auto tmp = fs::temp_directory_path() / "cbq_robustness_batch";
  fs::create_directories(tmp);
  const auto good1 = tmp / "good1.aag";
  const auto good2 = tmp / "good2.aag";
  {
    std::ofstream o1(good1);
    circuits::writeAag(circuits::makeInstance("counter", 3, true).net, o1);
    std::ofstream o2(good2);
    circuits::writeAag(circuits::makeInstance("counter", 3, false).net, o2);
  }
  const std::string bad =
      (fs::path(CBQ_CORPUS_DIR) / "missing_latch.aag").string();

  portfolio::BatchOptions opts;
  opts.jobs = 3;
  opts.portfolio.timeLimitSeconds = 30.0;
  const portfolio::BatchScheduler batch(opts);
  const auto summary = batch.runFiles(
      {good1.string(), bad, good2.string()}, nullptr);

  ASSERT_EQ(summary.problems.size(), 3u);
  EXPECT_EQ(summary.problems[0].verdict, Verdict::Safe);
  EXPECT_TRUE(summary.problems[0].error.empty());
  EXPECT_FALSE(summary.problems[1].error.empty());
  EXPECT_NE(summary.problems[1].error.find("line "), std::string::npos);
  EXPECT_EQ(summary.problems[2].verdict, Verdict::Unsafe);
  EXPECT_TRUE(summary.problems[2].error.empty());
  EXPECT_EQ(summary.errors, 1);
  EXPECT_EQ(summary.safe, 1);
  EXPECT_EQ(summary.unsafe, 1);
  fs::remove_all(tmp);
}

TEST_F(BatchIsolationTest, RetriesAreCountedAndBounded) {
  // Every attempt fails (prob=1.0): with --retries 2 the scheduler makes
  // 1 + 2 attempts, records the retry count, and still returns Unknown
  // instead of looping or aborting.
  auto& inj = FaultInjector::instance();
  inj.seed(7);
  std::string err;
  ASSERT_TRUE(inj.arm("engine.resume:prob=1.0:throw", &err)) << err;

  portfolio::BatchOptions opts;
  opts.jobs = 1;
  opts.retries = 2;
  opts.portfolio.timeLimitSeconds = 30.0;
  opts.portfolio.prep.enabled = false;
  const portfolio::BatchScheduler batch(opts);
  std::vector<portfolio::BatchProblem> problems;
  problems.push_back(
      {"counter3", "", circuits::makeInstance("counter", 3, true).net});
  const auto summary = batch.run(std::move(problems), nullptr);

  ASSERT_EQ(summary.problems.size(), 1u);
  const auto& r = summary.problems[0];
  EXPECT_EQ(r.verdict, Verdict::Unknown);
  EXPECT_EQ(r.retries, 2);
  EXPECT_TRUE(r.allEnginesFailed);
}

TEST_F(BatchIsolationTest, TransientFailureRecoversOnRetry) {
  // The fault is one-shot per site hit counter — the retry's fresh
  // sessions run fault-free and the real verdict comes back. Single
  // engine so the first attempt has no surviving rival.
  auto& inj = FaultInjector::instance();
  std::string err;
  ASSERT_TRUE(inj.arm("engine.resume:1:throw", &err)) << err;

  portfolio::BatchOptions opts;
  opts.jobs = 1;
  opts.retries = 1;
  opts.portfolio.engines = {"bmc"};
  opts.portfolio.timeLimitSeconds = 30.0;
  opts.portfolio.prep.enabled = false;
  const portfolio::BatchScheduler batch(opts);
  std::vector<portfolio::BatchProblem> problems;
  problems.push_back(
      {"counter3", "", circuits::makeInstance("counter", 3, false).net});
  const auto summary = batch.run(std::move(problems), nullptr);

  ASSERT_EQ(summary.problems.size(), 1u);
  const auto& r = summary.problems[0];
  EXPECT_EQ(r.verdict, Verdict::Unsafe);
  EXPECT_EQ(r.retries, 1);
  EXPECT_TRUE(r.error.empty());
}

TEST_F(BatchIsolationTest, FallbackEnginesTakeOverOnRetry) {
  // First attempt: a single engine that always crashes. Retry switches
  // to the fallback set, which is healthy and solves the problem.
  auto& inj = FaultInjector::instance();
  std::string err;
  // bdd.alloc only fires inside BDD engines; make the primary a BDD
  // engine and fall back to a SAT engine the fault cannot reach.
  ASSERT_TRUE(inj.arm("bdd.alloc:prob=1.0:throw", &err)) << err;

  portfolio::BatchOptions opts;
  opts.jobs = 1;
  opts.retries = 1;
  opts.portfolio.engines = {"bdd-bwd"};
  opts.fallbackEngines = {"bmc"};
  opts.portfolio.timeLimitSeconds = 30.0;
  opts.portfolio.prep.enabled = false;
  const portfolio::BatchScheduler batch(opts);
  std::vector<portfolio::BatchProblem> problems;
  problems.push_back(
      {"counter3", "", circuits::makeInstance("counter", 3, false).net});
  const auto summary = batch.run(std::move(problems), nullptr);

  ASSERT_EQ(summary.problems.size(), 1u);
  const auto& r = summary.problems[0];
  EXPECT_EQ(r.verdict, Verdict::Unsafe);
  EXPECT_EQ(r.retries, 1);
  ASSERT_EQ(r.runs.size(), 1u);
  EXPECT_EQ(r.runs[0].engine, "bmc");
}

// ----- budget-exhaustion edges -----------------------------------------------

TEST(BudgetEdges, ExpiredBudgetAtStartReturnsUnknownEverywhere) {
  // An engine handed a budget that is ALREADY exhausted must come back
  // Unknown immediately — not crash, not run anyway. The instance is big
  // enough (minutes of sequential work) that a definitive verdict could
  // only mean the budget was ignored.
  const mc::Network net = circuits::makeInstance("evencount", 16, true).net;
  for (const std::string& name : portfolio::defaultPortfolio()) {
    auto engine = mc::makeEngine(name);
    ASSERT_NE(engine, nullptr) << name;
    const auto res = engine->check(net, Budget(1e-9));
    EXPECT_EQ(res.verdict, Verdict::Unknown) << name;
  }
}

TEST(BudgetEdges, MemCeilingIsStickyAndSharedAcrossCopies) {
  Budget b;
  b.withRssLimit(1);  // any live process exceeds one byte of RSS
  const Budget tightened = b.tightened(3600.0);
  // The /proc read is rate-limited; poll past the stride.
  bool hit = false;
  for (int k = 0; k < 256 && !hit; ++k) hit = tightened.exhausted();
  EXPECT_TRUE(hit);
  // The tightened COPY tripped it, yet the original sees the diagnostic:
  // the ceiling state is shared, one problem = one ceiling.
  EXPECT_TRUE(b.memLimitHit());
  EXPECT_TRUE(b.exhausted());
}

TEST(BudgetEdges, RssCeilingDegradesPortfolioToUnknown) {
  portfolio::PortfolioOptions opts;
  opts.rssLimitBytes = 1;
  opts.timeLimitSeconds = 30.0;
  opts.prep.enabled = false;
  const portfolio::PortfolioRunner runner(opts);
  const auto res = runner.run(circuits::makeInstance("counter", 6, true).net);
  EXPECT_EQ(res.best.verdict, Verdict::Unknown);
  EXPECT_TRUE(res.memLimitHit);
  EXPECT_GT(res.best.stats.count("portfolio.mem_limit_hits"), 0);
}

TEST(BudgetEdges, SessionDoneIsIdempotent) {
  // After a session reports done, further resumes return the same final
  // progress — a scheduler bug that over-resumes must not change the
  // verdict or crash.
  const mc::Network net = circuits::makeInstance("counter", 3, true).net;
  auto engine = mc::makeEngine("cbq-reach");
  ASSERT_NE(engine, nullptr);
  auto session = engine->start(net);
  mc::Progress p;
  for (int k = 0; k < 1000 && !p.done; ++k) p = session->resume(Budget(30.0));
  ASSERT_TRUE(p.done);
  const Verdict verdict = p.result.verdict;
  EXPECT_EQ(verdict, Verdict::Safe);
  for (int k = 0; k < 3; ++k) {
    const mc::Progress again = session->resume(Budget(30.0));
    EXPECT_TRUE(again.done);
    EXPECT_EQ(again.result.verdict, verdict);
  }
}

TEST(BudgetEdges, NodeLimitDegradesBddEngineToUnknown) {
  // A node budget far below what the image computation needs: the BDD
  // engine must bail to Unknown through the cooperative path.
  const mc::Network net = circuits::makeInstance("counter", 8, true).net;
  auto engine = mc::makeEngine("bdd-bwd");
  ASSERT_NE(engine, nullptr);
  const auto res = engine->check(net, Budget(30.0, 8));
  EXPECT_EQ(res.verdict, Verdict::Unknown);
}

}  // namespace
}  // namespace cbq

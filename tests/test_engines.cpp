// Engine integration tests — the heart of the reproduction's validation:
// every engine must produce the ground-truth verdict on every suite
// instance, every counterexample must replay, the engines must agree
// pairwise, and the §4 preprocessing must be sound.

#include <gtest/gtest.h>

#include "circuits/suite.hpp"
#include "mc/engines.hpp"
#include "mc/unroller.hpp"

namespace cbq {
namespace {

using mc::CheckResult;
using mc::Verdict;

/// Unsafe counterexample depths known by construction (trace length - 1).
int expectedCexDepth(const circuits::Instance& inst) {
  if (inst.family == "counter") return (1 << inst.width) - 1;
  if (inst.family == "haystack") return (1 << inst.width) - 1;
  if (inst.family == "evencount") return (1 << (inst.width - 1)) - 1;
  if (inst.family == "queue") return (1 << inst.width) - 1;
  return -1;  // not pinned for the others
}

class EngineSuite
    : public ::testing::TestWithParam<std::tuple<int, std::size_t>> {};

TEST_P(EngineSuite, VerdictMatchesGroundTruth) {
  const auto [engineIdx, instIdx] = GetParam();
  auto engines = mc::makeAllEngines();
  ASSERT_LT(static_cast<std::size_t>(engineIdx), engines.size());
  auto suite = circuits::standardSuite();
  ASSERT_LT(instIdx, suite.size());
  auto& inst = suite[instIdx];
  auto& engine = *engines[static_cast<std::size_t>(engineIdx)];

  const CheckResult res = engine.check(inst.net);

  if (res.verdict == Verdict::Unknown) {
    // Only the bounded engine may come back empty-handed, and only on
    // safe instances (it can never miss a real bug inside its depth).
    EXPECT_EQ(engine.name(), "bmc");
    EXPECT_EQ(inst.expected, Verdict::Safe)
        << engine.name() << " on " << inst.net.name;
    return;
  }
  EXPECT_EQ(res.verdict, inst.expected)
      << engine.name() << " on " << inst.net.name;

  if (res.verdict == Verdict::Unsafe && res.cex.has_value()) {
    EXPECT_TRUE(mc::replayHitsBad(inst.net, *res.cex))
        << engine.name() << " produced a bogus trace on " << inst.net.name;
    const int depth = expectedCexDepth(inst);
    if (depth >= 0) {
      EXPECT_GE(static_cast<int>(res.cex->length()), depth + 1)
          << engine.name() << " found an impossibly short trace on "
          << inst.net.name;
    }
  }
}

std::string engineSuiteName(
    const ::testing::TestParamInfo<std::tuple<int, std::size_t>>& info) {
  static const char* names[] = {"cbq",  "cbqfwd", "bddbwd", "bddfwd",
                                "bmc",  "kind",   "allsat", "hybrid"};
  return std::string(names[std::get<0>(info.param)]) + "_inst" +
         std::to_string(std::get<1>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    AllPairs, EngineSuite,
    ::testing::Combine(::testing::Range(0, 8),
                       ::testing::Range<std::size_t>(0, 34)),
    engineSuiteName);

TEST(Engines, SatEnginesFindMinimalDepthCounterexamples) {
  // BMC is depth-optimal; the backward engines count pre-image
  // iterations and must agree with it on frontier depth for Unsafe runs.
  const auto inst = circuits::makeInstance("counter", 3, false);
  mc::Bmc bmc;
  const auto bmcRes = bmc.check(inst.net);
  ASSERT_EQ(bmcRes.verdict, Verdict::Unsafe);
  EXPECT_EQ(bmcRes.steps, 7);

  mc::CircuitQuantReach reach;
  const auto reachRes = reach.check(inst.net);
  ASSERT_EQ(reachRes.verdict, Verdict::Unsafe);
  EXPECT_EQ(reachRes.steps, 7);
  ASSERT_TRUE(reachRes.cex.has_value());
  EXPECT_EQ(reachRes.cex->length(), 8u);
}

TEST(Engines, SafeFixpointDepthsAgreeBetweenAigAndBddBackward) {
  for (const char* family : {"ring", "arbiter", "peterson"}) {
    const auto inst = circuits::makeInstance(family, 4, true);
    mc::CircuitQuantReach aigEngine;
    mc::BddBackwardReach bddEngine;
    const auto a = aigEngine.check(inst.net);
    const auto b = bddEngine.check(inst.net);
    ASSERT_EQ(a.verdict, Verdict::Safe) << family;
    ASSERT_EQ(b.verdict, Verdict::Safe) << family;
    EXPECT_EQ(a.steps, b.steps) << family;
  }
}

TEST(Engines, IterationLimitYieldsUnknown) {
  const auto inst = circuits::makeInstance("counter", 4, true);
  mc::CircuitQuantReachOptions opts;
  opts.limits.maxIterations = 0;
  mc::CircuitQuantReach engine(opts);
  // counter-safe converges in 1 iteration; 0 forbids even that.
  EXPECT_EQ(engine.check(inst.net).verdict, Verdict::Unknown);
}

TEST(Engines, BmcDepthLimitYieldsUnknownOnDeepBug) {
  const auto inst = circuits::makeInstance("counter", 4, false);  // depth 15
  mc::BmcOptions opts;
  opts.maxDepth = 5;
  mc::Bmc engine(opts);
  EXPECT_EQ(engine.check(inst.net).verdict, Verdict::Unknown);
}

TEST(Engines, InductionWithoutUniquePathWeaker) {
  // The arbiter's one-hot invariant is not inductive without the
  // simple-path strengthening at small k; with it, induction closes.
  const auto inst = circuits::makeInstance("ring", 4, true);
  mc::InductionOptions with;
  with.uniquePath = true;
  const auto r = mc::KInduction(with).check(inst.net);
  EXPECT_EQ(r.verdict, Verdict::Safe);
}

TEST(Engines, BddNodeLimitGivesUnknown) {
  const auto inst = circuits::makeInstance("gray", 4, true);
  mc::BddReachOptions opts;
  opts.nodeLimit = 4;  // absurdly small
  mc::BddBackwardReach engine(opts);
  const auto r = engine.check(inst.net);
  EXPECT_EQ(r.verdict, Verdict::Unknown);
  EXPECT_GE(r.stats.count("bdd.node_limit_hits"), 1);
}

TEST(Engines, AllSatEnumerationCapGivesUnknown) {
  const auto inst = circuits::makeInstance("arbiter", 4, true);
  mc::AllSatReachOptions opts;
  opts.maxEnumPerImage = 0;
  mc::AllSatPreimageReach engine(opts);
  EXPECT_EQ(engine.check(inst.net).verdict, Verdict::Unknown);
}

TEST(Engines, CompactionDoesNotChangeVerdicts) {
  for (const bool compact : {false, true}) {
    mc::CircuitQuantReachOptions opts;
    opts.compaction.enabled = compact;
    // Force a compaction on every iteration when enabled — the harshest
    // setting for the persistent session (rebind each time).
    opts.compaction.garbageRatio = 0.0;
    opts.compaction.minNodes = 0;
    mc::CircuitQuantReach engine(opts);
    const auto safeInst = circuits::makeInstance("lfsr", 4, true);
    EXPECT_EQ(engine.check(safeInst.net).verdict, Verdict::Safe);
    const auto badInst = circuits::makeInstance("lfsr", 4, false);
    EXPECT_EQ(engine.check(badInst.net).verdict, Verdict::Unsafe);
  }
}

TEST(Preprocess, QuantifyingInputsPreservesVerdicts) {
  for (const char* family : {"arbiter", "ring", "traffic"}) {
    for (const bool safe : {true, false}) {
      const auto inst = circuits::makeInstance(family, 3, safe);
      const auto pre = mc::preprocessQuantifyInputs(inst.net);
      EXPECT_LE(pre.inputsAfter, pre.inputsBefore) << family;
      mc::Bmc bmc;
      const auto before = bmc.check(inst.net);
      const auto after = bmc.check(pre.net);
      EXPECT_EQ(before.verdict, after.verdict) << family << " safe=" << safe;
      if (before.verdict == Verdict::Unsafe) {
        EXPECT_EQ(before.steps, after.steps) << family;
      }
    }
  }
}

TEST(Preprocess, EliminatesInputsFromBadCone) {
  // The arbiter's bad cone reads every request input; quantification
  // should remove them all (bad becomes a pure state predicate).
  const auto inst = circuits::makeInstance("arbiter", 4, true);
  const auto pre = mc::preprocessQuantifyInputs(inst.net);
  EXPECT_EQ(pre.inputsBefore, 4u);
  EXPECT_EQ(pre.inputsAfter, 0u);
}

TEST(Unroller, DistinctConstraintForcesDifferentStates) {
  const auto inst = circuits::makeInstance("counter", 3, true);
  sat::Solver solver;
  mc::Unroller unroller(inst.net, solver);
  unroller.ensureFrame(1);
  unroller.assertInit();
  // Without enable the state repeats; demanding distinctness of frames
  // 0 and 1 plus enable=0 must be UNSAT.
  unroller.assertDistinct(0, 1);
  const sat::Lit noEnable[] = {
      !unroller.inputLit(0, inst.net.inputVars[0])};
  EXPECT_EQ(solver.solve(noEnable), sat::Status::Unsat);
  // With the enable free it is satisfiable (counting changes the state).
  EXPECT_EQ(solver.solve(), sat::Status::Sat);
}

TEST(Unroller, BadLitTracksSemantics) {
  const auto inst = circuits::makeInstance("counter", 2, false);
  sat::Solver solver;
  mc::Unroller unroller(inst.net, solver);
  unroller.assertInit();
  unroller.ensureFrame(3);
  // bad at frame 3 (count==3) requires enable at every step.
  const sat::Lit bad3[] = {unroller.badLit(3)};
  ASSERT_EQ(solver.solve(bad3), sat::Status::Sat);
  for (int k = 0; k < 3; ++k)
    EXPECT_TRUE(
        solver.modelTrue(unroller.inputLit(k, inst.net.inputVars[0])));
  // bad at frame 0 is impossible from the zero initial state.
  const sat::Lit bad0[] = {unroller.badLit(0)};
  EXPECT_EQ(solver.solve(bad0), sat::Status::Unsat);
}

TEST(Engines, ResultRecordsArePopulated) {
  const auto inst = circuits::makeInstance("traffic", 0, true);
  for (auto& engine : mc::makeAllEngines()) {
    const auto res = engine->check(inst.net);
    EXPECT_EQ(res.engine, engine->name());
    EXPECT_GE(res.seconds, 0.0);
    EXPECT_GE(res.steps, 0);
  }
}

}  // namespace
}  // namespace cbq

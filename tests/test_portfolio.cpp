// The portfolio layer: cooperative budgets/cancellation, the racing
// runner, and the batch scheduler. The key guarantees under test:
//  * a CancelToken stops a long-running engine promptly (not at the next
//    coarse time check — budgets are polled inside every loop);
//  * the racing winner's verdict agrees with a sequential engine run;
//  * batch results are deterministic and land in input order regardless
//    of worker interleaving.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include "circuits/io.hpp"
#include "circuits/suite.hpp"
#include "helpers.hpp"
#include "mc/engines.hpp"
#include "portfolio/budget.hpp"
#include "portfolio/report.hpp"
#include "portfolio/runner.hpp"
#include "portfolio/scheduler.hpp"
#include "util/random.hpp"
#include "util/timer.hpp"

namespace cbq {
namespace {

using aig::Lit;
using mc::Network;
using mc::Verdict;
using portfolio::Budget;
using portfolio::CancelToken;

// ----- Budget semantics ------------------------------------------------------

TEST(Budget, UnlimitedNeverFires) {
  const Budget b;
  EXPECT_FALSE(b.exhausted());
  EXPECT_FALSE(b.cancelled());
  EXPECT_FALSE(b.timedOut());
  EXPECT_FALSE(b.nodesExceeded(std::size_t{1} << 60));
}

TEST(Budget, TokenCancelIsSticky) {
  CancelToken token;
  const Budget b(0.0, 0, &token);
  EXPECT_FALSE(b.exhausted());
  token.cancel();
  EXPECT_TRUE(b.cancelled());
  EXPECT_TRUE(b.exhausted());
  token.reset();
  EXPECT_FALSE(b.exhausted());
}

TEST(Budget, TinyDeadlineExpires) {
  const Budget b(1e-9);
  EXPECT_TRUE(b.timedOut());
  EXPECT_TRUE(b.exhausted());
}

TEST(Budget, TightenedTakesTheMinimum) {
  const Budget loose(3600.0);
  EXPECT_FALSE(loose.exhausted());
  EXPECT_TRUE(loose.tightened(1e-9).exhausted());
  // Tightening with a longer allowance keeps the original deadline.
  const Budget tight(1e-9);
  EXPECT_TRUE(tight.tightened(3600.0).exhausted());
  // Non-positive means "no extra limit".
  EXPECT_FALSE(loose.tightened(0.0).exhausted());
}

TEST(Budget, NodeLimit) {
  const Budget b(0.0, 1000);
  EXPECT_FALSE(b.nodesExceeded(1000));
  EXPECT_TRUE(b.nodesExceeded(1001));
  EXPECT_FALSE(b.exhausted());  // node pressure is polled separately
}

// ----- cancellation stops engines promptly ----------------------------------

/// Runs `engineName` on a problem whose sequential completion takes far
/// longer than the test; cancels shortly after launch and checks the
/// engine came back fast with Unknown. The 30s budget deadline is a
/// backstop so a broken CancelToken fails the test instead of hanging it.
void expectPromptCancel(const std::string& engineName, const Network& net) {
  CancelToken token;
  const Budget budget(30.0, 0, &token);
  mc::CheckResult res;
  util::Timer timer;
  std::thread runner([&] {
    auto engine = mc::makeEngine(engineName);
    ASSERT_NE(engine, nullptr);
    res = engine->check(net, budget);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  token.cancel();
  runner.join();
  EXPECT_EQ(res.verdict, Verdict::Unknown) << engineName;
  // Generous bound (TSan runs slow) yet far below the 30s/60s backstops.
  EXPECT_LT(timer.seconds(), 15.0) << engineName;
}

TEST(Cancellation, StopsBackwardReachPromptly) {
  // ~2^15 backward iterations sequentially — minutes of work.
  expectPromptCancel("cbq-reach",
                     circuits::makeInstance("evencount", 16, true).net);
}

TEST(Cancellation, StopsBmcInsideSolveCalls) {
  // Safe instance: BMC never finds a bug and keeps deepening; the cancel
  // must land inside a monolithic solve via the solver interrupt.
  mc::BmcOptions opts;
  opts.maxDepth = 1 << 20;
  opts.timeLimitSeconds = 60.0;
  const Network net = circuits::makeInstance("evencount", 14, true).net;
  CancelToken token;
  const Budget budget(30.0, 0, &token);
  mc::CheckResult res;
  util::Timer timer;
  std::thread runner([&] {
    mc::Bmc bmc(opts);
    res = bmc.check(net, budget);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  token.cancel();
  runner.join();
  EXPECT_EQ(res.verdict, Verdict::Unknown);
  EXPECT_LT(timer.seconds(), 15.0);
}

TEST(Cancellation, StopsBddTraversalPromptly) {
  expectPromptCancel("bdd-bwd",
                     circuits::makeInstance("evencount", 16, true).net);
}

// ----- the racing runner -----------------------------------------------------

/// Random sequential network, same construction as test_random_models.
Network randomNetwork(util::Random& rng, int latches, int inputs) {
  mc::NetworkBuilder b("random");
  std::vector<Lit> state;
  for (int i = 0; i < latches; ++i) state.push_back(b.addLatch(rng.flip()));
  for (int i = 0; i < inputs; ++i) b.addInput();
  aig::Aig& g = b.aig();
  const int vars = latches + inputs;
  for (int i = 0; i < latches; ++i)
    b.setNext(static_cast<std::size_t>(i),
              test::randomFormula(g, rng, vars, 8));
  const Lit raw = test::randomFormula(g, rng, vars, 6);
  b.setBad(g.mkAnd(raw, state[rng.below(static_cast<std::uint64_t>(
                       latches))] ^ rng.flip()));
  return b.finish();
}

TEST(PortfolioRunner, RejectsUnknownEngineNames) {
  portfolio::PortfolioOptions opts;
  opts.engines = {"cbq-reach", "no-such-engine"};
  EXPECT_THROW(portfolio::PortfolioRunner{opts}, std::invalid_argument);
}

TEST(PortfolioRunner, WinnerMatchesSequentialVerdictOnRandomModels) {
  const portfolio::PortfolioRunner runner{portfolio::PortfolioOptions{}};
  for (int seed = 0; seed < 12; ++seed) {
    util::Random rng(static_cast<std::uint64_t>(seed) * 7919 + 3);
    const int latches = 2 + static_cast<int>(rng.below(3));
    const int inputs = 1 + static_cast<int>(rng.below(2));
    const Network net = randomNetwork(rng, latches, inputs);

    // Sequential referee: the paper's engine is complete on these tiny
    // state spaces.
    const auto seq = mc::CircuitQuantReach().check(net);
    ASSERT_NE(seq.verdict, Verdict::Unknown) << "seed " << seed;

    const auto pr = runner.run(net);
    EXPECT_EQ(pr.best.verdict, seq.verdict) << "seed " << seed;
    // The prep pipeline may settle a tiny model outright (constant bad
    // cone / step-0 violation); then no engine ran and nobody "won".
    if (pr.prep.decided) {
      EXPECT_EQ(pr.best.engine, "prep") << "seed " << seed;
    } else {
      ASSERT_NE(pr.winner(), nullptr) << "seed " << seed;
    }
    EXPECT_EQ(pr.best.stats.count("portfolio.verdict_conflicts"), 0)
        << "seed " << seed;
    // An accepted Unsafe must carry a replay-checked counterexample
    // whenever the winning engine produces traces.
    if (pr.best.verdict == Verdict::Unsafe && pr.best.cex.has_value())
      EXPECT_TRUE(mc::replayHitsBad(net, *pr.best.cex)) << "seed " << seed;
  }
}

TEST(PortfolioRunner, SingleEngineSetBehavesSequentially) {
  portfolio::PortfolioOptions opts;
  opts.engines = {"bmc"};
  const portfolio::PortfolioRunner runner(opts);
  const auto inst = circuits::makeInstance("counter", 3, false);
  const auto pr = runner.run(inst.net);
  EXPECT_EQ(pr.best.verdict, Verdict::Unsafe);
  ASSERT_EQ(pr.runs.size(), 1u);
  EXPECT_TRUE(pr.runs[0].winner);
  EXPECT_EQ(pr.runs[0].engine, "bmc");
}

// ----- the batch scheduler ---------------------------------------------------

std::vector<portfolio::BatchProblem> suiteProblems() {
  std::vector<portfolio::BatchProblem> problems;
  for (const bool safe : {true, false}) {
    for (const auto& family :
         {"counter", "gray", "ring", "arbiter", "traffic", "lfsr", "queue",
          "peterson"}) {
      auto inst = circuits::makeInstance(family, 3, safe);
      std::string name = inst.family + (safe ? "_safe" : "_unsafe");
      problems.push_back(
          {std::move(name), /*path=*/"", std::move(inst.net)});
    }
  }
  return problems;
}

TEST(BatchScheduler, DeterministicAndAgreesWithExpectedVerdicts) {
  portfolio::BatchOptions opts;
  opts.jobs = 4;
  opts.portfolio.timeLimitSeconds = 60.0;
  const portfolio::BatchScheduler scheduler(opts);

  const auto runOnce = [&] { return scheduler.run(suiteProblems()); };
  const auto first = runOnce();
  const auto second = runOnce();

  ASSERT_EQ(first.problems.size(), 16u);
  ASSERT_EQ(second.problems.size(), first.problems.size());
  EXPECT_EQ(first.errors, 0);
  EXPECT_EQ(first.unknown, 0);
  for (std::size_t i = 0; i < first.problems.size(); ++i) {
    const auto& p = first.problems[i];
    // Results land in input order regardless of worker interleaving.
    EXPECT_EQ(p.index, i);
    EXPECT_EQ(p.name, second.problems[i].name);
    // Verdicts are a function of the problem, not of scheduling.
    EXPECT_EQ(p.verdict, second.problems[i].verdict) << p.name;
    const bool expectSafe = p.name.find("_unsafe") == std::string::npos;
    EXPECT_EQ(p.verdict, expectSafe ? Verdict::Safe : Verdict::Unsafe)
        << p.name;
    EXPECT_FALSE(p.winnerEngine.empty()) << p.name;
  }
}

TEST(BatchScheduler, LoadsFilesAndIsolatesParseFailures) {
  const std::string dir = ::testing::TempDir() + "cbq_batch";
  std::filesystem::create_directories(dir);
  {
    std::ofstream out(dir + "/good_safe.aag");
    circuits::writeAag(circuits::makeCounter(3, true), out);
  }
  {
    // Binary AIGER goes through the std::ios::binary open path.
    std::ofstream out(dir + "/good_unsafe.aig", std::ios::binary);
    circuits::writeAigBinary(circuits::makeCounter(3, false), out);
  }
  {
    std::ofstream out(dir + "/broken.aag");
    out << "this is not an AIGER file\n";
  }

  const auto files =
      portfolio::BatchScheduler::collectCircuitFiles({dir});
  ASSERT_EQ(files.size(), 3u);

  portfolio::BatchOptions opts;
  opts.jobs = 2;
  opts.portfolio.timeLimitSeconds = 60.0;
  const auto summary = portfolio::BatchScheduler(opts).runFiles(files);
  ASSERT_EQ(summary.problems.size(), 3u);
  EXPECT_EQ(summary.errors, 1);
  EXPECT_EQ(summary.safe, 1);
  EXPECT_EQ(summary.unsafe, 1);
  for (const auto& p : summary.problems) {
    if (p.name == "broken.aag") {
      EXPECT_FALSE(p.error.empty());
      EXPECT_EQ(p.verdict, Verdict::Unknown);
    } else {
      EXPECT_TRUE(p.error.empty()) << p.error;
    }
  }
}

// ----- report writers --------------------------------------------------------

TEST(Reports, JsonAndCsvCarryTheBatch) {
  portfolio::BatchOptions opts;
  opts.jobs = 2;
  const auto summary = portfolio::BatchScheduler(opts).run([] {
    std::vector<portfolio::BatchProblem> problems;
    auto safe = circuits::makeInstance("counter", 3, true);
    auto buggy = circuits::makeInstance("counter", 3, false);
    problems.push_back({"c3_safe", "", std::move(safe.net)});
    problems.push_back({"c3_unsafe", "", std::move(buggy.net)});
    return problems;
  }());

  std::ostringstream json;
  portfolio::writeJson(summary, json);
  const std::string j = json.str();
  EXPECT_NE(j.find("\"total\": 2"), std::string::npos);
  EXPECT_NE(j.find("\"name\": \"c3_safe\""), std::string::npos);
  EXPECT_NE(j.find("\"verdict\": \"SAFE\""), std::string::npos);
  EXPECT_NE(j.find("\"verdict\": \"UNSAFE\""), std::string::npos);
  EXPECT_NE(j.find("\"engines\": ["), std::string::npos);

  std::ostringstream csv;
  portfolio::writeCsv(summary, csv);
  std::istringstream lines(csv.str());
  std::string line;
  int rows = 0;
  while (std::getline(lines, line)) ++rows;
  EXPECT_EQ(rows, 3);  // header + one row per problem
  EXPECT_NE(csv.str().find("c3_unsafe"), std::string::npos);
  EXPECT_NE(csv.str().find("UNSAFE"), std::string::npos);
}

}  // namespace
}  // namespace cbq

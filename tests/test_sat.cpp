// SAT solver tests: interface edge cases, assumption handling, budgets,
// and randomized cross-validation against brute-force enumeration.

#include <gtest/gtest.h>

#include <vector>

#include "sat/solver.hpp"
#include "util/random.hpp"

namespace cbq {
namespace {

using sat::Lit;
using sat::Solver;
using sat::Status;
using sat::Var;

Lit pos(Var v) { return Lit(v, false); }
Lit neg(Var v) { return Lit(v, true); }

TEST(SatLit, Encoding) {
  const Lit l(3, true);
  EXPECT_EQ(l.var(), 3);
  EXPECT_TRUE(l.sign());
  EXPECT_EQ((!l).var(), 3);
  EXPECT_FALSE((!l).sign());
  EXPECT_EQ(l ^ true, !l);
  EXPECT_EQ(l ^ false, l);
}

TEST(Sat, EmptyProblemIsSat) {
  Solver s;
  EXPECT_EQ(s.solve(), Status::Sat);
}

TEST(Sat, SingleUnit) {
  Solver s;
  const Var v = s.newVar();
  EXPECT_TRUE(s.addClause({pos(v)}));
  EXPECT_EQ(s.solve(), Status::Sat);
  EXPECT_TRUE(s.modelTrue(pos(v)));
}

TEST(Sat, ContradictingUnitsUnsat) {
  Solver s;
  const Var v = s.newVar();
  EXPECT_TRUE(s.addClause({pos(v)}));
  EXPECT_FALSE(s.addClause({neg(v)}));
  EXPECT_FALSE(s.okay());
  EXPECT_EQ(s.solve(), Status::Unsat);
}

TEST(Sat, TautologyIgnored) {
  Solver s;
  const Var v = s.newVar();
  EXPECT_TRUE(s.addClause({pos(v), neg(v)}));
  EXPECT_EQ(s.numClauses(), 0u);
  EXPECT_EQ(s.solve(), Status::Sat);
}

TEST(Sat, DuplicateLiteralsCollapsed) {
  Solver s;
  const Var a = s.newVar();
  const Var b = s.newVar();
  EXPECT_TRUE(s.addClause({pos(a), pos(a), pos(b)}));
  EXPECT_EQ(s.solve(), Status::Sat);
}

TEST(Sat, SimplePropagationChain) {
  Solver s;
  std::vector<Var> v;
  for (int i = 0; i < 10; ++i) v.push_back(s.newVar());
  for (int i = 0; i + 1 < 10; ++i)
    EXPECT_TRUE(s.addClause({neg(v[i]), pos(v[i + 1])}));  // v_i -> v_{i+1}
  EXPECT_TRUE(s.addClause({pos(v[0])}));
  EXPECT_EQ(s.solve(), Status::Sat);
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(s.modelTrue(pos(v[i])));
}

TEST(Sat, XorChainBothParities) {
  // x0 ^ x1 ^ x2 = 1 encoded as CNF over 3 vars: satisfiable.
  Solver s;
  const Var x0 = s.newVar();
  const Var x1 = s.newVar();
  const Var x2 = s.newVar();
  // Odd parity clauses.
  EXPECT_TRUE(s.addClause({pos(x0), pos(x1), pos(x2)}));
  EXPECT_TRUE(s.addClause({pos(x0), neg(x1), neg(x2)}));
  EXPECT_TRUE(s.addClause({neg(x0), pos(x1), neg(x2)}));
  EXPECT_TRUE(s.addClause({neg(x0), neg(x1), pos(x2)}));
  ASSERT_EQ(s.solve(), Status::Sat);
  const bool parity = s.modelTrue(pos(x0)) ^ s.modelTrue(pos(x1)) ^
                      s.modelTrue(pos(x2));
  EXPECT_TRUE(parity);
}

TEST(Sat, PigeonholeUnsat) {
  // PHP(4,3): 4 pigeons, 3 holes — classically hard-ish, clearly UNSAT.
  Solver s;
  const int pigeons = 4;
  const int holes = 3;
  std::vector<std::vector<Var>> p(pigeons, std::vector<Var>(holes));
  for (auto& row : p)
    for (auto& v : row) v = s.newVar();
  for (int i = 0; i < pigeons; ++i) {
    std::vector<Lit> clause;
    for (int h = 0; h < holes; ++h) clause.push_back(pos(p[i][h]));
    EXPECT_TRUE(s.addClause(clause));
  }
  for (int h = 0; h < holes; ++h)
    for (int i = 0; i < pigeons; ++i)
      for (int j = i + 1; j < pigeons; ++j)
        EXPECT_TRUE(s.addClause({neg(p[i][h]), neg(p[j][h])}));
  EXPECT_EQ(s.solve(), Status::Unsat);
  EXPECT_GT(s.conflicts(), 0u);
}

TEST(Sat, AssumptionsFlipOutcome) {
  Solver s;
  const Var a = s.newVar();
  const Var b = s.newVar();
  EXPECT_TRUE(s.addClause({pos(a), pos(b)}));
  const Lit na[] = {neg(a)};
  EXPECT_EQ(s.solve(na), Status::Sat);
  EXPECT_TRUE(s.modelTrue(pos(b)));
  const Lit nanb[] = {neg(a), neg(b)};
  EXPECT_EQ(s.solve(nanb), Status::Unsat);
  // Solver is reusable after an assumption failure.
  EXPECT_EQ(s.solve(), Status::Sat);
}

TEST(Sat, ConflictCoreIsSubsetOfAssumptions) {
  Solver s;
  const Var a = s.newVar();
  const Var b = s.newVar();
  const Var c = s.newVar();
  EXPECT_TRUE(s.addClause({neg(a), neg(b)}));  // a -> !b
  const Lit assume[] = {pos(a), pos(b), pos(c)};
  ASSERT_EQ(s.solve(assume), Status::Unsat);
  const auto& core = s.conflictCore();
  EXPECT_FALSE(core.empty());
  for (const Lit l : core) {
    // Core literals are negations of failed assumptions.
    EXPECT_TRUE((!l) == pos(a) || (!l) == pos(b));
  }
}

TEST(Sat, IncrementalAddBetweenSolves) {
  Solver s;
  const Var a = s.newVar();
  const Var b = s.newVar();
  EXPECT_TRUE(s.addClause({pos(a), pos(b)}));
  EXPECT_EQ(s.solve(), Status::Sat);
  EXPECT_TRUE(s.addClause({neg(a)}));
  EXPECT_EQ(s.solve(), Status::Sat);
  EXPECT_TRUE(s.modelTrue(pos(b)));
  EXPECT_FALSE(s.addClause({neg(b)}) && s.okay());
  EXPECT_EQ(s.solve(), Status::Unsat);
}

TEST(Sat, BudgetReturnsUndefOnHardInstance) {
  // A large pigeonhole with a 1-conflict budget cannot finish.
  Solver s;
  const int pigeons = 8;
  const int holes = 7;
  std::vector<std::vector<Var>> p(pigeons, std::vector<Var>(holes));
  for (auto& row : p)
    for (auto& v : row) v = s.newVar();
  for (int i = 0; i < pigeons; ++i) {
    std::vector<Lit> clause;
    for (int h = 0; h < holes; ++h) clause.push_back(pos(p[i][h]));
    s.addClause(clause);
  }
  for (int h = 0; h < holes; ++h)
    for (int i = 0; i < pigeons; ++i)
      for (int j = i + 1; j < pigeons; ++j)
        s.addClause({neg(p[i][h]), neg(p[j][h])});
  EXPECT_EQ(s.solveLimited({}, 1), Status::Undef);
  // And an unlimited call still decides it.
  EXPECT_EQ(s.solve(), Status::Unsat);
}

// ----- randomized cross-validation -----------------------------------------

/// Brute-force 3-SAT check over <= 16 variables.
bool bruteForceSat(int numVars, const std::vector<std::vector<Lit>>& clauses) {
  for (std::uint32_t m = 0; m < (1u << numVars); ++m) {
    bool all = true;
    for (const auto& cl : clauses) {
      bool any = false;
      for (const Lit l : cl) {
        const bool val = ((m >> l.var()) & 1) != 0;
        if (val != l.sign()) {
          any = true;
          break;
        }
      }
      if (!any) {
        all = false;
        break;
      }
    }
    if (all) return true;
  }
  return false;
}

class SatRandom3Sat : public ::testing::TestWithParam<int> {};

TEST_P(SatRandom3Sat, AgreesWithBruteForce) {
  util::Random rng(static_cast<std::uint64_t>(GetParam()) * 977 + 13);
  // Around the phase transition (ratio ~4.3) both outcomes occur.
  const int numVars = 10;
  const int numClauses = 40 + GetParam() % 8;

  Solver s;
  for (int v = 0; v < numVars; ++v) s.newVar();
  std::vector<std::vector<Lit>> clauses;
  bool obviouslyUnsat = false;
  for (int i = 0; i < numClauses; ++i) {
    std::vector<Lit> cl;
    for (int k = 0; k < 3; ++k)
      cl.push_back(Lit(static_cast<Var>(rng.below(numVars)), rng.flip()));
    clauses.push_back(cl);
    if (!s.addClause(cl)) obviouslyUnsat = true;
  }
  const bool expected = bruteForceSat(numVars, clauses);
  if (obviouslyUnsat) {
    EXPECT_FALSE(expected);
    return;
  }
  const Status st = s.solve();
  EXPECT_EQ(st == Status::Sat, expected);
  if (st == Status::Sat) {
    // The model must satisfy every clause.
    for (const auto& cl : clauses) {
      bool any = false;
      for (const Lit l : cl) any = any || s.modelTrue(l);
      EXPECT_TRUE(any);
    }
  }
}

TEST_P(SatRandom3Sat, AssumptionSolvesMatchConditionedBruteForce) {
  util::Random rng(static_cast<std::uint64_t>(GetParam()) * 1237 + 7);
  const int numVars = 9;
  Solver s;
  for (int v = 0; v < numVars; ++v) s.newVar();
  std::vector<std::vector<Lit>> clauses;
  for (int i = 0; i < 33; ++i) {
    std::vector<Lit> cl;
    for (int k = 0; k < 3; ++k)
      cl.push_back(Lit(static_cast<Var>(rng.below(numVars)), rng.flip()));
    clauses.push_back(cl);
    if (!s.addClause(cl)) return;  // trivially unsat; covered elsewhere
  }
  // Three rounds of random assumptions against brute force with the
  // assumptions added as unit clauses.
  for (int round = 0; round < 3; ++round) {
    std::vector<Lit> assume;
    auto conditioned = clauses;
    for (int k = 0; k < 3; ++k) {
      const Lit l(static_cast<Var>(rng.below(numVars)), rng.flip());
      assume.push_back(l);
      conditioned.push_back({l});
    }
    const bool expected = bruteForceSat(numVars, conditioned);
    EXPECT_EQ(s.solve(assume) == Status::Sat, expected);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SatRandom3Sat, ::testing::Range(0, 20));

}  // namespace
}  // namespace cbq

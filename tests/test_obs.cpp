// Observability subsystem tests: metrics histograms and thread safety,
// span tracer determinism and JSON validity, concurrent emission from
// pool lanes (run under TSan in CI), the disabled-mode no-allocation
// guarantee, ring-wrap drop accounting, NDJSON progress lines, and the
// steady-clock policy for every duration source.

#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdlib>
#include <new>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/progress.hpp"
#include "obs/tracer.hpp"
#include "portfolio/budget.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace {

using cbq::obs::Metrics;

// ---------------------------------------------------------------------
// Allocation counting. The global operator new/delete overrides count
// every heap allocation in this test binary; tests measure deltas around
// the region of interest. Only the count is test-specific — allocation
// itself delegates to malloc/free as usual.
std::atomic<std::uint64_t> g_allocs{0};

}  // namespace

void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }

namespace {

// ---------------------------------------------------------------------
// A minimal recursive-descent JSON validator: the tracer and the progress
// streamer hand-roll their JSON, so "parses back" must be checked for
// real, not by substring search.
class JsonValidator {
 public:
  explicit JsonValidator(const std::string& text) : s_(text) {}

  bool valid() {
    skipWs();
    if (!value()) return false;
    skipWs();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{':
        return object();
      case '[':
        return array();
      case '"':
        return string();
      case 't':
        return literal("true");
      case 'f':
        return literal("false");
      case 'n':
        return literal("null");
      default:
        return number();
    }
  }
  bool object() {
    ++pos_;  // '{'
    skipWs();
    if (peek() == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      skipWs();
      if (!string()) return false;
      skipWs();
      if (peek() != ':') return false;
      ++pos_;
      skipWs();
      if (!value()) return false;
      skipWs();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }
  bool array() {
    ++pos_;  // '['
    skipWs();
    if (peek() == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      skipWs();
      if (!value()) return false;
      skipWs();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }
  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') ++pos_;
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }
  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-'))
      ++pos_;
    return pos_ > start;
  }
  bool literal(const char* lit) {
    const std::size_t n = std::char_traits<char>::length(lit);
    if (s_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }
  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skipWs() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])))
      ++pos_;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

// One "X" event pulled out of a Chrome trace for containment checks.
struct TraceEv {
  int tid = 0;
  double ts = 0, dur = 0;
  std::string cat, name;
};

std::vector<TraceEv> extractEvents(const std::string& json) {
  std::vector<TraceEv> evs;
  std::size_t pos = 0;
  auto field = [&](const std::string& obj, const char* key) -> std::string {
    const std::string needle = std::string("\"") + key + "\": ";
    const std::size_t k = obj.find(needle);
    if (k == std::string::npos) return "";
    std::size_t v = k + needle.size();
    if (obj[v] == '"') {
      const std::size_t end = obj.find('"', v + 1);
      return obj.substr(v + 1, end - v - 1);
    }
    std::size_t end = v;
    while (end < obj.size() && obj[end] != ',' && obj[end] != '}') ++end;
    return obj.substr(v, end - v);
  };
  while ((pos = json.find("{\"ph\": \"X\"", pos)) != std::string::npos) {
    const std::size_t end = json.find('}', pos);
    const std::string obj = json.substr(pos, end - pos + 1);
    TraceEv ev;
    ev.tid = std::atoi(field(obj, "tid").c_str());
    ev.ts = std::atof(field(obj, "ts").c_str());
    ev.dur = std::atof(field(obj, "dur").c_str());
    ev.cat = field(obj, "cat");
    ev.name = field(obj, "name");
    evs.push_back(std::move(ev));
    pos = end;
  }
  return evs;
}

// Tracing state is process-global; every tracer test starts from scratch
// and leaves the tracer off.
class TracerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    cbq::obs::disableTracing();
    cbq::obs::clearTrace();
  }
  void TearDown() override {
    cbq::obs::disableTracing();
    cbq::obs::clearTrace();
  }
};

// ---------------------------------------------------------------------
// Metrics

TEST(MetricsHistogram, RecordsCountSumMax) {
  Metrics m;
  m.observe("sat.solve_seconds", 0.5);
  m.observe("sat.solve_seconds", 1.5);
  m.observe("sat.solve_seconds", 0.25);
  const auto h = m.histogram("sat.solve_seconds");
  EXPECT_EQ(h.count, 3u);
  EXPECT_DOUBLE_EQ(h.sum, 2.25);
  EXPECT_DOUBLE_EQ(h.max, 1.5);
  std::uint64_t total = 0;
  for (const auto b : h.buckets) total += b;
  EXPECT_EQ(total, 3u);
}

TEST(MetricsHistogram, BucketsSeparateByMagnitude) {
  Metrics m;
  m.observe("lat", 1e-6);  // ~1 microsecond
  m.observe("lat", 1e-3);  // ~1 millisecond: ~10 buckets apart
  const auto h = m.histogram("lat");
  int firstBucket = -1, lastBucket = -1;
  for (std::size_t i = 0; i < h.buckets.size(); ++i) {
    if (h.buckets[i] == 0) continue;
    if (firstBucket < 0) firstBucket = static_cast<int>(i);
    lastBucket = static_cast<int>(i);
  }
  EXPECT_GE(lastBucket - firstBucket, 8);
}

TEST(MetricsHistogram, MergeAddsBuckets) {
  Metrics a, b;
  a.observe("lat", 0.001);
  b.observe("lat", 0.002);
  b.observe("lat", 4.0);
  a.merge(b);
  const auto h = a.histogram("lat");
  EXPECT_EQ(h.count, 3u);
  EXPECT_DOUBLE_EQ(h.max, 4.0);
  EXPECT_DOUBLE_EQ(h.sum, 4.003);
}

TEST(Metrics, ConcurrentAddsAreExact) {
  Metrics m;
  constexpr int kThreads = 8;
  constexpr int kAdds = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&m] {
      for (int i = 0; i < kAdds; ++i) {
        m.add("counter");
        m.high("gauge", static_cast<double>(i));
        m.observe("lat", 1e-6);
      }
    });
  for (auto& t : threads) t.join();
  EXPECT_EQ(m.count("counter"), kThreads * kAdds);
  EXPECT_DOUBLE_EQ(m.gauge("gauge"), kAdds - 1);
  EXPECT_EQ(m.histogram("lat").count,
            static_cast<std::uint64_t>(kThreads) * kAdds);
}

TEST(Metrics, WriteJsonIsValid) {
  Metrics m;
  m.add("sat.conflicts", 42);
  m.high("bdd.peak_nodes", 1234.0);
  m.observe("sched.slice_seconds", 0.125);
  std::ostringstream os;
  m.writeJson(os);
  const std::string json = os.str();
  EXPECT_TRUE(JsonValidator(json).valid()) << json;
  EXPECT_NE(json.find("sat.conflicts"), std::string::npos);
  EXPECT_NE(json.find("bdd.peak_nodes"), std::string::npos);
  EXPECT_NE(json.find("sched.slice_seconds"), std::string::npos);
}

// ---------------------------------------------------------------------
// Tracer

TEST_F(TracerTest, NestedSpansAreContainedAndOrdered) {
  cbq::obs::enableTracing();
  {
    CBQ_OBS_SPAN("engine", "outer");
    {
      CBQ_OBS_SPAN("sat", "inner-1");
    }
    {
      CBQ_OBS_SPAN("sat", "inner-2");
    }
  }
  cbq::obs::disableTracing();

  std::ostringstream os;
  cbq::obs::writeChromeTrace(os);
  const std::string json = os.str();
  ASSERT_TRUE(JsonValidator(json).valid()) << json;

  const auto evs = extractEvents(json);
  ASSERT_EQ(evs.size(), 3u);
  // Ring order is completion order: inner spans close before the outer.
  EXPECT_EQ(evs[0].name, "inner-1");
  EXPECT_EQ(evs[1].name, "inner-2");
  EXPECT_EQ(evs[2].name, "outer");
  EXPECT_EQ(evs[2].cat, "engine");
  // Containment: both inner spans lie inside [outer.ts, outer.ts+dur],
  // and inner-1 finishes before inner-2 starts.
  const TraceEv& outer = evs[2];
  for (int i = 0; i < 2; ++i) {
    EXPECT_GE(evs[i].ts, outer.ts);
    EXPECT_LE(evs[i].ts + evs[i].dur, outer.ts + outer.dur + 1e-9);
    EXPECT_EQ(evs[i].tid, outer.tid);
  }
  EXPECT_LE(evs[0].ts + evs[0].dur, evs[1].ts + 1e-9);
}

TEST_F(TracerTest, ConcurrentEmissionFromPoolLanes) {
  cbq::obs::enableTracing();
  constexpr int kLanes = 8;
  constexpr std::size_t kItems = 400;
  {
    cbq::util::ThreadPool pool(kLanes);
    pool.parallelFor(kItems, 1, [](std::size_t b, std::size_t e, int) {
      for (std::size_t i = b; i < e; ++i) {
        CBQ_OBS_SPAN("sweep", "work-item");
      }
    });
  }
  cbq::obs::disableTracing();

  std::ostringstream os;
  cbq::obs::writeChromeTrace(os);
  const std::string json = os.str();
  ASSERT_TRUE(JsonValidator(json).valid());

  std::size_t workSpans = 0;
  for (const auto& ev : extractEvents(json))
    if (ev.name == "work-item") ++workSpans;
  // The pool's chunk spans ride along; every work item must be present.
  EXPECT_EQ(workSpans, kItems);
  // Pool lanes self-label; their names must appear as thread metadata.
  EXPECT_NE(json.find("pool lane 1"), std::string::npos);
}

TEST_F(TracerTest, DisabledSpansDoNotAllocate) {
  ASSERT_FALSE(cbq::obs::tracingEnabled());
  const std::uint64_t before = g_allocs.load(std::memory_order_relaxed);
  for (int i = 0; i < 1000; ++i) {
    CBQ_OBS_SPAN("engine", "never-recorded");
  }
  const std::uint64_t after = g_allocs.load(std::memory_order_relaxed);
  EXPECT_EQ(after, before);
  EXPECT_EQ(cbq::obs::traceStats().events, 0u);
}

TEST_F(TracerTest, RingWrapDropsOldestAndCounts) {
  cbq::obs::enableTracing(/*perThreadCapacity=*/8);
  for (int i = 0; i < 20; ++i) {
    CBQ_OBS_SPAN("sat", std::string("span-") + std::to_string(i));
  }
  cbq::obs::disableTracing();

  const auto stats = cbq::obs::traceStats();
  EXPECT_EQ(stats.events, 8u);
  EXPECT_EQ(stats.dropped, 12u);

  std::ostringstream os;
  cbq::obs::writeChromeTrace(os);
  const std::string json = os.str();
  ASSERT_TRUE(JsonValidator(json).valid());
  const auto evs = extractEvents(json);
  ASSERT_EQ(evs.size(), 8u);
  // The survivors are the newest 8, oldest-first after ring rotation.
  EXPECT_EQ(evs.front().name, "span-12");
  EXPECT_EQ(evs.back().name, "span-19");
}

TEST_F(TracerTest, EscapesSpecialCharactersInNames) {
  cbq::obs::enableTracing();
  {
    CBQ_OBS_SPAN("sat", "quote\"back\\slash");
  }
  cbq::obs::disableTracing();
  std::ostringstream os;
  cbq::obs::writeChromeTrace(os);
  const std::string json = os.str();
  EXPECT_TRUE(JsonValidator(json).valid()) << json;
  EXPECT_NE(json.find("quote\\\"back\\\\slash"), std::string::npos);
}

TEST_F(TracerTest, LongNamesAreTruncatedNotCorrupted) {
  cbq::obs::enableTracing();
  {
    CBQ_OBS_SPAN("sat", std::string(200, 'x'));
  }
  cbq::obs::disableTracing();
  std::ostringstream os;
  cbq::obs::writeChromeTrace(os);
  const std::string json = os.str();
  ASSERT_TRUE(JsonValidator(json).valid());
  const auto evs = extractEvents(json);
  ASSERT_EQ(evs.size(), 1u);
  EXPECT_LT(evs[0].name.size(), 48u);
  EXPECT_EQ(evs[0].name.find_first_not_of('x'), std::string::npos);
}

// ---------------------------------------------------------------------
// Progress streaming

TEST(Progress, StreamerEmitsOneValidJsonLinePerEvent) {
  std::ostringstream os;
  cbq::obs::ProgressStreamer streamer(os);
  cbq::obs::ProgressEvent ev;
  ev.kind = "slice";
  ev.problem = "counter4_safe.aag";
  ev.engine = "cbq-reach";
  ev.bound = 7;
  ev.effort = 123.5;
  ev.effortDelta = 10.25;
  ev.seconds = 0.125;
  ev.advanced = true;
  streamer.emit(ev);
  ev.kind = "result";
  ev.verdict = "SAFE";
  streamer.emit(ev);

  std::istringstream lines(os.str());
  std::string line;
  int n = 0;
  while (std::getline(lines, line)) {
    ++n;
    EXPECT_TRUE(JsonValidator(line).valid()) << line;
  }
  EXPECT_EQ(n, 2);
  EXPECT_NE(os.str().find("\"kind\": \"slice\""), std::string::npos);
  EXPECT_NE(os.str().find("\"advanced\": true"), std::string::npos);
  EXPECT_NE(os.str().find("\"verdict\": \"SAFE\""), std::string::npos);
}

TEST(Progress, ConcurrentEmitKeepsLinesIntact) {
  std::ostringstream os;
  cbq::obs::ProgressStreamer streamer(os);
  constexpr int kThreads = 8;
  constexpr int kEvents = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&streamer, t] {
      cbq::obs::ProgressEvent ev;
      ev.kind = "slice";
      ev.engine = "engine-" + std::to_string(t);
      ev.seconds = 0.001;
      for (int i = 0; i < kEvents; ++i) streamer.emit(ev);
    });
  for (auto& t : threads) t.join();

  std::istringstream lines(os.str());
  std::string line;
  int n = 0;
  while (std::getline(lines, line)) {
    ++n;
    ASSERT_TRUE(JsonValidator(line).valid()) << line;
  }
  EXPECT_EQ(n, kThreads * kEvents);
}

// ---------------------------------------------------------------------
// Clock policy: every duration source must be monotonic. The aliases are
// also pinned by static_asserts in timer.hpp / budget.hpp; these tests
// keep the policy visible and catch a re-aliasing to system_clock.

TEST(ClockPolicy, TimerUsesSteadyClock) {
  static_assert(cbq::util::Timer::Clock::is_steady,
                "Timer must use a monotonic clock");
  static_assert(
      std::is_same_v<cbq::util::Timer::Clock, std::chrono::steady_clock>,
      "Timer clock regressed away from steady_clock");
  cbq::util::Timer t;
  const double a = t.seconds();
  const double b = t.seconds();
  EXPECT_GE(a, 0.0);
  EXPECT_GE(b, a);
}

TEST(ClockPolicy, BudgetUsesSteadyClock) {
  static_assert(cbq::portfolio::Budget::Clock::is_steady,
                "Budget deadlines must use a monotonic clock");
  const cbq::portfolio::Budget budget(3600.0);
  EXPECT_FALSE(budget.timedOut());
  EXPECT_FALSE(budget.exhausted());
}

}  // namespace

// Additional engine-level tests: the forward circuit engine's specifics,
// the multiplier (BDD-killer) family, engine option plumbing, and trace
// details that the parameterized suite does not pin down.

#include <gtest/gtest.h>

#include "bdd/bdd.hpp"
#include "circuits/families.hpp"
#include "circuits/suite.hpp"
#include "mc/engines.hpp"

namespace cbq {
namespace {

using mc::Verdict;

TEST(ForwardEngine, CountsForwardIterations) {
  // Forward reach on the buggy counter must walk 2^n - 1 images.
  const auto inst = circuits::makeInstance("counter", 3, false);
  mc::CircuitQuantForwardReach engine;
  const auto res = engine.check(inst.net);
  ASSERT_EQ(res.verdict, Verdict::Unsafe);
  EXPECT_EQ(res.steps, 7);
  ASSERT_TRUE(res.cex.has_value());
  EXPECT_EQ(res.cex->length(), 8u);
  EXPECT_TRUE(mc::replayHitsBad(inst.net, *res.cex));
}

TEST(ForwardEngine, SafeFixpointMatchesStateCount) {
  // The safe 3-bit counter visits 7 states; forward fixpoint at 7.
  const auto inst = circuits::makeInstance("counter", 3, true);
  mc::CircuitQuantForwardReach engine;
  const auto res = engine.check(inst.net);
  ASSERT_EQ(res.verdict, Verdict::Safe);
  EXPECT_EQ(res.steps, 7);
}

TEST(ForwardEngine, AgreesWithBddForwardOnDepths) {
  for (const char* family : {"ring", "traffic", "lfsr"}) {
    const auto inst = circuits::makeInstance(family, 4, true);
    mc::CircuitQuantForwardReach aigFwd;
    mc::BddForwardReach bddFwd;
    const auto a = aigFwd.check(inst.net);
    const auto b = bddFwd.check(inst.net);
    ASSERT_EQ(a.verdict, Verdict::Safe) << family;
    ASSERT_EQ(b.verdict, Verdict::Safe) << family;
    EXPECT_EQ(a.steps, b.steps) << family;
  }
}

TEST(ForwardEngine, IterationLimitGivesUnknown) {
  const auto inst = circuits::makeInstance("lfsr", 4, true);
  mc::CircuitQuantForwardOptions opts;
  opts.limits.maxIterations = 1;
  mc::CircuitQuantForwardReach engine(opts);
  EXPECT_EQ(engine.check(inst.net).verdict, Verdict::Unknown);
}

TEST(Multiplier, MiddleBitBddExplodesWhileAigStaysQuadratic) {
  // The §1 motivation measured directly: the bad cone of mult(k) has an
  // O(k^2) AIG but its BDD grows out of any polynomial budget.
  const auto small = circuits::makeMultiplier(6, false);
  const auto large = circuits::makeMultiplier(16, false);
  EXPECT_LT(large.aig.numAnds(), 2000u);  // quadratic circuit

  bdd::BddManager tiny(200'000);
  EXPECT_NO_THROW(bdd::aigToBdd(small.aig, small.bad, tiny));
  bdd::BddManager alsoTiny(200'000);
  EXPECT_THROW(bdd::aigToBdd(large.aig, large.bad, alsoTiny),
               bdd::NodeLimitExceeded);
}

TEST(Multiplier, CircuitEngineProvesWhereBddCannot) {
  const auto inst = circuits::makeInstance("mult", 14, true);
  mc::CircuitQuantReach cbqEngine;
  const auto a = cbqEngine.check(inst.net);
  EXPECT_EQ(a.verdict, Verdict::Safe);

  mc::BddReachOptions bddOpts;
  bddOpts.nodeLimit = 100'000;
  mc::BddBackwardReach bddEngine(bddOpts);
  const auto b = bddEngine.check(inst.net);
  EXPECT_EQ(b.verdict, Verdict::Unknown);
  EXPECT_GE(b.stats.count("bdd.node_limit_hits"), 1);
}

TEST(Multiplier, BuggyVariantDepthIsWidthMinusOne) {
  const auto inst = circuits::makeInstance("mult", 5, false);
  mc::Bmc bmc;
  const auto res = bmc.check(inst.net);
  ASSERT_EQ(res.verdict, Verdict::Unsafe);
  EXPECT_EQ(res.steps, 4);
  ASSERT_TRUE(res.cex.has_value());
  EXPECT_TRUE(mc::replayHitsBad(inst.net, *res.cex));
}

TEST(EngineOptions, QuantOptionsReachTheQuantifier) {
  // Disabling everything must not change verdicts, only sizes/work.
  const auto inst = circuits::makeInstance("evencount", 4, true);
  mc::CircuitQuantReachOptions bare;
  bare.quant.useSubstitution = false;
  bare.quant.mergePhase = false;
  bare.quant.optPhase = false;
  bare.quant.rewriteResult = false;
  mc::CircuitQuantReach engine(bare);
  const auto res = engine.check(inst.net);
  EXPECT_EQ(res.verdict, Verdict::Safe);
  EXPECT_EQ(res.stats.count("merge.sat_checks"), 0);
  EXPECT_EQ(res.stats.count("opt.sat_checks"), 0);
}

TEST(EngineOptions, TimeLimitProducesUnknownNotWrongAnswer) {
  const auto inst = circuits::makeInstance("evencount", 5, true);
  mc::CircuitQuantReachOptions opts;
  opts.limits.timeLimitSeconds = 1e-9;
  mc::CircuitQuantReach engine(opts);
  const auto res = engine.check(inst.net);
  // Either it finished instantly (possible on a fast box for iteration 0)
  // or it reports Unknown; it must never report Unsafe.
  EXPECT_NE(res.verdict, Verdict::Unsafe);
}

TEST(EngineStats, BackwardEngineExposesWorkCounters) {
  const auto inst = circuits::makeInstance("evencount", 4, true);
  mc::CircuitQuantReach engine;
  const auto res = engine.check(inst.net);
  ASSERT_EQ(res.verdict, Verdict::Safe);
  EXPECT_GT(res.stats.count("reach.fixpoint_checks"), 0);
  EXPECT_GT(res.stats.count("quant.vars_attempted"), 0);
  EXPECT_GT(res.stats.gauge("reach.max_reached_cone"), 0.0);
}

TEST(Hybrid, ResidualVariablesGoToEnumeration) {
  // With an impossible growth bound every input aborts, so the hybrid
  // engine must fall back to pure enumeration — and still be right.
  const auto inst = circuits::makeInstance("arbiter", 3, true);
  mc::HybridReachOptions opts;
  opts.quant.growthLimit = 0.0;
  opts.quant.growthSlack = 0;
  opts.quant.abortRetries = 0;
  mc::HybridReach engine(opts);
  const auto res = engine.check(inst.net);
  EXPECT_EQ(res.verdict, Verdict::Safe);
  EXPECT_GT(res.stats.count("allsat.enumerations"), 0);
  EXPECT_GT(res.stats.count("hybrid.residual_vars"), 0);
}

TEST(AllSat, EnumerationCountsAreBoundedByStateSpace) {
  const auto inst = circuits::makeInstance("ring", 4, true);
  mc::AllSatPreimageReach engine;
  const auto res = engine.check(inst.net);
  ASSERT_EQ(res.verdict, Verdict::Safe);
  // Each enumeration covers >= 1 state; the ring has 2^4 states total.
  EXPECT_LE(res.stats.count("allsat.enumerations"), 64);
}

}  // namespace
}  // namespace cbq

// Deep-invariant auditor: clean passes over healthy structures and one
// corruption-injection test per violation class, asserting the auditor
// reports the NAMED invariant (Report::has) with a nonempty diagnostic —
// not merely "something failed".

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "audit/audit.hpp"
#include "circuits/suite.hpp"
#include "cnf/aig_cnf.hpp"
#include "mc/network.hpp"
#include "sat/solver.hpp"
#include "sweep/signatures.hpp"
#include "sweep/union_find.hpp"
#include "util/random.hpp"

namespace cbq {
namespace {

using aig::Aig;
using aig::Lit;
using audit::Access;

/// A small manager with a few levels of AND structure.
Aig smallAig() {
  Aig g;
  const Lit a = g.pi(0), b = g.pi(1), c = g.pi(2);
  const Lit ab = g.mkAnd(a, b);
  const Lit out = g.mkOr(g.mkAnd(ab, c), g.mkXor(a, c));
  (void)out;
  return g;
}

/// A 2-latch network whose bad cone touches state and input variables.
mc::Network smallNet() {
  mc::NetworkBuilder nb("audit-test");
  const Lit l0 = nb.addLatch(false);
  const Lit l1 = nb.addLatch(true);
  const Lit in = nb.addInput();
  nb.setNext(0, nb.aig().mkXor(l0, in));
  nb.setNext(1, nb.aig().mkAnd(l1, !l0));
  nb.setBad(nb.aig().mkAnd(l0, l1));
  return nb.finish();
}

// ----- clean passes ---------------------------------------------------

TEST(Audit, CleanOverStandardSuite) {
  for (const auto& inst : circuits::standardSuite()) {
    const audit::Report r = audit::auditNetwork(inst.net);
    EXPECT_TRUE(r.ok()) << inst.net.name << ": " << r.summary();
  }
}

TEST(Audit, CleanAfterFunctionalOps) {
  Aig g = smallAig();
  const Lit f = g.mkAnd(g.pi(0), g.pi(1));
  (void)g.cofactor(f, 0, true);
  (void)g.compose(f, {{1, g.pi(2)}});
  Aig fresh;
  const Lit roots[] = {f};
  (void)fresh.transferFrom(g, roots);
  EXPECT_TRUE(audit::auditAig(g).ok()) << audit::auditAig(g).summary();
  EXPECT_TRUE(audit::auditAig(fresh).ok());
}

TEST(Audit, CleanCnfAfterEncoding) {
  Aig g = smallAig();
  sat::Solver solver;
  cnf::AigCnf cnf(g, solver);
  (void)cnf.litFor(g.mkAnd(g.pi(0), g.pi(2)));
  (void)cnf.litFor(!g.mkOr(g.pi(1), g.pi(2)));
  const audit::Report r = audit::auditCnf(cnf);
  EXPECT_TRUE(r.ok()) << r.summary();
}

// ----- violation class: stale strash entry ----------------------------

TEST(Audit, StaleStrashEntryCaught) {
  Aig g = smallAig();
  auto& slots = Access::strashSlots(Access::strash(g));
  bool corrupted = false;
  for (auto& e : slots) {
    if (e.id == 0) continue;
    e.key ^= 0x1;  // entry no longer matches its node's fanins
    corrupted = true;
    break;
  }
  ASSERT_TRUE(corrupted);
  const audit::Report r = audit::auditAig(g);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.has("aig.strash.stale-entry")) << r.summary();
  // The node behind the corrupted slot is also unreachable under its key.
  EXPECT_TRUE(r.has("aig.strash.missing-node")) << r.summary();
  EXPECT_FALSE(r.violations().front().detail.empty());
}

// ----- violation class: broken epoch stamp ----------------------------

TEST(Audit, EpochStampAheadCaught) {
  Aig g = smallAig();
  Access::stamps(g)[1] = Access::epoch(g) + 1;  // stamp from the future
  const audit::Report r = audit::auditAig(g);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.has("aig.epoch.stamp-ahead")) << r.summary();
}

// ----- violation class: structural node corruption --------------------

TEST(Audit, NodeLevelAndFaninOrderCaught) {
  Aig g = smallAig();
  auto& nodes = Access::nodes(g);
  // Find an AND node and break its level, then its fanin order.
  aig::NodeId target = 0;
  for (aig::NodeId n = 1; n < nodes.size(); ++n)
    if (g.isAnd(n)) {
      target = n;
      break;
    }
  ASSERT_NE(target, 0u);
  nodes[target].level += 7;
  EXPECT_TRUE(audit::auditAig(g).has("aig.node.level"));
  nodes[target].level -= 7;
  std::swap(nodes[target].fanin0, nodes[target].fanin1);
  EXPECT_TRUE(audit::auditAig(g).has("aig.node.fanin-order"));
}

// ----- violation class: non-canonical union-find root -----------------

TEST(Audit, UnionFindViolationsCaught) {
  {
    sweep::UnionFind uf(4);
    uf.unite(0, 2);
    uf.unite(1, 3);
    EXPECT_TRUE(audit::auditUnionFind(uf).ok());
    // Re-root {0, 2} at 2: a later member became the representative.
    Access::parents(uf)[0] = 2;
    Access::parents(uf)[2] = 2;
    const audit::Report r = audit::auditUnionFind(uf);
    ASSERT_FALSE(r.ok());
    EXPECT_TRUE(r.has("uf.non-canonical-root")) << r.summary();
  }
  {
    sweep::UnionFind uf(4);
    Access::parents(uf)[1] = 3;
    Access::parents(uf)[3] = 1;  // 1 -> 3 -> 1: never terminates
    EXPECT_TRUE(audit::auditUnionFind(uf).has("uf.cycle"));
  }
  {
    sweep::UnionFind uf(4);
    Access::parents(uf)[0] = 9;  // out of the element range
    EXPECT_TRUE(audit::auditUnionFind(uf).has("uf.parent.out-of-range"));
  }
}

// ----- violation class: dangling CNF literal --------------------------

TEST(Audit, DanglingCnfLiteralCaught) {
  Aig g = smallAig();
  sat::Solver solver;
  cnf::AigCnf cnf(g, solver);
  (void)cnf.litFor(g.mkAnd(g.pi(0), g.pi(1)));
  auto& vars = Access::nodeVars(const_cast<cnf::AigCnf&>(cnf));
  aig::NodeId mapped = 0;
  for (aig::NodeId n = 1; n < vars.size(); ++n)
    if (vars[n] != sat::kUndefVar) {
      mapped = n;
      break;
    }
  ASSERT_NE(mapped, 0u);
  const sat::Var orig = vars[mapped];
  vars[mapped] = solver.numVars() + 100;  // beyond the live solver vars
  EXPECT_TRUE(audit::auditCnf(cnf).has("cnf.litmap.dangling-var"));
  vars[mapped] = orig;

  // Two nodes sharing one solver variable.
  aig::NodeId second = 0;
  for (aig::NodeId n = mapped + 1; n < vars.size(); ++n)
    if (vars[n] != sat::kUndefVar) {
      second = n;
      break;
    }
  ASSERT_NE(second, 0u);
  const sat::Var origSecond = vars[second];
  vars[second] = orig;
  EXPECT_TRUE(audit::auditCnf(cnf).has("cnf.litmap.duplicate-var"));
  vars[second] = origSecond;

  // Un-mapping an encoded AND desynchronizes the encoded counter.
  aig::NodeId andNode = 0;
  for (aig::NodeId n = 1; n < vars.size(); ++n)
    if (vars[n] != sat::kUndefVar && g.isAnd(n)) {
      andNode = n;
      break;
    }
  ASSERT_NE(andNode, 0u);
  vars[andNode] = sat::kUndefVar;
  EXPECT_TRUE(audit::auditCnf(cnf).has("cnf.litmap.encoded-count"));
}

// ----- violation class: unbound latch ---------------------------------

TEST(Audit, UnboundLatchCaught) {
  mc::Network net = smallNet();
  ASSERT_TRUE(audit::auditNetwork(net).ok());
  net.next[0] =
      Lit(static_cast<aig::NodeId>(net.aig.numNodes()) + 3, false);
  const audit::Report r = audit::auditNetwork(net);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.has("net.latch.dangling-next")) << r.summary();
}

TEST(Audit, NetworkShapeAndSupportViolationsCaught) {
  {
    mc::Network net = smallNet();
    net.next.pop_back();  // latch with no next-state function
    EXPECT_TRUE(audit::auditNetwork(net).has("net.shape.next-size"));
  }
  {
    mc::Network net = smallNet();
    net.init.push_back(true);
    EXPECT_TRUE(audit::auditNetwork(net).has("net.shape.init-size"));
  }
  {
    mc::Network net = smallNet();
    net.inputVars.push_back(net.stateVars[0]);  // var in both roles
    EXPECT_TRUE(audit::auditNetwork(net).has("net.vars.duplicate"));
  }
  {
    mc::Network net = smallNet();
    net.bad = net.aig.pi(40);  // cone depends on an undeclared variable
    EXPECT_TRUE(audit::auditNetwork(net).has("net.support.undeclared-var"));
  }
}

// ----- violation class: signature slot corruption ---------------------

TEST(Audit, SignatureSlotViolationsCaught) {
  Aig g = smallAig();
  const Lit root = g.mkAnd(g.mkAnd(g.pi(0), g.pi(1)), g.pi(2));
  const Lit roots[] = {root};
  const auto order = g.coneAnds(roots);
  const auto support = g.supportVars(roots);
  util::Random rng(7);
  sweep::Signatures sigs(g, order, support, rng, 2, 4);
  ASSERT_TRUE(audit::auditSignatures(sigs).ok())
      << audit::auditSignatures(sigs).summary();

  auto& slotOf = Access::slotOf(sigs);
  const auto origSlot = slotOf[order[0]];
  slotOf[order[0]] = 100000;  // row far beyond the arena
  EXPECT_TRUE(audit::auditSignatures(sigs).has("sig.slot.out-of-range"));
  slotOf[order[0]] = origSlot;

  ASSERT_GE(order.size(), 2u);
  slotOf[order[1]] = slotOf[order[0]];  // two nodes aliasing one row
  EXPECT_TRUE(audit::auditSignatures(sigs).has("sig.slot.duplicate"));
}

// ----- machinery ------------------------------------------------------

TEST(Audit, SelftestSeedsEveryClassWithNamedInvariant) {
  const struct {
    const char* cls;
    const char* invariant;
  } expected[] = {
      {"strash", "aig.strash.stale-entry"},
      {"epoch", "aig.epoch.stamp-ahead"},
      {"latch", "net.latch.dangling-next"},
  };
  ASSERT_EQ(audit::selftestClasses().size(),
            sizeof(expected) / sizeof(expected[0]));
  for (const auto& [cls, invariant] : expected) {
    mc::Network net = smallNet();
    ASSERT_TRUE(audit::selftestCorrupt(net, cls)) << cls;
    const audit::Report r = audit::auditNetwork(net);
    ASSERT_FALSE(r.ok()) << cls;
    EXPECT_TRUE(r.has(invariant))
        << cls << " reported instead: " << r.summary();
  }
  mc::Network net = smallNet();
  EXPECT_FALSE(audit::selftestCorrupt(net, "no-such-class"));
  EXPECT_TRUE(audit::auditNetwork(net).ok());  // unknown class = untouched
}

TEST(Audit, RequireThrowsNamedAuditError) {
  audit::Report clean;
  EXPECT_NO_THROW(audit::require(std::move(clean), "test.site"));

  audit::Report bad;
  bad.add("test.invariant", "synthetic");
  try {
    audit::require(std::move(bad), "test.site");
    FAIL() << "require() did not throw";
  } catch (const audit::AuditError& e) {
    EXPECT_EQ(e.where(), "test.site");
    EXPECT_TRUE(e.report().has("test.invariant"));
    const std::string what = e.what();
    EXPECT_EQ(what.rfind("audit violation at test.site", 0), 0u) << what;
    // AuditError is a logic_error: violated invariants are program bugs.
    EXPECT_NE(dynamic_cast<const std::logic_error*>(&e), nullptr);
  }
}

TEST(Audit, ArmedFlagRoundTrip) {
  EXPECT_FALSE(audit::armed());  // default: disarmed
  audit::setArmed(true);
  EXPECT_TRUE(audit::armed());
  audit::setArmed(false);
  EXPECT_FALSE(audit::armed());
}

TEST(Audit, ReportSummaryCapsItems) {
  audit::Report r;
  for (int i = 0; i < 6; ++i)
    r.add("inv." + std::to_string(i), "detail");
  const std::string s = r.summary(4);
  EXPECT_NE(s.find("inv.0"), std::string::npos);
  EXPECT_NE(s.find("(+2 more)"), std::string::npos) << s;
}

}  // namespace
}  // namespace cbq

// Preprocessing pipeline tests: every pass (and the full pipeline) must
// preserve the verdict in both directions, and every Unsafe verdict found
// on a reduced model must lift to a trace that replays on the ORIGINAL
// network — across random models, the generated families, and the
// haystack family built specifically to exercise each pass.

#include <gtest/gtest.h>

#include <queue>

#include "circuits/suite.hpp"
#include "helpers.hpp"
#include "mc/engines.hpp"
#include "prep/pipeline.hpp"
#include "util/random.hpp"

namespace cbq {
namespace {

using aig::Lit;
using aig::VarId;
using mc::Network;
using mc::Verdict;

/// Random sequential network, same construction as test_random_models.
Network randomNetwork(util::Random& rng, int latches, int inputs) {
  mc::NetworkBuilder b("random");
  std::vector<Lit> state;
  for (int i = 0; i < latches; ++i) state.push_back(b.addLatch(rng.flip()));
  for (int i = 0; i < inputs; ++i) b.addInput();
  aig::Aig& g = b.aig();
  const int vars = latches + inputs;
  for (int i = 0; i < latches; ++i)
    b.setNext(static_cast<std::size_t>(i),
              test::randomFormula(g, rng, vars, 8));
  const Lit raw = test::randomFormula(g, rng, vars, 6);
  b.setBad(g.mkAnd(raw, state[rng.below(static_cast<std::uint64_t>(
                       latches))] ^ rng.flip()));
  return b.finish();
}

/// Explicit-state BFS ground truth (tiny models only).
Verdict explicitStateCheck(const Network& net) {
  const int latches = static_cast<int>(net.numLatches());
  const int inputs = static_cast<int>(net.numInputs());
  auto assignmentFor = [&](std::uint32_t s, std::uint32_t in) {
    std::unordered_map<VarId, bool> a;
    for (int i = 0; i < latches; ++i)
      a.emplace(net.stateVars[static_cast<std::size_t>(i)],
                ((s >> i) & 1) != 0);
    for (int i = 0; i < inputs; ++i)
      a.emplace(net.inputVars[static_cast<std::size_t>(i)],
                ((in >> i) & 1) != 0);
    return a;
  };
  std::uint32_t initState = 0;
  for (int i = 0; i < latches; ++i)
    if (net.init[static_cast<std::size_t>(i)]) initState |= 1u << i;
  std::vector<bool> seen(std::size_t{1} << latches, false);
  std::queue<std::uint32_t> queue;
  seen[initState] = true;
  queue.push(initState);
  while (!queue.empty()) {
    const std::uint32_t s = queue.front();
    queue.pop();
    for (std::uint32_t in = 0; in < (1u << inputs); ++in) {
      const auto a = assignmentFor(s, in);
      if (net.aig.evaluate(net.bad, a)) return Verdict::Unsafe;
      std::uint32_t t = 0;
      for (int i = 0; i < latches; ++i)
        if (net.aig.evaluate(net.next[static_cast<std::size_t>(i)], a))
          t |= 1u << i;
      if (!seen[t]) {
        seen[t] = true;
        queue.push(t);
      }
    }
  }
  return Verdict::Safe;
}

/// Runs one pass, checks verdict preservation against the explicit-state
/// referee, and — on Unsafe — that a trace found on the reduced model
/// lifts to a replayable trace on the original.
void checkPassSound(const char* passName, const Network& original,
                    const prep::PassResult& r) {
  SCOPED_TRACE(passName);
  // A no-op pass returns an empty net; the caller keeps its input.
  const Network& reduced = r.changed ? r.net : original;
  ASSERT_TRUE(reduced.wellFormed());
  const Verdict truth = explicitStateCheck(original);
  EXPECT_EQ(explicitStateCheck(reduced), truth);

  if (truth != Verdict::Unsafe) return;
  // bdd-bwd is complete on these tiny models and always builds traces.
  const auto res = mc::makeEngine("bdd-bwd")->check(reduced);
  ASSERT_EQ(res.verdict, Verdict::Unsafe);
  ASSERT_TRUE(res.cex.has_value());

  std::vector<std::shared_ptr<const prep::Transform>> stack;
  if (r.transform) stack.push_back(r.transform);
  const mc::Trace lifted = prep::TraceLifter(stack).lift(*res.cex);
  EXPECT_TRUE(mc::replayHitsBad(original, lifted));
}

class PrepRandom : public ::testing::TestWithParam<int> {};

TEST_P(PrepRandom, EveryPassPreservesVerdictAndLiftsTraces) {
  util::Random rng(static_cast<std::uint64_t>(GetParam()) * 9173 + 5);
  const int latches = 2 + static_cast<int>(rng.below(3));
  const int inputs = 1 + static_cast<int>(rng.below(2));
  const Network net = randomNetwork(rng, latches, inputs);

  checkPassSound("coi", net, prep::coiReduction(net));
  checkPassSound("const", net, prep::constLatchSweep(net));
  checkPassSound("sweep", net, prep::structuralSimplify(net));
  checkPassSound("latchcorr", net, prep::latchCorrespondence(net));
}

TEST_P(PrepRandom, FullPipelineAgreesWithEnginesOnOriginal) {
  util::Random rng(static_cast<std::uint64_t>(GetParam()) * 4391 + 17);
  const int latches = 2 + static_cast<int>(rng.below(3));
  const int inputs = 1 + static_cast<int>(rng.below(2));
  const Network net = randomNetwork(rng, latches, inputs);
  const Verdict truth = explicitStateCheck(net);

  const prep::PreparedProblem pp = prep::Pipeline().run(net);
  if (pp.decided.has_value()) {
    EXPECT_EQ(*pp.decided, truth);
    if (*pp.decided == Verdict::Unsafe) {
      ASSERT_TRUE(pp.decidedCex.has_value());
      EXPECT_TRUE(mc::replayHitsBad(net, *pp.decidedCex));
    }
    return;
  }

  for (const char* name : {"cbq-reach", "bdd-bwd", "bmc", "allsat-reach"}) {
    const auto res = prep::checkWithPrep(*mc::makeEngine(name), net);
    if (res.verdict == Verdict::Unknown) {
      EXPECT_EQ(truth, Verdict::Safe) << name;  // bounded give-up only
      continue;
    }
    EXPECT_EQ(res.verdict, truth) << name;
    if (res.verdict == Verdict::Unsafe) {
      // checkWithPrep already demotes on failed replay; an Unsafe result
      // therefore carries an original-network-replayable trace.
      ASSERT_TRUE(res.cex.has_value()) << name;
      EXPECT_TRUE(mc::replayHitsBad(net, *res.cex)) << name;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PrepRandom, ::testing::Range(0, 20));

TEST(PrepFamilies, UnsafeInstancesLiftThroughEveryPassAndThePipeline) {
  const struct {
    const char* family;
    int width;
  } specs[] = {{"counter", 3}, {"gray", 3},  {"ring", 4},
               {"queue", 3},   {"lfsr", 4},  {"haystack", 3}};
  for (const auto& spec : specs) {
    SCOPED_TRACE(spec.family);
    const auto inst = circuits::makeInstance(spec.family, spec.width, false);

    // Per-pass: reduced-model trace lifts to the original.
    for (const auto* pass : {"coi", "const", "sweep", "latchcorr"}) {
      SCOPED_TRACE(pass);
      prep::PassResult r;
      const std::string p = pass;
      if (p == "coi") {
        r = prep::coiReduction(inst.net);
      } else if (p == "const") {
        r = prep::constLatchSweep(inst.net);
      } else if (p == "sweep") {
        r = prep::structuralSimplify(inst.net);
      } else {
        r = prep::latchCorrespondence(inst.net);
      }
      const Network& reduced = r.changed ? r.net : inst.net;
      const auto res = mc::makeEngine("bdd-bwd")->check(reduced);
      ASSERT_EQ(res.verdict, Verdict::Unsafe);
      ASSERT_TRUE(res.cex.has_value());
      std::vector<std::shared_ptr<const prep::Transform>> stack;
      if (r.transform) stack.push_back(r.transform);
      EXPECT_TRUE(mc::replayHitsBad(
          inst.net, prep::TraceLifter(stack).lift(*res.cex)));
    }

    // Full pipeline through several engines.
    for (const char* name : {"cbq-reach", "bdd-bwd", "bmc"}) {
      const auto res = prep::checkWithPrep(*mc::makeEngine(name), inst.net);
      EXPECT_EQ(res.verdict, Verdict::Unsafe) << name;
      ASSERT_TRUE(res.cex.has_value()) << name;
      EXPECT_TRUE(mc::replayHitsBad(inst.net, *res.cex)) << name;
    }
  }
}

TEST(PrepFamilies, SafeInstancesStaySafeBehindThePipeline) {
  for (const auto* family : {"counter", "ring", "haystack"}) {
    const auto inst = circuits::makeInstance(family, 3, true);
    for (const char* name : {"cbq-reach", "bdd-bwd", "k-induction"}) {
      const auto res = prep::checkWithPrep(*mc::makeEngine(name), inst.net);
      EXPECT_EQ(res.verdict, Verdict::Safe) << family << "/" << name;
    }
  }
}

TEST(PrepHaystack, PipelineStripsTheHaystackDownToTheCore) {
  for (const bool safe : {true, false}) {
    const auto inst = circuits::makeInstance("haystack", 4, safe);
    ASSERT_EQ(inst.net.numLatches(), 22u);  // 5n + 2 at n = 4
    ASSERT_EQ(inst.net.numInputs(), 3u);

    const prep::PreparedProblem pp = prep::Pipeline().run(inst.net);
    EXPECT_FALSE(pp.decided.has_value());
    // Only the n-bit counter core and its enable survive.
    EXPECT_EQ(pp.reduced.numLatches(), 4u);
    EXPECT_EQ(pp.reduced.numInputs(), 1u);
    EXPECT_LT(pp.reduced.aig.numAnds(), inst.net.aig.numAnds() / 3);
  }
}

TEST(PrepHaystack, EachPassRemovesItsOwnClutter) {
  const auto inst = circuits::makeInstance("haystack", 4, true);

  // COI alone drops the disconnected scrambler (n latches + its input).
  const auto coi = prep::coiReduction(inst.net);
  ASSERT_TRUE(coi.changed);
  EXPECT_EQ(coi.net.numLatches(), 18u);
  EXPECT_EQ(coi.net.numInputs(), 2u);

  // Constant sweep alone removes both stuck-at latches.
  const auto cst = prep::constLatchSweep(inst.net);
  ASSERT_TRUE(cst.changed);
  EXPECT_EQ(cst.net.numLatches(), 20u);
  const auto* t =
      dynamic_cast<const prep::ConstLatchTransform*>(cst.transform.get());
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->droppedLatches().size(), 2u);

  // Latch correspondence alone merges the duplicated core register.
  const auto corr = prep::latchCorrespondence(inst.net);
  ASSERT_TRUE(corr.changed);
  EXPECT_EQ(corr.net.numLatches(), 18u);
  const auto* lt =
      dynamic_cast<const prep::LatchCorrTransform*>(corr.transform.get());
  ASSERT_NE(lt, nullptr);
  EXPECT_EQ(lt->merged().size(), 4u);
}

TEST(PrepDecided, ConstantFalseBadIsDecidedSafe) {
  mc::NetworkBuilder b("trivial-safe");
  const Lit s = b.addLatch(false);
  b.setNextOf(s, !s);
  b.setBad(aig::kFalse);
  const Network net = b.finish();

  const prep::PreparedProblem pp = prep::Pipeline().run(net);
  ASSERT_TRUE(pp.decided.has_value());
  EXPECT_EQ(*pp.decided, Verdict::Safe);
}

TEST(PrepDecided, InitialStateViolationIsDecidedUnsafeWithReplayableTrace) {
  mc::NetworkBuilder b("trivial-unsafe");
  const Lit s = b.addLatch(false);
  b.setNextOf(s, s);
  b.setBad(!s);  // init value 0 violates immediately
  const Network net = b.finish();

  const prep::PreparedProblem pp = prep::Pipeline().run(net);
  ASSERT_TRUE(pp.decided.has_value());
  EXPECT_EQ(*pp.decided, Verdict::Unsafe);
  ASSERT_TRUE(pp.decidedCex.has_value());
  EXPECT_GE(pp.decidedCex->length(), 1u);
  EXPECT_TRUE(mc::replayHitsBad(net, *pp.decidedCex));
}

TEST(PrepDecided, ConstSweepCollapsingBadIsDecidedSafe) {
  // bad = stuckZero & input: the guard latch never leaves 0, so the sweep
  // rewrites bad to constant false and the pipeline decides Safe.
  mc::NetworkBuilder b("guarded-safe");
  const Lit guard = b.addLatch(false);
  const Lit live = b.addLatch(false);
  const Lit in = b.addInput();
  b.setNextOf(guard, guard);
  b.setNextOf(live, !live);
  b.setBad(b.aig().mkAnd(guard, in));
  const Network net = b.finish();

  const prep::PreparedProblem pp = prep::Pipeline().run(net);
  ASSERT_TRUE(pp.decided.has_value());
  EXPECT_EQ(*pp.decided, Verdict::Safe);
}

TEST(PrepLifter, CompletesDroppedInputsAndPadsEmptyTraces) {
  std::vector<std::shared_ptr<const prep::Transform>> stack;
  stack.push_back(std::make_shared<prep::CoiTransform>(
      std::vector<VarId>{7, 9}));
  const prep::TraceLifter lifter(stack);

  mc::Trace t;
  t.inputs.push_back({{3, true}});
  t.inputs.push_back({{3, false}});
  const mc::Trace lifted = lifter.lift(t);
  ASSERT_EQ(lifted.length(), 2u);
  for (const auto& step : lifted.inputs) {
    EXPECT_TRUE(step.contains(7));
    EXPECT_FALSE(step.at(7));
    EXPECT_TRUE(step.contains(9));
    EXPECT_FALSE(step.at(9));
  }
  EXPECT_TRUE(lifted.inputs[0].at(3));

  // An empty (step-0) trace pads to one replayable step.
  EXPECT_EQ(lifter.lift(mc::Trace{}).length(), 1u);
}

TEST(PrepOptions, DisabledPipelineIsAnIdentity) {
  const auto inst = circuits::makeInstance("haystack", 3, true);
  prep::PrepOptions opts;
  opts.enabled = false;
  const prep::PreparedProblem pp = prep::Pipeline(opts).run(inst.net);
  EXPECT_TRUE(pp.identity);
  EXPECT_EQ(&pp.problem(inst.net), &inst.net);  // disabled: no copy
  EXPECT_TRUE(pp.passes.empty());
  EXPECT_TRUE(pp.stack.empty());
  EXPECT_FALSE(pp.decided.has_value());
}

TEST(PrepOptions, ZeroAndNetworkConvergesWithoutPhantomPasses) {
  // 1-latch toggle, bad = latch: every cone is 0 AND nodes. The sweep
  // pass must not report a phantom "shrink" (0 <= 0) round after round —
  // the pipeline converges with no pass recorded and no transforms.
  mc::NetworkBuilder b("toggle");
  const Lit s = b.addLatch(false);
  b.setNextOf(s, !s);
  b.setBad(s);
  const Network net = b.finish();

  const prep::PreparedProblem pp = prep::Pipeline().run(net);
  EXPECT_TRUE(pp.passes.empty());
  EXPECT_TRUE(pp.stack.empty());
  EXPECT_TRUE(pp.identity);
  EXPECT_EQ(&pp.problem(net), &net);  // identity: no copy was made
}

TEST(PrepOptions, ExhaustedBudgetShortCircuitsThePipeline) {
  // --timeout covers preprocessing too: an already-exhausted budget must
  // stop the pipeline before any pass runs (sound: identity result).
  const auto inst = circuits::makeInstance("haystack", 4, true);
  portfolio::CancelToken cancelled;
  cancelled.cancel();
  const portfolio::Budget spent(0.0, 0, &cancelled);
  const prep::PreparedProblem pp = prep::Pipeline().run(inst.net, spent);
  EXPECT_TRUE(pp.identity);
  EXPECT_TRUE(pp.passes.empty());
}

TEST(PrepOptions, IndividualKnobsDisableTheirPass) {
  const auto inst = circuits::makeInstance("haystack", 3, true);
  prep::PrepOptions opts;
  opts.latchCorr = false;
  const prep::PreparedProblem pp = prep::Pipeline(opts).run(inst.net);
  // Without latch correspondence the duplicated core register stays in
  // the bad cone (COI cannot drop it).
  EXPECT_EQ(pp.reduced.numLatches(), 6u);  // core + copy
  for (const auto& ps : pp.passes) EXPECT_NE(ps.pass, "latchcorr");
}

}  // namespace
}  // namespace cbq

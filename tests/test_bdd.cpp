// BDD package tests: operator correctness against truth tables,
// quantification vs Shannon expansion, composition, relational product,
// node limits and satisfying-assignment extraction.

#include <gtest/gtest.h>

#include "bdd/bdd.hpp"
#include "helpers.hpp"
#include "util/random.hpp"

namespace cbq {
namespace {

using bdd::BddManager;
using bdd::BddRef;
using bdd::kFalseBdd;
using bdd::kTrueBdd;

std::vector<bool> bddTruth(const BddManager& m, BddRef f, int numVars) {
  std::vector<bool> tt;
  for (std::uint64_t mask = 0; mask < (std::uint64_t{1} << numVars); ++mask) {
    std::unordered_map<aig::VarId, bool> a;
    for (int v = 0; v < numVars; ++v)
      a.emplace(static_cast<aig::VarId>(v), ((mask >> v) & 1) != 0);
    tt.push_back(m.evaluate(f, a));
  }
  return tt;
}

TEST(Bdd, TerminalBasics) {
  BddManager m;
  EXPECT_TRUE(m.isTerminal(kFalseBdd));
  EXPECT_TRUE(m.isTerminal(kTrueBdd));
  EXPECT_EQ(m.bddNot(kTrueBdd), kFalseBdd);
  EXPECT_EQ(m.bddNot(kFalseBdd), kTrueBdd);
  EXPECT_EQ(m.size(kTrueBdd), 0u);
}

TEST(Bdd, VarIsCanonical) {
  BddManager m;
  EXPECT_EQ(m.var(0), m.var(0));
  EXPECT_NE(m.var(0), m.var(1));
  EXPECT_EQ(m.size(m.var(0)), 1u);
}

TEST(Bdd, BasicOperatorTables) {
  BddManager m;
  const BddRef a = m.var(0);
  const BddRef b = m.var(1);
  EXPECT_EQ(bddTruth(m, m.bddAnd(a, b), 2),
            (std::vector<bool>{0, 0, 0, 1}));
  EXPECT_EQ(bddTruth(m, m.bddOr(a, b), 2), (std::vector<bool>{0, 1, 1, 1}));
  EXPECT_EQ(bddTruth(m, m.bddXor(a, b), 2), (std::vector<bool>{0, 1, 1, 0}));
  EXPECT_EQ(bddTruth(m, m.bddImplies(a, b), 2),
            (std::vector<bool>{1, 0, 1, 1}));
  EXPECT_EQ(bddTruth(m, m.bddNot(a), 2), (std::vector<bool>{1, 0, 1, 0}));
}

TEST(Bdd, IteIsCanonical) {
  BddManager m;
  const BddRef a = m.var(0);
  const BddRef b = m.var(1);
  // Same function built two ways must be the same node.
  EXPECT_EQ(m.bddOr(a, b), m.bddNot(m.bddAnd(m.bddNot(a), m.bddNot(b))));
  EXPECT_EQ(m.ite(a, b, kFalseBdd), m.bddAnd(a, b));
  EXPECT_EQ(m.ite(a, kTrueBdd, b), m.bddOr(a, b));
}

TEST(Bdd, CofactorPinsVariable) {
  BddManager m;
  const BddRef a = m.var(0);
  const BddRef b = m.var(1);
  const BddRef f = m.bddXor(a, b);
  EXPECT_EQ(m.cofactor(f, 0, false), b);
  EXPECT_EQ(m.cofactor(f, 0, true), m.bddNot(b));
  EXPECT_EQ(m.cofactor(f, 7, true), f);  // absent var: identity
}

TEST(Bdd, ExistsEqualsShannonDisjunction) {
  BddManager m;
  util::Random rng(99);
  // Random function over 5 vars built from random minterm set.
  BddRef f = kFalseBdd;
  for (int i = 0; i < 12; ++i) {
    BddRef cube = kTrueBdd;
    for (int v = 0; v < 5; ++v) {
      BddRef lit = m.var(static_cast<aig::VarId>(v));
      if (rng.flip()) lit = m.bddNot(lit);
      if (rng.chance(2, 3)) cube = m.bddAnd(cube, lit);
    }
    f = m.bddOr(f, cube);
  }
  for (aig::VarId v = 0; v < 5; ++v) {
    const aig::VarId vars[] = {v};
    const BddRef ex = m.exists(f, vars);
    const BddRef shannon =
        m.bddOr(m.cofactor(f, v, false), m.cofactor(f, v, true));
    EXPECT_EQ(ex, shannon);
  }
  // Quantifying everything yields a constant.
  const aig::VarId all[] = {0, 1, 2, 3, 4};
  const BddRef ex = m.exists(f, all);
  EXPECT_TRUE(ex == kFalseBdd || ex == kTrueBdd);
}

TEST(Bdd, ComposeSubstitutesFunction) {
  BddManager m;
  const BddRef a = m.var(0);
  const BddRef b = m.var(1);
  const BddRef c = m.var(2);
  const BddRef f = m.bddAnd(a, b);
  // b := b | c.
  const BddRef composed = m.compose(f, {{1, m.bddOr(b, c)}});
  EXPECT_EQ(composed, m.bddAnd(a, m.bddOr(b, c)));
}

TEST(Bdd, ComposeHandlesUpwardDependencies) {
  BddManager m;
  const BddRef a = m.var(0);  // level 0
  const BddRef b = m.var(1);  // level 1
  // Substitute the *lower* variable with a function of the higher one.
  const BddRef f = m.bddAnd(a, b);
  const BddRef composed = m.compose(f, {{1, m.bddNot(a)}});
  EXPECT_EQ(composed, kFalseBdd);  // a & !a
}

TEST(Bdd, AndExistsMatchesComposition) {
  BddManager m;
  util::Random rng(7);
  BddRef f = kFalseBdd;
  BddRef g = kFalseBdd;
  for (int i = 0; i < 10; ++i) {
    BddRef cubeF = kTrueBdd;
    BddRef cubeG = kTrueBdd;
    for (int v = 0; v < 6; ++v) {
      BddRef lit = m.var(static_cast<aig::VarId>(v));
      if (rng.flip()) lit = m.bddNot(lit);
      if (rng.flip()) cubeF = m.bddAnd(cubeF, lit);
      if (rng.flip()) cubeG = m.bddAnd(cubeG, lit);
    }
    f = m.bddOr(f, cubeF);
    g = m.bddOr(g, cubeG);
  }
  const aig::VarId vars[] = {1, 3, 4};
  EXPECT_EQ(m.andExists(f, g, vars), m.exists(m.bddAnd(f, g), vars));
}

TEST(Bdd, SatCountOnKnownFunctions) {
  BddManager m;
  const BddRef a = m.var(0);
  const BddRef b = m.var(1);
  const BddRef c = m.var(2);
  const BddRef f = m.bddOr(m.bddAnd(a, b), c);
  // Over 3 vars: |ab| = 2, |c| = 4, overlap |abc| = 1 -> 5 minterms.
  EXPECT_DOUBLE_EQ(m.satCount(f), 5.0);
  EXPECT_DOUBLE_EQ(m.satCount(kTrueBdd), 8.0);
  EXPECT_DOUBLE_EQ(m.satCount(kFalseBdd), 0.0);
}

TEST(Bdd, NodeLimitThrows) {
  BddManager m(8);  // tiny limit
  EXPECT_THROW(
      {
        BddRef f = kFalseBdd;
        for (int v = 0; v < 16; ++v) {
          BddRef cube = kTrueBdd;
          for (int u = 0; u < 8; ++u) {
            BddRef lit = m.var(static_cast<aig::VarId>(u));
            if (((v >> (u % 4)) & 1) != 0) lit = m.bddNot(lit);
            cube = m.bddAnd(cube, lit);
          }
          f = m.bddOr(f, cube);
        }
      },
      bdd::NodeLimitExceeded);
}

TEST(Bdd, AnySatFindsWitness) {
  BddManager m;
  const BddRef a = m.var(0);
  const BddRef b = m.var(1);
  const BddRef f = m.bddAnd(a, m.bddNot(b));
  const auto pick = m.anySat(f);
  std::unordered_map<aig::VarId, bool> full;
  for (aig::VarId v = 0; v < 2; ++v) {
    auto it = pick.find(v);
    full.emplace(v, it != pick.end() && it->second);
  }
  EXPECT_TRUE(m.evaluate(f, full));
  EXPECT_TRUE(m.anySat(kFalseBdd).empty());
}

// AIG -> BDD conversion cross-checked on random formulas.
class BddFromAig : public ::testing::TestWithParam<int> {};

TEST_P(BddFromAig, MatchesAigTruthTable) {
  util::Random rng(static_cast<std::uint64_t>(GetParam()) + 50);
  aig::Aig g;
  const aig::Lit f = test::randomFormula(g, rng, 6, 50);
  BddManager m;
  const BddRef fb = bdd::aigToBdd(g, f, m);
  EXPECT_EQ(bddTruth(m, fb, 6), test::truthTable(g, f, 6));
}

INSTANTIATE_TEST_SUITE_P(Seeds, BddFromAig, ::testing::Range(0, 10));

}  // namespace
}  // namespace cbq

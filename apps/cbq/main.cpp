// cbq — the portfolio model checker's command-line front end.
//
//   cbq check file.aag [--engine bmc | --engines cbq-reach,bmc] [--timeout 30]
//   cbq batch dir/ --jobs 8 --engines cbq-reach,bmc,k-induction --timeout 30
//   cbq gen counter --width 4 [--unsafe] [-o counter.aag]
//   cbq gen-suite dir/
//   cbq engines
//
// `check` races the engine portfolio on one circuit (a single --engine runs
// sequentially); `batch` fans a directory of circuits across worker
// threads, each problem checked by the portfolio, and writes JSON/CSV
// summaries. `gen` / `gen-suite` emit the built-in benchmark families as
// AIGER files so the tool is exercisable without external benchmark sets.
// Every verification path runs behind the preprocessing pipeline
// (src/prep) unless --prep=off; counterexamples are always lifted back to
// and replay-checked on the original circuit.
//
// `cbq check` exit-code contract (stable, scripting-safe):
//   0  = property proven (SAFE)
//   10 = counterexample found and replay-confirmed (UNSAFE)
//   20 = no definitive verdict (UNKNOWN — budget/limits hit, or a
//        counterexample failed the replay referee and was demoted)
//   1  = usage or input error (bad flags, unreadable/unparsable circuit)
// `batch` keeps 0 = error-free run, 1 = usage error or any problem file
// failed to load; `bench` returns 0 on verdict agreement, 2 on mismatch.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "audit/audit.hpp"
#include "circuits/io.hpp"
#include "circuits/suite.hpp"
#include "mc/engines.hpp"
#include "obs/memory.hpp"
#include "obs/progress.hpp"
#include "obs/tracer.hpp"
#include "portfolio/report.hpp"
#include "portfolio/runner.hpp"
#include "portfolio/scheduler.hpp"
#include "sat/backend.hpp"
#include "sweep/signatures.hpp"
#include "util/fault.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace {

namespace fs = std::filesystem;
using cbq::mc::Verdict;

struct Args {
  std::vector<std::string> positional;
  double timeout = 0.0;
  std::size_t nodeLimit = 0;
  int jobs = 0;
  int width = 4;
  int workers = 1;     // slice-mode worker threads
  int parThreads = 1;  // intra-problem lanes (prep + signature layer)
  bool unsafe = false;
  bool quiet = false;
  bool audit = false;          // --audit: arm invariant audits (exit 30)
  std::string auditSelftest;   // --audit-selftest: seed a known corruption
  bool smoke = false;
  bool progress = false;  // NDJSON progress events on stderr
  std::string engine;
  std::vector<std::string> engines;
  std::vector<std::string> inject;  // --inject fault specs (repeatable)
  std::uint64_t injectSeed = 0;
  double memLimitMb = 0.0;  // --mem-limit: soft RSS ceiling (MB)
  int retries = 0;          // --retries: batch retry budget
  std::vector<std::string> fallbackEngines;  // --fallback-engines
  int seeds = 50;           // --seeds: soak fault schedules
  std::string schedule;  // race | slice (bench also: seq)
  std::string satBackend = "cnf";  // cnf | circuit | race | auto
  std::string prepSpec;  // on | off | comma list of passes
  std::string output;  // -o
  std::string jsonPath;
  std::string csvPath;
  std::string tracePath;  // --trace: Chrome trace-event JSON
  std::string command;    // the full invocation, for report run headers
};

/// RunInfo for report provenance headers, from the parsed invocation.
cbq::portfolio::RunInfo makeRunInfo(const Args& args,
                                    const std::string& schedule) {
  auto info = cbq::portfolio::RunInfo::capture();
  info.command = args.command;
  info.jobs = args.jobs;
  info.parThreads = args.parThreads;
  info.schedule = schedule.empty() ? "race" : schedule;
  info.satBackend = args.satBackend;
  return info;
}

/// Flushes the span buffers to `path` as Chrome trace-event JSON.
bool writeTraceFile(const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cbq: cannot write %s\n", path.c_str());
    return false;
  }
  cbq::obs::writeChromeTrace(out);
  const auto ts = cbq::obs::traceStats();
  std::fprintf(stderr,
               "trace: %zu spans from %zu threads -> %s (open in "
               "chrome://tracing or ui.perfetto.dev)%s\n",
               ts.events, ts.threads, path.c_str(),
               ts.dropped > 0 ? " [ring buffer dropped events]" : "");
  return true;
}

/// Parses --prep: "on"/"" (all passes, default), "off", or a comma list
/// of pass names (coi,const,sweep,latchcorr) enabling only those.
bool parsePrep(const std::string& spec, cbq::prep::PrepOptions& prep) {
  if (spec.empty() || spec == "on") return true;
  if (spec == "off") {
    prep.enabled = false;
    return true;
  }
  prep.coi = prep.constLatch = prep.structural = prep.latchCorr = false;
  std::stringstream ss(spec);
  std::string pass;
  while (std::getline(ss, pass, ',')) {
    if (pass == "coi") {
      prep.coi = true;
    } else if (pass == "const") {
      prep.constLatch = true;
    } else if (pass == "sweep") {
      prep.structural = true;
    } else if (pass == "latchcorr") {
      prep.latchCorr = true;
    } else if (!pass.empty()) {
      std::fprintf(stderr,
                   "cbq: unknown prep pass '%s' "
                   "(on|off|coi,const,sweep,latchcorr)\n",
                   pass.c_str());
      return false;
    }
  }
  return true;
}

void printPrepSummary(const cbq::portfolio::PrepSummary& p) {
  if (!p.enabled) return;
  std::printf("prep: latches %zu -> %zu, inputs %zu -> %zu, ands %zu -> %zu "
              "(%.1fms%s)\n",
              p.latchesBefore, p.latchesAfter, p.inputsBefore, p.inputsAfter,
              p.andsBefore, p.andsAfter, p.seconds * 1e3,
              p.decided ? ", verdict decided by preprocessing" : "");
  for (const auto& ps : p.passes)
    std::printf("  %-9s latches %zu -> %zu, inputs %zu -> %zu, "
                "ands %zu -> %zu (%.1fms)\n",
                ps.pass.c_str(), ps.latchesBefore, ps.latchesAfter,
                ps.inputsBefore, ps.inputsAfter, ps.andsBefore, ps.andsAfter,
                ps.seconds * 1e3);
}

/// Parses --sat-backend (cnf|circuit|race|auto); reports bad names.
bool parseSatBackend(const std::string& s, cbq::sat::BackendKind& kind) {
  const auto parsed = cbq::sat::parseBackendKind(s);
  if (!parsed) {
    std::fprintf(stderr, "cbq: unknown sat backend '%s' (cnf|circuit|race|auto)\n",
                 s.c_str());
    return false;
  }
  kind = *parsed;
  return true;
}

/// Parses --schedule for check/batch; empty defaults to race.
bool parseSchedule(const std::string& s,
                   cbq::portfolio::ScheduleMode& mode) {
  if (s.empty() || s == "race") {
    mode = cbq::portfolio::ScheduleMode::Race;
    return true;
  }
  if (s == "slice") {
    mode = cbq::portfolio::ScheduleMode::Slice;
    return true;
  }
  std::fprintf(stderr, "cbq: unknown schedule '%s' (race|slice)\n",
               s.c_str());
  return false;
}

std::vector<std::string> splitCsv(const std::string& s) {
  std::vector<std::string> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ','))
    if (!item.empty()) out.push_back(item);
  return out;
}

/// Arms --inject fault specs (after seeding with --inject-seed). Returns
/// false on a malformed spec. No-op in -DCBQ_FAULTS=OFF builds, where the
/// flags are accepted but warn that injection is compiled out.
bool armInjections(const Args& args) {
  if (args.inject.empty()) return true;
#if defined(CBQ_NO_FAULTS)
  std::fprintf(stderr,
               "cbq: warning: built with CBQ_FAULTS=OFF, --inject ignored\n");
  return true;
#else
  auto& injector = cbq::util::FaultInjector::instance();
  injector.seed(args.injectSeed);
  for (const std::string& spec : args.inject) {
    std::string error;
    if (!injector.arm(spec, &error)) {
      std::fprintf(stderr, "cbq: bad --inject spec: %s\n", error.c_str());
      return false;
    }
  }
  return true;
#endif
}

/// Prints armed-site hit/fire counters (after a faulted run).
void printFaultStats() {
#if !defined(CBQ_NO_FAULTS)
  for (const auto& s : cbq::util::FaultInjector::instance().stats())
    std::fprintf(stderr, "fault: %s hits=%llu fires=%llu\n", s.site.c_str(),
                 static_cast<unsigned long long>(s.hits),
                 static_cast<unsigned long long>(s.fires));
#endif
}

bool parseArgs(int argc, char** argv, int first, Args& args) {
  for (int i = first; i < argc; ++i) {
    const std::string a = argv[i];
    auto value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "cbq: %s needs a value\n", flag);
        return nullptr;
      }
      return argv[++i];
    };
    if (a == "--timeout" || a == "-t") {
      const char* v = value("--timeout");
      if (!v) return false;
      args.timeout = std::atof(v);
    } else if (a == "--node-limit") {
      const char* v = value("--node-limit");
      if (!v) return false;
      args.nodeLimit = static_cast<std::size_t>(std::atoll(v));
    } else if (a == "--jobs" || a == "-j") {
      const char* v = value("--jobs");
      if (!v) return false;
      args.jobs = std::atoi(v);
    } else if (a == "--width" || a == "-w") {
      const char* v = value("--width");
      if (!v) return false;
      args.width = std::atoi(v);
    } else if (a == "--engine") {
      const char* v = value("--engine");
      if (!v) return false;
      args.engine = v;
    } else if (a == "--engines") {
      const char* v = value("--engines");
      if (!v) return false;
      args.engines = splitCsv(v);
    } else if (a == "--inject") {
      const char* v = value("--inject");
      if (!v) return false;
      args.inject.emplace_back(v);
    } else if (a == "--inject-seed") {
      const char* v = value("--inject-seed");
      if (!v) return false;
      args.injectSeed = static_cast<std::uint64_t>(std::strtoull(v, nullptr, 10));
    } else if (a == "--mem-limit") {
      const char* v = value("--mem-limit");
      if (!v) return false;
      args.memLimitMb = std::atof(v);
    } else if (a == "--retries") {
      const char* v = value("--retries");
      if (!v) return false;
      args.retries = std::atoi(v);
    } else if (a == "--fallback-engines") {
      const char* v = value("--fallback-engines");
      if (!v) return false;
      args.fallbackEngines = splitCsv(v);
    } else if (a == "--seeds") {
      const char* v = value("--seeds");
      if (!v) return false;
      args.seeds = std::atoi(v);
    } else if (a == "--schedule") {
      const char* v = value("--schedule");
      if (!v) return false;
      args.schedule = v;
    } else if (a == "--sat-backend") {
      const char* v = value("--sat-backend");
      if (!v) return false;
      args.satBackend = v;
    } else if (a == "--prep") {
      const char* v = value("--prep");
      if (!v) return false;
      args.prepSpec = v;
    } else if (a.rfind("--prep=", 0) == 0) {
      args.prepSpec = a.substr(7);
    } else if (a == "--workers") {
      const char* v = value("--workers");
      if (!v) return false;
      args.workers = std::atoi(v);
    } else if (a == "--par-threads") {
      const char* v = value("--par-threads");
      if (!v) return false;
      args.parThreads = std::atoi(v);
    } else if (a == "--output" || a == "-o") {
      const char* v = value("-o");
      if (!v) return false;
      args.output = v;
    } else if (a == "--json") {
      const char* v = value("--json");
      if (!v) return false;
      args.jsonPath = v;
    } else if (a == "--csv") {
      const char* v = value("--csv");
      if (!v) return false;
      args.csvPath = v;
    } else if (a == "--trace") {
      const char* v = value("--trace");
      if (!v) return false;
      args.tracePath = v;
    } else if (a == "--audit") {
      args.audit = true;
    } else if (a == "--audit-selftest") {
      const char* v = value("--audit-selftest");
      if (!v) return false;
      args.auditSelftest = v;
    } else if (a == "--progress") {
      args.progress = true;
    } else if (a == "--smoke") {
      args.smoke = true;
    } else if (a == "--unsafe") {
      args.unsafe = true;
    } else if (a == "--safe") {
      args.unsafe = false;
    } else if (a == "--quiet" || a == "-q") {
      args.quiet = true;
    } else if (!a.empty() && a[0] == '-') {
      std::fprintf(stderr, "cbq: unknown option %s\n", a.c_str());
      return false;
    } else {
      args.positional.push_back(a);
    }
  }
  return true;
}

int usage() {
  std::fputs(
      "usage:\n"
      "  cbq check <file> [--engine NAME | --engines A,B,C] [--timeout S]\n"
      "            [--node-limit N] [--schedule race|slice] [--workers N]\n"
      "            [--prep on|off|coi,const,sweep,latchcorr]\n"
      "            [--par-threads N] [--trace FILE] [--progress]\n"
      "      run the portfolio on one circuit (.aag/.aig/.bench);\n"
      "      --schedule race (default) races engines on threads,\n"
      "      --schedule slice round-robins persistent engine sessions on\n"
      "      --workers threads (default 1: single-core portfolio);\n"
      "      a single --engine runs that engine alone. The preprocessing\n"
      "      pipeline (--prep, default on) shrinks the problem before any\n"
      "      engine starts; counterexamples are lifted back and replayed\n"
      "      on the original circuit. --par-threads N parallelizes the\n"
      "      preprocessing + signature layer INSIDE one problem (results\n"
      "      are bit-identical at any N). --trace FILE records a Chrome\n"
      "      trace-event profile (chrome://tracing / Perfetto); --progress\n"
      "      streams NDJSON progress events on stderr.\n"
      "      --audit runs the deep-invariant auditor on the loaded circuit\n"
      "      and arms the phase-boundary audit hooks (active in\n"
      "      -DCBQ_AUDIT=ON builds; the explicit pre-run audit works in\n"
      "      every build). --audit-selftest CLASS (strash|epoch|latch)\n"
      "      seeds a known corruption first, to exercise the exit path.\n"
      "      exit codes: 0 SAFE, 10 UNSAFE, 20 UNKNOWN, 1 usage/IO error,\n"
      "      30 audit violation (only with --audit)\n"
      "  cbq batch <dir-or-files...> [--jobs N] [--engines A,B,C]\n"
      "            [--timeout S] [--node-limit N] [--schedule race|slice]\n"
      "            [--prep ...] [--par-threads N] [--json F] [--csv F]\n"
      "            [--quiet] [--trace FILE] [--progress]\n"
      "      verify every circuit file with a worker pool; --timeout is\n"
      "      the per-problem budget\n"
      "  cbq gen <family> [--width N] [--unsafe] [-o file.aag]\n"
      "      emit a built-in benchmark family instance as AIGER ascii\n"
      "      (or binary with -o file.aig); family `giant` scales to\n"
      "      millions of AND nodes (~16 ANDs per --width unit)\n"
      "  cbq gen-suite <dir>\n"
      "      emit the standard suite (all families, safe+unsafe) into dir\n"
      "  cbq engines\n"
      "      list engine names (* = default portfolio)\n"
      "  cbq soak [--seeds N] [--smoke] [--timeout S] [--schedule race|slice]\n"
      "           [--engines A,B,C] [-o FILE] [--quiet]\n"
      "      soundness-under-faults soak: N randomized fault schedules per\n"
      "      suite circuit (deterministic per seed). Faults may only\n"
      "      DEGRADE verdicts: a faulted run may answer UNKNOWN but never\n"
      "      flip a definitive answer against the ground truth, and the\n"
      "      process must never abort. --smoke shrinks the suite for CI.\n"
      "      exit codes: 0 sound, 3 verdict flip detected, 1 usage error\n"
      "  robustness flags (check/batch/soak):\n"
      "      --inject 'site[:K|:prob=P][:throw|fail|stall|oom|nonstd]"
      "[:stall=MS]'\n"
      "          arm a deterministic fault (repeatable); sites: bdd.alloc,\n"
      "          sat.solve, aig.grow, io.read_chunk, engine.resume,\n"
      "          prep.pass\n"
      "      --inject-seed S   seed for prob-mode faults (reproducible)\n"
      "      --mem-limit MB    soft per-problem RSS ceiling: engines bail\n"
      "                        to UNKNOWN instead of riding into the OOM\n"
      "                        killer\n"
      "      --retries N       batch: retry failure-driven UNKNOWNs with\n"
      "                        fresh sessions (default 0)\n"
      "      --fallback-engines A,B   batch: engine set for retry attempts\n"
      "  sat backend (check/batch/bench/soak):\n"
      "      --sat-backend cnf|circuit|race|auto\n"
      "          SAT engine for the sweep/quantification queries of the\n"
      "          SAT-flavoured reachability engines: the clause-level CNF\n"
      "          solver (default), the circuit-native CDCL solver that\n"
      "          propagates directly on the AIG, a per-query race of both,\n"
      "          or adaptive routing by observed per-query times\n"
      "  cbq bench [--engine NAME] [--timeout S] [--smoke] [-o FILE]\n"
      "            [--schedule seq|slice|race] [--prep ...]\n"
      "      run the generated family suite and write BENCH_reach.json:\n"
      "      per-circuit wall time, sweeper SAT calls, pair-cache hit\n"
      "      rate, solver effort. --schedule seq (default) runs one\n"
      "      engine sequentially (default cbq-reach); slice/race run the\n"
      "      engine portfolio time-sliced on one core / racing on\n"
      "      threads; --smoke restricts to a few tiny circuits for CI\n"
      "  cbq bench-par [--par-threads N] [--timeout S] [--smoke] [-o FILE]\n"
      "      intra-problem parallelism harness: times the signature\n"
      "      resimulation kernel (reference / SIMD / threaded) and the\n"
      "      end-to-end check at 1 vs N lanes on giant-family instances\n"
      "      (million-AND scale; --smoke shrinks them for CI) and writes\n"
      "      BENCH_par.json; exits 2 if the verdicts disagree\n",
      stderr);
  return 1;
}

void printEngineTable(const std::vector<cbq::portfolio::EngineRun>& runs) {
  std::printf("  %-14s %-8s %6s %9s %7s  %s\n", "engine", "verdict", "steps",
              "seconds", "slices", "");
  for (const auto& r : runs) {
    std::printf("  %-14s %-8s %6d %9.3f %7d  %s\n", r.engine.c_str(),
                cbq::mc::toString(r.verdict), r.steps, r.seconds, r.slices,
                r.winner      ? "<- winner"
                : r.cancelled ? "(cancelled)"
                              : "");
  }
}

int cmdEngines() {
  const auto defaults = cbq::portfolio::defaultPortfolio();
  for (const std::string& name : cbq::mc::engineNames()) {
    const bool inDefault =
        std::find(defaults.begin(), defaults.end(), name) != defaults.end();
    std::printf("%s%s\n", name.c_str(), inDefault ? " *" : "");
  }
  return 0;
}

int cmdCheck(const Args& args) {
  if (args.positional.size() != 1) return usage();
  cbq::mc::Network net;
  try {
    net = cbq::circuits::readCircuitFile(args.positional[0]);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "cbq: %s\n", e.what());
    return 1;
  }
  std::printf("%s: %zu latches, %zu inputs, %zu AND nodes\n",
              net.name.c_str(), net.numLatches(), net.numInputs(),
              net.aig.numAnds());

  // --audit: arm the phase-boundary hooks and audit the loaded circuit up
  // front; --audit-selftest seeds a known corruption first so scripts can
  // verify the dedicated exit code end to end.
  const bool auditing = args.audit || !args.auditSelftest.empty();
  if (!args.auditSelftest.empty()) {
    if (!cbq::audit::selftestCorrupt(net, args.auditSelftest)) {
      std::string known;
      for (const auto& c : cbq::audit::selftestClasses())
        known += (known.empty() ? "" : "|") + c;
      std::fprintf(stderr, "cbq: --audit-selftest %s failed (classes: %s)\n",
                   args.auditSelftest.c_str(), known.c_str());
      return 1;
    }
  }
  if (auditing) {
    cbq::audit::setArmed(true);
    if (const auto rep = cbq::audit::auditNetwork(net); !rep.ok()) {
      std::fprintf(stderr, "cbq: audit violation at load: %s\n",
                   rep.summary().c_str());
      return 30;
    }
  }

  cbq::portfolio::PortfolioOptions opts;
  if (!args.engine.empty()) {
    opts.engines = {args.engine};
  } else if (!args.engines.empty()) {
    opts.engines = args.engines;
  }
  opts.timeLimitSeconds = args.timeout;
  opts.nodeLimit = args.nodeLimit;
  opts.rssLimitBytes =
      static_cast<std::size_t>(args.memLimitMb * 1024.0 * 1024.0);
  if (!parseSchedule(args.schedule, opts.schedule)) return 1;
  if (!parseSatBackend(args.satBackend, opts.satBackend)) return 1;
  if (!parsePrep(args.prepSpec, opts.prep)) return 1;
  opts.sliceWorkers = args.workers;

  // One process-wide pool: the pool's one-region-at-a-time guard keeps
  // the intra-problem thread budget global even if engine-level threads
  // reach preprocessing code concurrently.
  std::unique_ptr<cbq::util::ThreadPool> pool;
  if (args.parThreads > 1) {
    pool = std::make_unique<cbq::util::ThreadPool>(args.parThreads);
    opts.prep.pool = pool.get();
    opts.parThreads = args.parThreads;
  }

  // --progress streams NDJSON events on stderr; the streamer must outlive
  // the run because engine threads call into it at slice boundaries.
  std::unique_ptr<cbq::obs::ProgressStreamer> streamer;
  if (args.progress) {
    streamer = std::make_unique<cbq::obs::ProgressStreamer>(std::cerr);
    opts.onProgress = streamer->fn();
  }
  if (!args.tracePath.empty()) cbq::obs::enableTracing();

  cbq::portfolio::PortfolioResult res;
  try {
    const cbq::portfolio::PortfolioRunner runner(opts);
    res = runner.run(net);
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "cbq: %s\n", e.what());
    return 1;
  } catch (const cbq::audit::AuditError& e) {
    // A hook fired on the caller thread (prep containment re-raises it
    // deliberately): the dedicated audit exit code, not a degradation.
    std::fprintf(stderr, "cbq: %s\n", e.what());
    return 30;
  } catch (const std::exception& e) {
    // Engine-layer failure that escaped every barrier: graceful
    // degradation means UNKNOWN (20), never a crash or a usage error.
    std::fprintf(stderr, "cbq: engine failure: %s\n", e.what());
    return 20;
  } catch (...) {
    std::fprintf(stderr, "cbq: engine failure: non-standard exception\n");
    return 20;
  }
  if (!args.tracePath.empty()) {
    cbq::obs::disableTracing();
    if (!writeTraceFile(args.tracePath)) return 1;
  }

  printPrepSummary(res.prep);
  printEngineTable(res.runs);
  {
    auto peakOf = [&](const char* gauge) {
      double peak = res.best.stats.gauge(gauge);
      for (const auto& r : res.runs)
        peak = std::max(peak, r.stats.gauge(gauge));
      return static_cast<std::uint64_t>(std::max(0.0, peak));
    };
    std::printf("mem: peak RSS %.1f MB, aig peak %llu nodes, "
                "bdd peak %llu nodes\n",
                static_cast<double>(cbq::obs::peakRssBytes()) /
                    (1024.0 * 1024.0),
                static_cast<unsigned long long>(
                    peakOf("mem.aig_peak_nodes")),
                static_cast<unsigned long long>(peakOf("bdd.peak_nodes")));
  }
  if (res.engineFailures > 0) {
    std::printf("containment: %d engine%s failed and %s quarantined%s\n",
                res.engineFailures, res.engineFailures == 1 ? "" : "s",
                res.engineFailures == 1 ? "was" : "were",
                res.allEnginesFailed ? " (ALL engines failed)" : "");
    for (const auto& r : res.runs)
      if (r.failed)
        std::printf("  %-14s %s\n", r.engine.c_str(), r.error.c_str());
  }
  if (res.memLimitHit)
    std::printf("containment: soft RSS ceiling hit; engines bailed out\n");
  if (auditing) {
    // Audit hooks firing inside engine threads are quarantined by the
    // containment barriers; surface them as the audit exit code instead
    // of letting the run pass for a mere engine failure.
    for (const auto& r : res.runs) {
      if (r.failed && r.error.rfind("audit violation", 0) == 0) {
        std::fprintf(stderr, "cbq: %s (engine %s)\n", r.error.c_str(),
                     r.engine.c_str());
        return 30;
      }
    }
  }
  if (!args.inject.empty()) printFaultStats();
  const auto* winner = res.winner();
  std::printf("verdict: %s (%s, %.3fs wall)\n",
              cbq::mc::toString(res.best.verdict),
              winner            ? winner->engine.c_str()
              : res.prep.decided ? "prep"
                                 : "no definitive engine",
              res.wallSeconds);

  if (res.best.verdict == Verdict::Unsafe && res.best.cex.has_value()) {
    // The runner already lifted the trace and refereed it on the
    // original network; this replay is the user-visible confirmation.
    const bool ok = cbq::mc::replayHitsBad(net, *res.best.cex);
    std::printf("counterexample: %zu steps, replay %s\n",
                res.best.cex->length(),
                ok ? "confirms the bug" : "FAILED");
    if (!ok) return 20;  // never report an unconfirmed bug as UNSAFE
  }
  // The documented contract: 0 SAFE, 10 UNSAFE, 20 UNKNOWN.
  switch (res.best.verdict) {
    case Verdict::Safe:
      return 0;
    case Verdict::Unsafe:
      return 10;
    case Verdict::Unknown:
      break;
  }
  return 20;
}

int cmdBatch(const Args& args) {
  if (args.positional.empty()) return usage();

  std::vector<std::string> files;
  try {
    files = cbq::portfolio::BatchScheduler::collectCircuitFiles(
        args.positional);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "cbq: %s\n", e.what());
    return 1;
  }
  if (files.empty()) {
    std::fprintf(stderr, "cbq: no circuit files (.aag/.aig/.bench) found\n");
    return 1;
  }

  cbq::portfolio::BatchOptions opts;
  opts.jobs = args.jobs;
  opts.retries = args.retries;
  opts.fallbackEngines = args.fallbackEngines;
  if (!args.engine.empty()) {
    opts.portfolio.engines = {args.engine};
  } else if (!args.engines.empty()) {
    opts.portfolio.engines = args.engines;
  }
  opts.portfolio.timeLimitSeconds = args.timeout;
  opts.portfolio.nodeLimit = args.nodeLimit;
  opts.portfolio.rssLimitBytes =
      static_cast<std::size_t>(args.memLimitMb * 1024.0 * 1024.0);
  if (!parseSchedule(args.schedule, opts.portfolio.schedule)) return 1;
  if (!parseSatBackend(args.satBackend, opts.portfolio.satBackend)) return 1;
  if (!parsePrep(args.prepSpec, opts.portfolio.prep)) return 1;
  opts.portfolio.sliceWorkers = args.workers;

  // Batch workers share ONE pool; its busy-guard serializes the parallel
  // regions, so --jobs and --par-threads never multiply thread counts.
  std::unique_ptr<cbq::util::ThreadPool> pool;
  if (args.parThreads > 1) {
    pool = std::make_unique<cbq::util::ThreadPool>(args.parThreads);
    opts.portfolio.prep.pool = pool.get();
    opts.portfolio.parThreads = args.parThreads;
  }

  std::unique_ptr<cbq::obs::ProgressStreamer> streamer;
  if (args.progress) {
    streamer = std::make_unique<cbq::obs::ProgressStreamer>(std::cerr);
    opts.portfolio.onProgress = streamer->fn();
  }
  if (!args.tracePath.empty()) cbq::obs::enableTracing();

  cbq::portfolio::BatchSummary summary;
  try {
    const cbq::portfolio::BatchScheduler scheduler(opts);
    const auto onResult =
        [&](const cbq::portfolio::BatchProblemResult& r) {
          if (args.quiet) return;
          if (!r.error.empty()) {
            std::printf("%-28s ERROR    %s\n", r.name.c_str(),
                        r.error.c_str());
          } else {
            std::string note;
            if (r.engineFailures > 0)
              note += " [" + std::to_string(r.engineFailures) +
                      " engine failure" +
                      (r.engineFailures == 1 ? "]" : "s]");
            if (r.retries > 0)
              note += " [retried x" + std::to_string(r.retries) + "]";
            if (r.memLimitHit) note += " [mem limit]";
            std::printf("%-28s %-8s %-14s %6d steps %9.3fs%s\n",
                        r.name.c_str(), cbq::mc::toString(r.verdict),
                        r.winnerEngine.empty() ? "-"
                                               : r.winnerEngine.c_str(),
                        r.steps, r.seconds, note.c_str());
          }
          std::fflush(stdout);
        };
    summary = scheduler.runFiles(files, onResult);
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "cbq: %s\n", e.what());
    return 1;
  }
  if (!args.tracePath.empty()) {
    cbq::obs::disableTracing();
    if (!writeTraceFile(args.tracePath)) return 1;
  }

  std::printf(
      "\n%zu problems: %d safe, %d unsafe, %d unknown, %d errors "
      "(%.3fs wall)\n",
      summary.problems.size(), summary.safe, summary.unsafe,
      summary.unknown, summary.errors, summary.wallSeconds);
  if (!args.inject.empty()) printFaultStats();

  const cbq::portfolio::RunInfo runInfo = makeRunInfo(args, args.schedule);
  auto writeReport = [](const std::string& path, const auto& writer,
                        const cbq::portfolio::BatchSummary& s) {
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "cbq: cannot write %s\n", path.c_str());
      return false;
    }
    writer(s, out);
    return true;
  };
  const auto jsonWriter = [&](const cbq::portfolio::BatchSummary& s,
                              std::ostream& out) {
    cbq::portfolio::writeJson(s, out, &runInfo);
  };
  if (!args.jsonPath.empty() &&
      !writeReport(args.jsonPath, jsonWriter, summary))
    return 1;
  if (!args.csvPath.empty() &&
      !writeReport(args.csvPath, cbq::portfolio::writeCsv, summary))
    return 1;

  return summary.errors == 0 ? 0 : 1;
}

int cmdGen(const Args& args) {
  if (args.positional.size() != 1) return usage();
  cbq::circuits::Instance inst;
  try {
    inst = cbq::circuits::makeInstance(args.positional[0], args.width,
                                       !args.unsafe);
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "cbq: %s\n", e.what());
    return 1;
  }
  if (args.output.empty()) {
    cbq::circuits::writeAag(inst.net, std::cout);
  } else {
    // Match the reader's extension dispatch: .aig gets binary AIGER so
    // the generated file round-trips through `cbq check`/`cbq batch`.
    const bool binary = args.output.size() >= 4 &&
                        args.output.compare(args.output.size() - 4, 4,
                                            ".aig") == 0;
    std::ofstream out(args.output,
                      binary ? std::ios::out | std::ios::binary
                             : std::ios::out);
    if (!out) {
      std::fprintf(stderr, "cbq: cannot write %s\n", args.output.c_str());
      return 1;
    }
    if (binary) {
      cbq::circuits::writeAigBinary(inst.net, out);
    } else {
      cbq::circuits::writeAag(inst.net, out);
    }
    std::fprintf(stderr, "wrote %s (%s, expected %s)\n",
                 args.output.c_str(), inst.net.name.c_str(),
                 cbq::mc::toString(inst.expected));
  }
  return 0;
}

int cmdGenSuite(const Args& args) {
  if (args.positional.size() != 1) return usage();
  const fs::path dir(args.positional[0]);
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    std::fprintf(stderr, "cbq: cannot create %s\n", dir.string().c_str());
    return 1;
  }
  int count = 0;
  for (const auto& inst : cbq::circuits::standardSuite()) {
    std::ostringstream name;
    name << inst.family;
    if (inst.width > 0) name << inst.width;
    name << (inst.expected == Verdict::Safe ? "_safe" : "_unsafe")
         << ".aag";
    std::ofstream out(dir / name.str());
    if (!out) {
      std::fprintf(stderr, "cbq: cannot write %s\n", name.str().c_str());
      return 1;
    }
    cbq::circuits::writeAag(inst.net, out);
    ++count;
  }
  std::printf("wrote %d circuits to %s\n", count, dir.string().c_str());
  return 0;
}

/// `cbq bench`: one engine, sequential, over the generated family suite —
/// the perf-trajectory harness. Writes a JSON report with per-circuit wall
/// time, sweeper SAT-call counts, pair-cache hit rate and solver effort,
/// so successive runs of the binary are comparable ("did the hot loop get
/// faster, and why").
int cmdBench(const Args& args) {
  const std::string engineName =
      args.engine.empty() ? "cbq-reach" : args.engine;
  const std::string schedule =
      args.schedule.empty() ? "seq" : args.schedule;
  const double timeout = args.timeout > 0.0 ? args.timeout : 60.0;
  const std::string outPath =
      args.output.empty() ? "BENCH_reach.json" : args.output;
  if (schedule != "seq" && schedule != "slice" && schedule != "race") {
    std::fprintf(stderr, "cbq: unknown schedule '%s' (seq|slice|race)\n",
                 schedule.c_str());
    return 1;
  }
  if (schedule == "seq" && !cbq::mc::makeEngine(engineName)) {
    std::fprintf(stderr, "cbq: unknown engine %s\n", engineName.c_str());
    return 1;
  }
  cbq::sat::BackendKind satKind = cbq::sat::BackendKind::Cnf;
  if (!parseSatBackend(args.satBackend, satKind)) return 1;
  cbq::prep::PrepOptions prepOpts;
  if (!parsePrep(args.prepSpec, prepOpts)) return 1;
  std::unique_ptr<cbq::util::ThreadPool> pool;
  if (args.parThreads > 1) {
    pool = std::make_unique<cbq::util::ThreadPool>(args.parThreads);
    prepOpts.pool = pool.get();
  }

  auto instances = cbq::circuits::standardSuite();
  if (args.smoke) {
    // CI mode: a few tiny circuits, just enough to exercise the pipeline.
    std::erase_if(instances, [](const cbq::circuits::Instance& inst) {
      return !(inst.width <= 3 &&
               (inst.family == "counter" || inst.family == "gray"));
    });
  } else {
    // Wider-width instances: the standard suite finishes in fractions of
    // a second, so the perf trajectory is carried by these.
    static constexpr struct {
      const char* family;
      int width;
    } kHard[] = {{"counter", 10}, {"counter", 12}, {"gray", 6},
                 {"gray", 7},     {"evencount", 6}, {"evencount", 7},
                 {"lfsr", 7},     {"lfsr", 8},      {"ring", 10},
                 {"arbiter", 6},  {"arbiter", 8},   {"queue", 4},
                 {"queue", 5},    {"mult", 6},      {"mult", 8},
                 {"haystack", 6}, {"haystack", 8}};
    for (const auto& spec : kHard) {
      for (const bool safe : {true, false}) {
        instances.push_back(
            cbq::circuits::makeInstance(spec.family, spec.width, safe));
      }
    }
  }

  struct Row {
    std::string name;
    std::string winner;  ///< solving engine (seq: the engine itself)
    const char* expected;
    const char* verdict;
    int steps = 0;
    double seconds = 0.0;
    std::int64_t sweepChecks = 0, dcChecks = 0;
    std::int64_t lookups = 0, hits = 0;
    std::int64_t conflicts = 0, propagations = 0;
    std::int64_t recycles = 0, remaps = 0, compactions = 0;
    std::int64_t cnfWins = 0, circuitWins = 0, raceWastedNs = 0;
    bool agree = true;
  };
  std::vector<Row> rows;
  double total = 0.0;
  int solved = 0;
  int mismatches = 0;

  for (const auto& inst : instances) {
    cbq::mc::CheckResult r;
    if (schedule == "seq") {
      // The sequential engine entry path: preprocess, check the reduced
      // problem, lift + referee any counterexample on the original.
      auto engine =
          cbq::mc::makeEngine(engineName, cbq::mc::EngineTuning{satKind});
      const cbq::portfolio::Budget budget(timeout);
      r = cbq::prep::checkWithPrep(*engine, inst.net, prepOpts, budget);
    } else {
      // Portfolio variant: --schedule slice is the single-core
      // time-sliced portfolio, --schedule race the thread-per-engine one.
      cbq::portfolio::PortfolioOptions popts;
      if (!args.engines.empty()) popts.engines = args.engines;
      popts.timeLimitSeconds = timeout;
      popts.schedule = schedule == "slice"
                           ? cbq::portfolio::ScheduleMode::Slice
                           : cbq::portfolio::ScheduleMode::Race;
      popts.sliceWorkers = args.workers;
      popts.satBackend = satKind;
      popts.prep = prepOpts;
      const cbq::portfolio::PortfolioRunner runner(popts);
      auto pr = runner.run(inst.net);
      r = std::move(pr.best);
    }

    Row row;
    std::ostringstream name;
    name << inst.family;
    if (inst.width > 0) name << inst.width;
    name << (inst.expected == Verdict::Safe ? "_safe" : "_unsafe");
    row.name = name.str();
    row.winner = r.engine;
    row.expected = cbq::mc::toString(inst.expected);
    row.verdict = cbq::mc::toString(r.verdict);
    row.steps = r.steps;
    row.seconds = r.seconds;
    row.sweepChecks = r.stats.count("merge.sat_checks");
    row.dcChecks = r.stats.count("opt.sat_checks");
    row.lookups = r.stats.count("sweep.cache_lookups");
    row.hits = r.stats.count("sweep.cache_hits_proven") +
               r.stats.count("sweep.cache_hits_refuted");
    row.conflicts = r.stats.count("sat.conflicts");
    row.propagations = r.stats.count("sat.propagations");
    row.recycles = r.stats.count("sweep.session_recycles");
    row.remaps = r.stats.count("sweep.cache_remaps");
    row.compactions = r.stats.count("reach.compactions");
    row.cnfWins = r.stats.count("sat.backend.cnf_wins");
    row.circuitWins = r.stats.count("sat.backend.circuit_wins");
    row.raceWastedNs = r.stats.count("sat.backend.race_wasted_ns");
    row.agree = r.verdict == Verdict::Unknown || r.verdict == inst.expected;
    total += r.seconds;
    if (r.verdict != Verdict::Unknown) ++solved;
    if (!row.agree) ++mismatches;
    if (!args.quiet) {
      std::printf("%-24s %-8s %8.3fs  sat=%lld dc=%lld cache=%lld/%lld\n",
                  row.name.c_str(), row.verdict, row.seconds,
                  static_cast<long long>(row.sweepChecks),
                  static_cast<long long>(row.dcChecks),
                  static_cast<long long>(row.hits),
                  static_cast<long long>(row.lookups));
      std::fflush(stdout);
    }
    rows.push_back(std::move(row));
  }

  std::ofstream out(outPath);
  if (!out) {
    std::fprintf(stderr, "cbq: cannot write %s\n", outPath.c_str());
    return 1;
  }
  const std::int64_t allLookups = [&] {
    std::int64_t s = 0;
    for (const Row& r : rows) s += r.lookups;
    return s;
  }();
  const std::int64_t allHits = [&] {
    std::int64_t s = 0;
    for (const Row& r : rows) s += r.hits;
    return s;
  }();
  out << "{\n";
  out << "  \"run\": ";
  makeRunInfo(args, schedule).writeJson(out);
  out << ",\n";
  out << "  \"engine\": \""
      << (schedule == "seq" ? engineName : "portfolio-" + schedule)
      << "\",\n";
  out << "  \"schedule\": \"" << schedule << "\",\n";
  out << "  \"sat_backend\": \"" << cbq::sat::backendName(satKind)
      << "\",\n";
  {
    std::int64_t cw = 0, xw = 0, wasted = 0;
    for (const Row& r : rows) {
      cw += r.cnfWins;
      xw += r.circuitWins;
      wasted += r.raceWastedNs;
    }
    out << "  \"sat_backend_cnf_wins\": " << cw << ",\n";
    out << "  \"sat_backend_circuit_wins\": " << xw << ",\n";
    out << "  \"sat_backend_race_wasted_ns\": " << wasted << ",\n";
  }
  out << "  \"prep\": " << (prepOpts.enabled ? "true" : "false") << ",\n";
  out << "  \"timeout_seconds\": " << timeout << ",\n";
  out << "  \"circuits\": " << rows.size() << ",\n";
  out << "  \"solved\": " << solved << ",\n";
  out << "  \"verdict_mismatches\": " << mismatches << ",\n";
  out << "  \"total_seconds\": " << total << ",\n";
  out << "  \"cache_hit_rate\": "
      << (allLookups > 0
              ? static_cast<double>(allHits) / static_cast<double>(allLookups)
              : 0.0)
      << ",\n";
  out << "  \"results\": [";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    out << (i == 0 ? "\n" : ",\n");
    out << "    {\"name\": \"" << r.name << "\", \"winner\": \""
        << r.winner << "\", \"expected\": \"" << r.expected
        << "\", \"verdict\": \"" << r.verdict
        << "\", \"steps\": " << r.steps << ", \"seconds\": " << r.seconds
        << ", \"sweeper_sat_checks\": " << r.sweepChecks
        << ", \"dc_sat_checks\": " << r.dcChecks
        << ", \"cache_lookups\": " << r.lookups
        << ", \"cache_hits\": " << r.hits
        << ", \"conflicts\": " << r.conflicts
        << ", \"propagations\": " << r.propagations
        << ", \"session_recycles\": " << r.recycles
        << ", \"cache_remaps\": " << r.remaps
        << ", \"compactions\": " << r.compactions
        << ", \"cnf_wins\": " << r.cnfWins
        << ", \"circuit_wins\": " << r.circuitWins
        << ", \"race_wasted_ns\": " << r.raceWastedNs << "}";
  }
  out << "\n  ]\n}\n";

  std::printf("%zu circuits, %d solved, %d mismatches, %.3fs total -> %s\n",
              rows.size(), solved, mismatches, total, outPath.c_str());
  return mismatches == 0 ? 0 : 2;
}

/// `cbq bench-par`: the intra-problem parallelism harness. Generates
/// giant-family instances (million-AND scale unless --smoke), times the
/// signature-resimulation kernel in its three shapes — column-major
/// reference, node-major SIMD-friendly serial, node-major + thread pool —
/// and the end-to-end check at --par-threads 1 vs N, then writes
/// BENCH_par.json. The verdicts at both thread counts must agree (exit 2
/// otherwise); host_threads in the report keeps numbers honest when the
/// machine has fewer cores than the requested lane count.
int cmdBenchPar(const Args& args) {
  const unsigned hw = std::thread::hardware_concurrency();
  const int threads = args.parThreads > 1
                          ? args.parThreads
                          : static_cast<int>(hw > 2 ? hw : 2);
  const double timeout = args.timeout > 0.0 ? args.timeout : 300.0;
  const std::string outPath =
      args.output.empty() ? "BENCH_par.json" : args.output;

  // The giant family costs ~16 ANDs per width unit (two mixing copies):
  // width 31250 ~ 0.5M ANDs, width 62500 ~ 1M ANDs.
  struct Spec {
    int width;
    bool safe;
  };
  std::vector<Spec> specs;
  if (args.smoke) {
    specs = {{200, true}, {200, false}};
  } else {
    specs = {{31250, true}, {31250, false}, {62500, true}};
  }

  auto bestOfMs = [](int reps, auto&& fn) {
    double best = 1e30;
    for (int rep = 0; rep < reps; ++rep) {
      cbq::util::Timer t;
      fn();
      best = std::min(best, t.seconds());
    }
    return best * 1e3;
  };

  struct Row {
    std::string name;
    std::size_t ands = 0, sigNodes = 0;
    double refMs = 0, simdMs = 0, parMs = 0;
    double serialSec = 0, parSec = 0;
    const char* expected;
    const char* v1;
    const char* vN;
    bool agree = true;
  };
  std::vector<Row> rows;
  int mismatches = 0;
  constexpr int kWords = 16;
  constexpr int kReps = 3;

  for (const Spec& spec : specs) {
    const auto inst =
        cbq::circuits::makeInstance("giant", spec.width, spec.safe);
    Row row;
    std::ostringstream name;
    name << "giant" << spec.width << (spec.safe ? "_safe" : "_unsafe");
    row.name = name.str();
    row.ands = inst.net.aig.numAnds();
    row.expected = cbq::mc::toString(inst.expected);

    // Signature kernel over the full root cone (next functions + bad) —
    // the same cone the sweeper refines.
    std::vector<cbq::aig::Lit> roots = inst.net.next;
    roots.push_back(inst.net.bad);
    const auto order = inst.net.aig.coneAnds(roots);
    const auto support = inst.net.aig.supportVars(roots);
    row.sigNodes = order.size();
    {
      cbq::util::Random rng(1);
      cbq::sweep::Signatures sigs(inst.net.aig, order, support, rng,
                                  kWords, kWords);
      row.refMs = bestOfMs(kReps, [&] { sigs.resimulateAllReference(); });
      row.simdMs = bestOfMs(kReps, [&] { sigs.resimulateAll(); });
    }
    {
      cbq::util::ThreadPool pool(threads);
      cbq::util::Random rng(1);
      cbq::sweep::Signatures sigs(inst.net.aig, order, support, rng,
                                  kWords, kWords, &pool);
      row.parMs = bestOfMs(kReps, [&] { sigs.resimulateAll(); });
    }

    // End-to-end: the same single-engine check at 1 lane and N lanes.
    auto runCheck = [&](int lanes, double& seconds) {
      cbq::portfolio::PortfolioOptions popts;
      popts.engines = {"cbq-reach"};
      popts.timeLimitSeconds = timeout;
      popts.parThreads = lanes;
      const cbq::portfolio::PortfolioRunner runner(popts);
      cbq::util::Timer t;
      const auto pr = runner.run(inst.net);
      seconds = t.seconds();
      return pr.best.verdict;
    };
    const Verdict v1 = runCheck(1, row.serialSec);
    const Verdict vN = runCheck(threads, row.parSec);
    row.v1 = cbq::mc::toString(v1);
    row.vN = cbq::mc::toString(vN);
    row.agree = v1 == vN &&
                (v1 == Verdict::Unknown || v1 == inst.expected);
    if (!row.agree) ++mismatches;
    if (!args.quiet) {
      std::printf("%-20s %8zu ands  resim ref %.1fms simd %.1fms "
                  "par(%d) %.1fms  check 1t %.2fs %dt %.2fs  %s/%s%s\n",
                  row.name.c_str(), row.ands, row.refMs, row.simdMs,
                  threads, row.parMs, row.serialSec, threads, row.parSec,
                  row.v1, row.vN, row.agree ? "" : "  MISMATCH");
      std::fflush(stdout);
    }
    rows.push_back(std::move(row));
  }

  std::ofstream out(outPath);
  if (!out) {
    std::fprintf(stderr, "cbq: cannot write %s\n", outPath.c_str());
    return 1;
  }
  out << "{\n";
  out << "  \"run\": ";
  makeRunInfo(args, "par").writeJson(out);
  out << ",\n";
  out << "  \"host_threads\": " << hw << ",\n";
  out << "  \"par_threads\": " << threads << ",\n";
  out << "  \"sig_words\": " << kWords << ",\n";
  out << "  \"smoke\": " << (args.smoke ? "true" : "false") << ",\n";
  out << "  \"verdict_mismatches\": " << mismatches << ",\n";
  out << "  \"results\": [";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    out << (i == 0 ? "\n" : ",\n");
    out << "    {\"name\": \"" << r.name << "\", \"ands\": " << r.ands
        << ", \"sig_nodes\": " << r.sigNodes
        << ", \"resim_reference_ms\": " << r.refMs
        << ", \"resim_simd_ms\": " << r.simdMs
        << ", \"resim_threaded_ms\": " << r.parMs
        << ", \"check_1thread_seconds\": " << r.serialSec
        << ", \"check_par_seconds\": " << r.parSec
        << ", \"expected\": \"" << r.expected << "\", \"verdict_1thread\": \""
        << r.v1 << "\", \"verdict_par\": \"" << r.vN
        << "\", \"agree\": " << (r.agree ? "true" : "false") << "}";
  }
  out << "\n  ]\n}\n";

  std::printf("%zu instances, %d mismatches -> %s\n", rows.size(),
              mismatches, outPath.c_str());
  return mismatches == 0 ? 0 : 2;
}

/// `cbq soak`: the soundness-under-faults harness. For each of --seeds
/// deterministic seeds, arms a randomized fault schedule (1-2 sites, a
/// random mode and trigger) and runs the portfolio over the suite. The
/// invariant under test: faults may only DEGRADE a verdict — a faulted
/// run may answer Unknown, but a definitive answer must match the
/// instance's ground truth (Unsafe additionally passed the replay referee
/// inside the runner), and the process must never abort. Exit 0 when
/// sound, 3 on any verdict flip.
int cmdSoak(const Args& args) {
#if defined(CBQ_NO_FAULTS)
  std::fprintf(stderr,
               "cbq: soak needs fault injection; rebuild with CBQ_FAULTS=ON\n");
  return 1;
#else
  const int seeds = args.seeds > 0 ? args.seeds : 50;
  const double timeout = args.timeout > 0.0 ? args.timeout : 10.0;
  cbq::portfolio::ScheduleMode mode;
  if (!parseSchedule(args.schedule, mode)) return 1;

  // The suite: built-in instances with known ground-truth verdicts. The
  // smoke subset keeps CI fast while still covering safe+unsafe and both
  // SAT- and BDD-leaning families.
  auto instances = cbq::circuits::standardSuite();
  if (args.smoke) {
    std::erase_if(instances, [](const cbq::circuits::Instance& inst) {
      return inst.width > 3 ||
             !(inst.family == "counter" || inst.family == "gray" ||
               inst.family == "ring" || inst.family == "arbiter");
    });
  }
  if (instances.empty()) {
    std::fprintf(stderr, "cbq: soak suite is empty\n");
    return 1;
  }

  const auto& sites = cbq::util::FaultInjector::knownSites();
  static constexpr const char* kModes[] = {"throw", "fail", "stall", "oom",
                                           "nonstd"};

  // splitmix64: the schedule for seed s is a pure function of s, so a
  // failing seed replays exactly with --seeds 1 after editing, or via the
  // printed --inject specs.
  auto split = [](std::uint64_t& st) {
    st += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = st;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  };

  auto& injector = cbq::util::FaultInjector::instance();
  struct Flip {
    int seed;
    std::string name;
    std::string expected, got;
    std::string schedule;
  };
  std::vector<Flip> flips;
  long long runs = 0, degraded = 0, definitive = 0;
  unsigned long long firesTotal = 0;
  cbq::util::Timer wall;

  for (int seed = 0; seed < seeds; ++seed) {
    // Build this seed's schedule: 1-2 armed sites, random mode, random
    // trigger (fixed nth or per-hit probability), short stalls.
    std::uint64_t st = 0x5eedull + static_cast<std::uint64_t>(seed);
    const int nFaults = 1 + static_cast<int>(split(st) % 2);
    std::string scheduleDesc;
    injector.disarm();
    injector.seed(static_cast<std::uint64_t>(seed));
    for (int k = 0; k < nFaults; ++k) {
      std::string spec = sites[split(st) % sites.size()];
      spec += ":";
      spec += kModes[split(st) % (sizeof(kModes) / sizeof(kModes[0]))];
      if (split(st) % 2 == 0) {
        spec += ":" + std::to_string(1 + split(st) % 20);
      } else {
        spec += ":prob=0." + std::to_string(1 + split(st) % 4);  // .1-.4
      }
      spec += ":stall=25";
      std::string error;
      if (!injector.arm(spec, &error)) {
        std::fprintf(stderr, "cbq: internal soak spec error: %s\n",
                     error.c_str());
        return 1;
      }
      if (!scheduleDesc.empty()) scheduleDesc += " ";
      scheduleDesc += spec;
    }

    for (const auto& inst : instances) {
      cbq::portfolio::PortfolioOptions popts;
      if (!args.engines.empty()) popts.engines = args.engines;
      popts.timeLimitSeconds = timeout;
      popts.schedule = mode;
      popts.sliceWorkers = args.workers;
      if (!parseSatBackend(args.satBackend, popts.satBackend)) return 1;
      Verdict got = Verdict::Unknown;
      try {
        const cbq::portfolio::PortfolioRunner runner(popts);
        got = runner.run(inst.net).best.verdict;
      } catch (...) {
        // Contained at the harness level: still only a degradation.
        got = Verdict::Unknown;
      }
      ++runs;
      if (got == Verdict::Unknown) {
        ++degraded;
      } else {
        ++definitive;
        if (got != inst.expected) {
          std::ostringstream name;
          name << inst.family;
          if (inst.width > 0) name << inst.width;
          name << (inst.expected == Verdict::Safe ? "_safe" : "_unsafe");
          flips.push_back({seed, name.str(),
                           cbq::mc::toString(inst.expected),
                           cbq::mc::toString(got), scheduleDesc});
        }
      }
    }
    firesTotal += injector.fireCount();
    if (!args.quiet && (seed + 1) % 10 == 0) {
      std::printf("soak: %d/%d seeds, %lld runs, %lld degraded, "
                  "%zu flips, %llu faults fired\n",
                  seed + 1, seeds, runs, degraded, flips.size(), firesTotal);
      std::fflush(stdout);
    }
  }
  injector.disarm();

  for (const Flip& f : flips)
    std::printf("FLIP: seed %d %s expected %s got %s under [%s]\n", f.seed,
                f.name.c_str(), f.expected.c_str(), f.got.c_str(),
                f.schedule.c_str());
  std::printf("soak: %d seeds x %zu circuits = %lld runs, "
              "%lld definitive, %lld degraded to UNKNOWN, %llu faults "
              "fired, %zu verdict flips (%.1fs)\n",
              seeds, instances.size(), runs, definitive, degraded,
              firesTotal, flips.size(), wall.seconds());

  if (!args.output.empty()) {
    std::ofstream out(args.output);
    if (!out) {
      std::fprintf(stderr, "cbq: cannot write %s\n", args.output.c_str());
      return 1;
    }
    out << "{\n  \"run\": ";
    makeRunInfo(args, args.schedule).writeJson(out);
    out << ",\n";
    out << "  \"seeds\": " << seeds << ",\n";
    out << "  \"circuits\": " << instances.size() << ",\n";
    out << "  \"runs\": " << runs << ",\n";
    out << "  \"definitive\": " << definitive << ",\n";
    out << "  \"degraded_to_unknown\": " << degraded << ",\n";
    out << "  \"faults_fired\": " << firesTotal << ",\n";
    out << "  \"verdict_flips\": " << flips.size() << ",\n";
    out << "  \"wall_seconds\": " << wall.seconds() << "\n}\n";
  }
  return flips.empty() ? 0 : 3;
#endif
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  Args args;
  for (int i = 0; i < argc; ++i) {
    if (i > 0) args.command += ' ';
    args.command += argv[i];
  }
  if (!parseArgs(argc, argv, 2, args)) return 1;
  if (!armInjections(args)) return 1;

  if (cmd == "engines") return cmdEngines();
  if (cmd == "soak") return cmdSoak(args);
  if (cmd == "bench") return cmdBench(args);
  if (cmd == "bench-par") return cmdBenchPar(args);
  if (cmd == "check") return cmdCheck(args);
  if (cmd == "batch") return cmdBatch(args);
  if (cmd == "gen") return cmdGen(args);
  if (cmd == "gen-suite") return cmdGenSuite(args);
  return usage();
}

// Engine portfolio comparison on the round-robin arbiter.
//
//   $ ./arbiter_comparison [clients]
//
// The arbiter's mutual-exclusion property needs the one-hot token
// invariant — a classic case where bounded methods alone cannot conclude
// and fixpoint engines shine. This example runs the full portfolio
// (the paper's engine, both BDD baselines, BMC, k-induction, all-SAT
// pre-image, and the §4 hybrid) on the safe arbiter and on a buggy
// variant whose client 0 bypasses the token.

#include <cstdio>
#include <cstdlib>

#include "circuits/families.hpp"
#include "mc/engines.hpp"

int main(int argc, char** argv) {
  const int clients = argc > 1 ? std::atoi(argv[1]) : 4;
  if (clients < 2 || clients > 12) {
    std::fprintf(stderr, "usage: %s [clients 2..12]\n", argv[0]);
    return 1;
  }

  for (const bool safe : {true, false}) {
    const auto net = cbq::circuits::makeArbiter(clients, safe);
    std::printf("== %s (%zu latches, %zu inputs) ==\n", net.name.c_str(),
                net.numLatches(), net.numInputs());
    std::printf("%-14s %-9s %-6s %-9s %s\n", "engine", "verdict", "steps",
                "time[s]", "counterexample");
    for (auto& engine : cbq::mc::makeAllEngines()) {
      const auto res = engine->check(net);
      const char* cex = "-";
      if (res.cex) {
        cex = cbq::mc::replayHitsBad(net, *res.cex) ? "replays ok"
                                                    : "REPLAY FAILS";
      }
      std::printf("%-14s %-9s %-6d %-9.3f %s\n", res.engine.c_str(),
                  cbq::mc::toString(res.verdict), res.steps, res.seconds,
                  cex);
    }
    std::printf("\n");
  }

  std::printf(
      "note: BMC reports UNKNOWN on the safe instance — it is a bounded\n"
      "method; the unbounded engines prove safety via a pre-image "
      "fixpoint.\n");
  return 0;
}

// Quickstart: build a formula as an AIG, existentially quantify variables
// with the circuit-based pipeline, and inspect what each phase achieved.
//
//   $ ./quickstart
//
// This is the 60-second tour of the library's core API: aig::Aig for
// formula construction, quant::Quantifier for ∃-elimination, and the
// statistics that expose the merge/optimization phases of the paper.

#include <cstdio>

#include "aig/aig.hpp"
#include "quant/quantifier.hpp"

int main() {
  using namespace cbq;

  // --- 1. build a formula --------------------------------------------------
  // f(x, a, b, c) = (x & (a ^ b)) | (!x & (a ^ c)) — a mux on x.
  aig::Aig g;
  const aig::Lit x = g.pi(0);
  const aig::Lit a = g.pi(1);
  const aig::Lit b = g.pi(2);
  const aig::Lit c = g.pi(3);
  const aig::Lit f = g.mkMux(x, g.mkXor(a, b), g.mkXor(a, c));
  std::printf("f has %zu AND nodes over %zu variables\n", g.coneSize(f),
              g.supportVars(f).size());

  // --- 2. quantify one variable --------------------------------------------
  // ∃x.f = (a^b) | (a^c). The quantifier computes the two cofactors,
  // merges shared sub-circuits (§2.1 of the paper) and simplifies each
  // cofactor under the other's don't-cares (§2.2).
  quant::Quantifier q(g);
  const aig::Lit exF = q.quantifyVarForced(f, 0);
  std::printf("after exists(x): %zu AND nodes, support:", g.coneSize(exF));
  for (const aig::VarId v : g.supportVars(exF)) std::printf(" %u", v);
  std::printf("\n");

  // --- 3. quantify everything ----------------------------------------------
  // ∃x,a,b,c . f is TRUE iff f is satisfiable.
  const aig::VarId all[] = {0, 1, 2, 3};
  const auto result = q.quantifyAll(f, all);
  std::printf("exists(all vars): %s (%zu residual vars)\n",
              result.f.isTrue() ? "true — f is satisfiable"
                                : "false — f is unsatisfiable",
              result.residual.size());

  // --- 4. what did the engine do? -------------------------------------------
  std::printf("\npipeline statistics:\n");
  for (const auto& [key, value] : q.stats().counters())
    std::printf("  %-28s %lld\n", key.c_str(),
                static_cast<long long>(value));
  return 0;
}

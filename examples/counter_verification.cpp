// Verifying a hardware counter with the paper's engine.
//
//   $ ./counter_verification [width]
//
// Builds the safe counter (the all-ones value is skipped by the wrap
// logic) and its buggy twin (plain wrap-around), runs the circuit-based
// backward reachability engine on both, and replays the counterexample
// through pure simulation — the independent referee.

#include <cstdio>
#include <cstdlib>

#include "circuits/families.hpp"
#include "mc/engines.hpp"

namespace {

void report(const cbq::mc::Network& net, const cbq::mc::CheckResult& res) {
  std::printf("%-18s -> %-8s after %d iteration(s), %.3fs\n",
              net.name.c_str(), cbq::mc::toString(res.verdict), res.steps,
              res.seconds);
  if (res.cex) {
    std::printf("  counterexample of %zu step(s); replay says: %s\n",
                res.cex->length(),
                cbq::mc::replayHitsBad(net, *res.cex) ? "bad state reached"
                                                      : "TRACE IS BOGUS");
    // Print the enable input per step (the counter's only input).
    std::printf("  inputs:");
    for (const auto& step : res.cex->inputs) {
      const bool en = step.begin() != step.end() && step.begin()->second;
      std::printf(" %d", en ? 1 : 0);
    }
    std::printf("\n");
  }
  std::printf("  state-set work: peak reached-set cone = %.0f AND nodes, "
              "%lld fixpoint checks\n",
              res.stats.gauge("reach.max_reached_cone"),
              static_cast<long long>(res.stats.count("reach.fixpoint_checks")));
}

}  // namespace

int main(int argc, char** argv) {
  const int width = argc > 1 ? std::atoi(argv[1]) : 4;
  if (width < 2 || width > 16) {
    std::fprintf(stderr, "usage: %s [width 2..16]\n", argv[0]);
    return 1;
  }

  cbq::mc::CircuitQuantReach engine;

  std::printf("== safe counter: wraps at 2^%d-2, all-ones unreachable ==\n",
              width);
  const auto safeNet = cbq::circuits::makeCounter(width, /*safe=*/true);
  report(safeNet, engine.check(safeNet));

  std::printf("\n== buggy counter: plain wrap, all-ones reachable ==\n");
  const auto buggyNet = cbq::circuits::makeCounter(width, /*safe=*/false);
  report(buggyNet, engine.check(buggyNet));
  return 0;
}

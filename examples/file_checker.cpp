// Model-check a circuit file — the downstream user's entry point.
//
//   $ ./file_checker model.aag [engine]
//   $ ./file_checker design.bench cbq-reach
//
// Loads an AIGER-ascii (.aag) or ISCAS (.bench) file, treats its outputs
// as bad signals, and runs the chosen engine (default: the paper's
// circuit-quantification reachability). With no arguments it writes a
// demo .aag of the token ring to /tmp and checks that, so the example is
// runnable out of the box.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>

#include "circuits/families.hpp"
#include "circuits/io.hpp"
#include "mc/engines.hpp"

namespace {

std::unique_ptr<cbq::mc::Engine> makeEngine(const std::string& name) {
  using namespace cbq::mc;
  if (name == "cbq-reach") return std::make_unique<CircuitQuantReach>();
  if (name == "bdd-bwd") return std::make_unique<BddBackwardReach>();
  if (name == "bdd-fwd") return std::make_unique<BddForwardReach>();
  if (name == "bmc") return std::make_unique<Bmc>();
  if (name == "k-induction") return std::make_unique<KInduction>();
  if (name == "allsat-reach") return std::make_unique<AllSatPreimageReach>();
  if (name == "hybrid-reach") return std::make_unique<HybridReach>();
  return nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  std::string engineName = "cbq-reach";

  if (argc < 2) {
    // Self-contained demo: emit a buggy token ring and check it.
    path = "/tmp/cbq_demo_ring.aag";
    const auto net = cbq::circuits::makeTokenRing(5, /*safe=*/false);
    std::ofstream out(path);
    cbq::circuits::writeAag(net, out);
    std::printf("no file given; wrote demo circuit to %s\n\n", path.c_str());
  } else {
    path = argv[1];
    if (argc > 2) engineName = argv[2];
  }

  auto engine = makeEngine(engineName);
  if (!engine) {
    std::fprintf(stderr,
                 "unknown engine '%s'\nknown: cbq-reach bdd-bwd bdd-fwd bmc "
                 "k-induction allsat-reach hybrid-reach\n",
                 engineName.c_str());
    return 1;
  }

  try {
    const auto net = cbq::circuits::readCircuitFile(path);
    std::printf("%s: %zu latches, %zu inputs, %zu AND nodes\n",
                net.name.c_str(), net.numLatches(), net.numInputs(),
                net.aig.numAnds());

    const auto res = engine->check(net);
    std::printf("%s: %s (steps=%d, %.3fs)\n", res.engine.c_str(),
                cbq::mc::toString(res.verdict), res.steps, res.seconds);
    if (res.cex) {
      const bool ok = cbq::mc::replayHitsBad(net, *res.cex);
      std::printf("counterexample: %zu steps, replay %s\n",
                  res.cex->length(), ok ? "confirms the bug" : "FAILED");
      return ok ? 0 : 2;
    }
    return res.verdict == cbq::mc::Verdict::Unknown ? 3 : 0;
  } catch (const cbq::circuits::ParseError& e) {
    std::fprintf(stderr, "parse error: %s\n", e.what());
    return 1;
  }
}

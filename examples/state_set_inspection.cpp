// Inside the quantifier: watching the merge and optimization phases work.
//
//   $ ./state_set_inspection [out.dot]
//
// Builds a one-step pre-image formula of the even-stepping counter —
// exactly the kind of state set the paper's traversal manipulates —
// and eliminates the input variable three ways:
//   1. plain Shannon expansion (both phases off),
//   2. the full §2 pipeline (merge + don't-care optimization),
//   3. the §3 substitution rule when the formula has definition shape.
// Prints the resulting circuit sizes, and optionally dumps the optimized
// state set as Graphviz dot for inspection.

#include <cstdio>
#include <fstream>
#include <unordered_map>

#include "aig/dot.hpp"
#include "circuits/families.hpp"
#include "quant/quantifier.hpp"

int main(int argc, char** argv) {
  using namespace cbq;

  const auto net = circuits::makeEvenCounter(6, /*safe=*/true);

  // Pre-image formula Bad(δ(s, i)) over state vars + the enable input.
  aig::Aig mgr;
  std::vector<aig::Lit> roots(net.next.begin(), net.next.end());
  roots.push_back(net.bad);
  const auto moved = mgr.transferFrom(net.aig, roots);
  std::vector<aig::VarSub> subst;
  for (std::size_t i = 0; i < net.stateVars.size(); ++i)
    subst.emplace_back(net.stateVars[i], moved[i]);
  const aig::Lit pre = mgr.compose(moved.back(), subst);
  const aig::VarId enable = net.inputVars[0];

  std::printf("pre-image formula: %zu AND nodes, %zu support vars\n",
              mgr.coneSize(pre), mgr.supportVars(pre).size());

  // 1. Shannon expansion only.
  quant::QuantOptions plain;
  plain.useSubstitution = false;
  plain.mergePhase = false;
  plain.optPhase = false;
  plain.rewriteResult = false;
  quant::Quantifier qPlain(mgr, plain);
  const aig::Lit rPlain = qPlain.quantifyVarForced(pre, enable);
  std::printf("shannon expansion only:   %4zu AND nodes\n",
              mgr.coneSize(rPlain));

  // 2. Full pipeline.
  quant::QuantOptions full;
  full.useSubstitution = false;  // force the cofactor path
  quant::Quantifier qFull(mgr, full);
  const aig::Lit rFull = qFull.quantifyVarForced(pre, enable);
  std::printf("merge + dc optimization:  %4zu AND nodes "
              "(%lld merges, %lld dc replacements)\n",
              mgr.coneSize(rFull),
              static_cast<long long>(
                  qFull.stats().count("merge.bdd_merges") +
                  qFull.stats().count("merge.sat_merges")),
              static_cast<long long>(
                  qFull.stats().count("opt.const_repl") +
                  qFull.stats().count("opt.merge_repl") +
                  qFull.stats().count("opt.odc_repl")));

  // 3. Substitution shape: ∃v.((v ↔ g) ∧ R).
  {
    aig::Aig g2;
    const aig::Lit v = g2.pi(0);
    const aig::Lit def = g2.mkXor(g2.pi(1), g2.pi(2));
    const aig::Lit f =
        g2.mkAnd(g2.mkXnor(v, def), g2.mkOr(v, g2.pi(3)));
    quant::Quantifier q3(g2);
    const auto sub = q3.quantifyBySubstitution(f, 0);
    std::printf("substitution rule (§3):   %4zu AND nodes "
                "(in-lined, no cofactoring)\n",
                sub ? g2.coneSize(*sub) : 0);
  }

  if (argc > 1) {
    std::ofstream out(argv[1]);
    const aig::Lit dumpRoots[] = {rFull};
    aig::writeDot(mgr, dumpRoots, out, "optimized_state_set");
    std::printf("wrote %s (render with: dot -Tpdf %s -o out.pdf)\n",
                argv[1], argv[1]);
  }
  return 0;
}

#pragma once
// Flat multi-word simulation signatures for sweeping-style engines.
//
// One cone, one arena: every node in the (topologically ordered) cone gets
// a dense slot, and all simulation words live in a single node-major
// std::vector<uint64_t> with a fixed stride. Compared to the previous
// vector-of-vectors design this removes every per-node allocation on the
// hot refinement path, and — because columns are stored per slot — a
// counterexample append simulates ONLY the new word column instead of
// resimulating the whole history (the old appendWord was O(words) per
// refinement round, O(words²) over a run).
//
// Simulation is organized by topological STRATA: the cone order is
// stable-sorted by AIG level, so all nodes of one level form a contiguous
// range whose fanins live strictly in earlier ranges (or in the PI row).
// Within a stratum every node writes only its own slot, which makes each
// stratum an embarrassingly parallel loop — resimulateAll() runs the
// node-major inner word loop (a straight-line `(a^ma) & (b^mb)` over a
// contiguous row, auto-vectorizable) across an optional ThreadPool, and
// the result is bit-identical at any thread count because the partition
// only splits disjoint slot writes.
//
// Class keys are 64-bit mixed hashes of the complement-normalized words
// (splitmix-style finalization per word), with exact word comparison as
// the collision referee, replacing the former per-node std::string keys.

#include <cstdint>
#include <span>
#include <vector>

#include "aig/aig.hpp"
#include "util/random.hpp"

namespace cbq::util {
class ThreadPool;
}

namespace cbq::audit {
struct Access;
}

namespace cbq::sweep {

/// splitmix64 finalizer — the word mixer behind every signature-class
/// key (sweeper classes and the DC engine's care-masked classes).
inline std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

class Signatures {
 public:
  /// Slot index inside the dense arena.
  using Slot = std::uint32_t;
  static constexpr Slot kNoSlot = 0xffffffffu;

  /// `order` is the cone's AND nodes in topological order (fanins first),
  /// `support` the sorted external variables of its PIs. `initialWords`
  /// random columns are generated immediately; the arena reserves room for
  /// `maxWords` columns so refinement appends never reallocate. `pool`
  /// (optional, non-owning) parallelizes simulation across level strata;
  /// null means serial, and any pool yields bit-identical words.
  Signatures(const aig::Aig& aig, std::span<const aig::NodeId> order,
             std::span<const aig::VarId> support, util::Random& rng,
             int initialWords, int maxWords,
             util::ThreadPool* pool = nullptr);

  [[nodiscard]] std::size_t words() const { return words_; }
  [[nodiscard]] std::size_t stride() const { return stride_; }

  /// Appends one simulation word per PI — bit j of `cexBits[i]` (parallel
  /// to the support array) is the j-th stored counterexample value, the
  /// remaining bits random noise — and simulates ONLY the new column.
  /// Returns false (and changes nothing, not even the RNG stream) when the
  /// arena is full (words() == stride()), so refinement loops can tell a
  /// real append from a no-op and surface an arena-full stat.
  [[nodiscard]] bool appendWord(std::span<const std::uint64_t> cexBits,
                                int cexCount, util::Random& rng);

  /// Recomputes every active column of every node from the stored PI
  /// words, node-major (per node, one contiguous SIMD-friendly word loop)
  /// and stratum-parallel when a pool is attached. The result must be
  /// bit-for-bit identical to the incrementally maintained state AND to
  /// resimulateAllReference(); tests use both as referees.
  void resimulateAll();

  /// The pre-parallel column-major serial recomputation, kept verbatim as
  /// the bit-exact referee for resimulateAll() (tests/test_parallel.cpp)
  /// and as the micro-benchmark baseline (bench/micro_aig.cpp).
  void resimulateAllReference();

  /// Active signature words of node `n` (must be in the cone).
  [[nodiscard]] std::span<const std::uint64_t> of(aig::NodeId n) const {
    return {&arena_[slotOf_[n] * stride_], words_};
  }

  [[nodiscard]] bool inCone(aig::NodeId n) const {
    return n < slotOf_.size() && slotOf_[n] != kNoSlot;
  }

  [[nodiscard]] bool allZero(aig::NodeId n) const;
  [[nodiscard]] bool allOne(aig::NodeId n) const;

  /// Complement-normalized 64-bit mixed hash plus the normalization phase
  /// (true = the signature was complemented so that bit 0 of word 0 is 0).
  struct Key {
    std::uint64_t hash;
    bool phase;
  };
  [[nodiscard]] Key normalizedKey(aig::NodeId n) const;

  /// Exact equality of the complement-normalized signatures (the collision
  /// referee behind hash-equal candidates).
  [[nodiscard]] bool equalNormalized(aig::NodeId a, bool phaseA,
                                     aig::NodeId b, bool phaseB) const;

 private:
  friend struct ::cbq::audit::Access;

  void simulateColumn(std::size_t w);
  void loadPiColumn(std::size_t w);

  const aig::Aig* aig_;
  util::ThreadPool* pool_;  // non-owning; null = serial
  std::vector<aig::NodeId> order_;
  std::vector<aig::VarId> support_;
  std::vector<aig::NodeId> supportNode_;  // PI node per support entry

  /// order_ stable-sorted by AIG level; strata_[k] = [begin, end) range of
  /// levelOrder_ holding all cone nodes of the k-th occupied level. Fanins
  /// of a stratum node are PIs or live in strictly earlier strata.
  std::vector<aig::NodeId> levelOrder_;
  std::vector<std::pair<std::size_t, std::size_t>> strata_;

  std::size_t stride_;  // reserved columns per slot
  std::size_t words_;   // active columns
  std::vector<Slot> slotOf_;          // NodeId -> arena slot (kNoSlot = out)
  std::vector<std::uint64_t> arena_;  // node-major, slot * stride_ + word
  std::vector<std::uint64_t> piArena_;  // support-major, i * stride_ + word
};

}  // namespace cbq::sweep

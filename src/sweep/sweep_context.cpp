#include "sweep/sweep_context.hpp"

#include <algorithm>
#include <utility>
#include <vector>

namespace cbq::sweep {

void SweepContext::setInterrupt(std::function<bool()> callback) {
  interrupt_ = std::move(callback);
  if (solver_) solver_->setInterrupt(interrupt_);
}

void SweepContext::retireAndRebuild(const aig::Aig& aig) {
  if (solver_) {
    // Retire the old session's effort so run totals survive rebuilds.
    retiredConflicts_ += solver_->conflicts();
    retiredDecisions_ += solver_->decisions();
    retiredPropagations_ += solver_->propagations();
  }
  solver_ = std::make_unique<sat::Solver>();
  if (interrupt_) solver_->setInterrupt(interrupt_);
  cnf_ = std::make_unique<cnf::AigCnf>(aig, *solver_);
  aig_ = &aig;
  uid_ = aig.uid();
}

bool SweepContext::bind(const aig::Aig& aig) {
  if (boundTo(aig)) return false;
  if (solver_) ++counters_.rebinds;
  retireAndRebuild(aig);
  pairFacts_.clear();
  return true;
}

bool SweepContext::recycleIfBloated(std::size_t liveNodes, double ratio,
                                    std::size_t minEncoded) {
  if (!cnf_) return false;
  const std::size_t encoded = cnf_->numEncodedNodes();
  if (encoded <= minEncoded ||
      static_cast<double>(encoded) <=
          ratio * static_cast<double>(liveNodes))
    return false;
  ++counters_.recycles;
  retireAndRebuild(*aig_);
  // pairFacts_ intentionally kept: same manager, same facts.
  return true;
}

void SweepContext::rebindRemapped(
    const aig::Aig& newMgr,
    std::span<const std::pair<aig::NodeId, aig::Lit>> transferMap) {
  // Dense old-NodeId → new-literal table (absent = dropped scratch node).
  aig::NodeId maxOld = 0;
  for (const auto& [n, l] : transferMap) maxOld = std::max(maxOld, n);
  constexpr std::uint32_t kAbsent = 0xffffffffu;
  std::vector<std::uint32_t> newRaw(static_cast<std::size_t>(maxOld) + 1,
                                    kAbsent);
  // The constant node is 0 in every manager but rarely appears in the
  // transfer map (strashed AND fanins are never constant) — seed it so
  // proven constant-equivalence facts survive the compaction.
  newRaw[0] = aig::kFalse.raw();
  for (const auto& [n, l] : transferMap) newRaw[n] = l.raw();

  std::unordered_map<std::uint64_t, bool> remapped;
  remapped.reserve(pairFacts_.size());
  for (const auto& [key, proven] : pairFacts_) {
    const aig::Lit a = aig::Lit::fromRaw(static_cast<std::uint32_t>(key >> 32));
    const aig::Lit b = aig::Lit::fromRaw(static_cast<std::uint32_t>(key));
    if (a.node() > maxOld || b.node() > maxOld) continue;
    const std::uint32_t ra = newRaw[a.node()];
    const std::uint32_t rb = newRaw[b.node()];
    if (ra == kAbsent || rb == kAbsent) continue;
    const aig::Lit na = aig::Lit::fromRaw(ra) ^ a.negated();
    const aig::Lit nb = aig::Lit::fromRaw(rb) ^ b.negated();
    if (na.node() == nb.node()) continue;  // re-strash already merged them
    remapped.emplace(pairKey(na, nb), proven);
  }

  ++counters_.remaps;
  retireAndRebuild(newMgr);
  pairFacts_ = std::move(remapped);
}

std::uint64_t SweepContext::pairKey(aig::Lit a, aig::Lit b) {
  // Symmetric, complement-normalized: order by node id, then complement
  // both sides so the first literal is positive. "a ≡ b" and "¬a ≡ ¬b"
  // (and both argument orders) land on the same key.
  if (a.node() > b.node()) std::swap(a, b);
  if (a.negated()) {
    a = !a;
    b = !b;
  }
  return (static_cast<std::uint64_t>(a.raw()) << 32) | b.raw();
}

SweepContext::PairFact SweepContext::lookupPair(aig::Lit a, aig::Lit b) {
  ++counters_.lookups;
  const auto it = pairFacts_.find(pairKey(a, b));
  if (it == pairFacts_.end()) return PairFact::Unknown;
  if (it->second) {
    ++counters_.hitsProven;
    return PairFact::Proven;
  }
  ++counters_.hitsRefuted;
  return PairFact::Refuted;
}

void SweepContext::recordProven(aig::Lit a, aig::Lit b) {
  pairFacts_[pairKey(a, b)] = true;
}

void SweepContext::recordRefuted(aig::Lit a, aig::Lit b) {
  pairFacts_[pairKey(a, b)] = false;
}

void SweepContext::noteDcOutcome(std::size_t before, std::size_t after) {
  if (before < 8) return;  // too small to be signal
  const double ratio =
      static_cast<double>(after) / static_cast<double>(before);
  dcShrinkEwma_ = dcSamples_ == 0 ? ratio
                                  : 0.75 * dcShrinkEwma_ + 0.25 * ratio;
  ++dcSamples_;
}

bool SweepContext::shouldAttemptDc() {
  if (dcSamples_ < 8 || dcShrinkEwma_ < 0.95) return true;
  return (++dcProbeTick_ & 15u) == 0;  // periodic re-probe
}

void SweepContext::noteOdcOutcome(std::size_t attempts,
                                  std::size_t accepted) {
  if (attempts == 0) return;
  const double hit = accepted > 0 ? 1.0 : 0.0;
  odcAcceptEwma_ =
      odcSamples_ == 0 ? hit : 0.75 * odcAcceptEwma_ + 0.25 * hit;
  ++odcSamples_;
}

bool SweepContext::shouldAttemptOdc() {
  if (odcSamples_ < 4 || odcAcceptEwma_ >= 0.05) return true;
  return (++odcProbeTick_ & 15u) == 0;  // periodic re-probe
}

std::uint64_t SweepContext::totalConflicts() const {
  return retiredConflicts_ + (solver_ ? solver_->conflicts() : 0);
}

std::uint64_t SweepContext::totalDecisions() const {
  return retiredDecisions_ + (solver_ ? solver_->decisions() : 0);
}

std::uint64_t SweepContext::totalPropagations() const {
  return retiredPropagations_ + (solver_ ? solver_->propagations() : 0);
}

void SweepContext::exportStats(obs::Metrics& stats) const {
  stats.add("sat.conflicts", static_cast<std::int64_t>(totalConflicts()));
  stats.add("sat.decisions", static_cast<std::int64_t>(totalDecisions()));
  stats.add("sat.propagations",
            static_cast<std::int64_t>(totalPropagations()));
  stats.add("sweep.cache_lookups",
            static_cast<std::int64_t>(counters_.lookups));
  stats.add("sweep.cache_hits_proven",
            static_cast<std::int64_t>(counters_.hitsProven));
  stats.add("sweep.cache_hits_refuted",
            static_cast<std::int64_t>(counters_.hitsRefuted));
  stats.add("sweep.session_rebinds",
            static_cast<std::int64_t>(counters_.rebinds));
  stats.add("sweep.session_recycles",
            static_cast<std::int64_t>(counters_.recycles));
  stats.add("sweep.cache_remaps",
            static_cast<std::int64_t>(counters_.remaps));
}

}  // namespace cbq::sweep

#include "sweep/sweep_context.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <utility>
#include <vector>

#include "util/timer.hpp"

namespace cbq::sweep {

void SweepContext::setInterrupt(std::function<bool()> callback) {
  interrupt_ = std::move(callback);
  if (solver_) solver_->setInterrupt(interrupt_);
  if (circuit_) circuit_->setInterrupt(interrupt_);
}

void SweepContext::retireCnfEngine() {
  if (!solver_) return;
  // Retire the old engine's effort so run totals survive rebuilds.
  retiredConflicts_ += solver_->conflicts();
  retiredDecisions_ += solver_->decisions();
  retiredPropagations_ += solver_->propagations();
}

void SweepContext::retireCircuitEngine() {
  if (!circuit_) return;
  retiredConflicts_ += circuit_->conflicts();
  retiredDecisions_ += circuit_->decisions();
  retiredPropagations_ += circuit_->propagations();
}

void SweepContext::retireAndRebuild(const aig::Aig& aig) {
  retireCnfEngine();
  retireCircuitEngine();
  lastModel_ = nullptr;
  if (kind_ != sat::BackendKind::Circuit) {
    solver_ = std::make_unique<sat::Solver>();
    if (interrupt_) solver_->setInterrupt(interrupt_);
    cnf_ = std::make_unique<cnf::AigCnf>(aig, *solver_);
    cnfBackend_ = std::make_unique<cnf::CnfSolverBackend>(*cnf_);
  } else {
    cnfBackend_.reset();
    cnf_.reset();
    solver_.reset();
  }
  if (kind_ != sat::BackendKind::Cnf) {
    circuit_ = std::make_unique<sat::CircuitSolver>(aig);
    if (interrupt_) circuit_->setInterrupt(interrupt_);
  } else {
    circuit_.reset();
  }
  aig_ = &aig;
  uid_ = aig.uid();
  // Fresh engines have no focus; pending roots may name dead nodes
  // after a compaction rebuild — callers refocus before querying.
  pendingFocus_.clear();
  focusPending_ = false;
  cnfFocusStale_ = false;
  circuitFocusStale_ = false;
}

void SweepContext::setBackend(sat::BackendKind kind) {
  if (kind == kind_) return;
  kind_ = kind;
  // If the session is live, rebuild the engine set in place; the pair
  // cache survives (same manager, same facts).
  if (aig_ != nullptr && (cnf_ || circuit_)) retireAndRebuild(*aig_);
}

sat::BackendKind SweepContext::soloKind() const {
  switch (kind_) {
    case sat::BackendKind::Circuit:
      return sat::BackendKind::Circuit;
    case sat::BackendKind::Auto:
      if (backendSamples_[0] >= 2 && backendSamples_[1] >= 2 &&
          backendLogRatioEwma_ > 0.0)
        return sat::BackendKind::Circuit;
      return sat::BackendKind::Cnf;
    case sat::BackendKind::Cnf:
    case sat::BackendKind::Race:
    default:
      return sat::BackendKind::Cnf;
  }
}

bool SweepContext::bind(const aig::Aig& aig) {
  if (boundTo(aig)) return false;
  if (cnf_ || circuit_) ++counters_.rebinds;
  retireAndRebuild(aig);
  pairFacts_.clear();
  return true;
}

bool SweepContext::recycleIfBloated(std::size_t liveNodes, double ratio,
                                    std::size_t minEncoded) {
  // Only the CNF engine bloats — the circuit engine encodes nothing, so a
  // circuit-only session never recycles (and keeps its learnt gates).
  if (!cnf_) return false;
  const std::size_t encoded = cnf_->numEncodedNodes();
  if (encoded <= minEncoded ||
      static_cast<double>(encoded) <=
          ratio * static_cast<double>(liveNodes))
    return false;
  ++counters_.recycles;
  // Rebuild ONLY the stale CNF side; the circuit engine's learnt gates
  // and heuristic state stay valid (same manager).
  retireCnfEngine();
  if (lastModel_ == cnfBackend_.get()) lastModel_ = nullptr;
  solver_ = std::make_unique<sat::Solver>();
  if (interrupt_) solver_->setInterrupt(interrupt_);
  cnf_ = std::make_unique<cnf::AigCnf>(*aig_, *solver_);
  cnfBackend_ = std::make_unique<cnf::CnfSolverBackend>(*cnf_);
  cnfFocusStale_ = focusPending_;  // fresh solver, same manager/roots
  // pairFacts_ intentionally kept: same manager, same facts.
  return true;
}

void SweepContext::rebindRemapped(
    const aig::Aig& newMgr,
    std::span<const std::pair<aig::NodeId, aig::Lit>> transferMap) {
  // Dense old-NodeId → new-literal table (absent = dropped scratch node).
  aig::NodeId maxOld = 0;
  for (const auto& [n, l] : transferMap) maxOld = std::max(maxOld, n);
  constexpr std::uint32_t kAbsent = 0xffffffffu;
  std::vector<std::uint32_t> newRaw(static_cast<std::size_t>(maxOld) + 1,
                                    kAbsent);
  // The constant node is 0 in every manager but rarely appears in the
  // transfer map (strashed AND fanins are never constant) — seed it so
  // proven constant-equivalence facts survive the compaction.
  newRaw[0] = aig::kFalse.raw();
  for (const auto& [n, l] : transferMap) newRaw[n] = l.raw();

  std::unordered_map<std::uint64_t, bool> remapped;
  remapped.reserve(pairFacts_.size());
  for (const auto& [key, proven] : pairFacts_) {
    const aig::Lit a = aig::Lit::fromRaw(static_cast<std::uint32_t>(key >> 32));
    const aig::Lit b = aig::Lit::fromRaw(static_cast<std::uint32_t>(key));
    if (a.node() > maxOld || b.node() > maxOld) continue;
    const std::uint32_t ra = newRaw[a.node()];
    const std::uint32_t rb = newRaw[b.node()];
    if (ra == kAbsent || rb == kAbsent) continue;
    const aig::Lit na = aig::Lit::fromRaw(ra) ^ a.negated();
    const aig::Lit nb = aig::Lit::fromRaw(rb) ^ b.negated();
    if (na.node() == nb.node()) continue;  // re-strash already merged them
    remapped.emplace(pairKey(na, nb), proven);
  }

  ++counters_.remaps;
  retireAndRebuild(newMgr);
  pairFacts_ = std::move(remapped);
}

// ----- backend-routed queries -----------------------------------------

void SweepContext::focusOn(std::span<const aig::Lit> roots) {
  // Lazy: focusing the CNF side Tseitin-encodes the whole root cone, so
  // it must not happen for queries the router sends to the circuit
  // engine — each backend is focused (inside its timed leg) only when
  // it actually runs a query on these roots.
  pendingFocus_.assign(roots.begin(), roots.end());
  focusPending_ = true;
  cnfFocusStale_ = true;
  circuitFocusStale_ = true;
}

void SweepContext::applyFocus(bool onCircuit) {
  if (!focusPending_) return;
  if (onCircuit) {
    if (circuitFocusStale_ && circuit_) {
      circuit_->focusOn(pendingFocus_);
      circuitFocusStale_ = false;
    }
  } else if (cnfFocusStale_ && cnfBackend_) {
    cnfBackend_->focusOn(pendingFocus_);
    cnfFocusStale_ = false;
  }
}

void SweepContext::noteBackendSample(bool onCircuit, double ns) {
  const int i = onCircuit ? 1 : 0;
  backendEwmaNs_[i] = backendSamples_[i] == 0
                          ? ns
                          : 0.75 * backendEwmaNs_[i] + 0.25 * ns;
  ++backendSamples_[i];
}

cnf::Verdict SweepContext::runOn(bool onCircuit, const Query& q) {
  sat::SatBackend& b =
      onCircuit ? static_cast<sat::SatBackend&>(*circuit_)
                : static_cast<sat::SatBackend&>(*cnfBackend_);
  util::Timer t;  // focus (CNF: cone encode) is part of the query cost
  applyFocus(onCircuit);
  const cnf::Verdict v = q(b);
  noteBackendSample(onCircuit, t.seconds() * 1e9);
  if (onCircuit)
    ++counters_.circuitWins;
  else
    ++counters_.cnfWins;
  lastModel_ = &b;
  return v;
}

cnf::Verdict SweepContext::runRaced(const Query& q) {
  // Sequential race: circuit first (no encode cost to lose), then CNF.
  // The faster *definitive* answer wins; on a definitive disagreement the
  // CNF engine is trusted (its encoding has years of test history) and
  // the mismatch is counted for the audit layer to flag.
  util::Timer t;
  applyFocus(true);
  const cnf::Verdict vc = q(*circuit_);
  const double circuitNs = t.seconds() * 1e9;
  t.restart();
  applyFocus(false);
  const cnf::Verdict vn = q(*cnfBackend_);
  const double cnfNs = t.seconds() * 1e9;
  noteBackendSample(true, circuitNs);
  noteBackendSample(false, cnfNs);
  // Paired sample on the SAME query — the only apples-to-apples signal.
  // Log domain keeps one outlier ratio from dominating; > 0 means the
  // CNF run was slower, i.e. the circuit engine is ahead.
  backendLogRatioEwma_ =
      0.75 * backendLogRatioEwma_ +
      0.25 * std::log(std::max(cnfNs, 1.0) / std::max(circuitNs, 1.0));

  const bool circuitDef = vc != cnf::Verdict::Unknown;
  const bool cnfDef = vn != cnf::Verdict::Unknown;
  if (circuitDef && cnfDef && vc != vn) {
    ++counters_.disagreements;
    ++counters_.cnfWins;
    counters_.raceWastedNs += static_cast<std::uint64_t>(circuitNs);
    lastModel_ = cnfBackend_.get();
    return vn;
  }
  if (circuitDef && (!cnfDef || circuitNs <= cnfNs)) {
    ++counters_.circuitWins;
    counters_.raceWastedNs += static_cast<std::uint64_t>(cnfNs);
    lastModel_ = circuit_.get();
    return vc;
  }
  if (cnfDef) {
    ++counters_.cnfWins;
    counters_.raceWastedNs += static_cast<std::uint64_t>(circuitNs);
    lastModel_ = cnfBackend_.get();
    return vn;
  }
  // Both Unknown (budget/interrupt): only the slower run was waste.
  counters_.raceWastedNs +=
      static_cast<std::uint64_t>(std::min(circuitNs, cnfNs));
  lastModel_ = cnfBackend_.get();
  return cnf::Verdict::Unknown;
}

cnf::Verdict SweepContext::runQuery(const Query& q) {
  switch (kind_) {
    case sat::BackendKind::Cnf:
      return runOn(false, q);
    case sat::BackendKind::Circuit:
      return runOn(true, q);
    case sat::BackendKind::Race:
      return runRaced(q);
    case sat::BackendKind::Auto:
    default: {
      // Seed by racing until both engines have samples, then route every
      // query to the paired-ratio winner. Raw per-backend EWMAs compare
      // DIFFERENT queries (a cheap merge check against an expensive
      // fixpoint implication) and flip on workload phase, not merit —
      // so steering uses only paired observations: every 64th query is
      // raced to refresh the ratio and let a workload shift flip the
      // choice, at a bounded ~1/64 duplicated-work cost.
      if (backendSamples_[0] < 2 || backendSamples_[1] < 2)
        return runRaced(q);
      if ((++backendProbeTick_ & 63u) == 0) return runRaced(q);
      return runOn(backendLogRatioEwma_ > 0.0, q);
    }
  }
}

cnf::Verdict SweepContext::checkEquiv(aig::Lit a, aig::Lit b,
                                      std::int64_t budget) {
  return runQuery([=](sat::SatBackend& s) {
    return sat::checkEquiv(s, a, b, budget);
  });
}

cnf::Verdict SweepContext::checkImplies(aig::Lit a, aig::Lit b,
                                        std::int64_t budget) {
  return runQuery([=](sat::SatBackend& s) {
    return sat::checkImplies(s, a, b, budget);
  });
}

cnf::Verdict SweepContext::checkConstant(aig::Lit a, bool value,
                                         std::int64_t budget) {
  return runQuery([=](sat::SatBackend& s) {
    return sat::checkConstant(s, a, value, budget);
  });
}

cnf::Verdict SweepContext::checkSat(aig::Lit f, std::int64_t budget) {
  return runQuery(
      [=](sat::SatBackend& s) { return sat::checkSat(s, f, budget); });
}

cnf::Verdict SweepContext::checkEquivUnderCare(aig::Lit notRef, aig::Lit a,
                                               aig::Lit b,
                                               std::int64_t budget) {
  return runQuery([=](sat::SatBackend& s) {
    return sat::checkEquivUnderCare(s, notRef, a, b, budget);
  });
}

bool SweepContext::modelOf(aig::VarId v) const {
  return lastModel_ != nullptr && lastModel_->modelOf(v);
}

void SweepContext::learnEquiv(aig::Lit a, aig::Lit b) {
  const std::array<aig::Lit, 2> fwd{!a, b};
  const std::array<aig::Lit, 2> bwd{a, !b};
  if (cnfBackend_ &&
      (kind_ == sat::BackendKind::Cnf || kind_ == sat::BackendKind::Race ||
       (cnfBackend_->knows(a) && cnfBackend_->knows(b)))) {
    cnfBackend_->addClause(std::span<const aig::Lit>(fwd));
    cnfBackend_->addClause(std::span<const aig::Lit>(bwd));
  }
  if (circuit_) {
    circuit_->addClause(std::span<const aig::Lit>(fwd));
    circuit_->addClause(std::span<const aig::Lit>(bwd));
  }
}

void SweepContext::learnConstant(aig::Lit a, bool value) {
  // `a == value` as a unit clause: assert the literal equal to `value`.
  const std::array<aig::Lit, 1> unit{a ^ !value};
  if (cnfBackend_ &&
      (kind_ == sat::BackendKind::Cnf || kind_ == sat::BackendKind::Race ||
       cnfBackend_->knows(a))) {
    cnfBackend_->addClause(std::span<const aig::Lit>(unit));
  }
  if (circuit_) circuit_->addClause(std::span<const aig::Lit>(unit));
}

// ----- pair cache ------------------------------------------------------

std::uint64_t SweepContext::pairKey(aig::Lit a, aig::Lit b) {
  // Symmetric, complement-normalized: order by node id, then complement
  // both sides so the first literal is positive. "a ≡ b" and "¬a ≡ ¬b"
  // (and both argument orders) land on the same key.
  if (a.node() > b.node()) std::swap(a, b);
  if (a.negated()) {
    a = !a;
    b = !b;
  }
  return (static_cast<std::uint64_t>(a.raw()) << 32) | b.raw();
}

SweepContext::PairFact SweepContext::lookupPair(aig::Lit a, aig::Lit b) {
  ++counters_.lookups;
  const auto it = pairFacts_.find(pairKey(a, b));
  if (it == pairFacts_.end()) return PairFact::Unknown;
  if (it->second) {
    ++counters_.hitsProven;
    return PairFact::Proven;
  }
  ++counters_.hitsRefuted;
  return PairFact::Refuted;
}

void SweepContext::recordProven(aig::Lit a, aig::Lit b) {
  pairFacts_[pairKey(a, b)] = true;
}

void SweepContext::recordRefuted(aig::Lit a, aig::Lit b) {
  pairFacts_[pairKey(a, b)] = false;
}

void SweepContext::noteDcOutcome(std::size_t before, std::size_t after) {
  if (before < 8) return;  // too small to be signal
  const double ratio =
      static_cast<double>(after) / static_cast<double>(before);
  dcShrinkEwma_ = dcSamples_ == 0 ? ratio
                                  : 0.75 * dcShrinkEwma_ + 0.25 * ratio;
  ++dcSamples_;
}

bool SweepContext::shouldAttemptDc() {
  if (dcSamples_ < 8 || dcShrinkEwma_ < 0.95) return true;
  return (++dcProbeTick_ & 15u) == 0;  // periodic re-probe
}

void SweepContext::noteOdcOutcome(std::size_t attempts,
                                  std::size_t accepted) {
  if (attempts == 0) return;
  const double hit = accepted > 0 ? 1.0 : 0.0;
  odcAcceptEwma_ =
      odcSamples_ == 0 ? hit : 0.75 * odcAcceptEwma_ + 0.25 * hit;
  ++odcSamples_;
}

bool SweepContext::shouldAttemptOdc() {
  if (odcSamples_ < 4 || odcAcceptEwma_ >= 0.05) return true;
  return (++odcProbeTick_ & 15u) == 0;  // periodic re-probe
}

std::uint64_t SweepContext::totalConflicts() const {
  return retiredConflicts_ + (solver_ ? solver_->conflicts() : 0) +
         (circuit_ ? circuit_->conflicts() : 0);
}

std::uint64_t SweepContext::totalDecisions() const {
  return retiredDecisions_ + (solver_ ? solver_->decisions() : 0) +
         (circuit_ ? circuit_->decisions() : 0);
}

std::uint64_t SweepContext::totalPropagations() const {
  return retiredPropagations_ + (solver_ ? solver_->propagations() : 0) +
         (circuit_ ? circuit_->propagations() : 0);
}

void SweepContext::exportStats(obs::Metrics& stats) const {
  stats.add("sat.conflicts", static_cast<std::int64_t>(totalConflicts()));
  stats.add("sat.decisions", static_cast<std::int64_t>(totalDecisions()));
  stats.add("sat.propagations",
            static_cast<std::int64_t>(totalPropagations()));
  stats.add("sweep.cache_lookups",
            static_cast<std::int64_t>(counters_.lookups));
  stats.add("sweep.cache_hits_proven",
            static_cast<std::int64_t>(counters_.hitsProven));
  stats.add("sweep.cache_hits_refuted",
            static_cast<std::int64_t>(counters_.hitsRefuted));
  stats.add("sweep.session_rebinds",
            static_cast<std::int64_t>(counters_.rebinds));
  stats.add("sweep.session_recycles",
            static_cast<std::int64_t>(counters_.recycles));
  stats.add("sweep.cache_remaps",
            static_cast<std::int64_t>(counters_.remaps));
  stats.add("sat.backend.cnf_wins",
            static_cast<std::int64_t>(counters_.cnfWins));
  stats.add("sat.backend.circuit_wins",
            static_cast<std::int64_t>(counters_.circuitWins));
  stats.add("sat.backend.race_wasted_ns",
            static_cast<std::int64_t>(counters_.raceWastedNs));
  stats.add("sat.backend.disagreements",
            static_cast<std::int64_t>(counters_.disagreements));
}

}  // namespace cbq::sweep

#include "sweep/signatures.hpp"

namespace cbq::sweep {

namespace {

using aig::Lit;
using aig::NodeId;
using aig::VarId;

std::uint64_t negMask(bool b) { return b ? ~std::uint64_t{0} : 0; }

}  // namespace

Signatures::Signatures(const aig::Aig& aig, std::span<const NodeId> order,
                       std::span<const VarId> support, util::Random& rng,
                       int initialWords, int maxWords)
    : aig_(&aig),
      order_(order.begin(), order.end()),
      support_(support.begin(), support.end()),
      stride_(static_cast<std::size_t>(
          maxWords > initialWords ? maxWords : initialWords)),
      words_(static_cast<std::size_t>(initialWords > 0 ? initialWords : 1)) {
  if (stride_ < words_) stride_ = words_;

  supportNode_.reserve(support_.size());
  for (const VarId v : support_) supportNode_.push_back(aig.piNodeOf(v));

  // Dense slots: constant node first, then the support PIs, then the cone
  // ANDs in topological order.
  slotOf_.assign(aig.numNodes(), kNoSlot);
  Slot next = 0;
  slotOf_[0] = next++;
  for (const NodeId p : supportNode_)
    if (slotOf_[p] == kNoSlot) slotOf_[p] = next++;
  for (const NodeId n : order_)
    if (slotOf_[n] == kNoSlot) slotOf_[n] = next++;

  arena_.assign(static_cast<std::size_t>(next) * stride_, 0);
  piArena_.assign(support_.size() * stride_, 0);
  for (std::size_t i = 0; i < support_.size(); ++i)
    for (std::size_t w = 0; w < words_; ++w)
      piArena_[i * stride_ + w] = rng.next64();

  for (std::size_t w = 0; w < words_; ++w) simulateColumn(w);
}

void Signatures::simulateColumn(std::size_t w) {
  // Constant slot stays 0. PIs first, then the topological AND pass —
  // everything touches a single column, so one append is O(cone), not
  // O(cone * words).
  for (std::size_t i = 0; i < support_.size(); ++i)
    arena_[slotOf_[supportNode_[i]] * stride_ + w] = piArena_[i * stride_ + w];
  for (const NodeId n : order_) {
    const Lit f0 = aig_->fanin0(n);
    const Lit f1 = aig_->fanin1(n);
    const std::uint64_t a =
        arena_[slotOf_[f0.node()] * stride_ + w] ^ negMask(f0.negated());
    const std::uint64_t b =
        arena_[slotOf_[f1.node()] * stride_ + w] ^ negMask(f1.negated());
    arena_[slotOf_[n] * stride_ + w] = a & b;
  }
}

void Signatures::appendWord(std::span<const std::uint64_t> cexBits,
                            int cexCount, util::Random& rng) {
  if (words_ >= stride_) return;  // arena full; caller's round cap hit first
  const std::uint64_t keepMask =
      cexCount >= 64 ? ~std::uint64_t{0}
                     : ((std::uint64_t{1} << cexCount) - 1);
  const std::size_t w = words_;
  for (std::size_t i = 0; i < support_.size(); ++i) {
    std::uint64_t word = rng.next64() & ~keepMask;
    word |= cexBits[i] & keepMask;
    piArena_[i * stride_ + w] = word;
  }
  ++words_;
  simulateColumn(w);
}

void Signatures::resimulateAll() {
  for (std::size_t w = 0; w < words_; ++w) simulateColumn(w);
}

bool Signatures::allZero(NodeId n) const {
  const std::uint64_t* s = &arena_[slotOf_[n] * stride_];
  for (std::size_t w = 0; w < words_; ++w)
    if (s[w] != 0) return false;
  return true;
}

bool Signatures::allOne(NodeId n) const {
  const std::uint64_t* s = &arena_[slotOf_[n] * stride_];
  for (std::size_t w = 0; w < words_; ++w)
    if (s[w] != ~std::uint64_t{0}) return false;
  return true;
}

Signatures::Key Signatures::normalizedKey(NodeId n) const {
  const std::uint64_t* s = &arena_[slotOf_[n] * stride_];
  const bool phase = (s[0] & 1) != 0;
  const std::uint64_t flip = negMask(phase);
  std::uint64_t h = 0x2545f4914f6cdd1dull;
  for (std::size_t w = 0; w < words_; ++w)
    h = mix64(h ^ mix64((s[w] ^ flip) + w));
  return {h, phase};
}

bool Signatures::equalNormalized(NodeId a, bool phaseA, NodeId b,
                                 bool phaseB) const {
  const std::uint64_t* sa = &arena_[slotOf_[a] * stride_];
  const std::uint64_t* sb = &arena_[slotOf_[b] * stride_];
  const std::uint64_t flip = negMask(phaseA != phaseB);
  for (std::size_t w = 0; w < words_; ++w)
    if (sa[w] != (sb[w] ^ flip)) return false;
  return true;
}

}  // namespace cbq::sweep

#include "sweep/signatures.hpp"

#include <algorithm>

#include "util/thread_pool.hpp"

namespace cbq::sweep {

namespace {

using aig::Lit;
using aig::NodeId;
using aig::VarId;

std::uint64_t negMask(bool b) { return b ? ~std::uint64_t{0} : 0; }

// Grains for pool partitioning. A resimulate chunk touches `words_` (a
// couple of cache lines) per node; a single-column chunk touches one word
// per node — keep chunks big enough that claiming one costs nothing.
constexpr std::size_t kResimGrain = 1024;
constexpr std::size_t kColumnGrain = 8192;

}  // namespace

Signatures::Signatures(const aig::Aig& aig, std::span<const NodeId> order,
                       std::span<const VarId> support, util::Random& rng,
                       int initialWords, int maxWords, util::ThreadPool* pool)
    : aig_(&aig),
      pool_(pool),
      order_(order.begin(), order.end()),
      support_(support.begin(), support.end()),
      stride_(static_cast<std::size_t>(
          maxWords > initialWords ? maxWords : initialWords)),
      words_(static_cast<std::size_t>(initialWords > 0 ? initialWords : 1)) {
  if (stride_ < words_) stride_ = words_;

  supportNode_.reserve(support_.size());
  for (const VarId v : support_) supportNode_.push_back(aig.piNodeOf(v));

  // Dense slots: constant node first, then the support PIs, then the cone
  // ANDs in topological order.
  slotOf_.assign(aig.numNodes(), kNoSlot);
  Slot next = 0;
  slotOf_[0] = next++;
  for (const NodeId p : supportNode_)
    if (slotOf_[p] == kNoSlot) slotOf_[p] = next++;
  for (const NodeId n : order_)
    if (slotOf_[n] == kNoSlot) slotOf_[n] = next++;

  // Level strata: a stable sort of the topological order by level keeps a
  // valid order (every fanin has a strictly smaller level) while making
  // each level a contiguous, internally independent range.
  levelOrder_ = order_;
  std::stable_sort(levelOrder_.begin(), levelOrder_.end(),
                   [&aig](NodeId a, NodeId b) {
                     return aig.level(a) < aig.level(b);
                   });
  for (std::size_t i = 0; i < levelOrder_.size();) {
    const unsigned lvl = aig.level(levelOrder_[i]);
    std::size_t j = i + 1;
    while (j < levelOrder_.size() && aig.level(levelOrder_[j]) == lvl) ++j;
    strata_.emplace_back(i, j);
    i = j;
  }

  arena_.assign(static_cast<std::size_t>(next) * stride_, 0);
  piArena_.assign(support_.size() * stride_, 0);
  for (std::size_t i = 0; i < support_.size(); ++i)
    for (std::size_t w = 0; w < words_; ++w)
      piArena_[i * stride_ + w] = rng.next64();

  resimulateAll();
}

void Signatures::loadPiColumn(std::size_t w) {
  for (std::size_t i = 0; i < support_.size(); ++i)
    arena_[slotOf_[supportNode_[i]] * stride_ + w] = piArena_[i * stride_ + w];
}

void Signatures::simulateColumn(std::size_t w) {
  // Constant slot stays 0. PIs first, then stratum by stratum — within a
  // stratum every node writes only its own slot, so splitting the range
  // across lanes is race-free and bit-identical at any thread count.
  loadPiColumn(w);
  for (const auto& [sb, se] : strata_) {
    auto body = [&](std::size_t begin, std::size_t end, int) {
      for (std::size_t i = begin; i < end; ++i) {
        const NodeId n = levelOrder_[sb + i];
        const Lit f0 = aig_->fanin0(n);
        const Lit f1 = aig_->fanin1(n);
        const std::uint64_t a =
            arena_[slotOf_[f0.node()] * stride_ + w] ^ negMask(f0.negated());
        const std::uint64_t b =
            arena_[slotOf_[f1.node()] * stride_ + w] ^ negMask(f1.negated());
        arena_[slotOf_[n] * stride_ + w] = a & b;
      }
    };
    if (pool_ != nullptr)
      pool_->parallelFor(se - sb, kColumnGrain, body);
    else
      body(0, se - sb, 0);
  }
}

bool Signatures::appendWord(std::span<const std::uint64_t> cexBits,
                            int cexCount, util::Random& rng) {
  if (words_ >= stride_) return false;  // arena full — a true no-op
  const std::uint64_t keepMask =
      cexCount >= 64 ? ~std::uint64_t{0}
                     : ((std::uint64_t{1} << cexCount) - 1);
  const std::size_t w = words_;
  for (std::size_t i = 0; i < support_.size(); ++i) {
    std::uint64_t word = rng.next64() & ~keepMask;
    word |= cexBits[i] & keepMask;
    piArena_[i * stride_ + w] = word;
  }
  ++words_;
  simulateColumn(w);
  return true;
}

void Signatures::resimulateAll() {
  // Node-major: one pass over the cone, and per node a contiguous word
  // loop the compiler vectorizes (mask-XOR + AND over dense rows). The
  // PI rows are copied first, then each stratum is a parallel-for.
  for (std::size_t w = 0; w < words_; ++w) loadPiColumn(w);
  const std::size_t words = words_;
  for (const auto& [sb, se] : strata_) {
    auto body = [&](std::size_t begin, std::size_t end, int) {
      for (std::size_t i = begin; i < end; ++i) {
        const NodeId n = levelOrder_[sb + i];
        const Lit f0 = aig_->fanin0(n);
        const Lit f1 = aig_->fanin1(n);
        const std::uint64_t ma = negMask(f0.negated());
        const std::uint64_t mb = negMask(f1.negated());
        const std::uint64_t* a = &arena_[slotOf_[f0.node()] * stride_];
        const std::uint64_t* b = &arena_[slotOf_[f1.node()] * stride_];
        std::uint64_t* o = &arena_[slotOf_[n] * stride_];
        for (std::size_t w = 0; w < words; ++w)
          o[w] = (a[w] ^ ma) & (b[w] ^ mb);
      }
    };
    if (pool_ != nullptr)
      pool_->parallelFor(se - sb, kResimGrain, body);
    else
      body(0, se - sb, 0);
  }
}

void Signatures::resimulateAllReference() {
  // Column-major, strictly serial over the original topological order —
  // the pre-parallel implementation, preserved as the bit-exact referee.
  for (std::size_t w = 0; w < words_; ++w) {
    loadPiColumn(w);
    for (const NodeId n : order_) {
      const Lit f0 = aig_->fanin0(n);
      const Lit f1 = aig_->fanin1(n);
      const std::uint64_t a =
          arena_[slotOf_[f0.node()] * stride_ + w] ^ negMask(f0.negated());
      const std::uint64_t b =
          arena_[slotOf_[f1.node()] * stride_ + w] ^ negMask(f1.negated());
      arena_[slotOf_[n] * stride_ + w] = a & b;
    }
  }
}

bool Signatures::allZero(NodeId n) const {
  const std::uint64_t* s = &arena_[slotOf_[n] * stride_];
  for (std::size_t w = 0; w < words_; ++w)
    if (s[w] != 0) return false;
  return true;
}

bool Signatures::allOne(NodeId n) const {
  const std::uint64_t* s = &arena_[slotOf_[n] * stride_];
  for (std::size_t w = 0; w < words_; ++w)
    if (s[w] != ~std::uint64_t{0}) return false;
  return true;
}

Signatures::Key Signatures::normalizedKey(NodeId n) const {
  const std::uint64_t* s = &arena_[slotOf_[n] * stride_];
  const bool phase = (s[0] & 1) != 0;
  const std::uint64_t flip = negMask(phase);
  std::uint64_t h = 0x2545f4914f6cdd1dull;
  for (std::size_t w = 0; w < words_; ++w)
    h = mix64(h ^ mix64((s[w] ^ flip) + w));
  return {h, phase};
}

bool Signatures::equalNormalized(NodeId a, bool phaseA, NodeId b,
                                 bool phaseB) const {
  const std::uint64_t* sa = &arena_[slotOf_[a] * stride_];
  const std::uint64_t* sb = &arena_[slotOf_[b] * stride_];
  const std::uint64_t flip = negMask(phaseA != phaseB);
  for (std::size_t w = 0; w < words_; ++w)
    if (sa[w] != (sb[w] ^ flip)) return false;
  return true;
}

}  // namespace cbq::sweep

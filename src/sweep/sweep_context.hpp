#pragma once
// Persistent sweeping session — the paper's §2.1 "load the clause database
// once and for all", widened from one sweep() call to a whole
// reachability run.
//
// A SweepContext owns one sat::Solver and one cnf::AigCnf bound to one AIG
// manager. Every backward-reachability iteration, every per-variable
// quantification sweep, every don't-care simplification and every fixpoint
// check of a run shares that single clause database: cones encode once,
// learned clauses and proven-equivalence biconditionals accumulate, and
// the solver's heuristic state (activities, saved phases) carries over.
//
// On top of the solver the context keeps a proven/refuted candidate-pair
// cache. Node functions are immutable within one manager identity
// (Aig::uid(); the node space is append-only), so "m ≡ t" and "m ≢ t"
// are facts that stay true for the lifetime of the binding — a compare
// point re-encountered in iteration k+1 skips SAT entirely. Rebinding to
// a different manager (or the same manager object after a move replaced
// its contents, e.g. periodic compaction) retires the solver and drops
// the cache; bind() validates the uid on every call.

// Since the circuit-native backend landed, the context actually owns up
// to TWO engines behind one query surface: the classic (Solver, AigCnf)
// pair and a sat::CircuitSolver whose propagation walks the manager
// directly. setBackend() picks the routing policy: solo cnf/circuit, a
// per-query race (both run, faster definitive answer wins), or `auto` —
// a per-context EWMA of per-backend query times (the same 0.75/0.25
// feedback idiom as the DC/ODC gates below) that routes each query to
// the historical winner and probes the loser every 16th query. On the
// circuit path nothing is encoded, so cone recycling and compaction
// remap become no-ops — the cone IS the solver state.

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <unordered_map>
#include <utility>

#include "aig/aig.hpp"
#include "cnf/aig_cnf.hpp"
#include "cnf/cnf_backend.hpp"
#include "sat/backend.hpp"
#include "sat/circuit_solver.hpp"
#include "sat/solver.hpp"
#include "obs/metrics.hpp"

namespace cbq::sweep {

class SweepContext {
 public:
  SweepContext() = default;
  SweepContext(const SweepContext&) = delete;
  SweepContext& operator=(const SweepContext&) = delete;

  /// Cooperative interrupt, installed on the current solver and on every
  /// solver a future rebind creates (deep cancellation for portfolio
  /// races and wall deadlines).
  void setInterrupt(std::function<bool()> callback);

  /// Binds the session to `aig`, reusing the live solver/CNF/cache when
  /// the manager identity is unchanged. Returns true when the session was
  /// (re)built — the previous solver was retired and the cache dropped.
  bool bind(const aig::Aig& aig);

  /// True when bind(aig) would be a no-op.
  [[nodiscard]] bool boundTo(const aig::Aig& aig) const {
    return (cnf_ != nullptr || circuit_ != nullptr) && aig_ == &aig &&
           uid_ == aig.uid();
  }

  // ----- backend selection ----------------------------------------------

  /// Sets the routing policy. Takes effect immediately: when the session
  /// is live and the policy needs a different engine set, the solvers are
  /// rebuilt (the pair cache survives — same manager, same facts).
  void setBackend(sat::BackendKind kind);
  [[nodiscard]] sat::BackendKind backendKind() const { return kind_; }

  /// Resolution of the policy to ONE engine, for enumeration/trace paths
  /// that keep private per-call state (all-SAT blocking clauses, trace
  /// steps) where racing would double the bookkeeping for no information:
  /// Circuit stays Circuit, Auto follows the EWMA winner, Race and Cnf
  /// resolve to Cnf.
  [[nodiscard]] sat::BackendKind soloKind() const;

  /// Generational staleness control. A run-long clause database
  /// accumulates the cones of every iteration; shared variables (state
  /// PIs) collect watchers from all of them, so per-query propagation
  /// cost grows with run length even under decision focusing. When the
  /// number of encoded AND nodes exceeds max(minEncoded, ratio ×
  /// liveNodes), the solver and CNF are rebuilt empty — but the
  /// proven/refuted pair cache SURVIVES (the manager identity is
  /// unchanged, so the facts remain valid); re-encountered equivalences
  /// still skip SAT. Returns true when a recycle happened.
  bool recycleIfBloated(std::size_t liveNodes, double ratio = 2.0,
                        std::size_t minEncoded = 1000);

  /// Rebinds to `newMgr` after a compaction, carrying the pair cache
  /// across the NodeId change: `transferMap` is the (old NodeId → new
  /// literal) relation Aig::transferFrom reported, facts about
  /// transferred nodes are rewritten through it, facts about dropped
  /// scratch nodes are discarded. The solver and CNF restart empty (their
  /// variables are unsalvageable), but re-encountered compare points
  /// still skip SAT — compaction no longer costs the learned history.
  void rebindRemapped(
      const aig::Aig& newMgr,
      std::span<const std::pair<aig::NodeId, aig::Lit>> transferMap);

  /// The live CNF solver / encoder. Precondition: bind() has been called
  /// and the CNF engine is part of the policy (hasCnf()).
  [[nodiscard]] sat::Solver& solver() { return *solver_; }
  [[nodiscard]] cnf::AigCnf& cnf() { return *cnf_; }
  [[nodiscard]] bool hasCnf() const { return cnf_ != nullptr; }

  /// The live circuit solver (policy circuit/race/auto). Precondition:
  /// bind() has been called and hasCircuit().
  [[nodiscard]] sat::CircuitSolver& circuitSolver() { return *circuit_; }
  [[nodiscard]] const sat::CircuitSolver& circuitSolver() const {
    return *circuit_;
  }
  [[nodiscard]] bool hasCircuit() const { return circuit_ != nullptr; }

  // ----- backend-routed queries -----------------------------------------
  // The sweeping/quantification layers ask through these instead of
  // touching cnf()/solver() directly; the context races or routes per the
  // policy and keeps the per-query winner statistics.

  /// Prepares both engines for queries rooted at `roots` (CNF: encode +
  /// focusDecisions; circuit: justification focus).
  void focusOn(std::span<const aig::Lit> roots);

  [[nodiscard]] cnf::Verdict checkEquiv(aig::Lit a, aig::Lit b,
                                        std::int64_t budget = -1);
  [[nodiscard]] cnf::Verdict checkImplies(aig::Lit a, aig::Lit b,
                                          std::int64_t budget = -1);
  [[nodiscard]] cnf::Verdict checkConstant(aig::Lit a, bool value,
                                           std::int64_t budget = -1);
  [[nodiscard]] cnf::Verdict checkSat(aig::Lit f, std::int64_t budget = -1);
  [[nodiscard]] cnf::Verdict checkEquivUnderCare(aig::Lit notRef, aig::Lit a,
                                                 aig::Lit b,
                                                 std::int64_t budget = -1);

  /// Model of the backend that answered the last definitive query.
  [[nodiscard]] bool modelOf(aig::VarId v) const;

  /// Records a proven equivalence / constant as solver facts on every
  /// live engine (the circuit side learns for free; the CNF side only
  /// when both nodes are already encoded or it is the primary engine —
  /// a learned fact must never force an encode the policy avoided).
  void learnEquiv(aig::Lit a, aig::Lit b);
  void learnConstant(aig::Lit a, bool value);

  // ----- DC benefit feedback --------------------------------------------
  // Run-level controller for the quantifier's §2.2 phase: dcSimplify
  // outcomes feed an exponentially weighted shrink ratio; while the phase
  // is not reducing cones the quantifier skips it, re-probing every 16th
  // opportunity so a workload shift can turn it back on. The state
  // deliberately survives rebinds/compactions — it describes the
  // workload, not the manager.

  /// Reports one dcSimplify outcome (target cone sizes before/after).
  void noteDcOutcome(std::size_t before, std::size_t after);

  /// Should the next dcSimplify run? (Always true before enough samples.)
  [[nodiscard]] bool shouldAttemptDc();

  /// Reports one ODC phase outcome. ODC validation checks are global
  /// equivalence proofs over fRef ∨ fTgt — brutally expensive on
  /// XOR-rich cones (multipliers) where they essentially never accept,
  /// and load-bearing on counter/queue-style cones where they do.
  void noteOdcOutcome(std::size_t attempts, std::size_t accepted);

  /// Should the next dcSimplify run its ODC phase?
  [[nodiscard]] bool shouldAttemptOdc();

  // ----- candidate-pair cache -------------------------------------------

  enum class PairFact : std::uint8_t { Unknown, Proven, Refuted };

  /// Cached verdict for "a ≡ b" (complement-normalized, symmetric).
  PairFact lookupPair(aig::Lit a, aig::Lit b);
  void recordProven(aig::Lit a, aig::Lit b);
  void recordRefuted(aig::Lit a, aig::Lit b);

  struct Counters {
    std::uint64_t rebinds = 0;      ///< sessions retired by identity change
    std::uint64_t recycles = 0;     ///< solvers retired by staleness
    std::uint64_t remaps = 0;       ///< caches carried across compactions
    std::uint64_t lookups = 0;      ///< pair-cache queries
    std::uint64_t hitsProven = 0;   ///< queries answered Proven
    std::uint64_t hitsRefuted = 0;  ///< queries answered Refuted
    std::uint64_t cnfWins = 0;      ///< queries answered by the CNF engine
    std::uint64_t circuitWins = 0;  ///< queries answered by the circuit engine
    std::uint64_t raceWastedNs = 0;  ///< loser time burned by racing
    std::uint64_t disagreements = 0;  ///< definitive verdict mismatches
  };
  [[nodiscard]] const Counters& counters() const { return counters_; }
  [[nodiscard]] std::size_t cacheSize() const { return pairFacts_.size(); }

  // ----- cumulative SAT effort (includes retired solvers) ----------------

  [[nodiscard]] std::uint64_t totalConflicts() const;
  [[nodiscard]] std::uint64_t totalDecisions() const;
  [[nodiscard]] std::uint64_t totalPropagations() const;

  /// Adds the session's counters into an engine stats bag under the
  /// canonical names (sat.conflicts/decisions/propagations,
  /// sweep.cache_lookups/_hits_proven/_hits_refuted, sweep.session_rebinds).
  void exportStats(obs::Metrics& stats) const;

 private:
  static std::uint64_t pairKey(aig::Lit a, aig::Lit b);

  /// Retires the current engines' effort counters and rebuilds the
  /// policy's engine set bound to `aig` (shared tail of bind / recycle /
  /// remap / setBackend).
  void retireAndRebuild(const aig::Aig& aig);
  void retireCnfEngine();
  void retireCircuitEngine();

  // Per-query routing (q runs the semantic check on one engine).
  using Query = std::function<cnf::Verdict(sat::SatBackend&)>;
  cnf::Verdict runQuery(const Query& q);
  cnf::Verdict runOn(bool onCircuit, const Query& q);
  cnf::Verdict runRaced(const Query& q);
  void noteBackendSample(bool onCircuit, double ns);
  void applyFocus(bool onCircuit);

  const aig::Aig* aig_ = nullptr;
  std::uint64_t uid_ = 0;
  sat::BackendKind kind_ = sat::BackendKind::Cnf;
  std::unique_ptr<sat::Solver> solver_;
  std::unique_ptr<cnf::AigCnf> cnf_;
  std::unique_ptr<cnf::CnfSolverBackend> cnfBackend_;  // wraps solver_+cnf_
  std::unique_ptr<sat::CircuitSolver> circuit_;
  sat::SatBackend* lastModel_ = nullptr;
  std::unordered_map<std::uint64_t, bool> pairFacts_;  // key -> proven?
  std::function<bool()> interrupt_;
  Counters counters_;

  // Deferred focus roots: applied per backend just before it runs a
  // query, so the CNF side never encodes cones for circuit-routed work.
  std::vector<aig::Lit> pendingFocus_;
  bool focusPending_ = false;
  bool cnfFocusStale_ = false;
  bool circuitFocusStale_ = false;

  // Per-backend query-time EWMA ([0]=cnf, [1]=circuit; exported stats)
  // and the paired log(cnf/circuit) ratio EWMA that actually steers the
  // `auto` policy, both seeded by racing the first queries.
  double backendEwmaNs_[2] = {0.0, 0.0};
  double backendLogRatioEwma_ = 0.0;
  std::uint64_t backendSamples_[2] = {0, 0};
  std::uint32_t backendProbeTick_ = 0;
  std::uint64_t retiredConflicts_ = 0;
  std::uint64_t retiredDecisions_ = 0;
  std::uint64_t retiredPropagations_ = 0;

  double dcShrinkEwma_ = 1.0;
  std::uint64_t dcSamples_ = 0;
  std::uint32_t dcProbeTick_ = 0;

  double odcAcceptEwma_ = 1.0;
  std::uint64_t odcSamples_ = 0;
  std::uint32_t odcProbeTick_ = 0;
};

}  // namespace cbq::sweep

#include "sweep/sweeper.hpp"

#include <algorithm>
#include <unordered_map>

#include "audit/audit.hpp"
#include "bdd/bdd.hpp"
#include "cnf/aig_cnf.hpp"
#include "obs/tracer.hpp"
#include "sat/solver.hpp"
#include "sweep/signatures.hpp"
#include "sweep/sweep_context.hpp"
#include "sweep/union_find.hpp"
#include "util/random.hpp"
#include "util/thread_pool.hpp"

namespace cbq::sweep {

namespace {

using aig::Lit;
using aig::NodeId;
using aig::VarId;

/// Nodes reachable from `roots` when merges in `mergeMap` are applied —
/// backward mode skips compare points that merging has already detached.
/// Returned as a node-indexed flag vector.
std::vector<std::uint8_t> referencedNodes(const aig::Aig& aig,
                                          std::span<const Lit> roots,
                                          const aig::NodeMap& mergeMap) {
  std::vector<std::uint8_t> seen(aig.numNodes(), 0);
  std::vector<NodeId> stack;
  for (const Lit r : roots) stack.push_back(r.node());
  while (!stack.empty()) {
    const NodeId n = stack.back();
    stack.pop_back();
    if (seen[n] != 0) continue;
    seen[n] = 1;
    if (mergeMap.contains(n)) {
      stack.push_back(mergeMap.at(n).node());
    } else if (aig.isAnd(n)) {
      stack.push_back(aig.fanin0(n).node());
      stack.push_back(aig.fanin1(n).node());
    }
  }
  return seen;
}

}  // namespace

SweepResult sweep(aig::Aig& aig, std::span<const Lit> roots,
                  const SweepOptions& opts) {
  CBQ_OBS_SPAN("sweep", "sweep");
  SweepResult out;
  out.roots.assign(roots.begin(), roots.end());
  const auto order = aig.coneAnds(roots);
  out.stats.nodesBefore = order.size();
  if (order.empty()) {
    out.stats.nodesAfter = 0;
    return out;
  }
  const auto support = aig.supportVars(roots);

  util::Random rng(opts.seed);
  const int initialWords = std::max(opts.numWords, 1);
  const int maxWords = opts.maxWords > 0
                           ? opts.maxWords
                           : initialWords + std::max(opts.maxRounds, 0);
  Signatures sigs(aig, order, support, rng, initialWords, maxWords,
                  opts.pool);

  // Candidate pool: PIs first (they can only be representatives), then AND
  // nodes in topological order, so every merge points at a topologically
  // earlier node and the final rebuild map is acyclic.
  std::vector<NodeId> pool;
  pool.reserve(support.size() + order.size());
  for (const VarId v : support) pool.push_back(aig.piNodeOf(v));
  pool.insert(pool.end(), order.begin(), order.end());

  // No SAT checks grow the manager before the final rebuild, so these
  // node-indexed scratch vectors stay correctly sized for the whole run.
  aig::NodeMap mergeMap;
  std::vector<std::uint8_t> disqualified(aig.numNodes(), 0);

  // Persistent session: shared solver + CNF + pair cache when the caller
  // provides one, private throwaway session otherwise. A clause database
  // that has grown far beyond this sweep's own cone would make every
  // check below propagate through stale cones — recycle it first (the
  // pair cache survives; it is what carries the cross-call wins).
  SweepContext localCtx;
  SweepContext* ctx = opts.context != nullptr ? opts.context : &localCtx;
  if (opts.context == nullptr) localCtx.setBackend(opts.satBackend);
  ctx->bind(aig);
  ctx->recycleIfBloated(order.size() + support.size());

  // ----- layer 2: BDD sweeping -------------------------------------------
  if (opts.useBdd && opts.bddNodeLimit > 0) {
    bdd::BddManager bm(opts.bddNodeLimit);
    std::vector<bdd::BddRef> nodeBdd(aig.numNodes(), bdd::kFalseBdd);
    std::vector<bool> hasBdd(aig.numNodes(), false);
    nodeBdd[0] = bdd::kFalseBdd;
    hasBdd[0] = true;
    for (const VarId v : support) {
      const NodeId p = aig.piNodeOf(v);
      try {
        nodeBdd[p] = bm.var(v);
        hasBdd[p] = true;
      } catch (const bdd::NodeLimitExceeded&) {
        break;
      }
    }
    for (const NodeId n : order) {
      const Lit f0 = aig.fanin0(n);
      const Lit f1 = aig.fanin1(n);
      if (!hasBdd[f0.node()] || !hasBdd[f1.node()]) continue;
      try {
        const bdd::BddRef a =
            f0.negated() ? bm.bddNot(nodeBdd[f0.node()]) : nodeBdd[f0.node()];
        const bdd::BddRef b =
            f1.negated() ? bm.bddNot(nodeBdd[f1.node()]) : nodeBdd[f1.node()];
        nodeBdd[n] = bm.bddAnd(a, b);
        hasBdd[n] = true;
      } catch (const bdd::NodeLimitExceeded&) {
        // This cone is too wide for the budget; fanouts drop out too.
      }
    }
    // Pointer-equality detection (modulo complement) in pool order. Every
    // merge is a proven equivalence — feed the session's pair cache so a
    // later round (or call) whose BDD layer blows the limit still knows.
    std::unordered_map<bdd::BddRef, Lit> bddRep;
    for (const NodeId n : pool) {
      if (!hasBdd[n]) continue;
      const bdd::BddRef b = nodeBdd[n];
      if (aig.isAnd(n)) {
        if (b == bdd::kFalseBdd || b == bdd::kTrueBdd) {
          const Lit target = b == bdd::kTrueBdd ? aig::kTrue : aig::kFalse;
          mergeMap.set(n, target);
          ctx->recordProven(Lit(n, false), target);
          ++out.stats.constMerges;
          continue;
        }
        if (auto it = bddRep.find(b); it != bddRep.end()) {
          mergeMap.set(n, it->second);
          ctx->recordProven(Lit(n, false), it->second);
          ++out.stats.bddMerges;
          continue;
        }
        bdd::BddRef nb;
        try {
          nb = bm.bddNot(b);
        } catch (const bdd::NodeLimitExceeded&) {
          bddRep.emplace(b, Lit(n, false));
          continue;
        }
        if (auto it = bddRep.find(nb); it != bddRep.end()) {
          mergeMap.set(n, !it->second);
          ctx->recordProven(Lit(n, false), !it->second);
          ++out.stats.bddMerges;
          continue;
        }
      }
      bddRep.emplace(b, Lit(n, false));
    }
  }

  // ----- layer 3: SAT sweeping with cex-guided refinement ------------------
  // Every compare point lives inside the cones of `roots`, and the manager
  // does not grow before the final rebuild — one focus call covers every
  // check of this sweep even when the session's database holds the whole
  // run's history. The context routes each check to the engine(s) its
  // policy selects (CNF, circuit-native, race or EWMA auto).
  if (opts.useSat) ctx->focusOn(roots);

  auto learn = [&](Lit a, Lit b) {
    if (!opts.learnEquivalences) return;
    ctx->learnEquiv(a, b);
  };

  struct EquivClass {
    Lit rep;                      // representative literal (phase-adjusted)
    std::vector<NodeId> members;  // candidate nodes, pool order
    std::uint32_t maxLevel = 0;
    bool constant = false;        // class of constant candidates
    bool constValue = false;
  };

  // Per-slot normalization phase, valid for the current round's classes.
  std::vector<std::uint8_t> phaseOf(pool.size(), 0);

  // NodeId → pool slot, built once (the pool is fixed across rounds).
  constexpr std::uint32_t kNoSlot = 0xffffffffu;
  std::vector<std::uint32_t> slotOf(aig.numNodes(), kNoSlot);
  for (std::uint32_t slot = 0; slot < pool.size(); ++slot)
    slotOf[pool[slot]] = slot;

  bool interrupted = false;
  for (int round = 0;
       opts.useSat && !interrupted && round < opts.maxRounds; ++round) {
    CBQ_OBS_SPAN("sweep", "refine-round");
    ++out.stats.rounds;

    // Build candidate classes from the current signatures: a dense
    // union-find over pool slots keyed by 64-bit mixed hashes, with exact
    // signature comparison refereeing hash collisions. The refinement is
    // sharded: equal normalized signatures have equal hashes, so a whole
    // class lands in one hash-indexed shard, shards are refereed in
    // parallel, and a serial shard-order merge reproduces EXACTLY the
    // unite edges of the old single-threaded scan — partitions and class
    // IDs are thread-count-independent by construction.
    std::vector<std::uint8_t> referenced;
    if (opts.backward) referenced = referencedNodes(aig, roots, mergeMap);

    UnionFind uf(pool.size());
    std::vector<EquivClass> classes;
    std::vector<std::uint8_t> active(pool.size(), 0);

    // Phase 1 (serial, pool order): filter candidates.
    std::vector<std::uint32_t> cand;
    cand.reserve(pool.size());
    for (std::uint32_t slot = 0; slot < pool.size(); ++slot) {
      const NodeId n = pool[slot];
      if (mergeMap.contains(n) || disqualified[n] != 0) continue;
      if (opts.backward && referenced[n] == 0) {
        if (aig.isAnd(n)) ++out.stats.skippedUnreferenced;
        continue;
      }
      cand.push_back(slot);
    }

    // Phase 2 (parallel over candidates, disjoint per-slot writes):
    // constant detection and normalized class keys.
    std::vector<std::uint64_t> hashOf(pool.size(), 0);
    std::vector<std::uint8_t> constKind(pool.size(), 0);  // 1=zero, 2=one
    {
      auto body = [&](std::size_t begin, std::size_t end, int) {
        for (std::size_t i = begin; i < end; ++i) {
          const std::uint32_t slot = cand[i];
          const NodeId n = pool[slot];
          if (aig.isAnd(n)) {
            if (sigs.allZero(n)) {
              constKind[slot] = 1;
              continue;
            }
            if (sigs.allOne(n)) {
              constKind[slot] = 2;
              continue;
            }
          }
          const Signatures::Key key = sigs.normalizedKey(n);
          hashOf[slot] = key.hash;
          phaseOf[slot] = key.phase ? 1 : 0;
        }
      };
      if (opts.pool != nullptr)
        opts.pool->parallelFor(cand.size(), 512, body);
      else
        body(0, cand.size(), 0);
    }

    // Phase 3 (serial, pool order): const classes keep their original
    // position — interleaved ahead of the gathered classes — and the
    // remaining candidates are bucketed by hash into a FIXED number of
    // shards (independent of thread count), preserving pool order inside
    // each shard.
    constexpr std::size_t kNumShards = 64;
    std::vector<std::vector<std::uint32_t>> shard(kNumShards);
    for (const std::uint32_t slot : cand) {
      const NodeId n = pool[slot];
      if (constKind[slot] != 0) {
        EquivClass cls;
        cls.rep = constKind[slot] == 2 ? aig::kTrue : aig::kFalse;
        cls.members = {n};
        cls.maxLevel = aig.level(n);
        cls.constant = true;
        cls.constValue = constKind[slot] == 2;
        classes.push_back(std::move(cls));
        continue;
      }
      active[slot] = 1;
      shard[hashOf[slot] >> 58].push_back(slot);
    }

    // Phase 4 (parallel over shards): per-shard leader chains with exact
    // comparison refereeing collisions; matches are recorded as unite
    // edges. The leader of an equal-signature group is its pool-first
    // member both globally and in-shard (the whole group shares one
    // shard), so the edge set equals the serial scan's.
    std::vector<std::vector<std::pair<std::uint32_t, std::uint32_t>>>
        unites(kNumShards);
    {
      auto body = [&](std::size_t begin, std::size_t end, int) {
        std::unordered_map<std::uint64_t, std::vector<std::uint32_t>>
            leaders;
        for (std::size_t s = begin; s < end; ++s) {
          leaders.clear();
          leaders.reserve(shard[s].size());
          for (const std::uint32_t slot : shard[s]) {
            auto& chain = leaders[hashOf[slot]];
            bool matched = false;
            for (const std::uint32_t leader : chain) {
              if (sigs.equalNormalized(pool[slot], phaseOf[slot] != 0,
                                       pool[leader], phaseOf[leader] != 0)) {
                unites[s].emplace_back(leader, slot);
                matched = true;
                break;
              }
            }
            if (!matched) chain.push_back(slot);
          }
        }
      };
      if (opts.pool != nullptr)
        opts.pool->parallelFor(kNumShards, 1, body);
      else
        body(0, kNumShards, 0);
    }
    for (const auto& edges : unites)
      for (const auto& [leader, slot] : edges) uf.unite(leader, slot);
    CBQ_AUDIT_CHECK("sweep.unite", audit::auditUnionFind(uf));

    // Gather union-find trees into member lists (pool order ⇒ members are
    // topologically ordered and the root is the earliest).
    std::unordered_map<std::uint32_t, std::size_t> classOfRoot;
    for (std::uint32_t slot = 0; slot < pool.size(); ++slot) {
      if (active[slot] == 0) continue;
      const std::uint32_t root = uf.find(slot);
      auto [it, inserted] = classOfRoot.emplace(root, classes.size());
      if (inserted) {
        EquivClass cls;
        cls.rep = Lit(pool[root], false) ^ (phaseOf[root] != 0);
        classes.push_back(std::move(cls));
      }
      auto& cls = classes[it->second];
      cls.members.push_back(pool[slot]);
      cls.maxLevel = std::max(cls.maxLevel, aig.level(pool[slot]));
    }

    // Processing order: forward = natural (class of earliest rep first);
    // backward = classes containing the highest nodes first.
    std::vector<std::size_t> clsOrder(classes.size());
    for (std::size_t i = 0; i < clsOrder.size(); ++i) clsOrder[i] = i;
    if (opts.backward) {
      std::stable_sort(clsOrder.begin(), clsOrder.end(),
                       [&](std::size_t a, std::size_t b) {
                         return classes[a].maxLevel > classes[b].maxLevel;
                       });
    }

    std::vector<std::uint64_t> cexBits(support.size(), 0);
    int cexCount = 0;

    for (const std::size_t ci : clsOrder) {
      if (interrupted) break;
      auto& cls = classes[ci];
      const std::size_t begin = cls.constant ? 0 : 1;
      if (cls.members.size() <= begin) continue;

      std::vector<NodeId> members(cls.members.begin() +
                                      static_cast<std::ptrdiff_t>(begin),
                                  cls.members.end());
      if (opts.backward) std::reverse(members.begin(), members.end());

      for (const NodeId m : members) {
        if (opts.interrupt && opts.interrupt()) {
          interrupted = true;  // rebuild with the merges proven so far
          break;
        }
        if (cexCount >= 64) break;  // next round will pick the rest up
        if (mergeMap.contains(m) || disqualified[m] != 0) continue;

        Lit target;
        if (cls.constant) {
          target = cls.constValue ? aig::kTrue : aig::kFalse;
        } else {
          // Relative phase of m against the normalized class function.
          target = cls.rep ^ (phaseOf[slotOf[m]] != 0);
        }

        // Session pair cache first: facts proven or refuted in ANY earlier
        // round/call on this manager skip the solver entirely.
        switch (ctx->lookupPair(Lit(m, false), target)) {
          case SweepContext::PairFact::Proven: {
            mergeMap.set(m, target);
            ++out.stats.cacheHitsProven;
            if (cls.constant)
              ++out.stats.constMerges;
            else
              ++out.stats.satMerges;
            continue;
          }
          case SweepContext::PairFact::Refuted:
            // Not equivalent — and the distinguishing pattern was already
            // folded into some earlier signature word, so no re-split is
            // needed; just leave m unmerged.
            ++out.stats.cacheHitsRefuted;
            continue;
          case SweepContext::PairFact::Unknown:
            break;
        }

        cnf::Verdict verdict;
        if (cls.constant) {
          verdict = ctx->checkConstant(Lit(m, false), cls.constValue,
                                       opts.satBudget);
        } else {
          verdict = ctx->checkEquiv(Lit(m, false), target, opts.satBudget);
        }
        ++out.stats.satChecks;

        switch (verdict) {
          case cnf::Verdict::Holds: {
            mergeMap.set(m, target);
            ctx->recordProven(Lit(m, false), target);
            if (cls.constant) {
              ++out.stats.constMerges;
              if (opts.learnEquivalences)
                ctx->learnConstant(Lit(m, false), cls.constValue);
            } else {
              ++out.stats.satMerges;
              learn(Lit(m, false), target);
            }
            break;
          }
          case cnf::Verdict::Fails: {
            ++out.stats.satRefuted;
            ctx->recordRefuted(Lit(m, false), target);
            for (std::size_t i = 0; i < support.size(); ++i) {
              const std::uint64_t bit = ctx->modelOf(support[i]) ? 1 : 0;
              cexBits[i] |= bit << cexCount;
            }
            ++cexCount;
            break;
          }
          case cnf::Verdict::Unknown: {
            ++out.stats.satUnknown;
            disqualified[m] = 1;
            break;
          }
        }
      }
    }

    if (interrupted || cexCount == 0) break;  // stable or stopped early
    // A full arena refuses the append: the distinguishing patterns are
    // lost, but the round loop stays sound — refuted pairs are skipped
    // via the session cache, so later rounds still make proof progress.
    if (!sigs.appendWord(cexBits, cexCount, rng)) ++out.stats.arenaFull;
  }

  out.roots = aig.rebuildWithNodeMap(roots, mergeMap);
  CBQ_AUDIT_CHECK("sweep.merge", audit::auditAig(aig));
  out.stats.nodesAfter = aig.coneSize(out.roots);
  return out;
}

}  // namespace cbq::sweep

#include "sweep/sweeper.hpp"

#include <algorithm>
#include <string>
#include <unordered_map>

#include "bdd/bdd.hpp"
#include "cnf/aig_cnf.hpp"
#include "sat/solver.hpp"
#include "util/random.hpp"

namespace cbq::sweep {

namespace {

using aig::Lit;
using aig::NodeId;
using aig::VarId;

std::uint64_t negMask(bool b) { return b ? ~std::uint64_t{0} : 0; }

/// Multi-word signatures for every node in the cone. PI patterns are kept
/// in flat vectors parallel to the (sorted) support array — no per-lookup
/// hashing anywhere on the resimulation path.
class Signatures {
 public:
  Signatures(const aig::Aig& aig, std::span<const NodeId> order,
             std::span<const VarId> support, util::Random& rng, int words)
      : aig_(&aig),
        order_(order.begin(), order.end()),
        support_(support.begin(), support.end()),
        piWords_(support.size()) {
    for (auto& w : piWords_) {
      w.resize(static_cast<std::size_t>(words));
      for (auto& x : w) x = rng.next64();
    }
    resimulate();
  }

  /// Appends one simulation word per PI: bit j of `cexBits[i]` (parallel
  /// to the support array) is the j-th stored counterexample value;
  /// unused bits are random noise.
  void appendWord(std::span<const std::uint64_t> cexBits, int cexCount,
                  util::Random& rng) {
    const std::uint64_t keepMask =
        cexCount >= 64 ? ~std::uint64_t{0}
                       : ((std::uint64_t{1} << cexCount) - 1);
    for (std::size_t i = 0; i < piWords_.size(); ++i) {
      std::uint64_t word = rng.next64() & ~keepMask;
      word |= cexBits[i] & keepMask;
      piWords_[i].push_back(word);
    }
    resimulate();
  }

  [[nodiscard]] const std::vector<std::uint64_t>& of(NodeId n) const {
    return sig_[n];
  }

  /// Complement-normalized signature as an exact hash key, plus the phase
  /// that was applied (true = signature was complemented).
  [[nodiscard]] std::pair<std::string, bool> normalizedKey(NodeId n) const {
    const auto& s = sig_[n];
    const bool phase = (s[0] & 1) != 0;
    std::string key;
    key.reserve(s.size() * sizeof(std::uint64_t));
    for (std::uint64_t w : s) {
      if (phase) w = ~w;
      key.append(reinterpret_cast<const char*>(&w), sizeof(w));
    }
    return {std::move(key), phase};
  }

  [[nodiscard]] bool allZero(NodeId n) const {
    for (const std::uint64_t w : sig_[n])
      if (w != 0) return false;
    return true;
  }
  [[nodiscard]] bool allOne(NodeId n) const {
    for (const std::uint64_t w : sig_[n])
      if (w != ~std::uint64_t{0}) return false;
    return true;
  }

 private:
  void resimulate() {
    const std::size_t words =
        piWords_.empty() ? 1 : piWords_.front().size();
    sig_.assign(aig_->numNodes(), {});
    sig_[0].assign(words, 0);  // constant node
    for (std::size_t i = 0; i < support_.size(); ++i)
      sig_[aig_->piNodeOf(support_[i])] = piWords_[i];
    for (const NodeId n : order_) {
      const Lit f0 = aig_->fanin0(n);
      const Lit f1 = aig_->fanin1(n);
      auto& out = sig_[n];
      out.resize(words);
      const auto& a = sig_[f0.node()];
      const auto& b = sig_[f1.node()];
      for (std::size_t w = 0; w < words; ++w) {
        out[w] = (a[w] ^ negMask(f0.negated())) &
                 (b[w] ^ negMask(f1.negated()));
      }
    }
  }

  const aig::Aig* aig_;
  std::vector<NodeId> order_;
  std::vector<VarId> support_;
  std::vector<std::vector<std::uint64_t>> piWords_;  // parallel to support_
  std::vector<std::vector<std::uint64_t>> sig_;
};

/// Nodes reachable from `roots` when merges in `mergeMap` are applied —
/// backward mode skips compare points that merging has already detached.
/// Returned as a node-indexed flag vector.
std::vector<std::uint8_t> referencedNodes(const aig::Aig& aig,
                                          std::span<const Lit> roots,
                                          const aig::NodeMap& mergeMap) {
  std::vector<std::uint8_t> seen(aig.numNodes(), 0);
  std::vector<NodeId> stack;
  for (const Lit r : roots) stack.push_back(r.node());
  while (!stack.empty()) {
    const NodeId n = stack.back();
    stack.pop_back();
    if (seen[n] != 0) continue;
    seen[n] = 1;
    if (mergeMap.contains(n)) {
      stack.push_back(mergeMap.at(n).node());
    } else if (aig.isAnd(n)) {
      stack.push_back(aig.fanin0(n).node());
      stack.push_back(aig.fanin1(n).node());
    }
  }
  return seen;
}

}  // namespace

SweepResult sweep(aig::Aig& aig, std::span<const Lit> roots,
                  const SweepOptions& opts) {
  SweepResult out;
  out.roots.assign(roots.begin(), roots.end());
  const auto order = aig.coneAnds(roots);
  out.stats.nodesBefore = order.size();
  if (order.empty()) {
    out.stats.nodesAfter = 0;
    return out;
  }
  const auto support = aig.supportVars(roots);

  util::Random rng(opts.seed);
  Signatures sigs(aig, order, support, rng, std::max(opts.numWords, 1));

  // Candidate pool: PIs first (they can only be representatives), then AND
  // nodes in topological order, so every merge points at a topologically
  // earlier node and the final rebuild map is acyclic.
  std::vector<NodeId> pool;
  pool.reserve(support.size() + order.size());
  for (const VarId v : support) pool.push_back(aig.piNodeOf(v));
  pool.insert(pool.end(), order.begin(), order.end());

  // No SAT checks grow the manager before the final rebuild, so these
  // node-indexed scratch vectors stay correctly sized for the whole run.
  aig::NodeMap mergeMap;
  std::vector<std::uint8_t> disqualified(aig.numNodes(), 0);

  // ----- layer 2: BDD sweeping -------------------------------------------
  if (opts.useBdd && opts.bddNodeLimit > 0) {
    bdd::BddManager bm(opts.bddNodeLimit);
    std::vector<bdd::BddRef> nodeBdd(aig.numNodes(), bdd::kFalseBdd);
    std::vector<bool> hasBdd(aig.numNodes(), false);
    nodeBdd[0] = bdd::kFalseBdd;
    hasBdd[0] = true;
    for (const VarId v : support) {
      const NodeId p = aig.piNodeOf(v);
      try {
        nodeBdd[p] = bm.var(v);
        hasBdd[p] = true;
      } catch (const bdd::NodeLimitExceeded&) {
        break;
      }
    }
    for (const NodeId n : order) {
      const Lit f0 = aig.fanin0(n);
      const Lit f1 = aig.fanin1(n);
      if (!hasBdd[f0.node()] || !hasBdd[f1.node()]) continue;
      try {
        const bdd::BddRef a =
            f0.negated() ? bm.bddNot(nodeBdd[f0.node()]) : nodeBdd[f0.node()];
        const bdd::BddRef b =
            f1.negated() ? bm.bddNot(nodeBdd[f1.node()]) : nodeBdd[f1.node()];
        nodeBdd[n] = bm.bddAnd(a, b);
        hasBdd[n] = true;
      } catch (const bdd::NodeLimitExceeded&) {
        // This cone is too wide for the budget; fanouts drop out too.
      }
    }
    // Pointer-equality detection (modulo complement) in pool order.
    std::unordered_map<bdd::BddRef, Lit> bddRep;
    for (const NodeId n : pool) {
      if (!hasBdd[n]) continue;
      const bdd::BddRef b = nodeBdd[n];
      if (aig.isAnd(n)) {
        if (b == bdd::kFalseBdd || b == bdd::kTrueBdd) {
          mergeMap.set(n, b == bdd::kTrueBdd ? aig::kTrue : aig::kFalse);
          ++out.stats.constMerges;
          continue;
        }
        if (auto it = bddRep.find(b); it != bddRep.end()) {
          mergeMap.set(n, it->second);
          ++out.stats.bddMerges;
          continue;
        }
        bdd::BddRef nb;
        try {
          nb = bm.bddNot(b);
        } catch (const bdd::NodeLimitExceeded&) {
          bddRep.emplace(b, Lit(n, false));
          continue;
        }
        if (auto it = bddRep.find(nb); it != bddRep.end()) {
          mergeMap.set(n, !it->second);
          ++out.stats.bddMerges;
          continue;
        }
      }
      bddRep.emplace(b, Lit(n, false));
    }
  }

  // ----- layer 3: SAT sweeping with cex-guided refinement ------------------
  sat::Solver solver;
  cnf::AigCnf cnf(aig, solver);

  auto learn = [&](Lit a, Lit b) {
    if (!opts.learnEquivalences) return;
    const sat::Lit la = cnf.litFor(a);
    const sat::Lit lb = cnf.litFor(b);
    solver.addClause({!la, lb});
    solver.addClause({la, !lb});
  };

  struct EquivClass {
    Lit rep;                      // representative literal (phase-adjusted)
    std::vector<NodeId> members;  // candidate nodes, pool order
    std::uint32_t maxLevel = 0;
    bool constant = false;        // class of constant candidates
    bool constValue = false;
  };

  bool interrupted = false;
  for (int round = 0;
       opts.useSat && !interrupted && round < opts.maxRounds; ++round) {
    ++out.stats.rounds;

    // Build candidate classes from the current signatures.
    std::unordered_map<std::string, std::size_t> classIndex;
    std::vector<EquivClass> classes;
    std::vector<std::uint8_t> referenced;
    if (opts.backward) referenced = referencedNodes(aig, roots, mergeMap);

    for (const NodeId n : pool) {
      if (mergeMap.contains(n) || disqualified[n] != 0) continue;
      if (opts.backward && referenced[n] == 0) {
        if (aig.isAnd(n)) ++out.stats.skippedUnreferenced;
        continue;
      }
      if (aig.isAnd(n) && (sigs.allZero(n) || sigs.allOne(n))) {
        // Candidate constant node.
        EquivClass cls;
        cls.rep = sigs.allOne(n) ? aig::kTrue : aig::kFalse;
        cls.members = {n};
        cls.maxLevel = aig.level(n);
        cls.constant = true;
        cls.constValue = sigs.allOne(n);
        classes.push_back(std::move(cls));
        continue;
      }
      auto [key, phase] = sigs.normalizedKey(n);
      if (auto it = classIndex.find(key); it != classIndex.end()) {
        auto& cls = classes[it->second];
        // Member literal must equal rep ^ relativePhase; rep was stored
        // with its own normalization phase folded in.
        cls.members.push_back(n);
        cls.maxLevel = std::max(cls.maxLevel, aig.level(n));
      } else {
        EquivClass cls;
        cls.rep = Lit(n, false) ^ phase;  // normalized function
        cls.members = {n};
        cls.maxLevel = aig.level(n);
        classIndex.emplace(std::move(key), classes.size());
        classes.push_back(std::move(cls));
      }
    }

    // Processing order: forward = natural (class of earliest rep first);
    // backward = classes containing the highest nodes first.
    std::vector<std::size_t> clsOrder(classes.size());
    for (std::size_t i = 0; i < clsOrder.size(); ++i) clsOrder[i] = i;
    if (opts.backward) {
      std::stable_sort(clsOrder.begin(), clsOrder.end(),
                       [&](std::size_t a, std::size_t b) {
                         return classes[a].maxLevel > classes[b].maxLevel;
                       });
    }

    std::vector<std::uint64_t> cexBits(support.size(), 0);
    int cexCount = 0;

    for (const std::size_t ci : clsOrder) {
      if (interrupted) break;
      auto& cls = classes[ci];
      const std::size_t begin = cls.constant ? 0 : 1;
      if (cls.members.size() <= begin) continue;

      std::vector<NodeId> members(cls.members.begin() +
                                      static_cast<std::ptrdiff_t>(begin),
                                  cls.members.end());
      if (opts.backward) std::reverse(members.begin(), members.end());

      for (const NodeId m : members) {
        if (opts.interrupt && opts.interrupt()) {
          interrupted = true;  // rebuild with the merges proven so far
          break;
        }
        if (cexCount >= 64) break;  // next round will pick the rest up
        if (mergeMap.contains(m) || disqualified[m] != 0) continue;

        cnf::Verdict verdict;
        Lit target;
        if (cls.constant) {
          verdict = cnf::checkConstant(cnf, Lit(m, false), cls.constValue,
                                       opts.satBudget);
          target = cls.constValue ? aig::kTrue : aig::kFalse;
        } else {
          // Relative phase of m against the normalized class function.
          auto [key, phase] = sigs.normalizedKey(m);
          target = cls.rep ^ phase;
          verdict =
              cnf::checkEquiv(cnf, Lit(m, false), target, opts.satBudget);
        }
        ++out.stats.satChecks;

        switch (verdict) {
          case cnf::Verdict::Holds: {
            mergeMap.set(m, target);
            if (cls.constant) {
              ++out.stats.constMerges;
              if (opts.learnEquivalences) {
                const sat::Lit lm =
                    cnf.litFor(Lit(m, false)) ^ cls.constValue;
                solver.addClause({!lm});
              }
            } else {
              ++out.stats.satMerges;
              learn(Lit(m, false), target);
            }
            break;
          }
          case cnf::Verdict::Fails: {
            ++out.stats.satRefuted;
            for (std::size_t i = 0; i < support.size(); ++i) {
              const std::uint64_t bit = cnf.modelOf(support[i]) ? 1 : 0;
              cexBits[i] |= bit << cexCount;
            }
            ++cexCount;
            break;
          }
          case cnf::Verdict::Unknown: {
            ++out.stats.satUnknown;
            disqualified[m] = 1;
            break;
          }
        }
      }
    }

    if (interrupted || cexCount == 0) break;  // stable or stopped early
    sigs.appendWord(cexBits, cexCount, rng);
  }

  out.roots = aig.rebuildWithNodeMap(roots, mergeMap);
  out.stats.nodesAfter = aig.coneSize(out.roots);
  return out;
}

}  // namespace cbq::sweep

#pragma once
// Dense union-find over candidate-pool slots with path halving.
//
// Extracted from the sweeper so the invariant auditor (audit/audit.hpp)
// and the corruption-injection tests can check the structure the merge
// phase depends on: classes are always rooted at their earliest
// (pool-order, hence topologically first) member — unite() only ever
// attaches a later tree under an earlier root — which is what keeps the
// final merge map acyclic. auditUnionFind() verifies exactly that.

#include <cstdint>
#include <vector>

namespace cbq::audit {
struct Access;
}

namespace cbq::sweep {

class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    for (std::size_t i = 0; i < n; ++i)
      parent_[i] = static_cast<std::uint32_t>(i);
  }

  std::uint32_t find(std::uint32_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  /// Attaches `later`'s tree under `earlier`'s root (earlier < later).
  void unite(std::uint32_t earlier, std::uint32_t later) {
    parent_[find(later)] = find(earlier);
  }

  [[nodiscard]] std::size_t size() const { return parent_.size(); }

  /// Read-only parent link (no path halving) — the auditor's traversal.
  [[nodiscard]] std::uint32_t parentOf(std::uint32_t x) const {
    return parent_[x];
  }

 private:
  friend struct ::cbq::audit::Access;
  std::vector<std::uint32_t> parent_;
};

}  // namespace cbq::sweep

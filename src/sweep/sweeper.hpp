#pragma once
// Equivalence detection and node merging — the paper's merge phase (§2.1).
//
// Given the cones of a set of roots (in practice: the two cofactors of the
// quantified variable), find functionally equivalent internal nodes and
// rebuild the cones with every equivalence class collapsed onto one
// representative. Three detection layers, exactly as in the paper:
//
//  1. AIG semi-canonicity: structural hashing already identifies
//     syntactically equal nodes — it happens implicitly in the manager.
//  2. BDD sweeping: size-bounded BDDs are built bottom-up in a shared
//     manager; nodes whose BDDs coincide (modulo complement) are merged
//     without touching the SAT solver. Cones whose BDDs blow past the
//     node limit simply drop out of this layer.
//  3. SAT-based checks on the remaining compare points: candidate classes
//     come from complement-normalized simulation signatures; each check is
//     a pair of assumption-only queries against ONE shared clause
//     database ("load once, factorize many checks in a single run").
//     Disproofs return counterexamples that are packed — 64 at a time —
//     into new simulation words, splitting every class they distinguish;
//     proofs are learned into the solver as biconditional clauses so later
//     checks get cheaper ("as long as we find equivalent points, we can
//     learn them").
//
// Forward mode processes compare points inputs→outputs; backward mode
// outputs→inputs, re-checking reachability from the roots after each merge
// round so that checks inside already-merged regions are skipped — the
// paper's observation that backward pays off when the cofactors are very
// similar (one root-level proof subsumes everything below).

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "aig/aig.hpp"
#include "sat/backend.hpp"

namespace cbq::util {
class ThreadPool;
}

namespace cbq::sweep {

class SweepContext;

struct SweepOptions {
  int numWords = 2;               ///< initial random simulation words/node
  int maxRounds = 16;             ///< refinement round limit
  int maxWords = 0;               ///< arena column cap (0 = auto:
                                  ///  numWords + maxRounds, so cex appends
                                  ///  never hit the cap)
  std::int64_t satBudget = 2000;  ///< conflicts per SAT equivalence query
  std::size_t bddNodeLimit = 2000;///< shared BDD manager limit (0 = off)
  bool useBdd = true;             ///< enable layer 2
  bool useSat = true;             ///< enable layer 3
  bool backward = false;          ///< outputs-first compare-point order
  bool learnEquivalences = true;  ///< assert proven merges as clauses
  std::uint64_t seed = 0x5eed;    ///< simulation seed

  /// SAT engine policy for the compare-point checks (cnf, circuit, race,
  /// auto — see sat::BackendKind). Applied to the private session only;
  /// when `context` is provided its own policy governs.
  sat::BackendKind satBackend = sat::BackendKind::Cnf;

  /// Cooperative stop, polled once per SAT compare-point check. Sweeping
  /// is an optimization: when the callback fires, the rounds stop and the
  /// cones are rebuilt with whatever merges are already proven (sound).
  std::function<bool()> interrupt{};

  /// Persistent sweep session (solver + CNF + pair cache shared across
  /// calls). When null, each sweep() builds a private throwaway session —
  /// the pre-session behaviour. The context must be bound (or bindable)
  /// to the same manager the sweep runs in; sweep() calls bind() itself.
  SweepContext* context = nullptr;

  /// Intra-sweep parallelism (non-owning; null = serial): signature
  /// simulation runs stratum-parallel and class refinement shards across
  /// the pool's lanes. Results — classes, merges, rebuilt roots — are
  /// bit-identical at any thread count (tests/test_parallel.cpp).
  util::ThreadPool* pool = nullptr;
};

struct SweepStats {
  std::size_t bddMerges = 0;   ///< merges proven by BDD pointer equality
  std::size_t satMerges = 0;   ///< merges proven UNSAT
  std::size_t constMerges = 0; ///< nodes proven constant
  std::size_t satChecks = 0;   ///< SAT equivalence queries issued
  std::size_t satRefuted = 0;  ///< queries answered SAT (not equivalent)
  std::size_t satUnknown = 0;  ///< budget exhausted
  std::size_t rounds = 0;      ///< refinement rounds executed
  std::size_t nodesBefore = 0; ///< cone size before
  std::size_t nodesAfter = 0;  ///< cone size after rebuild
  std::size_t skippedUnreferenced = 0;  ///< backward-mode pruned checks
  std::size_t cacheHitsProven = 0;   ///< merges taken from the pair cache
  std::size_t cacheHitsRefuted = 0;  ///< SAT checks skipped as known-refuted
  std::size_t arenaFull = 0;  ///< cex appends refused: arena at maxWords
};

struct SweepResult {
  std::vector<aig::Lit> roots;  ///< rebuilt roots, same order as input
  SweepStats stats;
};

/// Detects equivalent nodes in the cones of `roots` and rebuilds the cones
/// with merges applied. New nodes are added to `aig`; the returned literals
/// express the same functions as the inputs.
SweepResult sweep(aig::Aig& aig, std::span<const aig::Lit> roots,
                  const SweepOptions& opts = {});

}  // namespace cbq::sweep

#pragma once
// Deep-invariant auditor — machine-checkable structural invariants.
//
// Every data structure the engines' soundness rests on carries implicit
// invariants: the strash table mirrors the node array, levels and fanin
// order are monotone, epoch stamps never run ahead of their epoch, the
// sweep union-find keeps classes rooted at their earliest member, CNF
// literal maps point at live solver variables, and a Network's latches
// are fully bound. This module turns those contracts from prose into
// checks:
//
//   auditAig / auditNetwork / auditCnf / auditSignatures /
//   auditUnionFind / auditSweepContext
//
// return a Report naming each violated invariant (e.g.
// "aig.strash.stale-entry") with a precise diagnostic. The functions are
// ALWAYS compiled — tests and `cbq check --audit` call them in any
// build. What the CBQ_AUDIT build option gates is the phase-boundary
// hooks (CBQ_AUDIT_CHECK below): post-prep-pass, post-compaction,
// post-sweep-merge and session-pause call sites compile to nothing by
// default, exactly like CBQ_OBS spans and CBQ_FAULT_POINTs, and fire
// only when the hooks are both compiled in AND armed at runtime
// (setArmed, wired to `cbq check --audit`).
//
// A fired hook throws AuditError. Inside the portfolio the containment
// barriers quarantine it like any engine failure (the run degrades, the
// process survives) but preserve the "audit violation" prefix in the
// run's error string, which `cbq check --audit` maps to its dedicated
// exit code (30).
//
// The Access struct at the bottom is the single friend-key giving the
// auditor (and its corruption-injection tests) read/write access to the
// audited internals. Nothing else may use it.

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "aig/aig.hpp"
#include "aig/scratch.hpp"
#include "aig/strash.hpp"
#include "cnf/aig_cnf.hpp"
#include "mc/network.hpp"
#include "sat/circuit_solver.hpp"
#include "sweep/signatures.hpp"
#include "sweep/union_find.hpp"

namespace cbq::sweep {
class SweepContext;
}

namespace cbq::audit {

/// One violated invariant: its catalogue name plus a located diagnostic.
struct Violation {
  std::string invariant;  ///< e.g. "aig.strash.stale-entry"
  std::string detail;     ///< e.g. "slot 17: key != keyOf(fanins of node 42)"
};

/// The result of one audit pass. Empty = every invariant held.
class Report {
 public:
  void add(std::string invariant, std::string detail) {
    violations_.push_back({std::move(invariant), std::move(detail)});
  }
  void merge(Report other) {
    for (auto& v : other.violations_) violations_.push_back(std::move(v));
  }

  [[nodiscard]] bool ok() const { return violations_.empty(); }
  [[nodiscard]] const std::vector<Violation>& violations() const {
    return violations_;
  }

  /// True when some violation's invariant name equals `invariant` — the
  /// corruption-injection tests assert on exactly this.
  [[nodiscard]] bool has(std::string_view invariant) const;

  /// "name: detail; name: detail (+N more)" — capped human summary.
  [[nodiscard]] std::string summary(std::size_t maxItems = 4) const;

 private:
  std::vector<Violation> violations_;
};

/// Thrown by a fired audit hook (and by require()). A std::logic_error:
/// a violated structural invariant is a program bug, never an input
/// condition. what() always starts with "audit violation".
class AuditError : public std::logic_error {
 public:
  AuditError(std::string where, Report report);

  [[nodiscard]] const Report& report() const { return report_; }
  [[nodiscard]] const std::string& where() const { return where_; }

 private:
  std::string where_;
  Report report_;
};

/// Runtime arming of the compiled-in hooks (one relaxed load when
/// disarmed). `cbq check --audit` arms; tests arm/disarm directly.
[[nodiscard]] bool armed();
void setArmed(bool on);

/// Throws AuditError(where, report) when the report is not ok().
void require(Report report, std::string where);

// ----- audit passes ---------------------------------------------------

/// Strash ↔ node-array consistency, fanin/topological/level ordering,
/// PI bookkeeping, epoch-stamp coherence of the manager scratch and the
/// shared ScratchMemo.
[[nodiscard]] Report auditAig(const aig::Aig& aig);

/// Network well-formedness: latch next/init bindings line up, state and
/// input variables are disjoint, the bad/next cones reference only live
/// nodes and only declared variables. Includes auditAig(net.aig).
[[nodiscard]] Report auditNetwork(const mc::Network& net);

/// CNF literal-map consistency: every mapped node names a live solver
/// variable, no two nodes share one, and the encoded-AND count matches.
[[nodiscard]] Report auditCnf(const cnf::AigCnf& cnf);

/// Signature-arena slot validity: slots in range, no slot aliasing,
/// active words within the reserved stride, orders consistent.
[[nodiscard]] Report auditSignatures(const sweep::Signatures& sigs);

/// Union-find canonicality: parents in range, no cycles, and every
/// class rooted at its earliest (minimum-index) member.
[[nodiscard]] Report auditUnionFind(const sweep::UnionFind& uf);

/// Circuit-solver arena well-formedness: stored constraint gates have
/// sane sizes and lie inside the arena, their literals reference synced
/// nodes, the learnt flag matches the list holding the gate, every gate
/// is watched by (exactly) the negations of its first two literals with
/// no dangling watchers, and the justification frontier's heap and index
/// agree and hold only AND nodes.
[[nodiscard]] Report auditCircuitSolver(const sat::CircuitSolver& solver);

/// A bound session's engines against its manager (no-op when unbound):
/// auditCnf on the CNF side when the policy keeps one, and
/// auditCircuitSolver on the circuit side when it keeps that.
[[nodiscard]] Report auditSweepContext(sweep::SweepContext& ctx,
                                       const aig::Aig& aig);

// ----- deterministic corruption (selftest seam) -----------------------

/// Names accepted by selftestCorrupt: "strash", "epoch", "latch".
[[nodiscard]] const std::vector<std::string>& selftestClasses();

/// Seeds one invariant violation of the named class into `net` so the
/// exit-code contract of `cbq check --audit` can be exercised end to
/// end. Returns false (changing nothing) for an unknown class or a
/// network too small to corrupt.
[[nodiscard]] bool selftestCorrupt(mc::Network& net, const std::string& cls);

// ----- the friend key -------------------------------------------------

/// Befriended by Aig, StrashTable, ScratchMemo, AigCnf, Signatures and
/// UnionFind. Used by the audit passes (read) and the corruption-
/// injection tests (write); production code must never touch it.
struct Access {
  // Aig
  static const std::vector<aig::Node>& nodes(const aig::Aig& a) {
    return a.nodes_;
  }
  static std::vector<aig::Node>& nodes(aig::Aig& a) { return a.nodes_; }
  static const aig::StrashTable& strash(const aig::Aig& a) {
    return a.strash_;
  }
  static aig::StrashTable& strash(aig::Aig& a) { return a.strash_; }
  static const std::vector<aig::NodeId>& piByVar(const aig::Aig& a) {
    return a.piByVar_;
  }
  static std::vector<std::uint32_t>& stamps(const aig::Aig& a) {
    return a.stamp_;  // mutable member: epoch scratch
  }
  static std::uint32_t epoch(const aig::Aig& a) { return a.epoch_; }
  static const aig::ScratchMemo& memo(const aig::Aig& a) { return a.memo_; }
  static aig::ScratchMemo& memo(aig::Aig& a) { return a.memo_; }

  // StrashTable
  static const std::vector<aig::StrashTable::Entry>& strashSlots(
      const aig::StrashTable& t) {
    return t.slots_;
  }
  static std::vector<aig::StrashTable::Entry>& strashSlots(
      aig::StrashTable& t) {
    return t.slots_;
  }

  // ScratchMemo
  static const std::vector<std::uint32_t>& memoStamps(
      const aig::ScratchMemo& m) {
    return m.stamp_;
  }
  static std::vector<std::uint32_t>& memoStamps(aig::ScratchMemo& m) {
    return m.stamp_;
  }
  static std::size_t memoValSize(const aig::ScratchMemo& m) {
    return m.val_.size();
  }
  static std::uint32_t memoEpoch(const aig::ScratchMemo& m) {
    return m.epoch_;
  }

  // AigCnf
  static const sat::Solver* solver(const cnf::AigCnf& c) {
    return c.solver_;
  }
  static const std::vector<sat::Var>& nodeVars(const cnf::AigCnf& c) {
    return c.nodeVar_;
  }
  static std::vector<sat::Var>& nodeVars(cnf::AigCnf& c) {
    return c.nodeVar_;
  }
  static std::size_t encodedAnds(const cnf::AigCnf& c) {
    return c.encodedAnds_;
  }

  // Signatures
  static const std::vector<sweep::Signatures::Slot>& slotOf(
      const sweep::Signatures& s) {
    return s.slotOf_;
  }
  static std::vector<sweep::Signatures::Slot>& slotOf(sweep::Signatures& s) {
    return s.slotOf_;
  }
  static const std::vector<std::uint64_t>& arena(const sweep::Signatures& s) {
    return s.arena_;
  }
  static const std::vector<aig::NodeId>& order(const sweep::Signatures& s) {
    return s.order_;
  }
  static const std::vector<aig::NodeId>& levelOrder(
      const sweep::Signatures& s) {
    return s.levelOrder_;
  }

  // UnionFind
  static std::vector<std::uint32_t>& parents(sweep::UnionFind& u) {
    return u.parent_;
  }

  // CircuitSolver
  static const std::vector<std::uint32_t>& circuitArena(
      const sat::CircuitSolver& s) {
    return s.arena_;
  }
  static std::vector<std::uint32_t>& circuitArena(sat::CircuitSolver& s) {
    return s.arena_;
  }
  static const std::vector<std::uint32_t>& circuitPermanents(
      const sat::CircuitSolver& s) {
    return s.permanents_;
  }
  static const std::vector<std::uint32_t>& circuitLearnts(
      const sat::CircuitSolver& s) {
    return s.learnts_;
  }
  static const std::vector<std::vector<sat::CircuitSolver::Watcher>>&
  circuitWatches(const sat::CircuitSolver& s) {
    return s.watches_;
  }
  static std::vector<std::vector<sat::CircuitSolver::Watcher>>&
  circuitWatches(sat::CircuitSolver& s) {
    return s.watches_;
  }
  static std::size_t circuitSyncedNodes(const sat::CircuitSolver& s) {
    return s.assigns_.size();
  }
  static const std::vector<aig::NodeId>& circuitHeap(
      const sat::CircuitSolver& s) {
    return s.heap_;
  }
  static std::vector<aig::NodeId>& circuitHeap(sat::CircuitSolver& s) {
    return s.heap_;
  }
  static const std::vector<int>& circuitHeapIndex(
      const sat::CircuitSolver& s) {
    return s.heapIndex_;
  }
  static const aig::Aig& circuitAig(const sat::CircuitSolver& s) {
    return *s.aig_;
  }
};

}  // namespace cbq::audit

// ----- phase-boundary hooks -------------------------------------------
// CBQ_AUDIT_CHECK(where, reportExpr) evaluates reportExpr and throws
// AuditError on violations — but only in a -DCBQ_AUDIT=ON build AND when
// runtime-armed. The default build compiles the whole call site away
// (reportExpr unevaluated), keeping the audit-off overhead at zero.
#if defined(CBQ_AUDIT)
#define CBQ_AUDIT_CHECK(where, ...)                     \
  do {                                                  \
    if (::cbq::audit::armed())                          \
      ::cbq::audit::require((__VA_ARGS__), (where));    \
  } while (0)
#else
#define CBQ_AUDIT_CHECK(where, ...) \
  do {                              \
  } while (0)
#endif

#include "audit/audit.hpp"

#include <algorithm>
#include <atomic>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "sweep/sweep_context.hpp"

namespace cbq::audit {

namespace {

std::atomic<bool> g_armed{false};

/// Located diagnostic formatter: every violation carries enough context
/// (indices, ids, expected vs actual) to find the corrupt element without
/// a debugger.
class Diag {
 public:
  template <typename T>
  Diag& operator<<(const T& v) {
    os_ << v;
    return *this;
  }
  [[nodiscard]] std::string str() const { return os_.str(); }

 private:
  std::ostringstream os_;
};

}  // namespace

bool Report::has(std::string_view invariant) const {
  for (const Violation& v : violations_)
    if (v.invariant == invariant) return true;
  return false;
}

std::string Report::summary(std::size_t maxItems) const {
  std::ostringstream os;
  const std::size_t shown = std::min(maxItems, violations_.size());
  for (std::size_t i = 0; i < shown; ++i) {
    if (i != 0) os << "; ";
    os << violations_[i].invariant << ": " << violations_[i].detail;
  }
  if (violations_.size() > shown)
    os << " (+" << (violations_.size() - shown) << " more)";
  return os.str();
}

namespace {
std::string describe(const std::string& where, const Report& report) {
  std::ostringstream os;
  os << "audit violation at " << where << ": " << report.summary();
  return os.str();
}
}  // namespace

AuditError::AuditError(std::string where, Report report)
    : std::logic_error(describe(where, report)),
      where_(std::move(where)),
      report_(std::move(report)) {}

bool armed() { return g_armed.load(std::memory_order_relaxed); }
void setArmed(bool on) { g_armed.store(on, std::memory_order_relaxed); }

void require(Report report, std::string where) {
  if (!report.ok()) throw AuditError(std::move(where), std::move(report));
}

// ----- AIG ------------------------------------------------------------

Report auditAig(const aig::Aig& a) {
  Report r;
  const auto& nodes = Access::nodes(a);
  const std::size_t numNodes = nodes.size();
  if (numNodes == 0) {
    r.add("aig.node.const", "manager has no constant node 0");
    return r;
  }

  // Per-node structure: fanin ordering (mkAndRaw normalizes so
  // fanin0.raw() < fanin1.raw() strictly), topological append-only order,
  // no constant fanins (the one-level rules eliminate them at build
  // time), and exact longest-path levels.
  std::size_t numAnds = 0;
  for (aig::NodeId n = 1; n < numNodes; ++n) {
    if (a.isPi(n)) {
      if (nodes[n].level != 0)
        r.add("aig.node.level",
              (Diag() << "PI node " << n << " has level " << nodes[n].level)
                  .str());
      const aig::VarId v = a.piVar(n);
      const auto& byVar = Access::piByVar(a);
      if (v >= byVar.size() || byVar[v] != n)
        r.add("aig.pi.binding",
              (Diag() << "PI node " << n << " carries varId " << v
                      << " but piByVar does not map it back")
                  .str());
      continue;
    }
    ++numAnds;
    const aig::Lit f0 = nodes[n].fanin0;
    const aig::Lit f1 = nodes[n].fanin1;
    if (f0.node() >= n || f1.node() >= n) {
      r.add("aig.node.topo-order",
            (Diag() << "AND node " << n << " references fanin node "
                    << std::max(f0.node(), f1.node())
                    << " at or above its own id")
                .str());
      continue;  // levels/strash of a non-topological node are meaningless
    }
    if (f0.raw() >= f1.raw())
      r.add("aig.node.fanin-order",
            (Diag() << "AND node " << n << " fanins not strictly ordered: "
                    << f0.raw() << " >= " << f1.raw())
                .str());
    if (f0.node() == 0 || f1.node() == 0)
      r.add("aig.node.const-fanin",
            (Diag() << "AND node " << n
                    << " has a constant fanin (one-level rules bypassed)")
                .str());
    const std::uint32_t want =
        1 + std::max(nodes[f0.node()].level, nodes[f1.node()].level);
    if (nodes[n].level != want)
      r.add("aig.node.level",
            (Diag() << "AND node " << n << " level " << nodes[n].level
                    << " != 1 + max(fanin levels) = " << want)
                .str());
    const aig::NodeId hit = Access::strash(a).find(f0, f1);
    if (hit != n)
      r.add("aig.strash.missing-node",
            (Diag() << "AND node " << n << " not found under its fanin key"
                    << " (find returned " << hit << ")")
                .str());
  }

  // Strash table ↔ node array: every occupied slot names a live AND whose
  // fanins hash to exactly that key, each key appears once, and the
  // occupancy count matches the AND count (no stale leftovers).
  {
    const auto& slots = Access::strashSlots(Access::strash(a));
    std::unordered_set<std::uint64_t> seenKeys;
    std::size_t occupied = 0;
    for (std::size_t i = 0; i < slots.size(); ++i) {
      const auto& e = slots[i];
      if (e.id == 0) continue;
      ++occupied;
      if (e.id >= numNodes || !a.isAnd(e.id)) {
        r.add("aig.strash.stale-entry",
              (Diag() << "slot " << i << " names node " << e.id
                      << " which is not a live AND")
                  .str());
        continue;
      }
      const std::uint64_t want =
          aig::StrashTable::keyOf(nodes[e.id].fanin0, nodes[e.id].fanin1);
      if (e.key != want)
        r.add("aig.strash.stale-entry",
              (Diag() << "slot " << i << " key " << e.key
                      << " != keyOf(fanins of node " << e.id << ") = " << want)
                  .str());
      if (!seenKeys.insert(e.key).second)
        r.add("aig.strash.duplicate-key",
              (Diag() << "key " << e.key << " occupies more than one slot")
                  .str());
    }
    if (occupied != numAnds || Access::strash(a).size() != numAnds)
      r.add("aig.strash.size",
            (Diag() << "occupied slots " << occupied << " / declared size "
                    << Access::strash(a).size() << " != AND count " << numAnds)
                .str());
  }

  // PI list side of the bijection.
  for (const aig::NodeId p : a.pis())
    if (p >= numNodes || !a.isPi(p))
      r.add("aig.pi.binding",
            (Diag() << "pis() entry " << p << " is not a PI node").str());
  {
    const auto& byVar = Access::piByVar(a);
    for (aig::VarId v = 0; v < byVar.size(); ++v)
      if (byVar[v] != 0 && (byVar[v] >= numNodes || !a.isPi(byVar[v]) ||
                            a.piVar(byVar[v]) != v))
        r.add("aig.pi.binding",
              (Diag() << "piByVar[" << v << "] = " << byVar[v]
                      << " does not name a PI carrying varId " << v)
                  .str());
  }

  // Epoch coherence of the manager's shared traversal scratch: one stamp
  // per node (ctor + newNode keep them in lockstep) and no stamp from the
  // future (a stamp above the epoch would read as visited after the next
  // bump, silently truncating cone walks).
  {
    const auto& stamps = Access::stamps(a);
    if (stamps.size() != numNodes)
      r.add("aig.epoch.stamp-size",
            (Diag() << "stamp arena holds " << stamps.size() << " entries for "
                    << numNodes << " nodes")
                .str());
    const std::uint32_t epoch = Access::epoch(a);
    for (std::size_t n = 0; n < stamps.size(); ++n)
      if (stamps[n] > epoch) {
        r.add("aig.epoch.stamp-ahead",
              (Diag() << "stamp[" << n << "] = " << stamps[n]
                      << " is ahead of epoch " << epoch)
                  .str());
        break;  // one located witness is enough
      }
  }

  // Same discipline for the shared cone-rebuild memo.
  {
    const auto& memo = Access::memo(a);
    const auto& stamps = Access::memoStamps(memo);
    if (stamps.size() != Access::memoValSize(memo))
      r.add("aig.memo.size",
            (Diag() << "memo stamp arena " << stamps.size()
                    << " != value arena " << Access::memoValSize(memo))
                .str());
    const std::uint32_t epoch = Access::memoEpoch(memo);
    for (std::size_t n = 0; n < stamps.size(); ++n)
      if (stamps[n] > epoch) {
        r.add("aig.memo.epoch-ahead",
              (Diag() << "memo stamp[" << n << "] = " << stamps[n]
                      << " is ahead of memo epoch " << epoch)
                  .str());
        break;
      }
  }

  return r;
}

// ----- Network --------------------------------------------------------

Report auditNetwork(const mc::Network& net) {
  Report r = auditAig(net.aig);

  if (net.next.size() != net.stateVars.size())
    r.add("net.shape.next-size",
          (Diag() << net.stateVars.size() << " latches but " << net.next.size()
                  << " next-state functions")
              .str());
  if (net.init.size() != net.stateVars.size())
    r.add("net.shape.init-size",
          (Diag() << net.stateVars.size() << " latches but " << net.init.size()
                  << " initial values")
              .str());

  {
    std::unordered_map<aig::VarId, int> seen;
    for (const aig::VarId v : net.stateVars)
      if (++seen[v] > 1)
        r.add("net.vars.duplicate",
              (Diag() << "state variable " << v << " declared twice").str());
    for (const aig::VarId v : net.inputVars)
      if (++seen[v] > 1)
        r.add("net.vars.duplicate",
              (Diag() << "variable " << v
                      << " declared as both state and input (or twice)")
                  .str());
  }

  // Cone roots must reference live nodes. Checked before the support walk
  // below — traversing a dangling literal would itself fault.
  const std::size_t numNodes = net.aig.numNodes();
  bool dangling = false;
  for (std::size_t i = 0; i < net.next.size(); ++i)
    if (net.next[i].node() >= numNodes) {
      dangling = true;
      r.add("net.latch.dangling-next",
            (Diag() << "latch " << i << " (var "
                    << (i < net.stateVars.size() ? net.stateVars[i] : 0)
                    << ") next-state literal names node " << net.next[i].node()
                    << " but the manager holds only " << numNodes)
                .str());
    }
  if (net.bad.node() >= numNodes) {
    dangling = true;
    r.add("net.bad.dangling",
          (Diag() << "bad literal names node " << net.bad.node()
                  << " but the manager holds only " << numNodes)
              .str());
  }

  if (!dangling) {
    std::unordered_set<aig::VarId> declared;
    declared.insert(net.stateVars.begin(), net.stateVars.end());
    declared.insert(net.inputVars.begin(), net.inputVars.end());
    std::vector<aig::Lit> roots(net.next.begin(), net.next.end());
    roots.push_back(net.bad);
    aig::Aig::TraversalScratch scratch;  // const-safe walk
    for (const aig::VarId v : net.aig.supportVars(roots, scratch))
      if (!declared.contains(v))
        r.add("net.support.undeclared-var",
              (Diag() << "next/bad cones depend on variable " << v
                      << " which is neither a state nor an input variable")
                  .str());
  }

  return r;
}

// ----- CNF ------------------------------------------------------------

Report auditCnf(const cnf::AigCnf& cnf) {
  Report r;
  const aig::Aig& a = cnf.aig();
  const auto& nodeVar = Access::nodeVars(cnf);
  const sat::Solver* solver = Access::solver(cnf);
  const auto liveVars =
      solver != nullptr ? solver->numVars() : 0;

  if (nodeVar.size() > a.numNodes())
    r.add("cnf.litmap.size",
          (Diag() << "literal map covers " << nodeVar.size()
                  << " node ids but the manager holds " << a.numNodes())
              .str());

  std::unordered_map<sat::Var, aig::NodeId> owner;
  std::size_t mappedAnds = 0;
  for (aig::NodeId n = 0; n < nodeVar.size(); ++n) {
    const sat::Var v = nodeVar[n];
    if (v == sat::kUndefVar) continue;
    if (v < 0 || v >= liveVars) {
      r.add("cnf.litmap.dangling-var",
            (Diag() << "node " << n << " maps to solver variable " << v
                    << " but the solver holds only " << liveVars)
                .str());
      continue;
    }
    const auto [it, fresh] = owner.emplace(v, n);
    if (!fresh)
      r.add("cnf.litmap.duplicate-var",
            (Diag() << "solver variable " << v << " claimed by nodes "
                    << it->second << " and " << n)
                .str());
    if (n < a.numNodes() && a.isAnd(n)) ++mappedAnds;
  }
  if (mappedAnds != Access::encodedAnds(cnf))
    r.add("cnf.litmap.encoded-count",
          (Diag() << "literal map holds " << mappedAnds
                  << " AND nodes but encodedAnds counter says "
                  << Access::encodedAnds(cnf))
              .str());

  return r;
}

// ----- Signatures -----------------------------------------------------

Report auditSignatures(const sweep::Signatures& sigs) {
  Report r;
  const auto& slotOf = Access::slotOf(sigs);
  const auto& arena = Access::arena(sigs);
  const auto& order = Access::order(sigs);
  const auto& levelOrder = Access::levelOrder(sigs);
  const std::size_t stride = sigs.stride();

  if (sigs.words() > stride)
    r.add("sig.words.overflow",
          (Diag() << "active words " << sigs.words()
                  << " exceed the reserved stride " << stride)
              .str());

  // Slot map: every mapped node's row fits the arena and no two nodes
  // alias one row. Slot 0 is the cone-constant row.
  std::unordered_map<sweep::Signatures::Slot, aig::NodeId> ownerOf;
  for (aig::NodeId n = 0; n < slotOf.size(); ++n) {
    const auto slot = slotOf[n];
    if (slot == sweep::Signatures::kNoSlot) continue;
    if (stride == 0 ||
        (static_cast<std::size_t>(slot) + 1) * stride > arena.size()) {
      r.add("sig.slot.out-of-range",
            (Diag() << "node " << n << " maps to slot " << slot
                    << " whose row exceeds the arena ("
                    << arena.size() / std::max<std::size_t>(stride, 1)
                    << " rows)")
                .str());
      continue;
    }
    const auto [it, fresh] = ownerOf.emplace(slot, n);
    if (!fresh)
      r.add("sig.slot.duplicate",
            (Diag() << "slot " << slot << " claimed by nodes " << it->second
                    << " and " << n)
                .str());
  }

  // The stratified order is a permutation of the cone order; every cone
  // node holds a slot.
  {
    std::vector<aig::NodeId> x(order.begin(), order.end());
    std::vector<aig::NodeId> y(levelOrder.begin(), levelOrder.end());
    std::sort(x.begin(), x.end());
    std::sort(y.begin(), y.end());
    if (x != y)
      r.add("sig.strata.order",
            (Diag() << "level order (" << y.size()
                    << " nodes) is not a permutation of the cone order ("
                    << x.size() << " nodes)")
                .str());
  }
  for (const aig::NodeId n : order)
    if (!sigs.inCone(n))
      r.add("sig.slot.out-of-range",
            (Diag() << "cone-order node " << n << " holds no arena slot")
                .str());

  return r;
}

// ----- Union-find -----------------------------------------------------

Report auditUnionFind(const sweep::UnionFind& uf) {
  Report r;
  const std::size_t n = uf.size();

  for (std::uint32_t x = 0; x < n; ++x)
    if (uf.parentOf(x) >= n) {
      r.add("uf.parent.out-of-range",
            (Diag() << "parent[" << x << "] = " << uf.parentOf(x)
                    << " exceeds the element count " << n)
                .str());
      return r;  // traversal below would walk out of bounds
    }

  // Roots via read-only traversal (no path halving), with a step bound as
  // the cycle detector.
  std::vector<std::uint32_t> root(n);
  for (std::uint32_t x = 0; x < n; ++x) {
    std::uint32_t cur = x;
    std::size_t steps = 0;
    while (uf.parentOf(cur) != cur) {
      cur = uf.parentOf(cur);
      if (++steps > n) {
        r.add("uf.cycle",
              (Diag() << "parent chain of element " << x
                      << " does not terminate")
                  .str());
        return r;
      }
    }
    root[x] = cur;
  }

  // Canonicality: the representative of each class is its earliest
  // (minimum-index) member — the property that keeps the sweeper's merge
  // map acyclic (later nodes always merge onto earlier ones).
  std::unordered_map<std::uint32_t, std::uint32_t> minOf;
  for (std::uint32_t x = 0; x < n; ++x) {
    const auto [it, fresh] = minOf.emplace(root[x], x);
    if (!fresh) it->second = std::min(it->second, x);
  }
  for (const auto& [rep, lo] : minOf)
    if (rep != lo) {
      r.add("uf.non-canonical-root",
            (Diag() << "class of element " << lo << " is rooted at " << rep
                    << " instead of its earliest member")
                .str());
      break;  // one witness; every member of the class would repeat it
    }

  return r;
}

// ----- CircuitSolver --------------------------------------------------

Report auditCircuitSolver(const sat::CircuitSolver& solver) {
  Report r;
  const auto& arena = Access::circuitArena(solver);
  const auto& watches = Access::circuitWatches(solver);
  const std::size_t synced = Access::circuitSyncedNodes(solver);

  // Stored constraint gates: header sane, inside the arena, literals
  // reference synced nodes, learnt flag matches the owning list.
  std::vector<std::pair<std::uint32_t, bool>> gates;
  for (const std::uint32_t g : Access::circuitPermanents(solver))
    gates.emplace_back(g, false);
  for (const std::uint32_t g : Access::circuitLearnts(solver))
    gates.emplace_back(g, true);
  std::unordered_map<std::uint32_t, std::size_t> expectWatch;
  for (const auto& [g, learnt] : gates) {
    if (g + 2 > arena.size()) {
      r.add("circuit.arena.gate-bounds",
            (Diag() << "gate ref " << g << " past arena of " << arena.size())
                .str());
      continue;
    }
    const std::uint32_t size = arena[g] >> 1;
    if (size < 2 || g + 2 + size > arena.size()) {
      r.add("circuit.arena.gate-bounds",
            (Diag() << "gate " << g << " claims " << size
                    << " inputs in an arena of " << arena.size())
                .str());
      continue;
    }
    if (((arena[g] & 1) != 0) != learnt)
      r.add("circuit.arena.learnt-flag",
            (Diag() << "gate " << g << " sits in the "
                    << (learnt ? "learnt" : "permanent")
                    << " list but its header flag disagrees")
                .str());
    for (std::uint32_t i = 0; i < size; ++i) {
      const aig::Lit l = aig::Lit::fromRaw(arena[g + 2 + i]);
      if (l.node() >= synced)
        r.add("circuit.arena.dangling-lit",
              (Diag() << "gate " << g << " input " << i
                      << " references node " << l.node() << " but only "
                      << synced << " nodes are synced")
                  .str());
    }
    // The first two literals are the watched pair.
    if (size >= 2 && g + 4 <= arena.size()) {
      expectWatch.emplace(g, 0);
    }
  }

  // Watch lists: every stored gate watched exactly twice (once per
  // watched literal's negation), and no watcher names an unknown gate.
  for (std::size_t w = 0; w < watches.size(); ++w) {
    for (const auto& watcher : watches[w]) {
      const auto it = expectWatch.find(watcher.gref);
      if (it == expectWatch.end()) {
        r.add("circuit.watch.dangling",
              (Diag() << "watch list " << w << " holds gate ref "
                      << watcher.gref << " which no gate list owns")
                  .str());
        continue;
      }
      ++it->second;
    }
  }
  for (const auto& [g, count] : expectWatch)
    if (count != 2)
      r.add("circuit.watch.missing",
            (Diag() << "gate " << g << " carries " << count
                    << " watchers instead of 2")
                .str());

  // Justification frontier: heap/index agreement, AND nodes only.
  const auto& heap = Access::circuitHeap(solver);
  const auto& heapIndex = Access::circuitHeapIndex(solver);
  const aig::Aig& a = Access::circuitAig(solver);
  for (std::size_t i = 0; i < heap.size(); ++i) {
    const aig::NodeId n = heap[i];
    if (n >= heapIndex.size() ||
        heapIndex[n] != static_cast<int>(i)) {
      r.add("circuit.frontier.heap-index",
            (Diag() << "heap slot " << i << " holds node " << n
                    << " whose index entry disagrees")
                .str());
      continue;
    }
    if (n >= a.numNodes() || !a.isAnd(n))
      r.add("circuit.frontier.non-and",
            (Diag() << "frontier holds node " << n
                    << " which is not an AND of the bound manager")
                .str());
  }

  return r;
}

// ----- SweepContext ---------------------------------------------------

Report auditSweepContext(sweep::SweepContext& ctx, const aig::Aig& aig) {
  Report r;
  if (!ctx.boundTo(aig)) return r;  // unbound session: nothing to audit
  if (ctx.hasCnf()) r.merge(auditCnf(ctx.cnf()));
  if (ctx.hasCircuit()) r.merge(auditCircuitSolver(ctx.circuitSolver()));
  return r;
}

// ----- selftest corruption seam ---------------------------------------

const std::vector<std::string>& selftestClasses() {
  static const std::vector<std::string> classes = {"strash", "epoch", "latch"};
  return classes;
}

bool selftestCorrupt(mc::Network& net, const std::string& cls) {
  aig::Aig& a = net.aig;
  if (cls == "strash") {
    // Flip the key of the first occupied strash slot: the entry goes
    // stale AND its node stops being findable under its true key.
    auto& slots = Access::strashSlots(Access::strash(a));
    for (auto& e : slots) {
      if (e.id == 0) continue;
      e.key ^= 0x1;
      return true;
    }
    return false;  // no AND nodes to corrupt
  }
  if (cls == "epoch") {
    // A stamp from the future: reads as already-visited after the next
    // epoch bump, silently truncating cone walks.
    auto& stamps = Access::stamps(a);
    if (stamps.empty()) return false;
    stamps[0] = Access::epoch(a) + 1;
    return true;
  }
  if (cls == "latch") {
    // Unbind a latch: its next-state literal dangles past the node array.
    if (net.next.empty()) return false;
    net.next[0] =
        aig::Lit(static_cast<aig::NodeId>(a.numNodes()) + 7, false);
    return true;
  }
  return false;
}

}  // namespace cbq::audit

#pragma once
// Assembly of the standard benchmark suite used by tests and by the
// table/figure harnesses.

#include <string>
#include <vector>

#include "circuits/families.hpp"
#include "mc/result.hpp"

namespace cbq::circuits {

/// One benchmark instance with its ground-truth verdict.
struct Instance {
  mc::Network net;
  mc::Verdict expected;  ///< Safe or Unsafe by construction
  std::string family;
  int width;
};

/// Names of all generator families (for CLI tools and sweeps).
std::vector<std::string> familyNames();

/// Builds one instance. `width` is ignored by the fixed-size families
/// (traffic, peterson). Throws std::invalid_argument on unknown family.
Instance makeInstance(const std::string& family, int width, bool safe);

/// The default suite: every family, safe + buggy, at small widths whose
/// backward diameters keep all engines in range. This is the workload of
/// experiment T1.
std::vector<Instance> standardSuite();

/// A width sweep of one family (safe variants), for the scaling figure.
std::vector<Instance> widthSweep(const std::string& family,
                                 std::vector<int> widths, bool safe);

}  // namespace cbq::circuits

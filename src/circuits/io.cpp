#include "circuits/io.hpp"

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <unordered_map>
#include <vector>

#include "util/fault.hpp"

namespace cbq::circuits {

namespace {

using aig::Lit;
using aig::VarId;
using mc::Network;

/// Line-counting reader: every parse error reports the offending line
/// number, so a malformed 10k-line benchmark file is a one-look fix
/// instead of a binary search.
class LineReader {
 public:
  explicit LineReader(std::istream& in) : in_(in) {}

  /// Reads the next line; false at EOF.
  bool next(std::string& line) {
    if (!std::getline(in_, line)) return false;
    ++lineNo_;
    return true;
  }

  /// Reads the next line or fails with `what` at the line AFTER the last
  /// one read (the place the missing line was expected).
  std::string expect(const char* what) {
    std::string line;
    if (!next(line))
      throw ParseError("line " + std::to_string(lineNo_ + 1) +
                       ": unexpected end of file, expected " + what);
    return line;
  }

  [[nodiscard]] std::size_t lineNo() const { return lineNo_; }

  [[noreturn]] void fail(const std::string& msg) const { failAt(lineNo_, msg); }

  [[noreturn]] static void failAt(std::size_t lineNo, const std::string& msg) {
    throw ParseError("line " + std::to_string(lineNo) + ": " + msg);
  }

 private:
  std::istream& in_;
  std::size_t lineNo_ = 0;
};

// ----- AIGER ASCII ----------------------------------------------------------

struct AagAnd {
  unsigned lhs, rhs0, rhs1;
  std::size_t lineNo;  ///< where the gate was defined, for error reports
};

/// Hard ceiling on header-declared counts (variables, inputs, gates...).
/// A corrupt or hostile header must never size an allocation: 2^26
/// variables is far beyond the largest benchmark family while keeping
/// the worst-case working-set of the M-indexed tables a few hundred MB
/// instead of "whatever 10 digits of ASCII ask for".
constexpr unsigned kMaxHeaderCount = 1u << 26;

/// Reserve hint for section vectors read entry-by-entry: trust the
/// header only up to a modest prefix, then let growth track the bytes
/// actually present in the file.
constexpr std::size_t kReserveCap = 1u << 16;

}  // namespace

mc::Network readAag(std::istream& in, std::string name) {
  LineReader reader(in);

  // AIGER 1.9 header: `aag M I L O A [B [C [J [F]]]]`. Bad literals are
  // property outputs like O (both are OR-ed into `bad`); invariant
  // constraints and justice/fairness are liveness-flavoured machinery the
  // invariant checker cannot honour soundly, so their presence is a parse
  // error rather than a silently wrong verdict.
  unsigned m = 0;
  unsigned i = 0;
  unsigned l = 0;
  unsigned o = 0;
  unsigned a = 0;
  unsigned b = 0;
  unsigned c = 0;
  unsigned j = 0;
  unsigned f = 0;
  {
    std::istringstream hs(reader.expect("AIGER header"));
    std::string magic;
    if (!(hs >> magic >> m >> i >> l >> o >> a) || magic != "aag")
      reader.fail("not an ascii AIGER header (aag M I L O A)");
    hs >> b >> c >> j >> f;  // absent 1.9 fields stay 0
    if (c > 0) reader.fail("invariant constraints unsupported");
    if (j > 0 || f > 0) reader.fail("justice/fairness properties unsupported");
    // Counts gate every allocation below; refuse implausible ones before
    // a corrupt 10-digit field turns into a multi-gigabyte vector.
    if (m > kMaxHeaderCount || i > kMaxHeaderCount || l > kMaxHeaderCount ||
        o > kMaxHeaderCount || a > kMaxHeaderCount || b > kMaxHeaderCount)
      reader.fail("implausible header count (limit 2^26)");
    // M is the maximum variable index: every input, latch and AND claims
    // a distinct variable, so fewer than I+L+A indices cannot hold them.
    if (static_cast<std::uint64_t>(i) + l + a > m)
      reader.fail("inconsistent header: M < I + L + A");
  }

  Network net;
  net.name = std::move(name);

  // Section vectors grow entry-by-entry: each entry is backed by a line
  // actually read (EOF throws), so memory tracks the real file size, not
  // whatever the header claims.
  std::vector<unsigned> inputLits;
  inputLits.reserve(std::min<std::size_t>(i, kReserveCap));
  for (unsigned k = 0; k < i; ++k) {
    std::istringstream ls(reader.expect("an input literal"));
    unsigned x = 0;
    if (!(ls >> x)) reader.fail("bad input line");
    inputLits.push_back(x);
  }

  struct LatchDef {
    unsigned lit, next;
    bool init;
    std::size_t lineNo;
  };
  std::vector<LatchDef> latches;
  latches.reserve(std::min<std::size_t>(l, kReserveCap));
  for (unsigned k = 0; k < l; ++k) {
    std::istringstream ls(reader.expect("a latch definition"));
    LatchDef ld;
    ld.init = false;
    ld.lineNo = reader.lineNo();
    unsigned init = 0;
    if (!(ls >> ld.lit >> ld.next)) reader.fail("bad latch line");
    if (ls >> init) {
      // 1.9 reset values: 0, 1, or the latch's own literal meaning
      // "uninitialized" — a 3-valued start state we cannot model.
      if (init == ld.lit)
        reader.fail("uninitialized latch resets unsupported");
      if (init > 1) reader.fail("bad latch reset value");
      ld.init = (init != 0);
    }
    latches.push_back(ld);
  }

  // Outputs, then the 1.9 bad-literal section; both name states the
  // checker must prove unreachable, so they merge into one `bad`.
  struct OutputDef {
    unsigned lit;
    std::size_t lineNo;
  };
  std::vector<OutputDef> outputs;
  outputs.reserve(std::min<std::size_t>(o + b, kReserveCap));
  for (unsigned k = 0; k < o + b; ++k) {
    std::istringstream ls(reader.expect("an output literal"));
    OutputDef od;
    od.lineNo = reader.lineNo();
    if (!(ls >> od.lit)) reader.fail("bad output line");
    outputs.push_back(od);
  }
  std::vector<AagAnd> ands;
  ands.reserve(std::min<std::size_t>(a, kReserveCap));
  for (unsigned k = 0; k < a; ++k) {
    std::istringstream ls(reader.expect("an AND definition"));
    AagAnd g;
    g.lineNo = reader.lineNo();
    if (!(ls >> g.lhs >> g.rhs0 >> g.rhs1)) reader.fail("bad AND line");
    ands.push_back(g);
  }

  // Symbol table (`i<k> name` / `l<k> name` / `o<k> name` / `b<k> name`
  // lines) and the free-text comment section after a lone `c`. Symbols
  // map positions, not literals, so they carry no structure the Network
  // does not already have — they are validated and skipped.
  {
    std::string line;
    while (reader.next(line)) {
      if (line.empty()) continue;
      if (line[0] == 'c') break;  // comment section: rest is free text
      const char kind = line[0];
      unsigned idx = 0;
      std::string sym;
      std::istringstream ss(line.substr(1));
      if ((kind != 'i' && kind != 'l' && kind != 'o' && kind != 'b') ||
          !(ss >> idx >> sym))
        reader.fail("bad symbol table line: " + line);
      const unsigned count = kind == 'i' ? i
                             : kind == 'l' ? l
                             : kind == 'o' ? o
                                           : b;
      if (idx >= count) reader.fail("symbol index out of range: " + line);
    }
  }

  // Variable kind table.
  enum class Kind : std::uint8_t { Undefined, Input, Latch, And };
  std::vector<Kind> kind(m + 1, Kind::Undefined);
  std::vector<Lit> value(m + 1, aig::kFalse);
  std::vector<bool> ready(m + 1, false);
  ready[0] = true;  // constant

  for (std::size_t k = 0; k < inputLits.size(); ++k) {
    const unsigned x = inputLits[k];
    // Literals 0/1 are the constants: a definition claiming them would
    // overwrite value[0] and corrupt every constant in the file.
    if ((x & 1) || x < 2 || x / 2 > m)
      LineReader::failAt(2 + k, "bad input literal");
    kind[x / 2] = Kind::Input;
    net.inputVars.push_back(x / 2);
    value[x / 2] = net.aig.pi(x / 2);
    ready[x / 2] = true;
  }
  for (const auto& ld : latches) {
    if ((ld.lit & 1) || ld.lit < 2 || ld.lit / 2 > m)
      LineReader::failAt(ld.lineNo, "bad latch literal");
    kind[ld.lit / 2] = Kind::Latch;
    net.stateVars.push_back(ld.lit / 2);
    net.init.push_back(ld.init);
    value[ld.lit / 2] = net.aig.pi(ld.lit / 2);
    ready[ld.lit / 2] = true;
  }
  for (const auto& g : ands) {
    if ((g.lhs & 1) || g.lhs < 2 || g.lhs / 2 > m ||
        kind[g.lhs / 2] != Kind::Undefined)
      LineReader::failAt(g.lineNo, "bad AND definition");
    kind[g.lhs / 2] = Kind::And;
  }

  auto litOf = [&](unsigned x) -> Lit {
    return value[x / 2] ^ ((x & 1) != 0);
  };

  // Worklist resolution (files need not be topologically sorted).
  std::vector<AagAnd> pending(ands.begin(), ands.end());
  while (!pending.empty()) {
    const std::size_t before = pending.size();
    std::erase_if(pending, [&](const AagAnd& g) {
      if (g.rhs0 / 2 > m || g.rhs1 / 2 > m)
        LineReader::failAt(g.lineNo, "AND fanin literal out of range");
      if (!ready[g.rhs0 / 2] || !ready[g.rhs1 / 2]) return false;
      value[g.lhs / 2] = net.aig.mkAnd(litOf(g.rhs0), litOf(g.rhs1));
      ready[g.lhs / 2] = true;
      return true;
    });
    if (pending.size() == before)
      LineReader::failAt(pending.front().lineNo,
                         "cyclic or undefined AND gates");
  }

  net.next.reserve(latches.size());
  for (const auto& ld : latches) {
    if (ld.next / 2 > m || !ready[ld.next / 2])
      LineReader::failAt(ld.lineNo, "undefined latch next-state");
    net.next.push_back(litOf(ld.next));
  }
  std::vector<Lit> bads;
  bads.reserve(outputs.size());
  for (const auto& od : outputs) {
    if (od.lit / 2 > m || !ready[od.lit / 2])
      LineReader::failAt(od.lineNo, "undefined output");
    bads.push_back(litOf(od.lit));
  }
  net.bad = net.aig.mkOrAll(bads);
  if (!net.wellFormed()) throw ParseError("malformed AIGER network");
  return net;
}

void writeAag(const Network& net, std::ostream& out) {
  // Assign AIGER variable indices: inputs, latches, then AND nodes of the
  // live cones in topological order.
  std::unordered_map<VarId, unsigned> piIndex;
  unsigned nextIdx = 1;
  for (const VarId v : net.inputVars) piIndex.emplace(v, nextIdx++);
  for (const VarId v : net.stateVars) piIndex.emplace(v, nextIdx++);

  std::vector<Lit> roots(net.next.begin(), net.next.end());
  roots.push_back(net.bad);
  const auto order = net.aig.coneAnds(roots);

  std::unordered_map<aig::NodeId, unsigned> andIndex;
  for (const aig::NodeId n : order) andIndex.emplace(n, nextIdx++);

  auto litCode = [&](Lit l) -> unsigned {
    unsigned var = 0;
    if (net.aig.isConst(l.node())) {
      var = 0;
    } else if (net.aig.isPi(l.node())) {
      var = piIndex.at(net.aig.piVar(l.node()));
    } else {
      var = andIndex.at(l.node());
    }
    return 2 * var + (l.negated() ? 1 : 0);
  };

  const unsigned m = nextIdx - 1;
  out << "aag " << m << ' ' << net.inputVars.size() << ' '
      << net.stateVars.size() << " 1 " << order.size() << '\n';
  for (const VarId v : net.inputVars) out << 2 * piIndex.at(v) << '\n';
  for (std::size_t j = 0; j < net.stateVars.size(); ++j) {
    out << 2 * piIndex.at(net.stateVars[j]) << ' ' << litCode(net.next[j]);
    if (net.init[j]) out << " 1";
    out << '\n';
  }
  out << litCode(net.bad) << '\n';
  for (const aig::NodeId n : order) {
    out << 2 * andIndex.at(n) << ' ' << litCode(net.aig.fanin0(n)) << ' '
        << litCode(net.aig.fanin1(n)) << '\n';
  }
  // Symbol table: record the network's original VarIds (AIGER reindexes
  // variables), then the instance name as a comment.
  for (std::size_t k = 0; k < net.inputVars.size(); ++k)
    out << 'i' << k << " v" << net.inputVars[k] << '\n';
  for (std::size_t k = 0; k < net.stateVars.size(); ++k)
    out << 'l' << k << " v" << net.stateVars[k] << '\n';
  out << "o0 bad\n";
  out << "c\n" << net.name << " (written by cbq)\n";
}

// ----- AIGER binary -----------------------------------------------------------

namespace {

/// Streaming byte source for the binary AND section: a fixed 64 KiB
/// buffer refilled with block reads. A million-gate instance decodes a
/// few megabytes of delta bytes; pulling them through per-byte
/// istream::get() virtual calls dominated the read, and slurping the
/// whole file would cost peak memory the giant bench family is built to
/// avoid. The buffer never grows past kChunk regardless of file size.
class ChunkedByteReader {
 public:
  explicit ChunkedByteReader(std::istream& in) : in_(in) {}

  /// Next byte as 0..255, or -1 at end of input.
  int get() {
    if (pos_ == len_) {
      // Injection site: fail-mode simulates a file truncated mid-chunk,
      // which the callers must turn into a clean ParseError.
      CBQ_FAULT_POINT("io.read_chunk");
      if (CBQ_FAULT_FAIL("io.read_chunk")) return -1;
      in_.read(buf_, kChunk);
      len_ = static_cast<std::size_t>(in_.gcount());
      pos_ = 0;
      if (len_ == 0) return -1;
    }
    return static_cast<unsigned char>(buf_[pos_++]);
  }

 private:
  static constexpr std::size_t kChunk = 64 * 1024;
  std::istream& in_;
  char buf_[kChunk];
  std::size_t pos_ = 0;
  std::size_t len_ = 0;
};

/// LEB128-style varint used by the AIGER binary AND section.
unsigned readDelta(ChunkedByteReader& in) {
  unsigned x = 0;
  int shift = 0;
  for (;;) {
    const int ch = in.get();
    if (ch < 0) throw ParseError("truncated binary AND section");
    x |= static_cast<unsigned>(ch & 0x7f) << shift;
    if ((ch & 0x80) == 0) break;
    shift += 7;
    if (shift > 28) throw ParseError("oversized delta in binary AIGER");
  }
  return x;
}

void writeDelta(std::ostream& out, unsigned x) {
  while (x >= 0x80) {
    out.put(static_cast<char>((x & 0x7f) | 0x80));
    x >>= 7;
  }
  out.put(static_cast<char>(x));
}

}  // namespace

mc::Network readAigBinary(std::istream& in, std::string name) {
  // The header/latch/output section is line-oriented text (the shared
  // LineReader puts line numbers on error reports); the AND section is
  // raw bytes (byte-level diagnostics instead). getline stops exactly
  // after each '\n', so the reader hands the stream over to the binary
  // section in the right position.
  LineReader reader(in);
  unsigned m = 0;
  unsigned i = 0;
  unsigned l = 0;
  unsigned o = 0;
  unsigned a = 0;
  {
    std::istringstream hs(reader.expect("binary AIGER header"));
    std::string magic;
    if (!(hs >> magic >> m >> i >> l >> o >> a) || magic != "aig")
      reader.fail("not a binary AIGER header (aig M I L O A)");
    // The count cap comes first: M = I + L + A is checked in 64 bits so a
    // header crafted to wrap unsigned arithmetic cannot pass either test.
    if (m > kMaxHeaderCount || i > kMaxHeaderCount || l > kMaxHeaderCount ||
        o > kMaxHeaderCount || a > kMaxHeaderCount)
      reader.fail("implausible header count (limit 2^26)");
    if (static_cast<std::uint64_t>(i) + l + a != m)
      reader.fail("inconsistent binary AIGER header");
  }

  Network net;
  net.name = std::move(name);

  // Inputs are implicit: variables 1..I.
  std::vector<Lit> value(m + 1, aig::kFalse);
  for (unsigned k = 1; k <= i; ++k) {
    net.inputVars.push_back(k);
    value[k] = net.aig.pi(k);
  }
  // Latches are implicit variables I+1..I+L; their lines carry next [init].
  struct LatchDef {
    unsigned next;
    bool init;
  };
  std::vector<LatchDef> latches;
  latches.reserve(std::min<std::size_t>(l, kReserveCap));
  for (unsigned k = 0; k < l; ++k) {
    std::istringstream ls(reader.expect("a binary latch line"));
    LatchDef ld;
    unsigned init = 0;
    if (!(ls >> ld.next)) reader.fail("bad binary latch line");
    ld.init = (ls >> init) && init != 0;
    latches.push_back(ld);
    const unsigned var = i + 1 + k;
    net.stateVars.push_back(var);
    net.init.push_back(ld.init);
    value[var] = net.aig.pi(var);
  }
  std::vector<unsigned> outputs;
  outputs.reserve(std::min<std::size_t>(o, kReserveCap));
  for (unsigned k = 0; k < o; ++k) {
    std::istringstream ls(reader.expect("a binary output line"));
    unsigned x = 0;
    if (!(ls >> x)) reader.fail("bad binary output line");
    outputs.push_back(x);
  }

  auto litOf = [&](unsigned x) -> Lit {
    if (x / 2 > m) throw ParseError("literal out of range");
    return value[x / 2] ^ ((x & 1) != 0);
  };

  // Binary AND section: lhs implicit (2*(I+L+k+1)), rhs delta-encoded;
  // the format guarantees topological order. Decoded through a fixed-
  // size chunked buffer — the reader streams a million-gate file without
  // ever holding more than one chunk of it.
  ChunkedByteReader bytes(in);
  for (unsigned k = 0; k < a; ++k) {
    const unsigned lhs = 2 * (i + l + 1 + k);
    const unsigned delta0 = readDelta(bytes);
    const unsigned delta1 = readDelta(bytes);
    if (delta0 > lhs) throw ParseError("invalid delta0");
    const unsigned rhs0 = lhs - delta0;
    if (delta1 > rhs0) throw ParseError("invalid delta1");
    const unsigned rhs1 = rhs0 - delta1;
    value[lhs / 2] = net.aig.mkAnd(litOf(rhs0), litOf(rhs1));
  }

  net.next.reserve(l);
  for (const auto& ld : latches) net.next.push_back(litOf(ld.next));
  std::vector<Lit> bads;
  for (const unsigned x : outputs) bads.push_back(litOf(x));
  net.bad = net.aig.mkOrAll(bads);
  if (!net.wellFormed()) throw ParseError("malformed binary AIGER network");
  return net;
}

void writeAigBinary(const Network& net, std::ostream& out) {
  // Variable order required by the format: inputs, latches, ANDs (topo).
  std::unordered_map<VarId, unsigned> piIndex;
  unsigned nextIdx = 1;
  for (const VarId v : net.inputVars) piIndex.emplace(v, nextIdx++);
  for (const VarId v : net.stateVars) piIndex.emplace(v, nextIdx++);

  std::vector<Lit> roots(net.next.begin(), net.next.end());
  roots.push_back(net.bad);
  const auto order = net.aig.coneAnds(roots);
  std::unordered_map<aig::NodeId, unsigned> andIndex;
  for (const aig::NodeId n : order) andIndex.emplace(n, nextIdx++);

  auto litCode = [&](Lit l) -> unsigned {
    unsigned var = 0;
    if (net.aig.isPi(l.node())) {
      var = piIndex.at(net.aig.piVar(l.node()));
    } else if (net.aig.isAnd(l.node())) {
      var = andIndex.at(l.node());
    }
    return 2 * var + (l.negated() ? 1 : 0);
  };

  const unsigned m = nextIdx - 1;
  out << "aig " << m << ' ' << net.inputVars.size() << ' '
      << net.stateVars.size() << " 1 " << order.size() << '\n';
  for (std::size_t j = 0; j < net.stateVars.size(); ++j) {
    out << litCode(net.next[j]);
    if (net.init[j]) out << " 1";
    out << '\n';
  }
  out << litCode(net.bad) << '\n';
  for (const aig::NodeId n : order) {
    const unsigned lhs = 2 * andIndex.at(n);
    unsigned rhs0 = litCode(net.aig.fanin0(n));
    unsigned rhs1 = litCode(net.aig.fanin1(n));
    if (rhs0 < rhs1) std::swap(rhs0, rhs1);  // format: rhs0 >= rhs1
    writeDelta(out, lhs - rhs0);
    writeDelta(out, rhs0 - rhs1);
  }
}

// ----- ISCAS .bench -----------------------------------------------------------

mc::Network readBench(std::istream& in, std::string name) {
  Network net;
  net.name = std::move(name);

  struct GateDef {
    std::string out;
    std::string op;
    std::vector<std::string> args;
    std::size_t lineNo = 0;
  };
  struct NamedRef {
    std::string name;
    std::size_t lineNo;
  };
  struct DffDef {
    std::string q, d;
    std::size_t lineNo;
  };
  std::vector<GateDef> gates;
  std::vector<NamedRef> outputs;
  std::vector<DffDef> dffs;
  std::unordered_map<std::string, Lit> signal;
  std::unordered_map<std::string, bool> initOne;
  VarId nextVar = 0;

  LineReader reader(in);
  std::string line;
  while (reader.next(line)) {
    // Comments — including our `# init <name> = 1` extension.
    if (const auto hash = line.find('#'); hash != std::string::npos) {
      std::istringstream cs(line.substr(hash + 1));
      std::string word;
      cs >> word;
      if (word == "init") {
        std::string latchName;
        std::string eq;
        int value = 0;
        if (cs >> latchName >> eq >> value && eq == "=")
          initOne[latchName] = (value != 0);
      }
      line.erase(hash);
    }
    // Tokenize NAME = OP(a, b, ...) or INPUT(x) / OUTPUT(x).
    for (auto& c : line)
      if (c == '(' || c == ')' || c == ',' || c == '=') c = ' ';
    std::istringstream ls(line);
    std::vector<std::string> tok;
    std::string t;
    while (ls >> t) tok.push_back(t);
    if (tok.empty()) continue;

    auto upper = [](std::string s) {
      std::transform(s.begin(), s.end(), s.begin(),
                     [](unsigned char c) { return std::toupper(c); });
      return s;
    };

    if (upper(tok[0]) == "INPUT" && tok.size() == 2) {
      const VarId v = nextVar++;
      net.inputVars.push_back(v);
      signal.emplace(tok[1], net.aig.pi(v));
    } else if (upper(tok[0]) == "OUTPUT" && tok.size() == 2) {
      outputs.push_back({tok[1], reader.lineNo()});
    } else if (tok.size() >= 3 && upper(tok[1]) == "DFF") {
      dffs.push_back({tok[0], tok[2], reader.lineNo()});
      const VarId v = nextVar++;
      net.stateVars.push_back(v);
      signal.emplace(tok[0], net.aig.pi(v));
    } else if (tok.size() >= 3) {
      GateDef g;
      g.out = tok[0];
      g.op = upper(tok[1]);
      g.args.assign(tok.begin() + 2, tok.end());
      g.lineNo = reader.lineNo();
      gates.push_back(std::move(g));
    } else {
      reader.fail("unparsable .bench line: " + line);
    }
  }

  // Worklist resolution of combinational gates.
  auto buildGate = [&](const GateDef& g) -> Lit {
    std::vector<Lit> args;
    args.reserve(g.args.size());
    for (const auto& aName : g.args) args.push_back(signal.at(aName));
    aig::Aig& ag = net.aig;
    if (g.op == "AND") return ag.mkAndAll(args);
    if (g.op == "NAND") return !ag.mkAndAll(args);
    if (g.op == "OR") return ag.mkOrAll(args);
    if (g.op == "NOR") return !ag.mkOrAll(args);
    if (g.op == "XOR") {
      Lit r = args.at(0);
      for (std::size_t k = 1; k < args.size(); ++k) r = ag.mkXor(r, args[k]);
      return r;
    }
    if (g.op == "XNOR") {
      Lit r = args.at(0);
      for (std::size_t k = 1; k < args.size(); ++k) r = ag.mkXor(r, args[k]);
      return !r;
    }
    if (g.op == "NOT") return !args.at(0);
    if (g.op == "BUF" || g.op == "BUFF") return args.at(0);
    LineReader::failAt(g.lineNo, "unknown .bench gate type: " + g.op);
  };

  std::vector<GateDef> pending = gates;
  while (!pending.empty()) {
    const std::size_t before = pending.size();
    std::erase_if(pending, [&](const GateDef& g) {
      for (const auto& aName : g.args)
        if (!signal.contains(aName)) return false;
      signal.emplace(g.out, buildGate(g));
      return true;
    });
    if (pending.size() == before)
      LineReader::failAt(pending.front().lineNo,
                         "cyclic or undefined .bench gates");
  }

  for (const auto& dff : dffs) {
    if (!signal.contains(dff.d))
      LineReader::failAt(dff.lineNo, "undefined DFF input: " + dff.d);
    net.next.push_back(signal.at(dff.d));
    const auto initIt = initOne.find(dff.q);
    net.init.push_back(initIt != initOne.end() && initIt->second);
  }
  std::vector<Lit> bads;
  for (const auto& out : outputs) {
    if (!signal.contains(out.name))
      LineReader::failAt(out.lineNo, "undefined output: " + out.name);
    bads.push_back(signal.at(out.name));
  }
  net.bad = net.aig.mkOrAll(bads);
  if (!net.wellFormed()) throw ParseError("malformed .bench network");
  return net;
}

void writeBench(const Network& net, std::ostream& out) {
  std::unordered_map<VarId, std::string> piName;
  for (std::size_t k = 0; k < net.inputVars.size(); ++k)
    piName.emplace(net.inputVars[k], "i" + std::to_string(k));
  for (std::size_t k = 0; k < net.stateVars.size(); ++k)
    piName.emplace(net.stateVars[k], "l" + std::to_string(k));

  std::vector<Lit> roots(net.next.begin(), net.next.end());
  roots.push_back(net.bad);
  const auto order = net.aig.coneAnds(roots);

  std::unordered_map<aig::NodeId, std::string> nodeName;
  auto baseName = [&](aig::NodeId n) -> std::string {
    if (net.aig.isConst(n)) return "const0";
    if (net.aig.isPi(n)) return piName.at(net.aig.piVar(n));
    return nodeName.at(n);
  };

  out << "# " << net.name << " (written by cbq)\n";
  for (std::size_t j = 0; j < net.init.size(); ++j)
    if (net.init[j]) out << "# init l" << j << " = 1\n";
  for (std::size_t k = 0; k < net.inputVars.size(); ++k)
    out << "INPUT(i" << k << ")\n";
  out << "OUTPUT(bad)\n";

  // Dedicated constant and inverter gates (bench has no inline negation).
  // Inverter definitions are queued and flushed *before* the line that
  // references them, so lines never interleave.
  bool needConst = false;
  std::unordered_map<std::string, bool> inverterEmitted;
  std::ostringstream body;
  std::vector<std::string> pendingInverters;
  auto litName = [&](Lit l) -> std::string {
    const std::string base = baseName(l.node());
    if (base == "const0") needConst = true;
    if (!l.negated()) return base;
    const std::string inv = base + "_n";
    if (!inverterEmitted[inv]) {
      pendingInverters.push_back(inv + " = NOT(" + base + ")");
      inverterEmitted[inv] = true;
    }
    return inv;
  };
  auto flushInverters = [&] {
    for (const auto& line : pendingInverters) body << line << '\n';
    pendingInverters.clear();
  };

  for (const aig::NodeId n : order) {
    nodeName.emplace(n, "g" + std::to_string(n));
    const std::string a = litName(net.aig.fanin0(n));
    const std::string b = litName(net.aig.fanin1(n));
    flushInverters();
    body << nodeName.at(n) << " = AND(" << a << ", " << b << ")\n";
  }
  {
    const std::string badName = litName(net.bad);
    flushInverters();
    body << "bad = BUF(" << badName << ")\n";
  }
  for (std::size_t j = 0; j < net.stateVars.size(); ++j) {
    const std::string nx = litName(net.next[j]);
    flushInverters();
    body << "l" << j << " = DFF(" << nx << ")\n";
  }

  if (needConst) {
    // const0 = AND(x, NOT(x)) over the first available signal.
    const std::string base = !net.inputVars.empty()
                                 ? "i0"
                                 : (!net.stateVars.empty() ? "l0" : "");
    if (base.empty()) throw ParseError("cannot emit constant: no signals");
    out << base << "_n0 = NOT(" << base << ")\n";
    out << "const0 = AND(" << base << ", " << base << "_n0)\n";
  }
  out << body.str();
}

mc::Network readCircuitFile(const std::string& path) {
  const auto dot = path.find_last_of('.');
  const std::string ext = dot == std::string::npos ? "" : path.substr(dot);
  // Binary AIGER carries delta-encoded AND bytes that text-mode reads
  // mangle on platforms with newline translation.
  const auto mode = ext == ".aig" ? std::ios::in | std::ios::binary
                                  : std::ios::in;
  std::ifstream in(path, mode);
  if (!in) throw ParseError("cannot open file: " + path);
  const auto slash = path.find_last_of('/');
  const std::string base =
      slash == std::string::npos ? path : path.substr(slash + 1);
  // Prefix parse failures with the file path, so a batch over hundreds
  // of files reports `dir/foo.aag: line 12: bad latch line`.
  try {
    if (ext == ".aag") return readAag(in, base);
    if (ext == ".aig") return readAigBinary(in, base);
    if (ext == ".bench") return readBench(in, base);
  } catch (const ParseError& e) {
    throw ParseError(path + ": " + e.what());
  }
  throw ParseError("unsupported circuit file extension: " + path);
}

}  // namespace cbq::circuits

#pragma once
// Parametric benchmark families.
//
// The paper evaluates on "hard-to-verify circuits and properties" from the
// usual (industrial/ISCAS) pools, which are not redistributable; these
// eight families synthesize the same structural spectrum — datapath
// counters with long diameters, linear-feedback machines, one-hot control,
// handshake/guard logic and a real mutual-exclusion protocol — each with a
// SAFE variant (the invariant holds; provable by fixpoint or induction)
// and an UNSAFE variant (a planted, realistic bug; a counterexample
// exists at a family-dependent depth).

#include <cstdint>

#include "mc/network.hpp"

namespace cbq::circuits {

/// n-bit enabled counter. Safe: wraps from 2^n-2 to 0, so the all-ones
/// value is unreachable (bad = all-ones). Unsafe: wraps at 2^n-1; bad is
/// reached after 2^n-1 increments.
mc::Network makeCounter(int n, bool safe);

/// n-bit counter that steps by +2 (the LSB is frozen at 0). Safe: bad is
/// the all-ones value — odd, hence unreachable, but backward reachability
/// must enumerate the whole odd chain one pre-image at a time before the
/// fixpoint closes (~2^(n-1) iterations with steadily growing state
/// sets). This is the family that stresses the merge/optimization phases.
/// Unsafe: bad = 2^n-2 (even), reachable after 2^(n-1)-1 increments.
mc::Network makeEvenCounter(int n, bool safe);

/// Binary counter paired with a Gray-code register stepping in lock-step.
/// bad = (gray != binToGray(bin)) — a relational invariant. The unsafe
/// variant omits one XOR in the Gray update.
mc::Network makeGrayPair(int n, bool safe);

/// One-hot token ring of n stages, one token at reset. bad = two tokens.
/// The unsafe variant lets an external request inject a spurious token.
mc::Network makeTokenRing(int n, bool safe);

/// Round-robin arbiter: a rotating one-hot token gates the grants.
/// bad = two simultaneous grants. The unsafe variant grants client 0
/// combinationally, ignoring the token.
mc::Network makeArbiter(int n, bool safe);

/// Two-phase traffic-light controller (2-bit phase, per-light latches).
/// bad = both directions green. The unsafe variant also lights the
/// east-west lamp in phase 0.
mc::Network makeTrafficLight(bool safe);

/// n-bit Fibonacci LFSR seeded with 1. Safe: bad = (state == 0), which is
/// unreachable because the update map is invertible. Unsafe: bad compares
/// against the state reached after `unsafeDepth` steps (computed by
/// simulation at generation time, so it is reachable by construction).
mc::Network makeLfsr(int n, bool safe, int unsafeDepth = 11);

/// Bounded queue controller: n-bit occupancy counter with inc/dec inputs
/// and full/empty guards; capacity 2^n-2. bad = occupancy == 2^n-1.
/// The unsafe variant registers the `full` flag one cycle late — a
/// classic pipelined-guard overflow bug.
mc::Network makeQueue(int n, bool safe);

/// Multiplier self-check — the BDD-killer family. State: a rotating
/// one-hot register `a` (k bits) and a constant register `b` (init 1).
/// bad reads the **middle bit of the k×k product a·b**, computed by a
/// full shift-add array: every BDD of that function is exponential in k
/// regardless of variable order, while the AIG stays at O(k²) nodes —
/// the paper's §1 motivation in its purest form. Safe: bad additionally
/// requires a == 3 (two adjacent bits), unreachable because `a` stays
/// one-hot, while the bad set itself stays non-empty and
/// multiplier-shaped. Unsafe: bad = middle bit alone, first true after
/// k-1 rotations.
mc::Network makeMultiplier(int k, bool safe);

/// Needle-in-a-haystack — the preprocessing showcase. An n-bit counter
/// core (same dynamics and property as makeCounter) is buried under
/// realistic industrial clutter, every piece answering to one prep pass:
///  * a full duplicate of the core register (same update logic), compared
///    into bad through a relational XOR — latch correspondence merges it;
///  * two stuck-at latches (next = self): one gates irrelevant logic into
///    bad, one gates the core's enable — constant-latch sweep removes
///    both and the gating collapses;
///  * a one-hot rotating "noise" ring OR-ed into bad behind the stuck-0
///    guard — once the guard is swept, cone-of-influence reduction drops
///    the whole ring and its rotate input;
///  * a disconnected scrambler register (input-driven feedback shifter
///    feeding nothing) — pure COI fodder.
/// Without preprocessing every engine carries 5n+2 latches and 3 inputs;
/// the pipeline reduces the problem to the n-latch, 1-input counter core.
/// The stuck-at guards hold in every reachable state AND the clutter
/// invariants are 1-inductive, so the safe variant stays provable by
/// k-induction even without preprocessing.
mc::Network makeHaystack(int n, bool safe);

/// Million-gate haystack — the intra-problem-parallelism showcase. The
/// same n-bit counter core (and property) as makeHaystack, plus `copies`
/// duplicate registers stepping in lock-step with the core; each copy is
/// compared against the core through a `mixGates`-stage combinational
/// mixing cone (a balanced XOR/AND pipeline, ~4 ANDs per stage, built
/// once over the core bits and once over the copy bits), with the XOR of
/// the two mix outputs OR-ed into bad. Total size ≈ 8 · mixGates ·
/// copies ANDs, so width pushes the bad cone to 10⁵–10⁶ gates while the
/// verdict stays that of the n-bit counter: the copies never diverge, so
/// every mix pair agrees forever. Latch correspondence proves the copies
/// equal, the rebuild then hash-collapses each mix pair (XOR of
/// identical cones folds to constant false), and the engines see a plain
/// counter — but until that happens, every prep pass and the sweeper's
/// signature arena grind a million-gate cone: exactly the workload the
/// parallel execution layer exists for.
mc::Network makeGiantHaystack(int n, int mixGates, int copies, bool safe);

/// Peterson's mutual-exclusion protocol for two processes (program
/// counters, flags, turn; scheduler + request inputs). bad = both in the
/// critical section. The unsafe variant lowers a process's flag while it
/// is inside the critical section.
mc::Network makePeterson(bool safe);

}  // namespace cbq::circuits

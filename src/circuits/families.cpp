#include "circuits/families.hpp"

#include <cassert>
#include <string>
#include <vector>

namespace cbq::circuits {

namespace {

using aig::Lit;
using mc::Network;
using mc::NetworkBuilder;

/// True iff the bit vector equals the constant `value` (LSB first).
Lit equalsConst(aig::Aig& g, std::span<const Lit> bits, std::uint64_t value) {
  std::vector<Lit> terms;
  terms.reserve(bits.size());
  for (std::size_t i = 0; i < bits.size(); ++i) {
    const bool bit = ((value >> i) & 1) != 0;
    terms.push_back(bits[i] ^ !bit);
  }
  return g.mkAndAll(terms);
}

/// bits + 1 with wrap-around (ripple carry).
std::vector<Lit> incremented(aig::Aig& g, std::span<const Lit> bits) {
  std::vector<Lit> out;
  out.reserve(bits.size());
  Lit carry = aig::kTrue;
  for (const Lit b : bits) {
    out.push_back(g.mkXor(b, carry));
    carry = g.mkAnd(b, carry);
  }
  return out;
}

/// bits - 1 with wrap-around (ripple borrow).
std::vector<Lit> decremented(aig::Aig& g, std::span<const Lit> bits) {
  std::vector<Lit> out;
  out.reserve(bits.size());
  Lit borrow = aig::kTrue;
  for (const Lit b : bits) {
    out.push_back(g.mkXor(b, borrow));
    borrow = g.mkAnd(!b, borrow);
  }
  return out;
}

/// At least two of the literals are true (pairwise conflict).
Lit twoOrMore(aig::Aig& g, std::span<const Lit> bits) {
  std::vector<Lit> pairs;
  for (std::size_t i = 0; i < bits.size(); ++i)
    for (std::size_t j = i + 1; j < bits.size(); ++j)
      pairs.push_back(g.mkAnd(bits[i], bits[j]));
  return g.mkOrAll(pairs);
}

/// Per-bit multiplexed update: latch' = sel ? a : b.
std::vector<Lit> muxVec(aig::Aig& g, Lit sel, std::span<const Lit> a,
                        std::span<const Lit> b) {
  std::vector<Lit> out;
  out.reserve(a.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    out.push_back(g.mkMux(sel, a[i], b[i]));
  return out;
}

}  // namespace

Network makeCounter(int n, bool safe) {
  assert(n >= 2);
  NetworkBuilder b(std::string("counter") + (safe ? "-safe-" : "-buggy-") +
                   std::to_string(n));
  std::vector<Lit> s;
  for (int i = 0; i < n; ++i) s.push_back(b.addLatch(false));
  const Lit en = b.addInput();
  aig::Aig& g = b.aig();

  const std::uint64_t allOnes = (std::uint64_t{1} << n) - 1;
  auto inc = incremented(g, s);
  if (safe) {
    // Wrap one short of all-ones: the bad value falls out of the orbit.
    const Lit atWrap = equalsConst(g, s, allOnes - 1);
    for (auto& bit : inc) bit = g.mkAnd(bit, !atWrap);
  }
  const auto next = muxVec(g, en, inc, s);
  for (int i = 0; i < n; ++i) b.setNext(static_cast<std::size_t>(i), next[i]);
  b.setBad(equalsConst(g, s, allOnes));
  return b.finish();
}

Network makeEvenCounter(int n, bool safe) {
  assert(n >= 2);
  NetworkBuilder b(std::string("evencount") + (safe ? "-safe-" : "-buggy-") +
                   std::to_string(n));
  std::vector<Lit> s;
  for (int i = 0; i < n; ++i) s.push_back(b.addLatch(false));
  const Lit en = b.addInput();
  aig::Aig& g = b.aig();

  // +2: ripple carry injected at bit 1; bit 0 never changes.
  std::vector<Lit> inc2{s[0]};
  Lit carry = aig::kTrue;
  for (int i = 1; i < n; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    inc2.push_back(g.mkXor(s[idx], carry));
    carry = g.mkAnd(s[idx], carry);
  }
  const auto next = muxVec(g, en, inc2, s);
  for (int i = 0; i < n; ++i) b.setNext(static_cast<std::size_t>(i), next[i]);

  const std::uint64_t allOnes = (std::uint64_t{1} << n) - 1;
  // Safe: all-ones is odd and the counter stays even. Unsafe: the largest
  // even value, reached after 2^(n-1)-1 enabled steps.
  b.setBad(equalsConst(g, s, safe ? allOnes : allOnes - 1));
  return b.finish();
}

Network makeGrayPair(int n, bool safe) {
  assert(n >= 2);
  NetworkBuilder b(std::string("gray") + (safe ? "-safe-" : "-buggy-") +
                   std::to_string(n));
  std::vector<Lit> bin;
  std::vector<Lit> gray;
  for (int i = 0; i < n; ++i) bin.push_back(b.addLatch(false));
  for (int i = 0; i < n; ++i) gray.push_back(b.addLatch(false));
  const Lit en = b.addInput();
  aig::Aig& g = b.aig();

  auto toGray = [&](std::span<const Lit> v) {
    std::vector<Lit> out;
    for (int i = 0; i < n; ++i) {
      out.push_back(i + 1 < n ? g.mkXor(v[static_cast<std::size_t>(i)],
                                        v[static_cast<std::size_t>(i + 1)])
                              : v[static_cast<std::size_t>(i)]);
    }
    return out;
  };

  const auto binInc = incremented(g, bin);
  const auto binNext = muxVec(g, en, binInc, bin);
  auto grayNext = toGray(binNext);
  if (!safe) grayNext[0] = binNext[0];  // dropped XOR in the Gray update

  for (int i = 0; i < n; ++i) {
    b.setNext(static_cast<std::size_t>(i), binNext[static_cast<std::size_t>(i)]);
    b.setNext(static_cast<std::size_t>(n + i),
              grayNext[static_cast<std::size_t>(i)]);
  }

  // bad: gray register deviates from binToGray(bin).
  const auto expected = toGray(bin);
  std::vector<Lit> diffs;
  for (int i = 0; i < n; ++i)
    diffs.push_back(g.mkXor(gray[static_cast<std::size_t>(i)],
                            expected[static_cast<std::size_t>(i)]));
  b.setBad(g.mkOrAll(diffs));
  return b.finish();
}

Network makeTokenRing(int n, bool safe) {
  assert(n >= 2);
  NetworkBuilder b(std::string("ring") + (safe ? "-safe-" : "-buggy-") +
                   std::to_string(n));
  std::vector<Lit> t;
  for (int i = 0; i < n; ++i) t.push_back(b.addLatch(i == 0));
  const Lit inject = b.addInput();
  aig::Aig& g = b.aig();

  Lit head = t[static_cast<std::size_t>(n - 1)];
  if (!safe) head = g.mkOr(head, inject);  // spurious token injection
  b.setNext(0, head);
  for (int i = 1; i < n; ++i)
    b.setNext(static_cast<std::size_t>(i), t[static_cast<std::size_t>(i - 1)]);
  b.setBad(twoOrMore(g, t));
  return b.finish();
}

Network makeArbiter(int n, bool safe) {
  assert(n >= 2);
  NetworkBuilder b(std::string("arbiter") + (safe ? "-safe-" : "-buggy-") +
                   std::to_string(n));
  std::vector<Lit> t;
  for (int i = 0; i < n; ++i) t.push_back(b.addLatch(i == 0));
  std::vector<Lit> req;
  for (int i = 0; i < n; ++i) req.push_back(b.addInput());
  aig::Aig& g = b.aig();

  // Rotating one-hot token.
  b.setNext(0, t[static_cast<std::size_t>(n - 1)]);
  for (int i = 1; i < n; ++i)
    b.setNext(static_cast<std::size_t>(i), t[static_cast<std::size_t>(i - 1)]);

  std::vector<Lit> grants;
  for (int i = 0; i < n; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    grants.push_back((i == 0 && !safe) ? req[idx]  // token check forgotten
                                       : g.mkAnd(req[idx], t[idx]));
  }
  b.setBad(twoOrMore(g, grants));
  return b.finish();
}

Network makeTrafficLight(bool safe) {
  NetworkBuilder b(std::string("traffic") + (safe ? "-safe" : "-buggy"));
  const Lit p0 = b.addLatch(false);
  const Lit p1 = b.addLatch(false);
  const Lit ns = b.addLatch(true);   // north-south green in phase 0
  const Lit ew = b.addLatch(false);  // east-west green in phase 2
  const Lit adv = b.addInput();
  aig::Aig& g = b.aig();

  const Lit phase[] = {p0, p1};
  const auto phaseInc = incremented(g, phase);
  const auto phaseNext = muxVec(g, adv, phaseInc, phase);

  const Lit nextIsPhase0 = g.mkAnd(!phaseNext[0], !phaseNext[1]);
  const Lit nextIsPhase2 = g.mkAnd(!phaseNext[0], phaseNext[1]);

  b.setNextOf(p0, phaseNext[0]);
  b.setNextOf(p1, phaseNext[1]);
  b.setNextOf(ns, nextIsPhase0);
  b.setNextOf(ew, safe ? nextIsPhase2 : g.mkOr(nextIsPhase2, nextIsPhase0));
  b.setBad(g.mkAnd(ns, ew));
  return b.finish();
}

Network makeLfsr(int n, bool safe, int unsafeDepth) {
  assert(n >= 2);
  NetworkBuilder b(std::string("lfsr") + (safe ? "-safe-" : "-buggy-") +
                   std::to_string(n));
  std::vector<Lit> s;
  for (int i = 0; i < n; ++i) s.push_back(b.addLatch(i == 0));  // seed = 1
  const Lit en = b.addInput();
  aig::Aig& g = b.aig();

  const int tap = n >= 3 ? n - 3 : 0;
  const Lit feedback =
      g.mkXor(s[static_cast<std::size_t>(n - 1)],
              s[static_cast<std::size_t>(tap)]);
  std::vector<Lit> shifted{feedback};
  for (int i = 1; i < n; ++i)
    shifted.push_back(s[static_cast<std::size_t>(i - 1)]);
  const auto next = muxVec(g, en, shifted, s);
  for (int i = 0; i < n; ++i) b.setNext(static_cast<std::size_t>(i), next[i]);

  std::uint64_t badValue = 0;
  if (!safe) {
    // Simulate the LFSR in software; whatever state we land on is
    // reachable by construction (en = 1 for `unsafeDepth` steps).
    std::uint64_t st = 1;
    for (int step = 0; step < unsafeDepth; ++step) {
      const std::uint64_t fb = ((st >> (n - 1)) ^ (st >> tap)) & 1;
      st = ((st << 1) | fb) & ((std::uint64_t{1} << n) - 1);
    }
    badValue = st;
  }
  // Safe: the update is an invertible linear map with fixed point 0, so a
  // non-zero seed can never reach 0.
  b.setBad(equalsConst(g, s, badValue));
  return b.finish();
}

Network makeQueue(int n, bool safe) {
  assert(n >= 2);
  NetworkBuilder b(std::string("queue") + (safe ? "-safe-" : "-buggy-") +
                   std::to_string(n));
  std::vector<Lit> cnt;
  for (int i = 0; i < n; ++i) cnt.push_back(b.addLatch(false));
  Lit fullReg = aig::kFalse;
  if (!safe) fullReg = b.addLatch(false);
  const Lit inc = b.addInput();
  const Lit dec = b.addInput();
  aig::Aig& g = b.aig();

  const std::uint64_t cap = (std::uint64_t{1} << n) - 2;
  const Lit empty = equalsConst(g, cnt, 0);
  const Lit fullComb = equalsConst(g, cnt, cap);
  // The planted bug: the guard sees last cycle's full flag.
  const Lit full = safe ? fullComb : fullReg;

  const Lit doInc = g.mkAnd(inc, !full);
  const Lit doDec = g.mkAnd(dec, !empty);
  const Lit incOnly = g.mkAnd(doInc, !doDec);
  const Lit decOnly = g.mkAnd(doDec, !doInc);

  const auto up = incremented(g, cnt);
  const auto down = decremented(g, cnt);
  for (int i = 0; i < n; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    b.setNext(idx, g.mkMux(incOnly, up[idx], g.mkMux(decOnly, down[idx],
                                                     cnt[idx])));
  }
  if (!safe) b.setNextOf(fullReg, fullComb);
  b.setBad(equalsConst(g, cnt, cap + 1));
  return b.finish();
}

Network makeMultiplier(int k, bool safe) {
  assert(k >= 2);
  NetworkBuilder b(std::string("mult") + (safe ? "-safe-" : "-buggy-") +
                   std::to_string(k));
  std::vector<Lit> a;
  std::vector<Lit> bb;
  for (int i = 0; i < k; ++i) a.push_back(b.addLatch(i == 0));   // one-hot
  for (int i = 0; i < k; ++i) bb.push_back(b.addLatch(i == 0));  // const 1
  const Lit en = b.addInput();
  aig::Aig& g = b.aig();

  // a rotates left under enable; b holds its value.
  for (int i = 0; i < k; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    const Lit rotated = a[static_cast<std::size_t>((i + k - 1) % k)];
    b.setNext(idx, g.mkMux(en, rotated, a[idx]));
    b.setNext(static_cast<std::size_t>(k + i), bb[idx]);
  }

  // Shift-add multiplier, product mod 2^k: acc += a_i ? (b << i) : 0.
  std::vector<Lit> acc(static_cast<std::size_t>(k), aig::kFalse);
  for (int i = 0; i < k; ++i) {
    // Addend: (b << i) gated by a_i, ripple-added into acc.
    Lit carry = aig::kFalse;
    for (int j = i; j < k; ++j) {
      const auto jj = static_cast<std::size_t>(j);
      const Lit addBit =
          g.mkAnd(a[static_cast<std::size_t>(i)],
                  bb[static_cast<std::size_t>(j - i)]);
      const Lit sum = g.mkXor(g.mkXor(acc[jj], addBit), carry);
      carry = g.mkOr(g.mkAnd(acc[jj], addBit),
                     g.mkAnd(carry, g.mkOr(acc[jj], addBit)));
      acc[jj] = sum;
    }
  }
  const Lit middleBit = acc[static_cast<std::size_t>(k - 1)];

  // Safe: require a == 3 (two adjacent one-bits) — unreachable since `a`
  // stays one-hot, yet the bad set is non-empty and carries the full
  // multiplier structure through every pre-image.
  b.setBad(safe ? g.mkAnd(middleBit, equalsConst(g, a, 3)) : middleBit);
  return b.finish();
}

Network makeHaystack(int n, bool safe) {
  assert(n >= 2);
  NetworkBuilder b(std::string("haystack") + (safe ? "-safe-" : "-buggy-") +
                   std::to_string(n));
  // Core counter + an identical duplicate register.
  std::vector<Lit> core;
  std::vector<Lit> copy;
  for (int i = 0; i < n; ++i) core.push_back(b.addLatch(false));
  for (int i = 0; i < n; ++i) copy.push_back(b.addLatch(false));
  // Stuck-at latches: s0 holds 0 forever, s1 holds 1 forever.
  const Lit s0 = b.addLatch(false);
  const Lit s1 = b.addLatch(true);
  // One-hot noise ring (2n stages) and a disconnected scrambler (n bits).
  const int ringLen = 2 * n;
  std::vector<Lit> ring;
  for (int i = 0; i < ringLen; ++i) ring.push_back(b.addLatch(i == 0));
  std::vector<Lit> scram;
  for (int i = 0; i < n; ++i) scram.push_back(b.addLatch(false));
  const Lit en = b.addInput();      // core enable
  const Lit rotate = b.addInput();  // ring rotate enable
  const Lit inject = b.addInput();  // scrambler feedback disturbance
  aig::Aig& g = b.aig();

  b.setNextOf(s0, s0);
  b.setNextOf(s1, s1);

  // Core and copy step under the SAME (pointlessly gated) enable; the
  // safe variant wraps one short of all-ones exactly like makeCounter.
  const std::uint64_t allOnes = (std::uint64_t{1} << n) - 1;
  const Lit enEff = g.mkAnd(en, s1);
  auto step = [&](std::span<const Lit> reg) {
    auto inc = incremented(g, reg);
    if (safe) {
      const Lit atWrap = equalsConst(g, reg, allOnes - 1);
      for (auto& bit : inc) bit = g.mkAnd(bit, !atWrap);
    }
    return muxVec(g, enEff, inc, reg);
  };
  const auto coreNext = step(core);
  const auto copyNext = step(copy);
  for (int i = 0; i < n; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    b.setNextOf(core[idx], coreNext[idx]);
    b.setNextOf(copy[idx], copyNext[idx]);
  }

  // Noise ring: pure rotation (token count is invariant, so the guarded
  // two-token term below stays 1-inductive).
  for (int i = 0; i < ringLen; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    const Lit prev = ring[static_cast<std::size_t>((i + ringLen - 1) %
                                                   ringLen)];
    b.setNextOf(ring[idx], g.mkMux(rotate, prev, ring[idx]));
  }

  // Disconnected scrambler: feedback shifter stirred by an input; no cone
  // below bad ever reads it.
  const Lit fb = g.mkXor(scram[static_cast<std::size_t>(n - 1)], inject);
  for (int i = 0; i < n; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    b.setNextOf(scram[idx], i == 0 ? fb
                                   : scram[static_cast<std::size_t>(i - 1)]);
  }

  // bad = core property violation
  //     ∨ core/copy divergence (never happens: registers step in
  //       lock-step — latch correspondence proves it)
  //     ∨ two ring tokens behind the stuck-0 guard (never happens: the
  //       guard is constant false — constant sweep collapses it).
  const Lit coreBad = equalsConst(g, core, allOnes);
  std::vector<Lit> diverge;
  for (int i = 0; i < n; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    diverge.push_back(g.mkXor(core[idx], copy[idx]));
  }
  const Lit dupTerm = g.mkOrAll(diverge);
  const Lit junkTerm = g.mkAnd(s0, twoOrMore(g, ring));
  b.setBad(g.mkOr(coreBad, g.mkOr(dupTerm, junkTerm)));
  return b.finish();
}

Network makeGiantHaystack(int n, int mixGates, int copies, bool safe) {
  assert(n >= 2);
  assert(mixGates >= 1);
  assert(copies >= 1);
  NetworkBuilder b(std::string("giant") + (safe ? "-safe-" : "-buggy-") +
                   std::to_string(n) + "x" + std::to_string(mixGates) + "x" +
                   std::to_string(copies));
  std::vector<Lit> core;
  for (int i = 0; i < n; ++i) core.push_back(b.addLatch(false));
  std::vector<std::vector<Lit>> copy(static_cast<std::size_t>(copies));
  for (auto& c : copy)
    for (int i = 0; i < n; ++i) c.push_back(b.addLatch(false));
  const Lit en = b.addInput();
  // Extra mixing inputs, shared by the two cones of every pair: they
  // widen each stage's support to ~36 variables, so the pipeline stages
  // are functionally diverse — without them everything is a function of
  // the n register bits and the sweeper mass-merges the whole cone,
  // turning the workload SAT-bound instead of signature-bound.
  std::vector<Lit> noise;
  for (int i = 0; i < 32; ++i) noise.push_back(b.addInput());
  aig::Aig& g = b.aig();

  // Core and every copy step with the SAME counter logic (the safe
  // variant wraps one short of all-ones, exactly like makeCounter).
  const std::uint64_t allOnes = (std::uint64_t{1} << n) - 1;
  auto step = [&](std::span<const Lit> reg) {
    auto inc = incremented(g, reg);
    if (safe) {
      const Lit atWrap = equalsConst(g, reg, allOnes - 1);
      for (auto& bit : inc) bit = g.mkAnd(bit, !atWrap);
    }
    return muxVec(g, en, inc, reg);
  };
  const auto coreNext = step(core);
  for (int i = 0; i < n; ++i)
    b.setNextOf(core[static_cast<std::size_t>(i)],
                coreNext[static_cast<std::size_t>(i)]);
  for (auto& c : copy) {
    const auto next = step(c);
    for (int i = 0; i < n; ++i)
      b.setNextOf(c[static_cast<std::size_t>(i)],
                  next[static_cast<std::size_t>(i)]);
  }

  // Balanced combinational mixing pipeline over a register: a Trivium-
  // style shift with a nonlinear tap (one XOR + one AND per stage, ≈4
  // ANDs after XOR lowering). `salt` varies the tap pattern per copy so
  // the k mix pairs are distinct functions; the two cones of one pair
  // are structurally identical modulo core-vs-copy variables.
  auto mix = [&](std::span<const Lit> reg, int salt) {
    std::vector<Lit> s(reg.begin(), reg.end());
    s.insert(s.end(), noise.begin(), noise.end());
    const std::size_t len = s.size();
    Lit out = s[0];
    for (int j = 0; j < mixGates; ++j) {
      const std::size_t a = static_cast<std::size_t>(j + salt) % len;
      const std::size_t c = static_cast<std::size_t>(j * 5 + salt + 1) % len;
      const Lit t = g.mkXor(s[a], g.mkAnd(out, s[c]));
      s[a] = t;
      out = t;
    }
    return out;
  };

  // bad = core property violation ∨ any mix pair diverging (never
  // happens: each copy tracks the core bit-for-bit, so equal inputs give
  // equal mix outputs — latch correspondence proves the registers equal
  // and the rebuild collapses every pair).
  std::vector<Lit> terms{equalsConst(g, core, allOnes)};
  for (std::size_t k = 0; k < copy.size(); ++k)
    terms.push_back(g.mkXor(mix(core, static_cast<int>(k)),
                            mix(copy[k], static_cast<int>(k))));
  b.setBad(g.mkOrAll(terms));
  return b.finish();
}

Network makePeterson(bool safe) {
  NetworkBuilder b(std::string("peterson") + (safe ? "-safe" : "-buggy"));
  // Program counters: 00 idle, 01 trying, 10 critical.
  const Lit pc0lo = b.addLatch(false);
  const Lit pc0hi = b.addLatch(false);
  const Lit pc1lo = b.addLatch(false);
  const Lit pc1hi = b.addLatch(false);
  const Lit turn = b.addLatch(false);
  const Lit w0 = b.addInput();
  const Lit w1 = b.addInput();
  const Lit sched = b.addInput();  // 0: process 0 steps; 1: process 1 steps
  aig::Aig& g = b.aig();

  struct Proc {
    Lit lo, hi, want, active;
    bool id;
  };
  const Proc procs[2] = {{pc0lo, pc0hi, w0, !sched, false},
                         {pc1lo, pc1hi, w1, sched, true}};

  // Flags are derived from the program counters. The planted bug: the
  // flag drops while the process is in the critical section.
  auto flagOf = [&](const Proc& p) {
    return safe ? g.mkOr(p.lo, p.hi)          // pc != idle
                : g.mkAnd(p.lo, !p.hi);       // pc == trying only
  };
  const Lit flag[2] = {flagOf(procs[0]), flagOf(procs[1])};

  Lit turnNext = turn;
  for (int i = 0; i < 2; ++i) {
    const Proc& p = procs[i];
    const Lit flagOther = flag[1 - i];
    const Lit turnIsMine = p.id ? turn : !turn;

    const Lit isIdle = g.mkAnd(!p.lo, !p.hi);
    const Lit isTrying = g.mkAnd(p.lo, !p.hi);
    const Lit isCrit = g.mkAnd(!p.lo, p.hi);

    const Lit go1 = g.mkAnd(isIdle, p.want);                    // -> trying
    const Lit canEnter = g.mkOr(!flagOther, turnIsMine);
    const Lit go2 = g.mkAnd(isTrying, canEnter);                // -> critical
    const Lit go0 = isCrit;                                     // release

    // Next pc when this process is scheduled.
    const Lit loStep = g.mkOr(go1, g.mkAnd(!go2, g.mkAnd(!go0, p.lo)));
    const Lit hiStep = g.mkOr(go2, g.mkAnd(!go0, g.mkAnd(!go1, p.hi)));
    b.setNextOf(p.lo, g.mkMux(p.active, loStep, p.lo));
    b.setNextOf(p.hi, g.mkMux(p.active, hiStep, p.hi));

    // Entering the trying section yields the turn to the other process.
    const Lit yield = g.mkAnd(p.active, go1);
    turnNext = g.mkMux(yield, p.id ? aig::kFalse : aig::kTrue, turnNext);
  }
  b.setNextOf(turn, turnNext);

  const Lit crit0 = g.mkAnd(!pc0lo, pc0hi);
  const Lit crit1 = g.mkAnd(!pc1lo, pc1hi);
  b.setBad(g.mkAnd(crit0, crit1));
  return b.finish();
}

}  // namespace cbq::circuits

#include "circuits/suite.hpp"

#include <stdexcept>

namespace cbq::circuits {

std::vector<std::string> familyNames() {
  return {"counter", "evencount", "gray", "ring", "arbiter",
          "traffic", "lfsr", "queue", "mult", "peterson", "haystack",
          "giant"};
}

Instance makeInstance(const std::string& family, int width, bool safe) {
  Instance inst;
  inst.family = family;
  inst.width = width;
  inst.expected = safe ? mc::Verdict::Safe : mc::Verdict::Unsafe;
  if (family == "counter") {
    inst.net = makeCounter(width, safe);
  } else if (family == "evencount") {
    inst.net = makeEvenCounter(width, safe);
  } else if (family == "gray") {
    inst.net = makeGrayPair(width, safe);
  } else if (family == "ring") {
    inst.net = makeTokenRing(width, safe);
  } else if (family == "arbiter") {
    inst.net = makeArbiter(width, safe);
  } else if (family == "traffic") {
    inst.net = makeTrafficLight(safe);
    inst.width = 0;
  } else if (family == "lfsr") {
    inst.net = makeLfsr(width, safe);
  } else if (family == "queue") {
    inst.net = makeQueue(width, safe);
  } else if (family == "mult") {
    inst.net = makeMultiplier(width, safe);
  } else if (family == "peterson") {
    inst.net = makePeterson(safe);
    inst.width = 0;
  } else if (family == "haystack") {
    inst.net = makeHaystack(width, safe);
  } else if (family == "giant") {
    // width = mixing stages per comparison cone; the 4-bit core and two
    // duplicate registers are fixed, so ANDs ≈ 16 · width + O(1).
    inst.net = makeGiantHaystack(4, width, 2, safe);
  } else {
    throw std::invalid_argument("unknown benchmark family: " + family);
  }
  return inst;
}

std::vector<Instance> standardSuite() {
  std::vector<Instance> suite;
  for (const bool safe : {true, false}) {
    suite.push_back(makeInstance("counter", 3, safe));
    suite.push_back(makeInstance("counter", 4, safe));
    suite.push_back(makeInstance("evencount", 4, safe));
    suite.push_back(makeInstance("evencount", 5, safe));
    suite.push_back(makeInstance("gray", 3, safe));
    suite.push_back(makeInstance("gray", 4, safe));
    suite.push_back(makeInstance("ring", 4, safe));
    suite.push_back(makeInstance("ring", 6, safe));
    suite.push_back(makeInstance("arbiter", 3, safe));
    suite.push_back(makeInstance("arbiter", 4, safe));
    suite.push_back(makeInstance("traffic", 0, safe));
    suite.push_back(makeInstance("lfsr", 4, safe));
    suite.push_back(makeInstance("lfsr", 5, safe));
    suite.push_back(makeInstance("queue", 3, safe));
    suite.push_back(makeInstance("mult", 4, safe));
    suite.push_back(makeInstance("peterson", 0, safe));
    suite.push_back(makeInstance("haystack", 3, safe));
    // Small enough for every engine raw (the BDD baselines blow up on
    // the wide mixing support past ~width 10); bench-par scales it up.
    suite.push_back(makeInstance("giant", 8, safe));
  }
  return suite;
}

std::vector<Instance> widthSweep(const std::string& family,
                                 std::vector<int> widths, bool safe) {
  std::vector<Instance> out;
  out.reserve(widths.size());
  for (const int w : widths) out.push_back(makeInstance(family, w, safe));
  return out;
}

}  // namespace cbq::circuits

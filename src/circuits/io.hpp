#pragma once
// Circuit file I/O: AIGER ASCII (.aag) and ISCAS-style .bench.
//
// These let a downstream user run the engines on real benchmark files.
// Conventions:
//  * .aag — standard AIGER ascii; every output is a bad signal (they are
//    OR-ed together), latch reset values follow the optional third field.
//  * .bench — INPUT/OUTPUT/AND/NAND/OR/NOR/XOR/XNOR/NOT/BUF/DFF; outputs
//    are OR-ed into the bad condition; latches reset to 0 unless a
//    `# init <name> = 1` comment (our round-trip extension) says otherwise.

#include <iosfwd>
#include <stdexcept>
#include <string>

#include "mc/network.hpp"

namespace cbq::circuits {

/// Thrown on malformed input files.
struct ParseError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

mc::Network readAag(std::istream& in, std::string name = "aag");
void writeAag(const mc::Network& net, std::ostream& out);

/// AIGER **binary** format (.aig): implicit input/latch literals,
/// delta-encoded AND gates. This is what distributed benchmark sets ship.
mc::Network readAigBinary(std::istream& in, std::string name = "aig");
void writeAigBinary(const mc::Network& net, std::ostream& out);

mc::Network readBench(std::istream& in, std::string name = "bench");
void writeBench(const mc::Network& net, std::ostream& out);

/// Dispatches on the file extension (.aag / .aig / .bench); the binary
/// .aig path opens the stream in binary mode.
mc::Network readCircuitFile(const std::string& path);

}  // namespace cbq::circuits

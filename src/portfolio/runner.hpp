#pragma once
// Parallel engine portfolio — the paper's experimental observation turned
// into a runtime strategy.
//
// No single engine dominates: circuit quantification wins where BDDs blow
// up (multiplier cones), BDDs win on wide shallow control, BMC finds deep
// bugs that backward fixpoints crawl towards, induction proves what BMC
// never can. The PortfolioRunner races a configurable engine set on one
// problem, each engine on its own thread with its own Network clone; the
// first definitive verdict (Safe / replay-checked Unsafe) wins and the
// shared CancelToken tells every rival to stop.

#include <functional>
#include <string>
#include <vector>

#include "mc/engines.hpp"
#include "portfolio/budget.hpp"

namespace cbq::portfolio {

/// How the portfolio spends its cores on one problem.
enum class ScheduleMode : std::uint8_t {
  Race,   ///< thread-per-engine race; losers are cancelled (PR 2)
  Slice,  ///< cooperative time slicing over persistent engine sessions
};

struct PortfolioOptions {
  /// Engine names (mc::engineNames()); empty means defaultPortfolio().
  std::vector<std::string> engines;
  double timeLimitSeconds = 0.0;  ///< whole-problem wall budget (0 = none)
  std::size_t nodeLimit = 0;      ///< per-engine live-node bound (0 = none)
  /// Replay an Unsafe winner's counterexample before accepting it; a
  /// failing replay demotes the verdict to Unknown (the engine keeps
  /// racing rivals instead of poisoning the result).
  bool verifyCex = true;

  ScheduleMode schedule = ScheduleMode::Race;
  // --- Slice mode only ---------------------------------------------------
  int sliceWorkers = 1;  ///< worker threads resuming sessions (<=0: one)
  double sliceInitialSeconds = 0.05;  ///< first slice per session
  double sliceMinSeconds = 0.0125;    ///< demotion floor
  double sliceMaxSeconds = 0.8;       ///< promotion cap
};

/// One engine's contribution to a portfolio run.
struct EngineRun {
  std::string engine;
  mc::Verdict verdict = mc::Verdict::Unknown;
  int steps = 0;
  double seconds = 0.0;   ///< the engine's own wall time
  bool winner = false;
  bool cancelled = false;  ///< lost the race (token fired before it finished)
  int slices = 0;          ///< resume() slices granted (slice mode; race: 1)
  util::Stats stats;
};

struct PortfolioResult {
  /// The winning engine's result; verdict Unknown (engine "portfolio")
  /// when nobody produced a definitive answer within the budget.
  mc::CheckResult best;
  std::vector<EngineRun> runs;  ///< one per engine, in engine-set order
  double wallSeconds = 0.0;

  [[nodiscard]] const EngineRun* winner() const {
    for (const EngineRun& r : runs)
      if (r.winner) return &r;
    return nullptr;
  }
};

/// The default racing set: the paper's engine, both classical baselines,
/// the bounded methods and the §4 hybrid — one representative per
/// complementary strength, cheap enough to run side by side.
std::vector<std::string> defaultPortfolio();

class PortfolioRunner {
 public:
  /// Throws std::invalid_argument when an engine name is unknown.
  explicit PortfolioRunner(PortfolioOptions opts = {});

  /// Runs the engine set on `net` under the configured schedule: Race
  /// fans one thread per engine, Slice hands the problem to the
  /// cooperative TimeSliceScheduler (time_slice.hpp). Thread-safe; `net`
  /// is cloned per engine before any engine starts.
  [[nodiscard]] PortfolioResult run(const mc::Network& net) const;

 private:
  [[nodiscard]] PortfolioResult runRace(const mc::Network& net) const;

  PortfolioOptions opts_;
};

}  // namespace cbq::portfolio

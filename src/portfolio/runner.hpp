#pragma once
// Parallel engine portfolio — the paper's experimental observation turned
// into a runtime strategy.
//
// No single engine dominates: circuit quantification wins where BDDs blow
// up (multiplier cones), BDDs win on wide shallow control, BMC finds deep
// bugs that backward fixpoints crawl towards, induction proves what BMC
// never can. The PortfolioRunner races a configurable engine set on one
// problem, each engine on its own thread with its own Network clone; the
// first definitive verdict (Safe / replay-checked Unsafe) wins and the
// shared CancelToken tells every rival to stop.

#include <functional>
#include <string>
#include <vector>

#include "mc/engines.hpp"
#include "obs/progress.hpp"
#include "portfolio/budget.hpp"
#include "prep/pipeline.hpp"

namespace cbq::portfolio {

/// How the portfolio spends its cores on one problem.
enum class ScheduleMode : std::uint8_t {
  Race,   ///< thread-per-engine race; losers are cancelled (PR 2)
  Slice,  ///< cooperative time slicing over persistent engine sessions
};

struct PortfolioOptions {
  /// Engine names (mc::engineNames()); empty means defaultPortfolio().
  std::vector<std::string> engines;
  /// SAT engine policy handed to every engine the runner builds
  /// (mc::EngineTuning): cnf, circuit, per-query race, or adaptive auto.
  /// Engines without SAT queries ignore it.
  sat::BackendKind satBackend = sat::BackendKind::Cnf;
  double timeLimitSeconds = 0.0;  ///< whole-problem wall budget (0 = none)
  std::size_t nodeLimit = 0;      ///< per-engine live-node bound (0 = none)
  /// Soft per-problem RSS ceiling in bytes (0 = none): when the process
  /// crosses it, every engine on the problem bails out to Unknown through
  /// the cooperative budget path instead of riding into the OOM killer
  /// (Budget::withRssLimit has the precise semantics).
  std::size_t rssLimitBytes = 0;
  /// Replay an Unsafe winner's counterexample before accepting it; a
  /// failing replay demotes the verdict to Unknown (the engine keeps
  /// racing rivals instead of poisoning the result).
  bool verifyCex = true;

  /// Preprocessing pipeline (prep/pipeline.hpp), run ONCE per problem
  /// before any engine starts; every worker clones the reduced network.
  /// Unsafe verdicts are lifted back and refereed on the original.
  prep::PrepOptions prep{};

  /// Intra-problem thread budget: when > 1 and prep.pool is null, the
  /// runner creates a ThreadPool of this many lanes for the run and
  /// hands it to the pipeline (and through it to the sweeper). The
  /// pool's one-region-at-a-time guard makes this budget GLOBAL: engine-
  /// level parallelism (race threads, batch workers) and intra-problem
  /// parallelism never stack multiplicatively. Results are bit-identical
  /// at any value (tests/test_parallel.cpp).
  int parThreads = 1;

  /// Live telemetry sink (obs/progress.hpp): called at natural boundaries
  /// — prep done, slice finished, racing engine resolved, final verdict.
  /// May be invoked concurrently from several workers; null disables.
  obs::ProgressFn onProgress;

  ScheduleMode schedule = ScheduleMode::Race;
  // --- Slice mode only ---------------------------------------------------
  int sliceWorkers = 1;  ///< worker threads resuming sessions (<=0: one)
  double sliceInitialSeconds = 0.05;  ///< first slice per session
  double sliceMinSeconds = 0.0125;    ///< demotion floor
  double sliceMaxSeconds = 0.8;       ///< promotion cap
};

/// One engine's contribution to a portfolio run.
struct EngineRun {
  std::string engine;
  mc::Verdict verdict = mc::Verdict::Unknown;
  int steps = 0;
  double seconds = 0.0;   ///< the engine's own wall time
  bool winner = false;
  bool cancelled = false;  ///< lost the race (token fired before it finished)
  int slices = 0;          ///< resume() slices granted (slice mode; race: 1)
  /// The engine threw (any exception type) and was quarantined: removed
  /// from the race/rotation while the survivors kept running. Its verdict
  /// stays Unknown and `error` records what escaped.
  bool failed = false;
  std::string error;
  obs::Metrics stats;
};

/// What preprocessing did to one problem, for reports. `decided` marks
/// problems the pipeline settled without running any engine.
struct PrepSummary {
  bool enabled = false;
  bool decided = false;
  double seconds = 0.0;
  std::size_t latchesBefore = 0, latchesAfter = 0;
  std::size_t inputsBefore = 0, inputsAfter = 0;
  std::size_t andsBefore = 0, andsAfter = 0;
  std::vector<prep::PassStats> passes;
};

struct PortfolioResult {
  /// The winning engine's result; verdict Unknown (engine "portfolio")
  /// when nobody produced a definitive answer within the budget. For
  /// Unsafe verdicts `best.cex` is the LIFTED trace — it replays on the
  /// original (pre-preprocessing) network.
  mc::CheckResult best;
  std::vector<EngineRun> runs;  ///< one per engine, in engine-set order
  PrepSummary prep;             ///< preprocessing shrink record
  double wallSeconds = 0.0;
  /// Containment diagnostics: how many engines threw and were
  /// quarantined (== runs with failed set), and whether the soft RSS
  /// ceiling tripped during this problem. When every engine failed the
  /// verdict is Unknown and allEnginesFailed is the reason.
  int engineFailures = 0;
  bool allEnginesFailed = false;
  bool memLimitHit = false;

  [[nodiscard]] const EngineRun* winner() const {
    for (const EngineRun& r : runs)
      if (r.winner) return &r;
    return nullptr;
  }
};

/// The default racing set: the paper's engine, both classical baselines,
/// the bounded methods and the §4 hybrid — one representative per
/// complementary strength, cheap enough to run side by side.
std::vector<std::string> defaultPortfolio();

class PortfolioRunner {
 public:
  /// Throws std::invalid_argument when an engine name is unknown.
  explicit PortfolioRunner(PortfolioOptions opts = {});

  /// The engine entry path: preprocesses `net` once (prep pipeline, per
  /// opts.prep), then runs the engine set on the REDUCED problem under
  /// the configured schedule — Race fans one thread per engine, Slice
  /// hands the problem to the cooperative TimeSliceScheduler
  /// (time_slice.hpp); each worker clones the reduced network. An Unsafe
  /// winner's trace is lifted through the transform stack and refereed by
  /// replayHitsBad on the ORIGINAL network before it is reported.
  /// Thread-safe.
  [[nodiscard]] PortfolioResult run(const mc::Network& net) const;

 private:
  /// The race leg. `opts` is the caller's option set with the
  /// whole-problem time limit already reduced by preprocessing time.
  [[nodiscard]] PortfolioResult runRace(const mc::Network& net,
                                        const PortfolioOptions& opts) const;

  /// Emits the final "result" progress event (no-op without a sink).
  void emitResult(const std::string& problemName,
                  const PortfolioResult& res) const;

  PortfolioOptions opts_;
};

}  // namespace cbq::portfolio

#pragma once
// Cooperative time-sliced portfolio — the paper's complementary-strengths
// observation exploited on as few as one core.
//
// The racing runner (runner.hpp) needs a thread per engine and burns
// every core on work that is thrown away when a rival wins. The
// time-slice scheduler instead opens one persistent Session per engine
// (Engine::start) and round-robins them on a configurable worker count
// (including 1): each turn, a session resumes under a per-slice budget,
// pauses at its next natural boundary with all state intact, reports
// Progress telemetry, and goes to the back of the queue. Slice lengths
// adapt per session: a slice that committed no new bound/iteration was
// too short to reach the engine's next pause point and is promoted
// (doubled, capped); a slice that ripped through many bounds is demoted
// (halved, floored) so rivals interleave at finer grain. The first
// definitive verdict wins — Unsafe must pass the replayHitsBad referee,
// exactly as in the race — and cancels everyone via the shared token.

#include "mc/network.hpp"
#include "portfolio/runner.hpp"

namespace cbq::portfolio {

class TimeSliceScheduler {
 public:
  /// Uses the engine set, budgets, referee flag and slice_* fields of
  /// `opts` (the schedule field itself is ignored — callers that want
  /// dispatch go through PortfolioRunner). Throws std::invalid_argument
  /// when an engine name is unknown.
  explicit TimeSliceScheduler(PortfolioOptions opts = {});

  /// Schedules the engine sessions on `net` until a definitive verdict,
  /// every session is done, or the whole-problem budget expires.
  /// Thread-safe; `net` is cloned per engine up front.
  [[nodiscard]] PortfolioResult run(const mc::Network& net) const;

 private:
  PortfolioOptions opts_;
};

}  // namespace cbq::portfolio

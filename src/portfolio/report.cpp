#include "portfolio/report.hpp"

#include <cmath>
#include <cstdio>
#include <ctime>
#include <ostream>
#include <sstream>
#include <thread>

#include "obs/version.hpp"

namespace cbq::portfolio {

namespace {

std::string jsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// JSON has no NaN/Inf; clamp to null-free finite output.
std::string jsonNumber(double v) {
  if (!std::isfinite(v)) return "0";
  std::ostringstream os;
  os << v;
  return os.str();
}

/// CSV fields are quoted only when they contain a comma, quote or newline.
std::string csvField(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (const char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

/// Peak RSS in MB with enough precision for small processes.
std::string rssMb(std::uint64_t bytes) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f",
                static_cast<double>(bytes) / (1024.0 * 1024.0));
  return buf;
}

}  // namespace

RunInfo RunInfo::capture() {
  RunInfo info;
  info.gitDescribe = obs::gitDescribe();
  info.hostThreads = std::thread::hardware_concurrency();
  // Wall timestamp (ISO-8601 UTC): identifies the run in committed
  // reports. The only sanctioned system-clock read outside durations.
  // cbq-lint: allow(clock) run-header provenance timestamp, not a duration
  const std::time_t now = std::time(nullptr);
  std::tm tm{};
#if defined(_WIN32)
  gmtime_s(&tm, &now);
#else
  gmtime_r(&now, &tm);
#endif
  char buf[32];
  std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &tm);
  info.timestamp = buf;
  return info;
}

void RunInfo::writeJson(std::ostream& out) const {
  out << "{\"command\": \"" << jsonEscape(command) << "\", "
      << "\"git\": \"" << jsonEscape(gitDescribe) << "\", "
      << "\"timestamp\": \"" << jsonEscape(timestamp) << "\", "
      << "\"jobs\": " << jobs << ", "
      << "\"par_threads\": " << parThreads << ", "
      << "\"host_threads\": " << hostThreads << ", "
      << "\"schedule\": \"" << jsonEscape(schedule) << "\", "
      << "\"sat_backend\": \"" << jsonEscape(satBackend) << "\"}";
}

void writeJson(const BatchSummary& summary, std::ostream& out,
               const RunInfo* run) {
  out << "{\n";
  if (run != nullptr) {
    out << "  \"run\": ";
    run->writeJson(out);
    out << ",\n";
  }
  out << "  \"total\": " << summary.problems.size() << ",\n";
  out << "  \"safe\": " << summary.safe << ",\n";
  out << "  \"unsafe\": " << summary.unsafe << ",\n";
  out << "  \"unknown\": " << summary.unknown << ",\n";
  out << "  \"errors\": " << summary.errors << ",\n";
  out << "  \"wall_seconds\": " << jsonNumber(summary.wallSeconds) << ",\n";
  out << "  \"problems\": [";
  for (std::size_t i = 0; i < summary.problems.size(); ++i) {
    const BatchProblemResult& p = summary.problems[i];
    out << (i == 0 ? "\n" : ",\n");
    out << "    {\"name\": \"" << jsonEscape(p.name) << "\", ";
    out << "\"path\": \"" << jsonEscape(p.path) << "\", ";
    out << "\"verdict\": \"" << mc::toString(p.verdict) << "\", ";
    out << "\"winner\": \"" << jsonEscape(p.winnerEngine) << "\", ";
    out << "\"steps\": " << p.steps << ", ";
    out << "\"seconds\": " << jsonNumber(p.seconds) << ", ";
    out << "\"latches\": " << p.latches << ", ";
    out << "\"inputs\": " << p.inputs << ", ";
    out << "\"ands\": " << p.ands << ", ";
    out << "\"error\": \"" << jsonEscape(p.error) << "\", ";
    out << "\"prep\": {\"enabled\": " << (p.prep.enabled ? "true" : "false")
        << ", \"decided\": " << (p.prep.decided ? "true" : "false")
        << ", \"seconds\": " << jsonNumber(p.prep.seconds)
        << ", \"latches_before\": " << p.prep.latchesBefore
        << ", \"latches_after\": " << p.prep.latchesAfter
        << ", \"inputs_before\": " << p.prep.inputsBefore
        << ", \"inputs_after\": " << p.prep.inputsAfter
        << ", \"ands_before\": " << p.prep.andsBefore
        << ", \"ands_after\": " << p.prep.andsAfter << ", \"passes\": [";
    for (std::size_t k = 0; k < p.prep.passes.size(); ++k) {
      const prep::PassStats& ps = p.prep.passes[k];
      out << (k == 0 ? "" : ", ");
      out << "{\"pass\": \"" << jsonEscape(ps.pass) << "\", "
          << "\"latches\": [" << ps.latchesBefore << ", " << ps.latchesAfter
          << "], \"inputs\": [" << ps.inputsBefore << ", " << ps.inputsAfter
          << "], \"ands\": [" << ps.andsBefore << ", " << ps.andsAfter
          << "], \"seconds\": " << jsonNumber(ps.seconds) << "}";
    }
    out << "]}, ";
    out << "\"mem\": {\"peak_rss_mb\": " << rssMb(p.peakRssBytes)
        << ", \"aig_peak_nodes\": " << p.aigPeakNodes
        << ", \"bdd_peak_nodes\": " << p.bddPeakNodes << "}, ";
    out << "\"robustness\": {\"engine_failures\": " << p.engineFailures
        << ", \"all_engines_failed\": "
        << (p.allEnginesFailed ? "true" : "false")
        << ", \"mem_limit_hit\": " << (p.memLimitHit ? "true" : "false")
        << ", \"retries\": " << p.retries << "}, ";
    out << "\"engines\": [";
    for (std::size_t j = 0; j < p.runs.size(); ++j) {
      const EngineRun& r = p.runs[j];
      out << (j == 0 ? "" : ", ");
      out << "{\"engine\": \"" << jsonEscape(r.engine) << "\", "
          << "\"verdict\": \"" << mc::toString(r.verdict) << "\", "
          << "\"steps\": " << r.steps << ", "
          << "\"seconds\": " << jsonNumber(r.seconds) << ", "
          << "\"winner\": " << (r.winner ? "true" : "false") << ", "
          << "\"cancelled\": " << (r.cancelled ? "true" : "false") << ", "
          << "\"failed\": " << (r.failed ? "true" : "false") << ", "
          << "\"failure\": \"" << jsonEscape(r.error) << "\", "
          << "\"slices\": " << r.slices << ", "
          << "\"propagations\": " << r.stats.count("sat.propagations")
          << ", "
          << "\"decisions\": " << r.stats.count("sat.decisions") << ", "
          << "\"conflicts\": " << r.stats.count("sat.conflicts") << ", "
          << "\"sweep_sat_checks\": "
          << (r.stats.count("merge.sat_checks") +
              r.stats.count("opt.sat_checks"))
          << ", "
          << "\"cache_lookups\": " << r.stats.count("sweep.cache_lookups")
          << ", "
          << "\"cache_hits\": "
          << (r.stats.count("sweep.cache_hits_proven") +
              r.stats.count("sweep.cache_hits_refuted"))
          << "}";
    }
    out << "]}";
  }
  out << "\n  ]\n}\n";
}

void writeCsv(const BatchSummary& summary, std::ostream& out) {
  out << "name,path,verdict,winner,steps,seconds,latches,inputs,ands,"
         "prep_seconds,prep_latches,prep_inputs,prep_ands,"
         "prep_coi_seconds,prep_const_seconds,prep_sweep_seconds,"
         "prep_latchcorr_seconds,"
         "propagations,decisions,conflicts,"
         "peak_rss_mb,aig_peak_nodes,bdd_peak_nodes,"
         "engine_failures,retries,mem_limit_hit,error\n";
  for (const BatchProblemResult& p : summary.problems) {
    // Effort columns aggregate over every engine that ran on the problem.
    std::int64_t props = 0, decs = 0, confs = 0;
    for (const EngineRun& r : p.runs) {
      props += r.stats.count("sat.propagations");
      decs += r.stats.count("sat.decisions");
      confs += r.stats.count("sat.conflicts");
    }
    // A pass may fire several times across pipeline rounds; its CSV
    // column is the total wall time it spent on this problem.
    double coiSec = 0, constSec = 0, sweepSec = 0, corrSec = 0;
    for (const prep::PassStats& ps : p.prep.passes) {
      if (ps.pass == "coi") coiSec += ps.seconds;
      else if (ps.pass == "const") constSec += ps.seconds;
      else if (ps.pass == "sweep") sweepSec += ps.seconds;
      else if (ps.pass == "latchcorr") corrSec += ps.seconds;
    }
    out << csvField(p.name) << ',' << csvField(p.path) << ','
        << mc::toString(p.verdict) << ',' << csvField(p.winnerEngine) << ','
        << p.steps << ',' << jsonNumber(p.seconds) << ',' << p.latches << ','
        << p.inputs << ',' << p.ands << ','
        << jsonNumber(p.prep.seconds) << ',' << p.prep.latchesAfter << ','
        << p.prep.inputsAfter << ',' << p.prep.andsAfter << ','
        << jsonNumber(coiSec) << ',' << jsonNumber(constSec) << ','
        << jsonNumber(sweepSec) << ',' << jsonNumber(corrSec) << ','
        << props << ',' << decs << ',' << confs << ','
        << rssMb(p.peakRssBytes) << ',' << p.aigPeakNodes << ','
        << p.bddPeakNodes << ',' << p.engineFailures << ',' << p.retries
        << ',' << (p.memLimitHit ? 1 : 0) << ',' << csvField(p.error)
        << '\n';
  }
}

}  // namespace cbq::portfolio

#include "portfolio/time_slice.hpp"

#include <algorithm>
#include <deque>
#include <stdexcept>
#include <thread>
#include <utility>

#include "obs/tracer.hpp"
#include "util/sync.hpp"
#include "util/timer.hpp"

namespace cbq::portfolio {

namespace {

/// One engine's scheduling state. The session migrates between worker
/// threads across slices; the scheduler mutex hands it off.
struct Slot {
  std::unique_ptr<mc::Engine> engine;
  std::unique_ptr<mc::Session> session;  ///< created on first slice
  double sliceSeconds = 0.0;
  mc::Progress last;       ///< most recent resume() report
  int slices = 0;
  bool finished = false;   ///< session reported done (or blew up)
  bool threw = false;      ///< engine exception; verdict stays Unknown
  std::string error;       ///< what escaped (threw only)
};

}  // namespace

TimeSliceScheduler::TimeSliceScheduler(PortfolioOptions opts)
    : opts_(std::move(opts)) {
  if (opts_.engines.empty()) opts_.engines = defaultPortfolio();
  for (const std::string& name : opts_.engines) {
    if (!mc::makeEngine(name))
      throw std::invalid_argument("unknown engine: " + name);
  }
  if (opts_.sliceWorkers <= 0) opts_.sliceWorkers = 1;
  if (opts_.sliceInitialSeconds <= 0.0) opts_.sliceInitialSeconds = 0.05;
  if (opts_.sliceMinSeconds <= 0.0) opts_.sliceMinSeconds = 0.0125;
  opts_.sliceMaxSeconds =
      std::max(opts_.sliceMaxSeconds, opts_.sliceInitialSeconds);
}

PortfolioResult TimeSliceScheduler::run(const mc::Network& net) const {
  util::Timer wall;
  const std::size_t n = opts_.engines.size();

  PortfolioResult out;
  out.runs.resize(n);

  // Engine-manager const reads stamp mutable scratch arenas, so every
  // session owns a private clone, built sequentially up front. (A slice
  // worker only touches a clone while holding that session's queue slot,
  // so the clone also serves cross-thread session migration.) Cloning is
  // pre-engine but still engine-layer work (AIG growth): a blow-up here
  // degrades the whole problem to Unknown, never aborts.
  std::vector<mc::Network> clones;
  clones.reserve(n);
  try {
    for (std::size_t i = 0; i < n; ++i)
      clones.push_back(mc::cloneNetwork(net));
  } catch (...) {
    for (std::size_t i = 0; i < n; ++i) {
      out.runs[i].engine = opts_.engines[i];
      out.runs[i].failed = true;
      out.runs[i].error = "network clone failed";
    }
    out.engineFailures = static_cast<int>(n);
    out.allEnginesFailed = true;
    out.best.engine = "portfolio";
    out.best.verdict = mc::Verdict::Unknown;
    out.best.stats.add("portfolio.all_engines_failed");
    out.best.stats.add("portfolio.engine_failures", out.engineFailures);
    out.wallSeconds = wall.seconds();
    out.best.seconds = out.wallSeconds;
    return out;
  }

  CancelToken token;
  Budget outer(opts_.timeLimitSeconds, opts_.nodeLimit, &token);
  outer.withRssLimit(opts_.rssLimitBytes);

  // Slots are protected by ownership transfer, not the mutex: a worker
  // that pops index i from the ready queue owns slots[i] exclusively
  // until it re-queues or retires it, including the lock-free resume.
  // The annotated SliceState below is what the mutex actually guards.
  std::vector<Slot> slots(n);
  struct SliceState {
    util::Mutex mu;
    util::CondVar cv;
    std::deque<std::size_t> ready CBQ_GUARDED_BY(mu);
    int winnerIdx CBQ_GUARDED_BY(mu) = -1;
    bool stop CBQ_GUARDED_BY(mu) = false;   ///< winner found: stop granting
    int inFlight CBQ_GUARDED_BY(mu) = 0;    ///< sessions resuming on workers
  } st;
  {
    const util::MutexLock lock(st.mu);
    for (std::size_t i = 0; i < n; ++i) {
      slots[i].engine =
          mc::makeEngine(opts_.engines[i], mc::EngineTuning{opts_.satBackend});
      slots[i].sliceSeconds = opts_.sliceInitialSeconds;
      st.ready.push_back(i);
    }
  }

  // Scheduler decisions feed the winner's registry at the end (the slots
  // own per-engine registries; these are cross-engine).
  obs::Metrics schedStats;

  auto worker = [&] {
    util::UniqueLock lock(st.mu);
    for (;;) {
      while (!(st.stop || !st.ready.empty() || st.inFlight == 0))
        st.cv.wait(st.mu);
      if (st.stop || st.ready.empty()) return;  // drained or race decided

      const std::size_t i = st.ready.front();
      st.ready.pop_front();
      Slot& slot = slots[i];
      ++st.inFlight;
      lock.unlock();

      mc::Progress p;
      bool threw = false;
      std::string error;
      // The exception barrier: a session blowing up mid-slice (organic
      // failure, injected fault, even a foreign exception type) is
      // quarantined — the slot leaves the rotation, the rotation goes on.
      try {
        CBQ_OBS_SPAN("sched", opts_.engines[i]);
        if (!slot.session)
          slot.session = slot.engine->start(clones[i]);
        // The slice: the whole-problem budget (token + deadline + node
        // limit) tightened to this session's current slice length.
        p = slot.session->resume(outer.tightened(slot.sliceSeconds));
      } catch (const std::exception& e) {
        threw = true;
        error = e.what();
        if (error.empty()) error = "unknown std::exception";
      } catch (...) {
        threw = true;
        error = "non-standard exception";
      }
      if (threw && opts_.onProgress) {
        obs::ProgressEvent ev;
        ev.kind = "engine-failure";
        ev.problem = net.name;
        ev.engine = opts_.engines[i];
        ev.detail = error;
        opts_.onProgress(ev);
      }
      if (!threw && opts_.onProgress) {
        obs::ProgressEvent ev;
        ev.kind = "slice";
        ev.problem = net.name;
        ev.engine = opts_.engines[i];
        if (p.done) ev.verdict = mc::toString(p.result.verdict);
        ev.bound = p.bound;
        ev.effort = static_cast<double>(p.effort);
        ev.effortDelta = static_cast<double>(p.effortDelta);
        ev.seconds = p.sliceSeconds;
        ev.advanced = p.advanced;
        opts_.onProgress(ev);
      }

      // Referee outside the lock: a deep counterexample replay must not
      // stall the other workers. The slot's clone is still private here.
      bool replayRejected = false;
      if (!threw && p.done && opts_.verifyCex &&
          p.result.verdict == mc::Verdict::Unsafe &&
          p.result.cex.has_value())
        replayRejected = !mc::replayHitsBad(clones[i], *p.result.cex);

      lock.lock();
      --st.inFlight;
      ++slot.slices;
      schedStats.add("sched.slice_grants");
      if (!threw) schedStats.observe("sched.slice_seconds", p.sliceSeconds);
      if (threw) {
        // Quarantine: the slot never re-enters the ready queue, so the
        // survivors keep the schedule; its verdict stays Unknown.
        slot.finished = true;
        slot.threw = true;
        slot.error = std::move(error);
        slot.last.result.stats.add("portfolio.engine_failures");
        schedStats.add("sched.quarantines");
      } else {
        const int boundDelta = p.bound - slot.last.bound;
        slot.last = std::move(p);
        if (slot.last.done) {
          slot.finished = true;
          bool definitive =
              slot.last.result.verdict != mc::Verdict::Unknown;
          if (replayRejected) {
            // The independent referee rejected the trace: never report it.
            slot.last.result.verdict = mc::Verdict::Unknown;
            slot.last.result.stats.add("portfolio.cex_replay_failures");
            definitive = false;
          }
          if (definitive && st.winnerIdx < 0) {
            st.winnerIdx = static_cast<int>(i);
            token.cancel();  // tell mid-slice rivals to stop
            st.stop = true;
          }
        } else {
          // Adaptive slice length from the telemetry: no bound committed
          // means the slice was too short to reach the engine's next
          // pause point — promote; many bounds per slice means the
          // engine can be interleaved at finer grain — demote.
          if (!slot.last.advanced) {
            slot.sliceSeconds = std::min(slot.sliceSeconds * 2.0,
                                         opts_.sliceMaxSeconds);
            schedStats.add("sched.promotions");
          } else if (boundDelta >= 8) {
            slot.sliceSeconds = std::max(slot.sliceSeconds * 0.5,
                                         opts_.sliceMinSeconds);
            schedStats.add("sched.demotions");
          }
          if (!st.stop && !outer.exhausted()) st.ready.push_back(i);
        }
      }
      st.cv.notifyAll();
    }
  };

  const int nWorkers =
      std::max(1, std::min<int>(opts_.sliceWorkers, static_cast<int>(n)));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(nWorkers));
  try {
    for (int t = 0; t < nWorkers; ++t)
      threads.emplace_back([&worker, t] {
        obs::setThreadLabel("slice worker " + std::to_string(t));
        worker();
      });
  } catch (const std::system_error&) {
    // Thread exhaustion mid-spawn: the workers already running finish the
    // queue (slice mode never needs more than one).
  }
  if (threads.empty()) worker();  // degenerate fallback: run inline
  for (std::thread& t : threads) t.join();

  // Post-join aggregation: single-threaded again, but winnerIdx is
  // guarded, so hold the (uncontended) lock while reading it.
  const util::MutexLock lock(st.mu);
  for (std::size_t i = 0; i < n; ++i) {
    EngineRun& run = out.runs[i];
    const Slot& slot = slots[i];
    run.engine = opts_.engines[i];
    run.verdict = slot.last.result.verdict;
    run.steps = slot.last.result.steps;
    run.seconds = slot.last.result.seconds;
    run.winner = static_cast<int>(i) == st.winnerIdx;
    run.cancelled = !slot.finished && st.winnerIdx >= 0;
    run.slices = slot.slices;
    run.failed = slot.threw;
    run.error = slot.error;
    run.stats = slot.last.result.stats;
    if (run.cancelled) schedStats.add("sched.cancellations");
    if (run.failed) ++out.engineFailures;
  }
  out.allEnginesFailed = out.engineFailures == static_cast<int>(n) && n > 0;
  out.memLimitHit = outer.memLimitHit();

  if (st.winnerIdx >= 0) {
    out.best =
        std::move(slots[static_cast<std::size_t>(st.winnerIdx)].last.result);
    // Definitive losers that disagree with the winner are a soundness bug
    // in some engine; surface it in the stats rather than hiding it.
    for (const EngineRun& run : out.runs) {
      if (!run.winner && run.verdict != mc::Verdict::Unknown &&
          run.verdict != out.best.verdict)
        out.best.stats.add("portfolio.verdict_conflicts");
    }
  } else {
    out.best.engine = "portfolio";
    out.best.verdict = mc::Verdict::Unknown;
    if (out.allEnginesFailed)
      out.best.stats.add("portfolio.all_engines_failed");
  }
  if (out.engineFailures > 0)
    out.best.stats.add("portfolio.engine_failures", out.engineFailures);
  if (out.memLimitHit) out.best.stats.add("portfolio.mem_limit_hits");
  out.best.stats.merge(schedStats);
  out.wallSeconds = wall.seconds();
  out.best.seconds = out.wallSeconds;
  return out;
}

}  // namespace cbq::portfolio

#pragma once
// Batch result serialization: machine-readable JSON (full per-engine
// detail) and spreadsheet-friendly CSV (one row per problem).

#include <iosfwd>
#include <string>

#include "portfolio/scheduler.hpp"

namespace cbq::portfolio {

/// Provenance header for committed report files: which binary, which
/// configuration, which host produced these numbers. `timestamp` is the
/// one legitimate wall-clock field in the codebase (it identifies the
/// run, it never measures a duration).
struct RunInfo {
  std::string command;      ///< the CLI invocation, argv joined
  std::string gitDescribe;  ///< obs::gitDescribe() of the binary
  std::string timestamp;    ///< ISO-8601 UTC at run start
  int jobs = 1;             ///< batch worker threads
  int parThreads = 1;       ///< intra-problem lanes
  unsigned hostThreads = 0; ///< std::thread::hardware_concurrency()
  std::string schedule;     ///< "race" or "slice"
  std::string satBackend = "cnf";  ///< sat engine policy of the run

  /// Snapshot of the current process/build (command left empty).
  [[nodiscard]] static RunInfo capture();

  /// The header as one JSON object (no trailing newline).
  void writeJson(std::ostream& out) const;
};

/// Full summary as a single JSON document (hand-rolled, no dependencies):
/// optional "run" provenance header, totals, then one object per problem
/// with its per-engine runs and a "mem" high-water object.
void writeJson(const BatchSummary& summary, std::ostream& out,
               const RunInfo* run = nullptr);

/// One header row + one row per problem (effort columns aggregate the
/// solver counters of every engine that ran; prep_* columns report the
/// post-preprocessing shape; mem columns are per-problem high-water
/// marks — peak RSS is process-wide and monotone across a batch):
/// name,path,verdict,winner,steps,seconds,latches,inputs,ands,
/// prep_seconds,prep_latches,prep_inputs,prep_ands,
/// propagations,decisions,conflicts,
/// peak_rss_mb,aig_peak_nodes,bdd_peak_nodes,error
void writeCsv(const BatchSummary& summary, std::ostream& out);

}  // namespace cbq::portfolio

#pragma once
// Batch result serialization: machine-readable JSON (full per-engine
// detail) and spreadsheet-friendly CSV (one row per problem).

#include <iosfwd>

#include "portfolio/scheduler.hpp"

namespace cbq::portfolio {

/// Full summary as a single JSON document (hand-rolled, no dependencies):
/// totals, then one object per problem with its per-engine runs.
void writeJson(const BatchSummary& summary, std::ostream& out);

/// One header row + one row per problem (effort columns aggregate the
/// solver counters of every engine that ran; prep_* columns report the
/// post-preprocessing shape):
/// name,path,verdict,winner,steps,seconds,latches,inputs,ands,
/// prep_seconds,prep_latches,prep_inputs,prep_ands,
/// propagations,decisions,conflicts,error
void writeCsv(const BatchSummary& summary, std::ostream& out);

}  // namespace cbq::portfolio

#include "portfolio/runner.hpp"

#include <memory>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <utility>

#include "audit/audit.hpp"
#include "obs/tracer.hpp"
#include "portfolio/time_slice.hpp"
#include "util/sync.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace cbq::portfolio {

std::vector<std::string> defaultPortfolio() {
  return {"cbq-reach", "bdd-bwd", "bmc", "k-induction", "hybrid-reach"};
}

PortfolioRunner::PortfolioRunner(PortfolioOptions opts)
    : opts_(std::move(opts)) {
  if (opts_.engines.empty()) opts_.engines = defaultPortfolio();
  for (const std::string& name : opts_.engines) {
    if (!mc::makeEngine(name))
      throw std::invalid_argument("unknown engine: " + name);
  }
}

PortfolioResult PortfolioRunner::run(const mc::Network& net) const {
  util::Timer wall;

  // Preprocessing: once per problem, before any engine starts, bounded
  // by the same whole-problem time limit the engines get (the remainder
  // is what the schedulers may spend). The schedulers then clone the
  // (possibly reduced) problem per worker. A parThreads budget > 1
  // equips the pipeline with a per-run worker pool unless the caller
  // already shares one (the CLI creates a single process-wide pool).
  prep::PrepOptions prepOpts = opts_.prep;
  std::unique_ptr<util::ThreadPool> ownPool;
  if (prepOpts.pool == nullptr && opts_.parThreads > 1) {
    ownPool = std::make_unique<util::ThreadPool>(opts_.parThreads);
    prepOpts.pool = ownPool.get();
  }
  // Preprocessing failure containment: a pass blowing up costs us the
  // reduction, not the problem. Fall back to the identity preparation and
  // let the engines check the original network.
  prep::PreparedProblem prepared;
  try {
    prepared = prep::Pipeline(prepOpts).run(
        net, Budget(opts_.timeLimitSeconds)
                 .withRssLimit(opts_.rssLimitBytes));
  } catch (const audit::AuditError&) {
    // NOT contained: an armed audit firing means the pipeline built a
    // structurally corrupt network. Falling back would mask the bug the
    // audit exists to surface — propagate on this (caller) thread so the
    // CLI can map it to its dedicated exit code.
    throw;
  } catch (...) {
    prepared = prep::PreparedProblem{};
    prepared.latchesBefore = net.numLatches();
    prepared.inputsBefore = net.numInputs();
    prepared.andsBefore = net.aig.numAnds();
    prepared.seconds = wall.seconds();
    prepared.stats.add("portfolio.prep_failures");
  }
  const mc::Network& problem = prepared.problem(net);

  if (opts_.onProgress) {
    obs::ProgressEvent ev;
    ev.kind = "prep";
    ev.problem = net.name;
    ev.seconds = prepared.seconds;
    std::ostringstream detail;
    detail << prepared.latchesBefore << "L/" << prepared.andsBefore << "A -> "
           << problem.numLatches() << "L/" << problem.aig.numAnds() << "A";
    if (prepared.decided.has_value()) detail << " (decided)";
    ev.detail = detail.str();
    opts_.onProgress(ev);
  }

  PrepSummary summary;
  summary.enabled = opts_.prep.enabled;
  summary.decided = prepared.decided.has_value();
  summary.seconds = prepared.seconds;
  summary.latchesBefore = prepared.latchesBefore;
  summary.inputsBefore = prepared.inputsBefore;
  summary.andsBefore = prepared.andsBefore;
  summary.latchesAfter = problem.numLatches();
  summary.inputsAfter = problem.numInputs();
  summary.andsAfter = problem.aig.numAnds();
  summary.passes = prepared.passes;

  if (prepared.decided.has_value()) {
    // The pipeline settled the verdict; no engine runs. The decided
    // trace is already in original-network variables — referee it there.
    PortfolioResult out;
    out.prep = std::move(summary);
    out.best.engine = "prep";
    out.best.verdict = *prepared.decided;
    out.best.cex = std::move(prepared.decidedCex);
    out.best.stats = std::move(prepared.stats);
    // A decided Unsafe must come with a replayable trace.
    if (opts_.verifyCex)
      prep::demoteUnreplayableCex(net, out.best, /*requireTrace=*/true);
    out.wallSeconds = wall.seconds();
    out.best.seconds = out.wallSeconds;
    emitResult(net.name, out);
    return out;
  }

  // The schedulers get the time that preprocessing left over, so the
  // whole-problem budget covers prep + engines, not each separately.
  PortfolioOptions inner = opts_;
  if (inner.timeLimitSeconds > 0.0)
    inner.timeLimitSeconds =
        std::max(1e-3, inner.timeLimitSeconds - wall.seconds());
  PortfolioResult out = inner.schedule == ScheduleMode::Slice
                            ? TimeSliceScheduler(inner).run(problem)
                            : runRace(problem, inner);
  out.prep = std::move(summary);
  out.best.stats.merge(prepared.stats);

  // Lift an Unsafe winner's trace back to the original network and run
  // the independent referee THERE (the schedulers already refereed it on
  // the reduced model). This happens single-threaded, after every worker
  // joined — concurrent replays on the shared original would race on the
  // manager's scratch arenas.
  if (out.best.verdict == mc::Verdict::Unsafe && out.best.cex.has_value()) {
    out.best.cex = prepared.lifter().lift(std::move(*out.best.cex));
    if (opts_.verifyCex) prep::demoteUnreplayableCex(net, out.best);
  }

  out.wallSeconds = wall.seconds();
  out.best.seconds = out.wallSeconds;
  emitResult(net.name, out);
  return out;
}

void PortfolioRunner::emitResult(const std::string& problemName,
                                 const PortfolioResult& res) const {
  if (!opts_.onProgress) return;
  obs::ProgressEvent ev;
  ev.kind = "result";
  ev.problem = problemName;
  ev.engine = res.best.engine;
  ev.verdict = mc::toString(res.best.verdict);
  ev.seconds = res.wallSeconds;
  ev.bound = res.best.steps;
  if (res.allEnginesFailed) {
    ev.detail = "all engines failed";
  } else if (res.memLimitHit) {
    ev.detail = "rss ceiling hit";
  }
  opts_.onProgress(ev);
}

PortfolioResult PortfolioRunner::runRace(const mc::Network& net,
                                         const PortfolioOptions& opts) const {
  util::Timer wall;
  const std::size_t n = opts.engines.size();

  PortfolioResult out;
  out.runs.resize(n);

  // Engine-manager const reads stamp mutable scratch arenas, so every
  // racing thread owns a private clone, built sequentially up front.
  // Cloning is pre-engine but still engine-layer work (AIG growth): a
  // blow-up here degrades the whole problem to Unknown, never aborts.
  std::vector<mc::Network> clones;
  clones.reserve(n);
  try {
    for (std::size_t i = 0; i < n; ++i)
      clones.push_back(mc::cloneNetwork(net));
  } catch (...) {
    for (std::size_t i = 0; i < n; ++i) {
      out.runs[i].engine = opts.engines[i];
      out.runs[i].failed = true;
      out.runs[i].error = "network clone failed";
    }
    out.engineFailures = static_cast<int>(n);
    out.allEnginesFailed = true;
    out.best.engine = "portfolio";
    out.best.verdict = mc::Verdict::Unknown;
    out.best.stats.add("portfolio.all_engines_failed");
    out.best.stats.add("portfolio.engine_failures", out.engineFailures);
    out.wallSeconds = wall.seconds();
    out.best.seconds = out.wallSeconds;
    return out;
  }

  CancelToken token;
  Budget budget(opts.timeLimitSeconds, opts.nodeLimit, &token);
  budget.withRssLimit(opts.rssLimitBytes);

  // Shared race state lives in one annotated struct: thread-safety
  // attributes cannot guard loose function locals.
  struct RaceState {
    util::Mutex mu;
    int winnerIdx CBQ_GUARDED_BY(mu) = -1;
    std::vector<mc::CheckResult> results CBQ_GUARDED_BY(mu);
    std::vector<char> wasCancelled CBQ_GUARDED_BY(mu);
    std::vector<std::string> failures CBQ_GUARDED_BY(mu);  ///< engine threw
  } st;
  {
    const util::MutexLock lock(st.mu);
    st.results.resize(n);
    st.wasCancelled.assign(n, 0);
    st.failures.resize(n);
  }

  auto worker = [&](std::size_t i) {
    obs::setThreadLabel("race " + opts.engines[i]);
    auto engine = mc::makeEngine(opts.engines[i],
                                 mc::EngineTuning{opts.satBackend});
    mc::CheckResult res;
    // The exception barrier: an engine blowing up (BDD allocation, an
    // injected fault, even a non-std::exception throw) is quarantined
    // here — the thread reports Unknown and the rivals race on.
    std::string failure;
    try {
      CBQ_OBS_SPAN("sched", opts.engines[i]);
      res = engine->check(clones[i], budget);
    } catch (const std::exception& e) {
      failure = e.what();
      if (failure.empty()) failure = "unknown std::exception";
    } catch (...) {
      failure = "non-standard exception";
    }
    if (!failure.empty()) {
      res = mc::CheckResult{};
      res.engine = opts.engines[i];
      res.verdict = mc::Verdict::Unknown;
      res.stats.add("portfolio.engine_failures");
      if (opts.onProgress) {
        obs::ProgressEvent ev;
        ev.kind = "engine-failure";
        ev.problem = net.name;
        ev.engine = opts.engines[i];
        ev.detail = failure;
        opts.onProgress(ev);
      }
    }

    bool definitive = res.verdict != mc::Verdict::Unknown;
    if (definitive && opts.verifyCex &&
        res.verdict == mc::Verdict::Unsafe && res.cex.has_value() &&
        !mc::replayHitsBad(clones[i], *res.cex)) {
      // The independent referee rejected the trace: never report it.
      res.verdict = mc::Verdict::Unknown;
      res.stats.add("portfolio.cex_replay_failures");
      definitive = false;
    }

    if (opts.onProgress) {
      obs::ProgressEvent ev;
      ev.kind = "engine";
      ev.problem = net.name;
      ev.engine = opts.engines[i];
      ev.verdict = mc::toString(res.verdict);
      ev.seconds = res.seconds;
      ev.bound = res.steps;
      opts.onProgress(ev);
    }

    // Sampled before claiming the win: distinguishes "stopped because a
    // rival won" from "ran to its own Unknown before anyone won".
    const bool tokenFiredBeforeReturn = token.cancelled();
    {
      const util::MutexLock lock(st.mu);
      if (definitive && st.winnerIdx < 0) {
        st.winnerIdx = static_cast<int>(i);
        token.cancel();  // tell every rival to stop
      }
      st.results[i] = std::move(res);
      st.wasCancelled[i] = !definitive && tokenFiredBeforeReturn;
      st.failures[i] = std::move(failure);
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(n);
  try {
    for (std::size_t i = 0; i < n; ++i) threads.emplace_back(worker, i);
  } catch (const std::system_error&) {
    // Thread exhaustion mid-fan-out: stop the engines already racing and
    // settle for their results; never-started engines stay Unknown. The
    // alternative is a joinable-thread destructor calling std::terminate.
    token.cancel();
  }
  for (std::thread& t : threads) t.join();

  // Post-join the race is single-threaded again, but the aggregation
  // still takes the (uncontended) lock so every access stays checked.
  const util::MutexLock lock(st.mu);
  for (std::size_t i = 0; i < n; ++i) {
    EngineRun& run = out.runs[i];
    run.engine = opts.engines[i];
    run.verdict = st.results[i].verdict;
    run.steps = st.results[i].steps;
    run.seconds = st.results[i].seconds;
    run.winner = static_cast<int>(i) == st.winnerIdx;
    run.cancelled = st.wasCancelled[i] != 0;
    run.slices = 1;  // race mode: one uninterrupted run per engine
    run.failed = !st.failures[i].empty();
    run.error = st.failures[i];
    run.stats = st.results[i].stats;
    if (run.failed) ++out.engineFailures;
  }
  out.allEnginesFailed = out.engineFailures == static_cast<int>(n) && n > 0;
  out.memLimitHit = budget.memLimitHit();

  if (st.winnerIdx >= 0) {
    out.best = std::move(st.results[static_cast<std::size_t>(st.winnerIdx)]);
    // Definitive losers that disagree with the winner are a soundness bug
    // in some engine; surface it in the stats rather than hiding it.
    for (const EngineRun& run : out.runs) {
      if (!run.winner && run.verdict != mc::Verdict::Unknown &&
          run.verdict != out.best.verdict)
        out.best.stats.add("portfolio.verdict_conflicts");
    }
  } else {
    out.best.engine = "portfolio";
    out.best.verdict = mc::Verdict::Unknown;
    if (out.allEnginesFailed)
      out.best.stats.add("portfolio.all_engines_failed");
  }
  if (out.engineFailures > 0)
    out.best.stats.add("portfolio.engine_failures", out.engineFailures);
  if (out.memLimitHit) out.best.stats.add("portfolio.mem_limit_hits");
  out.wallSeconds = wall.seconds();
  out.best.seconds = out.wallSeconds;
  return out;
}

}  // namespace cbq::portfolio

#pragma once
// Batch verification service: a work queue of circuit problems fanned out
// across N worker threads, each problem checked by the engine portfolio.
//
// This is the ROADMAP's "directory of HWMCC-style benchmarks as one batch
// job" layer: jobs are either files on disk (.aag / .aig / .bench, loaded
// lazily by the worker that claims them) or pre-built in-memory networks
// (tests, generators). Results land in input order regardless of worker
// interleaving, so batch output is deterministic modulo per-run timings.

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "mc/network.hpp"
#include "portfolio/runner.hpp"

namespace cbq::portfolio {

/// One unit of batch work. Either `path` names a circuit file, or `net`
/// holds an already-built network (then `path` is informational only).
struct BatchProblem {
  std::string name;
  std::string path;
  std::optional<mc::Network> net;
};

struct BatchOptions {
  PortfolioOptions portfolio{};
  int jobs = 0;  ///< worker threads; <= 0 means hardware concurrency
  /// Bounded retries for problems whose Unknown came from engine failures
  /// (not from parse errors or honest budget exhaustion — those are
  /// deterministic and retrying is wasted work). Each retry runs fresh
  /// sessions; a transient blow-up gets a second chance.
  int retries = 0;
  /// Engine set for retry attempts (empty = same set again). Lets a batch
  /// fall back to a conservative portfolio when the first-choice engines
  /// crashed on a problem.
  std::vector<std::string> fallbackEngines;
};

/// Per-problem outcome, in input order.
struct BatchProblemResult {
  std::size_t index = 0;
  std::string name;
  std::string path;
  mc::Verdict verdict = mc::Verdict::Unknown;
  std::string winnerEngine;  ///< empty when no engine was definitive
  int steps = 0;
  double seconds = 0.0;  ///< wall time of this problem's portfolio race
  std::size_t latches = 0, inputs = 0, ands = 0;  ///< original shape
  std::string error;  ///< parse/load failure; verdict stays Unknown
  PrepSummary prep;   ///< what preprocessing removed (runner.hpp)
  std::vector<EngineRun> runs;

  // Containment diagnostics (the last attempt's): how many engines threw
  // and were quarantined, whether every engine failed (the only way a
  // failure reaches the verdict, as Unknown), whether the soft RSS
  // ceiling tripped, and how many retry attempts the scheduler spent.
  int engineFailures = 0;
  bool allEnginesFailed = false;
  bool memLimitHit = false;
  int retries = 0;

  // Memory high-water marks, sampled when the problem finished. Peak RSS
  // is process-wide (monotone across the batch); the node peaks are this
  // problem's own, maxed over its engine runs.
  std::uint64_t peakRssBytes = 0;
  std::uint64_t aigPeakNodes = 0;
  std::uint64_t bddPeakNodes = 0;
};

struct BatchSummary {
  std::vector<BatchProblemResult> problems;  ///< input order
  double wallSeconds = 0.0;
  int safe = 0, unsafe = 0, unknown = 0, errors = 0;
};

class BatchScheduler {
 public:
  explicit BatchScheduler(BatchOptions opts = {});

  /// Runs every problem; in-memory networks are moved in because each
  /// worker clones from them. `onResult` (optional) fires once per
  /// finished problem, serialized under a lock, for live progress output.
  [[nodiscard]] BatchSummary run(
      std::vector<BatchProblem> problems,
      const std::function<void(const BatchProblemResult&)>& onResult =
          nullptr) const;

  /// Convenience: one BatchProblem per file path.
  [[nodiscard]] BatchSummary runFiles(
      const std::vector<std::string>& files,
      const std::function<void(const BatchProblemResult&)>& onResult =
          nullptr) const;

  /// Expands directories into their circuit files (.aag/.aig/.bench,
  /// sorted by name); passes plain files through. Throws
  /// std::runtime_error when a path does not exist.
  static std::vector<std::string> collectCircuitFiles(
      const std::vector<std::string>& paths);

 private:
  BatchOptions opts_;
};

}  // namespace cbq::portfolio

#pragma once
// Cooperative execution budgets for engine runs.
//
// A Budget bundles the three ways a run can be told to stop early:
//   * an external CancelToken — flipped by the portfolio runner the moment
//     a rival engine produces a definitive verdict;
//   * a wall-clock deadline;
//   * a node limit on the engine's dominant data structure (AIG cone size
//     for the circuit engines, live nodes for the BDD engines).
// Engines fold their own option limits on top (Budget::tightened) and poll
// exhausted() in every fixpoint / unrolling / enumeration loop, handing an
// interrupt callback to the SAT solvers they create so cancellation latency
// is bounded by a few hundred conflicts rather than one engine iteration.

#include <atomic>
#include <chrono>
#include <cstddef>
#include <memory>

#include "obs/memory.hpp"

namespace cbq::portfolio {

/// A shared stop flag. One token is observed by every engine racing on a
/// problem; cancel() is sticky until reset().
class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  void cancel() noexcept { flag_.store(true, std::memory_order_release); }
  [[nodiscard]] bool cancelled() const noexcept {
    return flag_.load(std::memory_order_acquire);
  }
  void reset() noexcept { flag_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> flag_{false};
};

/// Immutable view of a run's resource envelope. Copyable; copies share the
/// (externally owned) CancelToken, which must outlive every copy.
class Budget {
 public:
  using Clock = std::chrono::steady_clock;
  static_assert(Clock::is_steady,
                "deadlines must come from a monotonic clock");

  /// Unlimited: never expires, never cancelled, no node bound.
  Budget() = default;

  /// `deadlineSeconds` <= 0 means no deadline; `nodeLimit` 0 means no
  /// node bound. The deadline clock starts now.
  explicit Budget(double deadlineSeconds, std::size_t nodeLimit = 0,
                  const CancelToken* cancel = nullptr)
      : nodeLimit_(nodeLimit), cancel_(cancel) {
    if (deadlineSeconds > 0.0)
      deadline_ = Clock::now() + toDuration(deadlineSeconds);
  }

  /// Installs a soft RSS ceiling (bytes; 0 = none): when the process's
  /// CURRENT resident set crosses it, exhausted() turns true and every
  /// engine polling this budget (or any tightened() copy — the ceiling
  /// state is shared across copies) bails out to Unknown through the same
  /// cooperative path as a deadline, instead of letting the kernel OOM-
  /// kill the worker. "Soft" because it is polled: the check is rate-
  /// limited to every kMemPollStride-th exhausted() call, so overshoot is
  /// bounded by what an engine allocates between polls. Returns *this for
  /// builder-style use.
  Budget& withRssLimit(std::size_t rssLimitBytes) {
    rssLimit_ = rssLimitBytes;
    if (rssLimitBytes != 0 && mem_ == nullptr)
      mem_ = std::make_shared<MemState>();
    return *this;
  }

  /// The tighter of this budget and a fresh allowance of `seconds` from
  /// now — how an engine folds its own option time limit into the caller's
  /// budget. Non-positive `seconds` adds no constraint.
  [[nodiscard]] Budget tightened(double seconds) const {
    Budget b = *this;
    if (seconds > 0.0) {
      const Clock::time_point d = Clock::now() + toDuration(seconds);
      if (d < b.deadline_) b.deadline_ = d;
    }
    return b;
  }

  [[nodiscard]] bool cancelled() const {
    return cancel_ != nullptr && cancel_->cancelled();
  }
  [[nodiscard]] bool timedOut() const {
    return deadline_ != Clock::time_point::max() && Clock::now() >= deadline_;
  }
  /// The per-loop poll: external cancel, deadline, or RSS ceiling.
  [[nodiscard]] bool exhausted() const {
    return cancelled() || timedOut() || memExceeded();
  }

  /// The soft RSS ceiling check. Sticky once tripped (shared across every
  /// copy of this budget, so the scheduler sees the diagnostic even when
  /// an engine's tightened() copy did the poll); the actual /proc read is
  /// rate-limited by a shared call counter.
  [[nodiscard]] bool memExceeded() const {
    if (rssLimit_ == 0 || mem_ == nullptr) return false;
    if (mem_->hit.load(std::memory_order_relaxed)) return true;
    if ((mem_->polls.fetch_add(1, std::memory_order_relaxed) %
         kMemPollStride) != 0)
      return false;
    const std::uint64_t rss = obs::currentRssBytes();
    if (rss > rssLimit_) {
      mem_->hit.store(true, std::memory_order_relaxed);
      return true;
    }
    return false;
  }

  /// True when the ceiling ever tripped on this budget or any copy.
  [[nodiscard]] bool memLimitHit() const {
    return mem_ != nullptr && mem_->hit.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t rssLimit() const { return rssLimit_; }

  [[nodiscard]] bool nodesExceeded(std::size_t liveNodes) const {
    return nodeLimit_ != 0 && liveNodes > nodeLimit_;
  }
  [[nodiscard]] std::size_t nodeLimit() const { return nodeLimit_; }
  [[nodiscard]] const CancelToken* token() const { return cancel_; }

 private:
  static constexpr std::uint64_t kMemPollStride = 64;

  /// Shared across copies (tightened() slices, per-engine copies): one
  /// problem has ONE ceiling, and one trip stops every engine on it.
  struct MemState {
    std::atomic<std::uint64_t> polls{0};
    std::atomic<bool> hit{false};
  };

  static Clock::duration toDuration(double s) {
    return std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double>(s));
  }

  Clock::time_point deadline_ = Clock::time_point::max();
  std::size_t nodeLimit_ = 0;
  std::size_t rssLimit_ = 0;
  const CancelToken* cancel_ = nullptr;
  std::shared_ptr<MemState> mem_;
};

}  // namespace cbq::portfolio

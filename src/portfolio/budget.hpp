#pragma once
// Cooperative execution budgets for engine runs.
//
// A Budget bundles the three ways a run can be told to stop early:
//   * an external CancelToken — flipped by the portfolio runner the moment
//     a rival engine produces a definitive verdict;
//   * a wall-clock deadline;
//   * a node limit on the engine's dominant data structure (AIG cone size
//     for the circuit engines, live nodes for the BDD engines).
// Engines fold their own option limits on top (Budget::tightened) and poll
// exhausted() in every fixpoint / unrolling / enumeration loop, handing an
// interrupt callback to the SAT solvers they create so cancellation latency
// is bounded by a few hundred conflicts rather than one engine iteration.

#include <atomic>
#include <chrono>
#include <cstddef>

namespace cbq::portfolio {

/// A shared stop flag. One token is observed by every engine racing on a
/// problem; cancel() is sticky until reset().
class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  void cancel() noexcept { flag_.store(true, std::memory_order_release); }
  [[nodiscard]] bool cancelled() const noexcept {
    return flag_.load(std::memory_order_acquire);
  }
  void reset() noexcept { flag_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> flag_{false};
};

/// Immutable view of a run's resource envelope. Copyable; copies share the
/// (externally owned) CancelToken, which must outlive every copy.
class Budget {
 public:
  using Clock = std::chrono::steady_clock;
  static_assert(Clock::is_steady,
                "deadlines must come from a monotonic clock");

  /// Unlimited: never expires, never cancelled, no node bound.
  Budget() = default;

  /// `deadlineSeconds` <= 0 means no deadline; `nodeLimit` 0 means no
  /// node bound. The deadline clock starts now.
  explicit Budget(double deadlineSeconds, std::size_t nodeLimit = 0,
                  const CancelToken* cancel = nullptr)
      : nodeLimit_(nodeLimit), cancel_(cancel) {
    if (deadlineSeconds > 0.0)
      deadline_ = Clock::now() + toDuration(deadlineSeconds);
  }

  /// The tighter of this budget and a fresh allowance of `seconds` from
  /// now — how an engine folds its own option time limit into the caller's
  /// budget. Non-positive `seconds` adds no constraint.
  [[nodiscard]] Budget tightened(double seconds) const {
    Budget b = *this;
    if (seconds > 0.0) {
      const Clock::time_point d = Clock::now() + toDuration(seconds);
      if (d < b.deadline_) b.deadline_ = d;
    }
    return b;
  }

  [[nodiscard]] bool cancelled() const {
    return cancel_ != nullptr && cancel_->cancelled();
  }
  [[nodiscard]] bool timedOut() const {
    return deadline_ != Clock::time_point::max() && Clock::now() >= deadline_;
  }
  /// The per-loop poll: external cancel or deadline.
  [[nodiscard]] bool exhausted() const { return cancelled() || timedOut(); }

  [[nodiscard]] bool nodesExceeded(std::size_t liveNodes) const {
    return nodeLimit_ != 0 && liveNodes > nodeLimit_;
  }
  [[nodiscard]] std::size_t nodeLimit() const { return nodeLimit_; }
  [[nodiscard]] const CancelToken* token() const { return cancel_; }

 private:
  static Clock::duration toDuration(double s) {
    return std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double>(s));
  }

  Clock::time_point deadline_ = Clock::time_point::max();
  std::size_t nodeLimit_ = 0;
  const CancelToken* cancel_ = nullptr;
};

}  // namespace cbq::portfolio

#include "portfolio/scheduler.hpp"

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <optional>
#include <stdexcept>
#include <thread>
#include <utility>

#include "circuits/io.hpp"
#include "obs/memory.hpp"
#include "util/sync.hpp"
#include "util/timer.hpp"

namespace cbq::portfolio {

namespace fs = std::filesystem;

BatchScheduler::BatchScheduler(BatchOptions opts) : opts_(std::move(opts)) {
  if (opts_.jobs <= 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    opts_.jobs = hw == 0 ? 1 : static_cast<int>(hw);
  }
}

std::vector<std::string> BatchScheduler::collectCircuitFiles(
    const std::vector<std::string>& paths) {
  auto isCircuit = [](const fs::path& p) {
    const std::string ext = p.extension().string();
    return ext == ".aag" || ext == ".aig" || ext == ".bench";
  };
  std::vector<std::string> files;
  for (const std::string& raw : paths) {
    const fs::path p(raw);
    if (fs::is_directory(p)) {
      std::vector<std::string> here;
      for (const auto& entry : fs::directory_iterator(p))
        if (entry.is_regular_file() && isCircuit(entry.path()))
          here.push_back(entry.path().string());
      std::sort(here.begin(), here.end());
      files.insert(files.end(), here.begin(), here.end());
    } else if (fs::is_regular_file(p)) {
      files.push_back(raw);
    } else {
      throw std::runtime_error("no such file or directory: " + raw);
    }
  }
  return files;
}

BatchSummary BatchScheduler::runFiles(
    const std::vector<std::string>& files,
    const std::function<void(const BatchProblemResult&)>& onResult) const {
  std::vector<BatchProblem> problems;
  problems.reserve(files.size());
  for (const std::string& f : files)
    problems.push_back({fs::path(f).filename().string(), f, std::nullopt});
  return run(std::move(problems), onResult);
}

BatchSummary BatchScheduler::run(
    std::vector<BatchProblem> problems,
    const std::function<void(const BatchProblemResult&)>& onResult) const {
  util::Timer wall;
  BatchSummary summary;
  summary.problems.resize(problems.size());

  const PortfolioRunner runner(opts_.portfolio);  // validates engine names

  // Retry attempts may switch to a fallback engine set; build (and
  // validate) that runner once up front, not per problem.
  std::optional<PortfolioRunner> fallback;
  if (!opts_.fallbackEngines.empty()) {
    PortfolioOptions fo = opts_.portfolio;
    fo.engines = opts_.fallbackEngines;
    fallback.emplace(std::move(fo));
  }

  // summary.problems[i] is written only by the worker that claimed index
  // i off the cursor (disjoint slots), so the only mutex-guarded state is
  // the caller's onResult stream.
  std::atomic<std::size_t> cursor{0};
  util::Mutex reportMu;

  auto runOne = [&](std::size_t i) {
    const BatchProblem& job = problems[i];
    BatchProblemResult r;
    r.index = i;
    r.name = job.name;
    r.path = job.path;

    // One problem's failure — parse error, allocation failure, thread
    // exhaustion inside the race, even a non-std::exception throw — must
    // never take down the batch or lose the other workers' results: an
    // exception escaping a std::thread body would terminate the process.
    try {
      const mc::Network* net = nullptr;
      mc::Network loaded;
      if (job.net.has_value()) {
        net = &*job.net;
      } else {
        // Load in its own scope: parse errors are deterministic, land in
        // r.error, and are never retried (unlike engine failures below).
        loaded = circuits::readCircuitFile(job.path);
        net = &loaded;
      }
      r.latches = net->numLatches();
      r.inputs = net->numInputs();
      r.ands = net->aig.numAnds();

      for (int attempt = 0;; ++attempt) {
        // First attempt uses the configured portfolio; retries switch to
        // the fallback set when one is configured. Every attempt opens
        // fresh sessions, so a transient blow-up is actually retried
        // rather than resumed.
        const PortfolioRunner& active =
            (attempt > 0 && fallback.has_value()) ? *fallback : runner;
        PortfolioResult pr;
        std::string thrown;
        try {
          pr = active.run(*net);
        } catch (const std::exception& e) {
          thrown = e.what();
          if (thrown.empty()) thrown = "unknown std::exception";
        } catch (...) {
          thrown = "non-standard exception";
        }
        if (!thrown.empty()) {
          // Engine-layer blow-up that escaped the runner's own barriers.
          r.verdict = mc::Verdict::Unknown;
          r.allEnginesFailed = true;
          if (attempt < opts_.retries) {
            r.retries = attempt + 1;
            continue;
          }
          r.error = thrown;
          break;
        }
        r.verdict = pr.best.verdict;
        r.steps = pr.best.steps;
        r.seconds += pr.wallSeconds;  // retries bill to the same problem
        if (const EngineRun* w = pr.winner()) {
          r.winnerEngine = w->engine;
        } else if (pr.prep.decided) {
          r.winnerEngine = "prep";
        }
        r.prep = std::move(pr.prep);
        r.runs = std::move(pr.runs);
        r.engineFailures = pr.engineFailures;
        r.allEnginesFailed = pr.allEnginesFailed;
        r.memLimitHit = pr.memLimitHit;
        r.peakRssBytes = obs::peakRssBytes();
        auto peakOf = [&](const char* name) {
          double peak = pr.best.stats.gauge(name);
          for (const EngineRun& er : r.runs)
            peak = std::max(peak, er.stats.gauge(name));
          return static_cast<std::uint64_t>(std::max(0.0, peak));
        };
        r.aigPeakNodes = peakOf("mem.aig_peak_nodes");
        r.bddPeakNodes = peakOf("bdd.peak_nodes");

        // Retry only failure-driven Unknowns: a definitive verdict or an
        // honest budget-exhausted Unknown is final.
        const bool failureDriven =
            r.verdict == mc::Verdict::Unknown && r.engineFailures > 0;
        if (failureDriven && attempt < opts_.retries) {
          r.retries = attempt + 1;
          continue;
        }
        break;
      }
    } catch (const std::exception& e) {
      r.error = e.what();
      r.verdict = mc::Verdict::Unknown;
    } catch (...) {
      r.error = "non-standard exception";
      r.verdict = mc::Verdict::Unknown;
    }
    summary.problems[i] = std::move(r);
    if (onResult) {
      const util::MutexLock lock(reportMu);
      onResult(summary.problems[i]);
    }
  };

  auto worker = [&] {
    for (;;) {
      const std::size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
      if (i >= problems.size()) return;
      runOne(i);
    }
  };

  const int nWorkers = std::min<int>(
      opts_.jobs, static_cast<int>(std::max<std::size_t>(problems.size(), 1)));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(nWorkers));
  for (int t = 0; t < nWorkers; ++t) threads.emplace_back(worker);
  for (std::thread& t : threads) t.join();

  for (const BatchProblemResult& r : summary.problems) {
    if (!r.error.empty()) {
      ++summary.errors;
    } else if (r.verdict == mc::Verdict::Safe) {
      ++summary.safe;
    } else if (r.verdict == mc::Verdict::Unsafe) {
      ++summary.unsafe;
    } else {
      ++summary.unknown;
    }
  }
  summary.wallSeconds = wall.seconds();
  return summary;
}

}  // namespace cbq::portfolio

#include "quant/quantifier.hpp"

#include <algorithm>
#include <bit>

#include "obs/tracer.hpp"
#include "sweep/sweep_context.hpp"
#include "util/timer.hpp"
#include "util/var_table.hpp"

namespace cbq::quant {

using aig::Lit;
using aig::NodeId;
using aig::VarId;

void Quantifier::applyBackendPolicy() {
  if (opts_.context != nullptr) opts_.context->setBackend(opts_.satBackend);
}

std::optional<Lit> Quantifier::quantifyVar(Lit f, VarId v) {
  return quantifyVarImpl(f, v, opts_.allowAborts);
}

Lit Quantifier::quantifyVarForced(Lit f, VarId v) {
  return *quantifyVarImpl(f, v, /*enforceGrowth=*/false);
}

namespace {

/// Collects the conjuncts of f's top-level AND tree (f itself when it is
/// not a positive AND literal).
void collectConjuncts(const aig::Aig& g, Lit f, std::vector<Lit>& out) {
  if (!f.negated() && g.isAnd(f.node())) {
    collectConjuncts(g, g.fanin0(f.node()), out);
    collectConjuncts(g, g.fanin1(f.node()), out);
  } else {
    out.push_back(f);
  }
}

/// Matches a PAIR of conjuncts encoding p XNOR q. An XNOR is a positive
/// AND node, so the top-level conjunct split tears it into its two
/// halves ¬(p ∧ ¬q) and ¬(¬p ∧ q); together they assert p ↔ q.
bool matchXnorPair(const aig::Aig& g, Lit ci, Lit cj, Lit& p, Lit& q) {
  if (!ci.negated() || !cj.negated()) return false;
  if (!g.isAnd(ci.node()) || !g.isAnd(cj.node())) return false;
  const Lit a0 = g.fanin0(ci.node());
  const Lit a1 = g.fanin1(ci.node());
  const Lit b0 = g.fanin0(cj.node());
  const Lit b1 = g.fanin1(cj.node());
  // The two products must be over the same literals in opposite phases.
  if ((a0 == !b0 && a1 == !b1) || (a0 == !b1 && a1 == !b0)) {
    // ci ∧ cj = ¬(a0 ∧ a1) ∧ ¬(¬a0 ∧ ¬a1) = a0 XNOR ¬a1.
    p = a0;
    q = !a1;
    return true;
  }
  return false;
}

}  // namespace

std::optional<Lit> Quantifier::quantifyBySubstitution(Lit f, VarId v) {
  if (f.isConstant() || !aig_->hasPi(v)) return std::nullopt;
  const Lit vLit(aig_->piNodeOf(v), false);
  std::vector<Lit> conjuncts;
  collectConjuncts(*aig_, f, conjuncts);

  Lit def;
  bool found = false;
  std::size_t usedI = 0;
  std::size_t usedJ = 0;  // == usedI for single-conjunct matches

  // Single-conjunct forms first: the literal itself pins the variable.
  for (std::size_t i = 0; i < conjuncts.size() && !found; ++i) {
    if (conjuncts[i] == vLit) {
      def = aig::kTrue;  // ∃v.(v ∧ R) = R[v := 1]
      found = true;
      usedI = usedJ = i;
    } else if (conjuncts[i] == !vLit) {
      def = aig::kFalse;
      found = true;
      usedI = usedJ = i;
    }
  }

  // Definition via an XNOR split across two conjuncts: v ↔ g.
  for (std::size_t i = 0; i < conjuncts.size() && !found; ++i) {
    for (std::size_t j = i + 1; j < conjuncts.size() && !found; ++j) {
      Lit p;
      Lit q;
      if (!matchXnorPair(*aig_, conjuncts[i], conjuncts[j], p, q)) continue;
      Lit candidate;
      if (p.positive() == vLit) {
        candidate = q ^ p.negated();  // XNOR(¬v, q) = XNOR(v, ¬q)
      } else if (q.positive() == vLit) {
        candidate = p ^ q.negated();
      } else {
        continue;
      }
      if (aig_->dependsOn(candidate, v)) continue;  // not a definition
      def = candidate;
      found = true;
      usedI = i;
      usedJ = j;
    }
  }
  if (!found) return std::nullopt;

  // Rebuild the remaining conjunction and in-line the definition. The
  // defining conjuncts themselves become true under v := def and are
  // dropped; v may still occur in the rest — substitution handles it.
  std::vector<Lit> rest;
  rest.reserve(conjuncts.size());
  for (std::size_t k = 0; k < conjuncts.size(); ++k)
    if (k != usedI && k != usedJ) rest.push_back(conjuncts[k]);
  const Lit restF = aig_->mkAndAll(rest);
  stats_.add("quant.vars_substituted");
  return aig_->compose(restF, {{v, def}});
}

std::optional<Lit> Quantifier::quantifyVarImpl(Lit f, VarId v,
                                               bool enforceGrowth) {
  CBQ_OBS_SPAN("quant", "eliminate-var");
  const util::Timer varTimer;
  struct ObserveOnExit {
    obs::Metrics& stats;
    const util::Timer& timer;
    ~ObserveOnExit() { stats.observe("quant.var_seconds", timer.seconds()); }
  } observe{stats_, varTimer};
  stats_.add("quant.vars_attempted");
  if (f.isConstant() || !aig_->dependsOn(f, v)) {
    stats_.add("quant.vars_trivial");
    return f;
  }
  if (opts_.useSubstitution) {
    if (auto sub = quantifyBySubstitution(f, v)) return sub;
  }
  const std::size_t before = aig_->coneSize(f);
  stats_.add("quant.cone_before_total", static_cast<std::int64_t>(before));

  // Cofactors (the manager's hashing provides the paper's "semi-canonicity"
  // merge layer as the cofactors are rebuilt).
  Lit f0 = aig_->cofactor(f, v, false);
  Lit f1 = aig_->cofactor(f, v, true);
  if (f0 == f1) return f0;
  if (f0 == !f1) return aig::kTrue;

  // ----- merge phase (§2.1) ------------------------------------------------
  if (opts_.mergePhase && !f0.isConstant() && !f1.isConstant()) {
    const Lit pair[] = {f0, f1};
    const auto swept = sweep::sweep(*aig_, pair, opts_.sweepOpts);
    f0 = swept.roots[0];
    f1 = swept.roots[1];
    stats_.add("merge.bdd_merges",
               static_cast<std::int64_t>(swept.stats.bddMerges));
    stats_.add("merge.sat_merges",
               static_cast<std::int64_t>(swept.stats.satMerges));
    stats_.add("merge.const_merges",
               static_cast<std::int64_t>(swept.stats.constMerges));
    stats_.add("merge.sat_checks",
               static_cast<std::int64_t>(swept.stats.satChecks));
    stats_.add("merge.sat_refuted",
               static_cast<std::int64_t>(swept.stats.satRefuted));
    stats_.add("merge.sat_unknown",
               static_cast<std::int64_t>(swept.stats.satUnknown));
    stats_.add("merge.cache_hits_proven",
               static_cast<std::int64_t>(swept.stats.cacheHitsProven));
    stats_.add("merge.cache_hits_refuted",
               static_cast<std::int64_t>(swept.stats.cacheHitsRefuted));
    if (f0 == f1) return f0;
    if (f0 == !f1) return aig::kTrue;
  }

  // ----- optimization phase (§2.2), adaptively scheduled -------------------
  auto buildResult = [&](Lit a, Lit b) {
    Lit r = aig_->mkOr(a, b);
    if (opts_.rewriteResult) {
      const Lit roots[] = {r};
      r = synth::rewrite(*aig_, roots).front();
    }
    return r;
  };

  bool needOpt = opts_.optPhase && !f0.isConstant() && !f1.isConstant();
  if (needOpt && opts_.optPhaseAdaptive && opts_.context != nullptr &&
      !opts_.context->shouldAttemptDc()) {
    // The run's feedback says DC proofs have not been shrinking cones on
    // this workload — skip the phase (periodic re-probes keep it honest).
    needOpt = false;
    stats_.add("opt.skipped_feedback");
  }
  if (needOpt) {
    // Use f1's onset as DCs for f0, then the simplified f0's onset for f1.
    const auto r0 = synth::dcSimplify(*aig_, /*fRef=*/f1, /*fTgt=*/f0,
                                      opts_.dcOpts);
    f0 = r0.target;
    const auto r1 = synth::dcSimplify(*aig_, /*fRef=*/f0, /*fTgt=*/f1,
                                      opts_.dcOpts);
    f1 = r1.target;
    if (opts_.context != nullptr) {
      opts_.context->noteDcOutcome(r0.stats.nodesBefore,
                                   r0.stats.nodesAfter);
      opts_.context->noteDcOutcome(r1.stats.nodesBefore,
                                   r1.stats.nodesAfter);
    }
    for (const auto* r : {&r0, &r1}) {
      stats_.add("opt.const_repl",
                 static_cast<std::int64_t>(r->stats.constReplacements));
      stats_.add("opt.merge_repl",
                 static_cast<std::int64_t>(r->stats.mergeReplacements));
      stats_.add("opt.odc_repl",
                 static_cast<std::int64_t>(r->stats.odcReplacements));
      stats_.add("opt.sat_checks",
                 static_cast<std::int64_t>(r->stats.satChecks));
      stats_.add("opt.sat_refuted",
                 static_cast<std::int64_t>(r->stats.satRefuted));
      stats_.add("opt.sat_unknown",
                 static_cast<std::int64_t>(r->stats.satUnknown));
    }
  }
  Lit result = buildResult(f0, f1);
  if (opts_.finalSweep && !result.isConstant()) {
    const Lit roots[] = {result};
    result = sweep::sweep(*aig_, roots, opts_.sweepOpts).roots.front();
  }

  const std::size_t after = aig_->coneSize(result);
  stats_.add("quant.cone_after_total", static_cast<std::int64_t>(after));
  stats_.high("quant.max_cone", static_cast<double>(after));

  if (enforceGrowth) {
    const double bound = opts_.growthLimit * static_cast<double>(before) +
                         static_cast<double>(opts_.growthSlack);
    if (static_cast<double>(after) > bound) {
      stats_.add("quant.vars_aborted");
      return std::nullopt;
    }
  }
  stats_.add("quant.vars_eliminated");
  return result;
}

std::vector<std::size_t> Quantifier::dependentCounts(
    Lit f, std::span<const VarId> vars) const {
  // Bottom-up support bitsets restricted to the candidate variables, then
  // per-variable population counts. Words scale with |vars|; rows are
  // allocated compactly per cone node in one flat arena.
  const Lit roots[] = {f};
  const auto order = aig_->coneAnds(roots);
  const std::size_t words = (vars.size() + 63) / 64;
  util::VarTable<std::uint32_t> varSlot;
  for (std::size_t i = 0; i < vars.size(); ++i)
    varSlot.set(vars[i], static_cast<std::uint32_t>(i));

  constexpr std::uint32_t kNoRow = 0xffffffffu;
  std::vector<std::uint32_t> rowOf(aig_->numNodes(), kNoRow);
  std::vector<std::uint64_t> bits;  // row-major arena, `words` per row
  bits.reserve((order.size() + vars.size() + 1) * words);
  auto ensureRow = [&](NodeId n) -> std::uint32_t {
    if (rowOf[n] == kNoRow) {
      rowOf[n] = static_cast<std::uint32_t>(bits.size() / words);
      bits.resize(bits.size() + words, 0);
      if (aig_->isPi(n) && varSlot.contains(aig_->piVar(n))) {
        const std::uint32_t slot = varSlot.at(aig_->piVar(n));
        bits[rowOf[n] * words + slot / 64] |= std::uint64_t{1} << (slot % 64);
      }
    }
    return rowOf[n];
  };

  std::vector<std::size_t> counts(vars.size(), 0);
  for (const NodeId n : order) {
    // Build this node's mask from its fanins (already processed). Take
    // row indices first: ensureRow may grow the arena.
    const std::uint32_t r0 = ensureRow(aig_->fanin0(n).node());
    const std::uint32_t r1 = ensureRow(aig_->fanin1(n).node());
    const std::uint32_t rn = ensureRow(n);
    for (std::size_t w = 0; w < words; ++w) {
      const std::uint64_t combined =
          bits[r0 * words + w] | bits[r1 * words + w];
      bits[rn * words + w] = combined;
      std::uint64_t rest = combined;
      while (rest != 0) {
        ++counts[w * 64 + static_cast<std::size_t>(std::countr_zero(rest))];
        rest &= rest - 1;
      }
    }
  }
  return counts;
}

Quantifier::Result Quantifier::quantifyAll(Lit f,
                                           std::span<const VarId> vars) {
  Result out;
  out.f = f;

  // Work only on variables actually in the support.
  std::vector<VarId> remaining;
  {
    const auto support = aig_->supportVars(out.f);
    for (const VarId v : vars) {
      if (std::binary_search(support.begin(), support.end(), v))
        remaining.push_back(v);
    }
  }

  int retriesLeft = opts_.abortRetries;
  std::vector<VarId> aborted;
  while (!remaining.empty()) {
    if (opts_.interrupt && opts_.interrupt()) {
      // Interrupted: everything unprocessed becomes residual.
      aborted.insert(aborted.end(), remaining.begin(), remaining.end());
      stats_.add("quant.interrupts");
      break;
    }
    // Cheapest-first scheduling.
    const auto counts = dependentCounts(out.f, remaining);
    std::size_t best = 0;
    for (std::size_t i = 1; i < remaining.size(); ++i)
      if (counts[i] < counts[best]) best = i;
    const VarId v = remaining[best];
    remaining.erase(remaining.begin() + static_cast<std::ptrdiff_t>(best));

    if (auto r = quantifyVar(out.f, v)) {
      out.f = *r;
      if (out.f.isConstant()) break;
      // Support may have shrunk (DC optimizations drop variables).
      const auto support = aig_->supportVars(out.f);
      std::erase_if(remaining, [&](VarId x) {
        return !std::binary_search(support.begin(), support.end(), x);
      });
      std::erase_if(aborted, [&](VarId x) {
        return !std::binary_search(support.begin(), support.end(), x);
      });
    } else {
      aborted.push_back(v);
    }

    if (remaining.empty() && !aborted.empty() && retriesLeft > 0 &&
        !out.f.isConstant()) {
      // The formula shrank since those aborts; give them another chance.
      remaining.swap(aborted);
      --retriesLeft;
    }
  }

  if (out.f.isConstant()) aborted.clear();  // ∃x.c = c for every variable
  out.residual = std::move(aborted);
  std::sort(out.residual.begin(), out.residual.end());
  stats_.add("quant.residual_vars",
             static_cast<std::int64_t>(out.residual.size()));
  return out;
}

}  // namespace cbq::quant

#pragma once
// Circuit-based existential quantification — the paper's core contribution.
//
// ∃v.F is computed as F|v=0 ∨ F|v=1 on the AIG representation, with the
// blow-up fought in two phases per variable (§2):
//
//   1. merge phase   — structural hashing happens for free while the
//                      cofactors are rebuilt in the shared manager; the
//                      sweeping engine (BDD sweeping + incremental SAT
//                      checks) then collapses every functionally
//                      equivalent pair of cofactor nodes;
//   2. optimization  — each cofactor is simplified using the other's onset
//                      as an input don't-care set (plus the ODC variant),
//                      then the disjunction is rebuilt through the
//                      manager's rewrite rules.
//
// Multi-variable quantification schedules variables cheapest-first (fewest
// dependent cone nodes) and supports the paper's §4 **partial
// quantification**: a variable whose elimination would exceed the growth
// bound is aborted and reported as *residual*, so a SAT-based engine can
// finish the job on a formula with far fewer decision variables.

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "aig/aig.hpp"
#include "sweep/sweeper.hpp"
#include "synth/dc_simplify.hpp"
#include "obs/metrics.hpp"

namespace cbq::quant {

struct QuantOptions {
  bool useSubstitution = true;   ///< §3 in-lining fast path (see below)
  bool mergePhase = true;        ///< enable §2.1 (sweeping of the cofactors)
  bool optPhase = true;          ///< enable §2.2 (DC-based simplification)

  /// Adaptive §2.2 scheduling, driven by measured benefit: every
  /// dcSimplify call reports its shrink ratio to the run's SweepContext;
  /// once the running average shows the DC phase is not reducing cones
  /// (multiplier-style workloads, where each proof is expensive and buys
  /// nothing), the phase is skipped except for periodic re-probes. On
  /// blow-up-prone families (counters, queues) the ratio stays low and
  /// the full machinery runs every time. Requires `context`; without a
  /// session the phase always runs (the pre-session behaviour).
  bool optPhaseAdaptive = true;
  bool rewriteResult = true;     ///< structural cleanup of the disjunction
  bool finalSweep = false;       ///< extra sweep of F0 ∨ F1 (category-2 opt)
  sweep::SweepOptions sweepOpts{};
  synth::DcOptions dcOpts{};
  bool allowAborts = true;       ///< §4 partial quantification
  double growthLimit = 2.0;      ///< abort var when result cone exceeds
  std::size_t growthSlack = 32;  ///<   growthLimit * before + growthSlack
  int abortRetries = 1;          ///< re-attempts of aborted vars at the end

  /// Cooperative stop, polled between variables by quantifyAll: while it
  /// returns true, unprocessed variables are reported as residual so the
  /// caller can notice the interruption and bail out. Engines bind this to
  /// their run Budget (portfolio cancellation / deadline).
  std::function<bool()> interrupt{};

  /// Persistent sweep session shared by every merge-phase sweep and every
  /// DC simplification this quantifier performs (and, when the engine owns
  /// the context, by all its quantifiers and fixpoint checks across a
  /// whole reachability run). Propagated into sweepOpts.context /
  /// dcOpts.context by the Quantifier constructor unless those are already
  /// set. Null = per-call throwaway solvers (the pre-session behaviour).
  sweep::SweepContext* context = nullptr;

  /// SAT engine policy for every semantic check under this quantifier
  /// (cnf, circuit, race, auto). The constructor pushes it into
  /// sweepOpts/dcOpts and onto a provided `context`.
  sat::BackendKind satBackend = sat::BackendKind::Cnf;
};

/// Quantifier bound to one AIG manager. Accumulates statistics across
/// calls; engines read them for the ablation experiments.
class Quantifier {
 public:
  explicit Quantifier(aig::Aig& aig, QuantOptions opts = {})
      : aig_(&aig), opts_(std::move(opts)) {
    // The per-variable phases run long on hard cones; the interrupt must
    // reach their inner SAT-check loops, not just the variable schedule.
    if (opts_.interrupt) {
      if (!opts_.sweepOpts.interrupt)
        opts_.sweepOpts.interrupt = opts_.interrupt;
      if (!opts_.dcOpts.interrupt) opts_.dcOpts.interrupt = opts_.interrupt;
    }
    // One session for every sweep and DC pass of this quantifier.
    if (opts_.context != nullptr) {
      if (opts_.sweepOpts.context == nullptr)
        opts_.sweepOpts.context = opts_.context;
      if (opts_.dcOpts.context == nullptr)
        opts_.dcOpts.context = opts_.context;
    }
    // One engine policy for every check (shared session or throwaway).
    opts_.sweepOpts.satBackend = opts_.satBackend;
    opts_.dcOpts.satBackend = opts_.satBackend;
    applyBackendPolicy();  // out of line: SweepContext is incomplete here
  }

  /// ∃v.f — full per-variable pipeline. Returns std::nullopt when partial
  /// quantification aborted the variable (result would exceed the growth
  /// bound); the manager may still contain the scratch nodes.
  std::optional<aig::Lit> quantifyVar(aig::Lit f, aig::VarId v);

  /// Like quantifyVar but never aborts (growth bound ignored).
  aig::Lit quantifyVarForced(aig::Lit f, aig::VarId v);

  /// §3 "quantification by substitution" (in-lining): when f contains a
  /// top-level definition conjunct — the literal v/!v itself, or
  /// v ↔ g with g independent of v — then ∃v.f = rest[v := g] exactly,
  /// with no cofactor doubling at all. Returns std::nullopt when no such
  /// conjunct exists. Backward-reachability formulas have this shape by
  /// construction, which is the paper's §3 observation; quantifyVar tries
  /// this rule first when options().useSubstitution is set.
  std::optional<aig::Lit> quantifyBySubstitution(aig::Lit f, aig::VarId v);

  struct Result {
    aig::Lit f;                        ///< formula with vars eliminated
    std::vector<aig::VarId> residual;  ///< vars left in place by aborts
  };

  /// Eliminates every variable of `vars` (cheapest first), honouring the
  /// abort policy. Residual variables still occur in the returned formula.
  Result quantifyAll(aig::Lit f, std::span<const aig::VarId> vars);

  [[nodiscard]] const obs::Metrics& stats() const { return stats_; }
  obs::Metrics& stats() { return stats_; }

  [[nodiscard]] const QuantOptions& options() const { return opts_; }

 private:
  /// Pushes opts_.satBackend onto a provided shared context (no-op when
  /// the session already runs that policy). Out of line because the
  /// header only sees SweepContext as a forward declaration.
  void applyBackendPolicy();

  std::optional<aig::Lit> quantifyVarImpl(aig::Lit f, aig::VarId v,
                                          bool enforceGrowth);

  /// Scheduling cost: number of cone nodes whose structural support
  /// contains each candidate variable (cheap bottom-up bitset pass).
  std::vector<std::size_t> dependentCounts(
      aig::Lit f, std::span<const aig::VarId> vars) const;

  aig::Aig* aig_;
  QuantOptions opts_;
  obs::Metrics stats_;
};

}  // namespace cbq::quant

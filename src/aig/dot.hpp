#pragma once
// Graphviz export of AIG cones — debugging/teaching aid for inspecting
// what the quantifier's merge and optimization phases did to a state set.

#include <iosfwd>
#include <span>
#include <string>

#include "aig/aig.hpp"

namespace cbq::aig {

/// Writes the cones of `roots` in Graphviz dot syntax. AND nodes are
/// ellipses, PIs are boxes labelled with their varId, complemented edges
/// are dashed, roots get labelled arrows.
void writeDot(const Aig& g, std::span<const Lit> roots, std::ostream& out,
              const std::string& graphName = "aig");

}  // namespace cbq::aig

#include "aig/dot.hpp"

#include <ostream>
#include <unordered_set>

namespace cbq::aig {

void writeDot(const Aig& g, std::span<const Lit> roots, std::ostream& out,
              const std::string& graphName) {
  out << "digraph \"" << graphName << "\" {\n";
  out << "  rankdir=BT;\n";
  out << "  node [fontname=\"monospace\"];\n";

  // Collect the cone plus its leaves.
  const auto order = g.coneAnds(roots);
  std::unordered_set<NodeId> leaves;
  auto noteLeaf = [&](Lit l) {
    if (!g.isAnd(l.node())) leaves.insert(l.node());
  };
  for (const Lit r : roots) noteLeaf(r);
  for (const NodeId n : order) {
    noteLeaf(g.fanin0(n));
    noteLeaf(g.fanin1(n));
  }

  for (const NodeId n : leaves) {
    if (g.isConst(n)) {
      out << "  n" << n << " [shape=box,label=\"0\"];\n";
    } else {
      out << "  n" << n << " [shape=box,label=\"x" << g.piVar(n) << "\"];\n";
    }
  }
  for (const NodeId n : order) {
    out << "  n" << n << " [shape=ellipse,label=\"&\"];\n";
    for (const Lit f : {g.fanin0(n), g.fanin1(n)}) {
      out << "  n" << f.node() << " -> n" << n;
      if (f.negated()) out << " [style=dashed]";
      out << ";\n";
    }
  }
  for (std::size_t i = 0; i < roots.size(); ++i) {
    out << "  root" << i << " [shape=plaintext,label=\"root " << i
        << "\"];\n";
    out << "  n" << roots[i].node() << " -> root" << i;
    if (roots[i].negated()) out << " [style=dashed]";
    out << ";\n";
  }
  out << "}\n";
}

}  // namespace cbq::aig

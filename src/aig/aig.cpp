#include "aig/aig.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <stdexcept>
#include "util/fault.hpp"

namespace cbq::aig {

namespace {

/// All-ones / all-zero mask for complemented simulation words.
std::uint64_t negMask(bool negated) {
  return negated ? ~std::uint64_t{0} : std::uint64_t{0};
}

}  // namespace

Aig::Aig() {
  // Process-unique identity (see uid()): a fresh value per constructed
  // manager; moves carry it along with the node space it describes.
  static std::atomic<std::uint64_t> nextUid{1};
  uid_ = nextUid.fetch_add(1, std::memory_order_relaxed);
  // Node 0: the constant-FALSE node.
  nodes_.push_back(Node{kFalse, kFalse, 0});
  stamp_.push_back(0);
}

NodeId Aig::newNode(Lit f0, Lit f1, std::uint32_t level) {
  // Injection site: AIG growth is where every engine's memory pressure
  // concentrates (pre-images, unrollings, clones all land here).
  CBQ_FAULT_POINT("aig.grow");
  const NodeId id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(Node{f0, f1, level});
  stamp_.push_back(0);
  return id;
}

Lit Aig::pi(VarId var) {
  if (var < piByVar_.size() && piByVar_[var] != 0)
    return Lit(piByVar_[var], false);
  const NodeId id = newNode(kPiMark, Lit::fromRaw(var), 0);
  pis_.push_back(id);
  if (var >= piByVar_.size()) piByVar_.resize(var + 1, 0);
  piByVar_[var] = id;
  return Lit(id, false);
}

Lit Aig::mkAndRaw(Lit a, Lit b) {
  // One-level simplification rules.
  if (a == b) return a;
  if (a == !b) return kFalse;
  if (a.isTrue()) return b;
  if (b.isTrue()) return a;
  if (a.isFalse() || b.isFalse()) return kFalse;

  if (b.raw() < a.raw()) std::swap(a, b);
  if (const NodeId hit = strash_.find(a, b); hit != 0)
    return Lit(hit, false);

  const std::uint32_t lvl =
      1 + std::max(nodes_[a.node()].level, nodes_[b.node()].level);
  const NodeId id = newNode(a, b, lvl);
  strash_.insert(a, b, id);
  return Lit(id, false);
}

bool Aig::tryTwoLevel(Lit a, Lit b, Lit& out) {
  // Rules that look one AND level below `a`; callers invoke this with both
  // argument orders. All rules preserve the function exactly.
  if (!isAnd(a.node())) return false;
  const Lit x = fanin0(a.node());
  const Lit y = fanin1(a.node());

  if (!a.negated()) {
    // a = x & y.
    if (b == x || b == y) {            // absorption: (x&y) & x = x&y
      out = a;
      return true;
    }
    if (b == !x || b == !y) {          // contradiction: (x&y) & !x = 0
      out = kFalse;
      return true;
    }
    if (isAnd(b.node()) && !b.negated()) {
      const Lit u = fanin0(b.node());
      const Lit v = fanin1(b.node());
      if (x == !u || x == !v || y == !u || y == !v) {  // (x&y)&(u&v), x=!u
        out = kFalse;
        return true;
      }
    }
    if (isAnd(b.node()) && b.negated()) {
      const Lit u = fanin0(b.node());
      const Lit v = fanin1(b.node());
      // a → !u (or !v) implies a → b, so a & b = a.
      if (x == !u || x == !v || y == !u || y == !v) {
        out = a;
        return true;
      }
    }
  } else {
    // a = !(x & y).
    if (b == !x || b == !y) {          // !x → !(x&y), so b & a = b
      out = b;
      return true;
    }
    if (b == x) {                      // substitution: x & !(x&y) = x & !y
      out = mkAnd(x, !y);
      return true;
    }
    if (b == y) {
      out = mkAnd(y, !x);
      return true;
    }
  }
  return false;
}

Lit Aig::mkAnd(Lit a, Lit b) {
  if (a == b) return a;
  if (a == !b) return kFalse;
  if (a.isTrue()) return b;
  if (b.isTrue()) return a;
  if (a.isFalse() || b.isFalse()) return kFalse;

  if (twoLevel_) {
    Lit out;
    if (tryTwoLevel(a, b, out)) return out;
    if (tryTwoLevel(b, a, out)) return out;
  }
  return mkAndRaw(a, b);
}

Lit Aig::mkXor(Lit a, Lit b) {
  return mkOr(mkAnd(a, !b), mkAnd(!a, b));
}

Lit Aig::mkMux(Lit s, Lit t, Lit e) {
  if (t == e) return t;
  return mkOr(mkAnd(s, t), mkAnd(!s, e));
}

Lit Aig::mkAndAll(std::span<const Lit> lits) {
  if (lits.empty()) return kTrue;
  std::vector<Lit> layer(lits.begin(), lits.end());
  // Balanced reduction keeps levels (and sharing opportunities) sane.
  while (layer.size() > 1) {
    std::vector<Lit> next;
    next.reserve((layer.size() + 1) / 2);
    for (std::size_t i = 0; i + 1 < layer.size(); i += 2)
      next.push_back(mkAnd(layer[i], layer[i + 1]));
    if (layer.size() % 2 != 0) next.push_back(layer.back());
    layer = std::move(next);
  }
  return layer.front();
}

Lit Aig::mkOrAll(std::span<const Lit> lits) {
  std::vector<Lit> inv;
  inv.reserve(lits.size());
  for (Lit l : lits) inv.push_back(!l);
  return !mkAndAll(inv);
}

void Aig::bumpEpoch() const {
  stamp_.resize(nodes_.size(), 0);
  if (++epoch_ == 0) {
    std::fill(stamp_.begin(), stamp_.end(), 0u);
    epoch_ = 1;
  }
}

std::vector<NodeId> Aig::coneAnds(std::span<const Lit> roots) const {
  bumpEpoch();
  std::vector<NodeId> order;
  std::vector<std::pair<NodeId, bool>> stack;  // (node, children done)
  for (Lit r : roots) stack.emplace_back(r.node(), false);
  while (!stack.empty()) {
    auto [n, done] = stack.back();
    stack.pop_back();
    if (done) {
      order.push_back(n);
      continue;
    }
    if (visited(n) || !isAnd(n)) {
      if (!visited(n)) markVisited(n);
      continue;
    }
    markVisited(n);
    stack.emplace_back(n, true);
    stack.emplace_back(fanin0(n).node(), false);
    stack.emplace_back(fanin1(n).node(), false);
  }
  return order;
}

std::vector<NodeId> Aig::coneAnds(std::span<const Lit> roots,
                                  TraversalScratch& scratch) const {
  // Same walk as above, but over caller-owned marks: many threads may run
  // this at once on one manager (each with its own scratch) because the
  // shared stamp_/epoch_ members are never touched.
  scratch.stamp.resize(nodes_.size(), 0);
  if (++scratch.epoch == 0) {
    std::fill(scratch.stamp.begin(), scratch.stamp.end(), 0u);
    scratch.epoch = 1;
  }
  const auto seen = [&](NodeId n) { return scratch.stamp[n] == scratch.epoch; };
  const auto mark = [&](NodeId n) { scratch.stamp[n] = scratch.epoch; };

  std::vector<NodeId> order;
  std::vector<std::pair<NodeId, bool>> stack;  // (node, children done)
  for (Lit r : roots) stack.emplace_back(r.node(), false);
  while (!stack.empty()) {
    auto [n, done] = stack.back();
    stack.pop_back();
    if (done) {
      order.push_back(n);
      continue;
    }
    if (seen(n) || !isAnd(n)) {
      if (!seen(n)) mark(n);
      continue;
    }
    mark(n);
    stack.emplace_back(n, true);
    stack.emplace_back(fanin0(n).node(), false);
    stack.emplace_back(fanin1(n).node(), false);
  }
  return order;
}

std::size_t Aig::coneSize(Lit root) const {
  const Lit roots[] = {root};
  return coneAnds(roots).size();
}

std::size_t Aig::coneSize(std::span<const Lit> roots) const {
  return coneAnds(roots).size();
}

std::vector<VarId> Aig::supportVars(std::span<const Lit> roots) const {
  bumpEpoch();
  std::vector<VarId> vars;
  std::vector<NodeId> stack;
  for (Lit r : roots) stack.push_back(r.node());
  while (!stack.empty()) {
    const NodeId n = stack.back();
    stack.pop_back();
    if (visited(n)) continue;
    markVisited(n);
    if (isPi(n)) {
      vars.push_back(piVar(n));
    } else if (isAnd(n)) {
      stack.push_back(fanin0(n).node());
      stack.push_back(fanin1(n).node());
    }
  }
  std::sort(vars.begin(), vars.end());
  return vars;
}

std::vector<VarId> Aig::supportVars(Lit root) const {
  const Lit roots[] = {root};
  return supportVars(roots);
}

std::vector<VarId> Aig::supportVars(std::span<const Lit> roots,
                                    TraversalScratch& scratch) const {
  scratch.stamp.resize(nodes_.size(), 0);
  if (++scratch.epoch == 0) {
    std::fill(scratch.stamp.begin(), scratch.stamp.end(), 0u);
    scratch.epoch = 1;
  }
  std::vector<VarId> vars;
  std::vector<NodeId> stack;
  for (Lit r : roots) stack.push_back(r.node());
  while (!stack.empty()) {
    const NodeId n = stack.back();
    stack.pop_back();
    if (scratch.stamp[n] == scratch.epoch) continue;
    scratch.stamp[n] = scratch.epoch;
    if (isPi(n)) {
      vars.push_back(piVar(n));
    } else if (isAnd(n)) {
      stack.push_back(fanin0(n).node());
      stack.push_back(fanin1(n).node());
    }
  }
  std::sort(vars.begin(), vars.end());
  return vars;
}

bool Aig::dependsOn(Lit root, VarId var) const {
  bumpEpoch();
  std::vector<NodeId> stack{root.node()};
  while (!stack.empty()) {
    const NodeId n = stack.back();
    stack.pop_back();
    if (visited(n)) continue;
    markVisited(n);
    if (isPi(n)) {
      if (piVar(n) == var) return true;
    } else if (isAnd(n)) {
      stack.push_back(fanin0(n).node());
      stack.push_back(fanin1(n).node());
    }
  }
  return false;
}

template <typename LeafFn>
std::vector<Lit> Aig::rebuild(std::span<const Lit> roots, LeafFn&& leaf,
                              const NodeMap* nodeMap) {
  // All memo keys are node ids that exist on entry; mkAnd growing nodes_
  // during the walk never needs a memo slot for the new nodes.
  memo_.reset(nodes_.size());

  enum class Action : std::uint8_t { Visit, Combine, Alias };
  struct Frame {
    NodeId node;
    Action action;
    Lit aliasLit;  // for Alias: the literal this node was mapped to
  };
  std::vector<Frame> stack;

  auto resultOf = [&](Lit l) { return memo_.at(l.node()) ^ l.negated(); };

  for (Lit root : roots) stack.push_back({root.node(), Action::Visit, kFalse});
  while (!stack.empty()) {
    Frame fr = stack.back();
    stack.pop_back();
    const NodeId n = fr.node;
    switch (fr.action) {
      case Action::Visit: {
        if (memo_.contains(n)) break;
        if (nodeMap != nullptr && nodeMap->contains(n)) {
          // Replacement chains are chased through the map; callers must
          // supply acyclic maps (merge maps always point "backwards").
          const Lit alias = nodeMap->at(n);
          stack.push_back({n, Action::Alias, alias});
          stack.push_back({alias.node(), Action::Visit, kFalse});
          break;
        }
        if (isConst(n)) {
          memo_.put(n, kFalse);
        } else if (isPi(n)) {
          memo_.put(n, leaf(piVar(n)));
        } else {
          // Copy fanins now: mkAnd during Combine may grow nodes_.
          const Lit f0 = fanin0(n);
          const Lit f1 = fanin1(n);
          stack.push_back({n, Action::Combine, kFalse});
          stack.push_back({f0.node(), Action::Visit, kFalse});
          stack.push_back({f1.node(), Action::Visit, kFalse});
        }
        break;
      }
      case Action::Combine: {
        const Lit f0 = fanin0(n);
        const Lit f1 = fanin1(n);
        memo_.put(n, mkAnd(resultOf(f0), resultOf(f1)));
        break;
      }
      case Action::Alias: {
        memo_.put(n, resultOf(fr.aliasLit));
        break;
      }
    }
  }

  std::vector<Lit> out;
  out.reserve(roots.size());
  for (Lit root : roots) out.push_back(resultOf(root));
  return out;
}

Lit Aig::cofactor(Lit f, VarId var, bool value) {
  const Lit roots[] = {f};
  auto res = rebuild(
      roots,
      [&](VarId v) { return v == var ? (value ? kTrue : kFalse) : pi(v); },
      nullptr);
  return res.front();
}

Lit Aig::compose(Lit f, std::span<const VarSub> map) {
  substScratch_.clear();
  for (const auto& [v, l] : map) substScratch_.set(v, l);
  const Lit roots[] = {f};
  auto res = rebuild(
      roots,
      [&](VarId v) {
        return substScratch_.contains(v) ? substScratch_.at(v) : pi(v);
      },
      nullptr);
  return res.front();
}

std::vector<Lit> Aig::rebuildWithNodeMap(std::span<const Lit> roots,
                                         const NodeMap& nodeMap) {
  return rebuild(roots, [&](VarId v) { return pi(v); }, &nodeMap);
}

std::vector<std::uint64_t> Aig::simulate(
    std::span<const Lit> roots,
    const util::VarTable<std::uint64_t>& piWords) const {
  const auto order = coneAnds(roots);
  simVal_.assign(nodes_.size(), 0);
  // PI values: only PIs inside the cones matter, but filling all registered
  // PIs is simpler and still linear.
  for (const NodeId p : pis_) simVal_[p] = piWords.get(piVar(p), 0);
  for (const NodeId n : order) {
    const Lit f0 = fanin0(n);
    const Lit f1 = fanin1(n);
    simVal_[n] = (simVal_[f0.node()] ^ negMask(f0.negated())) &
                 (simVal_[f1.node()] ^ negMask(f1.negated()));
  }
  std::vector<std::uint64_t> out;
  out.reserve(roots.size());
  for (Lit r : roots)
    out.push_back(simVal_[r.node()] ^ negMask(r.negated()));
  return out;
}

bool Aig::evaluate(Lit root,
                   const std::unordered_map<VarId, bool>& assignment) const {
  util::VarTable<std::uint64_t> words;
  for (const auto& [v, b] : assignment) words.set(v, negMask(b));
  const Lit roots[] = {root};
  return (simulate(roots, words).front() & 1u) != 0;
}

bool Aig::evaluate(Lit root, const std::vector<bool>& assignment) const {
  util::VarTable<std::uint64_t> words;
  // Unmapped PIs simulate as zero, so only true variables need slots.
  for (std::size_t v = 0; v < assignment.size(); ++v)
    if (assignment[v]) words.set(static_cast<VarId>(v), negMask(true));
  const Lit roots[] = {root};
  return (simulate(roots, words).front() & 1u) != 0;
}

std::vector<Lit> Aig::transferFrom(const Aig& src,
                                   std::span<const Lit> roots) {
  return transferFromImpl(src, roots, nullptr);
}

std::vector<Lit> Aig::transferFrom(
    const Aig& src, std::span<const Lit> roots,
    std::vector<std::pair<NodeId, Lit>>& outMap) {
  outMap.clear();
  return transferFromImpl(src, roots, &outMap);
}

std::vector<Lit> Aig::transferFromImpl(
    const Aig& src, std::span<const Lit> roots,
    std::vector<std::pair<NodeId, Lit>>* outMap) {
  if (&src == this) return {roots.begin(), roots.end()};
  memo_.reset(src.nodes_.size());  // keyed by src node ids

  struct Frame {
    NodeId node;
    bool expand;
  };
  std::vector<Frame> stack;
  auto resultOf = [&](Lit l) { return memo_.at(l.node()) ^ l.negated(); };

  for (Lit root : roots) stack.push_back({root.node(), false});
  while (!stack.empty()) {
    auto [n, expand] = stack.back();
    stack.pop_back();
    if (expand) {
      const Lit l = mkAnd(resultOf(src.fanin0(n)), resultOf(src.fanin1(n)));
      memo_.put(n, l);
      if (outMap != nullptr) outMap->emplace_back(n, l);
      continue;
    }
    if (memo_.contains(n)) continue;
    if (src.isConst(n)) {
      memo_.put(n, kFalse);
      if (outMap != nullptr) outMap->emplace_back(n, kFalse);
    } else if (src.isPi(n)) {
      const Lit l = pi(src.piVar(n));
      memo_.put(n, l);
      if (outMap != nullptr) outMap->emplace_back(n, l);
    } else {
      stack.push_back({n, true});
      stack.push_back({src.fanin0(n).node(), false});
      stack.push_back({src.fanin1(n).node(), false});
    }
  }

  std::vector<Lit> out;
  out.reserve(roots.size());
  for (Lit root : roots) out.push_back(resultOf(root));
  return out;
}

}  // namespace cbq::aig

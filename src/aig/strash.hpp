#pragma once
// Open-addressed structural-hash table for AND nodes.
//
// Keys are the ordered fanin pair packed into 64 bits; values are node
// ids. Node 0 is the constant and never names an AND node, so id 0
// doubles as the empty-slot sentinel — one flat array, no buckets, no
// per-node allocation. Capacity is a power of two and doubles when the
// load factor crosses 70%.

#include <cstdint>
#include <vector>

#include "aig/lit.hpp"

namespace cbq::audit {
struct Access;
}

namespace cbq::aig {

class StrashTable {
 public:
  /// One open-addressed slot; public so the invariant auditor can walk
  /// (and its tests corrupt) the table through audit::Access.
  struct Entry {
    std::uint64_t key;
    NodeId id;  // 0 = empty slot
  };

  explicit StrashTable(std::size_t initialCapacity = 1024) {
    std::size_t cap = 16;
    while (cap < initialCapacity) cap <<= 1;
    slots_.assign(cap, Entry{0, 0});
    mask_ = cap - 1;
  }

  /// Packs an ordered fanin pair into the hash key.
  static std::uint64_t keyOf(Lit f0, Lit f1) {
    return (static_cast<std::uint64_t>(f0.raw()) << 32) | f1.raw();
  }

  /// Node id registered for the fanin pair, or 0 when absent.
  [[nodiscard]] NodeId find(Lit f0, Lit f1) const {
    const std::uint64_t k = keyOf(f0, f1);
    std::size_t i = mix(k) & mask_;
    while (slots_[i].id != 0) {
      if (slots_[i].key == k) return slots_[i].id;
      i = (i + 1) & mask_;
    }
    return 0;
  }

  /// Registers `id` for the pair. Precondition: the pair is absent and
  /// id != 0.
  void insert(Lit f0, Lit f1, NodeId id) {
    if ((size_ + 1) * 10 >= slots_.size() * 7) grow();
    place(keyOf(f0, f1), id);
    ++size_;
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] std::size_t capacity() const { return slots_.size(); }

 private:
  friend struct ::cbq::audit::Access;

  /// splitmix64 finalizer: full-avalanche mix of the packed pair.
  static std::uint64_t mix(std::uint64_t x) {
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ull;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebull;
    x ^= x >> 31;
    return x;
  }

  void place(std::uint64_t key, NodeId id) {
    std::size_t i = mix(key) & mask_;
    while (slots_[i].id != 0) i = (i + 1) & mask_;
    slots_[i] = Entry{key, id};
  }

  void grow() {
    std::vector<Entry> old = std::move(slots_);
    slots_.assign(old.size() * 2, Entry{0, 0});
    mask_ = slots_.size() - 1;
    for (const Entry& e : old) {
      if (e.id != 0) place(e.key, e.id);
    }
  }

  std::vector<Entry> slots_;
  std::size_t size_ = 0;
  std::size_t mask_ = 0;
};

}  // namespace cbq::aig

#pragma once
// And-Inverter Graph (AIG) manager.
//
// This is the non-canonical state-set representation at the heart of the
// paper (Kuehlmann et al., "Circuit-based Boolean Reasoning"). Nodes are
// two-input ANDs with complemented edges; the manager provides
//  * structural hashing ("semi-canonicity" in the paper's terms),
//  * one- and two-level simplification rules applied at construction,
//  * cofactoring and composition (quantification by substitution),
//  * cone traversal, structural support, and cross-manager transfer,
//  * 64-way parallel bit-level simulation.
//
// Primary inputs carry a persistent `varId` chosen by the caller, so the
// same variable keeps its identity across managers; this is what makes
// moving state-set cones between managers (for compaction) and composing
// next-state functions into state sets straightforward.
//
// Every hot path is arena-style dense: the structural hash is a flat
// open-addressed table (strash.hpp), cone rebuilds reuse one
// epoch-stamped memo owned by the manager (scratch.hpp), and per-variable
// lookups go through flat VarId-indexed slot tables (util/var_table.hpp).

#include <cstdint>
#include <initializer_list>
#include <span>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "aig/lit.hpp"
#include "aig/scratch.hpp"
#include "aig/strash.hpp"
#include "util/var_table.hpp"

namespace cbq::audit {
struct Access;
}

namespace cbq::aig {

/// Identifier of an external variable (primary input), stable across
/// managers. Model checking assigns state variables and circuit inputs
/// distinct varIds.
using VarId = std::uint32_t;

/// One (variable := literal) substitution entry for compose().
using VarSub = std::pair<VarId, Lit>;

/// One AIG node. AND nodes store two fanin literals; primary inputs store
/// their varId; node 0 is the constant-FALSE node.
struct Node {
  Lit fanin0;          ///< AND: left fanin. PI/const: unused sentinel.
  Lit fanin1;          ///< AND: right fanin. PI: packed varId.
  std::uint32_t level; ///< Longest path from a leaf (const/PI are level 0).
};

class Aig {
 public:
  Aig();

  Aig(const Aig&) = delete;
  Aig& operator=(const Aig&) = delete;
  Aig(Aig&&) = default;
  Aig& operator=(Aig&&) = default;

  // ----- construction ------------------------------------------------

  /// Returns the literal of the primary input with external id `var`,
  /// creating the PI node on first use.
  Lit pi(VarId var);

  /// True when a PI node for `var` already exists.
  [[nodiscard]] bool hasPi(VarId var) const {
    return var < piByVar_.size() && piByVar_[var] != 0;
  }

  /// Node id of the PI for `var`. Precondition: hasPi(var).
  [[nodiscard]] NodeId piNodeOf(VarId var) const { return piByVar_[var]; }

  /// AND with structural hashing and simplification rules.
  Lit mkAnd(Lit a, Lit b);

  Lit mkOr(Lit a, Lit b) { return !mkAnd(!a, !b); }
  Lit mkXor(Lit a, Lit b);
  Lit mkXnor(Lit a, Lit b) { return !mkXor(a, b); }
  Lit mkImplies(Lit a, Lit b) { return mkOr(!a, b); }
  /// if-then-else: s ? t : e.
  Lit mkMux(Lit s, Lit t, Lit e);

  /// Conjunction / disjunction over a span (balanced reduction).
  Lit mkAndAll(std::span<const Lit> lits);
  Lit mkOrAll(std::span<const Lit> lits);

  /// Enables/disables the two-level rewrite rules applied inside mkAnd
  /// (contradiction, absorption and substitution through one AND level).
  void setTwoLevelRules(bool enabled) { twoLevel_ = enabled; }
  [[nodiscard]] bool twoLevelRules() const { return twoLevel_; }

  // ----- node inspection ---------------------------------------------

  /// Process-unique identity of this manager's node space. Nodes are
  /// append-only within one identity, so anything indexed by NodeId (CNF
  /// encodings, proven-equivalence caches, simulation slots) stays valid
  /// while uid() is unchanged. Moving a manager moves its identity: after
  /// `a = std::move(b)`, a.uid() is b's old uid and every cache keyed to
  /// a's previous uid must be dropped. This is what sweep::SweepContext
  /// validates its persistent session against.
  [[nodiscard]] std::uint64_t uid() const { return uid_; }

  [[nodiscard]] std::size_t numNodes() const { return nodes_.size(); }
  [[nodiscard]] std::size_t numPis() const { return pis_.size(); }
  [[nodiscard]] std::size_t numAnds() const {
    return nodes_.size() - 1 - pis_.size();
  }

  [[nodiscard]] bool isConst(NodeId n) const { return n == 0; }
  [[nodiscard]] bool isPi(NodeId n) const {
    return n != 0 && nodes_[n].fanin0 == kPiMark;
  }
  [[nodiscard]] bool isAnd(NodeId n) const {
    return n != 0 && nodes_[n].fanin0 != kPiMark;
  }

  /// The external variable id of a PI node. Precondition: isPi(n).
  [[nodiscard]] VarId piVar(NodeId n) const {
    return nodes_[n].fanin1.raw();
  }

  /// Fanins of an AND node. Precondition: isAnd(n).
  [[nodiscard]] Lit fanin0(NodeId n) const { return nodes_[n].fanin0; }
  [[nodiscard]] Lit fanin1(NodeId n) const { return nodes_[n].fanin1; }

  [[nodiscard]] std::uint32_t level(NodeId n) const {
    return nodes_[n].level;
  }

  /// All PI node ids in creation order.
  [[nodiscard]] const std::vector<NodeId>& pis() const { return pis_; }

  /// Current capacity of the structural-hash table (dense-layer metric;
  /// grows by doubling past the initial 1024 slots).
  [[nodiscard]] std::size_t strashCapacity() const {
    return strash_.capacity();
  }

  // ----- traversal ----------------------------------------------------

  /// Caller-owned visited marks for the concurrent-read-safe traversal
  /// overloads below. The default traversals use the manager's shared
  /// epoch scratch, which makes them NOT safe to call concurrently even
  /// though they are const; parallel code (prep's per-latch cone walks,
  /// sharded sweeping) keeps one TraversalScratch per worker lane
  /// instead. Reusable across calls — the epoch stamp makes clears O(1).
  struct TraversalScratch {
    std::vector<std::uint32_t> stamp;
    std::uint32_t epoch = 0;
  };

  /// AND nodes in the transitive fanin of `roots`, in topological order
  /// (fanins before fanouts). PIs and the constant are not included.
  [[nodiscard]] std::vector<NodeId> coneAnds(std::span<const Lit> roots) const;

  /// As coneAnds, but using caller-owned scratch: safe to run from many
  /// threads at once on one (otherwise unmutated) manager, one scratch
  /// per thread.
  [[nodiscard]] std::vector<NodeId> coneAnds(std::span<const Lit> roots,
                                             TraversalScratch& scratch) const;

  /// Number of AND nodes in the cone of `root` — the paper's circuit-size
  /// metric for state sets.
  [[nodiscard]] std::size_t coneSize(Lit root) const;
  [[nodiscard]] std::size_t coneSize(std::span<const Lit> roots) const;

  /// External variable ids of the PIs in the structural support of
  /// `roots`, sorted ascending.
  [[nodiscard]] std::vector<VarId> supportVars(
      std::span<const Lit> roots) const;
  [[nodiscard]] std::vector<VarId> supportVars(Lit root) const;

  /// Concurrent-read-safe variant with caller-owned scratch (see
  /// TraversalScratch).
  [[nodiscard]] std::vector<VarId> supportVars(
      std::span<const Lit> roots, TraversalScratch& scratch) const;

  /// True when variable `var` appears in the structural support of `root`.
  [[nodiscard]] bool dependsOn(Lit root, VarId var) const;

  // ----- functional operations ----------------------------------------

  /// Positive/negative cofactor: substitutes constant `value` for `var`
  /// and rebuilds (re-hashed, re-simplified) in this manager.
  Lit cofactor(Lit f, VarId var, bool value);

  /// Simultaneous substitution of literals for variables (quantification
  /// by substitution / "in-lining" from §3 of the paper). Variables not in
  /// `map` are left untouched; a variable listed twice takes its last
  /// entry.
  Lit compose(Lit f, std::span<const VarSub> map);
  Lit compose(Lit f, std::initializer_list<VarSub> map) {
    return compose(f, std::span<const VarSub>(map.begin(), map.size()));
  }

  /// Rebuilds the cones of `roots` replacing whole internal nodes:
  /// whenever a node id appears in `nodeMap`, the mapped literal is used
  /// instead of the node (complement composed through). This is how the
  /// sweeping and don't-care engines commit merges.
  std::vector<Lit> rebuildWithNodeMap(std::span<const Lit> roots,
                                      const NodeMap& nodeMap);

  // ----- simulation -----------------------------------------------------

  /// 64-way parallel simulation of the cones of `roots`. `piWords` maps a
  /// varId to its 64 input patterns; unmapped PIs simulate as all-zero.
  /// Returns one 64-bit word per root.
  [[nodiscard]] std::vector<std::uint64_t> simulate(
      std::span<const Lit> roots,
      const util::VarTable<std::uint64_t>& piWords) const;

  /// Single-pattern evaluation under a complete assignment.
  [[nodiscard]] bool evaluate(
      Lit root, const std::unordered_map<VarId, bool>& assignment) const;

  /// Dense variant: `assignment[v]` is the value of VarId v; variables at
  /// or beyond the vector's size evaluate as false. The engines' per-
  /// iteration init checks and trace replay use this to avoid rebuilding
  /// a hash map per evaluation.
  [[nodiscard]] bool evaluate(Lit root,
                              const std::vector<bool>& assignment) const;

  // ----- transfer -------------------------------------------------------

  /// Copies the cones of `roots` from `src` into this manager. PIs are
  /// matched by varId; the result is structurally hashed afresh, so this
  /// doubles as compaction into a clean manager.
  std::vector<Lit> transferFrom(const Aig& src, std::span<const Lit> roots);

  /// As above, and additionally records (src NodeId → literal here) for
  /// every node of the transferred cones in `outMap`. This is how caches
  /// keyed by the source manager's node ids (e.g. the sweep session's
  /// proven/refuted pairs) survive a compaction: facts about transferred
  /// nodes are rewritten through the map, facts about dropped scratch
  /// nodes are discarded.
  std::vector<Lit> transferFrom(const Aig& src, std::span<const Lit> roots,
                                std::vector<std::pair<NodeId, Lit>>& outMap);

 private:
  /// Introspection seam for the deep-invariant auditor and its
  /// corruption-injection tests (audit/audit.hpp) — never production code.
  friend struct ::cbq::audit::Access;

  static constexpr Lit kPiMark = Lit::fromRaw(0xffffffffu);

  NodeId newNode(Lit f0, Lit f1, std::uint32_t level);
  Lit mkAndRaw(Lit a, Lit b);  // hashing + one-level rules only
  bool tryTwoLevel(Lit a, Lit b, Lit& out);

  std::vector<Lit> transferFromImpl(
      const Aig& src, std::span<const Lit> roots,
      std::vector<std::pair<NodeId, Lit>>* outMap);

  /// Generic iterative cone rebuild. `leaf(var)` supplies the literal that
  /// replaces the PI with external id `var`; `nodeMap` (optional) replaces
  /// whole nodes before their fanins are visited. The memo lives in
  /// memo_ — rebuilds must not nest.
  template <typename LeafFn>
  std::vector<Lit> rebuild(std::span<const Lit> roots, LeafFn&& leaf,
                           const NodeMap* nodeMap);

  // Epoch-stamped visited marks (avoid O(n) clears per traversal).
  void bumpEpoch() const;
  [[nodiscard]] bool visited(NodeId n) const { return stamp_[n] == epoch_; }
  void markVisited(NodeId n) const { stamp_[n] = epoch_; }

  std::uint64_t uid_ = 0;
  std::vector<Node> nodes_;
  std::vector<NodeId> pis_;
  std::vector<NodeId> piByVar_;  ///< VarId → PI node id; 0 = no PI yet
  StrashTable strash_;
  bool twoLevel_ = true;

  ScratchMemo memo_;                    ///< shared cone-rebuild memo
  util::VarTable<Lit> substScratch_;    ///< compose(): VarId → replacement
  mutable std::vector<std::uint64_t> simVal_;  ///< simulate() value arena

  mutable std::vector<std::uint32_t> stamp_;
  mutable std::uint32_t epoch_ = 0;
};

}  // namespace cbq::aig

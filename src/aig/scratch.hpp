#pragma once
// Arena-style scratch structures for AIG cone walks.
//
// Every cone rebuild (cofactor, compose, node-map rebuild, cross-manager
// transfer) needs a NodeId→Lit memo, and the sweeping/don't-care engines
// need NodeId→Lit replacement maps. Both used to be per-call
// `std::unordered_map`s; these flat, node-indexed replacements make the
// memo lookup a single array access and let the manager reuse one
// allocation across the thousands of walks a reachability run performs.

#include <cassert>
#include <cstdint>
#include <vector>

#include "aig/lit.hpp"

namespace cbq::audit {
struct Access;
}

namespace cbq::aig {

/// Epoch-stamped NodeId→Lit memo owned by the manager and reused across
/// rebuilds. `reset(n)` starts a fresh memo over node ids [0, n) in O(1)
/// amortized (the stamp array only grows; clearing is an epoch bump).
class ScratchMemo {
 public:
  /// Begins a new memo generation covering node ids below `numNodes`.
  void reset(std::size_t numNodes) {
    if (numNodes > stamp_.size()) {
      stamp_.resize(numNodes, 0);
      val_.resize(numNodes);
    }
    if (++epoch_ == 0) {
      // 32-bit wrap: scrub stamps so entries from epoch 0 generations
      // cannot alias the recycled value.
      std::fill(stamp_.begin(), stamp_.end(), 0u);
      epoch_ = 1;
    }
  }

  [[nodiscard]] bool contains(NodeId n) const {
    return n < stamp_.size() && stamp_[n] == epoch_;
  }

  /// Precondition: contains(n).
  [[nodiscard]] Lit at(NodeId n) const {
    assert(contains(n));
    return val_[n];
  }

  /// Precondition: n was covered by the latest reset().
  void put(NodeId n, Lit l) {
    assert(n < stamp_.size());
    stamp_[n] = epoch_;
    val_[n] = l;
  }

  [[nodiscard]] std::uint32_t epoch() const { return epoch_; }

  /// Test hook: positions the epoch counter just below the wrap so the
  /// scrubbing path in reset() can be exercised directly.
  void forceEpochForTest(std::uint32_t e) { epoch_ = e; }

 private:
  friend struct ::cbq::audit::Access;
  std::vector<std::uint32_t> stamp_;
  std::vector<Lit> val_;
  std::uint32_t epoch_ = 0;  // first reset() moves to 1
};

/// Dense NodeId→Lit replacement map: the merge maps of the sweeping
/// engine and the care/ODC maps of the don't-care simplifier. Grows on
/// demand; membership is a flag test, no hashing.
class NodeMap {
 public:
  NodeMap() = default;

  void set(NodeId n, Lit l) {
    if (n >= present_.size()) {
      present_.resize(n + 1, 0);
      val_.resize(n + 1);
    }
    count_ += present_[n] == 0;
    present_[n] = 1;
    val_[n] = l;
  }

  [[nodiscard]] bool contains(NodeId n) const {
    return n < present_.size() && present_[n] != 0;
  }

  /// Precondition: contains(n).
  [[nodiscard]] Lit at(NodeId n) const {
    assert(contains(n));
    return val_[n];
  }

  [[nodiscard]] std::size_t size() const { return count_; }
  [[nodiscard]] bool empty() const { return count_ == 0; }

  void clear() {
    std::fill(present_.begin(), present_.end(), std::uint8_t{0});
    count_ = 0;
  }

 private:
  std::vector<std::uint8_t> present_;
  std::vector<Lit> val_;
  std::size_t count_ = 0;
};

}  // namespace cbq::aig

#pragma once
// Literal type for And-Inverter Graphs.
//
// A literal is a node index plus a complement bit, packed AIGER-style into
// one 32-bit word: raw = (node << 1) | negated. Node 0 is the constant-FALSE
// node, so raw 0 is the FALSE literal and raw 1 is TRUE.

#include <cstdint>
#include <functional>

namespace cbq::aig {

/// Index of a node inside one Aig manager.
using NodeId = std::uint32_t;

/// A possibly-complemented reference to an AIG node.
class Lit {
 public:
  /// Default-constructed literal is constant FALSE.
  constexpr Lit() = default;

  constexpr Lit(NodeId node, bool negated)
      : raw_((node << 1) | static_cast<std::uint32_t>(negated)) {}

  /// Rebuilds a literal from its packed representation.
  static constexpr Lit fromRaw(std::uint32_t raw) {
    Lit l;
    l.raw_ = raw;
    return l;
  }

  [[nodiscard]] constexpr std::uint32_t raw() const { return raw_; }
  [[nodiscard]] constexpr NodeId node() const { return raw_ >> 1; }
  [[nodiscard]] constexpr bool negated() const { return (raw_ & 1) != 0; }

  /// Complemented literal.
  constexpr Lit operator!() const { return fromRaw(raw_ ^ 1); }

  /// Conditional complement: `l ^ true` flips, `l ^ false` is identity.
  constexpr Lit operator^(bool flip) const {
    return fromRaw(raw_ ^ static_cast<std::uint32_t>(flip));
  }

  /// The non-complemented literal on the same node.
  [[nodiscard]] constexpr Lit positive() const { return fromRaw(raw_ & ~1u); }

  constexpr bool operator==(const Lit&) const = default;
  constexpr auto operator<=>(const Lit&) const = default;

  [[nodiscard]] constexpr bool isConstant() const { return node() == 0; }
  [[nodiscard]] constexpr bool isFalse() const { return raw_ == 0; }
  [[nodiscard]] constexpr bool isTrue() const { return raw_ == 1; }

 private:
  std::uint32_t raw_ = 0;
};

/// Constant literals shared by every manager (node 0 is always the constant).
inline constexpr Lit kFalse = Lit::fromRaw(0);
inline constexpr Lit kTrue = Lit::fromRaw(1);

}  // namespace cbq::aig

template <>
struct std::hash<cbq::aig::Lit> {
  std::size_t operator()(const cbq::aig::Lit& l) const noexcept {
    return std::hash<std::uint32_t>{}(l.raw());
  }
};

#include "obs/progress.hpp"

#include <cmath>
#include <ostream>
#include <sstream>

namespace cbq::obs {

namespace {

void appendEscaped(std::ostream& out, const std::string& s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out << '\\' << c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out << buf;
    } else {
      out << c;
    }
  }
}

void field(std::ostream& out, const char* key, const std::string& value,
           bool& first) {
  if (value.empty()) return;
  out << (first ? "" : ", ") << '"' << key << "\": \"";
  appendEscaped(out, value);
  out << '"';
  first = false;
}

double finite(double v) { return std::isfinite(v) ? v : 0.0; }

}  // namespace

void ProgressStreamer::emit(const ProgressEvent& ev) {
  // Build the line outside the lock; write + flush inside.
  std::ostringstream line;
  bool first = true;
  field(line, "kind", ev.kind, first);
  field(line, "problem", ev.problem, first);
  field(line, "engine", ev.engine, first);
  field(line, "verdict", ev.verdict, first);
  field(line, "detail", ev.detail, first);
  if (ev.bound >= 0) {
    line << (first ? "" : ", ") << "\"bound\": " << ev.bound;
    first = false;
  }
  if (ev.effort > 0.0) {
    line << (first ? "" : ", ") << "\"effort\": " << finite(ev.effort);
    first = false;
  }
  if (ev.effortDelta > 0.0) {
    line << (first ? "" : ", ")
         << "\"effort_delta\": " << finite(ev.effortDelta);
    first = false;
  }
  line << (first ? "" : ", ") << "\"seconds\": " << finite(ev.seconds);
  first = false;
  if (ev.kind == "slice")
    line << ", \"advanced\": " << (ev.advanced ? "true" : "false");

  const util::MutexLock lock(mu_);
  *out_ << '{' << line.str() << "}\n" << std::flush;
}

}  // namespace cbq::obs

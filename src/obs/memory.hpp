#pragma once
// Process memory introspection for the mem gauges in check summaries and
// batch reports.

#include <cstdint>

namespace cbq::obs {

/// Peak resident set size of this process in bytes (high-water mark, not
/// current usage). Reads /proc/self/status VmHWM on Linux with a
/// getrusage fallback; returns 0 where neither exists.
[[nodiscard]] std::uint64_t peakRssBytes();

/// Current resident set size in bytes (/proc/self/statm on Linux). This
/// is what the portfolio Budget's soft RSS ceiling polls: unlike the
/// monotone peak, it can fall when an engine releases memory, so one
/// memory-hungry problem does not poison the ceiling for the rest of a
/// batch. Returns 0 where unavailable (the ceiling then never trips).
[[nodiscard]] std::uint64_t currentRssBytes();

}  // namespace cbq::obs

#pragma once
// Process memory introspection for the mem gauges in check summaries and
// batch reports.

#include <cstdint>

namespace cbq::obs {

/// Peak resident set size of this process in bytes (high-water mark, not
/// current usage). Reads /proc/self/status VmHWM on Linux with a
/// getrusage fallback; returns 0 where neither exists.
[[nodiscard]] std::uint64_t peakRssBytes();

}  // namespace cbq::obs

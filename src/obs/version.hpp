#pragma once
// Build identity for self-describing reports (batch JSON `run` header,
// BENCH_*.json).

namespace cbq::obs {

/// `git describe --always --dirty` captured at configure time, or
/// "unknown" when the build tree had no git metadata.
const char* gitDescribe();

}  // namespace cbq::obs

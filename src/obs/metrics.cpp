#include "obs/metrics.hpp"

#include <bit>
#include <cmath>

namespace cbq::obs {

namespace {

/// log2 bucket index for a duration in seconds: bit width of the
/// nanosecond count, clamped to the table.
std::size_t bucketIndex(double seconds) {
  if (!(seconds > 0.0)) return 0;
  const double ns = seconds * 1e9;
  if (ns >= 9.2e18) return Metrics::Histogram::kBuckets - 1;
  const auto n = static_cast<std::uint64_t>(ns);
  const std::size_t w = static_cast<std::size_t>(std::bit_width(n));
  return w < Metrics::Histogram::kBuckets ? w
                                          : Metrics::Histogram::kBuckets - 1;
}

/// JSON has no NaN/Inf; clamp to finite output.
double finite(double v) { return std::isfinite(v) ? v : 0.0; }

std::string jsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace

void Metrics::Histogram::record(double seconds) {
  ++buckets[bucketIndex(seconds)];
  ++count;
  sum += seconds;
  if (seconds > max) max = seconds;
}

void Metrics::Histogram::merge(const Histogram& other) {
  for (std::size_t i = 0; i < kBuckets; ++i) buckets[i] += other.buckets[i];
  count += other.count;
  sum += other.sum;
  if (other.max > max) max = other.max;
}

Metrics::Metrics(const Metrics& other) {
  // Locking our own (uncontended, under-construction) mutex keeps the
  // guarded-member writes visible to the static analysis.
  const util::MutexLock lockOther(other.mu_);
  const util::MutexLock lock(mu_);
  counters_ = other.counters_;
  gauges_ = other.gauges_;
  histograms_ = other.histograms_;
}

Metrics& Metrics::operator=(const Metrics& other) {
  if (this == &other) return *this;
  // Snapshot the source first so the two locks never nest (a->b and b->a
  // assignment races would deadlock with nested locking).
  std::map<std::string, std::int64_t> c;
  std::map<std::string, double> g;
  std::map<std::string, Histogram> h;
  {
    const util::MutexLock lock(other.mu_);
    c = other.counters_;
    g = other.gauges_;
    h = other.histograms_;
  }
  const util::MutexLock lock(mu_);
  counters_ = std::move(c);
  gauges_ = std::move(g);
  histograms_ = std::move(h);
  return *this;
}

void Metrics::add(const std::string& name, std::int64_t delta) {
  const util::MutexLock lock(mu_);
  counters_[name] += delta;
}

void Metrics::set(const std::string& name, double value) {
  const util::MutexLock lock(mu_);
  gauges_[name] = value;
}

void Metrics::high(const std::string& name, double value) {
  const util::MutexLock lock(mu_);
  auto [it, inserted] = gauges_.emplace(name, value);
  if (!inserted && value > it->second) it->second = value;
}

void Metrics::observe(const std::string& name, double seconds) {
  const util::MutexLock lock(mu_);
  histograms_[name].record(seconds);
}

std::int64_t Metrics::count(const std::string& name) const {
  const util::MutexLock lock(mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

double Metrics::gauge(const std::string& name) const {
  const util::MutexLock lock(mu_);
  auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second;
}

Metrics::Histogram Metrics::histogram(const std::string& name) const {
  const util::MutexLock lock(mu_);
  auto it = histograms_.find(name);
  return it == histograms_.end() ? Histogram{} : it->second;
}

void Metrics::merge(const Metrics& other) {
  if (this == &other) return;
  std::map<std::string, std::int64_t> c;
  std::map<std::string, double> g;
  std::map<std::string, Histogram> h;
  {
    const util::MutexLock lock(other.mu_);
    c = other.counters_;
    g = other.gauges_;
    h = other.histograms_;
  }
  const util::MutexLock lock(mu_);
  for (const auto& [k, v] : c) counters_[k] += v;
  for (const auto& [k, v] : g) {
    auto [it, inserted] = gauges_.emplace(k, v);
    if (!inserted && v > it->second) it->second = v;
  }
  for (const auto& [k, v] : h) histograms_[k].merge(v);
}

void Metrics::clear() {
  const util::MutexLock lock(mu_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

std::map<std::string, std::int64_t> Metrics::counters() const {
  const util::MutexLock lock(mu_);
  return counters_;
}

std::map<std::string, double> Metrics::gauges() const {
  const util::MutexLock lock(mu_);
  return gauges_;
}

std::map<std::string, Metrics::Histogram> Metrics::histograms() const {
  const util::MutexLock lock(mu_);
  return histograms_;
}

void Metrics::writeJson(std::ostream& out) const {
  const auto counters = this->counters();
  const auto gauges = this->gauges();
  const auto histograms = this->histograms();
  out << "{\"counters\": {";
  bool first = true;
  for (const auto& [k, v] : counters) {
    out << (first ? "" : ", ") << '"' << jsonEscape(k) << "\": " << v;
    first = false;
  }
  out << "}, \"gauges\": {";
  first = true;
  for (const auto& [k, v] : gauges) {
    out << (first ? "" : ", ") << '"' << jsonEscape(k)
        << "\": " << finite(v);
    first = false;
  }
  out << "}, \"histograms\": {";
  first = true;
  for (const auto& [k, v] : histograms) {
    out << (first ? "" : ", ") << '"' << jsonEscape(k)
        << "\": {\"count\": " << v.count
        << ", \"sum_seconds\": " << finite(v.sum)
        << ", \"max_seconds\": " << finite(v.max) << ", \"buckets\": [";
    bool firstB = true;
    for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
      if (v.buckets[i] == 0) continue;
      // Upper bound of bucket i in nanoseconds: 2^i.
      const double upperNs = std::ldexp(1.0, static_cast<int>(i));
      out << (firstB ? "" : ", ") << '[' << upperNs << ", " << v.buckets[i]
          << ']';
      firstB = false;
    }
    out << "]}";
    first = false;
  }
  out << "}}";
}

std::ostream& operator<<(std::ostream& os, const Metrics& m) {
  for (const auto& [k, v] : m.counters()) os << k << " = " << v << '\n';
  for (const auto& [k, v] : m.gauges()) os << k << " = " << v << '\n';
  for (const auto& [k, v] : m.histograms())
    os << k << " = " << v.count << " samples, " << v.sum << "s total, "
       << v.max << "s max\n";
  return os;
}

Metrics& globalMetrics() {
  // cbq-lint: allow(naked-new) intentionally leaked singleton so late
  // detached threads can still record during process exit
  static Metrics* g = new Metrics();
  return *g;
}

}  // namespace cbq::obs

#include "obs/tracer.hpp"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "util/sync.hpp"

namespace cbq::obs {

namespace detail {
std::atomic<bool> g_traceEnabled{false};
}  // namespace detail

namespace {

struct SpanEvent {
  const char* category;  // string literal, stored by pointer
  std::int64_t startNs;
  std::int64_t endNs;
  char name[48];
};

/// One thread's span storage. Owned jointly by the thread (thread_local
/// shared_ptr) and the global registry, so events survive thread exit and
/// can still be flushed. `mu` serialises the owning thread's appends
/// against flush/clear from other threads; appends are uncontended in the
/// steady state.
struct ThreadBuffer {
  util::Mutex mu;
  std::vector<SpanEvent> ring CBQ_GUARDED_BY(mu);
  std::size_t capacity CBQ_GUARDED_BY(mu) = 0;
  std::size_t next CBQ_GUARDED_BY(mu) = 0;     // ring write cursor
  std::size_t dropped CBQ_GUARDED_BY(mu) = 0;  // overwritten by wrap
  bool wrapped CBQ_GUARDED_BY(mu) = false;
  std::string label CBQ_GUARDED_BY(mu);  // thread_name, "" = unnamed
  std::uint32_t tid = 0;  // written once before publication, then const
};

struct Registry {
  util::Mutex mu;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers CBQ_GUARDED_BY(mu);
  std::size_t capacity CBQ_GUARDED_BY(mu) = 1 << 16;
  std::uint32_t nextTid CBQ_GUARDED_BY(mu) = 1;
};

Registry& registry() {
  // cbq-lint: allow(naked-new) intentionally leaked singleton so spans
  // recorded by late-exiting threads never touch a destroyed registry
  static Registry* g = new Registry();
  return *g;
}

const std::chrono::steady_clock::time_point g_anchor =
    std::chrono::steady_clock::now();

ThreadBuffer& localBuffer() {
  thread_local std::shared_ptr<ThreadBuffer> buf = [] {
    auto b = std::make_shared<ThreadBuffer>();
    Registry& reg = registry();
    const util::MutexLock lock(reg.mu);
    const util::MutexLock bufLock(b->mu);  // uncontended: not yet shared
    b->capacity = reg.capacity;
    b->tid = reg.nextTid++;
    reg.buffers.push_back(b);
    return b;
  }();
  return *buf;
}

void appendEvent(ThreadBuffer& buf, const SpanEvent& ev) {
  const util::MutexLock lock(buf.mu);
  if (buf.capacity == 0) return;
  if (buf.ring.size() < buf.capacity) {
    buf.ring.push_back(ev);
    buf.next = buf.ring.size() % buf.capacity;
    buf.wrapped = buf.ring.size() == buf.capacity && buf.next == 0;
    return;
  }
  buf.ring[buf.next] = ev;
  buf.next = (buf.next + 1) % buf.capacity;
  buf.wrapped = true;
  ++buf.dropped;
}

std::string jsonEscape(const char* s) {
  std::string out;
  for (const char* p = s; *p; ++p) {
    const char c = *p;
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char hex[8];
      std::snprintf(hex, sizeof(hex), "\\u%04x", c);
      out += hex;
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace

namespace detail {

std::int64_t traceNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - g_anchor)
      .count();
}

void recordSpan(const char* category, const char* name, std::int64_t startNs,
                std::int64_t endNs) {
  SpanEvent ev;
  ev.category = category;
  ev.startNs = startNs;
  ev.endNs = endNs;
  const std::size_t n = std::char_traits<char>::length(name);
  const std::size_t m = n < sizeof(ev.name) - 1 ? n : sizeof(ev.name) - 1;
  std::memcpy(ev.name, name, m);
  ev.name[m] = '\0';
  appendEvent(localBuffer(), ev);
}

}  // namespace detail

void enableTracing(std::size_t perThreadCapacity) {
  Registry& reg = registry();
  {
    const util::MutexLock lock(reg.mu);
    reg.capacity = perThreadCapacity == 0 ? 1 : perThreadCapacity;
    for (auto& buf : reg.buffers) {
      const util::MutexLock bufLock(buf->mu);
      buf->ring.clear();
      buf->ring.shrink_to_fit();
      buf->capacity = reg.capacity;
      buf->next = 0;
      buf->dropped = 0;
      buf->wrapped = false;
    }
  }
  detail::g_traceEnabled.store(true, std::memory_order_relaxed);
}

void disableTracing() {
  detail::g_traceEnabled.store(false, std::memory_order_relaxed);
}

void clearTrace() {
  Registry& reg = registry();
  const util::MutexLock lock(reg.mu);
  for (auto& buf : reg.buffers) {
    const util::MutexLock bufLock(buf->mu);
    buf->ring.clear();
    buf->next = 0;
    buf->dropped = 0;
    buf->wrapped = false;
  }
}

void setThreadLabel(std::string_view label) {
  ThreadBuffer& buf = localBuffer();
  const util::MutexLock lock(buf.mu);
  buf.label.assign(label.data(), label.size());
}

void writeChromeTrace(std::ostream& out) {
  // Snapshot every buffer under its lock, then serialise lock-free.
  struct Snapshot {
    std::uint32_t tid;
    std::string label;
    std::vector<SpanEvent> events;  // in emission order
  };
  std::vector<Snapshot> snaps;
  std::size_t totalDropped = 0;
  {
    Registry& reg = registry();
    const util::MutexLock lock(reg.mu);
    snaps.reserve(reg.buffers.size());
    for (auto& buf : reg.buffers) {
      const util::MutexLock bufLock(buf->mu);
      Snapshot s;
      s.tid = buf->tid;
      s.label = buf->label;
      if (buf->wrapped && buf->ring.size() == buf->capacity) {
        // Oldest event sits at the write cursor once the ring wrapped.
        s.events.insert(s.events.end(), buf->ring.begin() + buf->next,
                        buf->ring.end());
        s.events.insert(s.events.end(), buf->ring.begin(),
                        buf->ring.begin() + buf->next);
      } else {
        s.events = buf->ring;
      }
      totalDropped += buf->dropped;
      snaps.push_back(std::move(s));
    }
  }
  globalMetrics().add("obs.trace.flushed_events", [&] {
    std::int64_t n = 0;
    for (const auto& s : snaps) n += static_cast<std::int64_t>(s.events.size());
    return n;
  }());
  if (totalDropped > 0)
    globalMetrics().add("obs.trace.dropped_events",
                        static_cast<std::int64_t>(totalDropped));

  out << "{\"traceEvents\": [\n";
  bool first = true;
  for (const auto& s : snaps) {
    if (!s.label.empty()) {
      out << (first ? "" : ",\n")
          << "{\"ph\": \"M\", \"pid\": 1, \"tid\": " << s.tid
          << ", \"name\": \"thread_name\", \"args\": {\"name\": \""
          << jsonEscape(s.label.c_str()) << "\"}}";
      first = false;
    }
    for (const auto& ev : s.events) {
      // Chrome trace timestamps/durations are microseconds (doubles keep
      // sub-microsecond spans from collapsing to zero width).
      const double tsUs = static_cast<double>(ev.startNs) / 1000.0;
      const double durUs = static_cast<double>(ev.endNs - ev.startNs) / 1000.0;
      out << (first ? "" : ",\n")
          << "{\"ph\": \"X\", \"pid\": 1, \"tid\": " << s.tid
          << ", \"ts\": " << tsUs << ", \"dur\": " << durUs << ", \"cat\": \""
          << jsonEscape(ev.category) << "\", \"name\": \""
          << jsonEscape(ev.name) << "\"}";
      first = false;
    }
  }
  out << "\n], \"displayTimeUnit\": \"ms\"}\n";
}

TraceStats traceStats() {
  TraceStats stats;
  Registry& reg = registry();
  const util::MutexLock lock(reg.mu);
  stats.threads = reg.buffers.size();
  for (auto& buf : reg.buffers) {
    const util::MutexLock bufLock(buf->mu);
    stats.events += buf->ring.size();
    stats.dropped += buf->dropped;
  }
  return stats;
}

}  // namespace cbq::obs

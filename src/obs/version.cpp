#include "obs/version.hpp"

// CBQ_GIT_DESCRIBE is injected by CMake onto this one translation unit so
// a new commit only rebuilds this file, not the whole library.
#ifndef CBQ_GIT_DESCRIBE
#define CBQ_GIT_DESCRIBE "unknown"
#endif

namespace cbq::obs {

const char* gitDescribe() { return CBQ_GIT_DESCRIBE; }

}  // namespace cbq::obs

#pragma once
// Live progress streaming — NDJSON events on a stream (stderr under
// `--progress`) so long batch/serve-style runs show per-problem
// bound/frame/effort in real time instead of only post-mortem.
//
// Producers (portfolio runner, slice scheduler, race workers) fill a
// ProgressEvent at natural boundaries — prep done, slice finished, engine
// resolved — and hand it to a ProgressFn. The CLI installs a
// ProgressStreamer; tests install a capturing lambda.
//
// Event kinds and fields are documented in README "Observability"
// (NDJSON progress schema). Fields are stable: add, don't rename.

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>

#include "util/sync.hpp"

namespace cbq::obs {

/// One progress datum. `kind` says which fields are meaningful:
///   "prep"    — problem, seconds, detail (pass summary)
///   "slice"   — problem, engine, bound, effort, effortDelta, seconds
///               (slice wall time), advanced
///   "engine"  — a racing engine finished: problem, engine, verdict,
///               seconds, bound
///   "result"  — final verdict for a problem: problem, verdict, engine,
///               seconds, bound
/// Verdicts are strings ("SAFE", "UNSAFE", "UNKNOWN") to keep obs free of
/// engine-layer types.
struct ProgressEvent {
  std::string kind;
  std::string problem;
  std::string engine;
  std::string verdict;
  std::string detail;
  std::int64_t bound = -1;        ///< reached bound/frame, -1 = n/a
  double effort = 0.0;            ///< cumulative SAT effort score
  double effortDelta = 0.0;       ///< effort spent in this slice
  double seconds = 0.0;           ///< wall seconds for this event's scope
  bool advanced = false;          ///< did the slice make bound progress
};

using ProgressFn = std::function<void(const ProgressEvent&)>;

/// Serialises events as one JSON object per line. Thread-safe: racing
/// engines and slice workers share one streamer. Lines are flushed
/// immediately so `cbq batch --progress 2> >(jq .)` streams live.
class ProgressStreamer {
 public:
  explicit ProgressStreamer(std::ostream& out) : out_(&out) {}

  void emit(const ProgressEvent& ev);

  /// Adapter for PortfolioOptions::onProgress.
  ProgressFn fn() {
    return [this](const ProgressEvent& ev) { emit(ev); };
  }

 private:
  util::Mutex mu_;
  std::ostream* const out_ CBQ_PT_GUARDED_BY(mu_);
};

}  // namespace cbq::obs

#include "obs/memory.hpp"

#include <cstdio>
#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace cbq::obs {

std::uint64_t peakRssBytes() {
#if defined(__linux__)
  // VmHWM is the resident high-water mark in kB.
  if (std::FILE* f = std::fopen("/proc/self/status", "r")) {
    char line[256];
    while (std::fgets(line, sizeof(line), f)) {
      if (std::strncmp(line, "VmHWM:", 6) == 0) {
        unsigned long long kb = 0;
        if (std::sscanf(line + 6, "%llu", &kb) == 1) {
          std::fclose(f);
          return static_cast<std::uint64_t>(kb) * 1024;
        }
        break;
      }
    }
    std::fclose(f);
  }
#endif
#if defined(__unix__) || defined(__APPLE__)
  struct rusage ru;
  if (getrusage(RUSAGE_SELF, &ru) == 0) {
#if defined(__APPLE__)
    return static_cast<std::uint64_t>(ru.ru_maxrss);  // bytes on macOS
#else
    return static_cast<std::uint64_t>(ru.ru_maxrss) * 1024;  // kB elsewhere
#endif
  }
#endif
  return 0;
}

}  // namespace cbq::obs

#include "obs/memory.hpp"

#include <cstdio>
#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#include <unistd.h>
#endif

namespace cbq::obs {

std::uint64_t peakRssBytes() {
#if defined(__linux__)
  // VmHWM is the resident high-water mark in kB.
  if (std::FILE* f = std::fopen("/proc/self/status", "r")) {
    char line[256];
    while (std::fgets(line, sizeof(line), f)) {
      if (std::strncmp(line, "VmHWM:", 6) == 0) {
        unsigned long long kb = 0;
        if (std::sscanf(line + 6, "%llu", &kb) == 1) {
          std::fclose(f);
          return static_cast<std::uint64_t>(kb) * 1024;
        }
        break;
      }
    }
    std::fclose(f);
  }
#endif
#if defined(__unix__) || defined(__APPLE__)
  struct rusage ru;
  if (getrusage(RUSAGE_SELF, &ru) == 0) {
#if defined(__APPLE__)
    return static_cast<std::uint64_t>(ru.ru_maxrss);  // bytes on macOS
#else
    return static_cast<std::uint64_t>(ru.ru_maxrss) * 1024;  // kB elsewhere
#endif
  }
#endif
  return 0;
}

std::uint64_t currentRssBytes() {
#if defined(__linux__)
  // /proc/self/statm field 2 is resident pages — one short read, cheap
  // enough for a rate-limited budget poll.
  if (std::FILE* f = std::fopen("/proc/self/statm", "r")) {
    unsigned long long sizePages = 0;
    unsigned long long residentPages = 0;
    const int got = std::fscanf(f, "%llu %llu", &sizePages, &residentPages);
    std::fclose(f);
    if (got == 2) {
      static const long pageSize = sysconf(_SC_PAGESIZE);
      return static_cast<std::uint64_t>(residentPages) *
             static_cast<std::uint64_t>(pageSize > 0 ? pageSize : 4096);
    }
  }
#endif
  // No portable "current RSS" fallback: peak is the wrong answer for a
  // ceiling that should reset between problems, so report unavailable.
  return 0;
}

}  // namespace cbq::obs

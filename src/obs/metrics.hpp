#pragma once
// Central metrics registry — the one place engine/sweeper/prep/scheduler
// activity counters live.
//
// Replaces the former util::Stats bag: same counter/gauge surface
// (add/set/high/count/gauge/merge) so a registry rides inside every
// CheckResult exactly as before, plus
//   * latency histograms with fixed log2(nanosecond) buckets, so "how long
//     do fixpoint SAT checks take" is answerable without a profiler, and
//   * thread safety — pool lanes, racing engines and the slice scheduler
//     may all touch a registry concurrently.
// The JSON/CSV report writers and the `cbq bench` harness read counters
// exclusively from these registries; there is no side channel.
//
// Naming convention: dotted lowercase paths, subsystem first —
// sat.conflicts, sweep.cache_lookups, prep.coi.seconds, reach.compactions,
// sched.promotions, pool.lane_busy_ns, mem.aig_peak_nodes. The README's
// observability section keeps the catalogue.

#include <array>
#include <cstdint>
#include <map>
#include <ostream>
#include <string>

#include "util/sync.hpp"

namespace cbq::obs {

/// A thread-safe bag of named 64-bit counters, named double gauges and
/// named log2-bucket latency histograms. Copyable (snapshots the source
/// under its lock), so it can ride inside result records.
class Metrics {
 public:
  /// Histogram over log2(nanoseconds): bucket i counts observations with
  /// 2^(i-1) <= ns < 2^i (bucket 0: ns <= 1). 64 buckets cover every
  /// representable duration.
  struct Histogram {
    static constexpr std::size_t kBuckets = 64;
    std::array<std::uint64_t, kBuckets> buckets{};
    std::uint64_t count = 0;
    double sum = 0.0;  ///< seconds
    double max = 0.0;  ///< seconds

    void record(double seconds);
    void merge(const Histogram& other);
  };

  Metrics() = default;
  Metrics(const Metrics& other);
  Metrics& operator=(const Metrics& other);

  /// Adds `delta` to counter `name` (creating it at zero).
  void add(const std::string& name, std::int64_t delta = 1);

  /// Sets gauge `name` to `value` (last write wins).
  void set(const std::string& name, double value);

  /// Keeps the maximum ever seen for gauge `name`.
  void high(const std::string& name, double value);

  /// Records one latency sample (in seconds) into histogram `name`.
  void observe(const std::string& name, double seconds);

  /// Counter value; zero when never touched.
  [[nodiscard]] std::int64_t count(const std::string& name) const;

  /// Gauge value; zero when never touched.
  [[nodiscard]] double gauge(const std::string& name) const;

  /// Histogram snapshot; empty (count 0) when never touched.
  [[nodiscard]] Histogram histogram(const std::string& name) const;

  /// Merges another registry into this one: counters add, gauges max,
  /// histograms bucket-wise add.
  void merge(const Metrics& other);

  void clear();

  /// Snapshots (copies — the registry may be written concurrently).
  [[nodiscard]] std::map<std::string, std::int64_t> counters() const;
  [[nodiscard]] std::map<std::string, double> gauges() const;
  [[nodiscard]] std::map<std::string, Histogram> histograms() const;

  /// Full registry dump as one JSON object: {"counters": {...},
  /// "gauges": {...}, "histograms": {name: {"count": n, "sum_seconds": s,
  /// "max_seconds": m, "buckets": [[ns_upper_bound, count], ...]}}}.
  /// Histogram buckets with zero count are omitted.
  void writeJson(std::ostream& out) const;

  friend std::ostream& operator<<(std::ostream& os, const Metrics& m);

 private:
  mutable util::Mutex mu_;
  std::map<std::string, std::int64_t> counters_ CBQ_GUARDED_BY(mu_);
  std::map<std::string, double> gauges_ CBQ_GUARDED_BY(mu_);
  std::map<std::string, Histogram> histograms_ CBQ_GUARDED_BY(mu_);
};

/// The process-wide registry for cross-cutting infrastructure that has no
/// per-problem result record to write into: thread-pool lane occupancy,
/// tracer drops, service-level totals. Per-run metrics belong in the
/// CheckResult's registry, not here.
Metrics& globalMetrics();

}  // namespace cbq::obs

#pragma once
// Span tracer — per-thread ring buffers of timed spans, flushed on demand
// to Chrome trace-event JSON (chrome://tracing / Perfetto).
//
// Design constraints, in priority order:
//
//  1. Near-zero overhead when disabled. CBQ_OBS_SPAN compiles to one
//     relaxed atomic load; no allocation, no clock read, no branch taken.
//     A build with -DCBQ_OBS=OFF compiles the macro away entirely (the
//     CI overhead gate compares the two).
//  2. No locks on the hot path shared between threads. Each thread owns a
//     ring buffer; recording a span locks only that buffer's private
//     mutex (uncontended except during a concurrent flush). When the ring
//     is full the oldest events are overwritten and a drop counter ticks —
//     tracing never blocks or aborts the traced run.
//  3. Static-lifetime categories, copied names. The category must be a
//     string literal (it is stored by pointer); the span name is copied
//     into a fixed-size field, so dynamic names (engine names, file
//     names) are safe but truncated past 47 bytes.
//
// Span timestamps come from steady_clock (wall-clock jumps must not
// corrupt a trace), anchored at process start so Chrome's timeline starts
// near zero.
//
// Categories in use: prep, engine, sat, sweep, quant, bdd, pool, sched —
// one Perfetto track per thread (worker lane), colored by category. See
// README "Observability".

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <iosfwd>
#include <string_view>

namespace cbq::obs {

namespace detail {
extern std::atomic<bool> g_traceEnabled;

/// Nanoseconds since the process trace anchor (steady clock).
std::int64_t traceNowNs();

/// Appends one finished span to the calling thread's ring buffer.
void recordSpan(const char* category, const char* name,
                std::int64_t startNs, std::int64_t endNs);
}  // namespace detail

/// True while spans are being captured.
[[nodiscard]] inline bool tracingEnabled() {
  return detail::g_traceEnabled.load(std::memory_order_relaxed);
}

/// Starts capturing spans. `perThreadCapacity` bounds each thread's ring
/// buffer (events beyond it overwrite the oldest). Buffers from a
/// previous capture are cleared.
void enableTracing(std::size_t perThreadCapacity = 1 << 16);

/// Stops capturing. Already-recorded events stay available for
/// writeChromeTrace until the next enableTracing()/clearTrace().
void disableTracing();

/// Drops every recorded event (buffers stay registered).
void clearTrace();

/// Labels the calling thread's track in the trace viewer ("pool lane 3",
/// "slice worker 0", ...). Cheap; callable whether or not tracing is
/// enabled (the label sticks for the thread's lifetime).
void setThreadLabel(std::string_view label);

/// Writes every buffered span as Chrome trace-event JSON ("X" complete
/// events, one pid, one tid per thread, thread_name metadata). Loadable
/// in chrome://tracing and Perfetto. Thread-safe; typically called after
/// disableTracing().
void writeChromeTrace(std::ostream& out);

struct TraceStats {
  std::size_t events = 0;   ///< spans currently buffered
  std::size_t dropped = 0;  ///< spans overwritten by ring wrap
  std::size_t threads = 0;  ///< thread buffers registered
};
[[nodiscard]] TraceStats traceStats();

/// RAII span: records [construction, destruction) on the calling thread.
/// Construct through CBQ_OBS_SPAN so -DCBQ_OBS=OFF builds erase the site.
class Span {
 public:
  Span(const char* category, std::string_view name) {
    if (tracingEnabled()) [[unlikely]]
      begin(category, name);
  }
  ~Span() {
    if (active_) end();
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  void begin(const char* category, std::string_view name) {
    cat_ = category;
    const std::size_t n =
        name.size() < sizeof(name_) - 1 ? name.size() : sizeof(name_) - 1;
    std::memcpy(name_, name.data(), n);
    name_[n] = '\0';
    start_ = detail::traceNowNs();
    active_ = true;
  }
  void end() {
    detail::recordSpan(cat_, name_, start_, detail::traceNowNs());
  }

  const char* cat_ = nullptr;
  std::int64_t start_ = 0;
  bool active_ = false;
  char name_[48];
};

}  // namespace cbq::obs

#define CBQ_OBS_CONCAT2(a, b) a##b
#define CBQ_OBS_CONCAT(a, b) CBQ_OBS_CONCAT2(a, b)

#if defined(CBQ_NO_OBS)
// Observability compiled out (the CI overhead-gate baseline build).
#define CBQ_OBS_SPAN(category, name) ((void)0)
#else
/// Opens a RAII span for the rest of the enclosing scope:
///   CBQ_OBS_SPAN("sweep", "refine-round");
/// `category` must be a string literal; `name` may be dynamic (copied).
#define CBQ_OBS_SPAN(category, name) \
  ::cbq::obs::Span CBQ_OBS_CONCAT(cbqObsSpan_, __LINE__)(category, name)
#endif

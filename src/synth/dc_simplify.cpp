#include "synth/dc_simplify.hpp"

#include <algorithm>
#include <optional>
#include <unordered_map>
#include <vector>

#include "cnf/aig_cnf.hpp"
#include "sat/solver.hpp"
#include "sweep/signatures.hpp"
#include "sweep/sweep_context.hpp"
#include "util/random.hpp"

namespace cbq::synth {

namespace {

using aig::Lit;
using aig::NodeId;
using aig::VarId;

std::uint64_t negMask(bool b) { return b ? ~std::uint64_t{0} : 0; }

using sweep::mix64;

/// Simulation of the joint cone of fRef and fTgt with per-word care masks
/// (care = ¬fRef: inputs where the reference cofactor is 0). Built on the
/// flat signature arena: appends simulate only the new column, and
/// care-masked class keys are 64-bit hashes with exact masked comparison
/// as the collision referee (no per-node string keys).
class CareSim {
 public:
  CareSim(const aig::Aig& aig, Lit fRef, Lit fTgt, util::Random& rng,
          int words, int maxWords)
      : aig_(&aig), fRef_(fRef), fTgt_(fTgt) {
    const Lit both[] = {fRef, fTgt};
    order_ = aig.coneAnds(both);
    support_ = aig.supportVars(both);
    sigs_.emplace(aig, order_, support_, rng, words, maxWords);
    recomputeCare(0);
  }

  /// `cexBits` is parallel to support(): bit j of entry i is the j-th
  /// stored counterexample value of support()[i]. Only the new column is
  /// simulated.
  void appendWord(std::span<const std::uint64_t> cexBits, int cexCount,
                  util::Random& rng) {
    const std::size_t before = sigs_->words();
    sigs_->appendWord(cexBits, cexCount, rng);
    if (sigs_->words() > before) recomputeCare(before);
  }

  /// 64-bit mixed hash of the literal's care-masked value.
  [[nodiscard]] std::uint64_t careHash(Lit l) const {
    const auto s = sigs_->of(l.node());
    const std::uint64_t flip = negMask(l.negated());
    std::uint64_t h = 0x9d39247e33776d41ull;
    for (std::size_t w = 0; w < s.size(); ++w)
      h = mix64(h ^ mix64(((s[w] ^ flip) & care_[w]) + w));
    return h;
  }

  /// Exact care-masked equality of two literal values.
  [[nodiscard]] bool careEqual(Lit a, Lit b) const {
    const auto sa = sigs_->of(a.node());
    const auto sb = sigs_->of(b.node());
    const std::uint64_t flip = negMask(a.negated() != b.negated());
    for (std::size_t w = 0; w < sa.size(); ++w)
      if (((sa[w] ^ (sb[w] ^ flip)) & care_[w]) != 0) return false;
    return true;
  }

  /// True when the literal is constant `value` on every care-set pattern.
  [[nodiscard]] bool careConstant(Lit l, bool value) const {
    // litValue ^ valueMask == s ^ negMask(negated != value); any set care
    // bit there is a pattern where the literal differs from `value`.
    const auto s = sigs_->of(l.node());
    const std::uint64_t flip = negMask(l.negated() != value);
    for (std::size_t w = 0; w < s.size(); ++w)
      if (((s[w] ^ flip) & care_[w]) != 0) return false;
    return true;
  }

  [[nodiscard]] const std::vector<NodeId>& order() const { return order_; }
  [[nodiscard]] const std::vector<VarId>& support() const { return support_; }

  /// AND nodes of fTgt's cone only, topological.
  [[nodiscard]] std::vector<NodeId> targetOrder() const {
    const Lit roots[] = {fTgt_};
    return aig_->coneAnds(roots);
  }

 private:
  void recomputeCare(std::size_t from) {
    // care = ¬fRef, per column; columns never change once simulated, so
    // only the freshly appended ones need computing.
    care_.resize(sigs_->words());
    const auto rs = sigs_->of(fRef_.node());
    for (std::size_t w = from; w < care_.size(); ++w)
      care_[w] = ~(rs[w] ^ negMask(fRef_.negated()));
  }

  const aig::Aig* aig_;
  Lit fRef_, fTgt_;
  std::vector<NodeId> order_;
  std::vector<VarId> support_;
  std::optional<sweep::Signatures> sigs_;
  std::vector<std::uint64_t> care_;
};

}  // namespace

DcResult dcSimplify(aig::Aig& aig, Lit fRef, Lit fTgt, const DcOptions& opts) {
  DcResult out;
  out.target = fTgt;
  {
    const Lit roots[] = {fTgt};
    out.stats.nodesBefore = aig.coneSize(roots);
  }
  if (fTgt.isConstant() || fRef.isTrue()) {
    // fRef ≡ 1 makes everything don't-care: fRef ∨ fTgt ≡ 1 regardless,
    // so the cheapest valid target is constant false.
    if (fRef.isTrue()) out.target = aig::kFalse;
    out.stats.nodesAfter = aig.coneSize(out.target);
    return out;
  }

  util::Random rng(opts.seed);
  CareSim sim(aig, fRef, fTgt, rng, std::max(opts.numWords, 1),
              std::max(opts.numWords, 1) + std::max(opts.maxRounds, 0));

  // Share the run's persistent clause database when a session is provided
  // (every query below is assumption-only); otherwise a private one.
  sweep::SweepContext localCtx;
  sweep::SweepContext* ctx =
      opts.context != nullptr ? opts.context : &localCtx;
  if (opts.context == nullptr) localCtx.setBackend(opts.satBackend);
  ctx->bind(aig);
  ctx->recycleIfBloated(sim.order().size() + sim.support().size());
  const Lit notRef = !fRef;
  {
    // Phase A never grows the manager, so the joint cone covers every
    // input-DC query; phase B re-focuses per attempt (its miters may
    // strash onto nodes outside this cone).
    const Lit focusRoots[] = {fRef, fTgt};
    ctx->focusOn(focusRoots);
  }

  // ----- phase A: input-DC replacements (cex-refined rounds) -------------
  // Phase A only encodes into the solver (the manager does not grow), so
  // node-indexed scratch vectors sized now stay valid for every round.
  aig::NodeMap careMap;
  std::vector<std::uint8_t> disqualified(aig.numNodes(), 0);

  bool interrupted = false;
  for (int round = 0; !interrupted && round < opts.maxRounds; ++round) {
    const auto targetOrder = sim.targetOrder();
    // Care-masked representative chains: hash -> positive literals whose
    // masked values share that hash (exact masked compare disambiguates).
    std::unordered_map<std::uint64_t, std::vector<Lit>> repByHash;
    auto addRep = [&](Lit l) { repByHash[sim.careHash(l)].push_back(l); };
    auto findRep = [&](Lit l) -> std::optional<Lit> {
      if (auto it = repByHash.find(sim.careHash(l)); it != repByHash.end())
        for (const Lit c : it->second)
          if (sim.careEqual(l, c)) return c;
      return std::nullopt;
    };
    // PIs of the joint support act as merge representatives too.
    for (const VarId v : sim.support())
      addRep(Lit(aig.piNodeOf(v), false));

    std::vector<std::uint64_t> cexBits(sim.support().size(), 0);
    int cexCount = 0;

    for (const NodeId n : targetOrder) {
      if (opts.interrupt && opts.interrupt()) {
        interrupted = true;  // keep the replacements proven so far
        break;
      }
      if (cexCount >= 64) break;
      if (careMap.contains(n) || disqualified[n] != 0) continue;
      const Lit ln(n, false);

      // Proposed candidate: constant, or an earlier node with identical
      // care-masked signature (checking both phases).
      Lit candidate = ln;
      bool haveCandidate = false;
      if (sim.careConstant(ln, false)) {
        candidate = aig::kFalse;
        haveCandidate = true;
      } else if (sim.careConstant(ln, true)) {
        candidate = aig::kTrue;
        haveCandidate = true;
      } else if (auto rep = findRep(ln)) {
        candidate = *rep;
        haveCandidate = true;
      } else if (auto repN = findRep(!ln)) {
        candidate = !*repN;
        haveCandidate = true;
      }
      if (!haveCandidate) {
        addRep(ln);
        continue;
      }

      ++out.stats.satChecks;
      const cnf::Verdict verdict =
          ctx->checkEquivUnderCare(notRef, ln, candidate, opts.satBudget);
      switch (verdict) {
        case cnf::Verdict::Holds: {
          careMap.set(n, candidate);
          if (candidate.isConstant())
            ++out.stats.constReplacements;
          else
            ++out.stats.mergeReplacements;
          break;
        }
        case cnf::Verdict::Fails: {
          ++out.stats.satRefuted;
          for (std::size_t i = 0; i < sim.support().size(); ++i) {
            const std::uint64_t bit =
                ctx->modelOf(sim.support()[i]) ? 1 : 0;
            cexBits[i] |= bit << cexCount;
          }
          ++cexCount;
          // Keep the node available as a representative for later nodes.
          addRep(ln);
          break;
        }
        case cnf::Verdict::Unknown: {
          ++out.stats.satUnknown;
          disqualified[n] = 1;
          break;
        }
      }
    }

    if (cexCount == 0) break;
    sim.appendWord(cexBits, cexCount, rng);
  }

  {
    const Lit roots[] = {fTgt};
    out.target = aig.rebuildWithNodeMap(roots, careMap).front();
  }

  // ----- phase B: ODC attempts, each verified end-to-end ------------------
  // Feedback-gated: each validation is a global equivalence proof over
  // fRef ∨ fTgt, which on some workloads never accepts — the session's
  // accept-rate tracker turns the phase off there (with re-probes).
  const bool attemptOdc =
      opts.useOdc && !interrupted &&
      (opts.context == nullptr || ctx->shouldAttemptOdc());
  if (attemptOdc) {
    int attempts = 0;
    bool changed = true;
    while (changed && attempts < opts.odcAttempts &&
           !(opts.interrupt && opts.interrupt())) {
      changed = false;
      Lit current = out.target;
      const Lit curRoots[] = {current};
      const auto order = aig.coneAnds(curRoots);
      const std::size_t curSize = order.size();
      for (const NodeId n : order) {
        if (attempts >= opts.odcAttempts) break;
        for (const bool value : {false, true}) {
          if (attempts >= opts.odcAttempts) break;
          ++attempts;
          aig::NodeMap tentativeMap;
          tentativeMap.set(n, value ? aig::kTrue : aig::kFalse);
          const Lit tentative =
              aig.rebuildWithNodeMap(curRoots, tentativeMap).front();
          const Lit tentRoots[] = {tentative};
          if (aig.coneSize(tentRoots) >= curSize) continue;
          // The paper's extra equivalence check: is the EXOR between the
          // node before/after observable at fRef ∨ fTgt?
          const Lit before = aig.mkOr(fRef, current);
          const Lit after = aig.mkOr(fRef, tentative);
          {
            const Lit focusRoots[] = {before, after};
            ctx->focusOn(focusRoots);
          }
          ++out.stats.satChecks;
          if (ctx->checkEquiv(before, after, opts.satBudget) ==
              cnf::Verdict::Holds) {
            out.target = tentative;
            ++out.stats.odcReplacements;
            changed = true;
            break;
          }
        }
        if (changed) break;  // restart scan on the new, smaller cone
      }
    }
    if (opts.context != nullptr)
      ctx->noteOdcOutcome(static_cast<std::size_t>(attempts),
                          out.stats.odcReplacements);
  }

  {
    const Lit roots[] = {out.target};
    out.stats.nodesAfter = aig.coneSize(roots);
  }
  return out;
}

std::vector<aig::Lit> rewrite(aig::Aig& aig,
                              std::span<const aig::Lit> roots) {
  // Rebuilding with an empty node map re-drives every cone node through
  // mkAnd, re-applying the one/two-level rules and current strash table.
  return aig.rebuildWithNodeMap(roots, aig::NodeMap{});
}

}  // namespace cbq::synth

#include "synth/dc_simplify.hpp"

#include <algorithm>
#include <string>
#include <unordered_map>

#include "cnf/aig_cnf.hpp"
#include "sat/solver.hpp"
#include "util/random.hpp"

namespace cbq::synth {

namespace {

using aig::Lit;
using aig::NodeId;
using aig::VarId;

std::uint64_t negMask(bool b) { return b ? ~std::uint64_t{0} : 0; }

/// Simulation of the joint cone of fRef and fTgt with per-word care masks
/// (care = ¬fRef: inputs where the reference cofactor is 0).
class CareSim {
 public:
  CareSim(const aig::Aig& aig, Lit fRef, Lit fTgt, util::Random& rng,
          int words)
      : aig_(&aig), fRef_(fRef), fTgt_(fTgt) {
    const Lit both[] = {fRef, fTgt};
    order_ = aig.coneAnds(both);
    support_ = aig.supportVars(both);
    piWords_.resize(support_.size());
    for (auto& w : piWords_) {
      w.resize(static_cast<std::size_t>(words));
      for (auto& x : w) x = rng.next64();
    }
    resimulate();
  }

  /// `cexBits` is parallel to support(): bit j of entry i is the j-th
  /// stored counterexample value of support()[i].
  void appendWord(std::span<const std::uint64_t> cexBits, int cexCount,
                  util::Random& rng) {
    const std::uint64_t keepMask =
        cexCount >= 64 ? ~std::uint64_t{0}
                       : ((std::uint64_t{1} << cexCount) - 1);
    for (std::size_t i = 0; i < piWords_.size(); ++i) {
      std::uint64_t word = rng.next64() & ~keepMask;
      word |= cexBits[i] & keepMask;
      piWords_[i].push_back(word);
    }
    resimulate();
  }

  /// Value of a node literal, masked to the care set, as an exact key.
  [[nodiscard]] std::string careKey(Lit l) const {
    const auto& s = sig_[l.node()];
    std::string key;
    key.reserve(care_.size() * sizeof(std::uint64_t));
    for (std::size_t w = 0; w < care_.size(); ++w) {
      const std::uint64_t masked =
          (s[w] ^ negMask(l.negated())) & care_[w];
      key.append(reinterpret_cast<const char*>(&masked), sizeof(masked));
    }
    return key;
  }

  /// True when the literal is constant `value` on every care-set pattern.
  [[nodiscard]] bool careConstant(Lit l, bool value) const {
    const auto& s = sig_[l.node()];
    for (std::size_t w = 0; w < care_.size(); ++w) {
      const std::uint64_t litVal = s[w] ^ negMask(l.negated());
      // Mismatch bits: care patterns where the literal differs from value.
      if (((litVal ^ negMask(value)) & care_[w]) != 0) return false;
    }
    return true;
  }

  /// Any care-set pattern at all in the current words?
  [[nodiscard]] bool hasCareBits() const {
    for (const std::uint64_t w : care_)
      if (w != 0) return true;
    return false;
  }

  [[nodiscard]] const std::vector<NodeId>& order() const { return order_; }
  [[nodiscard]] const std::vector<VarId>& support() const { return support_; }

  /// AND nodes of fTgt's cone only, topological.
  [[nodiscard]] std::vector<NodeId> targetOrder() const {
    const Lit roots[] = {fTgt_};
    return aig_->coneAnds(roots);
  }

 private:
  void resimulate() {
    const std::size_t words =
        piWords_.empty() ? 1 : piWords_.front().size();
    sig_.assign(aig_->numNodes(), {});
    sig_[0].assign(words, 0);
    for (std::size_t i = 0; i < support_.size(); ++i)
      sig_[aig_->piNodeOf(support_[i])] = piWords_[i];
    for (const NodeId n : order_) {
      const Lit f0 = aig_->fanin0(n);
      const Lit f1 = aig_->fanin1(n);
      auto& outw = sig_[n];
      outw.resize(words);
      const auto& a = sig_[f0.node()];
      const auto& b = sig_[f1.node()];
      for (std::size_t w = 0; w < words; ++w) {
        outw[w] = (a[w] ^ negMask(f0.negated())) &
                  (b[w] ^ negMask(f1.negated()));
      }
    }
    // care = ¬fRef.
    care_.resize(words);
    const auto& rs = sig_[fRef_.node()];
    for (std::size_t w = 0; w < words; ++w)
      care_[w] = ~(rs[w] ^ negMask(fRef_.negated()));
  }

  const aig::Aig* aig_;
  Lit fRef_, fTgt_;
  std::vector<NodeId> order_;
  std::vector<VarId> support_;
  std::vector<std::vector<std::uint64_t>> piWords_;  // parallel to support_
  std::vector<std::vector<std::uint64_t>> sig_;
  std::vector<std::uint64_t> care_;
};

/// UNSAT(¬fRef ∧ a ≠ b)? Two assumption-only queries per check.
cnf::Verdict checkEquivUnderCare(cnf::AigCnf& cnf, Lit notRef, Lit a, Lit b,
                                 std::int64_t budget) {
  if (a == b) return cnf::Verdict::Holds;
  const sat::Lit lc = cnf.litFor(notRef);
  const sat::Lit la = cnf.litFor(a);
  const sat::Lit lb = cnf.litFor(b);
  {
    const sat::Lit assumptions[] = {lc, la, !lb};
    switch (cnf.solver().solveLimited(assumptions, budget)) {
      case sat::Status::Sat:
        return cnf::Verdict::Fails;
      case sat::Status::Undef:
        return cnf::Verdict::Unknown;
      case sat::Status::Unsat:
        break;
    }
  }
  {
    const sat::Lit assumptions[] = {lc, !la, lb};
    switch (cnf.solver().solveLimited(assumptions, budget)) {
      case sat::Status::Sat:
        return cnf::Verdict::Fails;
      case sat::Status::Undef:
        return cnf::Verdict::Unknown;
      case sat::Status::Unsat:
        return cnf::Verdict::Holds;
    }
  }
  return cnf::Verdict::Unknown;
}

}  // namespace

DcResult dcSimplify(aig::Aig& aig, Lit fRef, Lit fTgt, const DcOptions& opts) {
  DcResult out;
  out.target = fTgt;
  {
    const Lit roots[] = {fTgt};
    out.stats.nodesBefore = aig.coneSize(roots);
  }
  if (fTgt.isConstant() || fRef.isTrue()) {
    // fRef ≡ 1 makes everything don't-care: fRef ∨ fTgt ≡ 1 regardless,
    // so the cheapest valid target is constant false.
    if (fRef.isTrue()) out.target = aig::kFalse;
    out.stats.nodesAfter = aig.coneSize(out.target);
    return out;
  }

  util::Random rng(opts.seed);
  CareSim sim(aig, fRef, fTgt, rng, std::max(opts.numWords, 1));

  sat::Solver solver;
  cnf::AigCnf cnf(aig, solver);
  const Lit notRef = !fRef;

  // ----- phase A: input-DC replacements (cex-refined rounds) -------------
  // Phase A only encodes into the solver (the manager does not grow), so
  // node-indexed scratch vectors sized now stay valid for every round.
  aig::NodeMap careMap;
  std::vector<std::uint8_t> disqualified(aig.numNodes(), 0);

  bool interrupted = false;
  for (int round = 0; !interrupted && round < opts.maxRounds; ++round) {
    const auto targetOrder = sim.targetOrder();
    std::unordered_map<std::string, Lit> repByKey;
    // PIs of the joint support act as merge representatives too.
    for (const VarId v : sim.support())
      repByKey.emplace(sim.careKey(Lit(aig.piNodeOf(v), false)),
                       Lit(aig.piNodeOf(v), false));

    std::vector<std::uint64_t> cexBits(sim.support().size(), 0);
    int cexCount = 0;

    for (const NodeId n : targetOrder) {
      if (opts.interrupt && opts.interrupt()) {
        interrupted = true;  // keep the replacements proven so far
        break;
      }
      if (cexCount >= 64) break;
      if (careMap.contains(n) || disqualified[n] != 0) continue;
      const Lit ln(n, false);

      // Proposed candidate: constant, or an earlier node with identical
      // care-masked signature (checking both phases).
      Lit candidate = ln;
      bool haveCandidate = false;
      if (sim.careConstant(ln, false)) {
        candidate = aig::kFalse;
        haveCandidate = true;
      } else if (sim.careConstant(ln, true)) {
        candidate = aig::kTrue;
        haveCandidate = true;
      } else {
        if (auto it = repByKey.find(sim.careKey(ln)); it != repByKey.end()) {
          candidate = it->second;
          haveCandidate = true;
        } else if (auto it2 = repByKey.find(sim.careKey(!ln));
                   it2 != repByKey.end()) {
          candidate = !it2->second;
          haveCandidate = true;
        }
      }
      if (!haveCandidate) {
        repByKey.emplace(sim.careKey(ln), ln);
        continue;
      }

      ++out.stats.satChecks;
      const cnf::Verdict verdict =
          checkEquivUnderCare(cnf, notRef, ln, candidate, opts.satBudget);
      switch (verdict) {
        case cnf::Verdict::Holds: {
          careMap.set(n, candidate);
          if (candidate.isConstant())
            ++out.stats.constReplacements;
          else
            ++out.stats.mergeReplacements;
          break;
        }
        case cnf::Verdict::Fails: {
          ++out.stats.satRefuted;
          for (std::size_t i = 0; i < sim.support().size(); ++i) {
            const std::uint64_t bit = cnf.modelOf(sim.support()[i]) ? 1 : 0;
            cexBits[i] |= bit << cexCount;
          }
          ++cexCount;
          // Keep the node available as a representative for later nodes.
          repByKey.emplace(sim.careKey(ln), ln);
          break;
        }
        case cnf::Verdict::Unknown: {
          ++out.stats.satUnknown;
          disqualified[n] = 1;
          break;
        }
      }
    }

    if (cexCount == 0) break;
    sim.appendWord(cexBits, cexCount, rng);
  }

  {
    const Lit roots[] = {fTgt};
    out.target = aig.rebuildWithNodeMap(roots, careMap).front();
  }

  // ----- phase B: ODC attempts, each verified end-to-end ------------------
  if (opts.useOdc && !interrupted) {
    int attempts = 0;
    bool changed = true;
    while (changed && attempts < opts.odcAttempts &&
           !(opts.interrupt && opts.interrupt())) {
      changed = false;
      Lit current = out.target;
      const Lit curRoots[] = {current};
      const auto order = aig.coneAnds(curRoots);
      const std::size_t curSize = order.size();
      for (const NodeId n : order) {
        if (attempts >= opts.odcAttempts) break;
        for (const bool value : {false, true}) {
          if (attempts >= opts.odcAttempts) break;
          ++attempts;
          aig::NodeMap tentativeMap;
          tentativeMap.set(n, value ? aig::kTrue : aig::kFalse);
          const Lit tentative =
              aig.rebuildWithNodeMap(curRoots, tentativeMap).front();
          const Lit tentRoots[] = {tentative};
          if (aig.coneSize(tentRoots) >= curSize) continue;
          // The paper's extra equivalence check: is the EXOR between the
          // node before/after observable at fRef ∨ fTgt?
          const Lit before = aig.mkOr(fRef, current);
          const Lit after = aig.mkOr(fRef, tentative);
          ++out.stats.satChecks;
          if (cnf::checkEquiv(cnf, before, after, opts.satBudget) ==
              cnf::Verdict::Holds) {
            out.target = tentative;
            ++out.stats.odcReplacements;
            changed = true;
            break;
          }
        }
        if (changed) break;  // restart scan on the new, smaller cone
      }
    }
  }

  {
    const Lit roots[] = {out.target};
    out.stats.nodesAfter = aig.coneSize(roots);
  }
  return out;
}

std::vector<aig::Lit> rewrite(aig::Aig& aig,
                              std::span<const aig::Lit> roots) {
  // Rebuilding with an empty node map re-drives every cone node through
  // mkAnd, re-applying the one/two-level rules and current strash table.
  return aig.rebuildWithNodeMap(roots, aig::NodeMap{});
}

}  // namespace cbq::synth

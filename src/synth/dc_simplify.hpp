#pragma once
// Synthesis-based optimizations — the paper's §2.2.
//
// After the merge phase we must represent F0 ∨ F1, not the individual
// cofactors, so one cofactor's onset is an input don't-care set for the
// other. Taking fRef as the reference cofactor and fTgt as the target:
//
//  * Input-DC (satisfiability don't-cares): a node n of fTgt may be
//    replaced by a candidate g — a constant, or another node modulo
//    complementation — whenever SAT(¬fRef ∧ (n ⊕ g)) is UNSAT, i.e. the
//    transformed node matches the original outside the don't-care set.
//    Candidates are proposed by care-set-masked simulation signatures and
//    refined with SAT counterexamples, exactly like the sweeping engine.
//    Accepted replacements compose soundly: every proof holds pointwise on
//    the care set, so the rebuilt fTgt agrees with fTgt wherever fRef=0,
//    which is all that fRef ∨ fTgt needs.
//
//  * Observability-DC: when the input-care check fails, a replacement may
//    still be invisible at the output of fRef ∨ fTgt. Each ODC attempt is
//    validated by the paper's "additional equivalence check"
//    fRef ∨ fTgt' ≡ fRef ∨ fTgt (equivalently: redundancy of the EXOR
//    gate comparing the node before/after), making commits
//    unconditionally sound even after earlier rewrites.

#include <cstdint>
#include <functional>
#include <span>

#include "aig/aig.hpp"
#include "sat/backend.hpp"

namespace cbq::sweep {
class SweepContext;
}

namespace cbq::synth {

struct DcOptions {
  int numWords = 2;                ///< random simulation words
  int maxRounds = 8;               ///< cex-refinement rounds (input-DC)
  std::int64_t satBudget = 2000;   ///< conflicts per SAT query
  bool useOdc = true;              ///< enable the ODC phase
  int odcAttempts = 48;            ///< max globally-verified ODC trials
  std::uint64_t seed = 0xdc;       ///< simulation seed

  /// Cooperative stop, polled once per SAT query site. Simplification is
  /// an optimization: when the callback fires, the phases stop early and
  /// the current (sound) result is returned.
  std::function<bool()> interrupt{};

  /// Persistent sweep session whose solver/CNF the DC checks share (all
  /// queries here are assumption-only, so they coexist with the sweeping
  /// checks in one clause database). Care-set-relative equivalences are
  /// NOT recorded in the session's pair cache — they only hold under
  /// ¬fRef, not globally. Null = private throwaway solver per call.
  sweep::SweepContext* context = nullptr;

  /// SAT engine policy for the DC/ODC checks; applied to the private
  /// session only — a provided `context` keeps its own policy.
  sat::BackendKind satBackend = sat::BackendKind::Cnf;
};

struct DcStats {
  std::size_t constReplacements = 0;  ///< input-DC nodes proven constant
  std::size_t mergeReplacements = 0;  ///< input-DC node-to-node merges
  std::size_t odcReplacements = 0;    ///< ODC-validated replacements
  std::size_t satChecks = 0;
  std::size_t satRefuted = 0;
  std::size_t satUnknown = 0;
  std::size_t nodesBefore = 0;
  std::size_t nodesAfter = 0;
};

struct DcResult {
  aig::Lit target;  ///< simplified fTgt (equal to fTgt wherever fRef = 0)
  DcStats stats;
};

/// Simplifies `fTgt` using the onset of `fRef` as a don't-care set.
/// Postcondition: fRef ∨ result ≡ fRef ∨ fTgt.
DcResult dcSimplify(aig::Aig& aig, aig::Lit fRef, aig::Lit fTgt,
                    const DcOptions& opts = {});

/// Structural cleanup: rebuilds the cones through the manager's
/// construction rules (strash + one/two-level rewrites). Cheap and always
/// function-preserving; used after merges have changed cone shapes.
std::vector<aig::Lit> rewrite(aig::Aig& aig, std::span<const aig::Lit> roots);

}  // namespace cbq::synth

#pragma once
// Duration timing helpers used by engines and benchmark harnesses.

#include <chrono>
#include <cstdint>

namespace cbq::util {

/// Monotonic stopwatch. Started on construction; restartable.
///
/// All duration measurement in the codebase — this stopwatch, the
/// portfolio Budget's deadline, and the span tracer's timestamps — must
/// run on steady_clock: an NTP step or DST change must never corrupt a
/// budget, a report's seconds column, or a trace. system_clock is
/// reserved for wall timestamps in run headers. Enforced here and at the
/// other clock sites by static_assert; test_obs.cpp carries the runtime
/// regression test.
class Timer {
 public:
  using Clock = std::chrono::steady_clock;
  static_assert(Clock::is_steady,
                "durations must come from a monotonic clock");

  Timer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void restart() { start_ = Clock::now(); }

  /// Elapsed time in seconds since construction / last restart.
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed time in milliseconds.
  [[nodiscard]] double milliseconds() const { return seconds() * 1e3; }

 private:
  Clock::time_point start_;
};

// (The former util::Deadline lived here; engine time limits now flow
// through portfolio::Budget so cancellation and deadlines share one
// cooperative polling path.)

}  // namespace cbq::util

#pragma once
// Wall-clock timing helpers used by engines and benchmark harnesses.

#include <chrono>
#include <cstdint>

namespace cbq::util {

/// Monotonic stopwatch. Started on construction; restartable.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void restart() { start_ = Clock::now(); }

  /// Elapsed time in seconds since construction / last restart.
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed time in milliseconds.
  [[nodiscard]] double milliseconds() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Soft deadline used by engines that honour a time budget.
/// A budget of zero (default) means "no limit".
class Deadline {
 public:
  Deadline() = default;
  explicit Deadline(double budgetSeconds) : budget_(budgetSeconds) {}

  /// True once the budget has been consumed (never true when unlimited).
  [[nodiscard]] bool expired() const {
    return budget_ > 0.0 && timer_.seconds() >= budget_;
  }

  [[nodiscard]] double budgetSeconds() const { return budget_; }
  [[nodiscard]] double elapsedSeconds() const { return timer_.seconds(); }

 private:
  Timer timer_;
  double budget_ = 0.0;
};

}  // namespace cbq::util

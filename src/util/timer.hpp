#pragma once
// Wall-clock timing helpers used by engines and benchmark harnesses.

#include <chrono>
#include <cstdint>

namespace cbq::util {

/// Monotonic stopwatch. Started on construction; restartable.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void restart() { start_ = Clock::now(); }

  /// Elapsed time in seconds since construction / last restart.
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed time in milliseconds.
  [[nodiscard]] double milliseconds() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

// (The former util::Deadline lived here; engine time limits now flow
// through portfolio::Budget so cancellation and deadlines share one
// cooperative polling path.)

}  // namespace cbq::util

#pragma once
// Plain-text table formatting shared by the benchmark harnesses so every
// regenerated table/figure prints with a uniform layout.

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

namespace cbq::util {

/// Accumulates rows of strings and prints them with aligned columns.
class Table {
 public:
  explicit Table(std::vector<std::string> header)
      : header_(std::move(header)) {}

  /// Appends a row; short rows are padded with empty cells.
  void addRow(std::vector<std::string> cells) {
    cells.resize(header_.size());
    rows_.push_back(std::move(cells));
  }

  /// Formats a double with fixed precision for table cells.
  static std::string num(double v, int precision = 2) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
  }

  void print(std::ostream& os) const {
    std::vector<std::size_t> width(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c)
      width[c] = header_[c].size();
    for (const auto& row : rows_)
      for (std::size_t c = 0; c < row.size(); ++c)
        width[c] = std::max(width[c], row[c].size());

    auto line = [&](char fill) {
      for (std::size_t c = 0; c < header_.size(); ++c) {
        os << '+' << std::string(width[c] + 2, fill);
      }
      os << "+\n";
    };
    auto printRow = [&](const std::vector<std::string>& row) {
      for (std::size_t c = 0; c < header_.size(); ++c) {
        os << "| " << std::left << std::setw(static_cast<int>(width[c]))
           << row[c] << ' ';
      }
      os << "|\n";
    };

    line('-');
    printRow(header_);
    line('=');
    for (const auto& row : rows_) printRow(row);
    line('-');
  }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace cbq::util

#include "util/fault.hpp"

#include <chrono>
#include <cstdlib>
#include <new>
#include <sstream>
#include <thread>

namespace cbq::util {

std::atomic<bool> FaultInjector::armed_{false};

FaultInjector& FaultInjector::instance() {
  static FaultInjector injector;
  return injector;
}

const std::vector<std::string>& FaultInjector::knownSites() {
  static const std::vector<std::string> sites = {
      "bdd.alloc",     // BDD unique-table node allocation
      "sat.solve",     // SAT solve entry (fail -> Undef)
      "aig.grow",      // AIG node-space growth
      "io.read_chunk", // binary AIGER chunk refill (fail -> truncation)
      "engine.resume", // Session::resume dispatch
      "prep.pass",     // preprocessing pass entry
  };
  return sites;
}

bool FaultInjector::arm(const std::string& spec, std::string* error) {
  auto failWith = [&](const std::string& msg) {
    if (error != nullptr) *error = msg + " in '" + spec + "'";
    return false;
  };
  FaultSpec out;
  std::stringstream ss(spec);
  std::string part;
  if (!std::getline(ss, part, ':') || part.empty())
    return failWith("missing site name");
  out.site = part;
  while (std::getline(ss, part, ':')) {
    if (part.empty()) continue;
    if (part == "throw") {
      out.mode = FaultMode::Throw;
    } else if (part == "fail") {
      out.mode = FaultMode::Fail;
    } else if (part == "stall") {
      out.mode = FaultMode::Stall;
    } else if (part == "oom") {
      out.mode = FaultMode::Oom;
    } else if (part == "nonstd") {
      out.mode = FaultMode::NonStd;
    } else if (part.rfind("prob=", 0) == 0) {
      char* end = nullptr;
      out.prob = std::strtod(part.c_str() + 5, &end);
      if (end == part.c_str() + 5 || *end != '\0' || out.prob <= 0.0 ||
          out.prob > 1.0)
        return failWith("bad probability");
    } else if (part.rfind("stall=", 0) == 0) {
      out.stallMs = std::atoi(part.c_str() + 6);
      if (out.stallMs <= 0) return failWith("bad stall duration");
    } else if (part.rfind("nth=", 0) == 0 ||
               (part[0] >= '0' && part[0] <= '9')) {
      const char* digits =
          part.rfind("nth=", 0) == 0 ? part.c_str() + 4 : part.c_str();
      char* end = nullptr;
      out.nth = std::strtoull(digits, &end, 10);
      if (end == digits || *end != '\0' || out.nth == 0)
        return failWith("bad hit count");
    } else {
      return failWith("unknown token '" + part + "'");
    }
  }
  armSpec(std::move(out));
  return true;
}

void FaultInjector::armSpec(FaultSpec spec) {
  const MutexLock lock(mu_);
  auto armed = std::make_unique<Armed>();
  armed->spec = std::move(spec);
  sites_.push_back(std::move(armed));
  armed_.store(true, std::memory_order_release);
}

void FaultInjector::seed(std::uint64_t s) {
  const MutexLock lock(mu_);
  rngState_ = s ^ 0x9e3779b97f4a7c15ull;
}

void FaultInjector::disarm() {
  const MutexLock lock(mu_);
  armed_.store(false, std::memory_order_release);
  sites_.clear();
}

bool FaultInjector::fires(Armed& a) {
  const std::uint64_t hit =
      a.hits.fetch_add(1, std::memory_order_relaxed) + 1;
  bool fire = false;
  if (a.spec.prob > 0.0) {
    // splitmix64 under the injector lock: deterministic for a fixed seed
    // and hit sequence (concurrent hitters make the interleaving — not
    // the marginal rate — nondeterministic, which a soak accepts).
    const MutexLock lock(mu_);
    rngState_ += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = rngState_;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    z ^= z >> 31;
    fire = static_cast<double>(z >> 11) * 0x1.0p-53 < a.spec.prob;
  } else {
    fire = hit == a.spec.nth;
  }
  if (fire) a.fires.fetch_add(1, std::memory_order_relaxed);
  return fire;
}

void FaultInjector::fire(const Armed& a, const char* site) {
  switch (a.spec.mode) {
    case FaultMode::Throw:
      throw InjectedFault(site);
    case FaultMode::Oom:
      throw std::bad_alloc();
    case FaultMode::NonStd:
      throw 42;  // NOLINT: exercising catch (...) barriers is the point
    case FaultMode::Stall: {
      // Bounded, sliced sleep: a stalled engine must still be preemptible
      // by wall-clock budgets once it wakes, and the total stall is
      // capped so a fault schedule can never hang a run forever.
      const auto until = std::chrono::steady_clock::now() +
                         std::chrono::milliseconds(a.spec.stallMs);
      while (std::chrono::steady_clock::now() < until)
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      break;
    }
    case FaultMode::Fail:
      break;  // fail-mode only answers shouldFail()
  }
}

void FaultInjector::hit(const char* site) {
  // Snapshot under the lock, act outside it: fire() may sleep or throw.
  Armed* match = nullptr;
  {
    const MutexLock lock(mu_);
    for (const auto& a : sites_)
      if (a->spec.mode != FaultMode::Fail && a->spec.site == site) {
        match = a.get();
        break;
      }
  }
  if (match != nullptr && fires(*match)) fire(*match, site);
}

bool FaultInjector::shouldFail(const char* site) {
  Armed* match = nullptr;
  {
    const MutexLock lock(mu_);
    for (const auto& a : sites_)
      if (a->spec.mode == FaultMode::Fail && a->spec.site == site) {
        match = a.get();
        break;
      }
  }
  return match != nullptr && fires(*match);
}

std::uint64_t FaultInjector::fireCount() const {
  const MutexLock lock(mu_);
  std::uint64_t total = 0;
  for (const auto& a : sites_)
    total += a->fires.load(std::memory_order_relaxed);
  return total;
}

std::vector<FaultSiteStats> FaultInjector::stats() const {
  const MutexLock lock(mu_);
  std::vector<FaultSiteStats> out;
  out.reserve(sites_.size());
  for (const auto& a : sites_)
    out.push_back({a->spec.site, a->hits.load(std::memory_order_relaxed),
                   a->fires.load(std::memory_order_relaxed)});
  return out;
}

}  // namespace cbq::util

#pragma once
// Lightweight named-counter registry. Engines and the quantifier expose
// their internal activity (SAT checks, merges, aborts, ...) through these
// so tests and benches can assert on behaviour, not just results.

#include <cstdint>
#include <map>
#include <ostream>
#include <string>

namespace cbq::util {

/// A bag of named 64-bit counters and named double gauges.
class Stats {
 public:
  /// Adds `delta` to counter `name` (creating it at zero).
  void add(const std::string& name, std::int64_t delta = 1) {
    counters_[name] += delta;
  }

  /// Sets gauge `name` to `value` (last write wins).
  void set(const std::string& name, double value) { gauges_[name] = value; }

  /// Keeps the maximum ever seen for gauge `name`.
  void high(const std::string& name, double value) {
    auto [it, inserted] = gauges_.emplace(name, value);
    if (!inserted && value > it->second) it->second = value;
  }

  /// Counter value; zero when never touched.
  [[nodiscard]] std::int64_t count(const std::string& name) const {
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
  }

  /// Gauge value; zero when never touched.
  [[nodiscard]] double gauge(const std::string& name) const {
    auto it = gauges_.find(name);
    return it == gauges_.end() ? 0.0 : it->second;
  }

  /// Merges another stats bag into this one (counters add, gauges max).
  void merge(const Stats& other) {
    for (const auto& [k, v] : other.counters_) counters_[k] += v;
    for (const auto& [k, v] : other.gauges_) high(k, v);
  }

  void clear() {
    counters_.clear();
    gauges_.clear();
  }

  [[nodiscard]] const std::map<std::string, std::int64_t>& counters() const {
    return counters_;
  }
  [[nodiscard]] const std::map<std::string, double>& gauges() const {
    return gauges_;
  }

  friend std::ostream& operator<<(std::ostream& os, const Stats& s) {
    for (const auto& [k, v] : s.counters_) os << k << " = " << v << '\n';
    for (const auto& [k, v] : s.gauges_) os << k << " = " << v << '\n';
    return os;
  }

 private:
  std::map<std::string, std::int64_t> counters_;
  std::map<std::string, double> gauges_;
};

}  // namespace cbq::util

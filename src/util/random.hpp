#pragma once
// Deterministic pseudo-random number generation for simulation vectors,
// workload generation and randomized tests.
//
// We use xoshiro256** (Blackman & Vigna): fast, high-quality, and — unlike
// std::mt19937 — guaranteed to produce identical streams on every platform,
// which keeps simulation-signature tests and benchmark workloads
// reproducible across machines.

#include <array>
#include <cstdint>

namespace cbq::util {

/// Deterministic 64-bit PRNG (xoshiro256**).
class Random {
 public:
  /// Seeds the generator. Equal seeds yield equal streams forever.
  explicit Random(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  /// Re-seeds in place via splitmix64 expansion of `seed`.
  void reseed(std::uint64_t seed) {
    std::uint64_t x = seed;
    for (auto& word : state_) {
      // splitmix64 step: decorrelates consecutive seeds.
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  /// Uniform 64-bit word; the workhorse for parallel simulation patterns.
  std::uint64_t next64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). `bound` must be > 0.
  std::uint64_t below(std::uint64_t bound) { return next64() % bound; }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Bernoulli draw with probability `num/den`.
  bool chance(std::uint64_t num, std::uint64_t den) {
    return below(den) < num;
  }

  /// Fair coin.
  bool flip() { return (next64() & 1) != 0; }

  /// Uniform double in [0, 1).
  double unit() {
    return static_cast<double>(next64() >> 11) * 0x1.0p-53;
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace cbq::util

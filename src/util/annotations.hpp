#pragma once
// Clang Thread Safety Analysis attribute macros.
//
// Every mutex-owning class in the project annotates its lock discipline
// with these macros so that a clang build with -Werror=thread-safety
// (the `clang-thread-safety` CI job) statically rejects unguarded access
// to shared state. Under GCC — the default local toolchain — every macro
// expands to nothing, so annotations are free for non-clang builds.
//
// The vocabulary mirrors the official clang TSA attribute set
// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html); only the
// subset the codebase actually uses is defined here. Raw std::mutex has
// no capability annotations in libstdc++, so annotated code must hold
// util::Mutex / util::CondVar from util/sync.hpp instead — a project
// lint rule (std-mutex) enforces exactly that outside util/.

#if defined(__clang__)
#define CBQ_TSA_ATTR(x) __attribute__((x))
#else
#define CBQ_TSA_ATTR(x)  // no-op outside clang
#endif

/// Marks a type as a capability (a lock). `x` names the capability kind
/// shown in diagnostics, e.g. CBQ_CAPABILITY("mutex").
#define CBQ_CAPABILITY(x) CBQ_TSA_ATTR(capability(x))

/// Marks an RAII type whose constructor acquires and destructor releases
/// a capability (std::lock_guard-shaped types).
#define CBQ_SCOPED_CAPABILITY CBQ_TSA_ATTR(scoped_lockable)

/// Data member readable/writable only while holding `x`.
#define CBQ_GUARDED_BY(x) CBQ_TSA_ATTR(guarded_by(x))

/// Pointer member whose *pointee* is protected by `x` (the pointer
/// itself may be read freely).
#define CBQ_PT_GUARDED_BY(x) CBQ_TSA_ATTR(pt_guarded_by(x))

/// Function requires the listed capabilities to be held on entry (and
/// still held on exit).
#define CBQ_REQUIRES(...) CBQ_TSA_ATTR(requires_capability(__VA_ARGS__))

/// Function acquires the listed capabilities (held on exit, not entry).
#define CBQ_ACQUIRE(...) CBQ_TSA_ATTR(acquire_capability(__VA_ARGS__))

/// Function releases the listed capabilities.
#define CBQ_RELEASE(...) CBQ_TSA_ATTR(release_capability(__VA_ARGS__))

/// Function acquires the capability iff it returns `b`.
#define CBQ_TRY_ACQUIRE(b, ...) \
  CBQ_TSA_ATTR(try_acquire_capability(b, __VA_ARGS__))

/// Caller must NOT hold the listed capabilities (non-reentrancy guard).
#define CBQ_EXCLUDES(...) CBQ_TSA_ATTR(locks_excluded(__VA_ARGS__))

/// Function returns a reference to the capability guarding its result.
#define CBQ_RETURN_CAPABILITY(x) CBQ_TSA_ATTR(lock_returned(x))

/// Escape hatch: disables the analysis for one function. Every use must
/// carry a one-line rationale comment (lint rule: zero bare
/// suppressions applies to lint pragmas; code review polices this one).
#define CBQ_NO_THREAD_SAFETY_ANALYSIS \
  CBQ_TSA_ATTR(no_thread_safety_analysis)

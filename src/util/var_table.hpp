#pragma once
// Dense, epoch-stamped slot table keyed by small unsigned ids.
//
// The AIG layers key almost everything by `VarId` (external variable
// numbers assigned densely by the model-checking layer) or similar small
// integers. A flat vector with per-slot epoch stamps replaces the
// `std::unordered_map` lookups on those paths: membership is one compare,
// clearing is O(1) (bump the epoch), and the storage is reusable across
// thousands of calls without rehashing or node-chasing.

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <vector>

namespace cbq::util {

/// VarId-indexed slot table. `clear()` is O(1); slots grow on demand.
/// A slot written under an older epoch reads as absent.
template <typename T>
class VarTable {
 public:
  VarTable() = default;

  /// Forgets every entry in O(1) by bumping the epoch. On the (rare)
  /// 32-bit wrap the stamps are scrubbed so stale entries cannot alias
  /// the recycled epoch value.
  void clear() {
    if (++epoch_ == 0) {
      std::fill(stamp_.begin(), stamp_.end(), 0u);
      epoch_ = 1;
    }
  }

  void set(std::uint32_t key, T value) {
    if (key >= stamp_.size()) {
      stamp_.resize(key + 1, 0);
      val_.resize(key + 1);
    }
    stamp_[key] = epoch_;
    val_[key] = std::move(value);
  }

  [[nodiscard]] bool contains(std::uint32_t key) const {
    return key < stamp_.size() && stamp_[key] == epoch_;
  }

  /// Precondition: contains(key).
  [[nodiscard]] const T& at(std::uint32_t key) const {
    assert(contains(key));
    return val_[key];
  }

  /// Value of `key`, or `fallback` when absent.
  [[nodiscard]] T get(std::uint32_t key, T fallback) const {
    return contains(key) ? val_[key] : fallback;
  }

  [[nodiscard]] std::uint32_t epoch() const { return epoch_; }

  /// Test hook: drives the epoch counter to an arbitrary value so the
  /// wrap-around path in clear() can be exercised without 2^32 calls.
  void forceEpochForTest(std::uint32_t e) { epoch_ = e; }

 private:
  std::vector<std::uint32_t> stamp_;
  std::vector<T> val_;
  std::uint32_t epoch_ = 1;  // 0 is reserved for "never written"
};

}  // namespace cbq::util

#include "util/thread_pool.hpp"

#include <algorithm>
#include <string>

#include "obs/metrics.hpp"
#include "obs/tracer.hpp"
#include "util/timer.hpp"

namespace cbq::util {

ThreadPool::ThreadPool(int threads) {
  const int workers = std::max(0, threads - 1);
  workers_.reserve(static_cast<std::size_t>(workers));
  for (int w = 0; w < workers; ++w)
    workers_.emplace_back([this, w] {
      obs::setThreadLabel("pool lane " + std::to_string(w + 1));
      workerLoop(w + 1);
    });
}

ThreadPool::~ThreadPool() {
  {
    const MutexLock lock(mutex_);
    stop_ = true;
  }
  wake_.notifyAll();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::runChunks(Job& job, int lane) {
  CBQ_OBS_SPAN("pool", "chunks");
  const Timer busy;
  for (;;) {
    const std::size_t c = job.next.fetch_add(1, std::memory_order_relaxed);
    if (c >= job.numChunks) break;
    const std::size_t begin = c * job.chunk;
    const std::size_t end = std::min(begin + job.chunk, job.n);
    try {
      (*job.body)(begin, end, lane);
    } catch (...) {
      const MutexLock lock(job.errMu);
      if (!job.error) job.error = std::current_exception();
    }
    // The last finished chunk releases the caller's join barrier. The
    // empty critical section orders the done-store against the caller's
    // predicate re-check, so the notify cannot be missed.
    if (job.done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        job.numChunks) {
      { const MutexLock lock(mutex_); }
      joined_.notifyAll();
    }
  }
  // Lane occupancy for the run-level report: how much wall time the pool's
  // lanes spent inside parallel regions. Charged once per lane per region
  // (amortized — never on the serial fast path).
  obs::globalMetrics().add(
      "pool.lane_busy_ns",
      static_cast<std::int64_t>(busy.seconds() * 1e9));
}

void ThreadPool::workerLoop(int lane) {
  std::uint64_t seen = 0;
  for (;;) {
    Job* job = nullptr;
    {
      const MutexLock lock(mutex_);
      while (!stop_ && jobSeq_ == seen) wake_.wait(mutex_);
      if (stop_) return;
      seen = jobSeq_;
      job = job_;  // nullptr for a late waker: the job already retired
      if (job != nullptr) job->active.fetch_add(1, std::memory_order_relaxed);
    }
    if (job == nullptr) continue;
    runChunks(*job, lane);
    // The join barrier also waits for active to hit zero; the empty
    // critical section pairs the store with the caller's locked
    // predicate re-check (missed-wakeup fence).
    job->active.fetch_sub(1, std::memory_order_acq_rel);
    { const MutexLock lock(mutex_); }
    joined_.notifyAll();
  }
}

void ThreadPool::parallelFor(std::size_t n, std::size_t grain,
                             const Body& body) {
  if (n == 0) return;
  const std::size_t g = std::max<std::size_t>(grain, 1);
  // Serial fast path: too little work to amortize a wakeup, a serial
  // pool, or a region already running (the global thread budget is
  // spent) — run inline, lane 0, zero synchronization.
  if (workers_.empty() || n < 2 * g ||
      busy_.exchange(true, std::memory_order_acquire)) {
    body(0, n, 0);
    return;
  }

  CBQ_OBS_SPAN("pool", "parallel-for");
  const Timer region;
  Job job;
  job.body = &body;
  job.n = n;
  // Oversplit ~4x relative to the lane count so dynamic claiming load-
  // balances uneven chunks, but never below the grain.
  const std::size_t lanes = static_cast<std::size_t>(threads());
  job.chunk = std::max(g, (n + 4 * lanes - 1) / (4 * lanes));
  job.numChunks = (n + job.chunk - 1) / job.chunk;

  {
    const MutexLock lock(mutex_);
    job_ = &job;
    ++jobSeq_;
  }
  wake_.notifyAll();
  runChunks(job, 0);  // the caller is lane 0

  {
    // The barrier needs every chunk processed AND every worker out of
    // runChunks — `job` lives on this stack frame, so a straggler still
    // probing for a chunk must not outlive the wait.
    const MutexLock lock(mutex_);
    job_ = nullptr;  // late wakers see no job instead of a dead one
    while (!(job.done.load(std::memory_order_acquire) == job.numChunks &&
             job.active.load(std::memory_order_acquire) == 0))
      joined_.wait(mutex_);
  }
  busy_.store(false, std::memory_order_release);
  obs::globalMetrics().add("pool.regions");
  obs::globalMetrics().observe("pool.region_seconds", region.seconds());
  std::exception_ptr err;
  {
    const MutexLock lock(job.errMu);
    err = job.error;
  }
  if (err) std::rethrow_exception(err);
}

}  // namespace cbq::util

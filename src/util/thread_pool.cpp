#include "util/thread_pool.hpp"

#include <algorithm>
#include <string>

#include "obs/metrics.hpp"
#include "obs/tracer.hpp"
#include "util/timer.hpp"

namespace cbq::util {

ThreadPool::ThreadPool(int threads) {
  const int workers = std::max(0, threads - 1);
  workers_.reserve(static_cast<std::size_t>(workers));
  for (int w = 0; w < workers; ++w)
    workers_.emplace_back([this, w] {
      obs::setThreadLabel("pool lane " + std::to_string(w + 1));
      workerLoop(w + 1);
    });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  wake_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::runChunks(Job& job, int lane) {
  CBQ_OBS_SPAN("pool", "chunks");
  const Timer busy;
  for (;;) {
    const std::size_t c = job.next.fetch_add(1, std::memory_order_relaxed);
    if (c >= job.numChunks) break;
    const std::size_t begin = c * job.chunk;
    const std::size_t end = std::min(begin + job.chunk, job.n);
    try {
      (*job.body)(begin, end, lane);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!job.error) job.error = std::current_exception();
    }
    // The last finished chunk releases the caller's join barrier.
    if (job.done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        job.numChunks) {
      std::lock_guard<std::mutex> lock(mutex_);
      joined_.notify_all();
    }
  }
  // Lane occupancy for the run-level report: how much wall time the pool's
  // lanes spent inside parallel regions. Charged once per lane per region
  // (amortized — never on the serial fast path).
  obs::globalMetrics().add(
      "pool.lane_busy_ns",
      static_cast<std::int64_t>(busy.seconds() * 1e9));
}

void ThreadPool::workerLoop(int lane) {
  std::uint64_t seen = 0;
  for (;;) {
    Job* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [&] { return stop_ || jobSeq_ != seen; });
      if (stop_) return;
      seen = jobSeq_;
      job = job_;  // nullptr for a late waker: the job already retired
      if (job != nullptr) ++job->active;
    }
    if (job == nullptr) continue;
    runChunks(*job, lane);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --job->active;  // the join barrier also waits for this to hit zero
    }
    joined_.notify_all();
  }
}

void ThreadPool::parallelFor(std::size_t n, std::size_t grain,
                             const Body& body) {
  if (n == 0) return;
  const std::size_t g = std::max<std::size_t>(grain, 1);
  // Serial fast path: too little work to amortize a wakeup, a serial
  // pool, or a region already running (the global thread budget is
  // spent) — run inline, lane 0, zero synchronization.
  if (workers_.empty() || n < 2 * g ||
      busy_.exchange(true, std::memory_order_acquire)) {
    body(0, n, 0);
    return;
  }

  CBQ_OBS_SPAN("pool", "parallel-for");
  const Timer region;
  Job job;
  job.body = &body;
  job.n = n;
  // Oversplit ~4x relative to the lane count so dynamic claiming load-
  // balances uneven chunks, but never below the grain.
  const std::size_t lanes = static_cast<std::size_t>(threads());
  job.chunk = std::max(g, (n + 4 * lanes - 1) / (4 * lanes));
  job.numChunks = (n + job.chunk - 1) / job.chunk;

  {
    std::lock_guard<std::mutex> lock(mutex_);
    job_ = &job;
    ++jobSeq_;
  }
  wake_.notify_all();
  runChunks(job, 0);  // the caller is lane 0

  {
    // The barrier needs every chunk processed AND every worker out of
    // runChunks — `job` lives on this stack frame, so a straggler still
    // probing for a chunk must not outlive the wait.
    std::unique_lock<std::mutex> lock(mutex_);
    job_ = nullptr;  // late wakers see no job instead of a dead one
    joined_.wait(lock, [&] {
      return job.done.load(std::memory_order_acquire) == job.numChunks &&
             job.active == 0;
    });
  }
  busy_.store(false, std::memory_order_release);
  obs::globalMetrics().add("pool.regions");
  obs::globalMetrics().observe("pool.region_seconds", region.seconds());
  if (job.error) std::rethrow_exception(job.error);
}

}  // namespace cbq::util

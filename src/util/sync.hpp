#pragma once
// Annotated synchronization primitives.
//
// libstdc++'s std::mutex carries no thread-safety-analysis attributes,
// so clang cannot check lock discipline through it. These thin wrappers
// add the capability annotations (util/annotations.hpp) with zero
// runtime cost over the std types they delegate to:
//
//   Mutex      — std::mutex as a CBQ_CAPABILITY
//   MutexLock  — std::lock_guard equivalent (scoped, non-releasable)
//   UniqueLock — relockable scope for lock/unlock/relock sequences and
//                condition-variable waits
//   CondVar    — std::condition_variable_any over Mutex; wait() takes
//                the Mutex itself so the REQUIRES annotation names the
//                capability the analysis tracks
//
// Everything mutex-shaped outside util/ must use these (lint rule
// std-mutex); predicate-lambda waits are written as explicit
// `while (!cond) cv.wait(mu);` loops because the analysis cannot see a
// lambda's lock context.

#include <condition_variable>
#include <mutex>

#include "util/annotations.hpp"

namespace cbq::util {

class CondVar;

/// std::mutex with capability annotations.
class CBQ_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() CBQ_ACQUIRE() { mu_.lock(); }
  void unlock() CBQ_RELEASE() { mu_.unlock(); }
  bool try_lock() CBQ_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// Scoped lock-and-hold (std::lock_guard shape): acquires in the
/// constructor, releases in the destructor, never mid-scope.
class CBQ_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) CBQ_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() CBQ_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Scoped lock that supports unlock/relock mid-scope, for code that
/// drops the lock around a blocking region (scheduler workers) or waits
/// on a CondVar. Destructor releases only if currently held.
class CBQ_SCOPED_CAPABILITY UniqueLock {
 public:
  explicit UniqueLock(Mutex& mu) CBQ_ACQUIRE(mu) : mu_(mu), held_(true) {
    mu_.lock();
  }
  ~UniqueLock() CBQ_RELEASE() {
    if (held_) mu_.unlock();
  }

  void lock() CBQ_ACQUIRE() {
    mu_.lock();
    held_ = true;
  }
  void unlock() CBQ_RELEASE() {
    mu_.unlock();
    held_ = false;
  }

  UniqueLock(const UniqueLock&) = delete;
  UniqueLock& operator=(const UniqueLock&) = delete;

 private:
  Mutex& mu_;
  bool held_;
};

/// Condition variable over Mutex. wait() names the Mutex so callers'
/// REQUIRES obligations are visible to the analysis; the caller keeps a
/// UniqueLock (or MutexLock) alive for the RAII release.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, sleeps, and re-acquires before
  /// returning. The capability is held across the call boundary from
  /// the analysis's point of view (release + re-acquire nets to zero).
  void wait(Mutex& mu) CBQ_REQUIRES(mu) { cv_.wait(mu.mu_); }

  template <class Rep, class Period>
  std::cv_status waitFor(Mutex& mu,
                         const std::chrono::duration<Rep, Period>& dur)
      CBQ_REQUIRES(mu) {
    return cv_.wait_for(mu.mu_, dur);
  }

  void notifyOne() { cv_.notify_one(); }
  void notifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace cbq::util

#pragma once
// Shared worker pool for intra-problem parallelism.
//
// Everything parallel above this layer (PortfolioRunner, BatchScheduler,
// TimeSliceScheduler) is one-thread-per-engine or one-thread-per-problem;
// this pool is the operator-level counterpart: a static set of workers
// that split ONE data-parallel loop (signature simulation strata, class
// hashing shards, per-latch cone traversals) across cores.
//
// Design constraints, in priority order:
//
//  1. Determinism. parallelFor() only partitions an index range; callers
//     must write disjoint slots per index, so the result is bit-identical
//     at any thread count (enforced by tests/test_parallel.cpp). Nothing
//     in the pool reorders observable effects.
//  2. Zero cost when serial. With one thread (or a range below the grain)
//     the loop body runs inline on the caller — no locks, no allocation,
//     no wakeups — so `--par-threads 1` costs the small-circuit hot loop
//     nothing.
//  3. No oversubscription. The pool runs at most one parallel region at a
//     time: a region that arrives while another is in flight (two batch
//     workers preprocessing concurrently, or a nested loop) simply runs
//     inline on its caller thread. One pool therefore IS the global
//     thread budget — engine-level and intra-problem parallelism share
//     it without ever stacking thread counts multiplicatively.
//
// Cancellation: the pool itself never blocks on user code between chunk
// boundaries; loop bodies that honour a CancelToken poll it per chunk and
// return early, and the join barrier completes as soon as every claimed
// chunk has returned.

#include <atomic>
#include <cstddef>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "util/sync.hpp"

namespace cbq::util {

class ThreadPool {
 public:
  /// A pool with `threads` total lanes of parallelism, including the
  /// calling thread: `threads - 1` workers are spawned. `threads <= 1`
  /// spawns nothing and every parallelFor runs inline.
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total lanes (workers + the caller).
  [[nodiscard]] int threads() const {
    return static_cast<int>(workers_.size()) + 1;
  }

  /// Loop body: processes `[begin, end)`. `lane` identifies the executing
  /// lane in [0, threads()) — stable per thread within one parallelFor —
  /// so bodies can keep per-lane scratch (visited stamps, local hash
  /// maps) without locking. Chunks are claimed dynamically, so a lane may
  /// process several non-adjacent chunks.
  using Body = std::function<void(std::size_t begin, std::size_t end,
                                  int lane)>;

  /// Splits `[0, n)` into chunks of at least `grain` indices and runs
  /// `body` over them on the workers plus the calling thread, returning
  /// when all of `[0, n)` has been processed. Runs inline (single chunk,
  /// lane 0) when the pool is serial, the range is below 2 * grain, or
  /// another parallel region is already in flight (see the
  /// no-oversubscription note above). The first exception thrown by any
  /// chunk is rethrown on the caller after the barrier.
  void parallelFor(std::size_t n, std::size_t grain, const Body& body);

 private:
  struct Job {
    const Body* body = nullptr;
    std::size_t n = 0;
    std::size_t chunk = 0;           ///< indices per chunk
    std::size_t numChunks = 0;
    std::atomic<std::size_t> next{0};  ///< next unclaimed chunk
    std::atomic<std::size_t> done{0};  ///< chunks fully processed
    std::atomic<int> active{0};        ///< workers inside runChunks
    Mutex errMu;                       ///< job-local: thread-safety
                                       ///< attributes cannot name the
                                       ///< owning pool's mutex_ from a
                                       ///< nested struct
    std::exception_ptr error CBQ_GUARDED_BY(errMu);  ///< first failure
  };

  void workerLoop(int lane);
  void runChunks(Job& job, int lane);

  std::vector<std::thread> workers_;
  Mutex mutex_;
  CondVar wake_;    ///< workers wait for a new job
  CondVar joined_;  ///< caller waits for chunk completion
  Job* job_ CBQ_GUARDED_BY(mutex_) = nullptr;  ///< current job
  std::uint64_t jobSeq_ CBQ_GUARDED_BY(mutex_) = 0;  ///< wakes workers
  std::atomic<bool> busy_{false};  ///< a parallel region is in flight
  bool stop_ CBQ_GUARDED_BY(mutex_) = false;
};

}  // namespace cbq::util

#pragma once
// Deterministic fault injection — the robustness layer's test probe.
//
// A service that must degrade gracefully under engine crashes, allocation
// blow-ups and corrupt inputs needs a way to MAKE those failures happen on
// demand, deterministically, in any build. CBQ_FAULT_POINT("site") marks
// the places where production code can fail for real (BDD node
// allocation, SAT solve entry, AIG growth, chunked file reads, engine
// resume, prep passes); the process-wide FaultInjector, armed from
// `cbq --inject 'site[:nth|:prob=p][:mode]' --inject-seed S` or directly
// by tests, decides per hit whether to fire and how:
//
//   throw  — throw util::InjectedFault (a std::runtime_error)
//   oom    — throw std::bad_alloc (fake out-of-memory)
//   fail   — make the site report failure through its normal channel
//            (solver returns Undef, reader reports EOF); only sites that
//            poll CBQ_FAULT_FAIL support this, others treat it as throw
//   stall  — sleep in short cancellation-friendly increments (watchdog
//            and slow-engine testing), then continue normally
//   nonstd — throw a non-std::exception type (an int), exercising the
//            catch (...) barriers that keep even foreign exceptions from
//            killing a worker
//
// Trigger spec: `site` alone fires on the first hit; `site:K` on the
// K-th hit; `site:prob=P` on each hit with probability P from an RNG
// seeded by --inject-seed (same seed + same schedule = same run).
//
// Disarmed cost is one relaxed atomic load per site hit — the same
// budget as a disarmed CBQ_OBS_SPAN — and -DCBQ_FAULTS=OFF compiles the
// macros away entirely (CI gates that build at zero measurable overhead).

#include <atomic>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/sync.hpp"

namespace cbq::util {

/// What an armed fault does when it fires.
enum class FaultMode : std::uint8_t { Throw, Fail, Stall, Oom, NonStd };

/// The exception thrown by throw-mode faults. Deliberately a plain
/// runtime_error subclass: containment barriers must not special-case it.
struct InjectedFault : std::runtime_error {
  explicit InjectedFault(const std::string& site)
      : std::runtime_error("injected fault at " + site) {}
};

/// One armed fault site.
struct FaultSpec {
  std::string site;
  FaultMode mode = FaultMode::Throw;
  std::uint64_t nth = 1;   ///< fire on the nth hit (ignored when prob > 0)
  double prob = 0.0;       ///< per-hit fire probability (0 = use nth)
  int stallMs = 200;       ///< total stall duration for Stall mode
};

/// Per-site observability: how often the site was reached and fired.
struct FaultSiteStats {
  std::string site;
  std::uint64_t hits = 0;
  std::uint64_t fires = 0;
};

/// The process-wide injector. Thread-safe: sites are hit concurrently by
/// racing engines, pool lanes and batch workers. Arm/disarm are meant for
/// test setup and CLI start-up, not for mid-run reconfiguration.
class FaultInjector {
 public:
  static FaultInjector& instance();

  /// True when any site is armed — the macro's fast path. A single
  /// relaxed load; never taken in production runs.
  [[nodiscard]] static bool armedFast() {
    return armed_.load(std::memory_order_relaxed);
  }

  /// Parses and arms one spec: `site[:K][:prob=P][:mode][:stall=MS]`
  /// where mode is throw|fail|stall|oom|nonstd. Returns false (arming
  /// nothing) on a malformed spec; `error` gets the reason.
  bool arm(const std::string& spec, std::string* error = nullptr);

  /// Arms a pre-built spec (tests).
  void armSpec(FaultSpec spec);

  /// Seeds the probability RNG; call before arm() for reproducible runs.
  void seed(std::uint64_t s);

  /// Clears every armed site and resets hit counters.
  void disarm();

  /// The slow path behind CBQ_FAULT_POINT: may throw InjectedFault /
  /// std::bad_alloc / int, or sleep (Stall). Fail-mode specs do not fire
  /// here — they only answer shouldFail().
  void hit(const char* site);

  /// The slow path behind CBQ_FAULT_FAIL: true when a fail-mode spec for
  /// `site` fires on this hit.
  [[nodiscard]] bool shouldFail(const char* site);

  /// Total fires across all sites since the last disarm().
  [[nodiscard]] std::uint64_t fireCount() const;

  /// Per-site hit/fire counters, armed sites only.
  [[nodiscard]] std::vector<FaultSiteStats> stats() const;

  /// The fault-site catalogue (README "Robustness" keeps the semantics).
  static const std::vector<std::string>& knownSites();

 private:
  FaultInjector() = default;

  struct Armed {
    FaultSpec spec;
    std::atomic<std::uint64_t> hits{0};
    std::atomic<std::uint64_t> fires{0};
  };

  /// Decides whether `a` fires on this hit, updating counters.
  bool fires(Armed& a);

  void fire(const Armed& a, const char* site);

  static std::atomic<bool> armed_;
  mutable Mutex mu_;
  /// Guarded layout only: Armed objects stay at a stable address once
  /// armed and are hit through raw pointers outside the lock (their
  /// counters are atomics; spec is immutable after arm).
  std::vector<std::unique_ptr<Armed>> sites_ CBQ_GUARDED_BY(mu_);
  std::uint64_t rngState_ CBQ_GUARDED_BY(mu_) = 0x9e3779b97f4a7c15ull;
};

}  // namespace cbq::util

// The site macros. CBQ_FAULT_POINT marks a place that can throw/stall;
// CBQ_FAULT_FAIL is an expression a site folds into its own failure path
// (e.g. `if (CBQ_FAULT_FAIL("sat.solve")) return Status::Undef;`).
#if !defined(CBQ_NO_FAULTS)
#define CBQ_FAULT_POINT(site)                              \
  do {                                                     \
    if (::cbq::util::FaultInjector::armedFast())           \
      ::cbq::util::FaultInjector::instance().hit(site);    \
  } while (0)
#define CBQ_FAULT_FAIL(site)                     \
  (::cbq::util::FaultInjector::armedFast() &&    \
   ::cbq::util::FaultInjector::instance().shouldFail(site))
#else
#define CBQ_FAULT_POINT(site) \
  do {                        \
  } while (0)
#define CBQ_FAULT_FAIL(site) false
#endif

#include "sat/backend.hpp"

namespace cbq::sat {

const char* backendName(BackendKind kind) {
  switch (kind) {
    case BackendKind::Cnf:
      return "cnf";
    case BackendKind::Circuit:
      return "circuit";
    case BackendKind::Race:
      return "race";
    case BackendKind::Auto:
      return "auto";
  }
  return "cnf";
}

std::optional<BackendKind> parseBackendKind(std::string_view name) {
  if (name == "cnf") return BackendKind::Cnf;
  if (name == "circuit") return BackendKind::Circuit;
  if (name == "race") return BackendKind::Race;
  if (name == "auto") return BackendKind::Auto;
  return std::nullopt;
}

namespace {

/// One assumption-only query mapped onto the Holds/Fails/Unknown scale
/// with Sat meaning `satVerdict`.
Verdict querySat(SatBackend& backend, std::span<const aig::Lit> assumptions,
                 std::int64_t budget, Verdict satVerdict,
                 Verdict unsatVerdict) {
  switch (backend.solve(assumptions, budget)) {
    case Status::Sat:
      return satVerdict;
    case Status::Unsat:
      return unsatVerdict;
    case Status::Undef:
      break;
  }
  return Verdict::Unknown;
}

}  // namespace

Verdict checkEquiv(SatBackend& backend, aig::Lit a, aig::Lit b,
                   std::int64_t budget) {
  if (a == b) return Verdict::Holds;
  if (a == !b) return Verdict::Fails;
  {
    const aig::Lit assumptions[] = {a, !b};
    const Verdict v = querySat(backend, assumptions, budget, Verdict::Fails,
                               Verdict::Holds);
    if (v != Verdict::Holds) return v;
  }
  const aig::Lit assumptions[] = {!a, b};
  return querySat(backend, assumptions, budget, Verdict::Fails,
                  Verdict::Holds);
}

Verdict checkImplies(SatBackend& backend, aig::Lit a, aig::Lit b,
                     std::int64_t budget) {
  if (a == b || a.isFalse() || b.isTrue()) return Verdict::Holds;
  const aig::Lit assumptions[] = {a, !b};
  return querySat(backend, assumptions, budget, Verdict::Fails,
                  Verdict::Holds);
}

Verdict checkConstant(SatBackend& backend, aig::Lit a, bool value,
                      std::int64_t budget) {
  if (a.isConstant())
    return a.isTrue() == value ? Verdict::Holds : Verdict::Fails;
  const aig::Lit assumptions[] = {a ^ value};
  return querySat(backend, assumptions, budget, Verdict::Fails,
                  Verdict::Holds);
}

Verdict checkSat(SatBackend& backend, aig::Lit f, std::int64_t budget) {
  if (f.isTrue()) return Verdict::Holds;
  if (f.isFalse()) return Verdict::Fails;
  const aig::Lit assumptions[] = {f};
  return querySat(backend, assumptions, budget, Verdict::Holds,
                  Verdict::Fails);
}

Verdict checkEquivUnderCare(SatBackend& backend, aig::Lit notRef, aig::Lit a,
                            aig::Lit b, std::int64_t budget) {
  if (a == b) return Verdict::Holds;
  {
    const aig::Lit assumptions[] = {notRef, a, !b};
    const Verdict v = querySat(backend, assumptions, budget, Verdict::Fails,
                               Verdict::Holds);
    if (v != Verdict::Holds) return v;
  }
  const aig::Lit assumptions[] = {notRef, !a, b};
  return querySat(backend, assumptions, budget, Verdict::Fails,
                  Verdict::Holds);
}

}  // namespace cbq::sat

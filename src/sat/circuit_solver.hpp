#pragma once
// Circuit-native CDCL: the solver state IS the AIG.
//
// The CNF path pays an AIG → Tseitin → clause-database encode on every
// fresh cone before the first conflict can happen. This solver skips the
// translation entirely, in the style of circuit-SAT CDCL engines
// (Kuehlmann-style justification search, the Circuit-CaDiCaL exemplar):
//
//  * BCP walks the AND/INV structure directly. Per node the solver keeps
//    an intrusive fanout-edge list; assigning a node fires the gate rules
//    of its own AND and of every parent AND — no watch lists for the
//    circuit part, the graph is the watch structure.
//  * Decisions come from a justification frontier: a max-heap (on the
//    same EVSIDS activities the CNF solver uses, indexed by gate) of
//    AND nodes currently assigned false with no false fanin. A decision
//    falsifies one fanin of the hottest unjustified gate; when the
//    frontier drains at propagation fixpoint the assignment extends to a
//    total model (unassigned PIs default to false), so the solver can
//    answer Sat without assigning the rest of the manager.
//  * Learnt constraints are stored as extra multi-input AND gates in a
//    solver-owned arena: a learnt clause ¬l1 ∨ … ∨ ¬lk is recorded as
//    the gate AND(l1…lk) fixed to false, watched MiniSat-style by its
//    first two inputs. The arena never touches the shared aig::Aig.
//
// Everything else — first-UIP analysis with clause minimization, phase
// saving, Luby restarts, conflict budgets, assumption solving, the
// cooperative interrupt — mirrors sat::Solver so the two engines are
// interchangeable behind sat::SatBackend, query for query.
//
// A solver literal is an aig::Lit; a solver variable is an aig::NodeId.
// The bound manager may keep growing (quantification builds miters
// between queries): sync() lazily extends the per-node state, so nodes
// created after construction are first-class the moment they are used.

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "aig/aig.hpp"
#include "aig/lit.hpp"
#include "sat/backend.hpp"
#include "sat/types.hpp"

namespace cbq::audit {
struct Access;
}  // namespace cbq::audit

namespace cbq::sat {

class CircuitSolver final : public SatBackend {
 public:
  /// Binds to `aig` (non-owning; the manager must outlive the solver).
  explicit CircuitSolver(const aig::Aig& aig);

  CircuitSolver(const CircuitSolver&) = delete;
  CircuitSolver& operator=(const CircuitSolver&) = delete;

  // ----- SatBackend ----------------------------------------------------

  [[nodiscard]] const char* name() const override { return "circuit"; }

  Status solve(std::span<const aig::Lit> assumptions,
               std::int64_t conflictBudget) override {
    return solveLimited(assumptions, conflictBudget);
  }

  /// Restricts justification to the cones of `roots`: gates outside the
  /// focus never demand justification, so a Sat answer costs the query's
  /// cone, not the manager. Mirrors Solver::focusDecisions.
  void focusOn(std::span<const aig::Lit> roots) override;

  bool addClause(std::span<const aig::Lit> lits) override;
  bool addClause(std::initializer_list<aig::Lit> lits) {
    return addClause(std::span<const aig::Lit>(lits.begin(), lits.size()));
  }

  [[nodiscard]] bool modelOf(aig::VarId v) const override;

  void setInterrupt(std::function<bool()> callback) override {
    interrupt_ = std::move(callback);
  }

  /// The circuit backend has state for every node by construction.
  [[nodiscard]] bool knows(aig::Lit) const override { return true; }

  [[nodiscard]] std::uint64_t conflicts() const override {
    return conflicts_;
  }
  [[nodiscard]] std::uint64_t decisions() const override {
    return decisions_;
  }
  [[nodiscard]] std::uint64_t propagations() const override {
    return propagations_;
  }

  /// The cone is the solver state — nothing is encoded, nothing bloats.
  [[nodiscard]] std::size_t encodedNodes() const override { return 0; }

  // ----- direct surface (mirrors sat::Solver) --------------------------

  Status solveLimited(std::span<const aig::Lit> assumptions,
                      std::int64_t conflictBudget);

  /// Back to whole-manager justification.
  void unfocus();

  [[nodiscard]] bool okay() const { return ok_; }

  /// Model value of a literal after a Sat answer (Undef = unconstrained).
  [[nodiscard]] LBool modelValue(aig::Lit l) const {
    const aig::NodeId n = l.node();
    if (n >= modelStamp_.size() || modelStamp_[n] != modelEpoch_)
      return LBool::Undef;
    return lxor(lbool(modelVal_[n] != 0), l.negated());
  }

  /// After Unsat under assumptions: negated contradictory assumptions.
  [[nodiscard]] const std::vector<aig::Lit>& conflictCore() const {
    return conflictCore_;
  }

  [[nodiscard]] std::size_t numPermanents() const {
    return permanents_.size();
  }
  [[nodiscard]] std::size_t numLearnts() const { return learnts_.size(); }

 private:
  friend struct ::cbq::audit::Access;

  using NodeId = aig::NodeId;

  // Learnt-gate arena: same layout as Solver's clause arena —
  // [inputs<<1|learnt][activity-bits][lit 0]…[lit n-1], the first two
  // literals watched. Record = multi-input AND over the NEGATED stored
  // literals, fixed false (stored lits are the clause view).
  using GateRef = std::uint32_t;
  static constexpr GateRef kNoRef = 0xffffffffu;
  static constexpr std::uint32_t kNoLitRaw = 0xffffffffu;
  static constexpr std::uint32_t kNoEdge = 0xffffffffu;

  struct Watcher {
    GateRef gref;
    aig::Lit blocker;
  };

  /// Why a node holds its value. Gate implications carry their (at most
  /// two) antecedents inline in clause polarity — the implication
  /// (¬a ∨ ¬b ∨ p) is stored as {a:¬a, b:¬b}, every stored literal false
  /// when the reason is created. Arena constraints carry their GateRef
  /// (implied literal swapped to position 0, MiniSat discipline).
  /// Decisions and assumptions carry neither.
  struct Reason {
    std::uint32_t a = kNoLitRaw;
    std::uint32_t b = kNoLitRaw;
    GateRef ref = kNoRef;

    [[nodiscard]] bool isNone() const {
      return ref == kNoRef && a == kNoLitRaw;
    }
  };

  // Arena accessors.
  [[nodiscard]] std::uint32_t gateSize(GateRef g) const {
    return arena_[g] >> 1;
  }
  [[nodiscard]] bool gateLearnt(GateRef g) const {
    return (arena_[g] & 1) != 0;
  }
  [[nodiscard]] aig::Lit gateLit(GateRef g, std::uint32_t i) const {
    return aig::Lit::fromRaw(arena_[g + 2 + i]);
  }
  void setGateLit(GateRef g, std::uint32_t i, aig::Lit l) {
    arena_[g + 2 + i] = l.raw();
  }
  [[nodiscard]] float gateActivity(GateRef g) const;
  void setGateActivity(GateRef g, float a);

  GateRef allocGate(std::span<const aig::Lit> lits, bool learnt);
  void attachGate(GateRef g);
  void detachGate(GateRef g);
  [[nodiscard]] bool gateLocked(GateRef g) const;

  // Assignment handling.
  [[nodiscard]] LBool value(aig::Lit l) const {
    return lxor(assigns_[l.node()], l.negated());
  }
  [[nodiscard]] LBool nodeValue(NodeId n) const { return assigns_[n]; }
  [[nodiscard]] int decisionLevel() const {
    return static_cast<int>(trailLim_.size());
  }
  void newDecisionLevel() {
    trailLim_.push_back(static_cast<int>(trail_.size()));
  }
  void uncheckedEnqueue(aig::Lit p, Reason from);
  void cancelUntil(int level);

  /// True when some fanin of AND node `n` is assigned false.
  [[nodiscard]] bool justified(NodeId n) const {
    return value(aig_->fanin0(n)) == LBool::False ||
           value(aig_->fanin1(n)) == LBool::False;
  }

  /// Focus membership. Epoch-stamped so focusOn costs the cone, not the
  /// manager: a node is in focus iff its stamp matches the current
  /// focus epoch. Unfocused solvers treat every node as in focus.
  [[nodiscard]] bool inFocus(NodeId n) const {
    return !focused_ || focusStamp_[n] == focusEpoch_;
  }

  // Propagation. On conflict conflictGate_/conflictLits_ hold the
  // conflicting constraint in clause view (every literal false).
  bool propagate();
  bool propagateGate(aig::Lit p);
  bool propagateWatches(aig::Lit p);
  bool enqueueImplied(aig::Lit p, Reason from);

  // Conflict analysis.
  void analyze(std::vector<aig::Lit>& outLearnt, int& outBtLevel);
  [[nodiscard]] bool litRedundant(aig::Lit p);
  void analyzeFinal(aig::Lit p, std::vector<aig::Lit>& outCore);

  // Branching = justification.
  void varBumpActivity(NodeId n);
  void varDecayActivity() { varInc_ *= (1.0 / kVarDecay); }
  void claBumpActivity(GateRef g);
  void claDecayActivity() { claInc_ *= (1.0f / kClaDecay); }
  aig::Lit pickJustification();

  // Justification frontier (max-heap on activity over AND nodes).
  void frontierClear();
  void frontierInsert(NodeId n);
  void frontierDecrease(NodeId n);
  NodeId frontierPop();
  [[nodiscard]] bool frontierEmpty() const { return heap_.empty(); }
  [[nodiscard]] bool inFrontier(NodeId n) const {
    return heapIndex_[n] >= 0;
  }
  void heapUp(int i);
  void heapDown(int i);
  void rebuildFrontierFromTrail();

  /// Extends per-node state to the manager's current size and registers
  /// the fanout edges of newly created ANDs.
  void sync();

  void reduceDB();
  Status search(std::int64_t conflictsAllowed);

  // ----- data ----------------------------------------------------------

  const aig::Aig* aig_;
  NodeId syncedNodes_ = 0;
  bool ok_ = true;

  // Fanout edges: edge id 2*parent+slot; head_ indexed by fanin node.
  std::vector<std::uint32_t> head_;
  std::vector<std::uint32_t> nextEdge_;

  // Learnt-gate arena.
  std::vector<std::uint32_t> arena_;
  std::vector<GateRef> permanents_;
  std::vector<GateRef> learnts_;
  std::vector<std::vector<Watcher>> watches_;  // indexed by Lit::raw()

  std::vector<LBool> assigns_;        // per node, value of Lit(n, false)
  std::vector<std::uint8_t> polarity_;  // last assigned lit's negated bit
  std::vector<int> levels_;
  std::vector<Reason> reasons_;
  std::vector<aig::Lit> trail_;
  std::vector<int> trailLim_;
  int qhead_ = 0;

  std::vector<double> activity_;
  std::vector<std::uint32_t> focusStamp_;  // == focusEpoch_ -> in focus
  std::uint32_t focusEpoch_ = 0;
  bool focused_ = false;
  double varInc_ = 1.0;
  float claInc_ = 1.0f;
  std::vector<NodeId> heap_;
  std::vector<int> heapIndex_;

  std::vector<aig::Lit> assumptions_;
  std::vector<aig::Lit> conflictCore_;
  // Model = the trail at the Sat answer, epoch-stamped: recording it
  // costs O(assigned), not O(manager). Stale stamps read as Undef.
  std::vector<std::uint32_t> modelStamp_;
  std::vector<std::uint8_t> modelVal_;
  std::uint32_t modelEpoch_ = 0;
  std::function<bool()> interrupt_;

  // Conflict in clause view: a gate ref, or up to 3 inline literals.
  GateRef conflictGate_ = kNoRef;
  std::vector<aig::Lit> conflictLits_;

  // Scratch for analyze().
  std::vector<std::uint8_t> seen_;
  std::vector<aig::Lit> analyzeToClear_;

  std::uint64_t conflicts_ = 0;
  std::uint64_t decisions_ = 0;
  std::uint64_t propagations_ = 0;
  double maxLearnts_ = 0.0;

  static constexpr double kVarDecay = 0.95;
  static constexpr float kClaDecay = 0.999f;
  static constexpr int kRestartBase = 100;
};

}  // namespace cbq::sat

#pragma once
// Basic SAT types: variables, literals and the three-valued lbool.
//
// The encoding follows the MiniSat convention: a literal packs a variable
// index and a sign into one int (2*var + sign), so literals index arrays
// (watch lists, activity tables) directly.

#include <cstdint>
#include <vector>

namespace cbq::sat {

/// Variable index, 0-based. Negative values are invalid.
using Var = std::int32_t;

inline constexpr Var kUndefVar = -1;

/// A SAT literal: variable plus sign. sign()==true means negated.
class Lit {
 public:
  constexpr Lit() = default;
  constexpr Lit(Var v, bool negated)
      : x_(v + v + static_cast<std::int32_t>(negated)) {}

  static constexpr Lit fromIndex(std::int32_t idx) {
    Lit l;
    l.x_ = idx;
    return l;
  }

  [[nodiscard]] constexpr Var var() const { return x_ >> 1; }
  [[nodiscard]] constexpr bool sign() const { return (x_ & 1) != 0; }
  /// Dense index for literal-indexed arrays.
  [[nodiscard]] constexpr std::int32_t index() const { return x_; }

  constexpr Lit operator!() const { return fromIndex(x_ ^ 1); }
  constexpr Lit operator^(bool flip) const {
    return fromIndex(x_ ^ static_cast<std::int32_t>(flip));
  }

  constexpr bool operator==(const Lit&) const = default;
  constexpr auto operator<=>(const Lit&) const = default;

 private:
  std::int32_t x_ = -2;
};

inline constexpr Lit kUndefLit = Lit::fromIndex(-2);

/// Lifted boolean: True / False / Undef.
enum class LBool : std::uint8_t { False = 0, True = 1, Undef = 2 };

/// Lifted value of `b`.
inline constexpr LBool lbool(bool b) {
  return b ? LBool::True : LBool::False;
}

/// XORs a sign into a lifted boolean (Undef is absorbing).
inline constexpr LBool lxor(LBool v, bool flip) {
  if (v == LBool::Undef) return LBool::Undef;
  return lbool((v == LBool::True) != flip);
}

}  // namespace cbq::sat

#include "sat/solver.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>
#include <cstring>

#include "obs/tracer.hpp"
#include "util/fault.hpp"

namespace cbq::sat {

Solver::Solver() = default;

// ----- clause arena ------------------------------------------------------

float Solver::clauseActivity(ClauseRef c) const {
  return std::bit_cast<float>(arena_[c + 1]);
}

void Solver::setClauseActivity(ClauseRef c, float a) {
  arena_[c + 1] = std::bit_cast<std::uint32_t>(a);
}

Solver::ClauseRef Solver::allocClause(std::span<const Lit> lits, bool learnt) {
  const auto cref = static_cast<ClauseRef>(arena_.size());
  arena_.push_back((static_cast<std::uint32_t>(lits.size()) << 1) |
                   static_cast<std::uint32_t>(learnt));
  arena_.push_back(std::bit_cast<std::uint32_t>(0.0f));
  for (Lit l : lits) arena_.push_back(static_cast<std::uint32_t>(l.index()));
  return cref;
}

void Solver::attachClause(ClauseRef c) {
  const Lit l0 = clauseLit(c, 0);
  const Lit l1 = clauseLit(c, 1);
  watches_[static_cast<std::size_t>((!l0).index())].push_back({c, l1});
  watches_[static_cast<std::size_t>((!l1).index())].push_back({c, l0});
}

void Solver::detachClause(ClauseRef c) {
  auto erase = [&](Lit watched) {
    auto& ws = watches_[static_cast<std::size_t>((!watched).index())];
    for (std::size_t i = 0; i < ws.size(); ++i) {
      if (ws[i].cref == c) {
        ws[i] = ws.back();
        ws.pop_back();
        return;
      }
    }
  };
  erase(clauseLit(c, 0));
  erase(clauseLit(c, 1));
}

bool Solver::clauseLocked(ClauseRef c) const {
  const Lit l0 = clauseLit(c, 0);
  return value(l0) == LBool::True &&
         reasons_[static_cast<std::size_t>(l0.var())] == c;
}

void Solver::removeClause(ClauseRef c) {
  detachClause(c);
  // The arena slot is abandoned; at our problem sizes the waste is
  // negligible and skipping garbage collection keeps ClauseRefs stable.
}

// ----- variables -----------------------------------------------------------

Var Solver::newVar() {
  const Var v = static_cast<Var>(assigns_.size());
  assigns_.push_back(LBool::Undef);
  polarity_.push_back(true);  // default phase: negative (MiniSat default)
  levels_.push_back(0);
  reasons_.push_back(kNoReason);
  activity_.push_back(0.0);
  decidable_.push_back(1);
  seen_.push_back(false);
  heapIndex_.push_back(-1);
  watches_.emplace_back();
  watches_.emplace_back();
  model_.push_back(LBool::Undef);
  heapInsert(v);
  return v;
}

// ----- order heap (max-heap on activity) -----------------------------------

void Solver::heapUp(int i) {
  const Var v = heap_[static_cast<std::size_t>(i)];
  while (i > 0) {
    const int parent = (i - 1) >> 1;
    const Var pv = heap_[static_cast<std::size_t>(parent)];
    if (activity_[static_cast<std::size_t>(v)] <=
        activity_[static_cast<std::size_t>(pv)])
      break;
    heap_[static_cast<std::size_t>(i)] = pv;
    heapIndex_[static_cast<std::size_t>(pv)] = i;
    i = parent;
  }
  heap_[static_cast<std::size_t>(i)] = v;
  heapIndex_[static_cast<std::size_t>(v)] = i;
}

void Solver::heapDown(int i) {
  const Var v = heap_[static_cast<std::size_t>(i)];
  const int n = static_cast<int>(heap_.size());
  for (;;) {
    int child = 2 * i + 1;
    if (child >= n) break;
    if (child + 1 < n &&
        activity_[static_cast<std::size_t>(heap_[static_cast<std::size_t>(
            child + 1)])] >
            activity_[static_cast<std::size_t>(
                heap_[static_cast<std::size_t>(child)])])
      ++child;
    const Var cv = heap_[static_cast<std::size_t>(child)];
    if (activity_[static_cast<std::size_t>(cv)] <=
        activity_[static_cast<std::size_t>(v)])
      break;
    heap_[static_cast<std::size_t>(i)] = cv;
    heapIndex_[static_cast<std::size_t>(cv)] = i;
    i = child;
  }
  heap_[static_cast<std::size_t>(i)] = v;
  heapIndex_[static_cast<std::size_t>(v)] = i;
}

void Solver::heapInsert(Var v) {
  if (inHeap(v)) return;
  heap_.push_back(v);
  heapIndex_[static_cast<std::size_t>(v)] =
      static_cast<int>(heap_.size()) - 1;
  heapUp(static_cast<int>(heap_.size()) - 1);
}

void Solver::heapDecrease(Var v) {
  if (inHeap(v)) heapUp(heapIndex_[static_cast<std::size_t>(v)]);
}

Var Solver::heapPop() {
  const Var top = heap_.front();
  heapIndex_[static_cast<std::size_t>(top)] = -1;
  const Var last = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) {
    heap_.front() = last;
    heapIndex_[static_cast<std::size_t>(last)] = 0;
    heapDown(0);
  }
  return top;
}

// ----- activities -----------------------------------------------------------

void Solver::varBumpActivity(Var v) {
  auto& act = activity_[static_cast<std::size_t>(v)];
  act += varInc_;
  if (act > 1e100) {
    for (auto& a : activity_) a *= 1e-100;
    varInc_ *= 1e-100;
  }
  heapDecrease(v);
}

void Solver::claBumpActivity(ClauseRef c) {
  const float a = clauseActivity(c) + claInc_;
  setClauseActivity(c, a);
  if (a > 1e20f) {
    for (const ClauseRef lc : learnts_)
      setClauseActivity(lc, clauseActivity(lc) * 1e-20f);
    claInc_ *= 1e-20f;
  }
}

// ----- assignment -----------------------------------------------------------

void Solver::uncheckedEnqueue(Lit p, ClauseRef from) {
  const auto v = static_cast<std::size_t>(p.var());
  assigns_[v] = lbool(!p.sign());
  levels_[v] = decisionLevel();
  reasons_[v] = from;
  trail_.push_back(p);
}

void Solver::cancelUntil(int level) {
  if (decisionLevel() <= level) return;
  const int bound = trailLim_[static_cast<std::size_t>(level)];
  for (int c = static_cast<int>(trail_.size()) - 1; c >= bound; --c) {
    const Lit p = trail_[static_cast<std::size_t>(c)];
    const auto v = static_cast<std::size_t>(p.var());
    assigns_[v] = LBool::Undef;
    polarity_[v] = p.sign();  // phase saving
    if (!inHeap(p.var())) heapInsert(p.var());
  }
  qhead_ = bound;
  trail_.resize(static_cast<std::size_t>(bound));
  trailLim_.resize(static_cast<std::size_t>(level));
}

// ----- clause addition -------------------------------------------------------

bool Solver::addClause(std::span<const Lit> lits) {
  assert(decisionLevel() == 0);
  if (!ok_) return false;

  std::vector<Lit> ps(lits.begin(), lits.end());
  std::sort(ps.begin(), ps.end());
  // Strip duplicates / false lits; detect tautologies and satisfied clauses.
  std::size_t j = 0;
  Lit prev = kUndefLit;
  for (const Lit l : ps) {
    if (value(l) == LBool::True || l == !prev) return true;  // satisfied/taut
    if (value(l) == LBool::False || l == prev) continue;     // drop
    ps[j++] = l;
    prev = l;
  }
  ps.resize(j);

  if (ps.empty()) {
    ok_ = false;
    return false;
  }
  if (ps.size() == 1) {
    uncheckedEnqueue(ps[0], kNoReason);
    ok_ = (propagate() == kNoReason);
    return ok_;
  }
  const ClauseRef c = allocClause(ps, /*learnt=*/false);
  clauses_.push_back(c);
  attachClause(c);
  return true;
}

// ----- propagation ------------------------------------------------------------

Solver::ClauseRef Solver::propagate() {
  ClauseRef confl = kNoReason;
  while (qhead_ < static_cast<int>(trail_.size())) {
    const Lit p = trail_[static_cast<std::size_t>(qhead_++)];
    ++propagations_;
    auto& ws = watches_[static_cast<std::size_t>(p.index())];
    std::size_t i = 0;
    std::size_t j = 0;
    const Lit falseLit = !p;
    while (i < ws.size()) {
      const Watcher w = ws[i];
      if (value(w.blocker) == LBool::True) {  // clause already satisfied
        ws[j++] = ws[i++];
        continue;
      }
      const ClauseRef c = w.cref;
      if (clauseLit(c, 0) == falseLit) {
        setClauseLit(c, 0, clauseLit(c, 1));
        setClauseLit(c, 1, falseLit);
      }
      ++i;
      const Lit first = clauseLit(c, 0);
      const Watcher ww{c, first};
      if (first != w.blocker && value(first) == LBool::True) {
        ws[j++] = ww;
        continue;
      }
      // Look for a new literal to watch.
      const std::uint32_t size = clauseSize(c);
      bool moved = false;
      for (std::uint32_t k = 2; k < size; ++k) {
        const Lit lk = clauseLit(c, k);
        if (value(lk) != LBool::False) {
          setClauseLit(c, 1, lk);
          setClauseLit(c, k, falseLit);
          watches_[static_cast<std::size_t>((!lk).index())].push_back(ww);
          moved = true;
          break;
        }
      }
      if (moved) continue;
      // Clause is unit or conflicting under the current assignment.
      ws[j++] = ww;
      if (value(first) == LBool::False) {
        confl = c;
        qhead_ = static_cast<int>(trail_.size());
        while (i < ws.size()) ws[j++] = ws[i++];
      } else {
        uncheckedEnqueue(first, c);
      }
    }
    ws.resize(j);
  }
  return confl;
}

// ----- conflict analysis --------------------------------------------------------

bool Solver::litRedundant(Lit p) {
  // Local minimization: p is redundant when every other literal of its
  // reason clause is already in the learnt clause (or at level 0).
  const ClauseRef r = reasons_[static_cast<std::size_t>(p.var())];
  if (r == kNoReason) return false;
  const std::uint32_t size = clauseSize(r);
  for (std::uint32_t k = 1; k < size; ++k) {
    const Lit q = clauseLit(r, k);
    const auto v = static_cast<std::size_t>(q.var());
    if (!seen_[v] && levels_[v] > 0) return false;
  }
  return true;
}

void Solver::analyze(ClauseRef confl, std::vector<Lit>& outLearnt,
                     int& outBtLevel) {
  int pathC = 0;
  Lit p = kUndefLit;
  outLearnt.clear();
  outLearnt.push_back(kUndefLit);  // placeholder for the asserting literal
  int index = static_cast<int>(trail_.size()) - 1;

  do {
    assert(confl != kNoReason);
    if (clauseLearnt(confl)) claBumpActivity(confl);
    const std::uint32_t size = clauseSize(confl);
    for (std::uint32_t k = (p == kUndefLit ? 0u : 1u); k < size; ++k) {
      const Lit q = clauseLit(confl, k);
      const auto v = static_cast<std::size_t>(q.var());
      if (!seen_[v] && levels_[v] > 0) {
        varBumpActivity(q.var());
        seen_[v] = true;
        if (levels_[v] >= decisionLevel())
          ++pathC;
        else
          outLearnt.push_back(q);
      }
    }
    while (!seen_[static_cast<std::size_t>(
        trail_[static_cast<std::size_t>(index)].var())])
      --index;
    p = trail_[static_cast<std::size_t>(index)];
    --index;
    confl = reasons_[static_cast<std::size_t>(p.var())];
    seen_[static_cast<std::size_t>(p.var())] = false;
    --pathC;
  } while (pathC > 0);
  outLearnt[0] = !p;

  // Clause minimization (keep a copy to reset `seen_` afterwards).
  analyzeToClear_.assign(outLearnt.begin() + 1, outLearnt.end());
  std::size_t j = 1;
  for (std::size_t i = 1; i < outLearnt.size(); ++i) {
    if (!litRedundant(outLearnt[i])) outLearnt[j++] = outLearnt[i];
  }
  outLearnt.resize(j);

  for (const Lit l : analyzeToClear_)
    seen_[static_cast<std::size_t>(l.var())] = false;

  if (outLearnt.size() == 1) {
    outBtLevel = 0;
  } else {
    std::size_t maxIdx = 1;
    for (std::size_t i = 2; i < outLearnt.size(); ++i) {
      if (levels_[static_cast<std::size_t>(outLearnt[i].var())] >
          levels_[static_cast<std::size_t>(outLearnt[maxIdx].var())])
        maxIdx = i;
    }
    std::swap(outLearnt[1], outLearnt[maxIdx]);
    outBtLevel = levels_[static_cast<std::size_t>(outLearnt[1].var())];
  }
}

void Solver::analyzeFinal(Lit p, std::vector<Lit>& outCore) {
  outCore.clear();
  outCore.push_back(p);
  if (decisionLevel() == 0) return;

  seen_[static_cast<std::size_t>(p.var())] = true;
  for (int i = static_cast<int>(trail_.size()) - 1;
       i >= trailLim_[0]; --i) {
    const Lit t = trail_[static_cast<std::size_t>(i)];
    const auto x = static_cast<std::size_t>(t.var());
    if (!seen_[x]) continue;
    const ClauseRef r = reasons_[x];
    if (r == kNoReason) {
      if (levels_[x] > 0) outCore.push_back(!t);
    } else {
      const std::uint32_t size = clauseSize(r);
      for (std::uint32_t k = 1; k < size; ++k) {
        const Lit q = clauseLit(r, k);
        const auto v = static_cast<std::size_t>(q.var());
        if (levels_[v] > 0) seen_[v] = true;
      }
    }
    seen_[x] = false;
  }
  seen_[static_cast<std::size_t>(p.var())] = false;
}

// ----- branching ----------------------------------------------------------------

Lit Solver::pickBranchLit() {
  // Unfocused variables are dropped on pop; focusDecisions() rebuilds the
  // heap, so they reappear as soon as a later focus includes them.
  while (!heapEmpty()) {
    const Var v = heapPop();
    if (decidable_[static_cast<std::size_t>(v)] != 0 &&
        value(v) == LBool::Undef)
      return Lit(v, polarity_[static_cast<std::size_t>(v)]);
  }
  return kUndefLit;
}

void Solver::focusDecisions(std::span<const Var> vars) {
  decidable_.assign(assigns_.size(), 0);
  for (const Var v : vars) decidable_[static_cast<std::size_t>(v)] = 1;
  // Rebuild the order heap over the focused unassigned variables; the
  // previous focus may have dropped some of them from the heap.
  heap_.clear();
  std::fill(heapIndex_.begin(), heapIndex_.end(), -1);
  for (std::size_t v = 0; v < assigns_.size(); ++v) {
    if (decidable_[v] != 0 && assigns_[v] == LBool::Undef)
      heapInsert(static_cast<Var>(v));
  }
}

void Solver::unfocusDecisions() {
  decidable_.assign(assigns_.size(), 1);
  heap_.clear();
  std::fill(heapIndex_.begin(), heapIndex_.end(), -1);
  for (std::size_t v = 0; v < assigns_.size(); ++v)
    if (assigns_[v] == LBool::Undef) heapInsert(static_cast<Var>(v));
}

// ----- learned clause DB ----------------------------------------------------------

void Solver::reduceDB() {
  std::sort(learnts_.begin(), learnts_.end(),
            [&](ClauseRef a, ClauseRef b) {
              return clauseActivity(a) < clauseActivity(b);
            });
  const std::size_t limit = learnts_.size() / 2;
  const float extraLim =
      claInc_ / static_cast<float>(std::max<std::size_t>(learnts_.size(), 1));
  std::size_t j = 0;
  for (std::size_t i = 0; i < learnts_.size(); ++i) {
    const ClauseRef c = learnts_[i];
    if (clauseSize(c) > 2 && !clauseLocked(c) &&
        (i < limit || clauseActivity(c) < extraLim)) {
      removeClause(c);
    } else {
      learnts_[j++] = c;
    }
  }
  learnts_.resize(j);
}

// ----- search -----------------------------------------------------------------------

double Solver::luby(double y, int x) {
  int size = 1;
  int seq = 0;
  while (size < x + 1) {
    ++seq;
    size = 2 * size + 1;
  }
  while (size - 1 != x) {
    size = (size - 1) >> 1;
    --seq;
    x %= size;
  }
  return std::pow(y, seq);
}

Status Solver::search(std::int64_t conflictsAllowed) {
  std::int64_t conflictsHere = 0;
  std::uint32_t steps = 0;
  std::vector<Lit> learnt;
  for (;;) {
    // Cooperative interrupt: one poll per 256 propagate/decide rounds keeps
    // the callback cost invisible while bounding cancellation latency.
    if (interrupt_ && (++steps & 255u) == 0 && interrupt_()) {
      cancelUntil(0);
      return Status::Undef;
    }
    const ClauseRef confl = propagate();
    if (confl != kNoReason) {
      ++conflicts_;
      ++conflictsHere;
      if (decisionLevel() == 0) {
        // Contradiction independent of assumptions.
        ok_ = false;
        conflictCore_.clear();
        return Status::Unsat;
      }
      int btLevel = 0;
      analyze(confl, learnt, btLevel);
      cancelUntil(btLevel);
      if (learnt.size() == 1) {
        uncheckedEnqueue(learnt[0], kNoReason);
      } else {
        const ClauseRef c = allocClause(learnt, /*learnt=*/true);
        learnts_.push_back(c);
        attachClause(c);
        claBumpActivity(c);
        uncheckedEnqueue(learnt[0], c);
      }
      varDecayActivity();
      claDecayActivity();
    } else {
      if (conflictsHere >= conflictsAllowed) {
        cancelUntil(0);
        return Status::Undef;  // restart / budget checkpoint
      }
      if (static_cast<double>(learnts_.size()) -
              static_cast<double>(trail_.size()) >=
          maxLearnts_)
        reduceDB();

      Lit next = kUndefLit;
      while (decisionLevel() < static_cast<int>(assumptions_.size())) {
        const Lit p = assumptions_[static_cast<std::size_t>(decisionLevel())];
        if (value(p) == LBool::True) {
          newDecisionLevel();  // dummy level keeps indices aligned
        } else if (value(p) == LBool::False) {
          analyzeFinal(!p, conflictCore_);
          return Status::Unsat;
        } else {
          next = p;
          break;
        }
      }
      if (next == kUndefLit) {
        ++decisions_;
        next = pickBranchLit();
        if (next == kUndefLit) {
          model_ = assigns_;  // complete assignment found
          return Status::Sat;
        }
      }
      newDecisionLevel();
      uncheckedEnqueue(next, kNoReason);
    }
  }
}

Status Solver::solve(std::span<const Lit> assumptions) {
  return solveLimited(assumptions, -1);
}

Status Solver::solveLimited(std::span<const Lit> assumptions,
                            std::int64_t conflictBudget) {
  CBQ_OBS_SPAN("sat", "solve");
  // Injection site: throw-mode blows up the solve (containment testing);
  // fail-mode reports Undef through the normal inconclusive path, which
  // callers must already handle (budget exhaustion looks identical).
  CBQ_FAULT_POINT("sat.solve");
  if (CBQ_FAULT_FAIL("sat.solve")) return Status::Undef;
  conflictCore_.clear();
  if (!ok_) return Status::Unsat;
  assumptions_.assign(assumptions.begin(), assumptions.end());

  maxLearnts_ =
      std::max(static_cast<double>(clauses_.size()) * 0.3, 1000.0);
  std::int64_t remaining = conflictBudget;
  int restarts = 0;
  Status st = Status::Undef;
  while (st == Status::Undef) {
    if (interrupt_ && interrupt_()) break;
    std::int64_t allowed = static_cast<std::int64_t>(
        luby(2.0, restarts) * kRestartBase);
    if (conflictBudget >= 0) {
      if (remaining <= 0) break;
      allowed = std::min(allowed, remaining);
    }
    const std::uint64_t before = conflicts_;
    st = search(allowed);
    if (conflictBudget >= 0)
      remaining -= static_cast<std::int64_t>(conflicts_ - before);
    ++restarts;
  }
  cancelUntil(0);
  assumptions_.clear();
  return st;
}

}  // namespace cbq::sat

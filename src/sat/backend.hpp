#pragma once
// Backend-neutral SAT query surface.
//
// Two engines answer the same circuit-level questions: the clause-level
// `sat::Solver` behind a lazy Tseitin encoding (cnf::AigCnf), and the
// circuit-native `sat::CircuitSolver` whose propagation walks the AIG
// directly. Both sit behind this interface so the sweep/quantification
// layers can race them per query or pick one adaptively, and so trace
// reconstruction and all-SAT enumeration can run on either without
// knowing which.
//
// Queries and learned facts are phrased entirely in aig::Lit — the CNF
// backend translates to solver variables internally; the circuit backend
// uses them as-is (an AIG literal IS a circuit-solver literal).

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string_view>

#include "aig/aig.hpp"
#include "aig/lit.hpp"
#include "sat/solver.hpp"

namespace cbq::sat {

/// Which engine(s) a SweepContext routes queries to. `Race` runs both on
/// every query and keeps the faster definitive answer; `Auto` keeps a
/// per-context EWMA of per-backend query times and routes to the
/// historical winner (with periodic probes of the loser).
enum class BackendKind : std::uint8_t { Cnf, Circuit, Race, Auto };

[[nodiscard]] const char* backendName(BackendKind kind);

/// Parses "cnf" | "circuit" | "race" | "auto"; nullopt on anything else.
[[nodiscard]] std::optional<BackendKind> parseBackendKind(
    std::string_view name);

/// Three-valued answer of a budgeted semantic check. Holds/Fails are
/// definitive; Unknown means the budget or an interrupt cut the query
/// short. (cnf::Verdict aliases this type.)
enum class Verdict : std::uint8_t { Holds, Fails, Unknown };

/// One SAT engine bound to one AIG manager. Implementations: the
/// CNF-encoding wrapper (cnf::CnfSolverBackend) and the circuit-native
/// solver (sat::CircuitSolver).
class SatBackend {
 public:
  virtual ~SatBackend() = default;

  /// Stable short name for reports: "cnf" or "circuit".
  [[nodiscard]] virtual const char* name() const = 0;

  /// Satisfiability of the bound circuit under `assumptions`, bounded by
  /// `conflictBudget` (< 0 = unlimited). Undef on budget/interrupt.
  virtual Status solve(std::span<const aig::Lit> assumptions,
                       std::int64_t conflictBudget) = 0;

  /// Restricts decisions to the cones of `roots` (and prepares whatever
  /// per-cone state the engine needs — the CNF backend encodes here).
  virtual void focusOn(std::span<const aig::Lit> roots) = 0;

  /// Adds a permanent constraint clause over AIG literals. Returns false
  /// when the clause database became unsatisfiable.
  virtual bool addClause(std::span<const aig::Lit> lits) = 0;

  /// Model value of PI variable `v` after a Sat answer (false for
  /// variables the engine never touched — a free input).
  [[nodiscard]] virtual bool modelOf(aig::VarId v) const = 0;

  /// Cooperative cancellation hook, polled during search.
  virtual void setInterrupt(std::function<bool()> fn) = 0;

  /// True when the engine already has state for `l`'s node (the CNF
  /// backend: an encoded variable). Used to gate fact-learning so a
  /// side channel never forces an encode the backend would not have done.
  [[nodiscard]] virtual bool knows(aig::Lit l) const = 0;

  /// Effort counters, cumulative over the engine's lifetime.
  [[nodiscard]] virtual std::uint64_t conflicts() const = 0;
  [[nodiscard]] virtual std::uint64_t decisions() const = 0;
  [[nodiscard]] virtual std::uint64_t propagations() const = 0;

  /// Size of the engine's derived encoding, for bloat-driven recycling.
  /// The circuit backend reports 0: the cone IS the solver state, there
  /// is nothing to recycle.
  [[nodiscard]] virtual std::size_t encodedNodes() const = 0;
};

// Budgeted semantic checks over any backend. Same contracts as the
// cnf::check* family (aig_cnf.hpp): structural short-circuits first,
// then assumption-only queries; Unknown on budget exhaustion.

/// a == b everywhere?
[[nodiscard]] Verdict checkEquiv(SatBackend& backend, aig::Lit a, aig::Lit b,
                                 std::int64_t budget = -1);

/// a -> b everywhere?
[[nodiscard]] Verdict checkImplies(SatBackend& backend, aig::Lit a,
                                   aig::Lit b, std::int64_t budget = -1);

/// a == value everywhere?
[[nodiscard]] Verdict checkConstant(SatBackend& backend, aig::Lit a,
                                    bool value, std::int64_t budget = -1);

/// Is f satisfiable? Holds = yes, Fails = no.
[[nodiscard]] Verdict checkSat(SatBackend& backend, aig::Lit f,
                               std::int64_t budget = -1);

/// a == b on every input satisfying `notRef` (care-set equivalence: the
/// DC-simplification query assumes the don't-care condition's literal).
[[nodiscard]] Verdict checkEquivUnderCare(SatBackend& backend,
                                          aig::Lit notRef, aig::Lit a,
                                          aig::Lit b,
                                          std::int64_t budget = -1);

/// Backend-neutral twin of exportEffort(stats, Solver) in solver.hpp:
/// canonical sat.conflicts / sat.decisions / sat.propagations counters.
inline void exportEffort(obs::Metrics& stats, const SatBackend& backend) {
  stats.add("sat.conflicts",
            static_cast<std::int64_t>(backend.conflicts()));
  stats.add("sat.decisions",
            static_cast<std::int64_t>(backend.decisions()));
  stats.add("sat.propagations",
            static_cast<std::int64_t>(backend.propagations()));
}

}  // namespace cbq::sat

#include "sat/circuit_solver.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>

#include "obs/tracer.hpp"
#include "util/fault.hpp"

namespace cbq::sat {

namespace {
/// Sentinel for "no literal" returned by pickJustification().
constexpr std::uint32_t kNoPick = 0xffffffffu;
}  // namespace

CircuitSolver::CircuitSolver(const aig::Aig& aig) : aig_(&aig) { sync(); }

// ----- manager sync --------------------------------------------------------

void CircuitSolver::sync() {
  const auto total = static_cast<NodeId>(aig_->numNodes());
  if (syncedNodes_ == total) return;
  head_.resize(total, kNoEdge);
  nextEdge_.resize(2 * static_cast<std::size_t>(total), kNoEdge);
  assigns_.resize(total, LBool::Undef);
  polarity_.resize(total, 1);  // default phase: false (MiniSat default)
  levels_.resize(total, 0);
  reasons_.resize(total);
  activity_.resize(total, 0.0);
  focusStamp_.resize(total, 0);  // stamp 0 never equals a live epoch
  heapIndex_.resize(total, -1);
  seen_.resize(total, 0);
  watches_.resize(2 * static_cast<std::size_t>(total));
  modelStamp_.resize(total, 0);
  modelVal_.resize(total, 0);
  for (NodeId n = syncedNodes_; n < total; ++n) {
    if (!aig_->isAnd(n)) continue;
    const std::uint32_t e0 = 2 * n;
    const std::uint32_t e1 = 2 * n + 1;
    const NodeId s0 = aig_->fanin0(n).node();
    nextEdge_[e0] = head_[s0];
    head_[s0] = e0;
    const NodeId s1 = aig_->fanin1(n).node();
    nextEdge_[e1] = head_[s1];
    head_[s1] = e1;
  }
  const bool firstSync = (syncedNodes_ == 0);
  syncedNodes_ = total;
  // Node 0 is the constant-FALSE node: pin it at level 0 once. Strashing
  // folds constant fanins, so no AND ever watches it.
  if (firstSync && total > 0) uncheckedEnqueue(aig::kTrue, Reason{});
}

// ----- learnt-gate arena ---------------------------------------------------

float CircuitSolver::gateActivity(GateRef g) const {
  return std::bit_cast<float>(arena_[g + 1]);
}

void CircuitSolver::setGateActivity(GateRef g, float a) {
  arena_[g + 1] = std::bit_cast<std::uint32_t>(a);
}

CircuitSolver::GateRef CircuitSolver::allocGate(
    std::span<const aig::Lit> lits, bool learnt) {
  const auto g = static_cast<GateRef>(arena_.size());
  arena_.push_back((static_cast<std::uint32_t>(lits.size()) << 1) |
                   static_cast<std::uint32_t>(learnt));
  arena_.push_back(std::bit_cast<std::uint32_t>(0.0f));
  for (const aig::Lit l : lits) arena_.push_back(l.raw());
  return g;
}

void CircuitSolver::attachGate(GateRef g) {
  const aig::Lit l0 = gateLit(g, 0);
  const aig::Lit l1 = gateLit(g, 1);
  watches_[(!l0).raw()].push_back({g, l1});
  watches_[(!l1).raw()].push_back({g, l0});
}

void CircuitSolver::detachGate(GateRef g) {
  auto erase = [&](aig::Lit watched) {
    auto& ws = watches_[(!watched).raw()];
    for (std::size_t i = 0; i < ws.size(); ++i) {
      if (ws[i].gref == g) {
        ws[i] = ws.back();
        ws.pop_back();
        return;
      }
    }
  };
  erase(gateLit(g, 0));
  erase(gateLit(g, 1));
}

bool CircuitSolver::gateLocked(GateRef g) const {
  const aig::Lit l0 = gateLit(g, 0);
  return value(l0) == LBool::True && reasons_[l0.node()].ref == g;
}

// ----- justification frontier (max-heap on activity) -----------------------

void CircuitSolver::heapUp(int i) {
  const NodeId v = heap_[static_cast<std::size_t>(i)];
  while (i > 0) {
    const int parent = (i - 1) >> 1;
    const NodeId pv = heap_[static_cast<std::size_t>(parent)];
    if (activity_[v] <= activity_[pv]) break;
    heap_[static_cast<std::size_t>(i)] = pv;
    heapIndex_[pv] = i;
    i = parent;
  }
  heap_[static_cast<std::size_t>(i)] = v;
  heapIndex_[v] = i;
}

void CircuitSolver::heapDown(int i) {
  const NodeId v = heap_[static_cast<std::size_t>(i)];
  const int n = static_cast<int>(heap_.size());
  for (;;) {
    int child = 2 * i + 1;
    if (child >= n) break;
    if (child + 1 < n &&
        activity_[heap_[static_cast<std::size_t>(child + 1)]] >
            activity_[heap_[static_cast<std::size_t>(child)]])
      ++child;
    const NodeId cv = heap_[static_cast<std::size_t>(child)];
    if (activity_[cv] <= activity_[v]) break;
    heap_[static_cast<std::size_t>(i)] = cv;
    heapIndex_[cv] = i;
    i = child;
  }
  heap_[static_cast<std::size_t>(i)] = v;
  heapIndex_[v] = i;
}

void CircuitSolver::frontierInsert(NodeId n) {
  if (inFrontier(n)) return;
  heap_.push_back(n);
  heapIndex_[n] = static_cast<int>(heap_.size()) - 1;
  heapUp(static_cast<int>(heap_.size()) - 1);
}

void CircuitSolver::frontierDecrease(NodeId n) {
  if (inFrontier(n)) heapUp(heapIndex_[n]);
}

CircuitSolver::NodeId CircuitSolver::frontierPop() {
  const NodeId top = heap_.front();
  heapIndex_[top] = -1;
  const NodeId last = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) {
    heap_.front() = last;
    heapIndex_[last] = 0;
    heapDown(0);
  }
  return top;
}

void CircuitSolver::frontierClear() {
  for (const NodeId n : heap_) heapIndex_[n] = -1;
  heap_.clear();
}

void CircuitSolver::rebuildFrontierFromTrail() {
  frontierClear();
  // Every assigned node sits on the trail (level-0 entries persist), so
  // one trail scan finds every gate that currently demands justification.
  for (const aig::Lit p : trail_) {
    const NodeId n = p.node();
    if (p.negated() && inFocus(n) && aig_->isAnd(n) && !justified(n))
      frontierInsert(n);
  }
}

// ----- activities ----------------------------------------------------------

void CircuitSolver::varBumpActivity(NodeId n) {
  auto& act = activity_[n];
  act += varInc_;
  if (act > 1e100) {
    for (auto& a : activity_) a *= 1e-100;
    varInc_ *= 1e-100;
  }
  frontierDecrease(n);
}

void CircuitSolver::claBumpActivity(GateRef g) {
  const float a = gateActivity(g) + claInc_;
  setGateActivity(g, a);
  if (a > 1e20f) {
    for (const GateRef lg : learnts_)
      setGateActivity(lg, gateActivity(lg) * 1e-20f);
    claInc_ *= 1e-20f;
  }
}

// ----- assignment ----------------------------------------------------------

void CircuitSolver::uncheckedEnqueue(aig::Lit p, Reason from) {
  const NodeId n = p.node();
  assigns_[n] = lbool(!p.negated());
  levels_[n] = decisionLevel();
  reasons_[n] = from;
  trail_.push_back(p);
}

void CircuitSolver::cancelUntil(int level) {
  if (decisionLevel() <= level) return;
  const int bound = trailLim_[static_cast<std::size_t>(level)];
  for (int c = static_cast<int>(trail_.size()) - 1; c >= bound; --c) {
    const aig::Lit p = trail_[static_cast<std::size_t>(c)];
    const NodeId n = p.node();
    assigns_[n] = LBool::Undef;
    polarity_[n] = static_cast<std::uint8_t>(p.negated());  // phase saving
    // Unassigning n may strip a parent gate of its only justification:
    // re-arm the frontier for parents that stay assigned false. Stale
    // entries are harmless (validity is re-checked at pop).
    for (std::uint32_t e = head_[n]; e != kNoEdge; e = nextEdge_[e]) {
      const NodeId m = e >> 1;
      if (nodeValue(m) == LBool::False && inFocus(m) && !justified(m))
        frontierInsert(m);
    }
  }
  qhead_ = bound;
  trail_.resize(static_cast<std::size_t>(bound));
  trailLim_.resize(static_cast<std::size_t>(level));
}

// ----- clause addition -----------------------------------------------------

bool CircuitSolver::addClause(std::span<const aig::Lit> lits) {
  assert(decisionLevel() == 0);
  sync();
  if (!ok_) return false;

  std::vector<aig::Lit> ps(lits.begin(), lits.end());
  std::sort(ps.begin(), ps.end());
  std::size_t j = 0;
  aig::Lit prev = aig::Lit::fromRaw(kNoLitRaw);
  for (const aig::Lit l : ps) {
    if (value(l) == LBool::True || l == !prev) return true;  // satisfied/taut
    if (value(l) == LBool::False || l == prev) continue;     // drop
    ps[j++] = l;
    prev = l;
  }
  ps.resize(j);

  if (ps.empty()) {
    ok_ = false;
    return false;
  }
  if (ps.size() == 1) {
    uncheckedEnqueue(ps[0], Reason{});
    ok_ = propagate();
    return ok_;
  }
  const GateRef g = allocGate(ps, /*learnt=*/false);
  permanents_.push_back(g);
  attachGate(g);
  return true;
}

// ----- propagation ---------------------------------------------------------

bool CircuitSolver::enqueueImplied(aig::Lit p, Reason from) {
  const LBool v = value(p);
  if (v == LBool::True) return true;
  if (v == LBool::False) {
    // Conflict clause = implied literal + reason tail, every literal
    // false under the current assignment.
    conflictGate_ = kNoRef;
    conflictLits_.clear();
    conflictLits_.push_back(p);
    if (from.a != kNoLitRaw) conflictLits_.push_back(aig::Lit::fromRaw(from.a));
    if (from.b != kNoLitRaw) conflictLits_.push_back(aig::Lit::fromRaw(from.b));
    return false;
  }
  uncheckedEnqueue(p, from);
  return true;
}

bool CircuitSolver::propagateGate(aig::Lit p) {
  const NodeId n = p.node();
  // Structural rules are enforced only inside the focus: out-of-focus
  // gates are the circuit analog of never-encoded CNF cones, and
  // propagating into them would evaluate the whole shared manager on
  // every query. Sound both ways: the query cone is entirely in focus,
  // so Unsat only uses enforced (valid) constraints and a Sat model
  // determines the roots through fully-enforced structure.
  if (aig_->isAnd(n) && inFocus(n)) {
    const aig::Lit f0 = aig_->fanin0(n);
    const aig::Lit f1 = aig_->fanin1(n);
    if (!p.negated()) {
      // n true → both fanins true; implication (¬n ∨ fi).
      const Reason r{(!aig::Lit(n, false)).raw(), kNoLitRaw, kNoRef};
      if (!enqueueImplied(f0, r)) return false;
      if (!enqueueImplied(f1, r)) return false;
    } else {
      const LBool v0 = value(f0);
      const LBool v1 = value(f1);
      if (v0 == LBool::True) {
        // One fanin true: the other must fall — (n ∨ ¬f0 ∨ ¬f1). A true
        // second fanin conflicts inside enqueueImplied.
        if (v1 != LBool::False &&
            !enqueueImplied(!f1,
                            Reason{aig::Lit(n, false).raw(), (!f0).raw(),
                                   kNoRef}))
          return false;
      } else if (v1 == LBool::True) {
        if (v0 != LBool::False &&
            !enqueueImplied(!f0,
                            Reason{aig::Lit(n, false).raw(), (!f1).raw(),
                                   kNoRef}))
          return false;
      } else if (v0 == LBool::Undef && v1 == LBool::Undef) {
        // No false fanin yet: the gate joins the justification frontier.
        frontierInsert(n);
      }
      // Some fanin already false: justified.
    }
  }
  // Parent rules via the fanout edges of n (in-focus parents only).
  for (std::uint32_t e = head_[n]; e != kNoEdge; e = nextEdge_[e]) {
    const NodeId m = e >> 1;
    if (!inFocus(m)) continue;
    const aig::Lit fl = (e & 1) != 0 ? aig_->fanin1(m) : aig_->fanin0(m);
    if (value(fl) == LBool::False) {
      // A false fanin forces the AND false — (¬m ∨ fl).
      if (!enqueueImplied(aig::Lit(m, true),
                          Reason{fl.raw(), kNoLitRaw, kNoRef}))
        return false;
    } else {
      const aig::Lit ol = (e & 1) != 0 ? aig_->fanin0(m) : aig_->fanin1(m);
      const LBool vm = nodeValue(m);
      const LBool vo = value(ol);
      if (vm == LBool::False) {
        // False AND, one fanin now true: other fanin falls or conflicts
        // — (m ∨ ¬f0 ∨ ¬f1).
        if (vo != LBool::False &&
            !enqueueImplied(!ol, Reason{aig::Lit(m, false).raw(), (!fl).raw(),
                                        kNoRef}))
          return false;
      } else if (vm == LBool::Undef && vo == LBool::True) {
        // Both fanins true → AND true — (¬f0 ∨ ¬f1 ∨ m).
        if (!enqueueImplied(aig::Lit(m, false),
                            Reason{(!fl).raw(), (!ol).raw(), kNoRef}))
          return false;
      }
      // vm == True: fanins were forced true when m was assigned.
    }
  }
  return true;
}

bool CircuitSolver::propagateWatches(aig::Lit p) {
  auto& ws = watches_[p.raw()];
  std::size_t i = 0;
  std::size_t j = 0;
  const aig::Lit falseLit = !p;
  bool okHere = true;
  while (i < ws.size()) {
    const Watcher w = ws[i];
    if (value(w.blocker) == LBool::True) {  // constraint already satisfied
      ws[j++] = ws[i++];
      continue;
    }
    const GateRef g = w.gref;
    if (gateLit(g, 0) == falseLit) {
      setGateLit(g, 0, gateLit(g, 1));
      setGateLit(g, 1, falseLit);
    }
    ++i;
    const aig::Lit first = gateLit(g, 0);
    const Watcher ww{g, first};
    if (first != w.blocker && value(first) == LBool::True) {
      ws[j++] = ww;
      continue;
    }
    // Look for a new input to watch.
    const std::uint32_t size = gateSize(g);
    bool moved = false;
    for (std::uint32_t k = 2; k < size; ++k) {
      const aig::Lit lk = gateLit(g, k);
      if (value(lk) != LBool::False) {
        setGateLit(g, 1, lk);
        setGateLit(g, k, falseLit);
        watches_[(!lk).raw()].push_back(ww);
        moved = true;
        break;
      }
    }
    if (moved) continue;
    // Unit or conflicting under the current assignment.
    ws[j++] = ww;
    if (value(first) == LBool::False) {
      conflictGate_ = g;
      conflictLits_.clear();
      okHere = false;
      qhead_ = static_cast<int>(trail_.size());
      while (i < ws.size()) ws[j++] = ws[i++];
    } else {
      uncheckedEnqueue(first, Reason{kNoLitRaw, kNoLitRaw, g});
    }
  }
  ws.resize(j);
  return okHere;
}

bool CircuitSolver::propagate() {
  while (qhead_ < static_cast<int>(trail_.size())) {
    const aig::Lit p = trail_[static_cast<std::size_t>(qhead_++)];
    ++propagations_;
    if (!propagateGate(p)) return false;
    if (!propagateWatches(p)) return false;
  }
  return true;
}

// ----- conflict analysis ---------------------------------------------------

bool CircuitSolver::litRedundant(aig::Lit p) {
  const Reason r = reasons_[p.node()];
  if (r.isNone()) return false;
  auto blocksRemoval = [&](aig::Lit q) {
    const NodeId v = q.node();
    return seen_[v] == 0 && levels_[v] > 0;
  };
  if (r.ref != kNoRef) {
    const std::uint32_t size = gateSize(r.ref);
    for (std::uint32_t k = 1; k < size; ++k)
      if (blocksRemoval(gateLit(r.ref, k))) return false;
  } else {
    if (blocksRemoval(aig::Lit::fromRaw(r.a))) return false;
    if (r.b != kNoLitRaw && blocksRemoval(aig::Lit::fromRaw(r.b)))
      return false;
  }
  return true;
}

void CircuitSolver::analyze(std::vector<aig::Lit>& outLearnt,
                            int& outBtLevel) {
  int pathC = 0;
  aig::Lit p = aig::Lit::fromRaw(kNoLitRaw);
  outLearnt.clear();
  outLearnt.push_back(aig::kFalse);  // placeholder for asserting literal
  int index = static_cast<int>(trail_.size()) - 1;

  auto visit = [&](aig::Lit q) {
    const NodeId v = q.node();
    if (seen_[v] == 0 && levels_[v] > 0) {
      varBumpActivity(v);
      seen_[v] = 1;
      if (levels_[v] >= decisionLevel())
        ++pathC;
      else
        outLearnt.push_back(q);
    }
  };

  // Seed with the conflicting constraint (clause view, all lits false).
  if (conflictGate_ != kNoRef) {
    if (gateLearnt(conflictGate_)) claBumpActivity(conflictGate_);
    const std::uint32_t size = gateSize(conflictGate_);
    for (std::uint32_t k = 0; k < size; ++k) visit(gateLit(conflictGate_, k));
  } else {
    for (const aig::Lit q : conflictLits_) visit(q);
  }

  for (;;) {
    while (seen_[trail_[static_cast<std::size_t>(index)].node()] == 0)
      --index;
    p = trail_[static_cast<std::size_t>(index)];
    --index;
    const Reason r = reasons_[p.node()];
    seen_[p.node()] = 0;
    --pathC;
    if (pathC <= 0) break;
    // Expand p's reason, skipping the implied literal.
    if (r.ref != kNoRef) {
      if (gateLearnt(r.ref)) claBumpActivity(r.ref);
      const std::uint32_t size = gateSize(r.ref);
      for (std::uint32_t k = 1; k < size; ++k) visit(gateLit(r.ref, k));
    } else {
      if (r.a != kNoLitRaw) visit(aig::Lit::fromRaw(r.a));
      if (r.b != kNoLitRaw) visit(aig::Lit::fromRaw(r.b));
    }
  }
  outLearnt[0] = !p;

  // Clause minimization (keep a copy to reset `seen_` afterwards).
  analyzeToClear_.assign(outLearnt.begin() + 1, outLearnt.end());
  for (const aig::Lit l : analyzeToClear_) seen_[l.node()] = 1;
  std::size_t j = 1;
  for (std::size_t i = 1; i < outLearnt.size(); ++i) {
    if (!litRedundant(outLearnt[i])) outLearnt[j++] = outLearnt[i];
  }
  outLearnt.resize(j);
  for (const aig::Lit l : analyzeToClear_) seen_[l.node()] = 0;

  if (outLearnt.size() == 1) {
    outBtLevel = 0;
  } else {
    std::size_t maxIdx = 1;
    for (std::size_t i = 2; i < outLearnt.size(); ++i) {
      if (levels_[outLearnt[i].node()] > levels_[outLearnt[maxIdx].node()])
        maxIdx = i;
    }
    std::swap(outLearnt[1], outLearnt[maxIdx]);
    outBtLevel = levels_[outLearnt[1].node()];
  }
}

void CircuitSolver::analyzeFinal(aig::Lit p, std::vector<aig::Lit>& outCore) {
  outCore.clear();
  outCore.push_back(p);
  if (decisionLevel() == 0) return;

  seen_[p.node()] = 1;
  for (int i = static_cast<int>(trail_.size()) - 1; i >= trailLim_[0]; --i) {
    const aig::Lit t = trail_[static_cast<std::size_t>(i)];
    const NodeId x = t.node();
    if (seen_[x] == 0) continue;
    const Reason r = reasons_[x];
    if (r.isNone()) {
      if (levels_[x] > 0) outCore.push_back(!t);
    } else if (r.ref != kNoRef) {
      const std::uint32_t size = gateSize(r.ref);
      for (std::uint32_t k = 1; k < size; ++k) {
        const NodeId v = gateLit(r.ref, k).node();
        if (levels_[v] > 0) seen_[v] = 1;
      }
    } else {
      const NodeId a = aig::Lit::fromRaw(r.a).node();
      if (levels_[a] > 0) seen_[a] = 1;
      if (r.b != kNoLitRaw) {
        const NodeId b = aig::Lit::fromRaw(r.b).node();
        if (levels_[b] > 0) seen_[b] = 1;
      }
    }
    seen_[x] = 0;
  }
  seen_[p.node()] = 0;
}

// ----- branching = justification -------------------------------------------

aig::Lit CircuitSolver::pickJustification() {
  while (!frontierEmpty()) {
    const NodeId m = frontierPop();
    // Lazy validity: the entry may be stale (gate unassigned, re-proven
    // true, out of the current focus, or justified meanwhile).
    if (nodeValue(m) != LBool::False || !inFocus(m)) continue;
    const aig::Lit f0 = aig_->fanin0(m);
    const aig::Lit f1 = aig_->fanin1(m);
    const LBool v0 = value(f0);
    const LBool v1 = value(f1);
    if (v0 == LBool::False || v1 == LBool::False) continue;  // justified
    // At propagation fixpoint a false gate with a true fanin has a false
    // other fanin, so both fanins are unassigned here; be robust anyway.
    const bool u0 = v0 == LBool::Undef;
    const bool u1 = v1 == LBool::Undef;
    if (!u0 && !u1) continue;
    aig::Lit pick;
    if (!u0) {
      pick = f1;
    } else if (!u1) {
      pick = f0;
    } else if (activity_[f0.node()] > activity_[f1.node()]) {
      pick = f0;
    } else if (activity_[f1.node()] > activity_[f0.node()]) {
      pick = f1;
    } else {
      // Activity tie: prefer the fanin whose saved phase already points
      // at "false" — re-falsifying it repeats the cheap direction.
      pick = polarity_[f0.node()] == static_cast<std::uint8_t>((!f0).negated())
                 ? f0
                 : f1;
    }
    return !pick;  // falsify the chosen fanin: justifies m on propagation
  }
  return aig::Lit::fromRaw(kNoPick);
}

// ----- focus ---------------------------------------------------------------

void CircuitSolver::focusOn(std::span<const aig::Lit> roots) {
  sync();
  focused_ = true;
  if (++focusEpoch_ == 0) {  // wrapped: stale stamps could alias epoch 0
    std::fill(focusStamp_.begin(), focusStamp_.end(), 0);
    focusEpoch_ = 1;
  }
  for (const aig::Lit r : roots) focusStamp_[r.node()] = focusEpoch_;
  frontierClear();
  // One cone walk both stamps the focus and rebuilds the justification
  // frontier: any in-focus gate demanding justification is in the cone,
  // so the (unboundedly growing) trail never needs scanning here.
  for (const NodeId n : aig_->coneAnds(roots)) {
    focusStamp_[n] = focusEpoch_;
    focusStamp_[aig_->fanin0(n).node()] = focusEpoch_;
    focusStamp_[aig_->fanin1(n).node()] = focusEpoch_;
    if (nodeValue(n) == LBool::False && !justified(n)) frontierInsert(n);
  }
}

void CircuitSolver::unfocus() {
  sync();
  focused_ = false;
  rebuildFrontierFromTrail();
}

// ----- learnt DB reduction -------------------------------------------------

void CircuitSolver::reduceDB() {
  std::sort(learnts_.begin(), learnts_.end(), [&](GateRef a, GateRef b) {
    return gateActivity(a) < gateActivity(b);
  });
  const std::size_t limit = learnts_.size() / 2;
  const float extraLim =
      claInc_ / static_cast<float>(std::max<std::size_t>(learnts_.size(), 1));
  std::size_t j = 0;
  for (std::size_t i = 0; i < learnts_.size(); ++i) {
    const GateRef g = learnts_[i];
    if (gateSize(g) > 2 && !gateLocked(g) &&
        (i < limit || gateActivity(g) < extraLim)) {
      detachGate(g);  // arena slot abandoned, refs stay stable
    } else {
      learnts_[j++] = g;
    }
  }
  learnts_.resize(j);
}

// ----- search --------------------------------------------------------------

namespace {
double lubySeq(double y, int x) {
  int size = 1;
  int seq = 0;
  while (size < x + 1) {
    ++seq;
    size = 2 * size + 1;
  }
  while (size - 1 != x) {
    size = (size - 1) >> 1;
    --seq;
    x %= size;
  }
  return std::pow(y, seq);
}
}  // namespace

Status CircuitSolver::search(std::int64_t conflictsAllowed) {
  std::int64_t conflictsHere = 0;
  std::uint32_t steps = 0;
  std::vector<aig::Lit> learnt;
  for (;;) {
    if (interrupt_ && (++steps & 255u) == 0 && interrupt_()) {
      cancelUntil(0);
      return Status::Undef;
    }
    if (!propagate()) {
      ++conflicts_;
      ++conflictsHere;
      if (decisionLevel() == 0) {
        ok_ = false;
        conflictCore_.clear();
        return Status::Unsat;
      }
      int btLevel = 0;
      analyze(learnt, btLevel);
      cancelUntil(btLevel);
      if (learnt.size() == 1) {
        uncheckedEnqueue(learnt[0], Reason{});
      } else {
        const GateRef g = allocGate(learnt, /*learnt=*/true);
        learnts_.push_back(g);
        attachGate(g);
        claBumpActivity(g);
        uncheckedEnqueue(learnt[0], Reason{kNoLitRaw, kNoLitRaw, g});
      }
      varDecayActivity();
      claDecayActivity();
    } else {
      if (conflictsHere >= conflictsAllowed) {
        cancelUntil(0);
        return Status::Undef;  // restart / budget checkpoint
      }
      if (static_cast<double>(learnts_.size()) -
              static_cast<double>(trail_.size()) >=
          maxLearnts_)
        reduceDB();

      aig::Lit next = aig::Lit::fromRaw(kNoPick);
      while (decisionLevel() < static_cast<int>(assumptions_.size())) {
        const aig::Lit p = assumptions_[static_cast<std::size_t>(
            decisionLevel())];
        if (value(p) == LBool::True) {
          newDecisionLevel();  // dummy level keeps indices aligned
        } else if (value(p) == LBool::False) {
          analyzeFinal(!p, conflictCore_);
          return Status::Unsat;
        } else {
          next = p;
          break;
        }
      }
      if (next.raw() == kNoPick) {
        ++decisions_;
        next = pickJustification();
        if (next.raw() == kNoPick) {
          // Propagation fixpoint, assumptions hold, frontier empty:
          // every assigned false gate is justified, every assigned true
          // gate has true fanins, so the assignment extends to a total
          // model (unassigned PIs default false). Recording the trail
          // costs O(assigned); everything off it reads as Undef.
          if (++modelEpoch_ == 0) {
            std::fill(modelStamp_.begin(), modelStamp_.end(), 0);
            modelEpoch_ = 1;
          }
          for (const aig::Lit p : trail_) {
            const NodeId v = p.node();
            modelStamp_[v] = modelEpoch_;
            modelVal_[v] = static_cast<std::uint8_t>(!p.negated());
          }
          return Status::Sat;
        }
      }
      newDecisionLevel();
      uncheckedEnqueue(next, Reason{});
    }
  }
}

Status CircuitSolver::solveLimited(std::span<const aig::Lit> assumptions,
                                   std::int64_t conflictBudget) {
  CBQ_OBS_SPAN("sat.circuit", "solve");
  // Same injection site as the CNF path: a flip here must surface as an
  // inconclusive answer, never a wrong one.
  CBQ_FAULT_POINT("sat.solve");
  if (CBQ_FAULT_FAIL("sat.solve")) return Status::Undef;
  sync();
  conflictCore_.clear();
  if (!ok_) return Status::Unsat;
  assumptions_.assign(assumptions.begin(), assumptions.end());

  maxLearnts_ =
      std::max(static_cast<double>(permanents_.size()) * 0.3, 1000.0);
  std::int64_t remaining = conflictBudget;
  int restarts = 0;
  Status st = Status::Undef;
  while (st == Status::Undef) {
    if (interrupt_ && interrupt_()) break;
    std::int64_t allowed =
        static_cast<std::int64_t>(lubySeq(2.0, restarts) * kRestartBase);
    if (conflictBudget >= 0) {
      if (remaining <= 0) break;
      allowed = std::min(allowed, remaining);
    }
    const std::uint64_t before = conflicts_;
    st = search(allowed);
    if (conflictBudget >= 0)
      remaining -= static_cast<std::int64_t>(conflicts_ - before);
    ++restarts;
  }
  cancelUntil(0);
  assumptions_.clear();
  return st;
}

bool CircuitSolver::modelOf(aig::VarId v) const {
  if (!aig_->hasPi(v)) return false;
  const NodeId n = aig_->piNodeOf(v);
  return modelValue(aig::Lit(n, false)) == LBool::True;
}

}  // namespace cbq::sat

#pragma once
// Incremental CDCL SAT solver.
//
// The paper implements its "SAT-merge" routine on top of ZChaff: one clause
// database loaded once, many equivalence checks factorized into a single
// run. This solver reproduces that usage pattern with a MiniSat-style
// architecture:
//  * two-literal watching with blocker literals,
//  * first-UIP conflict analysis with local clause minimization,
//  * EVSIDS variable activities + phase saving,
//  * Luby restarts, activity-driven learned-clause reduction,
//  * solving under assumptions with final-conflict (failed-assumption)
//    extraction — this is what lets thousands of sweeping checks share the
//    clause database, and
//  * per-call conflict budgets so equivalence checks can be abandoned
//    cheaply (the sweeping engine treats a budget-out as "unknown").

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "sat/types.hpp"
#include "obs/metrics.hpp"

namespace cbq::sat {

/// Outcome of a solve call.
enum class Status : std::uint8_t { Sat, Unsat, Undef };

class Solver {
 public:
  Solver();

  Solver(const Solver&) = delete;
  Solver& operator=(const Solver&) = delete;

  // ----- problem construction -----------------------------------------

  /// Creates a fresh variable and returns it.
  Var newVar();

  [[nodiscard]] int numVars() const { return static_cast<int>(assigns_.size()); }

  /// Adds a clause. Returns false when the database is already/becomes
  /// unsatisfiable at level 0. Duplicates and tautologies are handled.
  bool addClause(std::span<const Lit> lits);
  bool addClause(std::initializer_list<Lit> lits) {
    return addClause(std::span<const Lit>(lits.begin(), lits.size()));
  }

  /// True while no level-0 contradiction has been derived.
  [[nodiscard]] bool okay() const { return ok_; }

  // ----- solving --------------------------------------------------------

  /// Solves under the given assumptions. Unlimited conflicts.
  Status solve(std::span<const Lit> assumptions = {});

  /// Solves with a conflict budget; returns Undef when the budget runs out
  /// before an answer is found. `budget` < 0 means unlimited.
  Status solveLimited(std::span<const Lit> assumptions,
                      std::int64_t conflictBudget);

  /// Installs a cooperative interrupt: polled every few hundred search
  /// steps; while it returns true, solve calls return Undef promptly.
  /// This is how the portfolio runner's cancellation reaches into a
  /// long-running monolithic solve. Pass nullptr to clear.
  void setInterrupt(std::function<bool()> callback) {
    interrupt_ = std::move(callback);
  }

  /// Restricts branching to `vars` (variables created after this call
  /// stay decidable by default). A Sat answer then assigns every focused
  /// variable but may leave the rest of the clause database untouched —
  /// sound whenever the unfocused part is satisfiable under any partial
  /// model of the focused part, which holds for Tseitin circuit cones
  /// plus implied (learned) facts. This is what keeps per-query cost
  /// proportional to the query's cone in a run-long shared database
  /// instead of to everything ever encoded. Callers must focus on a
  /// superset of every assumption's transitive cone.
  void focusDecisions(std::span<const Var> vars);

  /// Back to full decidability (every query assigns every variable).
  void unfocusDecisions();

  /// Model value of a literal after a Sat answer.
  [[nodiscard]] LBool modelValue(Lit l) const {
    return lxor(model_[static_cast<std::size_t>(l.var())], l.sign());
  }
  [[nodiscard]] bool modelTrue(Lit l) const {
    return modelValue(l) == LBool::True;
  }

  /// After Unsat under assumptions: the subset of assumptions (negated)
  /// proven contradictory — the "final conflict clause".
  [[nodiscard]] const std::vector<Lit>& conflictCore() const {
    return conflictCore_;
  }

  // ----- statistics -------------------------------------------------------

  [[nodiscard]] std::uint64_t conflicts() const { return conflicts_; }
  [[nodiscard]] std::uint64_t decisions() const { return decisions_; }
  [[nodiscard]] std::uint64_t propagations() const { return propagations_; }
  [[nodiscard]] std::size_t numClauses() const { return clauses_.size(); }
  [[nodiscard]] std::size_t numLearnts() const { return learnts_.size(); }

 private:
  // Clauses live in a flat arena; a ClauseRef is an offset into it.
  // Layout: [header][activity-bits][lit 0]...[lit n-1], watched lits first.
  using ClauseRef = std::uint32_t;
  static constexpr ClauseRef kNoReason = 0xffffffffu;

  struct Watcher {
    ClauseRef cref;
    Lit blocker;
  };

  // Arena accessors.
  [[nodiscard]] std::uint32_t clauseSize(ClauseRef c) const {
    return arena_[c] >> 1;
  }
  [[nodiscard]] bool clauseLearnt(ClauseRef c) const {
    return (arena_[c] & 1) != 0;
  }
  [[nodiscard]] Lit clauseLit(ClauseRef c, std::uint32_t i) const {
    return Lit::fromIndex(static_cast<std::int32_t>(arena_[c + 2 + i]));
  }
  void setClauseLit(ClauseRef c, std::uint32_t i, Lit l) {
    arena_[c + 2 + i] = static_cast<std::uint32_t>(l.index());
  }
  [[nodiscard]] float clauseActivity(ClauseRef c) const;
  void setClauseActivity(ClauseRef c, float a);

  ClauseRef allocClause(std::span<const Lit> lits, bool learnt);
  void attachClause(ClauseRef c);
  void detachClause(ClauseRef c);
  void removeClause(ClauseRef c);
  [[nodiscard]] bool clauseLocked(ClauseRef c) const;

  // Assignment handling.
  [[nodiscard]] LBool value(Lit l) const {
    return lxor(assigns_[static_cast<std::size_t>(l.var())], l.sign());
  }
  [[nodiscard]] LBool value(Var v) const {
    return assigns_[static_cast<std::size_t>(v)];
  }
  [[nodiscard]] int decisionLevel() const {
    return static_cast<int>(trailLim_.size());
  }
  void newDecisionLevel() { trailLim_.push_back(static_cast<int>(trail_.size())); }
  void uncheckedEnqueue(Lit p, ClauseRef from);
  void cancelUntil(int level);

  ClauseRef propagate();

  // Conflict analysis.
  void analyze(ClauseRef confl, std::vector<Lit>& outLearnt, int& outBtLevel);
  [[nodiscard]] bool litRedundant(Lit p);
  void analyzeFinal(Lit p, std::vector<Lit>& outCore);

  // Branching.
  void varBumpActivity(Var v);
  void varDecayActivity() { varInc_ *= (1.0 / kVarDecay); }
  void claBumpActivity(ClauseRef c);
  void claDecayActivity() { claInc_ *= (1.0f / kClaDecay); }
  Lit pickBranchLit();

  // Order heap (max-heap on activity).
  void heapInsert(Var v);
  void heapDecrease(Var v);  // activity increased -> move up
  Var heapPop();
  [[nodiscard]] bool heapEmpty() const { return heap_.empty(); }
  [[nodiscard]] bool inHeap(Var v) const {
    return heapIndex_[static_cast<std::size_t>(v)] >= 0;
  }
  void heapUp(int i);
  void heapDown(int i);

  void reduceDB();
  Status search(std::int64_t conflictsAllowed);

  static double luby(double y, int i);

  // ----- data ------------------------------------------------------------

  bool ok_ = true;
  std::vector<std::uint32_t> arena_;
  std::vector<ClauseRef> clauses_;
  std::vector<ClauseRef> learnts_;
  std::vector<std::vector<Watcher>> watches_;  // indexed by Lit::index()

  std::vector<LBool> assigns_;
  std::vector<bool> polarity_;      // phase saving (last value, as sign)
  std::vector<int> levels_;
  std::vector<ClauseRef> reasons_;
  std::vector<Lit> trail_;
  std::vector<int> trailLim_;
  int qhead_ = 0;

  std::vector<double> activity_;
  std::vector<std::uint8_t> decidable_;  // focusDecisions() mask
  double varInc_ = 1.0;
  float claInc_ = 1.0f;
  std::vector<Var> heap_;
  std::vector<int> heapIndex_;

  std::vector<Lit> assumptions_;
  std::vector<Lit> conflictCore_;
  std::vector<LBool> model_;
  std::function<bool()> interrupt_;

  // Scratch buffers for analyze().
  std::vector<bool> seen_;
  std::vector<Lit> analyzeToClear_;
  std::vector<Lit> analyzeStack_;

  std::uint64_t conflicts_ = 0;
  std::uint64_t decisions_ = 0;
  std::uint64_t propagations_ = 0;
  double maxLearnts_ = 0.0;

  static constexpr double kVarDecay = 0.95;
  static constexpr float kClaDecay = 0.999f;
  static constexpr int kRestartBase = 100;
};

/// Adds a solver's effort to a stats bag under the canonical counter
/// names every engine shares (surfaced in the portfolio JSON/CSV
/// reports): sat.conflicts / sat.decisions / sat.propagations.
inline void exportEffort(obs::Metrics& stats, const Solver& solver) {
  stats.add("sat.conflicts", static_cast<std::int64_t>(solver.conflicts()));
  stats.add("sat.decisions", static_cast<std::int64_t>(solver.decisions()));
  stats.add("sat.propagations",
            static_cast<std::int64_t>(solver.propagations()));
}

}  // namespace cbq::sat

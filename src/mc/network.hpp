#pragma once
// Sequential circuit model for unbounded model checking.
//
// A Network is a set of latches with next-state functions, a set of free
// primary inputs, a constant initial state, and a "bad" condition — the
// complement of the invariant property P, evaluated over current state and
// inputs. Backward reachability (§3 of the paper) starts from `bad` and
// iterates pre-images until a fixpoint or an initial-state intersection.

#include <algorithm>
#include <cassert>
#include <string>
#include <unordered_map>
#include <vector>

#include "aig/aig.hpp"

namespace cbq::mc {

struct Network {
  aig::Aig aig;                        ///< owns every cone below
  std::string name;                    ///< benchmark instance label
  std::vector<aig::VarId> stateVars;   ///< current-state variable per latch
  std::vector<aig::VarId> inputVars;   ///< free primary inputs
  std::vector<aig::Lit> next;          ///< next-state function per latch
  std::vector<bool> init;              ///< initial value per latch
  aig::Lit bad = aig::kFalse;          ///< violation condition (state+input)

  [[nodiscard]] std::size_t numLatches() const { return stateVars.size(); }
  [[nodiscard]] std::size_t numInputs() const { return inputVars.size(); }

  /// The initial state as a complete assignment over the state variables.
  [[nodiscard]] std::unordered_map<aig::VarId, bool> initAssignment() const {
    std::unordered_map<aig::VarId, bool> a;
    a.reserve(stateVars.size());
    for (std::size_t i = 0; i < stateVars.size(); ++i)
      a.emplace(stateVars[i], init[i]);
    return a;
  }

  /// One past the largest state/input VarId — the size a dense
  /// per-variable table needs to cover every network variable.
  [[nodiscard]] std::size_t varBound() const {
    std::size_t bound = 0;
    for (const aig::VarId v : stateVars)
      bound = std::max(bound, static_cast<std::size_t>(v) + 1);
    for (const aig::VarId v : inputVars)
      bound = std::max(bound, static_cast<std::size_t>(v) + 1);
    return bound;
  }

  /// Dense variant of initAssignment(): value indexed directly by VarId
  /// (state variables carry their reset value, everything else false).
  /// Sized by varBound() so the engines' replay/init paths can write
  /// per-step input values in place instead of rebuilding a hash map.
  [[nodiscard]] std::vector<bool> initAssignmentDense() const {
    std::vector<bool> a(varBound(), false);
    for (std::size_t i = 0; i < stateVars.size(); ++i)
      a[stateVars[i]] = init[i];
    return a;
  }

  /// Structural well-formedness (sizes line up, vars are disjoint).
  [[nodiscard]] bool wellFormed() const {
    if (next.size() != stateVars.size() || init.size() != stateVars.size())
      return false;
    std::unordered_map<aig::VarId, int> seen;
    for (const aig::VarId v : stateVars)
      if (++seen[v] > 1) return false;
    for (const aig::VarId v : inputVars)
      if (++seen[v] > 1) return false;
    return true;
  }
};

/// Deep copy into a fresh manager (dead nodes are compacted away). The
/// manager's const reads (evaluate, coneSize, supportVars) stamp mutable
/// scratch arenas, so concurrent engine runs over one Network are a data
/// race — the portfolio runner hands each racing engine its own clone
/// instead.
[[nodiscard]] inline Network cloneNetwork(const Network& net) {
  Network out;
  out.name = net.name;
  out.stateVars = net.stateVars;
  out.inputVars = net.inputVars;
  out.init = net.init;
  std::vector<aig::Lit> roots(net.next.begin(), net.next.end());
  roots.push_back(net.bad);
  const auto moved = out.aig.transferFrom(net.aig, roots);
  out.next.assign(moved.begin(), moved.end() - 1);
  out.bad = moved.back();
  return out;
}

/// Incremental construction helper used by the benchmark families: keeps
/// the state/input variable bookkeeping in one place.
class NetworkBuilder {
 public:
  explicit NetworkBuilder(std::string name) { net_.name = std::move(name); }

  /// Declares a latch with its initial value; next-state set later.
  aig::Lit addLatch(bool initValue) {
    const aig::VarId v = nextVar_++;
    latchIndex_.emplace(v, net_.stateVars.size());
    net_.stateVars.push_back(v);
    net_.init.push_back(initValue);
    net_.next.push_back(aig::kFalse);
    return net_.aig.pi(v);
  }

  /// Declares a free primary input.
  aig::Lit addInput() {
    const aig::VarId v = nextVar_++;
    net_.inputVars.push_back(v);
    return net_.aig.pi(v);
  }

  /// Sets the next-state function of the `idx`-th latch.
  void setNext(std::size_t idx, aig::Lit f) { net_.next[idx] = f; }

  /// Sets the next-state function of the latch whose literal is `latch`.
  void setNextOf(aig::Lit latch, aig::Lit f) {
    const aig::VarId v = net_.aig.piVar(latch.node());
    const auto it = latchIndex_.find(v);
    assert(it != latchIndex_.end() && "literal is not a declared latch");
    if (it != latchIndex_.end()) net_.next[it->second] = f;
  }

  void setBad(aig::Lit bad) { net_.bad = bad; }

  [[nodiscard]] aig::Aig& aig() { return net_.aig; }

  Network finish() {
    assert(net_.wellFormed());
    return std::move(net_);
  }

 private:
  Network net_;
  aig::VarId nextVar_ = 0;
  /// var -> stateVars index, so setNextOf is O(1) instead of a linear
  /// scan per call (quadratic over wide generated families).
  std::unordered_map<aig::VarId, std::size_t> latchIndex_;
};

}  // namespace cbq::mc

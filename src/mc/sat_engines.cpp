// The three AIG-based backward engines (paper §3–§4) and the §4
// input-quantification preprocessing.

#include <algorithm>

#include "cnf/aig_cnf.hpp"
#include "mc/backward_base.hpp"
#include "mc/engines.hpp"
#include "sat/solver.hpp"

namespace cbq::mc {

namespace {

using aig::Lit;
using aig::VarId;

/// All-solution SAT elimination of `vars` from `f` with Ganai-style
/// circuit cofactoring: every satisfying assignment is generalized by
/// cofactoring the formula against the model's *input* values, yielding a
/// whole state-set circuit per enumeration step. Polls `budget` per
/// enumeration (and inside each solve) so a portfolio cancel lands fast.
std::optional<Lit> allSatEliminate(aig::Aig& mgr, Lit f,
                                   std::span<const VarId> vars,
                                   int maxEnum, util::Stats& stats,
                                   const portfolio::Budget& budget) {
  // Restrict to variables actually present.
  std::vector<VarId> live;
  {
    const auto support = mgr.supportVars(f);
    for (const VarId v : vars)
      if (std::binary_search(support.begin(), support.end(), v))
        live.push_back(v);
  }
  if (live.empty() || f.isConstant()) return f;

  // The blocking clauses asserted below are only valid inside this
  // enumeration, so this is the one elimination routine that cannot share
  // the run's persistent session solver; it still reports its effort.
  sat::Solver solver;
  solver.setInterrupt([&budget] { return budget.exhausted(); });
  cnf::AigCnf cnf(mgr, solver);
  const sat::Lit target = cnf.litFor(f);
  const auto exportEffort = [&] { sat::exportEffort(stats, solver); };

  Lit result = aig::kFalse;
  int count = 0;
  for (;;) {
    if (budget.exhausted()) {
      exportEffort();
      return std::nullopt;
    }
    const sat::Lit assumptions[] = {target};
    const sat::Status st = solver.solve(assumptions);
    if (st == sat::Status::Unsat) break;
    if (st == sat::Status::Undef) {  // interrupted
      exportEffort();
      return std::nullopt;
    }
    if (++count > maxEnum) {
      stats.add("allsat.enum_overflow");
      exportEffort();
      return std::nullopt;
    }
    // Circuit cofactoring (Ganai et al. [2]): substitute the model's
    // values for the enumerated variables only.
    std::vector<aig::VarSub> consts;
    consts.reserve(live.size());
    for (const VarId v : live)
      consts.emplace_back(v, cnf.modelOf(v) ? aig::kTrue : aig::kFalse);
    const Lit cube = mgr.compose(f, consts);
    result = mgr.mkOr(result, cube);
    // Block every state covered by this cofactor.
    solver.addClause({!cnf.litFor(cube)});
    stats.add("allsat.enumerations");
  }
  exportEffort();
  return result;
}

}  // namespace

CheckResult CircuitQuantReach::doCheck(const Network& net,
                                       const portfolio::Budget& budget) {
  const auto eliminate =
      [&](const detail::PreImageRequest& req) -> std::optional<Lit> {
    quant::QuantOptions qopts = opts_.quant;
    qopts.interrupt = [b = req.budget] { return b->exhausted(); };
    qopts.context = req.session;  // run-wide clause database + pair cache
    quant::Quantifier q(*req.mgr, qopts);
    auto r = q.quantifyAll(req.formula, net.inputVars);
    Lit f = r.f;
    // A standalone circuit engine must finish the job: aborted variables
    // are expanded without the growth bound.
    for (const VarId v : r.residual) {
      if (req.budget->exhausted()) {
        req.stats->merge(q.stats());
        return std::nullopt;
      }
      f = q.quantifyVarForced(f, v);
    }
    req.stats->merge(q.stats());
    return f;
  };
  return detail::backwardReach(net, name(), opts_.limits,
                               opts_.compaction, opts_.hardConeLimit,
                               eliminate, budget);
}

CheckResult AllSatPreimageReach::doCheck(const Network& net,
                                         const portfolio::Budget& budget) {
  const auto eliminate =
      [&](const detail::PreImageRequest& req) -> std::optional<Lit> {
    return allSatEliminate(*req.mgr, req.formula, net.inputVars,
                           opts_.maxEnumPerImage, *req.stats, *req.budget);
  };
  return detail::backwardReach(net, name(), opts_.limits, CompactionPolicy{},
                               /*hardConeLimit=*/2'000'000, eliminate,
                               budget);
}

CheckResult HybridReach::doCheck(const Network& net,
                                 const portfolio::Budget& budget) {
  const auto eliminate =
      [&](const detail::PreImageRequest& req) -> std::optional<Lit> {
    // Phase 1 (§4): partial circuit quantification — cheap variables are
    // eliminated, blow-up-prone ones abort and stay.
    quant::QuantOptions qopts = opts_.quant;
    qopts.interrupt = [b = req.budget] { return b->exhausted(); };
    qopts.context = req.session;  // shared with the fixpoint checks
    quant::Quantifier q(*req.mgr, qopts);
    auto r = q.quantifyAll(req.formula, net.inputVars);
    req.stats->merge(q.stats());
    req.stats->add("hybrid.residual_vars",
                   static_cast<std::int64_t>(r.residual.size()));
    if (r.residual.empty()) return r.f;
    // Phase 2: the remaining decision variables go to all-SAT enumeration.
    return allSatEliminate(*req.mgr, r.f, r.residual, opts_.maxEnumPerImage,
                           *req.stats, *req.budget);
  };
  return detail::backwardReach(net, name(), opts_.limits, CompactionPolicy{},
                               /*hardConeLimit=*/2'000'000, eliminate,
                               budget);
}

PreprocessResult preprocessQuantifyInputs(const Network& net,
                                          const quant::QuantOptions& opts) {
  PreprocessResult out;
  out.net.name = net.name + "+qpre";
  out.net.stateVars = net.stateVars;
  out.net.inputVars = net.inputVars;
  out.net.init = net.init;

  std::vector<Lit> roots(net.next.begin(), net.next.end());
  roots.push_back(net.bad);
  auto moved = out.net.aig.transferFrom(net.aig, roots);
  out.net.next.assign(moved.begin(), moved.end() - 1);
  Lit bad = moved.back();

  // Inputs present in the bad cone.
  std::vector<VarId> badInputs;
  {
    const auto support = out.net.aig.supportVars(bad);
    for (const VarId v : net.inputVars)
      if (std::binary_search(support.begin(), support.end(), v))
        badInputs.push_back(v);
  }
  out.inputsBefore = badInputs.size();

  quant::Quantifier q(out.net.aig, opts);
  auto r = q.quantifyAll(bad, badInputs);
  out.net.bad = r.f;

  std::size_t after = 0;
  {
    const auto support = out.net.aig.supportVars(out.net.bad);
    for (const VarId v : net.inputVars)
      if (std::binary_search(support.begin(), support.end(), v)) ++after;
  }
  out.inputsAfter = after;
  return out;
}

std::vector<std::unique_ptr<Engine>> makeAllEngines() {
  std::vector<std::unique_ptr<Engine>> engines;
  for (const std::string& name : engineNames())
    engines.push_back(makeEngine(name));
  return engines;
}

std::vector<std::string> engineNames() {
  return {"cbq-reach", "cbq-fwd",     "bdd-bwd",      "bdd-fwd",
          "bmc",       "k-induction", "allsat-reach", "hybrid-reach"};
}

std::unique_ptr<Engine> makeEngine(const std::string& name) {
  if (name == "cbq-reach") return std::make_unique<CircuitQuantReach>();
  if (name == "cbq-fwd") return std::make_unique<CircuitQuantForwardReach>();
  if (name == "bdd-bwd") return std::make_unique<BddBackwardReach>();
  if (name == "bdd-fwd") return std::make_unique<BddForwardReach>();
  if (name == "bmc") return std::make_unique<Bmc>();
  if (name == "k-induction") return std::make_unique<KInduction>();
  if (name == "allsat-reach") return std::make_unique<AllSatPreimageReach>();
  if (name == "hybrid-reach") return std::make_unique<HybridReach>();
  return nullptr;
}

}  // namespace cbq::mc

// The three AIG-based backward engines (paper §3–§4) and the §4
// input-quantification preprocessing.

#include <algorithm>

#include "cnf/aig_cnf.hpp"
#include "cnf/cnf_backend.hpp"
#include "mc/backward_base.hpp"
#include "mc/engines.hpp"
#include "sat/solver.hpp"

namespace cbq::mc {

namespace {

using aig::Lit;
using aig::VarId;

/// Pause/retry continuation for an input elimination. A budget pause
/// inside an eliminator returns nullopt; the session retries the same
/// request on its next resume (same formula — the pre-image compose is
/// strashed and nothing else ran in between), and the carry lets the
/// retry continue from the work already done instead of starting the
/// elimination over (which could otherwise never fit in one slice).
struct EliminateCarry {
  bool active = false;
  Lit formula = aig::kFalse;  ///< request this continuation belongs to
  Lit work = aig::kFalse;     ///< partially eliminated formula / cube union
  std::vector<VarId> vars;    ///< variables still to eliminate (quant)
  int count = 0;              ///< enumerations so far (all-SAT)
  /// The request overflowed its enumeration bound: a permanent fact about
  /// this formula. Remembered so a retry (the session cannot tell an
  /// overflow whose slice also expired from a plain pause) fails in O(1)
  /// instead of re-running the doomed enumeration every slice.
  bool overflowed = false;
};

/// All-solution SAT elimination of `vars` from `f` with Ganai-style
/// circuit cofactoring: every satisfying assignment is generalized by
/// cofactoring the formula against the model's *input* values, yielding a
/// whole state-set circuit per enumeration step. Polls `budget` per
/// enumeration (and inside each solve) so a portfolio cancel lands fast.
/// A pause stores the cube union in `carry`; the retry blocks it with one
/// ¬union clause and enumerates only the uncovered remainder.
std::optional<Lit> allSatEliminate(aig::Aig& mgr, Lit f,
                                   std::span<const VarId> vars,
                                   int maxEnum, obs::Metrics& stats,
                                   const portfolio::Budget& budget,
                                   EliminateCarry& carry,
                                   sat::BackendKind satBackend) {
  // Restrict to variables actually present.
  std::vector<VarId> live;
  {
    const auto support = mgr.supportVars(f);
    for (const VarId v : vars)
      if (std::binary_search(support.begin(), support.end(), v))
        live.push_back(v);
  }
  if (live.empty() || f.isConstant()) return f;

  Lit result = aig::kFalse;
  int count = 0;
  if (carry.active && carry.formula == f) {
    if (carry.overflowed) return std::nullopt;  // permanent; carry kept
    result = carry.work;
    count = carry.count;
  }
  carry.active = false;

  // The blocking clauses asserted below are only valid inside this
  // enumeration, so this is the one elimination routine that cannot share
  // the run's persistent session solver; it still reports its effort.
  // `satBackend` arrives resolved to a solo engine (soloKind) — the
  // blocking-clause bookkeeping would be doubled by a race for no gain.
  const auto backend = cnf::makeSatBackend(satBackend, mgr);
  backend->setInterrupt([&budget] { return budget.exhausted(); });
  const auto exportEffort = [&] { sat::exportEffort(stats, *backend); };
  const auto pause = [&] {
    carry = {true, f, result, {}, count};
    exportEffort();
    return std::nullopt;
  };
  // States already covered by a previous, paused enumeration.
  if (result != aig::kFalse) {
    const Lit block[] = {!result};
    backend->addClause(block);
  }

  for (;;) {
    if (budget.exhausted()) return pause();
    const Lit assumptions[] = {f};
    const sat::Status st = backend->solve(assumptions, -1);
    if (st == sat::Status::Unsat) break;
    if (st == sat::Status::Undef)  // interrupted mid-solve
      return pause();
    if (++count > maxEnum) {
      stats.add("allsat.enum_overflow");
      carry = {true, f, aig::kFalse, {}, 0, true};  // permanent give-up
      exportEffort();
      return std::nullopt;
    }
    // Circuit cofactoring (Ganai et al. [2]): substitute the model's
    // values for the enumerated variables only.
    std::vector<aig::VarSub> consts;
    consts.reserve(live.size());
    for (const VarId v : live)
      consts.emplace_back(v,
                          backend->modelOf(v) ? aig::kTrue : aig::kFalse);
    const Lit cube = mgr.compose(f, consts);
    result = mgr.mkOr(result, cube);
    // Block every state covered by this cofactor.
    const Lit block[] = {!cube};
    backend->addClause(block);
    stats.add("allsat.enumerations");
  }
  exportEffort();
  return result;
}

}  // namespace

std::unique_ptr<Session> CircuitQuantReach::start(const Network& net) const {
  // The eliminator captures the options by value: the session is
  // self-contained and may outlive the engine. The mutable carry keeps
  // the partially-quantified pre-image across a budget pause, so slices
  // finer than one whole elimination still converge.
  const auto eliminate =
      [quantOpts = opts_.quant, carry = EliminateCarry{}](
          const detail::PreImageRequest& req) mutable -> std::optional<Lit> {
    quant::QuantOptions qopts = quantOpts;
    qopts.interrupt = [b = req.budget] { return b->exhausted(); };
    qopts.context = req.session;  // run-wide clause database + pair cache
    quant::Quantifier q(*req.mgr, qopts);
    Lit f = req.formula;
    std::vector<VarId> vars(req.net->inputVars);
    if (carry.active && carry.formula == req.formula) {
      f = carry.work;
      vars = std::move(carry.vars);
    }
    carry.active = false;
    auto r = q.quantifyAll(f, vars);
    f = r.f;
    vars = std::move(r.residual);
    // A standalone circuit engine must finish the job: aborted variables
    // are expanded without the growth bound.
    bool interrupted = req.budget->exhausted();
    while (!interrupted && !vars.empty()) {
      f = q.quantifyVarForced(f, vars.front());
      vars.erase(vars.begin());
      interrupted = req.budget->exhausted();
    }
    req.stats->merge(q.stats());
    if (interrupted && !vars.empty()) {
      carry = {true, req.formula, f, std::move(vars), 0};
      return std::nullopt;
    }
    return f;
  };
  return std::make_unique<detail::BackwardReachSession>(
      net, name(), opts_.limits, opts_.compaction, opts_.hardConeLimit,
      eliminate, opts_.quant.satBackend);
}

std::unique_ptr<Session> AllSatPreimageReach::start(const Network& net) const {
  const auto eliminate =
      [maxEnum = opts_.maxEnumPerImage, carry = EliminateCarry{}](
          const detail::PreImageRequest& req) mutable -> std::optional<Lit> {
    return allSatEliminate(*req.mgr, req.formula, req.net->inputVars,
                           maxEnum, *req.stats, *req.budget, carry,
                           req.session->soloKind());
  };
  return std::make_unique<detail::BackwardReachSession>(
      net, name(), opts_.limits, CompactionPolicy{},
      /*hardConeLimit=*/2'000'000, eliminate, opts_.satBackend);
}

std::unique_ptr<Session> HybridReach::start(const Network& net) const {
  const auto eliminate =
      [quantOpts = opts_.quant, maxEnum = opts_.maxEnumPerImage,
       carry = EliminateCarry{}](
          const detail::PreImageRequest& req) mutable -> std::optional<Lit> {
    // Phase 1 (§4): partial circuit quantification — cheap variables are
    // eliminated, blow-up-prone ones abort and stay. A pause mid-phase-2
    // retries phase 1, which replays from the warm session pair cache and
    // reproduces the same partial result, re-keying the phase-2 carry.
    quant::QuantOptions qopts = quantOpts;
    qopts.interrupt = [b = req.budget] { return b->exhausted(); };
    qopts.context = req.session;  // shared with the fixpoint checks
    quant::Quantifier q(*req.mgr, qopts);
    auto r = q.quantifyAll(req.formula, req.net->inputVars);
    req.stats->merge(q.stats());
    if (req.budget->exhausted() && !r.residual.empty())
      return std::nullopt;  // interrupted mid-quantification: retry
    req.stats->add("hybrid.residual_vars",
                   static_cast<std::int64_t>(r.residual.size()));
    if (r.residual.empty()) return r.f;
    // Phase 2: the remaining decision variables go to all-SAT enumeration.
    return allSatEliminate(*req.mgr, r.f, r.residual, maxEnum, *req.stats,
                           *req.budget, carry, req.session->soloKind());
  };
  return std::make_unique<detail::BackwardReachSession>(
      net, name(), opts_.limits, CompactionPolicy{},
      /*hardConeLimit=*/2'000'000, eliminate, opts_.quant.satBackend);
}

PreprocessResult preprocessQuantifyInputs(const Network& net,
                                          const quant::QuantOptions& opts) {
  PreprocessResult out;
  out.net.name = net.name + "+qpre";
  out.net.stateVars = net.stateVars;
  out.net.inputVars = net.inputVars;
  out.net.init = net.init;

  std::vector<Lit> roots(net.next.begin(), net.next.end());
  roots.push_back(net.bad);
  auto moved = out.net.aig.transferFrom(net.aig, roots);
  out.net.next.assign(moved.begin(), moved.end() - 1);
  Lit bad = moved.back();

  // Inputs present in the bad cone.
  std::vector<VarId> badInputs;
  {
    const auto support = out.net.aig.supportVars(bad);
    for (const VarId v : net.inputVars)
      if (std::binary_search(support.begin(), support.end(), v))
        badInputs.push_back(v);
  }
  out.inputsBefore = badInputs.size();

  quant::Quantifier q(out.net.aig, opts);
  auto r = q.quantifyAll(bad, badInputs);
  out.net.bad = r.f;

  std::size_t after = 0;
  {
    const auto support = out.net.aig.supportVars(out.net.bad);
    for (const VarId v : net.inputVars)
      if (std::binary_search(support.begin(), support.end(), v)) ++after;
  }
  out.inputsAfter = after;
  return out;
}

std::vector<std::unique_ptr<Engine>> makeAllEngines() {
  std::vector<std::unique_ptr<Engine>> engines;
  for (const std::string& name : engineNames())
    engines.push_back(makeEngine(name));
  return engines;
}

std::vector<std::string> engineNames() {
  return {"cbq-reach", "cbq-fwd",     "bdd-bwd",      "bdd-fwd",
          "bmc",       "k-induction", "allsat-reach", "hybrid-reach"};
}

std::unique_ptr<Engine> makeEngine(const std::string& name) {
  return makeEngine(name, EngineTuning{});
}

std::unique_ptr<Engine> makeEngine(const std::string& name,
                                   const EngineTuning& tuning) {
  if (name == "cbq-reach") {
    CircuitQuantReachOptions opts;
    opts.quant.satBackend = tuning.satBackend;
    return std::make_unique<CircuitQuantReach>(opts);
  }
  if (name == "cbq-fwd") {
    CircuitQuantForwardOptions opts;
    opts.quant.satBackend = tuning.satBackend;
    return std::make_unique<CircuitQuantForwardReach>(opts);
  }
  if (name == "bdd-bwd") return std::make_unique<BddBackwardReach>();
  if (name == "bdd-fwd") return std::make_unique<BddForwardReach>();
  if (name == "bmc") return std::make_unique<Bmc>();
  if (name == "k-induction") return std::make_unique<KInduction>();
  if (name == "allsat-reach") {
    AllSatReachOptions opts;
    opts.satBackend = tuning.satBackend;
    return std::make_unique<AllSatPreimageReach>(opts);
  }
  if (name == "hybrid-reach") {
    HybridReachOptions opts;
    opts.quant.satBackend = tuning.satBackend;
    return std::make_unique<HybridReach>(opts);
  }
  return nullptr;
}

}  // namespace cbq::mc

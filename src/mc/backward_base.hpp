#pragma once
// Shared skeleton for the AIG-based backward-reachability engines.
//
// The three SAT-flavoured engines (circuit quantification, all-SAT
// pre-image, hybrid) differ only in how they eliminate the input
// variables from the in-lined pre-image formula; everything else —
// the fixpoint loop, the frontier archive, counterexample
// reconstruction, compaction — is identical and lives here.
//
// The skeleton owns the run's persistent sweep session (one SAT solver +
// CNF encoding + proven/refuted pair cache bound to the working manager,
// see sweep/sweep_context.hpp): the per-engine eliminator receives it via
// PreImageRequest and threads it into its quantifier, and the fixpoint
// checks issue their implication queries against the same clause
// database. Manager compaction is garbage-triggered (CompactionPolicy)
// instead of unconditional, so the session survives across iterations.

#include <functional>
#include <optional>
#include <unordered_map>

#include "mc/engines.hpp"
#include "sweep/sweep_context.hpp"

namespace cbq::mc::detail {

/// State handed to the per-engine input-elimination callback.
struct PreImageRequest {
  aig::Aig* mgr;                 ///< working manager
  aig::Lit formula;              ///< F(δ(s,i)) — inputs still present
  const Network* net;
  util::Stats* stats;
  const portfolio::Budget* budget;  ///< effective run budget (never null)
  sweep::SweepContext* session;     ///< run-wide sweep session (never null)
};

/// Callback: eliminate the inputs from request.formula. Returns
/// std::nullopt to signal failure (engine reports Unknown).
using InputEliminator =
    std::function<std::optional<aig::Lit>(const PreImageRequest&)>;

/// Runs backward reachability with AIG state sets. `eliminate` is invoked
/// once on the initial bad cone and once per pre-image. `budget` is the
/// caller's cooperative budget; `limits.timeLimitSeconds` is folded into
/// it, and its node limit applies to the reached-set cone.
CheckResult backwardReach(const Network& net, const std::string& engineName,
                          const ReachLimits& limits,
                          const CompactionPolicy& compaction,
                          std::size_t hardConeLimit,
                          const InputEliminator& eliminate,
                          const portfolio::Budget& budget);

}  // namespace cbq::mc::detail

#pragma once
// Shared skeleton for the AIG-based backward-reachability engines.
//
// The three SAT-flavoured engines (circuit quantification, all-SAT
// pre-image, hybrid) differ only in how they eliminate the input
// variables from the in-lined pre-image formula; everything else —
// the fixpoint loop, the frontier archive, counterexample
// reconstruction, compaction — is identical and lives here, as a
// resumable Session: the working manager, the frontier/reached cones,
// both persistent sweep sessions and the frontier archive survive a
// budget pause, and the next resume() continues from the iteration
// boundary (or retries the interrupted pre-image / fixpoint query)
// instead of starting over.
//
// The skeleton owns the run's persistent sweep session (one SAT solver +
// CNF encoding + proven/refuted pair cache bound to the working manager,
// see sweep/sweep_context.hpp): the per-engine eliminator receives it via
// PreImageRequest and threads it into its quantifier, and the fixpoint
// checks issue their implication queries against the same clause
// database. Manager compaction is garbage-triggered (CompactionPolicy)
// instead of unconditional, so the session survives across iterations.

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "mc/engines.hpp"
#include "sweep/sweep_context.hpp"

namespace cbq::mc::detail {

/// State handed to the per-engine input-elimination callback.
struct PreImageRequest {
  aig::Aig* mgr;                 ///< working manager
  aig::Lit formula;              ///< F(δ(s,i)) — inputs still present
  const Network* net;
  obs::Metrics* stats;
  const portfolio::Budget* budget;  ///< effective slice budget (never null)
  sweep::SweepContext* session;     ///< run-wide sweep session (never null)
};

/// Callback: eliminate the inputs from request.formula. Returns
/// std::nullopt to signal failure — a budget interrupt (the session
/// pauses and retries the pre-image next resume) or a permanent give-up
/// (the session finishes Unknown); the two are told apart by
/// request.budget->exhausted().
using InputEliminator =
    std::function<std::optional<aig::Lit>(const PreImageRequest&)>;

/// Resumable backward reachability with AIG state sets. `eliminate` is
/// invoked once on the initial bad cone and once per pre-image.
/// `limits.timeLimitSeconds` is measured against the session's total
/// accumulated time; the slice budget's node limit applies to the
/// reached-set cone.
class BackwardReachSession final : public Session {
 public:
  /// `satBackend` selects the SAT engine policy for both persistent
  /// sessions (merge/DC compare points and fixpoint implications) and,
  /// resolved to a solo engine, for counterexample reconstruction.
  BackwardReachSession(const Network& net, std::string engineName,
                       const ReachLimits& limits,
                       const CompactionPolicy& compaction,
                       std::size_t hardConeLimit, InputEliminator eliminate,
                       sat::BackendKind satBackend = sat::BackendKind::Cnf);

  [[nodiscard]] std::string name() const override { return res_.engine; }

 protected:
  Progress doResume(const portfolio::Budget& budget) override;

 private:
  // The resume state machine. Pausing leaves the phase unchanged, so the
  // interrupted step (pre-image elimination, fixpoint implication, trace
  // descent) is retried — deterministically, because the working manager
  // is strashed and the retried query starts from identical inputs.
  enum class Phase : std::uint8_t {
    Init,   ///< frontier 0: eliminate inputs from the bad cone
    Guard,  ///< iteration/cone limits, then commit to the next pre-image
    Pre,    ///< in-line substitution + input elimination -> pre_
    Fix,    ///< pre_ => reached? (Safe on fixpoint)
    Trace,  ///< counterexample reconstruction over the archive
  };

  Progress run(const portfolio::Budget& bud);
  Progress snapshot(Verdict v, bool done);
  void commitFrontier(aig::Lit pre);
  void maybeCompact();

  const Network* net_;
  ReachLimits limits_;
  CompactionPolicy compaction_;
  std::size_t hardConeLimit_;
  InputEliminator eliminate_;
  sat::BackendKind satBackend_ = sat::BackendKind::Cnf;

  CheckResult res_;  ///< cumulative engine/steps/stats/cex record

  aig::Aig mgr_;                     ///< working manager
  std::vector<aig::Lit> nextL_;
  aig::Lit badL_ = aig::kFalse;
  std::vector<aig::VarSub> subst_;

  sweep::SweepContext session_;      ///< merge/DC compare-point checks
  sweep::SweepContext fixSession_;   ///< fixpoint implication checks

  aig::Aig archive_;                 ///< frontier history for traces
  std::vector<aig::Lit> archNext_;
  aig::Lit archBad_ = aig::kFalse;
  std::vector<aig::Lit> frontiersArch_;

  aig::Lit frontier_ = aig::kFalse;
  aig::Lit reached_ = aig::kFalse;
  aig::Lit pre_ = aig::kFalse;       ///< valid in Phase::Fix
  std::vector<bool> initDense_;      ///< dense initial-state assignment
  int iter_ = 0;
  int committedThisSlice_ = 0;
  Phase phase_ = Phase::Init;

  /// Budget of the resume() currently executing — what the sweep-session
  /// interrupt callbacks poll. Null between resumes.
  const portfolio::Budget* curBud_ = nullptr;
};

}  // namespace cbq::mc::detail

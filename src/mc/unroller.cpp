#include "mc/unroller.hpp"

#include <cassert>

namespace cbq::mc {

sat::Lit Unroller::encodeAt(aig::Lit l, Frame& frame) {
  auto& memo = frameMemo_.back();  // memo of the frame being built
  const aig::Aig& a = net_->aig;

  // Iterative post-order encoding of the cone inside this frame.
  struct Item {
    aig::NodeId node;
    bool expand;
  };
  std::vector<Item> stack{{l.node(), false}};
  while (!stack.empty()) {
    auto [n, expand] = stack.back();
    stack.pop_back();
    if (expand) {
      const aig::Lit f0 = a.fanin0(n);
      const aig::Lit f1 = a.fanin1(n);
      const sat::Lit sa = memo.at(f0.node()) ^ f0.negated();
      const sat::Lit sb = memo.at(f1.node()) ^ f1.negated();
      const sat::Lit v(solver_->newVar(), false);
      solver_->addClause({!v, sa});
      solver_->addClause({!v, sb});
      solver_->addClause({!sa, !sb, v});
      memo.emplace(n, v);
      continue;
    }
    if (memo.contains(n)) continue;
    if (a.isConst(n)) {
      if (constFalse_ == sat::kUndefLit) {
        constFalse_ = sat::Lit(solver_->newVar(), false);
        solver_->addClause({!constFalse_});
      }
      memo.emplace(n, constFalse_);
    } else if (a.isPi(n)) {
      const aig::VarId var = a.piVar(n);
      if (auto it = latchIndex_.find(var); it != latchIndex_.end()) {
        memo.emplace(n, frame.state[it->second]);
      } else {
        auto [it2, inserted] = frame.inputs.try_emplace(var, sat::kUndefLit);
        if (inserted) it2->second = sat::Lit(solver_->newVar(), false);
        memo.emplace(n, it2->second);
      }
    } else {
      stack.push_back({n, true});
      stack.push_back({a.fanin0(n).node(), false});
      stack.push_back({a.fanin1(n).node(), false});
    }
  }
  return memo.at(l.node()) ^ l.negated();
}

void Unroller::ensureFrame(int k) {
  if (!latchIndexBuilt_) {
    for (std::size_t i = 0; i < net_->stateVars.size(); ++i)
      latchIndex_.emplace(net_->stateVars[i], i);
    latchIndexBuilt_ = true;
  }
  while (numFrames() <= k) {
    const int j = numFrames();
    // Frame j's state literals are frame j-1's next-state outputs.
    std::vector<sat::Lit> state;
    if (j == 0) {
      state.resize(net_->numLatches());
      for (auto& s : state) s = sat::Lit(solver_->newVar(), false);
    } else {
      state = frames_[static_cast<std::size_t>(j - 1)].next;
    }
    frames_.emplace_back();
    frameMemo_.emplace_back();
    Frame& fr = frames_.back();
    fr.state = std::move(state);

    // Encode bad and all next-state functions inside this frame.
    fr.bad = encodeAt(net_->bad, fr);
    fr.next.reserve(net_->next.size());
    for (const aig::Lit nx : net_->next) fr.next.push_back(encodeAt(nx, fr));
  }
}

void Unroller::assertInit() {
  ensureFrame(0);
  for (std::size_t i = 0; i < net_->numLatches(); ++i)
    solver_->addClause({stateLit(0, i) ^ !net_->init[i]});
}

std::unordered_map<aig::VarId, bool> Unroller::modelInputs(int k) const {
  std::unordered_map<aig::VarId, bool> out;
  const Frame& fr = frames_[static_cast<std::size_t>(k)];
  for (const aig::VarId v : net_->inputVars) {
    auto it = fr.inputs.find(v);
    out.emplace(v, it != fr.inputs.end() && solver_->modelTrue(it->second));
  }
  return out;
}

void Unroller::assertDistinct(int i, int j) {
  // diff_l <-> (s_i[l] XOR s_j[l]); clause: OR_l diff_l.
  std::vector<sat::Lit> clause;
  clause.reserve(net_->numLatches());
  for (std::size_t l = 0; l < net_->numLatches(); ++l) {
    const sat::Lit a = stateLit(i, l);
    const sat::Lit b = stateLit(j, l);
    const sat::Lit d(solver_->newVar(), false);
    // d -> (a XOR b): (!d | a | b), (!d | !a | !b)
    solver_->addClause({!d, a, b});
    solver_->addClause({!d, !a, !b});
    // (a XOR b) -> d: (d | !a | b), (d | a | !b)
    solver_->addClause({d, !a, b});
    solver_->addClause({d, a, !b});
    clause.push_back(d);
  }
  solver_->addClause(clause);
}

}  // namespace cbq::mc

#pragma once
// Engine verdicts, counterexample traces and the common result record.

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "aig/aig.hpp"
#include "util/stats.hpp"

namespace cbq::mc {

struct Network;

/// Outcome of a model-checking run.
enum class Verdict : std::uint8_t {
  Safe,    ///< invariant proven (fixpoint reached / induction succeeded)
  Unsafe,  ///< counterexample found
  Unknown, ///< resource bound hit (depth, iterations, enumeration, time)
};

[[nodiscard]] inline const char* toString(Verdict v) {
  switch (v) {
    case Verdict::Safe:
      return "SAFE";
    case Verdict::Unsafe:
      return "UNSAFE";
    case Verdict::Unknown:
      return "UNKNOWN";
  }
  return "?";
}

/// A counterexample: one input assignment per step. Step t's inputs are
/// applied in state s_t; the bad condition holds at the final step.
struct Trace {
  std::vector<std::unordered_map<aig::VarId, bool>> inputs;

  [[nodiscard]] std::size_t length() const { return inputs.size(); }
};

/// Replays `trace` on `net` from the initial state; true iff the bad
/// condition holds at the final step. This is pure simulation — the
/// independent referee every engine's counterexample must pass.
[[nodiscard]] bool replayHitsBad(const Network& net, const Trace& trace);

/// Common result record for all engines.
struct CheckResult {
  Verdict verdict = Verdict::Unknown;
  int steps = 0;                ///< iterations (fixpoint) or cex depth
  std::optional<Trace> cex;     ///< present for Unsafe when reconstructed
  double seconds = 0.0;
  std::string engine;
  util::Stats stats;
};

}  // namespace cbq::mc

#pragma once
// Engine verdicts, counterexample traces and the common result record.

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "aig/aig.hpp"
#include "obs/metrics.hpp"

namespace cbq::mc {

struct Network;

/// Outcome of a model-checking run.
enum class Verdict : std::uint8_t {
  Safe,    ///< invariant proven (fixpoint reached / induction succeeded)
  Unsafe,  ///< counterexample found
  Unknown, ///< resource bound hit (depth, iterations, enumeration, time)
};

[[nodiscard]] inline const char* toString(Verdict v) {
  switch (v) {
    case Verdict::Safe:
      return "SAFE";
    case Verdict::Unsafe:
      return "UNSAFE";
    case Verdict::Unknown:
      return "UNKNOWN";
  }
  return "?";
}

/// A counterexample: one input assignment per step. Step t's inputs are
/// applied in state s_t; the bad condition holds at the final step.
struct Trace {
  std::vector<std::unordered_map<aig::VarId, bool>> inputs;

  [[nodiscard]] std::size_t length() const { return inputs.size(); }
};

/// Replays `trace` on `net` from the initial state; true iff the bad
/// condition holds at the final step. This is pure simulation — the
/// independent referee every engine's counterexample must pass.
[[nodiscard]] bool replayHitsBad(const Network& net, const Trace& trace);

/// Common result record for all engines.
struct CheckResult {
  Verdict verdict = Verdict::Unknown;
  int steps = 0;                ///< iterations (fixpoint) or cex depth
  std::optional<Trace> cex;     ///< present for Unsafe when reconstructed
  double seconds = 0.0;
  std::string engine;
  obs::Metrics stats;
};

/// One Session::resume()'s report: the cumulative (possibly still-Unknown)
/// result plus live telemetry, so a scheduler can compare engines
/// mid-flight without waiting for anyone to finish.
struct Progress {
  CheckResult result;  ///< cumulative; verdict stays Unknown while paused
  /// True when this session will never make further progress: a
  /// definitive verdict, the engine's own resource limits (max
  /// iterations / depth, cone or node caps, its option time limit), or a
  /// permanent failure. resume() after done returns the same Progress.
  bool done = false;
  int bound = 0;            ///< fixpoint iterations committed / BMC depth
  bool advanced = false;    ///< committed >= 1 bound in this resume
  std::size_t frontierCone = 0;  ///< frontier cone size / live BDD nodes
  /// Cumulative solver effort (conflicts + decisions + propagations; BDD
  /// engines report live nodes). Set by the engine; the Session base
  /// derives effortDelta.
  std::uint64_t effort = 0;
  std::uint64_t effortDelta = 0;  ///< effort spent in this resume
  double sliceSeconds = 0.0;      ///< wall time of this resume
};

}  // namespace cbq::mc

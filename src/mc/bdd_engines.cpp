// The classical BDD reachability baselines (§1 of the paper): backward
// pre-image by vector composition, forward image by relational product.
// Node limits convert memory blow-up into a clean Unknown verdict.

#include <algorithm>

#include "bdd/bdd.hpp"
#include "mc/engines.hpp"
#include "util/timer.hpp"

namespace cbq::mc {

namespace {

using aig::VarId;
using bdd::BddRef;

struct BddModel {
  bdd::BddManager mgr;
  std::vector<BddRef> next;
  BddRef bad = bdd::kFalseBdd;
  BddRef initCube = bdd::kTrueBdd;

  explicit BddModel(std::size_t limit) : mgr(limit) {}
};

/// Builds next/bad/init BDDs. Variable order: latches and inputs in
/// network declaration order (generators interleave related variables).
std::unique_ptr<BddModel> buildModel(const Network& net, std::size_t limit) {
  auto model = std::make_unique<BddModel>(limit);
  for (const VarId v : net.stateVars) model->mgr.registerVar(v);
  for (const VarId v : net.inputVars) model->mgr.registerVar(v);
  model->next.reserve(net.next.size());
  for (const aig::Lit nx : net.next)
    model->next.push_back(bdd::aigToBdd(net.aig, nx, model->mgr));
  model->bad = bdd::aigToBdd(net.aig, net.bad, model->mgr);
  for (std::size_t i = 0; i < net.numLatches(); ++i) {
    BddRef v = model->mgr.var(net.stateVars[i]);
    if (!net.init[i]) v = model->mgr.bddNot(v);
    model->initCube = model->mgr.bddAnd(model->initCube, v);
  }
  return model;
}

/// Backward counterexample reconstruction from the BDD frontier chain.
Trace reconstructBddTrace(const Network& net, BddModel& model,
                          const std::vector<BddRef>& frontiers, int d) {
  std::unordered_map<VarId, BddRef> subst;
  for (std::size_t i = 0; i < net.stateVars.size(); ++i)
    subst.emplace(net.stateVars[i], model.next[i]);

  Trace trace;
  std::unordered_map<VarId, bool> state = net.initAssignment();
  for (int t = 0; t <= d; ++t) {
    BddRef target =
        t < d ? model.mgr.compose(
                    frontiers[static_cast<std::size_t>(d - 1 - t)], subst)
              : model.bad;
    // Fix the current state by cofactoring; what remains is over inputs.
    for (const auto& [v, value] : state)
      target = model.mgr.cofactor(target, v, value);
    const auto pick = model.mgr.anySat(target);

    std::unordered_map<VarId, bool> inputs;
    for (const VarId v : net.inputVars) {
      auto it = pick.find(v);
      inputs.emplace(v, it != pick.end() && it->second);
    }
    trace.inputs.push_back(inputs);

    if (t < d) {
      std::unordered_map<VarId, bool> a = state;
      for (const auto& [v, b] : inputs) a.insert_or_assign(v, b);
      std::unordered_map<VarId, bool> nextState;
      for (std::size_t i = 0; i < net.numLatches(); ++i)
        nextState.emplace(net.stateVars[i],
                          net.aig.evaluate(net.next[i], a));
      state = std::move(nextState);
    }
  }
  return trace;
}

}  // namespace

CheckResult BddBackwardReach::doCheck(const Network& net,
                                      const portfolio::Budget& budget) {
  util::Timer timer;
  const portfolio::Budget bud =
      budget.tightened(opts_.limits.timeLimitSeconds);
  CheckResult res;
  res.engine = name();
  res.verdict = Verdict::Unknown;

  try {
    auto model = buildModel(net, opts_.nodeLimit);
    bdd::BddManager& bm = model->mgr;
    bm.setInterrupt([&bud] { return bud.exhausted(); });

    std::unordered_map<VarId, BddRef> subst;
    for (std::size_t i = 0; i < net.stateVars.size(); ++i)
      subst.emplace(net.stateVars[i], model->next[i]);

    BddRef frontier = bm.exists(model->bad, net.inputVars);
    BddRef reached = frontier;
    std::vector<BddRef> frontiers{frontier};
    const auto initA = net.initAssignment();

    int iter = 0;
    bool unsafe = bm.evaluate(frontier, initA);
    while (!unsafe) {
      if (iter >= opts_.limits.maxIterations || bud.exhausted() ||
          bud.nodesExceeded(bm.numNodes())) {
        res.seconds = timer.seconds();
        res.steps = iter;
        return res;
      }
      ++iter;
      const BddRef pre =
          bm.exists(bm.compose(frontier, subst), net.inputVars);
      // Fixpoint: pre ∧ ¬reached = 0.
      const BddRef fresh = bm.bddAnd(pre, bm.bddNot(reached));
      res.stats.high("bdd.peak_nodes", static_cast<double>(bm.numNodes()));
      if (fresh == bdd::kFalseBdd) {
        res.verdict = Verdict::Safe;
        res.steps = iter;
        res.seconds = timer.seconds();
        res.stats.set("bdd.reached_size",
                      static_cast<double>(bm.size(reached)));
        return res;
      }
      frontier = pre;
      reached = bm.bddOr(reached, pre);
      frontiers.push_back(frontier);
      res.stats.high("bdd.max_frontier_size",
                     static_cast<double>(bm.size(frontier)));
      unsafe = bm.evaluate(frontier, initA);
    }

    // Reconstruction first: a node-limit/interrupt abort mid-trace must
    // not leave a "definitive" Unsafe with no replayable counterexample.
    res.cex = reconstructBddTrace(net, *model, frontiers, iter);
    res.verdict = Verdict::Unsafe;
    res.steps = iter;
  } catch (const bdd::NodeLimitExceeded&) {
    res.stats.add("bdd.node_limit_hits");
  } catch (const bdd::Interrupted&) {
    res.stats.add("bdd.interrupts");
  }
  res.seconds = timer.seconds();
  return res;
}

CheckResult BddForwardReach::doCheck(const Network& net,
                                     const portfolio::Budget& budget) {
  util::Timer timer;
  const portfolio::Budget bud =
      budget.tightened(opts_.limits.timeLimitSeconds);
  CheckResult res;
  res.engine = name();
  res.verdict = Verdict::Unknown;

  try {
    auto model = buildModel(net, opts_.nodeLimit);
    bdd::BddManager& bm = model->mgr;
    bm.setInterrupt([&bud] { return bud.exhausted(); });

    // Next-state variables get fresh ids above every network variable.
    VarId maxVar = 0;
    for (const VarId v : net.stateVars) maxVar = std::max(maxVar, v);
    for (const VarId v : net.inputVars) maxVar = std::max(maxVar, v);
    std::vector<VarId> nsVars(net.numLatches());
    for (std::size_t i = 0; i < nsVars.size(); ++i)
      nsVars[i] = maxVar + 1 + static_cast<VarId>(i);

    // Monolithic transition relation ∧_j (s'_j ↔ δ_j).
    BddRef tr = bdd::kTrueBdd;
    for (std::size_t i = 0; i < net.numLatches(); ++i) {
      const BddRef eq = bm.bddNot(
          bm.bddXor(bm.var(nsVars[i]), model->next[i]));
      tr = bm.bddAnd(tr, eq);
    }

    // Quantify current state and inputs during the product.
    std::vector<VarId> presentAndInputs(net.stateVars);
    presentAndInputs.insert(presentAndInputs.end(), net.inputVars.begin(),
                            net.inputVars.end());
    std::unordered_map<VarId, BddRef> rename;  // s' -> s
    for (std::size_t i = 0; i < net.numLatches(); ++i)
      rename.emplace(nsVars[i], bm.var(net.stateVars[i]));

    const BddRef badStates = bm.exists(model->bad, net.inputVars);
    BddRef reached = model->initCube;
    BddRef frontier = model->initCube;

    int iter = 0;
    for (;;) {
      if (bm.bddAnd(reached, badStates) != bdd::kFalseBdd) {
        res.verdict = Verdict::Unsafe;
        res.steps = iter;
        // Forward traversal: counterexample reconstruction would need a
        // backward pass over the onion rings; the verdict (and depth) is
        // what the baseline comparison uses.
        break;
      }
      if (iter >= opts_.limits.maxIterations || bud.exhausted() ||
          bud.nodesExceeded(bm.numNodes()))
        break;
      ++iter;
      const BddRef imgNs = bm.andExists(tr, frontier, presentAndInputs);
      const BddRef img = bm.compose(imgNs, rename);
      const BddRef fresh = bm.bddAnd(img, bm.bddNot(reached));
      res.stats.high("bdd.peak_nodes", static_cast<double>(bm.numNodes()));
      if (fresh == bdd::kFalseBdd) {
        res.verdict = Verdict::Safe;
        res.steps = iter;
        res.stats.set("bdd.reached_size",
                      static_cast<double>(bm.size(reached)));
        break;
      }
      reached = bm.bddOr(reached, fresh);
      frontier = fresh;
    }
  } catch (const bdd::NodeLimitExceeded&) {
    res.stats.add("bdd.node_limit_hits");
  } catch (const bdd::Interrupted&) {
    res.stats.add("bdd.interrupts");
  }
  res.seconds = timer.seconds();
  return res;
}

}  // namespace cbq::mc

// The classical BDD reachability baselines (§1 of the paper): backward
// pre-image by vector composition, forward image by relational product.
// Node limits convert memory blow-up into a clean Unknown verdict.
//
// Both run as persistent sessions: the BDD manager, the converted
// next-state/bad functions and the reached set survive a budget pause.
// A bdd::Interrupted thrown mid-operation pauses the session; the
// operation is retried on the next resume, and because every node built
// before the interrupt stays in the unique table (and the operator
// caches), the retry fast-forwards through the finished prefix instead
// of recomputing it.

#include <algorithm>

#include "bdd/bdd.hpp"
#include "obs/tracer.hpp"
#include "mc/engines.hpp"

namespace cbq::mc {

namespace {

using aig::VarId;
using bdd::BddRef;

/// Backward counterexample reconstruction from the BDD frontier chain.
Trace reconstructBddTrace(const Network& net, bdd::BddManager& bm,
                          const std::vector<BddRef>& next, BddRef bad,
                          const std::vector<BddRef>& frontiers, int d) {
  std::unordered_map<VarId, BddRef> subst;
  for (std::size_t i = 0; i < net.stateVars.size(); ++i)
    subst.emplace(net.stateVars[i], next[i]);

  Trace trace;
  std::unordered_map<VarId, bool> state = net.initAssignment();
  for (int t = 0; t <= d; ++t) {
    BddRef target =
        t < d ? bm.compose(frontiers[static_cast<std::size_t>(d - 1 - t)],
                           subst)
              : bad;
    // Fix the current state by cofactoring; what remains is over inputs.
    for (const auto& [v, value] : state)
      target = bm.cofactor(target, v, value);
    const auto pick = bm.anySat(target);

    std::unordered_map<VarId, bool> inputs;
    for (const VarId v : net.inputVars) {
      auto it = pick.find(v);
      inputs.emplace(v, it != pick.end() && it->second);
    }
    trace.inputs.push_back(inputs);

    if (t < d) {
      std::unordered_map<VarId, bool> a = state;
      for (const auto& [v, b] : inputs) a.insert_or_assign(v, b);
      std::unordered_map<VarId, bool> nextState;
      for (std::size_t i = 0; i < net.numLatches(); ++i)
        nextState.emplace(net.stateVars[i],
                          net.aig.evaluate(net.next[i], a));
      state = std::move(nextState);
    }
  }
  return trace;
}

/// Shared session scaffolding for the two BDD engines: the manager and
/// the incrementally-built model (next/bad/init BDDs) plus the
/// interrupt/NodeLimit handling around each resume.
class BddSessionBase : public Session {
 public:
  BddSessionBase(const Network& net, const BddReachOptions& opts,
                 std::string engineName)
      : net_(&net), opts_(opts) {
    res_.engine = std::move(engineName);
    initDense_ = net.initAssignmentDense();
  }

  [[nodiscard]] std::string name() const override { return res_.engine; }

 protected:
  Progress doResume(const portfolio::Budget& budget) override {
    const auto bud = sliceBudget(budget, opts_.limits.timeLimitSeconds);
    if (!bud) return snapshot(Verdict::Unknown, true);
    curBud_ = &*bud;
    Progress p = [&] {
      try {
        return run(*bud);
      } catch (const bdd::NodeLimitExceeded&) {
        res_.stats.add("bdd.node_limit_hits");
        return snapshot(Verdict::Unknown, true);
      } catch (const bdd::Interrupted&) {
        // Budget fired mid-operation: pause; the retried operation
        // fast-forwards through the unique table / operator caches.
        res_.stats.add("bdd.interrupts");
        return snapshot(Verdict::Unknown, false);
      }
    }();
    curBud_ = nullptr;
    return p;
  }

  /// Engine loop; throws bdd::Interrupted / NodeLimitExceeded.
  virtual Progress run(const portfolio::Budget& bud) = 0;

  Progress snapshot(Verdict v, bool done) {
    Progress p;
    p.done = done;
    p.result = res_;
    p.result.verdict = v;
    p.result.steps = iter_;
    p.bound = iter_;
    p.advanced = committedThisSlice_ > 0;
    if (mgr_ != nullptr) {
      p.frontierCone = mgr_->numNodes();
      p.effort = mgr_->numNodes();
    }
    return p;
  }

  /// Builds manager + next/bad/init BDDs incrementally: an interrupt
  /// mid-conversion propagates as an exception, finished pieces are
  /// kept, and the next call continues where this one stopped. Variable
  /// order: latches and inputs in network declaration order (generators
  /// interleave related variables).
  void buildModel() {
    CBQ_OBS_SPAN("bdd", "build-model");
    const Network& net = *net_;
    if (mgr_ == nullptr) {
      mgr_ = std::make_unique<bdd::BddManager>(opts_.nodeLimit);
      mgr_->setInterrupt(
          [this] { return curBud_ != nullptr && curBud_->exhausted(); });
      for (const VarId v : net.stateVars) mgr_->registerVar(v);
      for (const VarId v : net.inputVars) mgr_->registerVar(v);
      next_.reserve(net.next.size());
    }
    while (next_.size() < net.next.size())
      next_.push_back(bdd::aigToBdd(net.aig, net.next[next_.size()], *mgr_));
    if (!badBuilt_) {
      bad_ = bdd::aigToBdd(net.aig, net.bad, *mgr_);
      badBuilt_ = true;
    }
    while (initIdx_ < net.numLatches()) {
      BddRef v = mgr_->var(net.stateVars[initIdx_]);
      if (!net.init[initIdx_]) v = mgr_->bddNot(v);
      initCube_ = mgr_->bddAnd(initCube_, v);
      ++initIdx_;
    }
  }

  const Network* net_;
  BddReachOptions opts_;
  CheckResult res_;
  std::vector<bool> initDense_;

  std::unique_ptr<bdd::BddManager> mgr_;
  std::vector<BddRef> next_;
  BddRef bad_ = bdd::kFalseBdd;
  BddRef initCube_ = bdd::kTrueBdd;
  bool badBuilt_ = false;
  std::size_t initIdx_ = 0;

  int iter_ = 0;
  int committedThisSlice_ = 0;
  const portfolio::Budget* curBud_ = nullptr;
};

class BddBackwardSession final : public BddSessionBase {
 public:
  using BddSessionBase::BddSessionBase;

 private:
  enum class Phase : std::uint8_t { Build, Guard, Pre, Trace };

  Progress run(const portfolio::Budget& bud) override {
    committedThisSlice_ = 0;
    for (;;) {
      if (bud.exhausted()) return snapshot(Verdict::Unknown, false);
      switch (phase_) {
        case Phase::Build: {
          buildModel();
          bdd::BddManager& bm = *mgr_;
          for (std::size_t i = 0; i < net_->stateVars.size(); ++i)
            subst_.emplace(net_->stateVars[i], next_[i]);
          frontier_ = bm.exists(bad_, net_->inputVars);
          reached_ = frontier_;
          frontiers_.assign(1, frontier_);
          phase_ = bm.evaluate(frontier_, initDense_) ? Phase::Trace
                                                      : Phase::Guard;
          break;
        }
        case Phase::Guard: {
          if (iter_ >= opts_.limits.maxIterations ||
              bud.nodesExceeded(mgr_->numNodes()))
            return snapshot(Verdict::Unknown, true);
          ++iter_;
          phase_ = Phase::Pre;
          break;
        }
        case Phase::Pre: {
          CBQ_OBS_SPAN("bdd", "pre-image");
          bdd::BddManager& bm = *mgr_;
          const BddRef pre =
              bm.exists(bm.compose(frontier_, subst_), net_->inputVars);
          // Fixpoint: pre ∧ ¬reached = 0.
          const BddRef fresh = bm.bddAnd(pre, bm.bddNot(reached_));
          res_.stats.high("bdd.peak_nodes",
                          static_cast<double>(bm.numNodes()));
          if (fresh == bdd::kFalseBdd) {
            res_.stats.set("bdd.reached_size",
                           static_cast<double>(bm.size(reached_)));
            return snapshot(Verdict::Safe, true);
          }
          frontier_ = pre;
          reached_ = bm.bddOr(reached_, pre);
          frontiers_.push_back(frontier_);
          res_.stats.high("bdd.max_frontier_size",
                          static_cast<double>(bm.size(frontier_)));
          ++committedThisSlice_;
          phase_ = bm.evaluate(frontier_, initDense_) ? Phase::Trace
                                                      : Phase::Guard;
          break;
        }
        case Phase::Trace: {
          CBQ_OBS_SPAN("bdd", "trace");
          // Reconstruction first: a node-limit/interrupt abort mid-trace
          // must not leave a "definitive" Unsafe with no replayable
          // counterexample — both pause/abort paths re-enter here.
          res_.cex = reconstructBddTrace(*net_, *mgr_, next_, bad_,
                                         frontiers_, iter_);
          return snapshot(Verdict::Unsafe, true);
        }
      }
    }
  }

  Phase phase_ = Phase::Build;
  std::unordered_map<VarId, BddRef> subst_;
  BddRef frontier_ = bdd::kFalseBdd;
  BddRef reached_ = bdd::kFalseBdd;
  std::vector<BddRef> frontiers_;
};

class BddForwardSession final : public BddSessionBase {
 public:
  using BddSessionBase::BddSessionBase;

 private:
  enum class Phase : std::uint8_t { Build, Check, Img };

  Progress run(const portfolio::Budget& bud) override {
    committedThisSlice_ = 0;
    for (;;) {
      if (bud.exhausted()) return snapshot(Verdict::Unknown, false);
      switch (phase_) {
        case Phase::Build: {
          buildModel();
          bdd::BddManager& bm = *mgr_;
          const Network& net = *net_;
          if (nsVars_.empty()) {
            // Next-state variables get fresh ids above every network var.
            VarId maxVar = 0;
            for (const VarId v : net.stateVars)
              maxVar = std::max(maxVar, v);
            for (const VarId v : net.inputVars)
              maxVar = std::max(maxVar, v);
            nsVars_.resize(net.numLatches());
            for (std::size_t i = 0; i < nsVars_.size(); ++i)
              nsVars_[i] = maxVar + 1 + static_cast<VarId>(i);
          }
          // Monolithic transition relation ∧_j (s'_j ↔ δ_j), built one
          // conjunct at a time so an interrupt pause resumes mid-build.
          while (trIdx_ < net.numLatches()) {
            const BddRef eq = bm.bddNot(
                bm.bddXor(bm.var(nsVars_[trIdx_]), next_[trIdx_]));
            tr_ = bm.bddAnd(tr_, eq);
            ++trIdx_;
          }
          if (presentAndInputs_.empty()) {
            // Quantify current state and inputs during the product.
            presentAndInputs_ = net.stateVars;
            presentAndInputs_.insert(presentAndInputs_.end(),
                                     net.inputVars.begin(),
                                     net.inputVars.end());
            for (std::size_t i = 0; i < net.numLatches(); ++i)
              rename_.emplace(nsVars_[i], bm.var(net.stateVars[i]));
          }
          badStates_ = bm.exists(bad_, net.inputVars);
          reached_ = initCube_;
          frontier_ = initCube_;
          phase_ = Phase::Check;
          break;
        }
        case Phase::Check: {
          bdd::BddManager& bm = *mgr_;
          if (bm.bddAnd(reached_, badStates_) != bdd::kFalseBdd) {
            // Forward traversal: counterexample reconstruction would need
            // a backward pass over the onion rings; the verdict (and
            // depth) is what the baseline comparison uses.
            return snapshot(Verdict::Unsafe, true);
          }
          if (iter_ >= opts_.limits.maxIterations ||
              bud.nodesExceeded(bm.numNodes()))
            return snapshot(Verdict::Unknown, true);
          ++iter_;
          phase_ = Phase::Img;
          break;
        }
        case Phase::Img: {
          CBQ_OBS_SPAN("bdd", "image");
          bdd::BddManager& bm = *mgr_;
          const BddRef imgNs =
              bm.andExists(tr_, frontier_, presentAndInputs_);
          const BddRef img = bm.compose(imgNs, rename_);
          const BddRef fresh = bm.bddAnd(img, bm.bddNot(reached_));
          res_.stats.high("bdd.peak_nodes",
                          static_cast<double>(bm.numNodes()));
          if (fresh == bdd::kFalseBdd) {
            res_.stats.set("bdd.reached_size",
                           static_cast<double>(bm.size(reached_)));
            return snapshot(Verdict::Safe, true);
          }
          reached_ = bm.bddOr(reached_, fresh);
          frontier_ = fresh;
          ++committedThisSlice_;
          phase_ = Phase::Check;
          break;
        }
      }
    }
  }

  Phase phase_ = Phase::Build;
  std::vector<VarId> nsVars_;
  BddRef tr_ = bdd::kTrueBdd;
  std::size_t trIdx_ = 0;
  std::vector<VarId> presentAndInputs_;
  std::unordered_map<VarId, BddRef> rename_;
  BddRef badStates_ = bdd::kFalseBdd;
  BddRef reached_ = bdd::kFalseBdd;
  BddRef frontier_ = bdd::kFalseBdd;
};

}  // namespace

std::unique_ptr<Session> BddBackwardReach::start(const Network& net) const {
  return std::make_unique<BddBackwardSession>(net, opts_, name());
}

std::unique_ptr<Session> BddForwardReach::start(const Network& net) const {
  return std::make_unique<BddForwardSession>(net, opts_, name());
}

}  // namespace cbq::mc

#include "mc/result.hpp"

#include "mc/network.hpp"

namespace cbq::mc {

bool replayHitsBad(const Network& net, const Trace& trace) {
  if (trace.inputs.empty()) return false;
  // Dense per-VarId assignment (state + inputs written in place) instead
  // of one hash map per step per latch.
  std::vector<bool> state = net.initAssignmentDense();

  for (std::size_t t = 0; t < trace.inputs.size(); ++t) {
    // Assignment for this step: current state + this step's inputs.
    std::vector<bool> a = state;
    for (const aig::VarId v : net.inputVars) {
      auto it = trace.inputs[t].find(v);
      a[v] = it != trace.inputs[t].end() && it->second;
    }
    const bool badNow = net.aig.evaluate(net.bad, a);
    if (t + 1 == trace.inputs.size()) return badNow;

    // Step the latches.
    std::vector<bool> nextState(state.size(), false);
    for (std::size_t i = 0; i < net.numLatches(); ++i)
      nextState[net.stateVars[i]] = net.aig.evaluate(net.next[i], a);
    state = std::move(nextState);
  }
  return false;
}

}  // namespace cbq::mc

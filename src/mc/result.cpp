#include "mc/result.hpp"

#include "mc/network.hpp"

namespace cbq::mc {

bool replayHitsBad(const Network& net, const Trace& trace) {
  if (trace.inputs.empty()) return false;
  std::unordered_map<aig::VarId, bool> state = net.initAssignment();

  for (std::size_t t = 0; t < trace.inputs.size(); ++t) {
    // Assignment for this step: current state + this step's inputs.
    std::unordered_map<aig::VarId, bool> a = state;
    for (const aig::VarId v : net.inputVars) {
      auto it = trace.inputs[t].find(v);
      a.emplace(v, it != trace.inputs[t].end() && it->second);
    }
    const bool badNow = net.aig.evaluate(net.bad, a);
    if (t + 1 == trace.inputs.size()) return badNow;

    // Step the latches.
    std::unordered_map<aig::VarId, bool> nextState;
    nextState.reserve(net.numLatches());
    for (std::size_t i = 0; i < net.numLatches(); ++i)
      nextState.emplace(net.stateVars[i], net.aig.evaluate(net.next[i], a));
    state = std::move(nextState);
  }
  return false;
}

}  // namespace cbq::mc

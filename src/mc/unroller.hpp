#pragma once
// Time-frame expansion of a Network into a SAT solver.
//
// Used by BMC, k-induction and backward-trace reconstruction. Frames are
// encoded eagerly one at a time, so there is no deep recursion across
// frames: frame k's state literals are the next-state literals computed in
// frame k-1.

#include <unordered_map>
#include <vector>

#include "cnf/aig_cnf.hpp"
#include "mc/network.hpp"
#include "sat/solver.hpp"

namespace cbq::mc {

class Unroller {
 public:
  Unroller(const Network& net, sat::Solver& solver)
      : net_(&net), solver_(&solver) {}

  /// Makes frames 0..k available.
  void ensureFrame(int k);

  [[nodiscard]] int numFrames() const {
    return static_cast<int>(frames_.size());
  }

  /// SAT literal of latch `i`'s current state at frame `k`.
  [[nodiscard]] sat::Lit stateLit(int k, std::size_t i) const {
    return frames_[static_cast<std::size_t>(k)].state[i];
  }
  /// SAT literal of input variable `v` at frame `k`.
  [[nodiscard]] sat::Lit inputLit(int k, aig::VarId v) const {
    return frames_[static_cast<std::size_t>(k)].inputs.at(v);
  }
  /// SAT literal of the bad condition at frame `k`.
  [[nodiscard]] sat::Lit badLit(int k) const {
    return frames_[static_cast<std::size_t>(k)].bad;
  }

  /// Adds unit clauses fixing frame 0 to the initial state.
  void assertInit();

  /// Input assignment of frame `k` extracted from the current model.
  [[nodiscard]] std::unordered_map<aig::VarId, bool> modelInputs(int k) const;

  /// Adds clauses forcing the state vectors of frames i and j to differ
  /// (simple-path / uniqueness constraint for k-induction).
  void assertDistinct(int i, int j);

 private:
  struct Frame {
    std::vector<sat::Lit> state;                      // per latch
    std::vector<sat::Lit> next;                       // per latch
    std::unordered_map<aig::VarId, sat::Lit> inputs;  // per input var
    sat::Lit bad = sat::kUndefLit;
  };

  /// Encodes the cone of `l` inside frame `k`, mapping state PIs to the
  /// frame's state literals and input PIs to (fresh) per-frame literals.
  sat::Lit encodeAt(aig::Lit l, Frame& frame);

  const Network* net_;
  sat::Solver* solver_;
  std::vector<Frame> frames_;
  std::unordered_map<aig::VarId, std::size_t> latchIndex_;
  bool latchIndexBuilt_ = false;
  sat::Lit constFalse_ = sat::kUndefLit;

  // Per-frame memo: AIG node -> SAT literal (positive phase).
  std::vector<std::unordered_map<aig::NodeId, sat::Lit>> frameMemo_;
};

}  // namespace cbq::mc

#include "mc/backward_base.hpp"

#include <utility>

#include "cnf/aig_cnf.hpp"
#include "sat/solver.hpp"
#include "util/timer.hpp"

namespace cbq::mc::detail {

namespace {

using aig::Lit;
using aig::VarId;

/// Rebuilds the trace for an Unsafe verdict. `frontiers[j]` (in the
/// archive manager) is Pre^j(∃i.bad); the initial state lies in
/// frontiers[d]. One small SAT query per step picks inputs that descend
/// the frontier chain; latches are stepped by simulation on the original
/// network. One solver + CNF serves every step: the targets differ but
/// all live in the archive manager, and each query is phrased purely
/// through assumptions (target literal + current state values), so the
/// clause database loads each frontier cone once for the whole descent.
Trace reconstructTrace(const Network& net, aig::Aig& archive,
                       const std::vector<Lit>& archNext, Lit archBad,
                       const std::vector<Lit>& frontiers, int d,
                       util::Stats& stats) {
  std::vector<aig::VarSub> subst;
  subst.reserve(net.stateVars.size());
  for (std::size_t i = 0; i < net.stateVars.size(); ++i)
    subst.emplace_back(net.stateVars[i], archNext[i]);

  Trace trace;
  std::unordered_map<VarId, bool> state = net.initAssignment();

  sat::Solver solver;
  cnf::AigCnf cnf(archive, solver);
  std::vector<sat::Lit> assumptions;

  for (int t = 0; t <= d; ++t) {
    const Lit target =
        t < d ? archive.compose(frontiers[static_cast<std::size_t>(d - 1 - t)],
                                subst)
              : archBad;

    assumptions.clear();
    assumptions.push_back(cnf.litFor(target));
    for (const auto& [v, value] : state) {
      if (!archive.hasPi(v)) continue;
      const Lit pi(archive.piNodeOf(v), false);
      assumptions.push_back(cnf.litFor(pi) ^ !value);
    }
    if (solver.solve(assumptions) != sat::Status::Sat) {
      // By construction this cannot happen; bail out with what we have —
      // the replay referee in the caller/test will flag the bad trace.
      break;
    }

    std::unordered_map<VarId, bool> inputs;
    for (const VarId v : net.inputVars) inputs.emplace(v, cnf.modelOf(v));
    trace.inputs.push_back(inputs);

    if (t < d) {
      std::unordered_map<VarId, bool> a = state;
      for (const auto& [v, b] : inputs) a.insert_or_assign(v, b);
      std::unordered_map<VarId, bool> nextState;
      for (std::size_t i = 0; i < net.numLatches(); ++i)
        nextState.emplace(net.stateVars[i],
                          net.aig.evaluate(net.next[i], a));
      state = std::move(nextState);
    }
  }
  sat::exportEffort(stats, solver);
  return trace;
}

}  // namespace

CheckResult backwardReach(const Network& net, const std::string& engineName,
                          const ReachLimits& limits,
                          const CompactionPolicy& compaction,
                          std::size_t hardConeLimit,
                          const InputEliminator& eliminate,
                          const portfolio::Budget& budget) {
  util::Timer timer;
  const portfolio::Budget bud = budget.tightened(limits.timeLimitSeconds);
  CheckResult res;
  res.engine = engineName;

  // Working manager: next-state functions + bad cone.
  aig::Aig mgr;
  std::vector<Lit> roots(net.next.begin(), net.next.end());
  roots.push_back(net.bad);
  auto moved = mgr.transferFrom(net.aig, roots);
  std::vector<Lit> nextL(moved.begin(), moved.end() - 1);
  Lit badL = moved.back();

  auto substOf = [&](const std::vector<Lit>& nx) {
    std::vector<aig::VarSub> m;
    m.reserve(nx.size());
    for (std::size_t i = 0; i < net.stateVars.size(); ++i)
      m.emplace_back(net.stateVars[i], nx[i]);
    return m;
  };
  std::vector<aig::VarSub> subst = substOf(nextL);

  // The run's persistent sweep sessions, valid until the next compaction
  // retires the manager's node space. Two databases with very different
  // shapes: `session` carries the merge/DC compare-point checks (small
  // cofactor cones, thousands of queries — it is recycled inside sweep()
  // against the current cone so stale cones never dominate propagation),
  // while `fixSession` carries the fixpoint implications (one huge
  // reached-set cone, one query per iteration — encoded incrementally as
  // the reached set grows). Mixing them would make every compare-point
  // check propagate through the reached-set encoding.
  sweep::SweepContext session;
  session.setInterrupt([&bud] { return bud.exhausted(); });
  sweep::SweepContext fixSession;
  fixSession.setInterrupt([&bud] { return bud.exhausted(); });

  // Archive manager: frontier history for counterexample reconstruction.
  aig::Aig archive;
  auto movedA = archive.transferFrom(net.aig, roots);
  std::vector<Lit> archNext(movedA.begin(), movedA.end() - 1);
  const Lit archBad = movedA.back();
  std::vector<Lit> frontiersArch;

  auto finish = [&](Verdict v, int steps) {
    res.verdict = v;
    res.steps = steps;
    res.seconds = timer.seconds();
    session.exportStats(res.stats);
    fixSession.exportStats(res.stats);
    return res;
  };

  // Frontier 0: B = ∃i . bad(s, i).
  PreImageRequest req{&mgr, badL, &net, &res.stats, &bud, &session};
  const auto b0 = eliminate(req);
  if (!b0) return finish(Verdict::Unknown, 0);
  Lit frontier = *b0;
  Lit reached = frontier;
  {
    const Lit fr[] = {frontier};
    frontiersArch.push_back(archive.transferFrom(mgr, fr).front());
  }

  const auto initA = net.initAssignment();
  int iter = 0;
  bool unsafe = mgr.evaluate(frontier, initA);

  while (!unsafe) {
    if (iter >= limits.maxIterations || bud.exhausted())
      return finish(Verdict::Unknown, iter);
    {
      const Lit rr[] = {reached};
      const std::size_t sz = mgr.coneSize(rr);
      res.stats.high("reach.max_reached_cone", static_cast<double>(sz));
      if (sz > hardConeLimit || bud.nodesExceeded(sz))
        return finish(Verdict::Unknown, iter);
    }
    ++iter;

    // Pre-image by substitution (§3 in-lining), then input elimination.
    req.formula = mgr.compose(frontier, subst);
    const auto q = eliminate(req);
    if (!q) return finish(Verdict::Unknown, iter);
    Lit pre = *q;

    // Fixpoint: every pre-image state already reached? Runs in its own
    // session (fixSession) so the reached-set encoding accretes
    // incrementally across iterations without ever being propagated
    // through by the small merge/DC compare-point checks.
    {
      fixSession.bind(mgr);
      const Lit fpRoots[] = {pre, reached};
      fixSession.recycleIfBloated(mgr.coneSize(fpRoots));
      fixSession.cnf().focusOn(fpRoots);
      res.stats.add("reach.fixpoint_checks");
      const cnf::Verdict fp =
          cnf::checkImplies(fixSession.cnf(), pre, reached);
      if (fp == cnf::Verdict::Holds) return finish(Verdict::Safe, iter);
      if (fp == cnf::Verdict::Unknown)  // interrupted mid-solve
        return finish(Verdict::Unknown, iter);
    }

    frontier = pre;
    reached = mgr.mkOr(reached, pre);
    {
      const Lit fr[] = {frontier};
      frontiersArch.push_back(archive.transferFrom(mgr, fr).front());
      res.stats.high("reach.max_frontier_cone",
                     static_cast<double>(mgr.coneSize(fr)));
    }

    if (mgr.evaluate(frontier, initA)) {
      unsafe = true;
      break;
    }

    if (compaction.enabled) {
      std::vector<Lit> live{reached, frontier, badL};
      live.insert(live.end(), nextL.begin(), nextL.end());
      const std::size_t liveSize = mgr.coneSize(live);
      if (mgr.numNodes() >= compaction.minNodes &&
          static_cast<double>(mgr.numNodes()) >
              compaction.garbageRatio * static_cast<double>(liveSize)) {
        // Re-strash every live cone into a fresh manager. The transfer
        // map lets the sweep session carry its proven/refuted pair cache
        // across the NodeId change; the fixpoint session just rebinds
        // (it records no pair facts).
        aig::Aig fresh;
        std::vector<std::pair<aig::NodeId, Lit>> xfer;
        auto mv = fresh.transferFrom(mgr, live, xfer);
        reached = mv[0];
        frontier = mv[1];
        badL = mv[2];
        for (std::size_t i = 0; i < nextL.size(); ++i) nextL[i] = mv[3 + i];
        mgr = std::move(fresh);
        subst = substOf(nextL);
        session.rebindRemapped(mgr, xfer);
        res.stats.add("reach.compactions");
      }
    }
  }

  res.cex = reconstructTrace(net, archive, archNext, archBad, frontiersArch,
                             iter, res.stats);
  res.stats.set("reach.iterations", iter);
  return finish(Verdict::Unsafe, iter);
}

}  // namespace cbq::mc::detail

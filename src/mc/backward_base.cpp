#include "mc/backward_base.hpp"

#include <utility>

#include "cnf/aig_cnf.hpp"
#include "sat/solver.hpp"
#include "util/timer.hpp"

namespace cbq::mc::detail {

namespace {

using aig::Lit;
using aig::VarId;

/// Rebuilds the trace for an Unsafe verdict. `frontiers[j]` (in the
/// archive manager) is Pre^j(∃i.bad); the initial state lies in
/// frontiers[d]. One small SAT query per step picks inputs that descend
/// the frontier chain; latches are stepped by simulation on the original
/// network.
Trace reconstructTrace(const Network& net, aig::Aig& archive,
                       const std::vector<Lit>& archNext, Lit archBad,
                       const std::vector<Lit>& frontiers, int d) {
  std::vector<aig::VarSub> subst;
  subst.reserve(net.stateVars.size());
  for (std::size_t i = 0; i < net.stateVars.size(); ++i)
    subst.emplace_back(net.stateVars[i], archNext[i]);

  Trace trace;
  std::unordered_map<VarId, bool> state = net.initAssignment();

  for (int t = 0; t <= d; ++t) {
    const Lit target =
        t < d ? archive.compose(frontiers[static_cast<std::size_t>(d - 1 - t)],
                                subst)
              : archBad;

    sat::Solver solver;
    cnf::AigCnf cnf(archive, solver);
    std::vector<sat::Lit> assumptions;
    assumptions.push_back(cnf.litFor(target));
    for (const auto& [v, value] : state) {
      if (!archive.hasPi(v)) continue;
      const Lit pi(archive.piNodeOf(v), false);
      assumptions.push_back(cnf.litFor(pi) ^ !value);
    }
    if (solver.solve(assumptions) != sat::Status::Sat) {
      // By construction this cannot happen; bail out with what we have —
      // the replay referee in the caller/test will flag the bad trace.
      return trace;
    }

    std::unordered_map<VarId, bool> inputs;
    for (const VarId v : net.inputVars) inputs.emplace(v, cnf.modelOf(v));
    trace.inputs.push_back(inputs);

    if (t < d) {
      std::unordered_map<VarId, bool> a = state;
      for (const auto& [v, b] : inputs) a.insert_or_assign(v, b);
      std::unordered_map<VarId, bool> nextState;
      for (std::size_t i = 0; i < net.numLatches(); ++i)
        nextState.emplace(net.stateVars[i],
                          net.aig.evaluate(net.next[i], a));
      state = std::move(nextState);
    }
  }
  return trace;
}

}  // namespace

CheckResult backwardReach(const Network& net, const std::string& engineName,
                          const ReachLimits& limits,
                          bool compactEachIteration,
                          std::size_t hardConeLimit,
                          const InputEliminator& eliminate,
                          const portfolio::Budget& budget) {
  util::Timer timer;
  const portfolio::Budget bud = budget.tightened(limits.timeLimitSeconds);
  CheckResult res;
  res.engine = engineName;

  // Working manager: next-state functions + bad cone.
  aig::Aig mgr;
  std::vector<Lit> roots(net.next.begin(), net.next.end());
  roots.push_back(net.bad);
  auto moved = mgr.transferFrom(net.aig, roots);
  std::vector<Lit> nextL(moved.begin(), moved.end() - 1);
  Lit badL = moved.back();

  auto substOf = [&](const std::vector<Lit>& nx) {
    std::vector<aig::VarSub> m;
    m.reserve(nx.size());
    for (std::size_t i = 0; i < net.stateVars.size(); ++i)
      m.emplace_back(net.stateVars[i], nx[i]);
    return m;
  };
  std::vector<aig::VarSub> subst = substOf(nextL);

  // Archive manager: frontier history for counterexample reconstruction.
  aig::Aig archive;
  auto movedA = archive.transferFrom(net.aig, roots);
  std::vector<Lit> archNext(movedA.begin(), movedA.end() - 1);
  const Lit archBad = movedA.back();
  std::vector<Lit> frontiersArch;

  auto finish = [&](Verdict v, int steps) {
    res.verdict = v;
    res.steps = steps;
    res.seconds = timer.seconds();
    return res;
  };

  // Frontier 0: B = ∃i . bad(s, i).
  PreImageRequest req{&mgr, badL, &net, &res.stats, &bud};
  const auto b0 = eliminate(req);
  if (!b0) return finish(Verdict::Unknown, 0);
  Lit frontier = *b0;
  Lit reached = frontier;
  {
    const Lit fr[] = {frontier};
    frontiersArch.push_back(archive.transferFrom(mgr, fr).front());
  }

  const auto initA = net.initAssignment();
  int iter = 0;
  bool unsafe = mgr.evaluate(frontier, initA);

  while (!unsafe) {
    if (iter >= limits.maxIterations || bud.exhausted())
      return finish(Verdict::Unknown, iter);
    {
      const Lit rr[] = {reached};
      const std::size_t sz = mgr.coneSize(rr);
      res.stats.high("reach.max_reached_cone", static_cast<double>(sz));
      if (sz > hardConeLimit || bud.nodesExceeded(sz))
        return finish(Verdict::Unknown, iter);
    }
    ++iter;

    // Pre-image by substitution (§3 in-lining), then input elimination.
    req.formula = mgr.compose(frontier, subst);
    const auto q = eliminate(req);
    if (!q) return finish(Verdict::Unknown, iter);
    Lit pre = *q;

    // Fixpoint: every pre-image state already reached?
    {
      sat::Solver solver;
      solver.setInterrupt([&bud] { return bud.exhausted(); });
      cnf::AigCnf cnf(mgr, solver);
      res.stats.add("reach.fixpoint_checks");
      const cnf::Verdict fp = cnf::checkImplies(cnf, pre, reached);
      if (fp == cnf::Verdict::Holds) return finish(Verdict::Safe, iter);
      if (fp == cnf::Verdict::Unknown)  // interrupted mid-solve
        return finish(Verdict::Unknown, iter);
    }

    frontier = pre;
    reached = mgr.mkOr(reached, pre);
    {
      const Lit fr[] = {frontier};
      frontiersArch.push_back(archive.transferFrom(mgr, fr).front());
      res.stats.high("reach.max_frontier_cone",
                     static_cast<double>(mgr.coneSize(fr)));
    }

    if (mgr.evaluate(frontier, initA)) {
      unsafe = true;
      break;
    }

    if (compactEachIteration) {
      // Re-strash every live cone into a fresh manager; scratch nodes from
      // cofactoring/sweeping are dropped wholesale.
      aig::Aig fresh;
      std::vector<Lit> live{reached, frontier, badL};
      live.insert(live.end(), nextL.begin(), nextL.end());
      auto mv = fresh.transferFrom(mgr, live);
      reached = mv[0];
      frontier = mv[1];
      badL = mv[2];
      for (std::size_t i = 0; i < nextL.size(); ++i) nextL[i] = mv[3 + i];
      mgr = std::move(fresh);
      subst = substOf(nextL);
    }
  }

  res.cex = reconstructTrace(net, archive, archNext, archBad, frontiersArch,
                             iter);
  res.stats.set("reach.iterations", iter);
  return finish(Verdict::Unsafe, iter);
}

}  // namespace cbq::mc::detail

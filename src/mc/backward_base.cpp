#include "mc/backward_base.hpp"

#include <utility>

#include "audit/audit.hpp"
#include "cnf/aig_cnf.hpp"
#include "cnf/cnf_backend.hpp"
#include "obs/tracer.hpp"
#include "sat/solver.hpp"

namespace cbq::mc::detail {

namespace {

using aig::Lit;
using aig::VarId;

/// Rebuilds the trace for an Unsafe verdict. `frontiers[j]` (in the
/// archive manager) is Pre^j(∃i.bad); the initial state lies in
/// frontiers[d]. One small SAT query per step picks inputs that descend
/// the frontier chain; latches are stepped by simulation on the original
/// network. One solver + CNF serves every step: the targets differ but
/// all live in the archive manager, and each query is phrased purely
/// through assumptions (target literal + current state values), so the
/// clause database loads each frontier cone once for the whole descent.
Trace reconstructTrace(const Network& net, aig::Aig& archive,
                       const std::vector<Lit>& archNext, Lit archBad,
                       const std::vector<Lit>& frontiers, int d,
                       sat::BackendKind satBackend, obs::Metrics& stats) {
  std::vector<aig::VarSub> subst;
  subst.reserve(net.stateVars.size());
  for (std::size_t i = 0; i < net.stateVars.size(); ++i)
    subst.emplace_back(net.stateVars[i], archNext[i]);

  Trace trace;
  std::unordered_map<VarId, bool> state = net.initAssignment();

  // One backend serves every step; `satBackend` arrives already resolved
  // to a solo engine (SweepContext::soloKind), so the descent keeps its
  // single incremental solver instead of racing per step.
  const auto backend = cnf::makeSatBackend(satBackend, archive);
  std::vector<Lit> assumptions;

  for (int t = 0; t <= d; ++t) {
    const Lit target =
        t < d ? archive.compose(frontiers[static_cast<std::size_t>(d - 1 - t)],
                                subst)
              : archBad;

    assumptions.clear();
    assumptions.push_back(target);
    for (const auto& [v, value] : state) {
      if (!archive.hasPi(v)) continue;
      assumptions.push_back(Lit(archive.piNodeOf(v), false) ^ !value);
    }
    if (backend->solve(assumptions, -1) != sat::Status::Sat) {
      // By construction this cannot happen; bail out with what we have —
      // the replay referee in the caller/test will flag the bad trace.
      break;
    }

    std::unordered_map<VarId, bool> inputs;
    for (const VarId v : net.inputVars)
      inputs.emplace(v, backend->modelOf(v));
    trace.inputs.push_back(inputs);

    if (t < d) {
      std::unordered_map<VarId, bool> a = state;
      for (const auto& [v, b] : inputs) a.insert_or_assign(v, b);
      std::unordered_map<VarId, bool> nextState;
      for (std::size_t i = 0; i < net.numLatches(); ++i)
        nextState.emplace(net.stateVars[i],
                          net.aig.evaluate(net.next[i], a));
      state = std::move(nextState);
    }
  }
  sat::exportEffort(stats, *backend);
  return trace;
}

}  // namespace

BackwardReachSession::BackwardReachSession(
    const Network& net, std::string engineName, const ReachLimits& limits,
    const CompactionPolicy& compaction, std::size_t hardConeLimit,
    InputEliminator eliminate, sat::BackendKind satBackend)
    : net_(&net),
      limits_(limits),
      compaction_(compaction),
      hardConeLimit_(hardConeLimit),
      eliminate_(std::move(eliminate)),
      satBackend_(satBackend) {
  res_.engine = std::move(engineName);
  session_.setBackend(satBackend_);
  fixSession_.setBackend(satBackend_);

  // Working manager: next-state functions + bad cone.
  std::vector<Lit> roots(net.next.begin(), net.next.end());
  roots.push_back(net.bad);
  auto moved = mgr_.transferFrom(net.aig, roots);
  nextL_.assign(moved.begin(), moved.end() - 1);
  badL_ = moved.back();
  subst_.reserve(nextL_.size());
  for (std::size_t i = 0; i < net.stateVars.size(); ++i)
    subst_.emplace_back(net.stateVars[i], nextL_[i]);

  // The run's persistent sweep sessions, valid until the next compaction
  // retires the manager's node space. Two databases with very different
  // shapes: `session_` carries the merge/DC compare-point checks (small
  // cofactor cones, thousands of queries — it is recycled inside sweep()
  // against the current cone so stale cones never dominate propagation),
  // while `fixSession_` carries the fixpoint implications (one huge
  // reached-set cone, one query per iteration — encoded incrementally as
  // the reached set grows). Mixing them would make every compare-point
  // check propagate through the reached-set encoding. Their interrupts
  // poll whichever slice budget the current resume() is running under.
  session_.setInterrupt(
      [this] { return curBud_ != nullptr && curBud_->exhausted(); });
  fixSession_.setInterrupt(
      [this] { return curBud_ != nullptr && curBud_->exhausted(); });

  // Archive manager: frontier history for counterexample reconstruction.
  auto movedA = archive_.transferFrom(net.aig, roots);
  archNext_.assign(movedA.begin(), movedA.end() - 1);
  archBad_ = movedA.back();

  initDense_ = net.initAssignmentDense();
}

Progress BackwardReachSession::snapshot(Verdict v, bool done) {
  Progress p;
  p.done = done;
  p.result = res_;
  p.result.verdict = v;
  p.result.steps = iter_;
  session_.exportStats(p.result.stats);
  fixSession_.exportStats(p.result.stats);
  p.bound = iter_;
  p.advanced = committedThisSlice_ > 0;
  {
    const Lit fr[] = {frontier_};
    p.frontierCone = mgr_.coneSize(fr);
  }
  p.effort =
      static_cast<std::uint64_t>(p.result.stats.count("sat.conflicts") +
                                 p.result.stats.count("sat.decisions") +
                                 p.result.stats.count("sat.propagations"));
  p.result.stats.high("mem.aig_peak_nodes",
                      static_cast<double>(mgr_.numNodes()));
  return p;
}

void BackwardReachSession::commitFrontier(Lit pre) {
  frontier_ = pre;
  reached_ = mgr_.mkOr(reached_, pre);
  const Lit fr[] = {frontier_};
  frontiersArch_.push_back(archive_.transferFrom(mgr_, fr).front());
  res_.stats.high("reach.max_frontier_cone",
                  static_cast<double>(mgr_.coneSize(fr)));
  ++committedThisSlice_;
}

void BackwardReachSession::maybeCompact() {
  if (!compaction_.enabled) return;
  std::vector<Lit> live{reached_, frontier_, badL_};
  live.insert(live.end(), nextL_.begin(), nextL_.end());
  const std::size_t liveSize = mgr_.coneSize(live);
  if (mgr_.numNodes() < compaction_.minNodes ||
      static_cast<double>(mgr_.numNodes()) <=
          compaction_.garbageRatio * static_cast<double>(liveSize))
    return;
  CBQ_OBS_SPAN("engine", "compact");
  // Re-strash every live cone into a fresh manager. The transfer map
  // lets the sweep session carry its proven/refuted pair cache across
  // the NodeId change; the fixpoint session just rebinds (it records no
  // pair facts).
  aig::Aig fresh;
  std::vector<std::pair<aig::NodeId, Lit>> xfer;
  auto mv = fresh.transferFrom(mgr_, live, xfer);
  reached_ = mv[0];
  frontier_ = mv[1];
  badL_ = mv[2];
  for (std::size_t i = 0; i < nextL_.size(); ++i) nextL_[i] = mv[3 + i];
  mgr_ = std::move(fresh);
  subst_.clear();
  for (std::size_t i = 0; i < net_->stateVars.size(); ++i)
    subst_.emplace_back(net_->stateVars[i], nextL_[i]);
  session_.rebindRemapped(mgr_, xfer);
  // The compacted manager plus the sweep session's rebuilt CNF binding —
  // a dangling literal-map entry here would poison every later query.
  CBQ_AUDIT_CHECK("reach.compact", audit::auditAig(mgr_));
  CBQ_AUDIT_CHECK("reach.compact.session",
                  audit::auditSweepContext(session_, mgr_));
  res_.stats.add("reach.compactions");
}

Progress BackwardReachSession::doResume(const portfolio::Budget& budget) {
  const auto bud = sliceBudget(budget, limits_.timeLimitSeconds);
  if (!bud) return snapshot(Verdict::Unknown, true);  // own limit spent
  curBud_ = &*bud;
  Progress p = run(*bud);
  curBud_ = nullptr;
  // Session pause: everything the next resume rebuilds from — the
  // manager and both persistent SAT sessions — must be coherent now.
  CBQ_AUDIT_CHECK("reach.pause", audit::auditAig(mgr_));
  CBQ_AUDIT_CHECK("reach.pause.session",
                  audit::auditSweepContext(session_, mgr_));
  CBQ_AUDIT_CHECK("reach.pause.fix-session",
                  audit::auditSweepContext(fixSession_, mgr_));
  return p;
}

Progress BackwardReachSession::run(const portfolio::Budget& bud) {
  committedThisSlice_ = 0;
  for (;;) {
    if (bud.exhausted()) return snapshot(Verdict::Unknown, false);
    switch (phase_) {
      case Phase::Init: {
        CBQ_OBS_SPAN("engine", "init");
        // Frontier 0: B = ∃i . bad(s, i).
        PreImageRequest req{&mgr_, badL_, net_, &res_.stats, &bud,
                            &session_};
        const auto b0 = eliminate_(req);
        if (!b0) {
          if (bud.exhausted())  // interrupted: retry next resume
            return snapshot(Verdict::Unknown, false);
          return snapshot(Verdict::Unknown, true);
        }
        frontier_ = *b0;
        reached_ = frontier_;
        {
          const Lit fr[] = {frontier_};
          frontiersArch_.push_back(archive_.transferFrom(mgr_, fr).front());
        }
        phase_ = mgr_.evaluate(frontier_, initDense_) ? Phase::Trace
                                                      : Phase::Guard;
        break;
      }
      case Phase::Guard: {
        if (iter_ >= limits_.maxIterations)
          return snapshot(Verdict::Unknown, true);
        const Lit rr[] = {reached_};
        const std::size_t sz = mgr_.coneSize(rr);
        res_.stats.high("reach.max_reached_cone", static_cast<double>(sz));
        if (sz > hardConeLimit_ || bud.nodesExceeded(sz))
          return snapshot(Verdict::Unknown, true);
        ++iter_;
        phase_ = Phase::Pre;
        break;
      }
      case Phase::Pre: {
        CBQ_OBS_SPAN("engine", "pre-image");
        // Pre-image by substitution (§3 in-lining), then input
        // elimination. A pause retries from here: compose is strashed, so
        // the retry starts from identical inputs and stays deterministic.
        PreImageRequest req{&mgr_, mgr_.compose(frontier_, subst_), net_,
                            &res_.stats, &bud, &session_};
        const auto q = eliminate_(req);
        if (!q) {
          if (bud.exhausted()) return snapshot(Verdict::Unknown, false);
          return snapshot(Verdict::Unknown, true);
        }
        pre_ = *q;
        phase_ = Phase::Fix;
        break;
      }
      case Phase::Fix: {
        CBQ_OBS_SPAN("engine", "fixpoint");
        // Fixpoint: every pre-image state already reached? Runs in its
        // own session (fixSession_) so the reached-set encoding accretes
        // incrementally across iterations without ever being propagated
        // through by the small merge/DC compare-point checks.
        fixSession_.bind(mgr_);
        const Lit fpRoots[] = {pre_, reached_};
        fixSession_.recycleIfBloated(mgr_.coneSize(fpRoots));
        fixSession_.focusOn(fpRoots);
        res_.stats.add("reach.fixpoint_checks");
        const cnf::Verdict fp = fixSession_.checkImplies(pre_, reached_);
        if (fp == cnf::Verdict::Holds) return snapshot(Verdict::Safe, true);
        if (fp == cnf::Verdict::Unknown)  // interrupted mid-solve: retry
          return snapshot(Verdict::Unknown, false);
        commitFrontier(pre_);
        if (mgr_.evaluate(frontier_, initDense_)) {
          phase_ = Phase::Trace;
        } else {
          maybeCompact();
          phase_ = Phase::Guard;
        }
        break;
      }
      case Phase::Trace: {
        CBQ_OBS_SPAN("engine", "trace");
        res_.cex = reconstructTrace(*net_, archive_, archNext_, archBad_,
                                    frontiersArch_, iter_,
                                    session_.soloKind(), res_.stats);
        res_.stats.set("reach.iterations", iter_);
        return snapshot(Verdict::Unsafe, true);
      }
    }
  }
}

}  // namespace cbq::mc::detail

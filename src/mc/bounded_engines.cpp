// Bounded model checking (Biere et al. [1]) and temporal induction
// (Sheeran et al. [5]) — the SAT-based methods §4 proposes to combine
// circuit quantification with.

#include "mc/engines.hpp"
#include "mc/unroller.hpp"
#include "util/timer.hpp"

namespace cbq::mc {

namespace {

/// Extracts a counterexample trace of length `depth+1` from the model of
/// an unrolled solver.
Trace traceFromModel(const Unroller& unroller, int depth) {
  Trace trace;
  for (int k = 0; k <= depth; ++k)
    trace.inputs.push_back(unroller.modelInputs(k));
  return trace;
}

}  // namespace

CheckResult Bmc::doCheck(const Network& net,
                         const portfolio::Budget& budget) {
  util::Timer timer;
  const portfolio::Budget bud = budget.tightened(opts_.timeLimitSeconds);
  CheckResult res;
  res.engine = name();

  sat::Solver solver;
  solver.setInterrupt([&bud] { return bud.exhausted(); });
  Unroller unroller(net, solver);
  unroller.assertInit();

  for (int k = 0; k <= opts_.maxDepth; ++k) {
    if (bud.exhausted()) {
      res.verdict = Verdict::Unknown;
      res.steps = k;
      break;
    }
    unroller.ensureFrame(k);
    const sat::Lit assumptions[] = {unroller.badLit(k)};
    res.stats.add("bmc.solves");
    const sat::Status st = solver.solve(assumptions);
    if (st == sat::Status::Sat) {
      res.verdict = Verdict::Unsafe;
      res.steps = k;
      res.cex = traceFromModel(unroller, k);
      break;
    }
    res.verdict = Verdict::Unknown;  // bounded method: clean up to maxDepth
    res.steps = k;
    if (st == sat::Status::Undef) break;  // interrupted mid-solve
  }
  res.stats.set("bmc.conflicts", static_cast<double>(solver.conflicts()));
  sat::exportEffort(res.stats, solver);
  res.seconds = timer.seconds();
  return res;
}

CheckResult KInduction::doCheck(const Network& net,
                                const portfolio::Budget& budget) {
  util::Timer timer;
  const portfolio::Budget bud = budget.tightened(opts_.timeLimitSeconds);
  CheckResult res;
  res.engine = name();
  res.verdict = Verdict::Unknown;

  // Base case: an incremental BMC solver shared across all k.
  sat::Solver baseSolver;
  baseSolver.setInterrupt([&bud] { return bud.exhausted(); });
  Unroller base(net, baseSolver);
  base.assertInit();

  for (int k = 0; k <= opts_.maxK; ++k) {
    if (bud.exhausted()) break;
    res.steps = k;

    // --- base: a counterexample of length k? -------------------------
    base.ensureFrame(k);
    const sat::Lit baseAssumptions[] = {base.badLit(k)};
    res.stats.add("ind.base_solves");
    const sat::Status baseSt = baseSolver.solve(baseAssumptions);
    if (baseSt == sat::Status::Undef) break;  // interrupted mid-solve
    if (baseSt == sat::Status::Sat) {
      res.verdict = Verdict::Unsafe;
      res.cex = [&] {
        Trace t;
        for (int j = 0; j <= k; ++j) t.inputs.push_back(base.modelInputs(j));
        return t;
      }();
      break;
    }

    // --- step: ¬bad for k frames on any (simple) path ⇒ ¬bad at k+1? --
    // Frames 0..k, no init, bad only at frame k, ¬bad at 0..k-1.
    sat::Solver stepSolver;
    stepSolver.setInterrupt([&bud] { return bud.exhausted(); });
    Unroller step(net, stepSolver);
    step.ensureFrame(k);
    for (int j = 0; j < k; ++j) stepSolver.addClause({!step.badLit(j)});
    if (opts_.uniquePath) {
      for (int i = 0; i < k; ++i)
        for (int j = i + 1; j <= k; ++j) step.assertDistinct(i, j);
    }
    const sat::Lit stepAssumptions[] = {step.badLit(k)};
    res.stats.add("ind.step_solves");
    const sat::Status stepSt = stepSolver.solve(stepAssumptions);
    sat::exportEffort(res.stats, stepSolver);
    if (stepSt == sat::Status::Unsat) {
      res.verdict = Verdict::Safe;
      break;
    }
  }
  sat::exportEffort(res.stats, baseSolver);
  res.seconds = timer.seconds();
  return res;
}

}  // namespace cbq::mc

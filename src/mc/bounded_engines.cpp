// Bounded model checking (Biere et al. [1]) and temporal induction
// (Sheeran et al. [5]) — the SAT-based methods §4 proposes to combine
// circuit quantification with. Both run as persistent sessions: the
// incremental solver and its time-frame expansion survive a budget
// pause, so the next resume() deepens from the last bound instead of
// re-unrolling from scratch.

#include "mc/engines.hpp"
#include "mc/unroller.hpp"
#include "obs/tracer.hpp"

namespace cbq::mc {

namespace {

/// Extracts a counterexample trace of length `depth+1` from the model of
/// an unrolled solver.
Trace traceFromModel(const Unroller& unroller, int depth) {
  Trace trace;
  for (int k = 0; k <= depth; ++k)
    trace.inputs.push_back(unroller.modelInputs(k));
  return trace;
}

class BmcSession final : public Session {
 public:
  BmcSession(const Network& net, const BmcOptions& opts)
      : net_(&net), opts_(opts), unroller_(net, solver_) {
    res_.engine = "bmc";
    solver_.setInterrupt(
        [this] { return curBud_ != nullptr && curBud_->exhausted(); });
    unroller_.assertInit();
  }

  [[nodiscard]] std::string name() const override { return res_.engine; }

 protected:
  Progress doResume(const portfolio::Budget& budget) override {
    const auto bud = sliceBudget(budget, opts_.timeLimitSeconds);
    if (!bud) return snapshot(Verdict::Unknown, true, lastClean());
    curBud_ = &*bud;
    Progress p = run(*bud);
    curBud_ = nullptr;
    return p;
  }

 private:
  /// Deepest depth proven clean (reported as steps while paused).
  [[nodiscard]] int lastClean() const { return k_; }

  Progress run(const portfolio::Budget& bud) {
    advanced_ = false;
    for (;;) {
      if (k_ > opts_.maxDepth)  // bounded method: clean up to maxDepth
        return snapshot(Verdict::Unknown, true, opts_.maxDepth);
      if (bud.exhausted())
        return snapshot(Verdict::Unknown, false, k_);
      CBQ_OBS_SPAN("engine", "bmc-bound");
      unroller_.ensureFrame(k_);
      const sat::Lit assumptions[] = {unroller_.badLit(k_)};
      res_.stats.add("bmc.solves");
      const sat::Status st = solver_.solve(assumptions);
      if (st == sat::Status::Sat) {
        res_.cex = traceFromModel(unroller_, k_);
        return snapshot(Verdict::Unsafe, true, k_);
      }
      if (st == sat::Status::Undef)  // interrupted mid-solve: retry k_
        return snapshot(Verdict::Unknown, false, k_);
      advanced_ = true;
      ++k_;
    }
  }

  Progress snapshot(Verdict v, bool done, int steps) {
    Progress p;
    p.done = done;
    p.result = res_;
    p.result.verdict = v;
    p.result.steps = steps;
    p.result.stats.set("bmc.conflicts",
                       static_cast<double>(solver_.conflicts()));
    sat::exportEffort(p.result.stats, solver_);
    p.bound = k_;
    p.advanced = advanced_;
    p.effort = solver_.conflicts() + solver_.decisions() +
               solver_.propagations();
    return p;
  }

  const Network* net_;
  BmcOptions opts_;
  CheckResult res_;
  sat::Solver solver_;
  Unroller unroller_;
  int k_ = 0;
  bool advanced_ = false;
  const portfolio::Budget* curBud_ = nullptr;
};

class KInductionSession final : public Session {
 public:
  KInductionSession(const Network& net, const InductionOptions& opts)
      : net_(&net), opts_(opts), base_(net, baseSolver_) {
    res_.engine = "k-induction";
    baseSolver_.setInterrupt(
        [this] { return curBud_ != nullptr && curBud_->exhausted(); });
    base_.assertInit();
  }

  [[nodiscard]] std::string name() const override { return res_.engine; }

 protected:
  Progress doResume(const portfolio::Budget& budget) override {
    const auto bud = sliceBudget(budget, opts_.timeLimitSeconds);
    if (!bud) return snapshot(Verdict::Unknown, true);
    curBud_ = &*bud;
    Progress p = run(*bud);
    curBud_ = nullptr;
    return p;
  }

 private:
  Progress run(const portfolio::Budget& bud) {
    advanced_ = false;
    for (;;) {
      if (k_ > opts_.maxK) return snapshot(Verdict::Unknown, true);
      if (bud.exhausted()) return snapshot(Verdict::Unknown, false);
      res_.steps = k_;

      if (!baseDone_) {
        // --- base: a counterexample of length k? ---------------------
        CBQ_OBS_SPAN("engine", "ind-base");
        base_.ensureFrame(k_);
        const sat::Lit baseAssumptions[] = {base_.badLit(k_)};
        res_.stats.add("ind.base_solves");
        const sat::Status baseSt = baseSolver_.solve(baseAssumptions);
        if (baseSt == sat::Status::Undef)  // interrupted: retry k_
          return snapshot(Verdict::Unknown, false);
        if (baseSt == sat::Status::Sat) {
          Trace t;
          for (int j = 0; j <= k_; ++j)
            t.inputs.push_back(base_.modelInputs(j));
          res_.cex = std::move(t);
          return snapshot(Verdict::Unsafe, true);
        }
        baseDone_ = true;
      }

      // --- step: ¬bad for k frames on any (simple) path ⇒ ¬bad at k+1?
      // Frames 0..k, no init, bad only at frame k, ¬bad at 0..k-1. The
      // step solver lives one k but SURVIVES budget pauses: an
      // interrupted step check resumes with its learned clauses and
      // saved phases intact, so even a step proof much longer than one
      // slice eventually completes.
      if (stepK_ != k_) {
        stepSolver_ = std::make_unique<sat::Solver>();
        stepSolver_->setInterrupt(
            [this] { return curBud_ != nullptr && curBud_->exhausted(); });
        step_ = std::make_unique<Unroller>(*net_, *stepSolver_);
        step_->ensureFrame(k_);
        for (int j = 0; j < k_; ++j)
          stepSolver_->addClause({!step_->badLit(j)});
        if (opts_.uniquePath) {
          for (int i = 0; i < k_; ++i)
            for (int j = i + 1; j <= k_; ++j) step_->assertDistinct(i, j);
        }
        stepK_ = k_;
      }
      CBQ_OBS_SPAN("engine", "ind-step");
      const sat::Lit stepAssumptions[] = {step_->badLit(k_)};
      res_.stats.add("ind.step_solves");
      const sat::Status stepSt = stepSolver_->solve(stepAssumptions);
      if (stepSt == sat::Status::Undef)  // interrupted: resume the solve
        return snapshot(Verdict::Unknown, false);
      // The step check concluded: account its effort exactly once per k.
      sat::exportEffort(res_.stats, *stepSolver_);
      stepEffort_ += stepSolver_->conflicts() + stepSolver_->decisions() +
                     stepSolver_->propagations();
      if (stepSt == sat::Status::Unsat) return snapshot(Verdict::Safe, true);
      advanced_ = true;
      baseDone_ = false;
      ++k_;
    }
  }

  Progress snapshot(Verdict v, bool done) {
    Progress p;
    p.done = done;
    p.result = res_;
    p.result.verdict = v;
    sat::exportEffort(p.result.stats, baseSolver_);
    p.bound = k_;
    p.advanced = advanced_;
    p.effort = stepEffort_ + baseSolver_.conflicts() +
               baseSolver_.decisions() + baseSolver_.propagations();
    return p;
  }

  const Network* net_;
  InductionOptions opts_;
  CheckResult res_;
  sat::Solver baseSolver_;
  Unroller base_;
  std::unique_ptr<sat::Solver> stepSolver_;  ///< per-k, survives pauses
  std::unique_ptr<Unroller> step_;
  int stepK_ = -1;  ///< k the step solver is built for
  int k_ = 0;
  bool baseDone_ = false;  ///< base check of k_ passed; step check next
  bool advanced_ = false;
  std::uint64_t stepEffort_ = 0;
  const portfolio::Budget* curBud_ = nullptr;
};

}  // namespace

std::unique_ptr<Session> Bmc::start(const Network& net) const {
  return std::make_unique<BmcSession>(net, opts_);
}

std::unique_ptr<Session> KInduction::start(const Network& net) const {
  return std::make_unique<KInductionSession>(net, opts_);
}

}  // namespace cbq::mc

// Forward reachability with circuit-based quantification — the post-image
// variant the paper's §1 alludes to. Image computation quantifies state
// AND input variables out of TR(s,i,s') ∧ F(s), the worst case for
// quantifier elimination, which is precisely why it makes a good stress
// test of the merge/optimization machinery. Runs as a persistent session:
// the working manager, onion rings, reached set and the run-wide sweep
// session survive a budget pause, and an interrupted image computation is
// retried from the same frontier on the next resume.

#include <algorithm>

#include "cnf/cnf_backend.hpp"
#include "mc/engines.hpp"
#include "quant/quantifier.hpp"
#include "sweep/sweep_context.hpp"

namespace cbq::mc {

namespace {

using aig::Lit;
using aig::VarId;

struct ForwardModel {
  aig::Aig mgr;
  std::vector<Lit> next;        ///< δ_j(s, i) in mgr
  Lit bad = aig::kFalse;        ///< bad(s, i) in mgr
  Lit tr = aig::kFalse;         ///< ∧_j s'_j ↔ δ_j
  Lit initCube = aig::kTrue;    ///< I(s)
  std::vector<VarId> nsVars;    ///< fresh next-state variable ids
  std::vector<VarId> quantSet;  ///< state ∪ input variables
  std::vector<aig::VarSub> renameBack;  ///< s'_j -> pi(s_j)
};

void buildModel(const Network& net, ForwardModel& m) {
  std::vector<Lit> roots(net.next.begin(), net.next.end());
  roots.push_back(net.bad);
  auto moved = m.mgr.transferFrom(net.aig, roots);
  m.next.assign(moved.begin(), moved.end() - 1);
  m.bad = moved.back();

  VarId maxVar = 0;
  for (const VarId v : net.stateVars) maxVar = std::max(maxVar, v);
  for (const VarId v : net.inputVars) maxVar = std::max(maxVar, v);
  m.nsVars.resize(net.numLatches());

  std::vector<Lit> conjuncts;
  conjuncts.reserve(net.numLatches());
  for (std::size_t j = 0; j < net.numLatches(); ++j) {
    m.nsVars[j] = maxVar + 1 + static_cast<VarId>(j);
    conjuncts.push_back(m.mgr.mkXnor(m.mgr.pi(m.nsVars[j]), m.next[j]));
    m.renameBack.emplace_back(m.nsVars[j], m.mgr.pi(net.stateVars[j]));
  }
  m.tr = m.mgr.mkAndAll(conjuncts);

  for (std::size_t j = 0; j < net.numLatches(); ++j) {
    m.initCube = m.mgr.mkAnd(
        m.initCube, m.mgr.pi(net.stateVars[j]) ^ !net.init[j]);
  }

  m.quantSet.assign(net.stateVars.begin(), net.stateVars.end());
  m.quantSet.insert(m.quantSet.end(), net.inputVars.begin(),
                    net.inputVars.end());
}

/// Backward trace extraction over forward onion rings: pick a bad state
/// in the last ring, then step backwards ring by ring with one SAT query
/// per step (state of ring t, transition into the chosen successor).
std::optional<Trace> extractTrace(const Network& net, ForwardModel& m,
                                  const std::vector<Lit>& rings, int d,
                                  sat::BackendKind satBackend) {
  // 1. pick s_d |= rings[d] ∧ ∃i bad — solve rings[d] ∧ bad directly.
  std::unordered_map<VarId, bool> state;
  std::unordered_map<VarId, bool> finalInputs;
  {
    const auto backend = cnf::makeSatBackend(satBackend, m.mgr);
    const Lit assumptions[] = {
        m.mgr.mkAnd(rings[static_cast<std::size_t>(d)], m.bad)};
    if (backend->solve(assumptions, -1) != sat::Status::Sat)
      return std::nullopt;
    for (const VarId v : net.stateVars) state.emplace(v, backend->modelOf(v));
    for (const VarId v : net.inputVars)
      finalInputs.emplace(v, backend->modelOf(v));
  }

  // 2. walk backwards: for t = d-1..0 find s_t ∈ rings[t], input i_t with
  //    δ(s_t, i_t) = s_{t+1}.
  std::vector<std::unordered_map<VarId, bool>> inputsRev{finalInputs};
  for (int t = d - 1; t >= 0; --t) {
    const auto backend = cnf::makeSatBackend(satBackend, m.mgr);
    std::vector<Lit> assumptions;
    assumptions.push_back(
        m.mgr.mkAnd(rings[static_cast<std::size_t>(t)], m.tr));
    // Fix the successor (next-state variables) to s_{t+1}.
    for (std::size_t j = 0; j < net.numLatches(); ++j) {
      const Lit pi(m.mgr.piNodeOf(m.nsVars[j]), false);
      assumptions.push_back(pi ^ !state.at(net.stateVars[j]));
    }
    if (backend->solve(assumptions, -1) != sat::Status::Sat)
      return std::nullopt;
    std::unordered_map<VarId, bool> stepInputs;
    for (const VarId v : net.inputVars)
      stepInputs.emplace(v, backend->modelOf(v));
    inputsRev.push_back(stepInputs);
    std::unordered_map<VarId, bool> prevState;
    for (const VarId v : net.stateVars)
      prevState.emplace(v, backend->modelOf(v));
    state = std::move(prevState);
  }

  Trace trace;
  for (auto it = inputsRev.rbegin(); it != inputsRev.rend(); ++it)
    trace.inputs.push_back(*it);
  return trace;
}

class ForwardReachSession final : public Session {
 public:
  ForwardReachSession(const Network& net,
                      const CircuitQuantForwardOptions& opts)
      : net_(&net), opts_(opts) {
    res_.engine = "cbq-fwd";
    buildModel(net, m_);
    rings_.assign(1, m_.initCube);  // onion rings R_0, R_1, ...
    reached_ = m_.initCube;
    frontier_ = m_.initCube;
    // Run-wide persistent sweep session for the bad-intersection and
    // fixpoint queries: the forward engine never compacts its manager, so
    // the ring/reached cones encode once and stay. Each query focuses the
    // solver on its own cone, keeping per-check cost bounded by the live
    // state sets rather than by the accumulated scratch.
    session_.setBackend(opts_.quant.satBackend);
    session_.setInterrupt(
        [this] { return curBud_ != nullptr && curBud_->exhausted(); });
    session_.bind(m_.mgr);
  }

  [[nodiscard]] std::string name() const override { return res_.engine; }

 protected:
  Progress doResume(const portfolio::Budget& budget) override {
    const auto bud = sliceBudget(budget, opts_.limits.timeLimitSeconds);
    if (!bud) return snapshot(Verdict::Unknown, true);
    curBud_ = &*bud;
    Progress p = run(*bud);
    curBud_ = nullptr;
    return p;
  }

 private:
  enum class Phase : std::uint8_t { Bad, Guard, Img, Fix };

  Progress run(const portfolio::Budget& bud) {
    committedThisSlice_ = 0;
    for (;;) {
      if (bud.exhausted()) return snapshot(Verdict::Unknown, false);
      switch (phase_) {
        case Phase::Bad: {
          const Lit q = m_.mgr.mkAnd(frontier_, m_.bad);
          const Lit qRoots[] = {q};
          session_.focusOn(qRoots);
          const cnf::Verdict sat = session_.checkSat(q);
          if (sat == cnf::Verdict::Unknown)  // interrupted: retry
            return snapshot(Verdict::Unknown, false);
          if (sat == cnf::Verdict::Holds) {
            res_.cex =
                extractTrace(*net_, m_, rings_, iter_, session_.soloKind());
            return snapshot(Verdict::Unsafe, true);
          }
          phase_ = Phase::Guard;
          break;
        }
        case Phase::Guard: {
          if (iter_ >= opts_.limits.maxIterations)
            return snapshot(Verdict::Unknown, true);
          const Lit rr[] = {reached_};
          const std::size_t sz = m_.mgr.coneSize(rr);
          res_.stats.high("reach.max_reached_cone",
                          static_cast<double>(sz));
          if (sz > opts_.hardConeLimit || bud.nodesExceeded(sz))
            return snapshot(Verdict::Unknown, true);
          ++iter_;
          phase_ = Phase::Img;
          break;
        }
        case Phase::Img: {
          // Image: ∃(s, i) . TR ∧ F — both variable classes at once (§1).
          // Deliberately NOT the run session: forward images sweep an
          // endless stream of short-lived scratch cones, and a SAT
          // (refuting) answer in a monolithic database must assign every
          // accumulated variable — the per-check cost grows with the run.
          // Throwaway cone-local solvers are the cheaper trade here; the
          // backward engine, whose queries genuinely range over the live
          // reached set, is where the session pays off.
          //
          // The partially-quantified image survives a pause: variables
          // already eliminated stay eliminated (imgWork_/imgVars_), so a
          // session sliced finer than one whole image still converges
          // instead of restarting the quantification every slice.
          if (!imgActive_) {
            imgWork_ = m_.mgr.mkAnd(m_.tr, frontier_);
            imgVars_ = m_.quantSet;
            imgActive_ = true;
          }
          quant::QuantOptions qopts = opts_.quant;
          qopts.interrupt = [&bud] { return bud.exhausted(); };
          quant::Quantifier q(m_.mgr, qopts);
          auto r = q.quantifyAll(imgWork_, imgVars_);
          imgWork_ = r.f;
          imgVars_ = r.residual;
          bool interrupted = bud.exhausted();  // quantifyAll stopped early
          while (!interrupted && !imgVars_.empty()) {
            // Forced expansion of abort survivors: no growth bound.
            imgWork_ = q.quantifyVarForced(imgWork_, imgVars_.front());
            imgVars_.erase(imgVars_.begin());
            interrupted = bud.exhausted();
          }
          res_.stats.merge(q.stats());
          if (interrupted && !imgVars_.empty())  // pause mid-image
            return snapshot(Verdict::Unknown, false);
          img_ = m_.mgr.compose(imgWork_, m_.renameBack);
          imgActive_ = false;
          phase_ = Phase::Fix;
          break;
        }
        case Phase::Fix: {
          const Lit fpRoots[] = {img_, reached_};
          session_.focusOn(fpRoots);
          res_.stats.add("reach.fixpoint_checks");
          const cnf::Verdict fp = session_.checkImplies(img_, reached_);
          if (fp == cnf::Verdict::Holds)
            return snapshot(Verdict::Safe, true);
          if (fp == cnf::Verdict::Unknown)  // interrupted: retry
            return snapshot(Verdict::Unknown, false);
          frontier_ = img_;
          reached_ = m_.mgr.mkOr(reached_, img_);
          rings_.push_back(frontier_);
          {
            const Lit fr[] = {frontier_};
            res_.stats.high("reach.max_frontier_cone",
                            static_cast<double>(m_.mgr.coneSize(fr)));
          }
          {
            const Lit live[] = {reached_, m_.tr, m_.bad};
            session_.recycleIfBloated(m_.mgr.coneSize(live));
          }
          ++committedThisSlice_;
          phase_ = Phase::Bad;
          break;
        }
      }
    }
  }

  Progress snapshot(Verdict v, bool done) {
    Progress p;
    p.done = done;
    p.result = res_;
    p.result.verdict = v;
    p.result.steps = iter_;
    session_.exportStats(p.result.stats);
    p.bound = iter_;
    p.advanced = committedThisSlice_ > 0;
    {
      const Lit fr[] = {frontier_};
      p.frontierCone = m_.mgr.coneSize(fr);
    }
    p.effort =
        static_cast<std::uint64_t>(p.result.stats.count("sat.conflicts") +
                                   p.result.stats.count("sat.decisions") +
                                   p.result.stats.count("sat.propagations"));
    return p;
  }

  const Network* net_;
  CircuitQuantForwardOptions opts_;
  CheckResult res_;
  ForwardModel m_;
  sweep::SweepContext session_;
  std::vector<Lit> rings_;
  Lit reached_ = aig::kFalse;
  Lit frontier_ = aig::kFalse;
  Lit img_ = aig::kFalse;      ///< valid in Phase::Fix
  Lit imgWork_ = aig::kFalse;  ///< in-flight image, partially quantified
  std::vector<VarId> imgVars_;  ///< variables still to eliminate from it
  bool imgActive_ = false;
  int iter_ = 0;
  int committedThisSlice_ = 0;
  Phase phase_ = Phase::Bad;
  const portfolio::Budget* curBud_ = nullptr;
};

}  // namespace

std::unique_ptr<Session> CircuitQuantForwardReach::start(
    const Network& net) const {
  return std::make_unique<ForwardReachSession>(net, opts_);
}

}  // namespace cbq::mc

// Forward reachability with circuit-based quantification — the post-image
// variant the paper's §1 alludes to. Image computation quantifies state
// AND input variables out of TR(s,i,s') ∧ F(s), the worst case for
// quantifier elimination, which is precisely why it makes a good stress
// test of the merge/optimization machinery.

#include <algorithm>

#include "cnf/aig_cnf.hpp"
#include "mc/engines.hpp"
#include "quant/quantifier.hpp"
#include "sat/solver.hpp"
#include "sweep/sweep_context.hpp"
#include "util/timer.hpp"

namespace cbq::mc {

namespace {

using aig::Lit;
using aig::VarId;

struct ForwardModel {
  aig::Aig mgr;
  std::vector<Lit> next;        ///< δ_j(s, i) in mgr
  Lit bad = aig::kFalse;        ///< bad(s, i) in mgr
  Lit tr = aig::kFalse;         ///< ∧_j s'_j ↔ δ_j
  Lit initCube = aig::kTrue;    ///< I(s)
  std::vector<VarId> nsVars;    ///< fresh next-state variable ids
  std::vector<VarId> quantSet;  ///< state ∪ input variables
  std::vector<aig::VarSub> renameBack;  ///< s'_j -> pi(s_j)
};

ForwardModel buildModel(const Network& net) {
  ForwardModel m;
  std::vector<Lit> roots(net.next.begin(), net.next.end());
  roots.push_back(net.bad);
  auto moved = m.mgr.transferFrom(net.aig, roots);
  m.next.assign(moved.begin(), moved.end() - 1);
  m.bad = moved.back();

  VarId maxVar = 0;
  for (const VarId v : net.stateVars) maxVar = std::max(maxVar, v);
  for (const VarId v : net.inputVars) maxVar = std::max(maxVar, v);
  m.nsVars.resize(net.numLatches());

  std::vector<Lit> conjuncts;
  conjuncts.reserve(net.numLatches());
  for (std::size_t j = 0; j < net.numLatches(); ++j) {
    m.nsVars[j] = maxVar + 1 + static_cast<VarId>(j);
    conjuncts.push_back(m.mgr.mkXnor(m.mgr.pi(m.nsVars[j]), m.next[j]));
    m.renameBack.emplace_back(m.nsVars[j], m.mgr.pi(net.stateVars[j]));
  }
  m.tr = m.mgr.mkAndAll(conjuncts);

  for (std::size_t j = 0; j < net.numLatches(); ++j) {
    m.initCube = m.mgr.mkAnd(
        m.initCube, m.mgr.pi(net.stateVars[j]) ^ !net.init[j]);
  }

  m.quantSet.assign(net.stateVars.begin(), net.stateVars.end());
  m.quantSet.insert(m.quantSet.end(), net.inputVars.begin(),
                    net.inputVars.end());
  return m;
}

/// Backward trace extraction over forward onion rings: pick a bad state
/// in the last ring, then step backwards ring by ring with one SAT query
/// per step (state of ring t, transition into the chosen successor).
std::optional<Trace> extractTrace(const Network& net, ForwardModel& m,
                                  const std::vector<Lit>& rings, int d) {
  // 1. pick s_d |= rings[d] ∧ ∃i bad — solve rings[d] ∧ bad directly.
  std::unordered_map<VarId, bool> state;
  std::unordered_map<VarId, bool> finalInputs;
  {
    sat::Solver solver;
    cnf::AigCnf cnf(m.mgr, solver);
    const sat::Lit assumptions[] = {
        cnf.litFor(m.mgr.mkAnd(rings[static_cast<std::size_t>(d)], m.bad))};
    if (solver.solve(assumptions) != sat::Status::Sat) return std::nullopt;
    for (const VarId v : net.stateVars) state.emplace(v, cnf.modelOf(v));
    for (const VarId v : net.inputVars)
      finalInputs.emplace(v, cnf.modelOf(v));
  }

  // 2. walk backwards: for t = d-1..0 find s_t ∈ rings[t], input i_t with
  //    δ(s_t, i_t) = s_{t+1}.
  std::vector<std::unordered_map<VarId, bool>> inputsRev{finalInputs};
  for (int t = d - 1; t >= 0; --t) {
    sat::Solver solver;
    cnf::AigCnf cnf(m.mgr, solver);
    std::vector<sat::Lit> assumptions;
    assumptions.push_back(cnf.litFor(
        m.mgr.mkAnd(rings[static_cast<std::size_t>(t)], m.tr)));
    // Fix the successor (next-state variables) to s_{t+1}.
    for (std::size_t j = 0; j < net.numLatches(); ++j) {
      const Lit pi(m.mgr.piNodeOf(m.nsVars[j]), false);
      assumptions.push_back(cnf.litFor(pi) ^ !state.at(net.stateVars[j]));
    }
    if (solver.solve(assumptions) != sat::Status::Sat) return std::nullopt;
    std::unordered_map<VarId, bool> stepInputs;
    for (const VarId v : net.inputVars) stepInputs.emplace(v, cnf.modelOf(v));
    inputsRev.push_back(stepInputs);
    std::unordered_map<VarId, bool> prevState;
    for (const VarId v : net.stateVars) prevState.emplace(v, cnf.modelOf(v));
    state = std::move(prevState);
  }

  Trace trace;
  for (auto it = inputsRev.rbegin(); it != inputsRev.rend(); ++it)
    trace.inputs.push_back(*it);
  return trace;
}

}  // namespace

CheckResult CircuitQuantForwardReach::doCheck(
    const Network& net, const portfolio::Budget& budget) {
  util::Timer timer;
  const portfolio::Budget bud =
      budget.tightened(opts_.limits.timeLimitSeconds);
  CheckResult res;
  res.engine = name();
  res.verdict = Verdict::Unknown;

  ForwardModel m = buildModel(net);
  std::vector<Lit> rings{m.initCube};  // onion rings R_0, R_1, ...
  Lit reached = m.initCube;
  Lit frontier = m.initCube;

  // Run-wide persistent sweep session for the bad-intersection and
  // fixpoint queries: the forward engine never compacts its manager, so
  // the ring/reached cones encode once and stay. Each query focuses the
  // solver on its own cone, keeping per-check cost bounded by the live
  // state sets rather than by the accumulated scratch.
  sweep::SweepContext session;
  session.setInterrupt([&bud] { return bud.exhausted(); });
  session.bind(m.mgr);

  auto intersectsBad = [&](Lit stateSet) {
    const Lit q = m.mgr.mkAnd(stateSet, m.bad);
    const Lit qRoots[] = {q};
    session.cnf().focusOn(qRoots);
    return cnf::checkSat(session.cnf(), q) == cnf::Verdict::Holds;
  };

  int iter = 0;
  for (;;) {
    if (intersectsBad(frontier)) {
      res.verdict = Verdict::Unsafe;
      res.steps = iter;
      res.cex = extractTrace(net, m, rings, iter);
      break;
    }
    if (iter >= opts_.limits.maxIterations || bud.exhausted()) {
      res.steps = iter;
      break;
    }
    {
      const Lit rr[] = {reached};
      const std::size_t sz = m.mgr.coneSize(rr);
      res.stats.high("reach.max_reached_cone", static_cast<double>(sz));
      if (sz > opts_.hardConeLimit || bud.nodesExceeded(sz)) break;
    }
    ++iter;

    // Image: ∃(s, i) . TR ∧ F — both variable classes at once (§1).
    // Deliberately NOT the run session: forward images sweep an endless
    // stream of short-lived scratch cones, and a SAT (refuting) answer in
    // a monolithic database must assign every accumulated variable — the
    // per-check cost grows with the run. Throwaway cone-local solvers are
    // the cheaper trade here; the backward engine, whose queries genuinely
    // range over the live reached set, is where the session pays off.
    quant::QuantOptions qopts = opts_.quant;
    qopts.interrupt = [&bud] { return bud.exhausted(); };
    quant::Quantifier q(m.mgr, qopts);
    const Lit conj = m.mgr.mkAnd(m.tr, frontier);
    auto r = q.quantifyAll(conj, m.quantSet);
    Lit imgNs = r.f;
    bool interrupted = bud.exhausted();  // quantifyAll stopped mid-way
    for (const VarId v : r.residual) {
      if (interrupted) break;  // forced expansion has no growth bound
      imgNs = q.quantifyVarForced(imgNs, v);
      interrupted = bud.exhausted();
    }
    res.stats.merge(q.stats());
    if (interrupted) {
      res.steps = iter;
      break;
    }
    const Lit img = m.mgr.compose(imgNs, m.renameBack);

    // Fixpoint?
    {
      const Lit fpRoots[] = {img, reached};
      session.cnf().focusOn(fpRoots);
      res.stats.add("reach.fixpoint_checks");
      if (cnf::checkImplies(session.cnf(), img, reached) ==
          cnf::Verdict::Holds) {
        res.verdict = Verdict::Safe;
        res.steps = iter;
        break;
      }
    }
    frontier = img;
    reached = m.mgr.mkOr(reached, img);
    rings.push_back(frontier);
    res.stats.high("reach.max_frontier_cone",
                   static_cast<double>(m.mgr.coneSize(frontier)));
    {
      const Lit live[] = {reached, m.tr, m.bad};
      session.recycleIfBloated(m.mgr.coneSize(live));
    }
  }
  session.exportStats(res.stats);
  res.seconds = timer.seconds();
  return res;
}

}  // namespace cbq::mc

#pragma once
// The model-checking engines of the reproduction.
//
//  * CircuitQuantReach — the paper's engine (§3): backward reachability
//    with AIG state sets, pre-image by substitution (in-lining) followed
//    by circuit-based quantification of the inputs.
//  * BddBackwardReach / BddForwardReach — the classical BDD baselines the
//    paper positions itself against (§1).
//  * Bmc — bounded model checking (Biere et al., cited as [1]).
//  * KInduction — temporal induction with simple-path constraints
//    (Sheeran et al., cited as [5]).
//  * AllSatPreimageReach — all-solution SAT pre-image with circuit
//    cofactoring (Ganai et al., cited as [2]).
//  * HybridReach — the paper's §4 combination: partial circuit
//    quantification first, all-SAT enumeration of the residual inputs.
//
// plus the §4 preprocessing utility that eliminates primary inputs from
// the bad cone before handing the problem to BMC / induction.
//
// Engines check exactly the Network they are given. The production entry
// paths (PortfolioRunner, prep::checkWithPrep — i.e. cbq check/batch/
// bench) hand them the REDUCED network produced by the prep pass
// pipeline (prep/pipeline.hpp) and lift any counterexample back to the
// original circuit; an engine run directly is simply a run with
// preprocessing disabled.

#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "mc/network.hpp"
#include "mc/result.hpp"
#include "portfolio/budget.hpp"
#include "quant/quantifier.hpp"
#include "util/fault.hpp"
#include "util/timer.hpp"

namespace cbq::mc {

/// A paused, resumable engine run.
///
/// Engine::start() builds the session skeleton (managers, solvers,
/// transfers — no search); resume() runs until a definitive verdict, a
/// permanent give-up (both report done = true), or the slice budget
/// expires (done = false). A paused session keeps all working state —
/// the unrolled incremental solver, the frontier and sweep-session pair
/// cache, the BDD reached set — so resume() continues where the previous
/// slice stopped, arbitrarily many times. A session resumed in N slices
/// reaches the same verdict (and counterexample) as one uninterrupted
/// run; only the wall-clock split differs.
///
/// The budget passed to resume() carries the caller's cooperative
/// cancellation (the scheduler's token), the slice deadline and node
/// limit. Engines fold their own option time limits on top, measured
/// against the session's total accumulated time, so a session whose own
/// limit fired reports done rather than pausing forever.
///
/// The Network handed to start() must outlive the session, and a session
/// must not run concurrently with other readers of that Network (const
/// manager reads stamp mutable scratch arenas).
class Session {
 public:
  virtual ~Session() = default;
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Runs until verdict, permanent give-up, or budget expiry. After a
  /// done report, further calls return the same final Progress.
  Progress resume(const portfolio::Budget& budget = {}) {
    if (final_.has_value()) return *final_;
    // Injection site: the one chokepoint every engine slice passes
    // through, regardless of which engine implements doResume().
    CBQ_FAULT_POINT("engine.resume");
    util::Timer timer;
    Progress p = doResume(budget);
    p.sliceSeconds = timer.seconds();
    totalSeconds_ += p.sliceSeconds;
    p.result.seconds = totalSeconds_;
    p.effortDelta = p.effort - std::min(lastEffort_, p.effort);
    lastEffort_ = p.effort;
    if (p.done) final_ = p;
    return p;
  }

 protected:
  Session() = default;

  virtual Progress doResume(const portfolio::Budget& budget) = 0;

  /// Wall time accumulated across every finished resume() — what a
  /// session measures its own option time limit against.
  [[nodiscard]] double totalSeconds() const { return totalSeconds_; }

  /// Folds an engine-option time limit into the slice budget: the
  /// remaining own allowance is the limit minus time already consumed.
  /// Returns nullopt when the own limit is spent (the caller should
  /// report done). `limitSeconds` <= 0 means no own limit.
  [[nodiscard]] std::optional<portfolio::Budget> sliceBudget(
      const portfolio::Budget& budget, double limitSeconds) const {
    if (limitSeconds <= 0.0) return budget;
    const double remaining = limitSeconds - totalSeconds_;
    if (remaining <= 0.0) return std::nullopt;
    return budget.tightened(remaining);
  }

 private:
  std::optional<Progress> final_;
  double totalSeconds_ = 0.0;
  std::uint64_t lastEffort_ = 0;
};

/// Common interface: every engine checks the invariant of a network.
///
/// The primitive operation is start(): it opens a persistent Session
/// that a scheduler resumes in slices (see Session above). check() is
/// the one-shot wrapper — start() and resume to completion under one
/// budget — kept for callers that do not schedule.
class Engine {
 public:
  virtual ~Engine() = default;
  [[nodiscard]] virtual std::string name() const = 0;

  /// Opens a session on `net`. The session is self-contained (options
  /// are copied in) and may outlive the engine, but not `net`.
  [[nodiscard]] virtual std::unique_ptr<Session> start(
      const Network& net) const = 0;

  CheckResult check(const Network& net,
                    const portfolio::Budget& budget = {}) const {
    const auto session = start(net);
    for (;;) {
      Progress p = session->resume(budget);
      if (p.done || budget.exhausted()) return std::move(p.result);
    }
  }
};

/// Shared resource bounds for the fixpoint engines. The time limit is
/// measured against the session's total accumulated resume() time and
/// folded into each slice budget, not enforced by an ad-hoc deadline.
struct ReachLimits {
  int maxIterations = 10000;
  double timeLimitSeconds = 60.0;
};

/// When and how the backward engines re-strash their working manager into
/// a fresh one. Compaction drops the scratch nodes that cofactoring and
/// sweeping leave behind AND re-applies the construction rewrite rules
/// across the whole live set — measured on the generated suite it shrinks
/// state-set cones enough that running it every iteration (ratio 0) beats
/// hoarding nodes. It changes every NodeId, but the sweep session's
/// proven/refuted pair cache is carried across through the transfer map
/// (SweepContext::rebindRemapped), so compaction no longer costs the
/// learned equivalence history — only the solver restarts.
struct CompactionPolicy {
  bool enabled = true;
  /// Compact when manager nodes exceed ratio × live cone nodes ...
  double garbageRatio = 0.0;
  /// ... and the manager has at least this many nodes.
  std::size_t minNodes = 0;
};

// ----- the paper's engine ---------------------------------------------------

struct CircuitQuantReachOptions {
  quant::QuantOptions quant{};
  ReachLimits limits{};
  CompactionPolicy compaction{};  ///< garbage-triggered manager re-strash
  std::size_t hardConeLimit = 2'000'000;  ///< give up (Unknown) beyond this
};

class CircuitQuantReach final : public Engine {
 public:
  explicit CircuitQuantReach(CircuitQuantReachOptions opts = {})
      : opts_(opts) {}
  [[nodiscard]] std::string name() const override { return "cbq-reach"; }

  [[nodiscard]] std::unique_ptr<Session> start(
      const Network& net) const override;

 private:
  CircuitQuantReachOptions opts_;
};

// ----- forward variant of the paper's engine ---------------------------------

/// Forward reachability with AIG state sets. The paper's §1 observes that
/// *post*-image computation existentially quantifies both input and state
/// variables; this engine exercises exactly that: the image is
/// ∃s,i . TR(s,i,s') ∧ F(s), computed with circuit-based quantification
/// over the full (state ∪ input) set, then renamed s'→s by substitution.
/// Much heavier per step than the backward engine (more variables per
/// quantification) — which is why the paper works backward — but it
/// provides the measurement for that claim and finds shallow bugs fast.
struct CircuitQuantForwardOptions {
  quant::QuantOptions quant{};
  ReachLimits limits{};
  std::size_t hardConeLimit = 2'000'000;
};

class CircuitQuantForwardReach final : public Engine {
 public:
  explicit CircuitQuantForwardReach(CircuitQuantForwardOptions opts = {})
      : opts_(opts) {}
  [[nodiscard]] std::string name() const override { return "cbq-fwd"; }

  [[nodiscard]] std::unique_ptr<Session> start(
      const Network& net) const override;

 private:
  CircuitQuantForwardOptions opts_;
};

// ----- BDD baselines ----------------------------------------------------------

struct BddReachOptions {
  std::size_t nodeLimit = 4'000'000;  ///< abort to Unknown beyond this
  ReachLimits limits{};
};

class BddBackwardReach final : public Engine {
 public:
  explicit BddBackwardReach(BddReachOptions opts = {}) : opts_(opts) {}
  [[nodiscard]] std::string name() const override { return "bdd-bwd"; }

  [[nodiscard]] std::unique_ptr<Session> start(
      const Network& net) const override;

 private:
  BddReachOptions opts_;
};

class BddForwardReach final : public Engine {
 public:
  explicit BddForwardReach(BddReachOptions opts = {}) : opts_(opts) {}
  [[nodiscard]] std::string name() const override { return "bdd-fwd"; }

  [[nodiscard]] std::unique_ptr<Session> start(
      const Network& net) const override;

 private:
  BddReachOptions opts_;
};

// ----- bounded engines ----------------------------------------------------------

struct BmcOptions {
  int maxDepth = 128;
  double timeLimitSeconds = 60.0;
};

class Bmc final : public Engine {
 public:
  explicit Bmc(BmcOptions opts = {}) : opts_(opts) {}
  [[nodiscard]] std::string name() const override { return "bmc"; }

  [[nodiscard]] std::unique_ptr<Session> start(
      const Network& net) const override;

 private:
  BmcOptions opts_;
};

struct InductionOptions {
  int maxK = 64;
  bool uniquePath = true;  ///< simple-path (state-distinct) constraints
  double timeLimitSeconds = 60.0;
};

class KInduction final : public Engine {
 public:
  explicit KInduction(InductionOptions opts = {}) : opts_(opts) {}
  [[nodiscard]] std::string name() const override { return "k-induction"; }

  [[nodiscard]] std::unique_ptr<Session> start(
      const Network& net) const override;

 private:
  InductionOptions opts_;
};

// ----- all-SAT pre-image & hybrid ---------------------------------------------------

struct AllSatReachOptions {
  int maxEnumPerImage = 1 << 16;  ///< cofactor enumerations per pre-image
  ReachLimits limits{};
  /// SAT engine policy for the enumeration solver and the fixpoint
  /// sessions (cnf, circuit, race, auto).
  sat::BackendKind satBackend = sat::BackendKind::Cnf;
};

class AllSatPreimageReach final : public Engine {
 public:
  explicit AllSatPreimageReach(AllSatReachOptions opts = {}) : opts_(opts) {}
  [[nodiscard]] std::string name() const override { return "allsat-reach"; }

  [[nodiscard]] std::unique_ptr<Session> start(
      const Network& net) const override;

 private:
  AllSatReachOptions opts_;
};

struct HybridReachOptions {
  quant::QuantOptions quant{};    ///< partial quantification (aborts on)
  int maxEnumPerImage = 1 << 16;
  ReachLimits limits{};
};

class HybridReach final : public Engine {
 public:
  explicit HybridReach(HybridReachOptions opts = {}) : opts_(opts) {}
  [[nodiscard]] std::string name() const override { return "hybrid-reach"; }

  [[nodiscard]] std::unique_ptr<Session> start(
      const Network& net) const override;

 private:
  HybridReachOptions opts_;
};

// ----- §4 preprocessing ----------------------------------------------------------------

struct PreprocessResult {
  Network net;                    ///< copy with inputs quantified from bad
  std::size_t inputsBefore = 0;   ///< inputs in bad's support before
  std::size_t inputsAfter = 0;    ///< inputs left in bad's support
};

/// Eliminates primary inputs from the bad cone by circuit quantification —
/// sound for invariant checking because the violation test is terminal.
/// Reduces the decision variables any SAT-based engine spends on `bad`.
PreprocessResult preprocessQuantifyInputs(const Network& net,
                                          const quant::QuantOptions& opts = {});

/// The full engine portfolio with default options (used by benches/tests).
std::vector<std::unique_ptr<Engine>> makeAllEngines();

/// Canonical engine names, in makeAllEngines() order.
std::vector<std::string> engineNames();

/// Factory by canonical name ("cbq-reach", "bmc", ...); nullptr when the
/// name is unknown. The portfolio runner and the cbq CLI build their
/// engine sets through this registry.
std::unique_ptr<Engine> makeEngine(const std::string& name);

/// Cross-engine knobs the CLI/portfolio thread through the registry.
/// Engines that have no use for a knob (the BDD baselines, the bounded
/// engines' private unrolling solvers) simply ignore it.
struct EngineTuning {
  sat::BackendKind satBackend = sat::BackendKind::Cnf;
};

/// As makeEngine(name), with the tuning applied where it is meaningful
/// (the SAT-flavoured reachability engines).
std::unique_ptr<Engine> makeEngine(const std::string& name,
                                   const EngineTuning& tuning);

}  // namespace cbq::mc

#pragma once
// Lazy, incremental Tseitin encoding of AIG cones into a live SAT solver.
//
// This realizes the paper's "load the clause database once and for all"
// strategy (§2.1): one AigCnf binds one solver to one AIG manager for the
// lifetime of a sweeping/quantification session. Every equivalence,
// implication or constancy query is phrased purely through *assumptions*,
// so thousands of compare-point checks share clauses and learned facts
// without ever retracting anything.

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "aig/aig.hpp"
#include "sat/backend.hpp"
#include "sat/solver.hpp"
#include "util/var_table.hpp"

namespace cbq::audit {
struct Access;
}

namespace cbq::cnf {

/// Binds an AIG manager to a SAT solver and encodes cones on demand.
class AigCnf {
 public:
  AigCnf(const aig::Aig& aig, sat::Solver& solver)
      : aig_(&aig), solver_(&solver) {}

  /// SAT literal equivalent to AIG literal `l`; encodes the cone of `l`
  /// (three clauses per AND node) on first use.
  sat::Lit litFor(aig::Lit l);

  /// Encodes the cones of `roots` and focuses the solver's branching on
  /// exactly their variables (Solver::focusDecisions). In a run-long
  /// shared clause database this caps the cost of a query at the size of
  /// its own cone instead of the size of everything ever encoded. Queries
  /// issued afterwards must keep their assumptions inside these cones —
  /// or inside nodes created later, which stay decidable by default.
  void focusOn(std::span<const aig::Lit> roots);

  /// Number of AND nodes encoded so far (decision-variable metric used by
  /// the hybrid-engine experiments).
  [[nodiscard]] std::size_t numEncodedNodes() const { return encodedAnds_; }

  [[nodiscard]] sat::Solver& solver() { return *solver_; }
  [[nodiscard]] const aig::Aig& aig() const { return *aig_; }

  /// True when `n` already has a solver variable (its cone reached the
  /// encoder). Lets callers learn facts without forcing fresh encodes.
  [[nodiscard]] bool hasVarFor(aig::NodeId n) const {
    return n < nodeVar_.size() && nodeVar_[n] != sat::kUndefVar;
  }

  /// After a Sat answer: model value of an AIG PI (false when the variable
  /// never reached the solver).
  [[nodiscard]] bool modelOf(aig::VarId var) const;

  /// After a Sat answer: 64-bit simulation word for each varId in `vars`,
  /// whose bit 0 is the counterexample and whose remaining 63 bits are
  /// random noise from `rng`. Used for counterexample-guided refinement;
  /// the result feeds Aig::simulate directly.
  [[nodiscard]] util::VarTable<std::uint64_t> modelPattern(
      std::span<const aig::VarId> vars, std::uint64_t (*noise)(void* ctx),
      void* ctx) const;

 private:
  friend struct ::cbq::audit::Access;

  sat::Var varForNode(aig::NodeId n);

  const aig::Aig* aig_;
  sat::Solver* solver_;
  std::vector<sat::Var> nodeVar_;  // indexed by NodeId; kUndefVar = not yet
  std::size_t encodedAnds_ = 0;
};

/// Three-valued verdict of a budgeted semantic query. One type shared
/// across every SAT backend (sat/backend.hpp defines it; this alias keeps
/// the historical cnf::Verdict spelling working).
using Verdict = sat::Verdict;

/// Does `a ≡ b` (as Boolean functions)? Checked as two assumption-only SAT
/// calls (a∧¬b, ¬a∧b); `budget` caps conflicts per call (<0 = unlimited).
/// On Fails the solver's model is a distinguishing input assignment.
Verdict checkEquiv(AigCnf& cnf, aig::Lit a, aig::Lit b,
                   std::int64_t budget = -1);

/// Does `a → b` hold? (SAT query a ∧ ¬b.)
Verdict checkImplies(AigCnf& cnf, aig::Lit a, aig::Lit b,
                     std::int64_t budget = -1);

/// Is `a` constantly equal to `value`?
Verdict checkConstant(AigCnf& cnf, aig::Lit a, bool value,
                      std::int64_t budget = -1);

/// Is `f` satisfiable at all? Returns Holds when SAT, Fails when UNSAT.
Verdict checkSat(AigCnf& cnf, aig::Lit f, std::int64_t budget = -1);

}  // namespace cbq::cnf

#include "cnf/aig_cnf.hpp"

#include <cassert>

namespace cbq::cnf {

sat::Var AigCnf::varForNode(aig::NodeId n) {
  if (nodeVar_.size() < aig_->numNodes())
    nodeVar_.resize(aig_->numNodes(), sat::kUndefVar);
  return nodeVar_[n];
}

sat::Lit AigCnf::litFor(aig::Lit l) {
  if (nodeVar_.size() < aig_->numNodes())
    nodeVar_.resize(aig_->numNodes(), sat::kUndefVar);

  const aig::NodeId root = l.node();
  if (nodeVar_[root] == sat::kUndefVar) {
    // Encode the whole unencoded part of the cone in topological order.
    const aig::Lit roots[] = {l};
    for (const aig::NodeId n : aig_->coneAnds(roots)) {
      if (nodeVar_[n] != sat::kUndefVar) continue;
      const aig::Lit f0 = aig_->fanin0(n);
      const aig::Lit f1 = aig_->fanin1(n);
      // Leaves (PIs / constant) of this cone first.
      for (const aig::Lit f : {f0, f1}) {
        if (nodeVar_[f.node()] == sat::kUndefVar && !aig_->isAnd(f.node())) {
          const sat::Var fv = solver_->newVar();
          nodeVar_[f.node()] = fv;
          if (aig_->isConst(f.node()))
            solver_->addClause({sat::Lit(fv, true)});  // constant node: false
        }
      }
      const sat::Var v = solver_->newVar();
      nodeVar_[n] = v;
      ++encodedAnds_;
      const sat::Lit out(v, false);
      const sat::Lit a =
          sat::Lit(nodeVar_[f0.node()], false) ^ f0.negated();
      const sat::Lit b =
          sat::Lit(nodeVar_[f1.node()], false) ^ f1.negated();
      // v <-> a & b.
      solver_->addClause({!out, a});
      solver_->addClause({!out, b});
      solver_->addClause({!a, !b, out});
    }
    // The root itself may be a PI or the constant (no ANDs in cone).
    if (nodeVar_[root] == sat::kUndefVar) {
      const sat::Var v = solver_->newVar();
      nodeVar_[root] = v;
      if (aig_->isConst(root))
        solver_->addClause({sat::Lit(v, true)});
    }
  }
  return sat::Lit(nodeVar_[root], false) ^ l.negated();
}

void AigCnf::focusOn(std::span<const aig::Lit> roots) {
  for (const aig::Lit r : roots) litFor(r);
  std::vector<sat::Var> vars;
  auto push = [&](aig::NodeId n) {
    if (const sat::Var v = nodeVar_[n]; v != sat::kUndefVar)
      vars.push_back(v);
  };
  push(0);  // constant node, when encoded (its var is unit-forced anyway)
  for (const aig::Lit r : roots) push(r.node());
  for (const aig::NodeId n : aig_->coneAnds(roots)) {
    push(n);
    push(aig_->fanin0(n).node());
    push(aig_->fanin1(n).node());
  }
  solver_->focusDecisions(vars);
}

bool AigCnf::modelOf(aig::VarId var) const {
  if (!aig_->hasPi(var)) return false;
  const aig::NodeId p = aig_->piNodeOf(var);
  if (p >= nodeVar_.size() || nodeVar_[p] == sat::kUndefVar) return false;
  return solver_->modelTrue(sat::Lit(nodeVar_[p], false));
}

util::VarTable<std::uint64_t> AigCnf::modelPattern(
    std::span<const aig::VarId> vars, std::uint64_t (*noise)(void* ctx),
    void* ctx) const {
  util::VarTable<std::uint64_t> words;
  for (const aig::VarId v : vars) {
    std::uint64_t w = noise(ctx);
    // Bit 0 carries the actual counterexample.
    w = (w & ~std::uint64_t{1}) |
        static_cast<std::uint64_t>(modelOf(v) ? 1 : 0);
    words.set(v, w);
  }
  return words;
}

namespace {

/// One budgeted SAT call under two assumptions.
sat::Status query(AigCnf& cnf, sat::Lit x, sat::Lit y, std::int64_t budget) {
  const sat::Lit assumptions[] = {x, y};
  return cnf.solver().solveLimited(assumptions, budget);
}

}  // namespace

Verdict checkEquiv(AigCnf& cnf, aig::Lit a, aig::Lit b, std::int64_t budget) {
  if (a == b) return Verdict::Holds;
  if (a == !b) return Verdict::Fails;
  const sat::Lit la = cnf.litFor(a);
  const sat::Lit lb = cnf.litFor(b);
  // a ∧ ¬b satisfiable? then not equivalent.
  switch (query(cnf, la, !lb, budget)) {
    case sat::Status::Sat:
      return Verdict::Fails;
    case sat::Status::Undef:
      return Verdict::Unknown;
    case sat::Status::Unsat:
      break;
  }
  switch (query(cnf, !la, lb, budget)) {
    case sat::Status::Sat:
      return Verdict::Fails;
    case sat::Status::Undef:
      return Verdict::Unknown;
    case sat::Status::Unsat:
      return Verdict::Holds;
  }
  return Verdict::Unknown;
}

Verdict checkImplies(AigCnf& cnf, aig::Lit a, aig::Lit b,
                     std::int64_t budget) {
  if (a == b || a.isFalse() || b.isTrue()) return Verdict::Holds;
  const sat::Lit la = cnf.litFor(a);
  const sat::Lit lb = cnf.litFor(b);
  switch (query(cnf, la, !lb, budget)) {
    case sat::Status::Sat:
      return Verdict::Fails;
    case sat::Status::Undef:
      return Verdict::Unknown;
    case sat::Status::Unsat:
      return Verdict::Holds;
  }
  return Verdict::Unknown;
}

Verdict checkConstant(AigCnf& cnf, aig::Lit a, bool value,
                      std::int64_t budget) {
  if (a.isConstant()) {
    return (a.isTrue() == value) ? Verdict::Holds : Verdict::Fails;
  }
  const sat::Lit la = cnf.litFor(a) ^ value;  // la false iff a == value
  const sat::Lit assumptions[] = {la};
  switch (cnf.solver().solveLimited(assumptions, budget)) {
    case sat::Status::Sat:
      return Verdict::Fails;
    case sat::Status::Undef:
      return Verdict::Unknown;
    case sat::Status::Unsat:
      return Verdict::Holds;
  }
  return Verdict::Unknown;
}

Verdict checkSat(AigCnf& cnf, aig::Lit f, std::int64_t budget) {
  if (f.isTrue()) return Verdict::Holds;
  if (f.isFalse()) return Verdict::Fails;
  const sat::Lit lf = cnf.litFor(f);
  const sat::Lit assumptions[] = {lf};
  switch (cnf.solver().solveLimited(assumptions, budget)) {
    case sat::Status::Sat:
      return Verdict::Holds;
    case sat::Status::Undef:
      return Verdict::Unknown;
    case sat::Status::Unsat:
      return Verdict::Fails;
  }
  return Verdict::Unknown;
}

}  // namespace cbq::cnf
